(* Fixed-width plain-text tables for the experiment output.  When the
   ORACLE_SIZE_CSV_DIR environment variable names a directory, every table
   is additionally written there as a CSV file named after its title. *)

type align = L | R

let slug title =
  let b = Buffer.create 32 in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b (Char.lowercase_ascii c)
      | ' ' | '-' | '_' | '.' | ':' ->
        if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '-' then
          Buffer.add_char b '-'
      | _ -> ())
    title;
  let s = Buffer.contents b in
  if String.length s > 60 then String.sub s 0 60 else s

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~title ~header rows =
  match Sys.getenv_opt "ORACLE_SIZE_CSV_DIR" with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (slug title ^ ".csv") in
    let oc = open_out path in
    let line cells = output_string oc (String.concat "," (List.map csv_escape cells) ^ "\n") in
    line header;
    List.iter line rows;
    close_out oc

let render ~title ~header ~aligns rows =
  let columns = List.length header in
  if List.exists (fun r -> List.length r <> columns) rows then
    invalid_arg "Table.render: ragged rows";
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | L -> s ^ String.make gap ' '
    | R -> String.make gap ' ' ^ s
  in
  let line cells =
    "| "
    ^ String.concat " | "
        (List.mapi (fun i c -> pad (List.nth aligns i) (List.nth widths i) c) cells)
    ^ " |"
  in
  let rule = "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "\n== %s ==\n" title);
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf (rule ^ "\n");
  print_string (Buffer.contents buf);
  write_csv ~title ~header rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let i v = string_of_int v
let b v = if v then "yes" else "NO"
