(* Tracked performance benchmark of the simulation hot path.

   [dune build @perf] produces BENCH_perf.json: messages/sec, rounds/sec
   and GC words per delivered message (minor and major) for the wakeup
   and broadcast schemes on the path / clique / G_{n,S} / sparse-random
   families, at sizes up to n = 10^7 (PERF_MAX_N caps the sweep; CI runs
   it at 10^4).  The checked-in copy at the repository root is the
   baseline future PRs regress against: --baseline=FILE fails the run
   (exit 1) if any matching row's messages/sec drops more than 25%
   below the recorded value.

   Schema ("oracle-size/perf/v3"): a top-level object with "schema",
   "max_n", "jobs", "wall_seconds", "cpu_seconds" and "rows"; each row
   carries protocol, family, n, m, advice_bits, messages, rounds, reps,
   seconds, msgs_per_sec, rounds_per_sec, minor_words_per_msg,
   major_words_per_msg, all_informed, quiescent.  v3 appends
   major_words_per_msg (words promoted to or directly allocated on the
   major heap per message, over one post-warmup run — the long-lived
   per-node state that major collections must repeatedly mark); every
   v2 field keeps its meaning, so v2 baseline files still compare.

   Measurement configuration, deliberately pinned so rows are
   comparable across PRs:

   - [Gc.space_overhead] is set to 200 for the whole sweep.  At n =
     10^7 a broadcast run promotes ~740M words of per-node scheme
     state that every major cycle must re-mark; the default overhead
     of 120 triggers majors often enough that marking dominates the
     row (measured ~40% slower in-sweep on the same binary), and 200
     trades transient heap headroom for that marking time.  The
     baseline records numbers under this setting.
   - Graphs are cached keep-last-only, not in an unbounded per-worker
     cache.  Protocols are the innermost sweep axis, so consecutive
     tasks share their graph; keeping {e every} graph alive (the old
     behaviour) inflated the live major heap as the sweep advanced and
     slowed later rows by up to 3x — a measurement artifact, not a
     runner cost.
   - [Gc.compact] runs before each row, so heap state left by earlier
     rows never leaks into this one.

   The grid executes on a Sim.Pool ([--jobs=N] / ORACLE_SIZE_JOBS;
   default 1).  Every deterministic row field is identical at any job
   count; only the timing fields move.  At jobs = 1 timing is CPU time
   best-of-three (the baseline-comparable configuration); at jobs > 1
   rows are timed by wall clock, since [Sys.time] sums CPU across all
   domains.

   Wakeup rows double as a correctness gate: the paper's Theorem 2.1
   count (exactly n-1 messages, every node informed, quiescent) is
   asserted at every size, 10^7 included. *)

module Graph = Netgraph.Graph

let seed = 42

type row = {
  protocol : string;
  family : string;
  n : int;
  m : int;
  advice_bits : int;
  messages : int;
  rounds : int;
  reps : int;
  seconds : float;
  msgs_per_sec : float;
  rounds_per_sec : float;
  minor_words_per_msg : float;
  major_words_per_msg : float;
  all_informed : bool;
  quiescent : bool;
}

(* {1 Workloads} *)

let build_family family n =
  match family with
  | "path" -> Netgraph.Gen.path n
  | "clique" -> Netgraph.Gen.complete n
  | "gns" -> fst (Oracle_core.Lower_bound.wakeup_hard_graph ~n ~seed)
  | "sparse" ->
    let st = Random.State.make [| seed; n |] in
    Netgraph.Gen.random_connected ~n ~p:(min 1.0 (4.0 /. float_of_int n)) st
  | f -> invalid_arg ("perf: unknown family " ^ f)

(* Per-family size caps below the sweep ceiling: the quadratic families
   bound memory, not the runner — a clique at n = 2*10^3 already carries
   ~2*10^6 edges, and n = 10^4 would need ~5*10^7 — so they stop at
   2*10^3 and the cap is logged rather than silently dropped.  Sparse
   stops at 10^6: generating a connected G(n,p) at 10^7 costs more wall
   time than every measured row combined, for no additional coverage of
   the runner (the CSR adjacency it exercises is the same one the path
   rows stress at 10^7). *)
let families =
  [ ("path", 10_000_000); ("clique", 2_000); ("gns", 2_000); ("sparse", 1_000_000) ]

let sizes = [ 1_000; 2_000; 10_000; 100_000; 1_000_000; 10_000_000 ]

let wakeup_workload g =
  let o = Oracle_core.Wakeup.oracle () in
  let advice = o.Oracles.Oracle.advise g ~source:0 in
  (Oracles.Advice.size_bits advice, Oracles.Advice.get advice, Oracle_core.Wakeup.scheme ())

let broadcast_workload g =
  let o = Oracle_core.Broadcast.oracle () in
  let advice = o.Oracles.Oracle.advise g ~source:0 in
  (Oracles.Advice.size_bits advice, Oracles.Advice.get advice, Oracle_core.Broadcast.scheme ())

let workloads = [ ("wakeup", wakeup_workload); ("broadcast", broadcast_workload) ]

(* {1 Measurement} *)

let measure ~clock ~protocol ~family g =
  let n = Graph.n g in
  let advice_bits, advice, factory = (List.assoc protocol workloads) g in
  let run () = Sim.Runner.run ~max_messages:(5 * n) ~advice g ~source:0 factory in
  (* At jobs = 1, [clock] is CPU time ([Sys.time]): the row is
     single-threaded and does no I/O inside the timed region, so CPU
     time is the quantity we are optimising, and it is immune to the
     preemption noise of a shared machine (where a wall-clock pass can
     eat a 2x scheduling hit).  At jobs > 1 it is wall clock, because
     [Sys.time] is process-wide across domains.  Repeat small runs so
     each pass covers >= ~2*10^5 messages, and take the best of three
     passes.  [Gc.compact] first, so heap state left over from earlier
     rows never leaks into this one; one warmup run re-primes code
     paths and allocator state.  The allocation columns come from the
     single post-warmup run between the two counter reads: minor words
     are everything allocated, major words everything promoted or
     allocated directly on the major heap (the state major collections
     must repeatedly mark — the quantity that made large sparse rows
     fall off a cliff before the CSR adjacency). *)
  let reps = max 1 (200_000 / n) in
  Gc.compact ();
  ignore (run ());
  let minor0 = Gc.minor_words () in
  let major0 = (Gc.quick_stat ()).Gc.major_words in
  let last = ref (run ()) in
  let minor = Gc.minor_words () -. minor0 in
  let major = (Gc.quick_stat ()).Gc.major_words -. major0 in
  let dt = ref infinity in
  for _ = 1 to 3 do
    let t0 = clock () in
    for _ = 1 to reps do
      last := run ()
    done;
    let d = clock () -. t0 in
    if d < !dt then dt := d
  done;
  let dt = !dt in
  let r = !last in
  let sent = r.Sim.Runner.stats.Sim.Runner.sent in
  let rounds = r.Sim.Runner.stats.Sim.Runner.rounds in
  let per_run = dt /. float_of_int reps in
  let per_msg words = if sent > 0 then words /. float_of_int sent else 0.0 in
  {
    protocol;
    family;
    n;
    m = Graph.m g;
    advice_bits;
    messages = sent;
    rounds;
    reps;
    seconds = dt;
    msgs_per_sec = (if per_run > 0.0 then float_of_int sent /. per_run else 0.0);
    rounds_per_sec = (if per_run > 0.0 then float_of_int rounds /. per_run else 0.0);
    minor_words_per_msg = per_msg minor;
    major_words_per_msg = per_msg major;
    all_informed = r.Sim.Runner.all_informed;
    quiescent = r.Sim.Runner.quiescent;
  }

let assert_row row =
  (* The benchmark is also a correctness gate: a fast runner that loses
     the paper's counts is worthless. *)
  if not (row.all_informed && row.quiescent) then begin
    Printf.eprintf "perf: %s on %s n=%d did not complete (informed=%b quiescent=%b)\n"
      row.protocol row.family row.n row.all_informed row.quiescent;
    exit 1
  end;
  if row.protocol = "wakeup" && row.messages <> row.n - 1 then begin
    Printf.eprintf "perf: wakeup on %s n=%d sent %d messages, expected exactly n-1 = %d\n"
      row.family row.n row.messages (row.n - 1);
    exit 1
  end

(* {1 JSON out} *)

let row_to_json r =
  Printf.sprintf
    {|{"protocol":"%s","family":"%s","n":%d,"m":%d,"advice_bits":%d,"messages":%d,"rounds":%d,"reps":%d,"seconds":%.6f,"msgs_per_sec":%.1f,"rounds_per_sec":%.1f,"minor_words_per_msg":%.2f,"major_words_per_msg":%.2f,"all_informed":%b,"quiescent":%b}|}
    r.protocol r.family r.n r.m r.advice_bits r.messages r.rounds r.reps r.seconds
    r.msgs_per_sec r.rounds_per_sec r.minor_words_per_msg r.major_words_per_msg r.all_informed
    r.quiescent

let write_json file ~max_n ~jobs ~wall_seconds ~cpu_seconds rows =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"oracle-size/perf/v3\",\n\
    \  \"max_n\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"wall_seconds\": %.3f,\n\
    \  \"cpu_seconds\": %.3f,\n\
    \  \"rows\": [\n"
    max_n jobs wall_seconds cpu_seconds;
  List.iteri
    (fun i r ->
      output_string oc ("    " ^ row_to_json r);
      if i < List.length rows - 1 then output_string oc ",";
      output_char oc '\n')
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

(* {1 Baseline comparison}

   The baseline file is our own stable schema, so a full JSON parser is
   not needed: each row lives on one line, and we extract the keyed
   fields with string searches. *)

let find_field line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat in
  let rec search i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then Some (i + plen)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    let len = String.length line in
    while !stop < len && (match line.[!stop] with ',' | '}' -> false | _ -> true) do
      incr stop
    done;
    Some (String.sub line start (!stop - start))

let strip_quotes s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '"' then String.sub s 1 (String.length s - 2) else s

let read_baseline file =
  let ic = open_in file in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         ( find_field line "protocol",
           find_field line "family",
           find_field line "n",
           find_field line "msgs_per_sec" )
       with
       | Some p, Some f, Some n, Some mps -> (
         match (int_of_string_opt (String.trim n), float_of_string_opt (String.trim mps)) with
         | Some n, Some mps -> rows := ((strip_quotes p, strip_quotes f, n), mps) :: !rows
         | _ -> ())
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  !rows

(* The regression gate: more than 25% below the recorded msgs/sec at
   any matching (protocol, family, n) point fails the run.  The margin
   absorbs the CPU-time jitter of a shared machine (measured at well
   under 10% for best-of-three CPU-time rows) while still catching any
   real hot-path regression worth a review comment. *)
let check_baseline file rows =
  if not (Sys.file_exists file) then
    Printf.printf "perf: baseline %s not found, skipping regression check\n" file
  else begin
    let baseline = read_baseline file in
    let failures = ref 0 in
    List.iter
      (fun r ->
        match List.assoc_opt (r.protocol, r.family, r.n) baseline with
        | None -> ()
        | Some base ->
          if r.msgs_per_sec < base *. 0.75 then begin
            incr failures;
            Printf.eprintf
              "perf: REGRESSION %s/%s n=%d: %.0f msgs/s is more than 25%% below the baseline \
               %.0f\n"
              r.protocol r.family r.n r.msgs_per_sec base
          end
          else
            Printf.printf "perf: %s/%s n=%d ok vs baseline (%.0f vs %.0f msgs/s)\n" r.protocol
              r.family r.n r.msgs_per_sec base)
      rows;
    if !failures > 0 then exit 1
  end

(* {1 Driver} *)

type task = { t_family : string; t_n : int; t_protocol : string }

let () =
  let out = ref "BENCH_perf.json" in
  let max_n = ref 10_000_000 in
  let baseline = ref "" in
  let jobs_arg = ref None in
  List.iter
    (fun a ->
      let with_prefix p f =
        if String.starts_with ~prefix:p a then begin
          f (String.sub a (String.length p) (String.length a - String.length p));
          true
        end
        else false
      in
      if
        not
          (with_prefix "--out=" (fun v -> out := v)
          || with_prefix "--max-n=" (fun v -> max_n := int_of_string v)
          || with_prefix "--baseline=" (fun v -> baseline := v)
          || with_prefix "--jobs=" (fun v -> jobs_arg := Some (int_of_string v)))
      then begin
        Printf.eprintf "usage: perf [--out=FILE] [--max-n=N] [--baseline=FILE] [--jobs=N]\n";
        exit 2
      end)
    (List.tl (Array.to_list Sys.argv));
  (* Pinned GC configuration — see the header comment.  Set before any
     row runs so warmups and measurements agree. *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 200 };
  (* Default 1, not recommended_domain_count: the checked-in baseline is
     the single-job CPU-time configuration, and timing semantics switch
     with the job count (see [measure]). *)
  let jobs =
    match !jobs_arg with
    | Some j -> max 1 j
    | None -> (
      match Sys.getenv_opt "ORACLE_SIZE_JOBS" with
      | Some s -> ( match int_of_string_opt (String.trim s) with Some j -> max 1 j | None -> 1)
      | None -> 1)
  in
  let clock = if jobs = 1 then Sys.time else Unix.gettimeofday in
  (* The task list is the canonical emission order: families (outer),
     sizes, protocols — identical to the old sequential nesting, so v1
     consumers see rows in the same order at any job count. *)
  let tasks = ref [] in
  List.iter
    (fun (family, cap) ->
      List.iter
        (fun n ->
          if n > !max_n then ()
          else if n > cap then
            Printf.printf "perf: skipping %s at n=%d (family capped at %d)\n" family n cap
          else
            List.iter
              (fun (protocol, _) ->
                tasks := { t_family = family; t_n = n; t_protocol = protocol } :: !tasks)
              workloads)
        sizes)
    families;
  let tasks = Array.of_list (List.rev !tasks) in
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  let results =
    Sim.Sweep.map ~jobs
      ~local:(fun () -> ref None)
      ~f:(fun cache _i t ->
        (* Keep-last, not keep-all: protocols are the innermost axis, so
           the cache still saves every redundant build, but graphs from
           earlier (family, n) coordinates are dropped and collected
           instead of sitting in the live set distorting the GC costs of
           every row measured after them. *)
        let key = (t.t_family, t.t_n) in
        let g =
          match !cache with
          | Some (k, g) when k = key -> g
          | _ ->
            let g = build_family t.t_family t.t_n in
            cache := Some (key, g);
            g
        in
        let r = measure ~clock ~protocol:t.t_protocol ~family:t.t_family g in
        (* Live line on stderr as each row lands: a 10^7 sweep runs for
           minutes, and the ordered pass below only speaks after the
           join.  Unordered at jobs>1; the post-join pass stays the
           canonical record. *)
        Printf.eprintf "perf-live: %s %s n=%d %.0f msgs/s %.3f s\n%!"
          t.t_protocol t.t_family t.t_n r.msgs_per_sec r.seconds;
        r)
      tasks
  in
  let wall_seconds = Unix.gettimeofday () -. wall0 in
  let cpu_seconds = Sys.time () -. cpu0 in
  (* Single ordered pass after the join: asserts, progress lines and the
     JSON file all replay task order. *)
  let rows = ref [] in
  Array.iteri
    (fun i -> function
      | Error msg ->
        Printf.eprintf "perf: %s/%s n=%d failed: %s\n" tasks.(i).t_protocol tasks.(i).t_family
          tasks.(i).t_n msg;
        exit 1
      | Ok r ->
        assert_row r;
        Printf.printf "perf: %-9s %-6s n=%-8d %9.0f msgs/s %9.0f rounds/s %6.1f minor w/msg\n"
          r.protocol r.family r.n r.msgs_per_sec r.rounds_per_sec r.minor_words_per_msg;
        rows := r :: !rows)
    results;
  let rows = List.rev !rows in
  Table.render ~title:"perf: simulation hot path"
    ~header:
      [ "protocol"; "family"; "n"; "msgs/s"; "rounds/s"; "minor w/msg"; "major w/msg"; "run s" ]
    ~aligns:[ Table.L; Table.L; Table.R; Table.R; Table.R; Table.R; Table.R; Table.R ]
    (List.map
       (fun r ->
         [
           r.protocol;
           r.family;
           Table.i r.n;
           Printf.sprintf "%.0f" r.msgs_per_sec;
           Printf.sprintf "%.0f" r.rounds_per_sec;
           Table.f1 r.minor_words_per_msg;
           Table.f1 r.major_words_per_msg;
           Table.f3 (r.seconds /. float_of_int r.reps);
         ])
       rows);
  write_json !out ~max_n:!max_n ~jobs ~wall_seconds ~cpu_seconds rows;
  Printf.printf "perf: wrote %d rows to %s (jobs=%d wall=%.1fs cpu=%.1fs)\n" (List.length rows)
    !out jobs wall_seconds cpu_seconds;
  if !baseline <> "" then check_baseline !baseline rows
