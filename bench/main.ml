(* Experiment harness: one table per experiment in DESIGN.md §4.

   Usage: main.exe [--trace-out=FILE] [--stress-out=FILE] [--resilience-out=FILE]
                   [e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|smoke|stress|resilience|micro|all]...
   With no argument, runs every table (micro included).  The [smoke]
   experiment writes a JSON Lines telemetry trace to FILE (default
   smoke.jsonl); [dune build @smoke] produces it as a build artifact.
   The [stress] experiment sweeps every builtin fault plan over every
   scheduler and writes one JSON line per adversarial run to the
   --stress-out FILE (default stress.jsonl); [dune build @stress]
   mirrors @smoke.  The [resilience] experiment sweeps corruption x
   ECC protection x retry budget and writes one JSON line per run to
   the --resilience-out FILE (default resilience.jsonl); [dune build
   @resilience] mirrors @stress. *)

open Oracle_core
module Graph = Netgraph.Graph
module Families = Netgraph.Families
module Spanning = Netgraph.Spanning

let seed = 42

let ns_small = [ 16; 32; 64; 128; 256 ]
let ns_medium = [ 64; 128; 256; 512; 1024 ]

let log2f n = Float.log2 (float_of_int n)

(* {1 E1 — Theorem 2.1: wakeup oracle size and message count} *)

let e1 () =
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let o = Wakeup.run g ~source:0 in
            let budget = Bounds.wakeup_advice_upper ~n:actual in
            [
              Families.name fam;
              Table.i actual;
              Table.i o.Wakeup.advice_bits;
              Table.f2 (float_of_int o.Wakeup.advice_bits /. (float_of_int actual *. log2f actual));
              Table.i budget;
              Table.i o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.i (actual - 1);
              Table.b
                (o.Wakeup.result.Sim.Runner.all_informed
                && o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent = actual - 1);
            ])
          ns_medium)
      Families.default_sweep
  in
  Table.render
    ~title:"E1 (Thm 2.1): wakeup advice size ~ n log n, messages = n-1"
    ~header:
      [ "family"; "n"; "advice bits"; "bits/(n lg n)"; "budget"; "msgs"; "n-1"; "ok" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; L ]
    rows

(* {1 E2 — Theorem 2.2: the wakeup lower bound} *)

let e2 () =
  let rows =
    List.map
      (fun n ->
        let p = Lower_bound.wakeup_experiment ~n ~seed in
        [
          Table.i p.Lower_bound.wp_n;
          Table.i (2 * p.Lower_bound.wp_n);
          Table.i p.Lower_bound.informed_messages;
          Table.i p.Lower_bound.informed_bits;
          Table.i p.Lower_bound.oblivious_messages;
          Table.i p.Lower_bound.capped_bits;
          Table.f1 p.Lower_bound.counting_bound;
        ])
      ns_small
  in
  Table.render
    ~title:"E2 (Thm 2.2): wakeup on G_{n,S} — informed vs advice-free cost"
    ~header:
      [
        "n";
        "nodes";
        "advised msgs";
        "advised bits";
        "flooding msgs";
        "cap=1/3*2n*lg2n";
        "counting bound";
      ]
    ~aligns:[ Table.R; R; R; R; R; R; R ]
    rows;
  print_endline
    "(the counting bound at the 1/3-cap is asymptotic: negative entries mean the finite-n\n\
    \ count is vacuous there; the threshold table below is the finite-n reading)";
  let rows =
    List.map
      (fun n ->
        let q = Lower_bound.min_advice_for_linear_wakeup ~n ~budget_factor:3.0 in
        let denom = float_of_int (2 * n) *. log2f (2 * n) in
        [
          Table.i n;
          Table.i q;
          Table.f3 (float_of_int q /. denom);
          Table.f2 (float_of_int q /. float_of_int (2 * n));
        ])
      [ 64; 256; 1024; 4096; 16384; 65536 ]
  in
  Table.render
    ~title:
      "E2b (Thm 2.2): advice threshold below which counting forces >3*(2n) messages"
    ~header:[ "n"; "threshold bits q*"; "q*/(2n lg 2n)"; "q*/(2n)" ]
    ~aligns:[ Table.R; R; R; R ]
    rows;
  print_endline
    "(q*/(2n lg 2n) climbs towards the paper's alpha = 1/2 threshold; q*/(2n) grows\n\
    \ unboundedly: the oracle must be superlinear, i.e. Omega(n log n) in shape)";
  let rows =
    List.concat_map
      (fun c ->
        List.map
          (fun n ->
            let q = Lower_bound.min_advice_for_linear_wakeup_c ~n ~c ~budget_factor:3.0 in
            let nodes = (1 + c) * n in
            [
              Table.i c;
              Table.i n;
              Table.i nodes;
              Table.i q;
              Table.f3 (float_of_int q /. (float_of_int nodes *. log2f nodes));
              Table.f3 (float_of_int c /. float_of_int (c + 1));
            ])
          [ 1024; 16384 ])
      [ 1; 2; 3; 4 ]
  in
  Table.render
    ~title:
      "E2c (Remark after Thm 2.2): subdividing c*n edges pushes the threshold towards c/(c+1)"
    ~header:[ "c"; "n"; "N=(1+c)n"; "threshold q*"; "q*/(N lg N)"; "limit c/(c+1)" ]
    ~aligns:[ Table.R; R; R; R; R; R ]
    rows;
  print_endline
    "(at fixed n the normalised threshold increases with c, ordered exactly as the\n\
    \ limits c/(c+1) predict: the n log n upper bound is optimal, constant included)"

(* {1 E3 — Claim 3.1: the light spanning tree} *)

let e3 () =
  let st = Random.State.make [| seed |] in
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let contribution tree = Spanning.contribution g (Spanning.edges tree) in
            let light = contribution (Spanning.light g ~root:0) in
            let bfs = contribution (Spanning.bfs g ~root:0) in
            let dfs = contribution (Spanning.dfs g ~root:0) in
            let rnd = contribution (Spanning.random g ~root:0 st) in
            [
              Families.name fam;
              Table.i actual;
              Table.i light;
              Table.f2 (float_of_int light /. float_of_int actual);
              Table.i (4 * actual);
              Table.i bfs;
              Table.i dfs;
              Table.i rnd;
              Table.b (light <= 4 * actual);
            ])
          [ 64; 256; 1024 ])
      Families.default_sweep
  in
  Table.render
    ~title:"E3 (Claim 3.1): spanning-tree contribution sum #2(w(e)) — light vs naive trees"
    ~header:[ "family"; "n"; "light"; "light/n"; "4n"; "bfs"; "dfs"; "random"; "<=4n" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; R; L ]
    rows

(* {1 E4 — Theorem 3.1: broadcast with an O(n) oracle} *)

let e4 () =
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let sync = Broadcast.run ~scheduler:Sim.Scheduler.Synchronous g ~source:0 in
            let asy = Broadcast.run ~scheduler:(Sim.Scheduler.Async_random 7) g ~source:0 in
            let worst =
              max sync.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent
                asy.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent
            in
            [
              Families.name fam;
              Table.i actual;
              Table.i sync.Broadcast.advice_bits;
              Table.f2 (float_of_int sync.Broadcast.advice_bits /. float_of_int actual);
              Table.i (8 * actual);
              Table.i worst;
              Table.f2 (float_of_int worst /. float_of_int actual);
              Table.b
                (sync.Broadcast.result.Sim.Runner.all_informed
                && asy.Broadcast.result.Sim.Runner.all_informed
                && worst < 3 * actual
                && sync.Broadcast.advice_bits <= 8 * actual);
            ])
          ns_medium)
      Families.default_sweep
  in
  Table.render
    ~title:"E4 (Thm 3.1): broadcast — O(n) advice bits, <3n messages (sync & async)"
    ~header:[ "family"; "n"; "advice bits"; "bits/n"; "8n"; "msgs"; "msgs/n"; "ok" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; L ]
    rows

(* {1 E5 — Theorem 3.2 / Claim 3.3: clique price without advice} *)

let e5 () =
  let n = 96 in
  let rows =
    List.map
      (fun k ->
        let p = Lower_bound.broadcast_experiment ~n ~k ~seed in
        [
          Table.i p.Lower_bound.bp_n;
          Table.i p.Lower_bound.bp_k;
          Table.i p.Lower_bound.advised_bits;
          Table.i p.Lower_bound.advised_messages;
          Table.i p.Lower_bound.starved_messages;
          Table.f1 p.Lower_bound.clique_bound;
          Table.b
            (float_of_int p.Lower_bound.starved_messages >= p.Lower_bound.clique_bound
            && p.Lower_bound.advised_messages < 3 * 2 * n);
        ])
      [ 4; 6; 8; 12; 16; 24; 32 ]
  in
  Table.render
    ~title:
      "E5 (Thm 3.2): broadcast on G_{n,S,C} — advised stays linear, advice-free pays Omega(nk)"
    ~header:
      [ "n"; "k"; "advised bits"; "advised msgs"; "advice-free msgs"; "n(k-1)/8"; "ok" ]
    ~aligns:[ Table.R; R; R; R; R; R; L ]
    rows;
  let g, _, _ = Lower_bound.broadcast_hard_graph ~n:48 ~k:8 ~seed in
  let full = Broadcast.run g ~source:0 in
  let budgets = [ 0; 8; 16; 32; 64; 96; full.Broadcast.advice_bits ] in
  let rows =
    List.map
      (fun p ->
        [
          Table.i p.Lower_bound.sv_budget;
          Table.i p.Lower_bound.sv_messages;
          Table.i p.Lower_bound.sv_informed;
          Table.i (Graph.n g);
          Table.b p.Lower_bound.sv_completed;
        ])
      (Lower_bound.starvation_sweep g ~source:0 ~budgets)
  in
  Table.render
    ~title:"E5b: Scheme B under advice starvation (G_{48,S,C} with k=8, full oracle last)"
    ~header:[ "advice budget"; "msgs"; "informed"; "nodes"; "completed" ]
    ~aligns:[ Table.R; R; R; R; L ]
    rows

(* {1 E6 — the headline separation} *)

let e6 () =
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let m = Separation.measure fam ~n ~seed in
            [
              m.Separation.family;
              Table.i m.Separation.n;
              Table.i m.Separation.wakeup_bits;
              Table.i m.Separation.broadcast_bits;
              Table.f2 m.Separation.bits_ratio;
              Table.i m.Separation.wakeup_messages;
              Table.i m.Separation.broadcast_messages;
              Table.b (m.Separation.wakeup_ok && m.Separation.broadcast_ok);
            ])
          [ 64; 256; 1024 ])
      Families.default_sweep
  in
  Table.render
    ~title:
      "E6 (headline): wakeup needs Theta(n log n) advice, broadcast Theta(n) — ratio grows"
    ~header:
      [ "family"; "n"; "wakeup bits"; "bcast bits"; "ratio"; "wakeup msgs"; "bcast msgs"; "ok" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; L ]
    rows;
  let ms = Separation.sweep Families.Sparse_random ~ns:[ 64; 128; 256; 512; 1024 ] ~seed in
  Printf.printf "ratio log-log growth slope on sparse-random: %.3f (log-like: between 0 and 1)\n"
    (Separation.ratio_growth ms)

(* {1 E7 — encoding ablation} *)

let e7 () =
  let rows =
    List.map
      (fun fam ->
        let g = Families.build fam ~n:256 ~seed in
        let actual = Graph.n g in
        let wbits enc = (Wakeup.run ~encoding:enc g ~source:0).Wakeup.advice_bits in
        let bbits enc = (Broadcast.run ~encoding:enc g ~source:0).Broadcast.advice_bits in
        [
          Families.name fam;
          Table.i actual;
          Table.i (wbits Wakeup.Paper);
          Table.i (wbits Wakeup.Paper_minimal);
          Table.i (wbits Wakeup.Gamma);
          Table.i (bbits Broadcast.Marked);
          Table.i (bbits Broadcast.Gamma);
        ])
      Families.default_sweep
  in
  Table.render
    ~title:"E7 (ablation): advice size per encoding (n = 256)"
    ~header:
      [
        "family";
        "n";
        "wakeup paper";
        "wakeup minimal";
        "wakeup gamma";
        "bcast marked";
        "bcast gamma";
      ]
    ~aligns:[ Table.L; R; R; R; R; R; R ]
    rows

(* {1 E8 — spanning-tree ablation for the broadcast oracle} *)

let e8 () =
  let st = Random.State.make [| seed |] in
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let bits tree = (Broadcast.run ~tree g ~source:0).Broadcast.advice_bits in
            let light = bits (fun g ~root -> Spanning.light g ~root) in
            let bfs = bits (fun g ~root -> Spanning.bfs g ~root) in
            let dfs = bits (fun g ~root -> Spanning.dfs g ~root) in
            let rnd = bits (fun g ~root -> Spanning.random g ~root st) in
            [
              Families.name fam;
              Table.i actual;
              Table.i light;
              Table.i bfs;
              Table.i dfs;
              Table.i rnd;
              Table.i (8 * actual);
              Table.b (light <= 8 * actual);
            ])
          [ 64; 256; 1024 ])
      [ Families.Complete; Families.Dense_random; Families.Hypercube ]
  in
  Table.render
    ~title:"E8 (ablation): broadcast advice bits per spanning tree — why Claim 3.1 is needed"
    ~header:[ "family"; "n"; "light"; "bfs"; "dfs"; "random"; "8n"; "light<=8n" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; L ]
    rows

(* {1 E9 — flooding baseline vs Scheme B across densities} *)

let e9 () =
  let n = 256 in
  let rows =
    List.map
      (fun p ->
        let g =
          Netgraph.Gen.random_connected ~n ~p
            (Random.State.make [| seed; int_of_float (p *. 100.) |])
        in
        let advice_free _ = Bitstring.Bitbuf.create () in
        let flood = Sim.Runner.run ~advice:advice_free g ~source:0 Sim.Scheme.flooding in
        let b = Broadcast.run g ~source:0 in
        [
          Table.f2 p;
          Table.i (Graph.m g);
          Table.i flood.Sim.Runner.stats.Sim.Runner.sent;
          Table.i b.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent;
          Table.f2
            (float_of_int flood.Sim.Runner.stats.Sim.Runner.sent
            /. float_of_int b.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent);
          Table.i b.Broadcast.advice_bits;
        ])
      [ 0.02; 0.05; 0.1; 0.2; 0.4; 0.8 ]
  in
  Table.render
    ~title:"E9 (baseline): flooding Theta(m) vs Scheme B Theta(n) messages (n = 256)"
    ~header:[ "p"; "m"; "flooding msgs"; "scheme B msgs"; "flood/B"; "B advice bits" ]
    ~aligns:[ Table.R; R; R; R; R; R ]
    rows

(* {1 E10 — Lemma 2.1: adversary bound vs strategies} *)

let e10 () =
  let row name instances =
    let play s =
      let adv = Edge_discovery.adversary instances in
      (Edge_discovery.play adv s).Edge_discovery.probes_used
    in
    let adv = Edge_discovery.adversary instances in
    [
      name;
      Table.i (List.length instances);
      Table.f1 (Edge_discovery.lower_bound adv);
      Table.i (play Edge_discovery.sequential);
      Table.i (play (Edge_discovery.random_strategy ~seed:1));
      Table.i (play (Edge_discovery.random_strategy ~seed:2));
    ]
  in
  let enumerated =
    List.map
      (fun (n, x) ->
        row
          (Printf.sprintf "full n=%d |X|=%d" n x)
          (Edge_discovery.enumerate_instances ~n ~x_size:x ~excluded:[]))
      [ (4, 1); (4, 2); (5, 2); (6, 2); (6, 3) ]
  in
  let sampled =
    List.map
      (fun (n, x, count) ->
        let st = Random.State.make [| seed; n; x |] in
        row
          (Printf.sprintf "sampled n=%d |X|=%d" n x)
          (List.sort_uniq compare
             (Edge_discovery.sample_instances ~n ~x_size:x ~excluded:[] ~count st)))
      [ (10, 3, 300); (14, 4, 500); (20, 5, 800) ]
  in
  Table.render
    ~title:"E10 (Lemma 2.1): edge-discovery — adversary bound vs actual strategies"
    ~header:[ "family"; "|I|"; "bound lg(|I|/|X|!)"; "sequential"; "random#1"; "random#2" ]
    ~aligns:[ Table.L; R; R; R; R; R ]
    (enumerated @ sampled)


(* {1 E11 — knowledge vs messages vs time} *)

let e11 () =
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let advice_free _ = Bitstring.Bitbuf.create () in
            let flood =
              Sim.Runner.run ~max_messages:(4 * Graph.m g) ~advice:advice_free g ~source:0
                Sim.Scheme.flooding
            in
            let bc = Broadcast.run g ~source:0 in
            let bc_bfs =
              Broadcast.run ~tree:(fun g ~root -> Spanning.bfs g ~root) g ~source:0
            in
            let wk = Wakeup.run g ~source:0 in
            [
              Families.name fam;
              Table.i actual;
              Table.i flood.Sim.Runner.stats.Sim.Runner.sent;
              Table.i flood.Sim.Runner.stats.Sim.Runner.causal_depth;
              Table.i bc.Broadcast.advice_bits;
              Table.i bc.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.i bc.Broadcast.result.Sim.Runner.stats.Sim.Runner.causal_depth;
              Table.i bc_bfs.Broadcast.advice_bits;
              Table.i bc_bfs.Broadcast.result.Sim.Runner.stats.Sim.Runner.causal_depth;
              Table.i wk.Wakeup.advice_bits;
              Table.i wk.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.i wk.Wakeup.result.Sim.Runner.stats.Sim.Runner.causal_depth;
            ])
          [ 64; 256; 1024 ])
      [ Families.Sparse_random; Families.Dense_random; Families.Complete; Families.Grid ]
  in
  Table.render
    ~title:
      "E11 (trade-off): advice vs messages vs causal time — flooding / Scheme B (light and BFS trees) / wakeup tree"
    ~header:
      [
        "family"; "n"; "flood msg"; "flood time"; "B bits"; "B msg"; "B time"; "B-bfs bits";
        "B-bfs time"; "wake bits"; "wake msg"; "wake time";
      ]
    ~aligns:[ Table.L; R; R; R; R; R; R; R; R; R; R; R ]
    rows;
  print_endline
    "(Scheme B buys linear messages with ~2 bits/node but its light tree can be deep:\n\
    \ on K*_n its causal time is far above flooding's diameter-2.  Running Scheme B on a\n\
    \ BFS tree instead buys the time back — at ~8x the advice: exactly the knowledge/time\n\
    \ trade-off the paper's conclusion poses)"

(* {1 E12 — gossip} *)

let e12 () =
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let tree = Gossip.run g ~source:0 in
            let flood = Gossip.run_flooding g ~source:0 in
            [
              Families.name fam;
              Table.i actual;
              Table.i tree.Gossip.advice_bits;
              Table.i tree.Gossip.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.i (2 * (actual - 1));
              Table.i flood.Gossip.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.b (tree.Gossip.complete && flood.Gossip.complete);
            ])
          [ 32; 64; 128 ])
      [ Families.Random_tree; Families.Grid; Families.Sparse_random; Families.Dense_random ]
  in
  Table.render
    ~title:"E12 (gossip): tree advice gives 2(n-1) messages; advice-free flooding pays Θ(nm)"
    ~header:
      [ "family"; "n"; "advice bits"; "tree msgs"; "2(n-1)"; "flooding msgs"; "complete" ]
    ~aligns:[ Table.L; R; R; R; R; R; L ]
    rows

(* {1 E13 — radius-ρ knowledge (AGPV trade-off)} *)

let e13 () =
  let rows =
    List.concat_map
      (fun fam ->
        let g = Families.build fam ~n:96 ~seed in
        let actual = Graph.n g in
        List.map
          (fun rho ->
            let o = Neighborhood.run ~rho g ~source:0 in
            [
              Families.name fam;
              Table.i actual;
              Table.i (Graph.m g);
              Table.i rho;
              Table.i o.Neighborhood.advice_bits;
              Table.i o.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.b o.Neighborhood.result.Sim.Runner.all_informed;
            ])
          [ 0; 1; 2; 3 ])
      [ Families.Sparse_random; Families.Dense_random; Families.Complete ]
  in
  Table.render
    ~title:
      "E13 (AGPV [1]): wakeup from radius-rho knowledge — messages collapse at rho=1,\n\
      \   advice keeps exploding after"
    ~header:[ "family"; "n"; "m"; "rho"; "advice bits"; "msgs"; "ok" ]
    ~aligns:[ Table.L; R; R; R; R; R; L ]
    rows

(* {1 E14 — exploration by mobile agents} *)

let e14 () =
  let no_advice = Bitstring.Bitbuf.create () in
  let rows =
    List.concat_map
      (fun fam ->
        let g = Families.build fam ~n:128 ~seed in
        let actual = Graph.n g and m = Graph.m g in
        let d = Netgraph.Traverse.diameter g in
        let dfs = Agent.Walker.run ~advice:no_advice g ~start:0 Agent.Explore.dfs in
        let rotor =
          Agent.Walker.run
            ~max_moves:((4 * m * (d + 1)) + (2 * m))
            ~advice:no_advice g ~start:0 Agent.Explore.rotor_router
        in
        let walk =
          Agent.Walker.run ~max_moves:(200 * m * actual) ~advice:no_advice g ~start:0
            (Agent.Explore.random_walk ~seed)
        in
        let route = Agent.Explore.route_advice g ~start:0 in
        let guided = Agent.Walker.run ~advice:route g ~start:0 Agent.Explore.guided in
        let cover o = match o.Agent.Walker.moves_to_cover with Some c -> c | None -> -1 in
        [
          [
            Families.name fam;
            Table.i actual;
            Table.i m;
            Table.i (cover dfs);
            Table.i (cover rotor);
            Table.i (cover walk);
            Table.i (cover guided);
            Table.i (Bitstring.Bitbuf.length route);
            Table.b (dfs.Agent.Walker.covered && rotor.covered && walk.covered && guided.covered);
          ];
        ])
      [ Families.Random_tree; Families.Grid; Families.Hypercube; Families.Dense_random ]
  in
  Table.render
    ~title:
      "E14 (conclusion): exploration — moves to visit all nodes, advice-free vs oracle route"
    ~header:
      [ "family"; "n"; "m"; "dfs"; "rotor"; "random walk"; "guided"; "route bits"; "ok" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; R; L ]
    rows

(* {1 E15 — radio broadcast: knowledge vs time} *)

let e15 () =
  let no_advice _ = Bitstring.Bitbuf.create () in
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let d = Netgraph.Traverse.diameter g in
            let rr = Radio.Model.run ~advice:no_advice g ~source:0 Radio.Protocols.round_robin in
            let dc =
              List.map
                (fun s ->
                  (Radio.Model.run ~advice:no_advice g ~source:0 (Radio.Protocols.decay ~seed:s))
                    .Radio.Model.rounds)
                [ 1; 2; 3; 4; 5 ]
            in
            let dc_mean =
              float_of_int (List.fold_left ( + ) 0 dc) /. float_of_int (List.length dc)
            in
            let advice = Radio.Protocols.schedule_oracle g ~source:0 in
            let sc =
              Radio.Model.run ~advice:(Oracles.Advice.get advice) g ~source:0
                Radio.Protocols.scheduled
            in
            [
              Families.name fam;
              Table.i actual;
              Table.i d;
              Table.i rr.Radio.Model.rounds;
              Table.f1 dc_mean;
              Table.i sc.Radio.Model.rounds;
              Table.i (Oracles.Advice.size_bits advice);
              Table.b (rr.Radio.Model.all_informed && sc.Radio.Model.all_informed);
            ])
          [ 64; 256 ])
      [ Families.Path; Families.Grid; Families.Sparse_random; Families.Complete ]
  in
  Table.render
    ~title:
      "E15 (radio, §1.1 evidence): rounds to broadcast — labels-only vs randomized vs full map"
    ~header:
      [ "family"; "n"; "D"; "round-robin"; "decay (mean)"; "scheduled"; "schedule bits"; "ok" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; L ]
    rows

(* {1 E3b — port-labeling sensitivity} *)

let e3b () =
  let st = Random.State.make [| seed |] in
  let rows =
    List.concat_map
      (fun fam ->
        let g = Families.build fam ~n:256 ~seed in
        let actual = Graph.n g in
        let contribution graph =
          Spanning.contribution graph (Spanning.edges (Spanning.light graph ~root:0))
        in
        let original = contribution g in
        let permuted =
          List.init 5 (fun _ -> contribution (Netgraph.Transform.permute_ports g st))
        in
        let mean =
          float_of_int (List.fold_left ( + ) 0 permuted) /. float_of_int (List.length permuted)
        in
        let worst = List.fold_left max 0 permuted in
        [
          [
            Families.name fam;
            Table.i actual;
            Table.i original;
            Table.f1 mean;
            Table.i worst;
            Table.i (4 * actual);
            Table.b (worst <= 4 * actual);
          ];
        ])
      Families.default_sweep
  in
  Table.render
    ~title:
      "E3b: Claim 3.1 under adversarial port relabelings — the 4n bound is labeling-proof"
    ~header:[ "family"; "n"; "original"; "permuted mean"; "permuted worst"; "4n"; "<=4n" ]
    ~aligns:[ Table.L; R; R; R; R; R; L ]
    rows


(* {1 E16 — election: a task that is knowledge-cheap} *)

let e16 () =
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let free = Election.max_finding g in
            let marked = Election.with_marked_leader g in
            let b = Broadcast.run g ~source:0 in
            let w = Wakeup.run g ~source:0 in
            [
              Families.name fam;
              Table.i actual;
              Table.i free.Election.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.i marked.Election.advice_bits;
              Table.i marked.Election.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.i b.Broadcast.advice_bits;
              Table.i w.Wakeup.advice_bits;
              Table.b (free.Election.ok && marked.Election.ok);
            ])
          [ 64; 256 ])
      [ Families.Cycle; Families.Grid; Families.Sparse_random; Families.Dense_random ]
  in
  Table.render
    ~title:
      "E16 (contrast task): election needs 1 oracle bit — vs Theta(n) broadcast, Theta(n log n) wakeup"
    ~header:
      [
        "family"; "n"; "advice-free msgs"; "oracle bits"; "oracle msgs"; "bcast bits";
        "wakeup bits"; "ok";
      ]
    ~aligns:[ Table.L; R; R; R; R; R; R; L ]
    rows

(* {1 E17 — tree construction (the §1.2 task)} *)

let e17 () =
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let flood = Tree_construction.flood_build ~scheduler:Sim.Scheduler.Synchronous g ~source:0 in
            let advised = Tree_construction.advised_build g ~source:0 in
            [
              Families.name fam;
              Table.i actual;
              Table.i (Graph.m g);
              Table.i flood.Tree_construction.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.b flood.Tree_construction.is_bfs;
              Table.i advised.Tree_construction.advice_bits;
              Table.i advised.Tree_construction.result.Sim.Runner.stats.Sim.Runner.sent;
              Table.b
                (flood.Tree_construction.tree <> None && advised.Tree_construction.tree <> None);
            ])
          [ 64; 256; 1024 ])
      [ Families.Grid; Families.Sparse_random; Families.Dense_random; Families.Complete ]
  in
  Table.render
    ~title:
      "E17 (§1.2 task): BFS-tree construction — Theta(m) messages advice-free, zero with the oracle"
    ~header:
      [ "family"; "n"; "m"; "flood msgs"; "BFS?"; "oracle bits"; "oracle msgs"; "ok" ]
    ~aligns:[ Table.L; R; R; R; L; R; R; L ]
    rows


(* {1 E18 — distributed MST (the other §1.2 construction task)} *)

let e18 () =
  let rows =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            let g = Families.build fam ~n ~seed in
            let actual = Graph.n g in
            let d = Syncnet.Boruvka.distributed_build g in
            let a = Syncnet.Boruvka.advised_build g in
            [
              Families.name fam;
              Table.i actual;
              Table.i (Graph.m g);
              Table.i d.Syncnet.Boruvka.result.Syncnet.Model.messages;
              Table.i d.Syncnet.Boruvka.result.Syncnet.Model.rounds;
              Table.i a.Syncnet.Boruvka.advice_bits;
              Table.i a.Syncnet.Boruvka.result.Syncnet.Model.messages;
              Table.b (d.Syncnet.Boruvka.matches_reference && a.Syncnet.Boruvka.matches_reference);
            ])
          [ 32; 64; 128 ])
      [ Families.Grid; Families.Sparse_random; Families.Dense_random; Families.Complete ]
  in
  Table.render
    ~title:
      "E18 (§1.2 task): MST — distributed Boruvka O(m log n) msgs vs zero with the MST-ports oracle"
    ~header:
      [ "family"; "n"; "m"; "boruvka msgs"; "rounds"; "oracle bits"; "oracle msgs"; "= MST" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; L ]
    rows


(* {1 E19b — robustness under message loss (model ablation)} *)

let e19b () =
  let g = Families.build Families.Sparse_random ~n:128 ~seed in
  let n = Graph.n g in
  let informed_fraction result =
    let c = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 result.Sim.Runner.informed in
    float_of_int c /. float_of_int n
  in
  let mean_over_seeds f =
    let vals = List.map f [ 1; 2; 3; 4; 5 ] in
    List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)
  in
  let rows =
    List.map
      (fun p ->
        let loss seed = if p = 0.0 then None else Some (p, seed) in
        let run_loss seed scheme advice =
          match loss seed with
          | None -> Sim.Runner.run ~advice g ~source:0 scheme
          | Some l -> Sim.Runner.run ~loss:l ~advice g ~source:0 scheme
        in
        let no_advice _ = Bitstring.Bitbuf.create () in
        let flood = mean_over_seeds (fun s -> informed_fraction (run_loss s Sim.Scheme.flooding no_advice)) in
        let bo = Broadcast.oracle () in
        let badvice = Oracles.Oracle.advice_fun bo g ~source:0 in
        let bcast = mean_over_seeds (fun s -> informed_fraction (run_loss s (Broadcast.scheme ()) badvice)) in
        let wo = Wakeup.oracle () in
        let wadvice = Oracles.Oracle.advice_fun wo g ~source:0 in
        let wake = mean_over_seeds (fun s -> informed_fraction (run_loss s (Wakeup.scheme ()) wadvice)) in
        [ Table.f2 p; Table.f3 flood; Table.f3 bcast; Table.f3 wake ])
      [ 0.0; 0.02; 0.05; 0.1; 0.2 ]
  in
  Table.render
    ~title:
      "E19b (model ablation): informed fraction under message loss (n=128 sparse-random,\n\
      \   mean of 5 loss seeds) — message-optimal schemes have zero redundancy to spare"
    ~header:[ "loss p"; "flooding"; "scheme B"; "wakeup tree" ]
    ~aligns:[ Table.R; R; R; R ]
    rows

(* {1 E20 — spanner construction (the conclusion's extension)} *)

let e20 () =
  let rows =
    List.concat_map
      (fun fam ->
        let g = Families.build fam ~n:96 ~seed in
        let actual = Graph.n g in
        List.map
          (fun stretch ->
            let o = Spanner.measure g ~stretch in
            [
              Families.name fam;
              Table.i actual;
              Table.i (Graph.m g);
              Table.i o.Spanner.stretch;
              Table.i o.Spanner.edges_kept;
              Table.i o.Spanner.advice_bits;
              Table.f1 o.Spanner.measured_stretch;
              Table.b o.Spanner.valid;
            ])
          [ 1; 3; 5 ])
      [ Families.Sparse_random; Families.Dense_random; Families.Complete ]
  in
  Table.render
    ~title:"E20 (conclusion): greedy t-spanner oracles — edges and advice vs stretch"
    ~header:[ "family"; "n"; "m"; "t"; "edges kept"; "advice bits"; "worst stretch"; "ok" ]
    ~aligns:[ Table.L; R; R; R; R; R; R; L ]
    rows

(* {1 Smoke — one small run that emits a JSONL telemetry artifact} *)

let trace_out = ref "smoke.jsonl"

let smoke () =
  let g = Families.build Families.Sparse_random ~n:32 ~seed in
  let file = Obs.Jsonl.file_sink !trace_out in
  let ring = Obs.Ring.create ~capacity:64 in
  let o =
    Fun.protect
      ~finally:(fun () -> Obs.Sink.close file)
      (fun () -> Wakeup.run ~sinks:[ file; Obs.Ring.sink ring ] g ~source:0)
  in
  let stats = o.Wakeup.result.Sim.Runner.stats in
  let events = Obs.Jsonl.read_file !trace_out in
  let replayed = Obs.Replay.replay ~n:(Graph.n g) events in
  Printf.printf
    "smoke: wakeup on sparse-random n=%d — %d msgs, %d advice bits; trace %s (%d events,\n\
    \  ring kept last %d); replay agrees: %b\n"
    (Graph.n g) stats.Sim.Runner.sent o.Wakeup.advice_bits !trace_out (List.length events)
    (Obs.Ring.length ring)
    (replayed.Obs.Replay.all_informed = o.Wakeup.result.Sim.Runner.all_informed
    && replayed.Obs.Replay.summary.Obs.Counting.sent = stats.Sim.Runner.sent)

(* {1 Stress — every builtin fault plan x every scheduler x graph family} *)

let stress_out = ref "stress.jsonl"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One adversarial run of the stress grid: returns the serialized JSONL
   row plus the aggregates the summary table needs.  Runs on a pool
   worker, so it touches no shared mutable state: the graph is immutable,
   the raw advice comes from the worker's own cache, and the row string
   is written by the main domain after the join. *)
type stress_task = {
  st_proto : Fault.Harness.protocol;
  st_plan_name : string;
  st_plan : Fault.Plan.t;
  st_gname : string;
  st_graph : Graph.t;
  st_sched : Sim.Scheduler.t;
}

(* Journaled bench runs: [--stress-journal=FILE] / [--resilience-journal=FILE]
   make the grids crash-safe and resumable through the same machinery as
   [oraclesize sweep --journal].  Bench tasks are not sweep points, so
   each grid keys its journal by a coordinate hash of its own task
   tokens; the superblock spec names the grid shape so a stress journal
   can never resume a resilience run (or a reshaped grid). *)
let stress_journal = ref None

let resilience_journal = ref None

let bench_journal name journal_ref =
  Option.map (fun path -> (path, { Sim.Journal.spec = name; extra = "" })) !journal_ref

let acceptable_entry (e : Sim.Journal.entry) =
  match e.Sim.Journal.verdict_class with
  | Sim.Journal.Completed | Sim.Journal.Degraded -> true
  | Sim.Journal.Stalled | Sim.Journal.Violated -> false

let stress_entry advice_cache t =
  let raw_advice =
    Sim.Sweep.Cache.find advice_cache
      (Fault.Harness.protocol_name t.st_proto, t.st_gname)
      (fun () -> Fault.Harness.advise t.st_proto t.st_graph ~source:0)
  in
  let o =
    Fault.Harness.run ~scheduler:t.st_sched ~plan:t.st_plan ~raw_advice t.st_proto t.st_graph
      ~source:0
  in
  Fault.Harness.journal_entry t.st_graph o

let stress_key t =
  Sim.Sweep.derive_seed 0
    [
      "stress";
      Fault.Harness.protocol_name t.st_proto;
      t.st_plan_name;
      t.st_gname;
      Sim.Scheduler.name t.st_sched;
    ]

(* The row is a pure function of (task, entry): a replayed point and a
   freshly executed one print the same bytes, which the resume gate
   checks with cmp. *)
let stress_row t (e : Sim.Journal.entry) =
  Printf.sprintf
    {|{"protocol":"%s","graph":"%s","n":%d,"m":%d,"scheduler":"%s","plan":"%s","sent":%d,"faults":%d,"fallbacks":%d,"tampered":%d,"retransmits":%d,"corrected_bits":%d,"informed":%d,"class":"%s","verdict":"%s"}|}
    (Fault.Harness.protocol_name t.st_proto)
    (json_escape t.st_gname) e.Sim.Journal.n e.Sim.Journal.m
    (json_escape (Sim.Scheduler.name t.st_sched))
    (json_escape t.st_plan_name) e.Sim.Journal.messages e.Sim.Journal.faults
    e.Sim.Journal.fallbacks e.Sim.Journal.tampered e.Sim.Journal.retransmits
    e.Sim.Journal.corrected_bits e.Sim.Journal.informed
    (Sim.Journal.class_name e.Sim.Journal.verdict_class)
    (json_escape e.Sim.Journal.verdict)

let stress () =
  let graphs =
    [
      ("random-tree", Families.build Families.Random_tree ~n:24 ~seed);
      ("sparse-random", Families.build Families.Sparse_random ~n:24 ~seed);
      ("G_{12,S}", fst (Lower_bound.wakeup_hard_graph ~n:12 ~seed));
    ]
  in
  let protocols = [ Fault.Harness.Wakeup; Fault.Harness.Broadcast ] in
  (* Task order IS the emission order: the exact nesting of the old
     sequential loops, so stress.jsonl is byte-identical at any job
     count (the CI determinism gate diffs -j 1 against -j 2). *)
  let tasks =
    List.concat_map
      (fun proto ->
        List.concat_map
          (fun (plan_name, plan) ->
            List.concat_map
              (fun (gname, g) ->
                List.map
                  (fun scheduler ->
                    {
                      st_proto = proto;
                      st_plan_name = plan_name;
                      st_plan = plan;
                      st_gname = gname;
                      st_graph = g;
                      st_sched = scheduler;
                    })
                  Sim.Scheduler.default_suite)
              graphs)
          Fault.Plan.builtins)
      protocols
    |> Array.of_list
  in
  let jobs = Sim.Pool.default_jobs () in
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  (* Single ordered pass after the join: JSONL rows and table aggregates
     both replay canonical task order on the main domain. *)
  let oc = open_out !stress_out in
  let runs = ref 0 in
  let graceful = ref 0 in
  let counters = Hashtbl.create 32 in
  let count key cls =
    let completed, degraded, stalled, violated =
      match Hashtbl.find_opt counters key with Some c -> c | None -> (0, 0, 0, 0)
    in
    Hashtbl.replace counters key
      (match cls with
      | "completed" -> (completed + 1, degraded, stalled, violated)
      | "degraded" -> (completed, degraded + 1, stalled, violated)
      | "stalled" -> (completed, degraded, stalled + 1, violated)
      | _ -> (completed, degraded, stalled, violated + 1))
  in
  let outcome =
    Sim.Sweep.map_journaled ~jobs
      ?journal:(bench_journal "bench-stress-v1" stress_journal)
      ~key:stress_key
      ~local:(fun () -> Sim.Sweep.Cache.create ())
      ~f:(fun cache _i t -> stress_entry cache t)
      ~emit:(fun _i t e ->
        incr runs;
        if acceptable_entry e then incr graceful;
        count
          (Fault.Harness.protocol_name t.st_proto, t.st_plan_name)
          (Sim.Journal.class_name e.Sim.Journal.verdict_class);
        output_string oc (stress_row t e);
        output_char oc '\n')
      tasks
  in
  let wall = Unix.gettimeofday () -. wall0 in
  let cpu = Sys.time () -. cpu0 in
  close_out oc;
  let stats =
    match outcome with
    | Error msg ->
      Printf.eprintf "stress: journal: %s\n" msg;
      exit 1
    | Ok stats -> stats
  in
  List.iter
    (fun (i, msg) ->
      Printf.eprintf "stress: task %d (%s/%s/%s) failed: %s\n" i
        (Fault.Harness.protocol_name tasks.(i).st_proto)
        tasks.(i).st_gname tasks.(i).st_plan_name msg)
    stats.Sim.Sweep.failed;
  if stats.Sim.Sweep.failed <> [] then exit 1;
  (match (!stress_journal, stats.Sim.Sweep.recovery) with
  | Some path, Some r ->
    Printf.eprintf "stress: journal %s: replayed %d, skipped %d, executed %d\n" path
      r.Sim.Journal.replayed stats.Sim.Sweep.skipped stats.Sim.Sweep.executed
  | _ -> ());
  let rows =
    List.concat_map
      (fun proto ->
        List.map
          (fun (plan_name, _) ->
            let completed, degraded, stalled, violated =
              match Hashtbl.find_opt counters (Fault.Harness.protocol_name proto, plan_name) with
              | Some c -> c
              | None -> (0, 0, 0, 0)
            in
            [
              Fault.Harness.protocol_name proto;
              plan_name;
              Table.i completed;
              Table.i degraded;
              Table.i stalled;
              Table.i violated;
            ])
          Fault.Plan.builtins)
      protocols
  in
  Table.render
    ~title:
      "Stress: verdicts per fault plan over 5 schedulers x 3 graphs (tree, sparse, G_{n,S}) — \
       no run may abort"
    ~header:[ "protocol"; "plan"; "completed"; "degraded"; "stalled"; "violated" ]
    ~aligns:[ Table.L; L; R; R; R; R ]
    rows;
  Printf.printf
    "stress: %d adversarial runs -> %s; graceful (completed or degraded): %d/%d (jobs=%d \
     wall=%.2fs cpu=%.2fs)\n"
    !runs !stress_out !graceful !runs jobs wall cpu

(* {1 Resilience — the recovery frontier: corruption x protection x retry} *)

let resilience_out = ref "resilience.jsonl"

type resilience_task = {
  rt_plan_name : string;
  rt_plan : Fault.Plan.t;
  rt_protect : Bitstring.Ecc.level;
  rt_retry : int;
  rt_proto : Fault.Harness.protocol;
  rt_gname : string;
  rt_graph : Graph.t;
}

let resilience_entry advice_cache t =
  let raw_advice =
    (* Advice depends only on (protocol, graph): one cache entry serves
       the whole plan x protection x retry frontier over it. *)
    Sim.Sweep.Cache.find advice_cache
      (Fault.Harness.protocol_name t.rt_proto, t.rt_gname)
      (fun () -> Fault.Harness.advise t.rt_proto t.rt_graph ~source:0)
  in
  let o =
    Fault.Harness.run ~plan:t.rt_plan ~protect:t.rt_protect ~retry:t.rt_retry ~raw_advice
      t.rt_proto t.rt_graph ~source:0
  in
  Fault.Harness.journal_entry t.rt_graph o

let resilience_key t =
  Sim.Sweep.derive_seed 0
    [
      "resilience";
      t.rt_plan_name;
      Bitstring.Ecc.name t.rt_protect;
      string_of_int t.rt_retry;
      Fault.Harness.protocol_name t.rt_proto;
      t.rt_gname;
    ]

let resilience_overhead (e : Sim.Journal.entry) =
  if e.Sim.Journal.raw_advice_bits = 0 then 1.0
  else float_of_int e.Sim.Journal.advice_bits /. float_of_int e.Sim.Journal.raw_advice_bits

let resilience_row t (e : Sim.Journal.entry) =
  Printf.sprintf
    {|{"protocol":"%s","graph":"%s","n":%d,"m":%d,"plan":"%s","protect":"%s","retry":%d,"raw_bits":%d,"protected_bits":%d,"overhead":%.3f,"sent":%d,"retransmits":%d,"corrected_bits":%d,"fallbacks":%d,"class":"%s"}|}
    (Fault.Harness.protocol_name t.rt_proto)
    (json_escape t.rt_gname) e.Sim.Journal.n e.Sim.Journal.m
    (json_escape t.rt_plan_name)
    (Bitstring.Ecc.name t.rt_protect) t.rt_retry e.Sim.Journal.raw_advice_bits
    e.Sim.Journal.advice_bits (resilience_overhead e) e.Sim.Journal.messages
    e.Sim.Journal.retransmits e.Sim.Journal.corrected_bits e.Sim.Journal.fallbacks
    (Sim.Journal.class_name e.Sim.Journal.verdict_class)

let resilience () =
  let graphs =
    [
      ("random-tree", Families.build Families.Random_tree ~n:24 ~seed);
      ("sparse-random", Families.build Families.Sparse_random ~n:24 ~seed);
    ]
  in
  let plans =
    [
      "advice-flip=1,seed=5";
      "advice-flip=4,seed=5";
      "drop=0.1,seed=7";
      "drop=0.1,crash=1@3,seed=7";
    ]
  in
  let levels = Bitstring.Ecc.all in
  let retries = [ 0; 2 ] in
  let protocols = [ Fault.Harness.Wakeup; Fault.Harness.Broadcast ] in
  (* Canonical order = the old sequential nesting (plans, levels, retries,
     protocols, graphs); emission replays it after the join. *)
  let tasks =
    List.concat_map
      (fun plan_name ->
        let plan = Fault.Plan.of_string_exn plan_name in
        List.concat_map
          (fun protect ->
            List.concat_map
              (fun retry ->
                List.concat_map
                  (fun proto ->
                    List.map
                      (fun (gname, g) ->
                        {
                          rt_plan_name = plan_name;
                          rt_plan = plan;
                          rt_protect = protect;
                          rt_retry = retry;
                          rt_proto = proto;
                          rt_gname = gname;
                          rt_graph = g;
                        })
                      graphs)
                  protocols)
              retries)
          levels)
      plans
    |> Array.of_list
  in
  let jobs = Sim.Pool.default_jobs () in
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  let oc = open_out !resilience_out in
  let runs = ref 0 in
  let graceful = ref 0 in
  let counters = Hashtbl.create 64 in
  let outcome =
    Sim.Sweep.map_journaled ~jobs
      ?journal:(bench_journal "bench-resilience-v1" resilience_journal)
      ~key:resilience_key
      ~local:(fun () -> Sim.Sweep.Cache.create ())
      ~f:(fun cache _i t -> resilience_entry cache t)
      ~emit:(fun _i t e ->
        incr runs;
        if acceptable_entry e then incr graceful;
        let key = (t.rt_plan_name, t.rt_protect, t.rt_retry) in
        let completed, degraded, stalled, violated, worst =
          match Hashtbl.find_opt counters key with Some c -> c | None -> (0, 0, 0, 0, 1.0)
        in
        let worst = max worst (resilience_overhead e) in
        Hashtbl.replace counters key
          (match Sim.Journal.class_name e.Sim.Journal.verdict_class with
          | "completed" -> (completed + 1, degraded, stalled, violated, worst)
          | "degraded" -> (completed, degraded + 1, stalled, violated, worst)
          | "stalled" -> (completed, degraded, stalled + 1, violated, worst)
          | _ -> (completed, degraded, stalled, violated + 1, worst));
        output_string oc (resilience_row t e);
        output_char oc '\n')
      tasks
  in
  let wall = Unix.gettimeofday () -. wall0 in
  let cpu = Sys.time () -. cpu0 in
  let stats =
    match outcome with
    | Error msg ->
      Printf.eprintf "resilience: journal: %s\n" msg;
      exit 1
    | Ok stats -> stats
  in
  List.iter
    (fun (i, msg) ->
      Printf.eprintf "resilience: task %d (%s/%s/%s) failed: %s\n" i
        (Fault.Harness.protocol_name tasks.(i).rt_proto)
        tasks.(i).rt_gname tasks.(i).rt_plan_name msg)
    stats.Sim.Sweep.failed;
  if stats.Sim.Sweep.failed <> [] then exit 1;
  (match (!resilience_journal, stats.Sim.Sweep.recovery) with
  | Some path, Some r ->
    Printf.eprintf "resilience: journal %s: replayed %d, skipped %d, executed %d\n" path
      r.Sim.Journal.replayed stats.Sim.Sweep.skipped stats.Sim.Sweep.executed
  | _ -> ());
  let rows =
    List.concat_map
      (fun plan_name ->
        List.concat_map
          (fun protect ->
            List.map
              (fun retry ->
                let completed, degraded, stalled, violated, worst_overhead =
                  match Hashtbl.find_opt counters (plan_name, protect, retry) with
                  | Some c -> c
                  | None -> (0, 0, 0, 0, 1.0)
                in
                [
                  plan_name;
                  Bitstring.Ecc.name protect;
                  Table.i retry;
                  Table.f2 worst_overhead;
                  Table.i completed;
                  Table.i degraded;
                  Table.i stalled;
                  Table.i violated;
                ])
              retries)
          levels)
      plans
  in
  close_out oc;
  Table.render
    ~title:
      "Resilience frontier: verdicts per corruption x protection x retry (wakeup + broadcast,\n\
      \   2 graphs) — protection absorbs flips, retries absorb drops and crashes"
    ~header:
      [ "plan"; "protect"; "retry"; "bit overhead"; "completed"; "degraded"; "stalled"; "violated" ]
    ~aligns:[ Table.L; L; R; R; R; R; R; R ]
    rows;
  Printf.printf "resilience: %d adversarial runs -> %s; graceful: %d/%d (jobs=%d wall=%.2fs cpu=%.2fs)\n"
    !runs !resilience_out !graceful !runs jobs wall cpu

(* {1 Micro-benchmarks (Bechamel)} *)

let micro () =
  let open Bechamel in
  let g = Families.build Families.Sparse_random ~n:256 ~seed in
  let hard, _, _ = Lower_bound.broadcast_hard_graph ~n:64 ~k:8 ~seed in
  let instances =
    Edge_discovery.sample_instances ~n:10 ~x_size:3 ~excluded:[] ~count:200
      (Random.State.make [| seed |])
  in
  let tests =
    [
      Test.make ~name:"light-tree n=256" (Staged.stage (fun () -> Spanning.light g ~root:0));
      Test.make ~name:"bfs-tree n=256" (Staged.stage (fun () -> Spanning.bfs g ~root:0));
      Test.make ~name:"wakeup-oracle+run n=256" (Staged.stage (fun () -> Wakeup.run g ~source:0));
      Test.make ~name:"broadcast-oracle+run n=256"
        (Staged.stage (fun () -> Broadcast.run g ~source:0));
      Test.make ~name:"broadcast hard G_{64,S,C}"
        (Staged.stage (fun () -> Broadcast.run hard ~source:0));
      Test.make ~name:"adversary play n=10"
        (Staged.stage (fun () ->
             Edge_discovery.play
               (Edge_discovery.adversary instances)
               (Edge_discovery.random_strategy ~seed:3)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  print_endline "\n== B1: micro-benchmarks (ns/run, OLS on monotonic clock) ==";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
        results)
    tests

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("e17", e17);
    ("e18", e18);
    ("e19b", e19b);
    ("e20", e20);
    ("e3b", e3b);
    ("smoke", smoke);
    ("stress", stress);
    ("resilience", resilience);
    ("micro", micro);
  ]

let () =
  let take prefix store a =
    if String.starts_with ~prefix a then begin
      store (String.sub a (String.length prefix) (String.length a - String.length prefix));
      true
    end
    else false
  in
  let options =
    [
      ("--trace-out=", fun v -> trace_out := v);
      ("--stress-out=", fun v -> stress_out := v);
      ("--resilience-out=", fun v -> resilience_out := v);
      ("--stress-journal=", fun v -> stress_journal := Some v);
      ("--resilience-journal=", fun v -> resilience_journal := Some v);
    ]
  in
  let args =
    List.filter
      (fun a -> not (List.exists (fun (prefix, store) -> take prefix store a) options))
      (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match args with
    | args when args <> [] && args <> [ "all" ] -> args
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    requested
