(* The Lemma 2.1 adversary, round by round.

   Edge discovery is the combinatorial core of both lower bounds: a scheme
   probes edges of K*_n and must locate the |X| hidden special edges with
   their labels.  The adversary answers probes so as to keep as many
   instances alive as possible, forcing at least log2(|I|/|X|!) probes.

       dune exec examples/adversary_demo.exe *)

module ED = Oracle_core.Edge_discovery

let () =
  let n = 5 and x_size = 2 in
  let instances = ED.enumerate_instances ~n ~x_size ~excluded:[] in
  Printf.printf "K*_%d, |X| = %d: %d instances, Lemma 2.1 bound = %.2f probes\n\n" n x_size
    (List.length instances)
    (ED.lower_bound (ED.adversary instances));

  let adv = ED.adversary instances in
  let rec loop history =
    if ED.solved adv then ()
    else begin
      let e = ED.sequential.ED.next_probe ~n ~x_size ~excluded:[] ~history in
      let answer = ED.probe adv e in
      let u, v = e in
      Printf.printf "probe %2d: edge {%d,%d} -> %-12s active instances: %d\n" (ED.probes adv) u
        v
        (match answer with
        | ED.Regular -> "regular"
        | ED.Special l -> Printf.sprintf "SPECIAL #%d" l)
        (ED.active adv);
      loop (history @ [ (e, answer) ])
    end
  in
  loop [];

  Printf.printf "\ndiscovered X = {%s} after %d probes (bound was %.2f)\n"
    (String.concat ", "
       (List.map (fun ((u, v), l) -> Printf.sprintf "{%d,%d}:%d" u v l) (ED.discovered adv)))
    (ED.probes adv)
    (ED.lower_bound adv);
  Printf.printf "instances still indistinguishable from the answers: %d\n" (ED.active adv);

  (* The same game scaled up, against a random prober. *)
  print_endline "\n-- sampled family on K*_12 --";
  let st = Random.State.make [| 99 |] in
  let sampled =
    List.sort_uniq compare (ED.sample_instances ~n:12 ~x_size:3 ~excluded:[] ~count:400 st)
  in
  let adv = ED.adversary sampled in
  let out = ED.play adv (ED.random_strategy ~seed:5) in
  Printf.printf "|I| = %d, bound = %.1f, random prober needed %d probes\n" (List.length sampled)
    out.ED.bound out.ED.probes_used
