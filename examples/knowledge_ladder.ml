(* The knowledge ladder: one network, four tasks, and what each extra bit
   of oracle buys — the quantitative view the paper proposes, extended to
   the tasks its conclusion names (gossip, exploration) plus the radio
   model its introduction cites as evidence.

       dune exec examples/knowledge_ladder.exe *)

let () =
  let st = Random.State.make [| 2006 |] in
  let g = Netgraph.Gen.random_connected ~n:128 ~p:0.06 st in
  let n = Netgraph.Graph.n g and m = Netgraph.Graph.m g in
  Printf.printf "network: %d nodes, %d edges, diameter %d\n\n" n m (Netgraph.Traverse.diameter g);

  Printf.printf "%-34s %12s %12s\n" "task / knowledge level" "oracle bits" "cost";
  let row name bits cost = Printf.printf "%-34s %12d %12s\n" name bits cost in

  (* Dissemination. *)
  let advice_free _ = Bitstring.Bitbuf.create () in
  let flood = Sim.Runner.run ~advice:advice_free g ~source:0 Sim.Scheme.flooding in
  row "broadcast / nothing (flooding)" 0
    (Printf.sprintf "%d msgs" flood.Sim.Runner.stats.Sim.Runner.sent);
  let bc = Oracle_core.Broadcast.run g ~source:0 in
  row "broadcast / Thm 3.1 oracle" bc.Oracle_core.Broadcast.advice_bits
    (Printf.sprintf "%d msgs" bc.Oracle_core.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent);
  let wk = Oracle_core.Wakeup.run g ~source:0 in
  row "wakeup / Thm 2.1 oracle" wk.Oracle_core.Wakeup.advice_bits
    (Printf.sprintf "%d msgs" wk.Oracle_core.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent);
  let rho1 = Oracle_core.Neighborhood.run ~rho:1 g ~source:0 in
  row "wakeup / radius-1 maps (AGPV)" rho1.Oracle_core.Neighborhood.advice_bits
    (Printf.sprintf "%d msgs"
       rho1.Oracle_core.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent);

  (* Gossip. *)
  let gossip = Oracle_core.Gossip.run g ~source:0 in
  row "gossip / tree oracle" gossip.Oracle_core.Gossip.advice_bits
    (Printf.sprintf "%d msgs" gossip.Oracle_core.Gossip.result.Sim.Runner.stats.Sim.Runner.sent);

  (* Exploration. *)
  let no_advice = Bitstring.Bitbuf.create () in
  let dfs = Agent.Walker.run ~advice:no_advice g ~start:0 Agent.Explore.dfs in
  row "exploration / nothing (DFS)" 0 (Printf.sprintf "%d moves" dfs.Agent.Walker.moves);
  let route = Agent.Explore.route_advice g ~start:0 in
  let guided = Agent.Walker.run ~advice:route g ~start:0 Agent.Explore.guided in
  row "exploration / route oracle" (Bitstring.Bitbuf.length route)
    (Printf.sprintf "%d moves" guided.Agent.Walker.moves);

  (* Radio time. *)
  let rr = Radio.Model.run ~advice:advice_free g ~source:0 Radio.Protocols.round_robin in
  row "radio bcast / labels only" 0 (Printf.sprintf "%d rounds" rr.Radio.Model.rounds);
  let schedule = Radio.Protocols.schedule_oracle g ~source:0 in
  let sc =
    Radio.Model.run ~advice:(Oracles.Advice.get schedule) g ~source:0 Radio.Protocols.scheduled
  in
  row "radio bcast / full-map schedule" (Oracles.Advice.size_bits schedule)
    (Printf.sprintf "%d rounds" sc.Radio.Model.rounds);

  Printf.printf
    "\nEach task has its own price of knowledge; the paper's point is that the\n\
     minimum oracle size for a target efficiency is a *measure of the task*:\n\
     here wakeup needs %.1fx the bits broadcast needs on the same network.\n"
    (float_of_int wk.Oracle_core.Wakeup.advice_bits
    /. float_of_int bc.Oracle_core.Broadcast.advice_bits)
