(* A sensor-network-flavoured scenario: wake a sleeping network with the
   absolute minimum number of radio messages.

   Motivation from the paper's introduction: in the wakeup task only nodes
   that already got the source message may transmit, so without knowledge
   of the topology a waking process must probe blindly.  With the Theorem
   2.1 oracle every node knows exactly which ports lead to its subtree:
   one message per link, n-1 total — at the price of ~n log n advice bits.

       dune exec examples/wakeup_tree_network.exe *)

let run_on name g =
  let n = Netgraph.Graph.n g in
  Printf.printf "\n-- %s (%d nodes, %d edges) --\n" name n (Netgraph.Graph.m g);
  (* Advice-free baseline: flooding is a legal wakeup scheme (silent until
     woken) but pays one message per edge direction explored. *)
  let advice_free _ = Bitstring.Bitbuf.create () in
  let flood = Sim.Runner.run ~advice:advice_free g ~source:0 Sim.Scheme.flooding in
  Printf.printf "flooding (no oracle):   %6d messages\n" flood.Sim.Runner.stats.Sim.Runner.sent;

  (* The Theorem 2.1 oracle, under three encodings. *)
  List.iter
    (fun enc ->
      let o = Oracle_core.Wakeup.run ~encoding:enc g ~source:0 in
      Printf.printf "oracle [%-13s]: %6d messages, %6d advice bits%s\n"
        (Oracle_core.Wakeup.encoding_name enc)
        o.Oracle_core.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent
        o.Oracle_core.Wakeup.advice_bits
        (if o.Oracle_core.Wakeup.result.Sim.Runner.all_informed then "" else "  [FAILED]"))
    [ Oracle_core.Wakeup.Paper; Oracle_core.Wakeup.Paper_minimal; Oracle_core.Wakeup.Gamma ];

  (* The wakeup also works under fully asynchronous, adversarial delivery. *)
  let async = Oracle_core.Wakeup.run ~scheduler:Sim.Scheduler.Async_lifo g ~source:0 in
  Printf.printf "async-lifo delivery:    %6d messages, informed=%b\n"
    async.Oracle_core.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent
    async.Oracle_core.Wakeup.result.Sim.Runner.all_informed

let () =
  let st = Random.State.make [| 7 |] in
  run_on "random sensor field (sparse random graph)"
    (Netgraph.Gen.random_connected ~n:200 ~p:0.03 st);
  run_on "data-center pod (3-ary tree of depth 4)"
    (Netgraph.Gen.balanced_tree ~arity:3 ~depth:4);
  run_on "wireless mesh (16x16 torus)" (Netgraph.Gen.torus ~rows:16 ~cols:16)
