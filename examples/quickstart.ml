(* Quickstart: broadcast a message through a random 100-node network using
   the paper's O(n)-bit oracle, and inspect what it cost.

       dune exec examples/quickstart.exe *)

let () =
  (* A random connected network with port-labeled edges. *)
  let st = Random.State.make [| 2006 |] in
  let g = Netgraph.Gen.random_connected ~n:100 ~p:0.08 st in
  Printf.printf "network: %d nodes, %d edges, diameter %d\n" (Netgraph.Graph.n g)
    (Netgraph.Graph.m g) (Netgraph.Traverse.diameter g);

  (* Run broadcast from node 0 with the Theorem 3.1 oracle (Scheme B). *)
  let outcome = Oracle_core.Broadcast.run g ~source:0 in
  let stats = outcome.Oracle_core.Broadcast.result.Sim.Runner.stats in
  Printf.printf "oracle size: %d bits (Theorem 3.1 allows up to %d)\n"
    outcome.Oracle_core.Broadcast.advice_bits
    (8 * Netgraph.Graph.n g);
  Printf.printf "messages: %d total = %d source + %d hello (Theorem 3.1 allows < %d)\n"
    stats.Sim.Runner.sent stats.Sim.Runner.source_sent stats.Sim.Runner.hello_sent
    (3 * Netgraph.Graph.n g);
  Printf.printf "everyone informed: %b\n"
    outcome.Oracle_core.Broadcast.result.Sim.Runner.all_informed;

  (* Compare with the wakeup task on the same network: more knowledge is
     needed, but the message count drops to the bare minimum n-1. *)
  let wakeup = Oracle_core.Wakeup.run g ~source:0 in
  Printf.printf "\nwakeup on the same network: %d advice bits, %d messages\n"
    wakeup.Oracle_core.Wakeup.advice_bits
    wakeup.Oracle_core.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
  Printf.printf "oracle-size separation (wakeup/broadcast): %.2fx\n"
    (float_of_int wakeup.Oracle_core.Wakeup.advice_bits
    /. float_of_int outcome.Oracle_core.Broadcast.advice_bits)
