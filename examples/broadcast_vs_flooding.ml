(* How much knowledge buys how many messages: broadcast across network
   densities.

   Flooding needs no oracle but pays Θ(m) messages — ruinous on dense
   networks.  Scheme B (Theorem 3.1) needs only ~2 bits per node and stays
   under 3n messages whatever the density.

       dune exec examples/broadcast_vs_flooding.exe *)

let () =
  let n = 300 in
  Printf.printf "%5s %8s %14s %14s %10s %14s\n" "p" "edges" "flooding msgs" "scheme B msgs"
    "flood/B" "B advice bits";
  List.iter
    (fun p ->
      let st = Random.State.make [| int_of_float (1000.0 *. p) |] in
      let g = Netgraph.Gen.random_connected ~n ~p st in
      let advice_free _ = Bitstring.Bitbuf.create () in
      let flood = Sim.Runner.run ~advice:advice_free g ~source:0 Sim.Scheme.flooding in
      let b = Oracle_core.Broadcast.run g ~source:0 in
      assert (flood.Sim.Runner.all_informed);
      assert (b.Oracle_core.Broadcast.result.Sim.Runner.all_informed);
      let fm = flood.Sim.Runner.stats.Sim.Runner.sent in
      let bm = b.Oracle_core.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent in
      Printf.printf "%5.2f %8d %14d %14d %10.1f %14d\n" p (Netgraph.Graph.m g) fm bm
        (float_of_int fm /. float_of_int bm)
        b.Oracle_core.Broadcast.advice_bits)
    [ 0.01; 0.03; 0.1; 0.3; 0.6; 1.0 ];
  print_endline "\nScheme B's bill is flat: the oracle pays once, every broadcast stays linear."
