(* Trace inspection: record a run's telemetry to a JSON Lines file, then
   audit the paper's claims offline — from the artifact alone, without
   re-running the simulation.

       dune exec examples/trace_inspection.exe *)

let () =
  let st = Random.State.make [| 2006 |] in
  let g = Netgraph.Gen.random_connected ~n:64 ~p:0.1 st in
  let n = Netgraph.Graph.n g in
  let path = Filename.temp_file "wakeup" ".jsonl" in

  (* Record: a JSONL file sink plus a bounded ring keeping the last few
     events (full traces of big runs are long; the ring stays O(capacity)). *)
  let file = Obs.Jsonl.file_sink path in
  let ring = Obs.Ring.create ~capacity:5 in
  let live =
    Fun.protect
      ~finally:(fun () -> Obs.Sink.close file)
      (fun () -> Oracle_core.Wakeup.run ~sinks:[ file; Obs.Ring.sink ring ] g ~source:0)
  in
  let live_stats = live.Oracle_core.Wakeup.result.Sim.Runner.stats in
  Printf.printf "recorded %s: wakeup on %d nodes, %d messages, %d advice bits\n" path n
    live_stats.Sim.Runner.sent live.Oracle_core.Wakeup.advice_bits;

  (* The ring kept only the tail of the stream. *)
  Printf.printf "\nring kept the last %d of %d events:\n" (Obs.Ring.length ring)
    (Obs.Ring.seen ring);
  List.iter (fun ev -> Format.printf "  %a@." Obs.Event.pp ev) (Obs.Ring.contents ring);

  (* Audit: read the artifact back and replay it.  Everything the metrics
     contract defines — the counters, the informed set, quiescence — is
     recomputed from the events alone (DESIGN.md section 7). *)
  let events = Obs.Jsonl.read_file path in
  let replayed = Obs.Replay.replay ~n events in
  let s = replayed.Obs.Replay.summary in
  Printf.printf "\nreplayed %d events from the artifact:\n" (List.length events);
  Printf.printf "  messages:      %d  (live run counted %d)\n" s.Obs.Counting.sent
    live_stats.Sim.Runner.sent;
  Printf.printf "  bits on wire:  %d  (live: %d)\n" s.Obs.Counting.bits_on_wire
    live_stats.Sim.Runner.bits_on_wire;
  Printf.printf "  causal depth:  %d  (live: %d)\n" s.Obs.Counting.causal_depth
    live_stats.Sim.Runner.causal_depth;
  Printf.printf "  advice bits:   %d  (live: %d)\n" s.Obs.Counting.advice_bits
    live.Oracle_core.Wakeup.advice_bits;

  (* Theorem 2.1's claims, checked offline. *)
  Printf.printf "\nTheorem 2.1, from the trace alone:\n";
  Printf.printf "  exactly n-1 = %d messages: %b\n" (n - 1) (s.Obs.Counting.sent = n - 1);
  Printf.printf "  all of them source-class:  %b\n" (s.Obs.Counting.source_sent = s.Obs.Counting.sent);
  Printf.printf "  every node woke up:        %b\n" replayed.Obs.Replay.all_informed;
  Printf.printf "  run was quiescent:         %b (in flight: %d)\n"
    (replayed.Obs.Replay.in_flight = 0)
    replayed.Obs.Replay.in_flight;

  let agrees =
    replayed.Obs.Replay.all_informed = live.Oracle_core.Wakeup.result.Sim.Runner.all_informed
    && replayed.Obs.Replay.informed = live.Oracle_core.Wakeup.result.Sim.Runner.informed
    && s.Obs.Counting.sent = live_stats.Sim.Runner.sent
  in
  Printf.printf "\noffline replay agrees with the live run: %b\n" agrees;
  Sys.remove path
