(* A guided tour of the Theorem 2.2 lower-bound pipeline, with the exact
   numbers the proof manipulates.

       dune exec examples/lower_bound_tour.exe *)

module B = Numeric.Bignat
module LB = Oracle_core.Lower_bound
module Bounds = Oracle_core.Bounds

let () =
  print_endline "Step 1 — the hard instances G_{n,S}: hide n subdivided edges in K*_n.";
  let n = 12 in
  let g, chosen = LB.wakeup_hard_graph ~n ~seed:2006 in
  Printf.printf "  n = %d: the graph has %d nodes and %d edges; %d edges of K*_%d\n"
    n (Netgraph.Graph.n g) (Netgraph.Graph.m g) (List.length chosen) n;
  Printf.printf "  were each split by a hidden degree-2 node (labels %d..%d).\n\n" (n + 1) (2 * n);

  print_endline "Step 2 — count the instances (Equation 2). Exactly, not asymptotically:";
  let p_exact = Oracle_core.Exact_counts.wakeup_instances ~n in
  Printf.printf "  P = %d! * C(C(%d,2), %d) = %s\n" n n n (B.to_string p_exact);
  Printf.printf "  log2 P = %.2f (float pipeline agrees: %.2f)\n\n" (B.log2 p_exact)
    (Bounds.log2_wakeup_instances ~n);

  print_endline "Step 3 — count the advice functions an oracle of size q can emit (Equation 3):";
  List.iter
    (fun q ->
      Printf.printf "  q = %3d bits over %d nodes: log2 Q <= %.2f\n" q (2 * n)
        (Bounds.log2_oracle_outputs ~bits:q ~nodes:(2 * n)))
    [ 0; 20; 60; 120 ];
  print_newline ();

  print_endline "Step 4 — Lemma 2.1: any scheme sharing one advice function across a";
  print_endline "uniform family of |I| instances needs >= log2(|I|/|X|!) messages.";
  let instances = Oracle_core.Edge_discovery.enumerate_instances ~n:5 ~x_size:2 ~excluded:[] in
  let adv = Oracle_core.Edge_discovery.adversary instances in
  let out = Oracle_core.Edge_discovery.play adv Oracle_core.Edge_discovery.sequential in
  Printf.printf "  demo on K*_5, |X| = 2: |I| = %d, bound = %.2f, a real prober needed %d.\n\n"
    (List.length instances) out.Oracle_core.Edge_discovery.bound
    out.Oracle_core.Edge_discovery.probes_used;

  print_endline "Step 5 — assemble: the advice budget below which wakeup cannot stay linear.";
  List.iter
    (fun n ->
      let q = LB.min_advice_for_linear_wakeup ~n ~budget_factor:3.0 in
      Printf.printf "  n = %5d: any oracle under %7d bits forces > 3*(2n) messages  (q*/2n = %.2f)\n"
        n q
        (float_of_int q /. float_of_int (2 * n)))
    [ 256; 1024; 4096; 16384 ];
  print_endline "\nThe threshold grows superlinearly in n: efficient wakeup needs";
  print_endline "Omega(n log n) bits of advice — Theorem 2.2, measured."
