(** The bit-packed frame container of the persistent sweep journal and
    the distributed-worker wire protocol.

    A journal file — and a supervisor/worker pipe — is a sequence of
    frames; each frame carries a kind tag, a format version, a 63-bit
    key and an arbitrary bit-string payload, and is protected end-to-end
    by a 32-bit CRC trailer computed through {!Ecc}'s bit-serial engine.
    The byte-level layout — field widths, endianness, CRC variant,
    padding and recovery rules — is specified normatively in
    [docs/JOURNAL_FORMAT.md]; this module is its implementation, and a
    golden-frame test pins the two to each other.

    Frames are byte-aligned on disk (the payload is zero-padded to a
    byte boundary) but bit-packed inside, in the spirit of chamelon's
    littlefs tag layouts.  The encoding is {e canonical}: a valid frame
    is the unique encoding of its content, so [encode] after [decode]
    reproduces the input bytes exactly — the property the journal's
    byte-equality verifier rests on. *)

type kind =
  | Superblock  (** the file-identity frame, first in every journal *)
  | Record  (** one completed grid point *)
  | Hello
      (** wire: worker announce (worker→supervisor; carries the wire
          version and the authentication token) or config
          (supervisor→worker) — a 1-bit payload tag disambiguates the
          two shapes (see {!Sim.Worker} and DESIGN.md §13) *)
  | Task  (** wire: a batch of task indices (supervisor→worker) *)
  | Result  (** wire: one completed task (worker→supervisor) *)
  | Heartbeat  (** wire: liveness beacon (worker→supervisor) *)
  | Shutdown  (** wire: orderly stop (supervisor→worker) *)

type t = {
  kind : kind;
  version : int;  (** format version; this writer emits {!current_version} *)
  key : int;  (** 63-bit non-negative identifier (FNV-1a coordinate hash) *)
  payload : Bitbuf.t;  (** kind-specific bit-packed body *)
}

(** Decode failures, each carrying the byte offset of the offending
    frame.  {!decode} never raises on malformed input: a torn tail is
    the expected input after a crash. *)
type error =
  | Truncated of { offset : int; missing : int }
      (** the buffer ends inside the frame — the torn-write case *)
  | Bad_magic of { offset : int; found : int }
  | Bad_kind of { offset : int; found : int }
  | Unsupported_version of { offset : int; found : int }
  | Nonzero_padding of { offset : int }
      (** set bits in the byte-alignment pad: not a canonical encoding *)
  | Key_out_of_range of { offset : int }
      (** the reserved top bits of the key field are set *)
  | Bad_crc of { offset : int; stored : int; computed : int }

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val encode : t -> string
(** The frame's on-disk bytes.  Raises [Invalid_argument] when the key
    is negative, the version does not fit 8 bits, or the payload exceeds
    {!max_payload_bits}. *)

val decode : string -> pos:int -> (t * int, error) result
(** [decode s ~pos] parses one frame starting at byte [pos] and returns
    it with the offset of the next frame.  Total on arbitrary bytes —
    every malformed input maps to an {!error}.  Raises
    [Invalid_argument] only on a negative [pos]. *)

val byte_size : t -> int
(** The exact length of [encode t]: 15 header bytes, the payload padded
    to a byte boundary, and the 4-byte CRC trailer. *)

(** {1 Spec constants}

    Exposed so tests can build spec-derived golden frames by hand and
    compare them against {!encode} byte for byte. *)

val magic : int
(** [0x4F4A] ("OJ"), the first two bytes of every frame. *)

val current_version : int
(** The format version this writer emits: [1]. *)

val header_bytes : int
(** [15] — magic (16 bits), kind (8), version (8), key (64), payload
    length in bits (24). *)

val crc_bytes : int
(** [4] — the 32-bit trailer. *)

val max_payload_bits : int
(** [2²⁴ - 1], the largest payload the 24-bit length field can frame. *)

val max_key : int
(** [max_int]: keys are arbitrary non-negative OCaml ints. *)

val crc32_bytes : Bytes.t -> pos:int -> len:int -> int
(** The spec's CRC-32 over a byte range: generator [0x04C11DB7] fed
    MSB-first through {!Ecc.crc_update} from a zero register, augmented
    with 32 flushing zero bits, no reflection, no final XOR.
    Deliberately {e not} the zlib/IEEE CRC — the journal format defines
    this exact variant. *)
