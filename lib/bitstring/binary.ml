let bits w =
  if w < 0 then invalid_arg "Binary.bits: negative";
  if w <= 1 then 1
  else
    let rec loop acc w = if w = 0 then acc else loop (acc + 1) (w lsr 1) in
    loop 0 w

let floor_log2 n =
  if n < 1 then invalid_arg "Binary.floor_log2";
  let rec loop acc n = if n = 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let ceil_log2 n =
  if n < 1 then invalid_arg "Binary.ceil_log2";
  if n = 1 then 0
  else floor_log2 (n - 1) + 1

let write buf w =
  if w < 0 then invalid_arg "Binary.write: negative";
  Bitbuf.add_int buf ~width:(bits w) w

let read r ~width = Bitbuf.read_int r ~width

let to_bools w =
  if w < 0 then invalid_arg "Binary.to_bools: negative";
  let k = bits w in
  List.init k (fun i -> w lsr (k - 1 - i) land 1 = 1)

(* log2 n!: exact cumulative sums for small n, Stirling series above.  The
   counting experiments evaluate this inside bisections over million-bit
   budgets, so it must be O(1). *)
let exact_limit = 4096

let exact_table =
  lazy
    (let t = Array.make (exact_limit + 1) 0.0 in
     for i = 2 to exact_limit do
       t.(i) <- t.(i - 1) +. Float.log2 (float_of_int i)
     done;
     t)

let log2e = Float.log2 (Float.exp 1.0)

let log2_factorial n =
  if n < 0 then invalid_arg "Binary.log2_factorial";
  if n <= exact_limit then (Lazy.force exact_table).(n)
  else begin
    (* ln Γ(x) for x = n+1 via the Stirling series; x > 4097 makes the
       truncation error far below float precision. *)
    let x = float_of_int n +. 1.0 in
    let ln_gamma =
      ((x -. 0.5) *. log x) -. x
      +. (0.5 *. log (2.0 *. Float.pi))
      +. (1.0 /. (12.0 *. x))
      -. (1.0 /. (360.0 *. (x ** 3.0)))
    in
    ln_gamma *. log2e
  end

let log2_choose n k =
  if k < 0 || k > n then neg_infinity
  else log2_factorial n -. log2_factorial k -. log2_factorial (n - k)
