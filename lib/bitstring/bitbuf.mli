(** Growable buffers of bits, with a sequential reader.

    Oracles in the paper assign a binary string [f(v)] to every node [v];
    the size of an oracle is the total number of bits it assigns.  This
    module is the concrete representation of those strings: an append-only
    bit buffer (MSB-first within each byte) plus a cursor-based reader used
    by the decoding side of each advice scheme. *)

type t
(** A mutable buffer of bits. *)

exception End_of_bits
(** Raised by readers running past the last bit. *)

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty buffer.  [capacity] is a hint in bits. *)

val length : t -> int
(** Number of bits currently in the buffer. *)

val is_empty : t -> bool

val add_bit : t -> bool -> unit
(** Append one bit. *)

val add_bits : t -> bool list -> unit
(** Append bits in list order. *)

val add_int : t -> width:int -> int -> unit
(** [add_int t ~width v] appends the [width] low-order bits of [v],
    most significant first.  Raises [Invalid_argument] if [v] does not fit
    in [width] bits, if [v < 0], or if [width < 0]. *)

val append : t -> t -> unit
(** [append dst src] appends all bits of [src] to [dst]. *)

val get : t -> int -> bool
(** [get t i] is the [i]-th bit (0-based).  Raises [Invalid_argument] when
    out of range. *)

val copy : t -> t

val equal : t -> t -> bool
(** Bitwise equality (same length, same bits). *)

val to_string : t -> string
(** ASCII rendering, e.g. ["01101"]. *)

val of_string : string -> t
(** Inverse of {!to_string}.  Raises [Invalid_argument] on characters other
    than ['0'] and ['1']. *)

val of_bits : bool list -> t

val to_bits : t -> bool list

(** {1 Byte serialization}

    The packed form used by on-disk formats ({!Frame}): bits are laid
    out MSB-first within each byte — bit [i] of the buffer is bit
    [7 - (i mod 8)] of byte [i / 8] — and the final partial byte, if
    any, is padded with zero bits. *)

val byte_length : t -> int
(** [⌈length/8⌉] — the number of bytes {!to_bytes} returns. *)

val to_bytes : t -> Bytes.t
(** The packed bytes.  Pad bits of the last byte are guaranteed zero.
    The result is fresh; mutating it does not affect the buffer. *)

val of_bytes : Bytes.t -> pos:int -> bits:int -> t
(** [of_bytes b ~pos ~bits] reads [bits] bits from the packed bytes
    starting at byte [pos] — the inverse of {!to_bytes} (any nonzero pad
    bits in the source's last byte are ignored).  Raises
    [Invalid_argument] when [bits < 0] or the byte range falls outside
    [b]. *)

val pp : Format.formatter -> t -> unit
(** Prints the {!to_string} rendering. *)

(** {1 Reading} *)

type reader
(** A cursor over a buffer.  The underlying buffer must not be mutated
    while a reader is in use. *)

val reader : t -> reader
(** A fresh reader positioned at bit 0. *)

val read_bit : reader -> bool
(** Consume one bit.  @raise End_of_bits at the end of the buffer. *)

val read_int : reader -> width:int -> int
(** Consume [width] bits as an MSB-first integer.
    @raise End_of_bits if fewer than [width] bits remain. *)

val remaining : reader -> int
(** Bits left to read. *)

val pos : reader -> int
(** Bits consumed so far. *)

val at_end : reader -> bool
