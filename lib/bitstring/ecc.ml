(* Error protection over advice bit strings.

   All three codes operate on the whole string at once: advice is handed
   to a node as one atomic string, so the unit of corruption-and-repair
   is the string, not any internal field.  Encoders build a fresh Bitbuf
   and never mutate their input; decoders are total (they return [Error]
   rather than raise on malformed input) because corrupted strings are
   exactly the expected input. *)

type level = Raw | Crc | Hamming | Repetition of int

let name = function
  | Raw -> "raw"
  | Crc -> "crc"
  | Hamming -> "hamming"
  | Repetition k -> Printf.sprintf "rep%d" k

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "raw" | "none" -> Ok Raw
  | "crc" -> Ok Crc
  | "hamming" | "sec" -> Ok Hamming
  | s when String.length s > 3 && String.sub s 0 3 = "rep" -> (
      match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
      | Some k when k >= 2 -> Ok (Repetition k)
      | Some k -> Error (Printf.sprintf "repetition factor must be >= 2, got %d" k)
      | None -> Error (Printf.sprintf "bad repetition level %S" s))
  | s ->
      Error
        (Printf.sprintf "unknown protection level %S (raw|crc|hamming|repK)" s)

let all = [ Raw; Crc; Hamming; Repetition 3 ]

let check_rep k =
  if k < 2 then invalid_arg (Printf.sprintf "Ecc.Repetition: k = %d < 2" k)

(* The bit-serial CRC engine: an MSB-first shift register of [width]
   bits, initialised to zero, reduced by [poly] whenever a set bit falls
   off the top, with [width] flushing zero bits appended by [crc_finish]
   (the "augmented message" formulation — no reflection, no final XOR).
   This one engine backs both the 8-bit advice CRC below and the 32-bit
   frame trailer of {!Frame} — the journal's record framing reuses the
   exact code path the advice layer already trusts. *)

let crc_update ~poly ~width reg b =
  let mask = (1 lsl width) - 1 in
  let msb = (reg lsr (width - 1)) land 1 in
  let reg = ((reg lsl 1) lor (if b then 1 else 0)) land mask in
  if msb = 1 then reg lxor poly land mask else reg

let crc_finish ~poly ~width reg =
  let r = ref reg in
  for _ = 1 to width do
    r := crc_update ~poly ~width !r false
  done;
  !r

(* CRC-8, polynomial x^8 + x^2 + x + 1 (0x07), bit-serial over the
   payload followed by eight flushing zero bits.  Good enough to detect
   every single- and double-bit flip at the advice lengths the paper's
   codes produce (well under the 2^8 burst horizon for odd counts). *)
let crc_width = 8

let crc8 bits =
  List.fold_left (crc_update ~poly:0x07 ~width:crc_width) 0 bits
  |> crc_finish ~poly:0x07 ~width:crc_width

(* Hamming SEC: parity bits live at the power-of-two positions of the
   1-indexed codeword; parity bit p covers every position whose index
   has bit p set.  The parity count is recovered from the codeword
   length alone (r = floor(log2 n) + 1), checked for consistency, so
   the decoder needs no out-of-band framing. *)

let hamming_r m =
  (* smallest r with 2^r >= m + r + 1 *)
  let rec go r = if 1 lsl r >= m + r + 1 then r else go (r + 1) in
  go 0

let is_pow2 i = i land (i - 1) = 0

let protected_length level len =
  if len = 0 then 0
  else
    match level with
    | Raw -> len
    | Crc -> len + crc_width
    | Hamming -> len + hamming_r len
    | Repetition k ->
        check_rep k;
        k * len

let overhead_bound = function
  | Raw -> 1.0
  | Crc -> 9.0
  | Hamming -> 3.0
  | Repetition k -> float_of_int k

let protect level (b : Bitbuf.t) =
  if Bitbuf.length b = 0 then Bitbuf.create ()
  else
    match level with
    | Raw -> Bitbuf.copy b
    | Crc ->
        let out = Bitbuf.copy b in
        let c = crc8 (Bitbuf.to_bits b) in
        for i = crc_width - 1 downto 0 do
          Bitbuf.add_bit out ((c lsr i) land 1 = 1)
        done;
        out
    | Hamming ->
        let m = Bitbuf.length b in
        let r = hamming_r m in
        let n = m + r in
        let code = Array.make (n + 1) false in
        let di = ref 0 in
        for i = 1 to n do
          if not (is_pow2 i) then begin
            code.(i) <- Bitbuf.get b !di;
            incr di
          end
        done;
        for p = 0 to r - 1 do
          let mask = 1 lsl p in
          let parity = ref false in
          for i = 1 to n do
            if i land mask <> 0 && not (is_pow2 i) && code.(i) then
              parity := not !parity
          done;
          code.(mask) <- !parity
        done;
        let out = Bitbuf.create () in
        for i = 1 to n do
          Bitbuf.add_bit out code.(i)
        done;
        out
    | Repetition k ->
        check_rep k;
        let out = Bitbuf.create () in
        for i = 0 to Bitbuf.length b - 1 do
          for _ = 1 to k do
            Bitbuf.add_bit out (Bitbuf.get b i)
          done
        done;
        out

let unprotect level (b : Bitbuf.t) =
  let len = Bitbuf.length b in
  if len = 0 then Ok (Bitbuf.create (), 0)
  else
    match level with
    | Raw -> Ok (Bitbuf.copy b, 0)
    | Crc ->
        if len <= crc_width then
          Error (Printf.sprintf "crc: %d bits is too short to be framed" len)
        else
          let m = len - crc_width in
          let payload = Bitbuf.create () in
          for i = 0 to m - 1 do
            Bitbuf.add_bit payload (Bitbuf.get b i)
          done;
          let stored = ref 0 in
          for i = m to len - 1 do
            stored := (!stored lsl 1) lor (if Bitbuf.get b i then 1 else 0)
          done;
          if crc8 (Bitbuf.to_bits payload) = !stored then Ok (payload, 0)
          else Error "crc: checksum mismatch"
    | Hamming ->
        (* r is a function of the codeword length; reject lengths that no
           payload encodes to (e.g. a bare parity prefix). *)
        let r =
          let rec go r = if 1 lsl (r + 1) <= len then go (r + 1) else r + 1 in
          go 0
        in
        let m = len - r in
        if m < 1 || protected_length Hamming m <> len then
          Error (Printf.sprintf "hamming: %d bits is not a codeword length" len)
        else
          let code = Array.make (len + 1) false in
          for i = 1 to len do
            code.(i) <- Bitbuf.get b (i - 1)
          done;
          let syndrome = ref 0 in
          for p = 0 to r - 1 do
            let mask = 1 lsl p in
            let parity = ref false in
            for i = 1 to len do
              if i land mask <> 0 && code.(i) then parity := not !parity
            done;
            if !parity then syndrome := !syndrome lor mask
          done;
          if !syndrome > len then
            Error
              (Printf.sprintf "hamming: syndrome %d outside codeword" !syndrome)
          else begin
            let corrected = if !syndrome = 0 then 0 else 1 in
            if !syndrome > 0 then code.(!syndrome) <- not code.(!syndrome);
            let payload = Bitbuf.create () in
            for i = 1 to len do
              if not (is_pow2 i) then Bitbuf.add_bit payload code.(i)
            done;
            Ok (payload, corrected)
          end
    | Repetition k ->
        check_rep k;
        if len mod k <> 0 then
          Error
            (Printf.sprintf "rep%d: length %d is not a multiple of %d" k len k)
        else begin
          let payload = Bitbuf.create () in
          let corrected = ref 0 in
          let tie = ref false in
          for g = 0 to (len / k) - 1 do
            let ones = ref 0 in
            for j = 0 to k - 1 do
              if Bitbuf.get b ((g * k) + j) then incr ones
            done;
            if 2 * !ones = k then tie := true
            else begin
              let bit = 2 * !ones > k in
              let minority = if bit then k - !ones else !ones in
              if minority > 0 then incr corrected;
              Bitbuf.add_bit payload bit
            end
          done;
          if !tie then Error (Printf.sprintf "rep%d: majority tie" k)
          else Ok (payload, !corrected)
        end
