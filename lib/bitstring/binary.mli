(** Plain binary representations of non-negative integers.

    The paper writes [#₂(w)] for the number of bits of the standard binary
    representation of [w]: [#₂(w) = 1] for [w ≤ 1] and
    [#₂(w) = ⌊log w⌋ + 1] for [w > 1].  The contribution of an edge in
    Claim 3.1 is [#₂(w(e))], and the broadcast oracle of Theorem 3.1 ships
    edge weights in exactly this representation. *)

val bits : int -> int
(** [bits w] is [#₂(w)].  Raises [Invalid_argument] on negative input. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is [⌈log₂ n⌉] for [n ≥ 1] (so [ceil_log2 1 = 0]).
    Raises [Invalid_argument] for [n < 1]. *)

val floor_log2 : int -> int
(** [floor_log2 n] is [⌊log₂ n⌋] for [n ≥ 1].
    Raises [Invalid_argument] for [n < 1]. *)

val write : Bitbuf.t -> int -> unit
(** Append the standard (minimal, MSB-first) binary representation of a
    non-negative integer: exactly [bits w] bits. *)

val read : Bitbuf.reader -> width:int -> int
(** [read r ~width] reads back an integer written with [width] bits. *)

val to_bools : int -> bool list
(** The standard binary representation as a list of bits, MSB first. *)

val log2_factorial : int -> float
(** [log2_factorial n] is [log₂ n!], computed by summation (exact enough for
    the counting experiments; no gamma-function dependency). *)

val log2_choose : int -> int -> float
(** [log2_choose n k] is [log₂ C(n, k)]; [neg_infinity] when [k < 0] or
    [k > n]. *)
