(** Error protection for advice strings.

    The oracle-size measure counts every bit the oracle hands out, so a
    scheme that survives advice corruption by redundancy must pay for that
    redundancy in the measure itself.  This module provides the coding
    layer: a {!level} names a code, {!protect} expands a string into its
    protected form, {!unprotect} inverts it — detecting, and when the code
    allows it correcting, channel errors — and {!protected_length} gives
    the exact protected size so the accounting stays honest.

    The empty string is a fixed point of every level: a leaf that receives
    no advice in the paper still receives none protected (protection must
    not leak bits to nodes the oracle chose to leave silent).

    Codes:
    - [Crc]: an 8-bit CRC (polynomial x⁸+x²+x+1) appended to the payload —
      detection only, constant 8-bit overhead;
    - [Hamming]: a single-error-correcting Hamming code over the whole
      string, parity bits at power-of-two positions — corrects any one
      flipped bit at [⌈log₂⌉]-ish overhead, never more than 2× payload
      (3 total bits for a 1-bit payload is the worst case, so protected
      size ≤ 3× raw always holds);
    - [Repetition k]: every bit repeated [k] times, decoded by majority —
      the classical ablation baseline, corrects [⌊(k-1)/2⌋] errors per
      payload bit at exactly [k]× overhead. *)

type level =
  | Raw  (** no protection: [protect] is the identity *)
  | Crc  (** 8-bit CRC appended — detect, never correct *)
  | Hamming  (** Hamming SEC over the whole string — corrects one bit *)
  | Repetition of int
      (** each bit sent [k ≥ 2] times, majority vote; odd [k] corrects
          [⌊(k-1)/2⌋] errors per bit, even [k] only detects ties *)

val name : level -> string
(** ["raw"], ["crc"], ["hamming"], ["rep3"] — stable, parses back. *)

val of_name : string -> (level, string) result
(** Inverse of {!name}; ["repK"] for any [K ≥ 2]. *)

val all : level list
(** The levels the resilience sweep ablates: raw, crc, hamming, rep3. *)

val protect : level -> Bitbuf.t -> Bitbuf.t
(** Encode.  The input is not mutated; the empty string maps to itself.
    Raises [Invalid_argument] for [Repetition k] with [k < 2]. *)

val unprotect : level -> Bitbuf.t -> (Bitbuf.t * int, string) result
(** Decode, total on arbitrary bit strings: [Ok (payload, corrected)]
    with the number of corrected payload-affecting errors, or [Error]
    when the string cannot be a (possibly singly-corrupted) codeword —
    wrong framing, CRC mismatch, out-of-range Hamming syndrome, or a
    repetition tie.  Never raises.  Corruption beyond the code's power
    may decode to a wrong payload; callers must still validate the
    payload semantically. *)

val protected_length : level -> int -> int
(** Exact encoded size in bits for a [len]-bit payload ([0] for [0]). *)

val overhead_bound : level -> float
(** Worst-case [protected/raw] ratio over nonempty payloads ([3.0] for
    [Hamming], [k] for [Repetition k]) — quoted by docs and asserted by
    tests; [Crc]'s constant 8 bits is unbounded as a ratio, reported as
    [9.0] (the 1-bit-payload case). *)

(** {1 The bit-serial CRC engine}

    The shift-register CRC behind the [Crc] level, exposed so other
    on-disk formats ({!Frame}'s 32-bit record trailer in particular)
    compute their checksums through the same code path.  The variant is
    fixed: MSB-first, initial register zero, the message augmented with
    [width] flushing zero bits, no reflection and no final XOR — an
     8-bit/[0x07] instance of this engine is bit-for-bit the advice CRC
    {!protect} appends. *)

val crc_update : poly:int -> width:int -> int -> bool -> int
(** [crc_update ~poly ~width reg b] feeds one message bit into the
    register: shift left, insert [b], and reduce by [poly] when the bit
    shifted off the top was set.  [width] must satisfy
    [0 < width < Sys.int_size - 1]; [poly] is the generator polynomial
    without its leading [x^width] term. *)

val crc_finish : poly:int -> width:int -> int -> int
(** [crc_finish ~poly ~width reg] flushes [width] zero bits through the
    register and returns the final checksum — the remainder of the
    augmented message. *)
