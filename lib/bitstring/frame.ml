(* The bit-packed frame container behind the sweep journal and the
   worker wire protocol.  Every number below is normative in
   docs/JOURNAL_FORMAT.md — the spec is the contract, this file
   implements it, and test_journal.ml decodes a golden frame built from
   the spec's field table to keep the two honest.  Keep the layout in
   sync or the golden test fails.

   A frame is byte-aligned on disk but bit-packed inside: a 120-bit
   (15-byte) header, the payload bits padded with zeros to a byte
   boundary, and a 32-bit CRC trailer computed over every preceding byte
   of the frame through Ecc's bit-serial engine.

   Superblock and Record frames live in journal files; the remaining
   kinds travel only over supervisor/worker pipes (Sim.Worker /
   Sim.Dispatch) and are never valid in a journal — a journal scan
   treats them as the start of the torn tail. *)

type kind = Superblock | Record | Hello | Task | Result | Heartbeat | Shutdown

type t = { kind : kind; version : int; key : int; payload : Bitbuf.t }

type error =
  | Truncated of { offset : int; missing : int }
  | Bad_magic of { offset : int; found : int }
  | Bad_kind of { offset : int; found : int }
  | Unsupported_version of { offset : int; found : int }
  | Nonzero_padding of { offset : int }
  | Key_out_of_range of { offset : int }
  | Bad_crc of { offset : int; stored : int; computed : int }

let pp_error fmt = function
  | Truncated { offset; missing } ->
      Format.fprintf fmt "truncated frame at byte %d (%d bytes missing)" offset missing
  | Bad_magic { offset; found } ->
      Format.fprintf fmt "bad magic 0x%04x at byte %d" found offset
  | Bad_kind { offset; found } ->
      Format.fprintf fmt "bad frame kind 0x%02x at byte %d" found offset
  | Unsupported_version { offset; found } ->
      Format.fprintf fmt "unsupported frame version %d at byte %d" found offset
  | Nonzero_padding { offset } ->
      Format.fprintf fmt "nonzero padding bits in frame at byte %d" offset
  | Key_out_of_range { offset } ->
      Format.fprintf fmt "key field out of range in frame at byte %d" offset
  | Bad_crc { offset; stored; computed } ->
      Format.fprintf fmt "CRC mismatch at byte %d (stored 0x%08x, computed 0x%08x)" offset
        stored computed

let error_to_string e = Format.asprintf "%a" pp_error e

(* Spec constants (JOURNAL_FORMAT.md "Frame layout").  The magic spells
   "OJ" — Oracle Journal. *)
let magic = 0x4f4a
let kind_superblock = 0x53 (* 'S' *)
let kind_record = 0x52 (* 'R' *)

(* Wire-only kinds (the worker protocol); mnemonic ASCII like the
   journal kinds.  Never written to journal files. *)
let kind_hello = 0x48 (* 'H' *)
let kind_task = 0x54 (* 'T' *)
let kind_result = 0x41 (* 'A' — answer *)
let kind_heartbeat = 0x42 (* 'B' — beat *)
let kind_shutdown = 0x51 (* 'Q' — quit *)
let current_version = 1
let header_bytes = 15
let crc_bytes = 4
let max_payload_bits = (1 lsl 24) - 1
let max_key = max_int (* 63-bit non-negative OCaml int *)

(* CRC-32, generator 0x04C11DB7, through Ecc's engine: MSB-first,
   initial register 0, augmented with 32 flushing zero bits, no
   reflection, no final XOR.  Deliberately NOT the zlib/IEEE CRC — the
   spec defines this exact variant. *)
let crc_poly = 0x04C11DB7
let crc_width = 32

let crc32_bytes buf ~pos ~len =
  let reg = ref 0 in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.get buf i) in
    for bit = 7 downto 0 do
      reg := Ecc.crc_update ~poly:crc_poly ~width:crc_width !reg (byte lsr bit land 1 = 1)
    done
  done;
  Ecc.crc_finish ~poly:crc_poly ~width:crc_width !reg

let kind_byte = function
  | Superblock -> kind_superblock
  | Record -> kind_record
  | Hello -> kind_hello
  | Task -> kind_task
  | Result -> kind_result
  | Heartbeat -> kind_heartbeat
  | Shutdown -> kind_shutdown

let kind_of_byte b =
  if b = kind_superblock then Some Superblock
  else if b = kind_record then Some Record
  else if b = kind_hello then Some Hello
  else if b = kind_task then Some Task
  else if b = kind_result then Some Result
  else if b = kind_heartbeat then Some Heartbeat
  else if b = kind_shutdown then Some Shutdown
  else None

let byte_size t = header_bytes + Bitbuf.byte_length t.payload + crc_bytes

let encode t =
  if t.key < 0 then invalid_arg "Frame.encode: negative key";
  if t.version < 0 || t.version > 0xff then invalid_arg "Frame.encode: version out of range";
  let bits = Bitbuf.length t.payload in
  if bits > max_payload_bits then invalid_arg "Frame.encode: payload too large";
  let b = Bitbuf.create ~capacity:((header_bytes + crc_bytes) * 8 + bits + 7) () in
  Bitbuf.add_int b ~width:16 magic;
  Bitbuf.add_int b ~width:8 (kind_byte t.kind);
  Bitbuf.add_int b ~width:8 t.version;
  Bitbuf.add_int b ~width:32 (t.key lsr 32);
  Bitbuf.add_int b ~width:32 (t.key land 0xffffffff);
  Bitbuf.add_int b ~width:24 bits;
  Bitbuf.append b t.payload;
  while Bitbuf.length b land 7 <> 0 do
    Bitbuf.add_bit b false
  done;
  let body = Bitbuf.to_bytes b in
  let crc = crc32_bytes body ~pos:0 ~len:(Bytes.length body) in
  Bitbuf.add_int b ~width:32 crc;
  Bytes.unsafe_to_string (Bitbuf.to_bytes b)

let decode s ~pos =
  let avail = String.length s - pos in
  if pos < 0 then invalid_arg "Frame.decode: negative position";
  if avail < header_bytes then
    Error (Truncated { offset = pos; missing = header_bytes - avail })
  else begin
    let header = Bitbuf.of_bytes (Bytes.unsafe_of_string s) ~pos ~bits:(header_bytes * 8) in
    let r = Bitbuf.reader header in
    let m = Bitbuf.read_int r ~width:16 in
    let k = Bitbuf.read_int r ~width:8 in
    let v = Bitbuf.read_int r ~width:8 in
    let key_hi = Bitbuf.read_int r ~width:32 in
    let key_lo = Bitbuf.read_int r ~width:32 in
    let bits = Bitbuf.read_int r ~width:24 in
    if m <> magic then Error (Bad_magic { offset = pos; found = m })
    else if kind_of_byte k = None then Error (Bad_kind { offset = pos; found = k })
    else if v <> current_version then Error (Unsupported_version { offset = pos; found = v })
    else if key_hi lsr 30 <> 0 then
      (* Keys are 63-bit non-negative OCaml ints, so bits 63..62 of the
         64-bit field must be clear (spec: "reserved, MUST be zero"). *)
      Error (Key_out_of_range { offset = pos })
    else begin
      let body_bytes = (bits + 7) / 8 in
      let total = header_bytes + body_bytes + crc_bytes in
      if avail < total then Error (Truncated { offset = pos; missing = total - avail })
      else begin
        let payload =
          Bitbuf.of_bytes (Bytes.unsafe_of_string s) ~pos:(pos + header_bytes) ~bits
        in
        (* Canonical-encoding check: the writer pads with zeros, so any
           set pad bit means the frame is not one [encode] produced. *)
        let pad_ok =
          bits land 7 = 0
          ||
          let last = Char.code s.[pos + header_bytes + body_bytes - 1] in
          last land (0xff lsr (bits land 7)) = 0
        in
        if not pad_ok then Error (Nonzero_padding { offset = pos })
        else begin
          let computed =
            crc32_bytes
              (Bytes.unsafe_of_string s)
              ~pos ~len:(header_bytes + body_bytes)
          in
          let stored = ref 0 in
          for i = 0 to crc_bytes - 1 do
            stored := (!stored lsl 8) lor Char.code s.[pos + header_bytes + body_bytes + i]
          done;
          if computed <> !stored then
            Error (Bad_crc { offset = pos; stored = !stored; computed })
          else
            let kind = match kind_of_byte k with Some kd -> kd | None -> assert false in
            let key = (key_hi lsl 32) lor key_lo in
            Ok ({ kind; version = v; key; payload }, pos + total)
        end
      end
    end
  end
