(* Port-list code of Theorem 2.1: doubled-bit width header, then fixed-width
   ports.  Header: for each bit b of the binary representation of the width,
   emit bb; terminate with 10. *)

let write_port_list buf ~width ports =
  if width < 1 then invalid_arg "Codes.write_port_list: width < 1";
  match ports with
  | [] -> ()
  | _ ->
    List.iter
      (fun b ->
        Bitbuf.add_bit buf b;
        Bitbuf.add_bit buf b)
      (Binary.to_bools width);
    Bitbuf.add_bit buf true;
    Bitbuf.add_bit buf false;
    List.iter (fun p -> Bitbuf.add_int buf ~width p) ports

(* Decoding is on the hot path (every wake decodes its port list), so
   the width accumulates in an int as the doubled bits stream in — no
   intermediate bit list — and the ports build through an explicitly
   sequenced recursion, so reads happen in stream order by construction
   rather than by grace of [List.init]'s evaluation order. *)
let read_port_list r =
  if Bitbuf.at_end r then []
  else begin
    let width = ref 0 in
    let stop = ref false in
    while not !stop do
      let b1 = Bitbuf.read_bit r in
      let b2 = Bitbuf.read_bit r in
      match b1, b2 with
      | true, false -> stop := true
      | true, true -> width := (!width lsl 1) lor 1
      | false, false -> width := !width lsl 1
      | false, true -> invalid_arg "Codes.read_port_list: malformed width header"
    done;
    let width = !width in
    if width < 1 then invalid_arg "Codes.read_port_list: zero width";
    let rem = Bitbuf.remaining r in
    if rem mod width <> 0 then invalid_arg "Codes.read_port_list: payload not a multiple of width";
    let rec ports k = if k = 0 then [] else
      let p = Bitbuf.read_int r ~width in
      p :: ports (k - 1)
    in
    ports (rem / width)
  end

let port_list_length ~width ~count =
  if count = 0 then 0 else (count * width) + (2 * Binary.bits width) + 2

(* Marked-bit code of Claim 3.1: each payload bit is followed by a flag that
   is set exactly on the last bit of the value.  2·#₂(w) bits per value. *)

let write_marked buf w =
  let bs = Binary.to_bools w in
  let k = List.length bs in
  List.iteri
    (fun i b ->
      Bitbuf.add_bit buf b;
      Bitbuf.add_bit buf (i = k - 1))
    bs

let read_marked r =
  let rec loop acc =
    let b = Bitbuf.read_bit r in
    let last = Bitbuf.read_bit r in
    let acc = (acc lsl 1) lor (if b then 1 else 0) in
    if last then acc else loop acc
  in
  loop 0

let write_marked_list buf ws = List.iter (write_marked buf) ws

let read_marked_list r =
  let rec loop acc = if Bitbuf.at_end r then List.rev acc else loop (read_marked r :: acc) in
  loop []

let marked_length ws = 2 * List.fold_left (fun acc w -> acc + Binary.bits w) 0 ws

(* Unary and Elias codes. *)

let write_unary buf n =
  if n < 0 then invalid_arg "Codes.write_unary: negative";
  for _ = 1 to n do
    Bitbuf.add_bit buf false
  done;
  Bitbuf.add_bit buf true

let read_unary r =
  let rec loop n = if Bitbuf.read_bit r then n else loop (n + 1) in
  loop 0

let write_gamma buf n =
  if n < 0 then invalid_arg "Codes.write_gamma: negative";
  let v = n + 1 in
  let k = Binary.floor_log2 v in
  for _ = 1 to k do
    Bitbuf.add_bit buf false
  done;
  Bitbuf.add_int buf ~width:(k + 1) v

let read_gamma r =
  let rec zeros k = if Bitbuf.read_bit r then k else zeros (k + 1) in
  let k = zeros 0 in
  let rest = if k = 0 then 0 else Bitbuf.read_int r ~width:k in
  ((1 lsl k) lor rest) - 1

let gamma_length n = (2 * Binary.floor_log2 (n + 1)) + 1

let write_delta buf n =
  if n < 0 then invalid_arg "Codes.write_delta: negative";
  let v = n + 1 in
  let k = Binary.floor_log2 v in
  write_gamma buf k;
  if k > 0 then Bitbuf.add_int buf ~width:k (v land ((1 lsl k) - 1))

let read_delta r =
  let k = read_gamma r in
  let rest = if k = 0 then 0 else Bitbuf.read_int r ~width:k in
  ((1 lsl k) lor rest) - 1

let delta_length n =
  let k = Binary.floor_log2 (n + 1) in
  gamma_length k + k

(* Result-typed decoders for adversarial input.  The raising decoders
   above assume well-formed advice (the oracle wrote it); these wrap them
   for the hardened schemes, where the advice may have been tampered with
   and a decode failure must select the flooding fallback, not abort the
   run. *)

let protect name read r =
  match read r with
  | v -> Ok v
  | exception Invalid_argument msg -> Error msg
  | exception Bitbuf.End_of_bits -> Error (Printf.sprintf "Codes.%s: out of bits" name)

let read_port_list_result r = protect "read_port_list" read_port_list r
let read_marked_list_result r = protect "read_marked_list" read_marked_list r

let read_gamma_list_result r =
  let rec loop acc = if Bitbuf.at_end r then List.rev acc else loop (read_gamma r :: acc) in
  protect "read_gamma_list" (fun _ -> loop []) r

type codec = {
  codec_name : string;
  write_list : Bitbuf.t -> int list -> unit;
  read_list : Bitbuf.reader -> int list;
}

let list_codec name write read =
  let write_list buf vs = List.iter (write buf) vs in
  let read_list r =
    let rec loop acc = if Bitbuf.at_end r then List.rev acc else loop (read r :: acc) in
    loop []
  in
  { codec_name = name; write_list; read_list }

let paper_doubled ~max_value =
  if max_value < 0 then invalid_arg "Codes.paper_doubled: negative max_value";
  let width = max 1 (Binary.ceil_log2 (max_value + 1)) in
  {
    codec_name = Printf.sprintf "paper-doubled(w=%d)" width;
    write_list = (fun buf vs -> write_port_list buf ~width vs);
    read_list = read_port_list;
  }

let gamma_codec = list_codec "elias-gamma" write_gamma read_gamma
let delta_codec = list_codec "elias-delta" write_delta read_delta
let unary_codec = list_codec "unary" write_unary read_unary

let all_codecs ~max_value = [ paper_doubled ~max_value; gamma_codec; delta_codec; unary_codec ]
