type t = { mutable data : Bytes.t; mutable len : int }

exception End_of_bits

let create ?(capacity = 64) () =
  let capacity = max capacity 8 in
  { data = Bytes.make ((capacity + 7) / 8) '\000'; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let ensure t extra =
  let needed_bytes = (t.len + extra + 7) / 8 in
  if needed_bytes > Bytes.length t.data then begin
    let capacity = max needed_bytes (2 * Bytes.length t.data) in
    let data = Bytes.make capacity '\000' in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    t.data <- data
  end

let unsafe_get data i =
  Char.code (Bytes.unsafe_get data (i lsr 3)) land (0x80 lsr (i land 7)) <> 0

let unsafe_set data i =
  let byte = i lsr 3 in
  let v = Char.code (Bytes.unsafe_get data byte) lor (0x80 lsr (i land 7)) in
  Bytes.unsafe_set data byte (Char.unsafe_chr v)

let add_bit t b =
  ensure t 1;
  if b then unsafe_set t.data t.len;
  t.len <- t.len + 1

let add_bits t bits = List.iter (add_bit t) bits

let add_int t ~width v =
  if width < 0 then invalid_arg "Bitbuf.add_int: negative width";
  if v < 0 then invalid_arg "Bitbuf.add_int: negative value";
  if width < Sys.int_size && v lsr width <> 0 then
    invalid_arg "Bitbuf.add_int: value does not fit in width";
  ensure t width;
  for i = width - 1 downto 0 do
    add_bit t (v lsr i land 1 = 1)
  done

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitbuf.get: index out of range";
  unsafe_get t.data i

let append dst src =
  ensure dst src.len;
  for i = 0 to src.len - 1 do
    add_bit dst (unsafe_get src.data i)
  done

let copy t =
  let data = Bytes.copy t.data in
  { data; len = t.len }

let equal a b =
  a.len = b.len
  &&
  let rec loop i = i >= a.len || (unsafe_get a.data i = unsafe_get b.data i && loop (i + 1)) in
  loop 0

let to_string t = String.init t.len (fun i -> if unsafe_get t.data i then '1' else '0')

let of_string s =
  let t = create ~capacity:(String.length s) () in
  String.iter
    (function
      | '0' -> add_bit t false
      | '1' -> add_bit t true
      | c -> invalid_arg (Printf.sprintf "Bitbuf.of_string: bad character %C" c))
    s;
  t

let of_bits bits =
  let t = create ~capacity:(List.length bits) () in
  add_bits t bits;
  t

let to_bits t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (unsafe_get t.data i :: acc) in
  loop (t.len - 1) []

let byte_length t = (t.len + 7) / 8

(* Sound because the buffer's representation invariant says every bit of
   [data] at or beyond [len] is zero: [create]/[ensure] allocate zeroed
   bytes, [add_bit] only ever sets the bit at [len], and nothing clears
   [len] back.  The trailing pad of the last byte is therefore always
   zero, which is exactly what the frame format requires of it. *)
let to_bytes t = Bytes.sub t.data 0 (byte_length t)

let of_bytes b ~pos ~bits =
  if bits < 0 then invalid_arg "Bitbuf.of_bytes: negative bit count";
  let nbytes = (bits + 7) / 8 in
  if pos < 0 || pos + nbytes > Bytes.length b then
    invalid_arg "Bitbuf.of_bytes: range out of bounds";
  let data = Bytes.make (max 1 nbytes) '\000' in
  Bytes.blit b pos data 0 nbytes;
  (* Mask the tail so the zeros-beyond-[len] invariant holds even when
     the source bytes carry junk in their pad bits. *)
  let rem = bits land 7 in
  if rem <> 0 then begin
    let last = nbytes - 1 in
    Bytes.set data last
      (Char.chr (Char.code (Bytes.get data last) land (0xff lsl (8 - rem) land 0xff)))
  end;
  { data; len = bits }

let pp fmt t = Format.pp_print_string fmt (to_string t)

type reader = { buf : t; mutable cursor : int }

let reader buf = { buf; cursor = 0 }

let read_bit r =
  if r.cursor >= r.buf.len then raise End_of_bits;
  let b = unsafe_get r.buf.data r.cursor in
  r.cursor <- r.cursor + 1;
  b

(* Word-wise: pull up to 8 bits per byte access instead of one
   [read_bit] call per bit — [read_int] sits on the advice-decoding hot
   path (every wake decodes a port list), where the bit-by-bit loop was
   measurable at n = 10^6. *)
let read_int r ~width =
  if width < 0 then invalid_arg "Bitbuf.read_int: negative width";
  if r.cursor + width > r.buf.len then raise End_of_bits;
  let data = r.buf.data in
  let c = ref r.cursor in
  let acc = ref 0 in
  let rem = ref width in
  while !rem > 0 do
    let off = !c land 7 in
    let avail = 8 - off in
    let take = if !rem < avail then !rem else avail in
    let v = Char.code (Bytes.unsafe_get data (!c lsr 3)) in
    (* bits [off .. off+take-1] of the byte, MSB-first *)
    acc := (!acc lsl take) lor ((v lsr (avail - take)) land ((1 lsl take) - 1));
    c := !c + take;
    rem := !rem - take
  done;
  r.cursor <- !c;
  !acc

let remaining r = r.buf.len - r.cursor

let pos r = r.cursor

let at_end r = r.cursor = r.buf.len
