(** Self-delimiting codes used by the oracles.

    Three families:

    {ul
    {- The paper's Theorem 2.1 code for a list of port numbers: the ports
       are written with a common fixed width [w], and [w] itself is made
       self-delimiting by doubling each bit of its binary representation and
       terminating with the pair [10] (the sequence
       [β = b₁b₁b₂b₂…b_rb_r10] of the paper).  Total length
       [c·w + 2·#₂(w) + 2] bits for [c] ports.  The paper appends β after
       the payload; we emit it first so a one-pass reader suffices — the
       code, and in particular its length, is unchanged.}
    {- The Claim 3.1 "marked-bit" code for a list of weights: every value is
       written as its standard binary representation [#₂(w)] bits, each
       payload bit followed by a flag bit marking whether it ends the
       value.  Total length exactly [2·Σ #₂(wᵢ)], which is what gives the
       [≤ 8n] oracle of Theorem 3.1.}
    {- Classical Elias gamma/delta and unary codes, used as ablation
       baselines (experiment E7).}} *)

(** {1 The Theorem 2.1 port-list code} *)

val write_port_list : Bitbuf.t -> width:int -> int list -> unit
(** [write_port_list buf ~width ports] writes the doubled-bit width header
    followed by each port in exactly [width] bits.  [width ≥ 1]; every port
    must fit.  An empty list is written as an empty string (a leaf of the
    spanning tree receives no advice at all, as in the paper). *)

val read_port_list : Bitbuf.reader -> int list
(** Decode a string produced by {!write_port_list}, consuming the reader to
    its end.  An exhausted reader decodes to [[]].
    Raises [Invalid_argument] if the remaining payload length is not a
    multiple of the decoded width. *)

val port_list_length : width:int -> count:int -> int
(** Exact encoded size in bits: [0] when [count = 0], otherwise
    [count*width + 2*(#₂ width) + 2]. *)

(** {1 The Claim 3.1 marked-bit code} *)

val write_marked : Bitbuf.t -> int -> unit
(** Append one non-negative integer in marked-bit form: [2·#₂(w)] bits. *)

val read_marked : Bitbuf.reader -> int
(** Decode one marked-bit integer. *)

val write_marked_list : Bitbuf.t -> int list -> unit

val read_marked_list : Bitbuf.reader -> int list
(** Decode marked-bit integers until the reader is exhausted. *)

val marked_length : int list -> int
(** Exact encoded size: [2·Σ #₂(wᵢ)]. *)

(** {1 Non-raising decoders}

    The decoders above assume the oracle wrote the advice and raise on
    malformed input.  The [_result] variants accept arbitrary bit
    strings — the fault-injection subsystem feeds them tampered advice —
    and turn both [Invalid_argument] and running out of bits into
    [Error]; the hardened schemes route [Error] to their advice-free
    fallback instead of aborting the run. *)

val read_port_list_result : Bitbuf.reader -> (int list, string) result
(** Non-raising {!read_port_list}. *)

val read_marked_list_result : Bitbuf.reader -> (int list, string) result
(** Non-raising {!read_marked_list}. *)

val read_gamma_list_result : Bitbuf.reader -> (int list, string) result
(** Read gamma-coded integers to the end of the reader, non-raising. *)

(** {1 Elias and unary codes} *)

val write_unary : Bitbuf.t -> int -> unit
(** [n] zeros followed by a one: [n+1] bits. *)

val read_unary : Bitbuf.reader -> int

val write_gamma : Bitbuf.t -> int -> unit
(** Elias gamma of [n ≥ 0] (encodes [n+1] internally): [2⌊log(n+1)⌋+1]
    bits. *)

val read_gamma : Bitbuf.reader -> int

val write_delta : Bitbuf.t -> int -> unit
(** Elias delta of [n ≥ 0] (encodes [n+1] internally). *)

val read_delta : Bitbuf.reader -> int

val gamma_length : int -> int
(** Bits used by {!write_gamma}. *)

val delta_length : int -> int
(** Bits used by {!write_delta}. *)

(** {1 Generic integer-list codecs}

    A uniform interface over the codes above, for the E7 encoding
    ablation: each codec writes a list of non-negative integers as one
    self-delimiting string and reads it back by consuming a reader to its
    end. *)

type codec = {
  codec_name : string;
  write_list : Bitbuf.t -> int list -> unit;
  read_list : Bitbuf.reader -> int list;
}

val paper_doubled : max_value:int -> codec
(** The Theorem 2.1 code with [width = max 1 (⌈log₂ (max_value+1)⌉)]. *)

val gamma_codec : codec
val delta_codec : codec
val unary_codec : codec

val all_codecs : max_value:int -> codec list
