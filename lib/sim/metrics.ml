type ratio_summary = { mean : float; max : float; min : float }

let check_lengths xs ys =
  if List.length xs <> List.length ys then invalid_arg "Metrics: length mismatch";
  if xs = [] then invalid_arg "Metrics: empty input"

let ratios ~xs ~ys ~model =
  check_lengths xs ys;
  let rs = List.map2 (fun x y -> y /. model x) xs ys in
  match rs with
  | [] -> assert false
  | r0 :: rest ->
    let sum, mx, mn =
      List.fold_left (fun (s, mx, mn) r -> (s +. r, Float.max mx r, Float.min mn r)) (r0, r0, r0) rest
    in
    { mean = sum /. float_of_int (List.length rs); max = mx; min = mn }

let linear_fit ~xs ~ys =
  check_lengths xs ys;
  let n = float_of_int (List.length xs) in
  let sx = List.fold_left ( +. ) 0.0 xs in
  let sy = List.fold_left ( +. ) 0.0 ys in
  let sxx = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  let sxy = List.fold_left2 (fun acc x y -> acc +. (x *. y)) 0.0 xs ys in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Metrics.linear_fit: degenerate xs";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  (slope, intercept)

let loglog_slope ~xs ~ys =
  check_lengths xs ys;
  List.iter2
    (fun x y -> if x <= 0.0 || y <= 0.0 then invalid_arg "Metrics.loglog_slope: non-positive data")
    xs ys;
  let slope, _ = linear_fit ~xs:(List.map log xs) ~ys:(List.map log ys) in
  slope

let mean l =
  if l = [] then invalid_arg "Metrics.mean: empty";
  List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let maximum l =
  match l with
  | [] -> invalid_arg "Metrics.maximum: empty"
  | x :: rest -> List.fold_left Float.max x rest
