(** Broadcast and wakeup schemes.

    A scheme in the paper is a per-node function from histories to sets of
    [(message, port)] couples to send.  The executable form here is a
    stateful node built by a {!factory} from the node's static knowledge
    [(f(v), s(v), id(v), deg(v))]; the paper's pure form is recovered with
    {!of_pure}.

    A {e wakeup} scheme is a broadcast scheme whose nodes send nothing
    before receiving a message, unless they are the source; {!check_wakeup}
    enforces this at runtime. *)

type send = Message.t * int
(** A message and the local out-port it leaves through. *)

type node = {
  on_start : unit -> send list;
      (** Consulted once, before any message is delivered — the paper's
          scheme applied to the empty history.  This is where broadcast
          schemes may transmit spontaneously. *)
  on_receive : Message.t -> port:int -> send list;
      (** Consulted on each delivery — the scheme applied to the extended
          history. *)
}

type factory = History.static -> node
(** What an algorithm [A] returns for a node: its scheme. *)

val of_pure : (History.t -> send list) -> factory
(** Adapt a paper-style pure scheme (history ↦ couples to send now).  The
    resulting node replays no history; each call sees the full history
    including the new message. *)

val silent : factory
(** Never sends anything. *)

val check_wakeup : factory -> factory
(** Wrap a factory so that a non-source node producing sends from an empty
    history raises [Failure] — the wakeup restriction of Section 1.4. *)

val flooding : factory
(** The oracle-free baseline: the source starts by sending [Source] on all
    ports; every node forwards [Source] on all other ports upon first
    receipt.  Message complexity Θ(m). *)
