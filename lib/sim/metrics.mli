(** Shape statistics for experiment tables.

    The paper's claims are asymptotic; the experiment tables report
    measured quantities against the model functions the theorems name
    ([n], [n log n], [m], …).  This module computes the ratio statistics
    and log-log growth slopes those tables print. *)

type ratio_summary = {
  mean : float;
  max : float;
  min : float;
}

val ratios : xs:float list -> ys:float list -> model:(float -> float) -> ratio_summary
(** Summary of [y / model x] pointwise.  Raises [Invalid_argument] on
    length mismatch or empty input. *)

val loglog_slope : xs:float list -> ys:float list -> float
(** Least-squares slope of [log y] against [log x] — the empirical growth
    exponent.  Requires at least two distinct positive [x]. *)

val linear_fit : xs:float list -> ys:float list -> float * float
(** Least-squares [(slope, intercept)] of [y] against [x]. *)

val mean : float list -> float
(** Arithmetic mean.  Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Largest element.  Raises [Invalid_argument] on the empty list. *)
