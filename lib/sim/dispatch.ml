(* The supervisor half of the distributed sweep protocol.

   Dispatch owns a fleet of workers — subprocesses it spawned itself
   (pipes on their stdin/stdout) and, when given a Transport.listener,
   remote processes that connected over TCP — hands them batches of
   task indices, and collects Result frames.  The failure model is
   crash-stop with reassignment: a worker that EOFs, misses its
   heartbeat deadline, announces the wrong wire version or a bad
   authentication token, or sends one undecodable byte is condemned
   (local: SIGKILL + reap; remote: connection closed) and written off;
   whatever of its in-flight batch lacks results is requeued at the
   front of the work queue with a capped exponential backoff.  Local
   workers are never respawned, but a condemned *remote* worker may
   reconnect, re-handshake, and resume pulling tasks as a brand-new
   peer — that is the partition story: a link that goes silent past
   the heartbeat deadline costs a condemnation and a rejoin, a link
   that is merely slow costs nothing.  A sweep finishes on the
   survivors; when none survive and no rejoin arrives within the
   grace window, the remaining tasks run in-process through the
   caller's [fallback].

   Scheduling: batches are carved on demand from a cursor over the
   fresh indices.  Under [Fixed n] every carve is [n] indices — the
   classic fixed-batch mode.  Under [Auto] the carve size is steered
   per worker by an EWMA of its observed task throughput (result
   arrivals, monotonic-clock timestamped), clamped to
   [min_batch, max_batch]: fast workers absorb large batches, slow or
   degraded ones small probes, so one straggling machine holds few
   indices hostage at any instant.  When the queue runs dry with
   batches still in flight, an idle worker speculatively re-executes
   the slowest busy worker's outstanding indices (one copy per batch):
   results are pure functions of indices and the first result per
   index wins, so the duplicate is harmless and the tail no longer
   waits on the straggler.

   Authentication: every announce hello carries a shared-secret token
   (--token; default empty).  A mismatch condemns the peer before any
   config or task frame is sent — an unauthenticated connection learns
   nothing about the sweep beyond the fact that something is listening.
   Accepts are additionally rate-limited per peer address by a token
   bucket, checked before the bounded-rejoin accept budget is touched,
   so one misconfigured reconnect loop can neither burn the budget nor
   starve other addresses.

   Determinism: results are pure functions of task indices and the
   supervisor records the first result it sees per index (duplicates
   from a reassigned or speculated batch carry identical bytes), so
   worker count, local/remote mix, batch sizing, speculation, death
   and rejoin schedule, and timing are all invisible in the value
   [run] returns.  Ordering is the caller's business
   (Sweep.map_journaled_via appends and emits in canonical order). *)

(* {1 Throughput accounting} *)

(* Exponentially weighted moving average of an event rate observed at
   irregular intervals.  The irregular-interval form weights each
   observation by how much wall time it spans:
     rate <- (1 - e^(-dt/tau)) * (k/dt)  +  e^(-dt/tau) * rate
   so a burst of k results after a long silence moves the estimate by
   the right amount regardless of how the burst was framed. *)
module Ewma = struct
  type t = {
    tau : float;
    mutable rate : float;
    mutable last : float option;  (* timestamp of the last folded observation *)
    mutable pending : int;  (* events seen at dt <= 0, folded into the next interval *)
    mutable total : int;
  }

  let default_tau = 3.0

  let create ?(tau = default_tau) () =
    if tau <= 0. then invalid_arg "Ewma.create: tau <= 0";
    { tau; rate = 0.; last = None; pending = 0; total = 0 }

  (* Timestamps must be monotone for the decay math; events carried by
     a non-advancing clock are held [pending] and credited to the next
     real interval rather than dropped, so counts are conserved. *)
  let observe t ~now ~tasks =
    if tasks < 0 then invalid_arg "Ewma.observe: negative tasks";
    t.total <- t.total + tasks;
    match t.last with
    | None ->
      t.last <- Some now;
      t.pending <- t.pending + tasks
    | Some last ->
      let dt = now -. last in
      if dt <= 0. then t.pending <- t.pending + tasks
      else begin
        let k = float_of_int (tasks + t.pending) in
        t.pending <- 0;
        let decay = exp (-.dt /. t.tau) in
        t.rate <- ((1. -. decay) *. (k /. dt)) +. (decay *. t.rate);
        t.last <- Some now
      end

  let rate t = t.rate
  let total t = t.total
end

type batching = Fixed of int | Auto of { min_batch : int; max_batch : int }

let default_batch = 16
let default_min_batch = 1
let default_max_batch = 64

(* How much work, in seconds at the worker's estimated rate, one
   adaptive batch should hold.  Small enough that a newly slow worker
   is re-probed quickly; large enough that a fast worker is not
   throttled by per-batch round trips. *)
let auto_horizon = 0.25

let batch_for batching ~rate =
  match batching with
  | Fixed n -> n
  | Auto { min_batch; max_batch } ->
    if rate <= 0. then min_batch  (* no estimate yet: probe small *)
    else max min_batch (min max_batch (int_of_float (ceil (rate *. auto_horizon))))

(* Per-worker-id accounting.  Keyed by announced worker id, not
   connection, so a remote worker that is condemned and rejoins
   inherits its own history (throughput estimate, failure streak). *)
type acct = {
  ewma : Ewma.t;
  mutable results : int;  (* Result frames received *)
  mutable wins : int;  (* results that were first for their index *)
  mutable spec_wins : int;  (* wins delivered by a speculative copy *)
  mutable batches : int;  (* batches assigned *)
  mutable speculative : int;  (* of which speculative copies *)
  mutable reported : int;  (* latest heartbeat completed-task counter *)
  mutable streak : int;  (* consecutive condemnations since the last completed batch *)
}

type worker_stat = {
  worker : int;
  tasks : int;
  wins : int;
  rate : float;
  batches : int;
  speculative : int;
  spec_wins : int;
  reported : int;
}

type batch = {
  seq : int;
  indices : int array;
  attempt : int;  (* prior failed assignments of (a superset of) these indices *)
  not_before : float;  (* backoff release time; 0. for fresh batches *)
  speculative : bool;  (* a duplicate of another worker's in-flight batch *)
  mutable speculated : bool;  (* a speculative copy of this batch exists (or it is one) *)
}

type wstate =
  | Awaiting_hello
  | Ready
  | Busy of { batch : batch; outstanding : (int, unit) Hashtbl.t }

type peer = Child of int  (* pid *) | Remote of string  (* peer address, for logs *)

type wrk = {
  uid : int;  (* unique per connection — remote rejoins get fresh ones *)
  mutable wid : int;  (* spawn id for children; announced id for remotes (-1 until hello) *)
  peer : peer;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;  (* equal to to_w for sockets *)
  rx : Worker.Rx.t;
  mutable state : wstate;
  mutable deadline : float;  (* absolute; infinity = disarmed *)
}

type stats = {
  mutable spawned : int;
  mutable spawn_failures : int;
  mutable connected : int;  (* remote connections accepted *)
  mutable auth_failures : int;  (* peers condemned for a bad token *)
  mutable rate_limited : int;  (* connections closed by the per-address token bucket *)
  mutable died : int;
  mutable reassigned : int;  (* batches requeued after a death *)
  mutable inline_tasks : int;  (* tasks run through [fallback] *)
}

type bucket = { mutable tokens : float; mutable stamp : float }

type t = {
  context : Journal.context;
  batching : batching;
  heartbeat_timeout : float;
  backoff_base : float;
  backoff_cap : float;
  token : string;
  listener : Transport.listener option;
  expect_remote : int;
  accept_rate : float;  (* token-bucket refill, accepts per second per address *)
  accept_burst : float;  (* token-bucket capacity per address *)
  buckets : (string, bucket) Hashtbl.t;
  fallback : int -> (Journal.entry, string) result;
  accounts : (int, acct) Hashtbl.t;  (* keyed by worker id *)
  mutable mono : float;  (* monotonic clamp over gettimeofday, for EWMA stamps *)
  mutable accepts_left : int;  (* bounded rejoin: remaining accept budget *)
  mutable remote_seen : int;
      (* remote peers that completed (or failed) their first handshake —
         what the barrier counts against [expect_remote] *)
  mutable barrier_deadline : float;
      (* give expected remotes this long to show up before the barrier
         proceeds without them *)
  mutable rejoin_deadline : float;
      (* with zero live workers, wait for a (re)connection until this
         instant before degrading to in-process execution *)
  mutable degraded : bool;  (* listener closed; all further work inline *)
  mutable live : wrk list;  (* spawn order, so assignment prefers low ids *)
  mutable handshook : bool;
      (* all spawned workers have announced or been condemned, and the
         expected remotes have joined (or the barrier grace expired);
         until then no batch is assigned, so which worker executes
         which batch does not depend on hello arrival order — that is
         what makes a chaos schedule's fault placement reproducible *)
  mutable next_seq : int;
  stats : stats;
  log : string -> unit;
}

let default_heartbeat_timeout = 10.
let default_backoff_cap = 1.0
let default_max_rejoin = 16
let default_accept_rate = 4.0
let default_accept_burst = 32
let backoff_base = 0.05

let backoff_delay ~base ~cap ~attempt =
  if attempt < 1 then 0. else min cap (base *. (2. ** float_of_int (attempt - 1)))

let backoff t ~attempt = backoff_delay ~base:t.backoff_base ~cap:t.backoff_cap ~attempt

(* Clamped-monotone view of the wall clock: never goes backwards even
   if gettimeofday does (NTP step), so EWMA intervals stay sane. *)
let mono t now =
  if now > t.mono then t.mono <- now;
  t.mono

let acct_for t wid =
  match Hashtbl.find_opt t.accounts wid with
  | Some a -> a
  | None ->
    let a =
      {
        ewma = Ewma.create ();
        results = 0;
        wins = 0;
        spec_wins = 0;
        batches = 0;
        speculative = 0;
        reported = 0;
        streak = 0;
      }
    in
    Hashtbl.add t.accounts wid a;
    a

let stats t =
  (* flat copy so callers can't mutate the live counters *)
  let s = t.stats in
  {
    spawned = s.spawned;
    spawn_failures = s.spawn_failures;
    connected = s.connected;
    auth_failures = s.auth_failures;
    rate_limited = s.rate_limited;
    died = s.died;
    reassigned = s.reassigned;
    inline_tasks = s.inline_tasks;
  }

let worker_stats t =
  Hashtbl.fold
    (fun wid (a : acct) acc ->
      {
        worker = wid;
        tasks = a.results;
        wins = a.wins;
        rate = Ewma.rate a.ewma;
        batches = a.batches;
        speculative = a.speculative;
        spec_wins = a.spec_wins;
        reported = a.reported;
      }
      :: acc)
    t.accounts []
  |> List.sort (fun a b -> compare a.worker b.worker)

let live_workers t = List.length t.live

let describe w =
  match w.peer with
  | Child pid -> Printf.sprintf "worker %d (pid %d)" w.wid pid
  | Remote addr ->
    if w.wid < 0 then Printf.sprintf "remote peer %s" addr
    else Printf.sprintf "worker %d (%s)" w.wid addr

(* {1 Spawning} *)

let next_uid = ref 0

let fresh_uid () =
  incr next_uid;
  !next_uid

let spawn ~command ~stderr_dir ~log wid =
  let cleanup fds = List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds in
  match
    let child_in, to_w = Unix.pipe () in
    let from_w, child_out = Unix.pipe () in
    (* The parent keeps [to_w]/[from_w]; mark them close-on-exec so they
       never leak into workers spawned after this one (a leaked write
       end would keep a dead worker's pipe readable forever). *)
    Unix.set_close_on_exec to_w;
    Unix.set_close_on_exec from_w;
    let stderr_fd =
      match stderr_dir with
      | None -> None
      | Some dir ->
        Some
          (Unix.openfile
             (Filename.concat dir (Printf.sprintf "worker-%d.log" wid))
             [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
             0o644)
    in
    let argv = command ~id:wid in
    let pid =
      try
        Unix.create_process argv.(0) argv child_in child_out
          (Option.value stderr_fd ~default:Unix.stderr)
      with e ->
        cleanup (child_in :: child_out :: to_w :: from_w :: Option.to_list stderr_fd);
        raise e
    in
    cleanup (child_in :: child_out :: Option.to_list stderr_fd);
    {
      uid = fresh_uid ();
      wid;
      peer = Child pid;
      to_w;
      from_w;
      rx = Worker.Rx.create ();
      state = Awaiting_hello;
      deadline = infinity;
    }
  with
  | w -> Some w
  | exception e ->
    log (Printf.sprintf "worker %d: spawn failed: %s" wid (Printexc.to_string e));
    None

let create ~workers ?(batching = Fixed default_batch)
    ?(heartbeat_timeout = default_heartbeat_timeout) ?(backoff_cap = default_backoff_cap)
    ?(token = "") ?listener ?(expect_remote = 0) ?(max_rejoin = default_max_rejoin)
    ?(accept_rate = default_accept_rate) ?(accept_burst = default_accept_burst) ?join_grace
    ?stderr_dir ?(log = fun _ -> ()) ~command ~context ~fallback () =
  if workers < 0 then invalid_arg "Dispatch.create: negative workers";
  (match batching with
  | Fixed n -> if n < 1 then invalid_arg "Dispatch.create: batch < 1"
  | Auto { min_batch; max_batch } ->
    if min_batch < 1 then invalid_arg "Dispatch.create: min_batch < 1";
    if max_batch < min_batch then invalid_arg "Dispatch.create: max_batch < min_batch");
  if heartbeat_timeout <= 0. then invalid_arg "Dispatch.create: heartbeat_timeout <= 0";
  if backoff_cap <= 0. then invalid_arg "Dispatch.create: backoff_cap <= 0";
  if expect_remote < 0 then invalid_arg "Dispatch.create: negative expect_remote";
  if max_rejoin < 0 then invalid_arg "Dispatch.create: negative max_rejoin";
  if accept_rate <= 0. then invalid_arg "Dispatch.create: accept_rate <= 0";
  if accept_burst < 1 then invalid_arg "Dispatch.create: accept_burst < 1";
  if expect_remote > 0 && listener = None then
    invalid_arg "Dispatch.create: expect_remote without a listener";
  if String.length token > Worker.max_auth_bytes then
    invalid_arg "Dispatch.create: token too long";
  (* A worker dying mid-write must cost us an EPIPE, not a SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stats =
    {
      spawned = 0;
      spawn_failures = 0;
      connected = 0;
      auth_failures = 0;
      rate_limited = 0;
      died = 0;
      reassigned = 0;
      inline_tasks = 0;
    }
  in
  let live = ref [] in
  for wid = 0 to workers - 1 do
    match spawn ~command ~stderr_dir ~log wid with
    | Some w ->
      (* A worker that never even announces must not stall the sweep:
         its hello is due within one heartbeat window.  (If it did
         announce, the frame sits in the pipe and is processed before
         any deadline check fires.) *)
      w.deadline <- Unix.gettimeofday () +. heartbeat_timeout;
      stats.spawned <- stats.spawned + 1;
      live := w :: !live
    | None -> stats.spawn_failures <- stats.spawn_failures + 1
  done;
  (* Remote workers are separate processes on possibly separate
     machines; give them a few heartbeat windows to find us before the
     barrier (and, with no local workers at all, the degradation
     clock) stops waiting. *)
  let join_grace =
    match join_grace with Some g -> max g 0.01 | None -> 3. *. heartbeat_timeout
  in
  let now = Unix.gettimeofday () in
  {
    context;
    batching;
    heartbeat_timeout;
    backoff_base;
    backoff_cap;
    token;
    listener;
    expect_remote;
    accept_rate;
    accept_burst = float_of_int accept_burst;
    buckets = Hashtbl.create 8;
    fallback;
    accounts = Hashtbl.create 8;
    mono = now;
    accepts_left = (match listener with None -> 0 | Some _ -> expect_remote + max_rejoin);
    remote_seen = 0;
    barrier_deadline = (if expect_remote > 0 then now +. join_grace else now);
    rejoin_deadline = (match listener with None -> now | Some _ -> now +. join_grace);
    degraded = false;
    live = List.rev !live;
    handshook = false;
    next_seq = 0;
    stats;
    log;
  }

(* {1 Worker lifecycle} *)

let send_msg w msg =
  let s = Worker.encode msg in
  Worker.write_all w.to_w (Bytes.unsafe_of_string s) 0 (String.length s)

let reap pid =
  (* SIGKILL makes exit prompt; a bounded WNOHANG poll keeps a
     pathological unkillable child from wedging the supervisor. *)
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  let rec poll tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if tries > 0 then begin
        ignore (Unix.select [] [] [] 0.01);
        poll (tries - 1)
      end
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll tries
    | exception Unix.Unix_error _ -> ()
  in
  poll 200

(* Mark [w] dead: sever it (kill + reap for children, close for
   remotes), drop it from the live list, and requeue whatever of its
   batch still lacks a result.  A severed remote may reconnect later —
   as a brand-new peer drawing on the accept budget.

   The requeue backoff is keyed to the dead worker's consecutive-
   failure streak, not to the batch lineage alone: a worker that has
   completed a batch since its last condemnation starts over at the
   base delay, so one early crash does not permanently tax a recovered
   (rejoined) worker with the capped backoff, while a worker that dies
   again and again — same wid, rejoining in a loop — still backs off
   exponentially. *)
let bury t ~requeue ~now ~results w reason =
  t.log (Printf.sprintf "%s dead: %s" (describe w) reason);
  t.stats.died <- t.stats.died + 1;
  (match w.peer with
  | Child pid ->
    reap pid;
    (try Unix.close w.to_w with Unix.Unix_error _ -> ());
    (try Unix.close w.from_w with Unix.Unix_error _ -> ())
  | Remote _ ->
    (* One socket, one close. *)
    (try Unix.close w.to_w with Unix.Unix_error _ -> ()));
  (* A remote that never handshook (bad token, silent connection) still
     counts as "seen" so the barrier cannot wait forever on it. *)
  (match (w.peer, w.state) with
  | Remote _, Awaiting_hello -> t.remote_seen <- t.remote_seen + 1
  | _ -> ());
  t.live <- List.filter (fun x -> x.uid <> w.uid) t.live;
  (* Losing the last worker starts the rejoin clock: a listener-backed
     dispatch holds the degradation decision open one more heartbeat
     window for a reconnection. *)
  if t.live = [] && t.listener <> None && not t.degraded then
    t.rejoin_deadline <- Float.max t.rejoin_deadline (now +. t.heartbeat_timeout);
  let streak =
    if w.wid >= 0 then begin
      let a = acct_for t w.wid in
      a.streak <- a.streak + 1;
      a.streak
    end
    else 0
  in
  match w.state with
  | Awaiting_hello | Ready -> ()
  | Busy { batch = b; outstanding = _ } ->
    if not b.speculative then begin
      (* A speculative copy's indices are still covered by the original
         batch (or its requeue), so the copy itself is never requeued. *)
      let undone =
        Array.of_list (List.filter (fun i -> not (Hashtbl.mem results i)) (Array.to_list b.indices))
      in
      if Array.length undone > 0 then begin
        let attempt = b.attempt + 1 in
        let delay = backoff t ~attempt:(if streak > 0 then streak else attempt) in
        t.stats.reassigned <- t.stats.reassigned + 1;
        requeue
          {
            seq = b.seq;
            indices = undone;
            attempt;
            not_before = now +. delay;
            speculative = false;
            speculated = false;
          }
      end
    end

(* Per-address token bucket, consulted before any byte is read from a
   new connection and before the accept budget is decremented. *)
let rate_limit_ok t ~now addr =
  let ip =
    match String.rindex_opt addr ':' with Some i -> String.sub addr 0 i | None -> addr
  in
  let b =
    match Hashtbl.find_opt t.buckets ip with
    | Some b -> b
    | None ->
      let b = { tokens = t.accept_burst; stamp = now } in
      Hashtbl.add t.buckets ip b;
      b
  in
  if now > b.stamp then begin
    b.tokens <- Float.min t.accept_burst (b.tokens +. ((now -. b.stamp) *. t.accept_rate));
    b.stamp <- now
  end;
  if b.tokens >= 1. then begin
    b.tokens <- b.tokens -. 1.;
    true
  end
  else false

(* Drain the listener's pending connections into Awaiting_hello peers.
   The accept budget bounds rejoin: a flapping or adversarial peer
   cannot make the supervisor accept forever.  The per-address rate
   limit runs first: an over-limit connection is closed before any
   byte is read and does not touch the accept budget. *)
let accept_pending t ~now =
  match t.listener with
  | None -> ()
  | Some l when not t.degraded ->
    let rec go () =
      match Transport.accept l with
      | None -> ()
      | Some (fd, addr) ->
        if not (rate_limit_ok t ~now:(mono t now) addr) then begin
          t.stats.rate_limited <- t.stats.rate_limited + 1;
          t.log (Printf.sprintf "refusing connection from %s: over per-address rate limit" addr);
          (try Unix.close fd with Unix.Unix_error _ -> ());
          go ()
        end
        else if t.accepts_left <= 0 then begin
          t.log (Printf.sprintf "refusing connection from %s: accept budget exhausted" addr);
          (try Unix.close fd with Unix.Unix_error _ -> ());
          go ()
        end
        else begin
          t.accepts_left <- t.accepts_left - 1;
          t.stats.connected <- t.stats.connected + 1;
          let w =
            {
              uid = fresh_uid ();
              wid = -1;
              peer = Remote addr;
              to_w = fd;
              from_w = fd;
              rx = Worker.Rx.create ();
              state = Awaiting_hello;
              deadline = now +. t.heartbeat_timeout;
            }
          in
          t.live <- t.live @ [ w ];
          t.log (Printf.sprintf "accepted connection from %s" addr);
          go ()
        end
    in
    go ()
  | Some _ -> ()

(* {1 The run loop} *)

let run t indices =
  let n = Array.length indices in
  let wanted = Hashtbl.create (2 * n) in
  Array.iter (fun i -> Hashtbl.replace wanted i ()) indices;
  let results : (int, (Journal.entry, string) result) Hashtbl.t = Hashtbl.create (2 * n) in
  (* First write wins; results for indices outside this run (a confused
     worker) are dropped rather than corrupting the completion count. *)
  let record i r =
    if Hashtbl.mem wanted i && not (Hashtbl.mem results i) then Hashtbl.add results i r
  in
  let inline i =
    t.stats.inline_tasks <- t.stats.inline_tasks + 1;
    record i (t.fallback i)
  in
  (* Work queue: requeued batches at the front; fresh work is carved on
     demand from a cursor so the carve size can adapt per assignment.
     Under Fixed the carves replay the classic pre-chunked schedule
     exactly (same seqs, same contents, same order). *)
  let front = ref [] in
  let requeue b = front := b :: !front in
  let cursor = ref 0 in
  let fresh_left () = n - !cursor in
  let carve size =
    let size = max 1 (min size (fresh_left ())) in
    let b =
      {
        seq = t.next_seq;
        indices = Array.sub indices !cursor size;
        attempt = 0;
        not_before = 0.;
        speculative = false;
        speculated = false;
      }
    in
    t.next_seq <- t.next_seq + 1;
    cursor := !cursor + size;
    b
  in
  let pop_released now ~size =
    let rec pick acc = function
      | [] -> (None, List.rev acc)
      | b :: rest when b.not_before <= now -> (Some b, List.rev_append acc rest)
      | b :: rest -> pick (b :: acc) rest
    in
    match pick [] !front with
    | Some b, rest ->
      front := rest;
      Some b
    | None, _ -> if fresh_left () > 0 then Some (carve size) else None
  in
  let queued () = List.length !front in
  let earliest_release () =
    List.fold_left (fun acc b -> min acc b.not_before) infinity !front
  in
  let done_ () = Hashtbl.length results >= Hashtbl.length wanted in
  (* One decoded message from worker [w].  Any protocol surprise is a
     death sentence (crash-stop) — and authentication is checked here,
     before the config reply, so a peer with the wrong token never sees
     a single frame of sweep state. *)
  let handle_msg ~now w = function
    | Worker.Hello { worker = wid; wire_version = v; auth } ->
      if v <> Worker.wire_version then
        Error (Printf.sprintf "wire version %d, expected %d" v Worker.wire_version)
      else if not (String.equal auth t.token) then begin
        t.stats.auth_failures <- t.stats.auth_failures + 1;
        Error "authentication failed (wrong or missing token)"
      end
      else (
        match send_msg w (Worker.Config t.context) with
        | () ->
          (match w.state with
          | Awaiting_hello ->
            w.wid <- wid;
            w.state <- Ready;
            (* Stamp the throughput epoch so the first result measures
               a real interval. *)
            Ewma.observe (acct_for t wid).ewma ~now:(mono t now) ~tasks:0;
            (match w.peer with
            | Remote addr ->
              t.remote_seen <- t.remote_seen + 1;
              t.log (Printf.sprintf "worker %d joined from %s" wid addr)
            | Child _ -> ())
          | Ready | Busy _ -> ());
          w.deadline <- infinity;
          Ok ()
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _) ->
          Error "EPIPE sending config")
    | Worker.Heartbeat { worker = _; count } ->
      if w.wid >= 0 then begin
        let a = acct_for t w.wid in
        if count > a.reported then a.reported <- count
      end;
      w.deadline <- now +. t.heartbeat_timeout;
      Ok ()
    | Worker.Result { index; result } ->
      let fresh = Hashtbl.mem wanted index && not (Hashtbl.mem results index) in
      record index result;
      w.deadline <- now +. t.heartbeat_timeout;
      if w.wid >= 0 then begin
        let a = acct_for t w.wid in
        a.results <- a.results + 1;
        Ewma.observe a.ewma ~now:(mono t now) ~tasks:1;
        if fresh then begin
          a.wins <- a.wins + 1;
          match w.state with
          | Busy { batch; outstanding } when batch.speculative && Hashtbl.mem outstanding index
            ->
            a.spec_wins <- a.spec_wins + 1
          | _ -> ()
        end
      end;
      (match w.state with
      | Busy { batch = _; outstanding } when Hashtbl.mem outstanding index ->
        Hashtbl.remove outstanding index;
        if Hashtbl.length outstanding = 0 then begin
          (* A completed batch clears the worker's failure streak — the
             next condemnation backs off from the base again. *)
          if w.wid >= 0 then (acct_for t w.wid).streak <- 0;
          w.state <- Ready;
          w.deadline <- infinity
        end
      | _ -> ());
      Ok ()
    | Worker.Config _ | Worker.Task_batch _ | Worker.Shutdown ->
      Error "worker sent a supervisor-only message"
  in
  let drain_rx ~now w =
    let rec go () =
      match Worker.Rx.next w.rx with
      | Ok None -> Ok ()
      | Error e -> Error ("undecodable frame: " ^ e)
      | Ok (Some f) -> (
        match Worker.parse f with
        | Error e -> Error ("unparseable frame: " ^ e)
        | Ok m -> ( match handle_msg ~now w m with Ok () -> go () | Error e -> Error e))
    in
    go ()
  in
  (* With zero live workers, is a (re)connection still worth waiting
     for?  Only a non-degraded listener with accept budget left, and
     only until the rejoin deadline. *)
  let may_wait_for_peers now =
    t.listener <> None && not t.degraded && t.accepts_left > 0 && now < t.rejoin_deadline
  in
  let rbuf = Bytes.create 65536 in
  while not (done_ ()) do
    let now = Unix.gettimeofday () in
    accept_pending t ~now;
    (* Handshake barrier: hold all work until every spawned worker has
       announced or been condemned and the expected remote peers have
       joined (or the barrier grace expired), so batch placement is a
       function of worker ids, not of hello or connection arrival
       order. *)
    if not t.handshook then begin
      let locals_announced =
        List.for_all
          (fun w -> match w.peer with Child _ -> w.state <> Awaiting_hello | Remote _ -> true)
          t.live
      in
      let remotes_ok =
        t.remote_seen >= t.expect_remote
        ||
        if now >= t.barrier_deadline then begin
          t.log
            (Printf.sprintf
               "handshake barrier: %d of %d expected remote workers joined in time; \
                proceeding without the rest"
               t.remote_seen t.expect_remote);
          true
        end
        else false
      in
      t.handshook <- locals_announced && remotes_ok
    end;
    let rate_of w = if w.wid >= 0 then Ewma.rate (acct_for t w.wid).ewma else 0. in
    let note_assignment w b =
      if w.wid >= 0 then begin
        let a = acct_for t w.wid in
        a.batches <- a.batches + 1;
        if b.speculative then a.speculative <- a.speculative + 1
      end
    in
    (* Tail-end speculation (Auto mode only): with the queue dry but
       batches still in flight, hand the slowest busy worker's
       outstanding indices to idle worker [w].  First-result-wins makes
       the duplicate harmless; one copy per batch bounds the waste. *)
    let speculate w =
      match t.batching with
      | Fixed _ -> false
      | Auto _ -> (
        let victims =
          List.filter_map
            (fun v ->
              match v.state with
              | Busy { batch; outstanding }
                when (not batch.speculated) && Hashtbl.length outstanding > 0 && v.uid <> w.uid
                ->
                Some (v, batch, outstanding)
              | _ -> None)
            t.live
        in
        match victims with
        | [] -> false
        | first :: rest ->
          let slowest =
            List.fold_left
              (fun ((bv, _, _) as best) ((cv, _, _) as cand) ->
                if (rate_of cv, cv.wid) < (rate_of bv, bv.wid) then cand else best)
              first rest
          in
          let v, vb, outs = slowest in
          let idx = List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) outs []) in
          let b =
            {
              seq = t.next_seq;
              indices = Array.of_list idx;
              attempt = vb.attempt;
              not_before = 0.;
              speculative = true;
              speculated = true;
            }
          in
          t.next_seq <- t.next_seq + 1;
          match send_msg w (Worker.Task_batch { seq = b.seq; indices = b.indices }) with
          | () ->
            vb.speculated <- true;
            w.state <- Busy { batch = b; outstanding = Hashtbl.copy outs };
            w.deadline <- now +. t.heartbeat_timeout;
            note_assignment w b;
            t.log
              (Printf.sprintf "%s speculating on %s's batch %d (%d tasks)" (describe w)
                 (describe v) vb.seq (Array.length b.indices));
            true
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _) ->
            bury t ~requeue ~now ~results w "EPIPE on task send";
            true)
    in
    (* Assign released work to idle workers (lowest id first); batch
       size follows the worker's throughput estimate under Auto. *)
    let rec assign () =
      if not t.handshook then ()
      else
        match List.find_opt (fun w -> w.state = Ready) t.live with
        | None -> ()
        | Some w -> (
          let size = batch_for t.batching ~rate:(rate_of w) in
          match pop_released now ~size with
          | None -> if speculate w then assign ()
          | Some b -> (
            let outstanding = Hashtbl.create (Array.length b.indices) in
            Array.iter
              (fun i -> if not (Hashtbl.mem results i) then Hashtbl.replace outstanding i ())
              b.indices;
            if Hashtbl.length outstanding = 0 then assign ()
            else
              match send_msg w (Worker.Task_batch { seq = b.seq; indices = b.indices }) with
              | () ->
                w.state <- Busy { batch = b; outstanding };
                w.deadline <- now +. t.heartbeat_timeout;
                note_assignment w b;
                assign ()
              | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _)
                ->
                bury t ~requeue ~now ~results w "EPIPE on task send";
                requeue b;
                assign ()))
    in
    assign ();
    if t.live = [] && not (may_wait_for_peers now) then begin
      (* No survivors and no prospect of a rejoin: graceful degradation
         — finish in-process.  Sticky: once degraded, later chunks run
         inline immediately instead of re-waiting a grace window. *)
      if t.listener <> None && not t.degraded then begin
        t.degraded <- true;
        Option.iter Transport.close_listener t.listener;
        t.log "no live workers and no rejoin in time; degrading to in-process execution"
      end;
      Array.iter (fun i -> if not (Hashtbl.mem results i) then inline i) indices
    end
    else if not (done_ ()) then begin
      let deadline =
        List.fold_left (fun acc w -> min acc w.deadline) infinity t.live
      in
      let wake = min deadline (if queued () > 0 then earliest_release () else infinity) in
      let wake = if t.handshook then wake else min wake t.barrier_deadline in
      let wake = if t.live = [] then min wake t.rejoin_deadline else wake in
      let timeout =
        if wake = infinity then 1.0 else max 0.005 (min 1.0 (wake -. now))
      in
      let fds = List.map (fun w -> w.from_w) t.live in
      let fds =
        match t.listener with
        | Some l when not t.degraded -> Transport.listener_fd l :: fds
        | _ -> fds
      in
      let readable, _, _ =
        try Unix.select fds [] [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      let now = Unix.gettimeofday () in
      List.iter
        (fun fd ->
          (* The listener fd falls through find_opt; accept_pending
             drains it on the next loop iteration. *)
          match List.find_opt (fun w -> w.from_w = fd) t.live with
          | None -> ()
          | Some w -> (
            match Unix.read w.from_w rbuf 0 (Bytes.length rbuf) with
            | 0 -> bury t ~requeue ~now ~results w "EOF"
            | len -> (
              Worker.Rx.feed w.rx rbuf len;
              match drain_rx ~now w with
              | Ok () -> ()
              | Error e -> bury t ~requeue ~now ~results w e)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error (e, _, _) ->
              bury t ~requeue ~now ~results w (Unix.error_message e)))
        readable;
      (* Heartbeat deadlines: a busy (or never-announced) worker that
         stayed silent past its deadline is treated as crashed even
         though the process may still be running (hung or behind a
         partition).  Iterate a snapshot — bury edits t.live. *)
      List.iter
        (fun w ->
          bury t ~requeue ~now ~results w
            (Printf.sprintf "heartbeat deadline exceeded (%.1fs)" t.heartbeat_timeout))
        (List.filter (fun w -> w.deadline < now) t.live)
    end
  done;
  Array.map (fun i -> match Hashtbl.find_opt results i with Some r -> r | None -> assert false) indices

let shutdown t =
  List.iter
    (fun w ->
      (try send_msg w Worker.Shutdown with Unix.Unix_error _ -> ());
      match w.peer with
      | Child _ -> ( try Unix.close w.to_w with Unix.Unix_error _ -> ())
      | Remote _ ->
        (* Half-close: the Shutdown frame flushes ahead of the FIN, the
           remote reads it, exits 0, and closes its end. *)
        (try Unix.shutdown w.to_w Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()))
    t.live;
  (* Bounded grace, then the axe. *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  List.iter
    (fun w ->
      (match w.peer with
      | Remote _ -> ()
      | Child pid ->
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
            if Unix.gettimeofday () < deadline then begin
              ignore (Unix.select [] [] [] 0.02);
              wait ()
            end
            else reap pid
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          | exception Unix.Unix_error _ -> ()
        in
        wait ());
      try Unix.close w.from_w with Unix.Unix_error _ -> ())
    t.live;
  Option.iter Transport.close_listener t.listener;
  t.live <- []
