type static = {
  advice : Bitstring.Bitbuf.t;
  is_source : bool;
  id : int;
  degree : int;
}

type t = { static : static; received : (Message.t * int) list }

let initial static = { static; received = [] }

let receive t msg ~port = { t with received = t.received @ [ (msg, port) ] }

let received_count t = List.length t.received

let pp fmt t =
  Format.fprintf fmt "@[<h>(advice=%a, s=%b, id=%d, deg=%d,"
    Bitstring.Bitbuf.pp t.static.advice t.static.is_source t.static.id t.static.degree;
  List.iter (fun (m, p) -> Format.fprintf fmt " (%a,%d)" Message.pp m p) t.received;
  Format.fprintf fmt ")@]"
