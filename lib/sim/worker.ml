(* The worker half of the distributed sweep protocol.  A worker is a
   subprocess (spawned by Dispatch, entered via the hidden [oraclesize
   worker] subcommand) that speaks length-prefixed, CRC-checked
   Bitstring.Frame frames over two pipes: stdin carries supervisor →
   worker traffic (config Hello, Task batches, Shutdown), stdout carries
   worker → supervisor traffic (announce Hello, Heartbeats, Results).
   stderr is the worker's free-form log and never carries frames.

   Failure model: crash-stop.  A worker that dies, hangs past the
   heartbeat deadline, or emits a single malformed frame is written off
   wholesale by the supervisor — there is no rejoin, no per-frame
   retransmission.  That is why the codec below can afford to be
   unforgiving: any parse failure is an Error, and Dispatch's reaction
   to an Error is to kill the worker and reassign its batch.

   Determinism: a Result's payload is a pure function of the task index
   (the [exec]-built closure derives everything from grid coordinates),
   so which worker computed it, and when, is invisible to the journal
   and the emitted rows. *)

module Frame = Bitstring.Frame
module Bitbuf = Bitstring.Bitbuf

let wire_version = 1

type msg =
  | Hello of { worker : int; wire_version : int }
  | Config of Journal.context
  | Task_batch of { seq : int; indices : int array }
  | Result of { index : int; result : (Journal.entry, string) result }
  | Heartbeat of { worker : int; count : int }
  | Shutdown

(* {1 Codec}

   Field widths are part of the wire contract (DESIGN.md §13):
   - announce Hello: key = worker id, payload = 8-bit wire version;
   - config Hello: key = 0, payload = a journal superblock payload
     (Journal.context_payload) — ≥ 32 bits, so payload length alone
     distinguishes the two Hello shapes;
   - Task: key = batch sequence number, payload = 16-bit count then
     [count] 32-bit task indices;
   - Result: key = task index, payload = 1 ok bit, then either a record
     payload (Journal.entry_payload) or a 16-bit byte length plus error
     bytes;
   - Heartbeat: key = worker id, payload = 32-bit tasks-completed count;
   - Shutdown: key = 0, empty payload. *)

let frame kind key payload = { Frame.kind; version = Frame.current_version; key; payload }

let frame_of_msg = function
  | Hello { worker; wire_version = v } ->
    let b = Bitbuf.create ~capacity:8 () in
    Bitbuf.add_int b ~width:8 v;
    frame Frame.Hello worker b
  | Config ctx -> frame Frame.Hello 0 (Journal.context_payload ctx)
  | Task_batch { seq; indices } ->
    if Array.length indices > 0xffff then invalid_arg "Worker.encode: batch too large";
    let b = Bitbuf.create ~capacity:(16 + (32 * Array.length indices)) () in
    Bitbuf.add_int b ~width:16 (Array.length indices);
    Array.iter (fun i -> Bitbuf.add_int b ~width:32 i) indices;
    frame Frame.Task seq b
  | Result { index; result } ->
    let b = Bitbuf.create () in
    (match result with
    | Ok entry ->
      Bitbuf.add_bit b true;
      Bitbuf.append b (Journal.entry_payload entry)
    | Error msg ->
      let msg =
        if String.length msg > 0xffff then String.sub msg 0 0xffff else msg
      in
      Bitbuf.add_bit b false;
      Bitbuf.add_int b ~width:16 (String.length msg);
      String.iter (fun c -> Bitbuf.add_int b ~width:8 (Char.code c)) msg);
    frame Frame.Result index b
  | Heartbeat { worker; count } ->
    let b = Bitbuf.create ~capacity:32 () in
    Bitbuf.add_int b ~width:32 (count land 0xffffffff);
    frame Frame.Heartbeat worker b
  | Shutdown -> frame Frame.Shutdown 0 (Bitbuf.create ())

let encode msg = Frame.encode (frame_of_msg msg)

let parse (f : Frame.t) =
  let bits = Bitbuf.length f.payload in
  match f.kind with
  | Frame.Hello ->
    if bits = 8 then
      let r = Bitbuf.reader f.payload in
      Ok (Hello { worker = f.key; wire_version = Bitbuf.read_int r ~width:8 })
    else (
      match Journal.decode_context f.payload with
      | Ok ctx -> Ok (Config ctx)
      | Error e -> Error (Printf.sprintf "config hello: %s" e))
  | Frame.Task ->
    let r = Bitbuf.reader f.payload in
    if bits < 16 then Error "task batch: payload shorter than the count field"
    else
      let count = Bitbuf.read_int r ~width:16 in
      if bits <> 16 + (32 * count) then
        Error
          (Printf.sprintf "task batch: %d indices need %d payload bits, frame has %d" count
             (16 + (32 * count)) bits)
      else Ok (Task_batch { seq = f.key; indices = Array.init count (fun _ -> Bitbuf.read_int r ~width:32) })
  | Frame.Result ->
    if bits < 1 then Error "result: empty payload"
    else
      let r = Bitbuf.reader f.payload in
      if Bitbuf.read_bit r then begin
        (* Re-pack the remaining bits so Journal.decode_payload sees a
           payload of exactly the record's length. *)
        let rest = Bitbuf.create ~capacity:(bits - 1) () in
        while not (Bitbuf.at_end r) do
          Bitbuf.add_bit rest (Bitbuf.read_bit r)
        done;
        match Journal.decode_payload rest with
        | Ok entry -> Ok (Result { index = f.key; result = Ok entry })
        | Error e -> Error (Printf.sprintf "result: %s" e)
      end
      else if bits < 17 then Error "result: error payload shorter than its length field"
      else
        let len = Bitbuf.read_int r ~width:16 in
        if bits <> 17 + (8 * len) then Error "result: error length disagrees with payload"
        else
          let msg = String.init len (fun _ -> Char.chr (Bitbuf.read_int r ~width:8)) in
          Ok (Result { index = f.key; result = Error msg })
  | Frame.Heartbeat ->
    if bits <> 32 then Error "heartbeat: payload is not 32 bits"
    else
      let r = Bitbuf.reader f.payload in
      Ok (Heartbeat { worker = f.key; count = Bitbuf.read_int r ~width:32 })
  | Frame.Shutdown ->
    if bits <> 0 then Error "shutdown: nonempty payload" else Ok Shutdown
  | Frame.Superblock | Frame.Record -> Error "journal frame on the wire"

(* {1 Incremental frame reader}

   Pipes deliver bytes, not frames: a read can end mid-header, mid-
   payload, or with three frames and a half in one gulp.  Rx buffers
   fed bytes and peels complete frames off the front; Truncated means
   "feed me more", every other decode error is fatal for the stream
   (crash-stop: one bad byte writes the peer off). *)

module Rx = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let pending t = t.len

  let feed t src n =
    if n < 0 || n > Bytes.length src then invalid_arg "Worker.Rx.feed";
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (2 * Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    Bytes.blit src 0 t.buf t.len n;
    t.len <- t.len + n

  let next t =
    if t.len = 0 then Ok None
    else
      match Frame.decode (Bytes.sub_string t.buf 0 t.len) ~pos:0 with
      | Error (Frame.Truncated _) -> Ok None
      | Error e -> Error (Frame.error_to_string e)
      | Ok (f, consumed) ->
        Bytes.blit t.buf consumed t.buf 0 (t.len - consumed);
        t.len <- t.len - consumed;
        Ok (Some f)
end

(* {1 Blocking I/O helpers} *)

let rec write_all fd b pos len =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len

let rec read_some fd b =
  match Unix.read fd b 0 (Bytes.length b) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd b

(* {1 The serve loop} *)

exception Protocol of string

let serve ~id ?(chaos = fun ~completed:_ -> `Continue) ~exec ~input ~output () =
  (* A dying supervisor must not take the worker down with SIGPIPE;
     EPIPE from write is the signal to leave quietly. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let send msg =
    let s = encode msg in
    write_all output (Bytes.unsafe_of_string s) 0 (String.length s)
  in
  let rx = Rx.create () in
  let rbuf = Bytes.create 65536 in
  (* Next complete message, blocking; None on supervisor EOF. *)
  let rec recv () =
    match Rx.next rx with
    | Error e -> raise (Protocol ("malformed frame from supervisor: " ^ e))
    | Ok (Some f) -> (
      match parse f with
      | Ok m -> Some m
      | Error e -> raise (Protocol ("unparseable frame from supervisor: " ^ e)))
    | Ok None ->
      let n = read_some input rbuf in
      if n = 0 then None
      else begin
        Rx.feed rx rbuf n;
        recv ()
      end
  in
  try
    send (Hello { worker = id; wire_version });
    match recv () with
    | None -> 0 (* supervisor went away before configuring us *)
    | Some (Config ctx) -> (
      match exec ctx with
      | Error e ->
        Printf.eprintf "worker %d: cannot build executor: %s\n%!" id e;
        3
      | Ok run_task ->
        let completed = ref 0 in
        let rec loop () =
          match recv () with
          | None | Some Shutdown -> 0
          | Some (Task_batch { seq = _; indices }) ->
            Array.iter
              (fun i ->
                (match chaos ~completed:!completed with
                | `Continue -> ()
                | `Kill ->
                  (* Crash-stop: no flush, no at_exit — the closest a
                     cooperative process gets to SIGKILLing itself. *)
                  Unix._exit 137
                | `Hang ->
                  while true do
                    Unix.sleep 3600
                  done
                | `Garbage g ->
                  write_all output (Bytes.of_string g) 0 (String.length g);
                  Unix._exit 98);
                send (Heartbeat { worker = id; count = !completed });
                send (Result { index = i; result = run_task i });
                incr completed)
              indices;
            loop ()
          | Some _ -> raise (Protocol "unexpected message kind from supervisor")
        in
        loop ())
    | Some _ -> raise (Protocol "first message was not a config hello")
  with
  | Protocol e ->
    Printf.eprintf "worker %d: %s\n%!" id e;
    2
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    (* Supervisor is gone; nothing left to report to. *)
    1
