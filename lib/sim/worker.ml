(* The worker half of the distributed sweep protocol.  A worker is a
   process that speaks length-prefixed, CRC-checked Bitstring.Frame
   frames over a byte stream (Transport.io): pipes when spawned by
   Dispatch via the hidden [oraclesize worker] subcommand, or a TCP
   socket when started by hand with [--connect HOST:PORT].  The
   supervisor→worker direction carries config Hello, Task batches, and
   Shutdown; worker→supervisor carries announce Hello, Heartbeats, and
   Results.  stderr is the worker's free-form log and never carries
   frames.

   Failure model: crash-stop with (for sockets) rejoin.  A worker that
   dies, hangs past the heartbeat deadline, or emits a single malformed
   frame is written off wholesale by the supervisor — there is no
   per-frame retransmission.  A condemned *remote* worker may, however,
   reconnect and re-handshake as a brand-new peer; the serve loop
   surfaces connection loss as a value ([`Lost]) instead of an exit
   code precisely so its caller can loop.  That is why the codec below
   can afford to be unforgiving: any parse failure is an Error, and
   Dispatch's reaction to an Error is to condemn the peer and reassign
   its batch.

   Determinism: a Result's payload is a pure function of the task index
   (the [exec]-built closure derives everything from grid coordinates),
   so which worker computed it, and when, is invisible to the journal
   and the emitted rows. *)

module Frame = Bitstring.Frame
module Bitbuf = Bitstring.Bitbuf

(* Version 2: the Hello payload grew a discriminator bit and an
   authentication token (see the codec note below).  Version 1 was the
   pipe-only protocol without authentication. *)
let wire_version = 2

type msg =
  | Hello of { worker : int; wire_version : int; auth : string }
  | Config of Journal.context
  | Task_batch of { seq : int; indices : int array }
  | Result of { index : int; result : (Journal.entry, string) result }
  | Heartbeat of { worker : int; count : int }
  | Shutdown

(* {1 Codec}

   Field widths are part of the wire contract (DESIGN.md §13).  Both
   Hello shapes share a frame kind, so their payloads begin with a
   1-bit discriminator (version 1 told them apart by payload length,
   which stopped being injective once announce hellos carried a
   variable-length token):
   - announce Hello (tag 0): key = worker id, then an 8-bit wire
     version, a 16-bit token byte length, and the token bytes;
   - config Hello (tag 1): key = 0, then a journal superblock payload
     (Journal.context_payload);
   - Task: key = batch sequence number, payload = 16-bit count then
     [count] 32-bit task indices;
   - Result: key = task index, payload = 1 ok bit, then either a record
     payload (Journal.entry_payload) or a 16-bit byte length plus error
     bytes;
   - Heartbeat: key = worker id, payload = 32-bit tasks-completed count;
   - Shutdown: key = 0, empty payload. *)

let max_auth_bytes = 0xffff

let frame kind key payload = { Frame.kind; version = Frame.current_version; key; payload }

let frame_of_msg = function
  | Hello { worker; wire_version = v; auth } ->
    if String.length auth > max_auth_bytes then invalid_arg "Worker.encode: auth token too long";
    let b = Bitbuf.create ~capacity:(25 + (8 * String.length auth)) () in
    Bitbuf.add_bit b false;
    Bitbuf.add_int b ~width:8 v;
    Bitbuf.add_int b ~width:16 (String.length auth);
    String.iter (fun c -> Bitbuf.add_int b ~width:8 (Char.code c)) auth;
    frame Frame.Hello worker b
  | Config ctx ->
    let ctx_bits = Journal.context_payload ctx in
    let b = Bitbuf.create ~capacity:(1 + Bitbuf.length ctx_bits) () in
    Bitbuf.add_bit b true;
    Bitbuf.append b ctx_bits;
    frame Frame.Hello 0 b
  | Task_batch { seq; indices } ->
    if Array.length indices > 0xffff then invalid_arg "Worker.encode: batch too large";
    let b = Bitbuf.create ~capacity:(16 + (32 * Array.length indices)) () in
    Bitbuf.add_int b ~width:16 (Array.length indices);
    Array.iter (fun i -> Bitbuf.add_int b ~width:32 i) indices;
    frame Frame.Task seq b
  | Result { index; result } ->
    let b = Bitbuf.create () in
    (match result with
    | Ok entry ->
      Bitbuf.add_bit b true;
      Bitbuf.append b (Journal.entry_payload entry)
    | Error msg ->
      let msg =
        if String.length msg > 0xffff then String.sub msg 0 0xffff else msg
      in
      Bitbuf.add_bit b false;
      Bitbuf.add_int b ~width:16 (String.length msg);
      String.iter (fun c -> Bitbuf.add_int b ~width:8 (Char.code c)) msg);
    frame Frame.Result index b
  | Heartbeat { worker; count } ->
    let b = Bitbuf.create ~capacity:32 () in
    Bitbuf.add_int b ~width:32 (count land 0xffffffff);
    frame Frame.Heartbeat worker b
  | Shutdown -> frame Frame.Shutdown 0 (Bitbuf.create ())

let encode msg = Frame.encode (frame_of_msg msg)

(* Re-pack the unread remainder of [r] so downstream decoders see a
   payload of exactly the embedded value's length. *)
let repack r ~bits =
  let rest = Bitbuf.create ~capacity:bits () in
  while not (Bitbuf.at_end r) do
    Bitbuf.add_bit rest (Bitbuf.read_bit r)
  done;
  rest

let parse (f : Frame.t) =
  let bits = Bitbuf.length f.payload in
  match f.kind with
  | Frame.Hello ->
    if bits < 1 then Error "hello: empty payload"
    else
      let r = Bitbuf.reader f.payload in
      if Bitbuf.read_bit r then (
        match Journal.decode_context (repack r ~bits:(bits - 1)) with
        | Ok ctx -> Ok (Config ctx)
        | Error e -> Error (Printf.sprintf "config hello: %s" e))
      else if bits < 25 then Error "announce hello: payload shorter than its fixed fields"
      else
        let v = Bitbuf.read_int r ~width:8 in
        let len = Bitbuf.read_int r ~width:16 in
        if bits <> 25 + (8 * len) then
          Error "announce hello: token length disagrees with payload"
        else
          let auth = String.init len (fun _ -> Char.chr (Bitbuf.read_int r ~width:8)) in
          Ok (Hello { worker = f.key; wire_version = v; auth })
  | Frame.Task ->
    let r = Bitbuf.reader f.payload in
    if bits < 16 then Error "task batch: payload shorter than the count field"
    else
      let count = Bitbuf.read_int r ~width:16 in
      if bits <> 16 + (32 * count) then
        Error
          (Printf.sprintf "task batch: %d indices need %d payload bits, frame has %d" count
             (16 + (32 * count)) bits)
      else Ok (Task_batch { seq = f.key; indices = Array.init count (fun _ -> Bitbuf.read_int r ~width:32) })
  | Frame.Result ->
    if bits < 1 then Error "result: empty payload"
    else
      let r = Bitbuf.reader f.payload in
      if Bitbuf.read_bit r then begin
        match Journal.decode_payload (repack r ~bits:(bits - 1)) with
        | Ok entry -> Ok (Result { index = f.key; result = Ok entry })
        | Error e -> Error (Printf.sprintf "result: %s" e)
      end
      else if bits < 17 then Error "result: error payload shorter than its length field"
      else
        let len = Bitbuf.read_int r ~width:16 in
        if bits <> 17 + (8 * len) then Error "result: error length disagrees with payload"
        else
          let msg = String.init len (fun _ -> Char.chr (Bitbuf.read_int r ~width:8)) in
          Ok (Result { index = f.key; result = Error msg })
  | Frame.Heartbeat ->
    if bits <> 32 then Error "heartbeat: payload is not 32 bits"
    else
      let r = Bitbuf.reader f.payload in
      Ok (Heartbeat { worker = f.key; count = Bitbuf.read_int r ~width:32 })
  | Frame.Shutdown ->
    if bits <> 0 then Error "shutdown: nonempty payload" else Ok Shutdown
  | Frame.Superblock | Frame.Record -> Error "journal frame on the wire"

(* {1 Incremental frame reader}

   Streams deliver bytes, not frames: a read can end mid-header, mid-
   payload, or with three frames and a half in one gulp — and a
   trickled TCP link delivers one byte per read.  Rx buffers fed bytes
   and peels complete frames off the front; Truncated means "feed me
   more", every other decode error is fatal for the stream (crash-stop:
   one bad byte writes the peer off). *)

module Rx = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let pending t = t.len

  let feed t src n =
    if n < 0 || n > Bytes.length src then invalid_arg "Worker.Rx.feed";
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (2 * Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    Bytes.blit src 0 t.buf t.len n;
    t.len <- t.len + n

  let next t =
    if t.len = 0 then Ok None
    else
      match Frame.decode (Bytes.sub_string t.buf 0 t.len) ~pos:0 with
      | Error (Frame.Truncated _) -> Ok None
      | Error e -> Error (Frame.error_to_string e)
      | Ok (f, consumed) ->
        Bytes.blit t.buf consumed t.buf 0 (t.len - consumed);
        t.len <- t.len - consumed;
        Ok (Some f)
end

(* {1 Blocking I/O helpers} *)

let write_all = Transport.write_all

(* {1 Worker-attributed logging}

   Multi-host sweeps interleave worker stderr from several machines;
   every line therefore carries the worker id and a per-process elapsed
   timestamp.  The stamp is monotonic within one worker process (a
   wall-clock step backwards is clamped forward), which is what
   post-mortem ordering of one worker's own lines needs; stamps are not
   comparable across hosts. *)

let log_t0 = ref nan
let log_last = ref 0.

let logf ~id fmt =
  let now = Unix.gettimeofday () in
  if Float.is_nan !log_t0 then log_t0 := now;
  let t = now -. !log_t0 in
  let t = if t > !log_last then t else !log_last in
  log_last := t;
  Printf.ksprintf (fun m -> Printf.eprintf "[+%09.3f w%d] %s\n%!" t id m) fmt

(* {1 The serve loop} *)

exception Protocol of string

type lost = [ `Eof | `Gone ]
type outcome = [ `Exit of int | `Lost of lost ]

let serve_io ~id ?(auth = "") ?(chaos = fun ~completed:_ -> `Continue)
    ?(completed = ref 0) ~exec (io : Transport.io) =
  (* A dying supervisor must not take the worker down with SIGPIPE;
     EPIPE from write is the signal to leave quietly. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let send msg = io.Transport.write (encode msg) in
  let rx = Rx.create () in
  let rbuf = Bytes.create 65536 in
  (* Next complete message, blocking; None on supervisor EOF. *)
  let rec recv () =
    match Rx.next rx with
    | Error e -> raise (Protocol ("malformed frame from supervisor: " ^ e))
    | Ok (Some f) -> (
      match parse f with
      | Ok m -> Some m
      | Error e -> raise (Protocol ("unparseable frame from supervisor: " ^ e)))
    | Ok None ->
      let n = io.Transport.read rbuf in
      if n = 0 then None
      else begin
        Rx.feed rx rbuf n;
        recv ()
      end
  in
  try
    send (Hello { worker = id; wire_version; auth });
    match recv () with
    | None -> `Lost `Eof (* supervisor went away before configuring us *)
    | Some (Config ctx) -> (
      match exec ctx with
      | Error e ->
        logf ~id "cannot build executor: %s" e;
        `Exit 3
      | Ok run_task ->
        let rec loop () =
          match recv () with
          | None -> `Lost `Eof
          | Some Shutdown -> `Exit 0
          | Some (Task_batch { seq = _; indices }) ->
            let count = Array.length indices in
            let rec step k =
              if k >= count then loop ()
              else
                match chaos ~completed:!completed with
                | `Kill ->
                  (* Crash-stop: no flush, no at_exit — the closest a
                     cooperative process gets to SIGKILLing itself. *)
                  Unix._exit 137
                | `Hang ->
                  while true do
                    Unix.sleep 3600
                  done;
                  assert false
                | `Garbage g ->
                  io.Transport.write g;
                  Unix._exit 98
                | `Partition s ->
                  (* Fall silent: no heartbeats, no results, socket left
                     open.  If [s] exceeds the supervisor's heartbeat
                     timeout it condemns us and our next write fails
                     (EPIPE/RST) → [`Lost `Gone] → the caller rejoins.
                     If [s] is shorter, the link was merely slow and the
                     batch resumes unnoticed — the dead-peer/slow-link
                     distinction, end to end. *)
                  logf ~id "chaos: partition, silent for %.1fs after %d tasks" s !completed;
                  Unix.sleepf s;
                  step k
                | `Continue ->
                  send (Heartbeat { worker = id; count = !completed });
                  send (Result { index = indices.(k); result = run_task indices.(k) });
                  incr completed;
                  step (k + 1)
            in
            step 0
          | Some _ -> raise (Protocol "unexpected message kind from supervisor")
        in
        loop ())
    | Some _ -> raise (Protocol "first message was not a config hello")
  with
  | Protocol e ->
    logf ~id "%s" e;
    `Exit 2
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    (* Supervisor is gone — or, over TCP, has condemned this worker and
       closed the connection.  The caller decides whether to rejoin. *)
    `Lost `Gone
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
    (* The socket receive timeout expired: a partition outlasted the
       worker's patience. *)
    logf ~id "supervisor silent past the socket read timeout";
    `Lost `Gone

let serve ~id ?auth ?chaos ~exec ~input ~output () =
  match serve_io ~id ?auth ?chaos ~exec (Transport.fd_io ~input ~output) with
  | `Exit n -> n
  | `Lost `Eof -> 0
  | `Lost `Gone -> 1
