(* Fixed-size domain pool.  See pool.mli for the contract; the invariant
   that makes determinism work is that a batch's [run] callback is the
   only thing workers execute, it never raises (map wraps every task in a
   result), and each invocation writes only the slot for its own index. *)

type batch = {
  run : worker:int -> int -> unit;
  total : int;
  mutable next : int;  (* first unclaimed task index *)
  mutable completed : int;
}

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  mutable batch : batch option;
  mutable generation : int;  (* bumped per submitted batch *)
  mutable busy : bool;  (* a batch is executing: reject nested maps *)
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.n_jobs

(* Pull tasks off [b] until none remain, running each with the mutex
   released.  Mutex held on entry and on exit. *)
let drain t b ~worker =
  let continue_ = ref true in
  while !continue_ do
    if b.next >= b.total then continue_ := false
    else begin
      let i = b.next in
      b.next <- i + 1;
      Mutex.unlock t.mutex;
      b.run ~worker i;
      Mutex.lock t.mutex;
      b.completed <- b.completed + 1;
      if b.completed = b.total then begin
        t.batch <- None;
        Condition.broadcast t.work_done
      end
    end
  done

let rec worker_loop t ~worker ~last_gen =
  Mutex.lock t.mutex;
  while (not t.stopped) && (t.generation = last_gen || t.batch = None) do
    Condition.wait t.work_available t.mutex
  done;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    (match t.batch with Some b -> drain t b ~worker | None -> ());
    Mutex.unlock t.mutex;
    worker_loop t ~worker ~last_gen:gen
  end

let create ~jobs =
  let n_jobs = max 1 jobs in
  let t =
    {
      n_jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      generation = 0;
      busy = false;
      stopped = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (n_jobs - 1) (fun w ->
        Domain.spawn (fun () -> worker_loop t ~worker:(w + 1) ~last_gen:0));
  t

let run_batch t ~run ~total =
  if total = 0 then ()
  else if t.n_jobs = 1 || total = 1 then begin
    if t.stopped then invalid_arg "Pool: map after shutdown";
    if t.busy then invalid_arg "Pool: nested map";
    t.busy <- true;
    Fun.protect
      ~finally:(fun () -> t.busy <- false)
      (fun () ->
        for i = 0 to total - 1 do
          run ~worker:0 i
        done)
  end
  else begin
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: map after shutdown"
    end;
    if t.busy then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: nested map"
    end;
    t.busy <- true;
    let b = { run; total; next = 0; completed = 0 } in
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_available;
    (* The submitting domain is worker 0: it drains alongside the spawned
       domains, then blocks until stragglers finish their last task. *)
    drain t b ~worker:0;
    while b.completed < b.total do
      Condition.wait t.work_done t.mutex
    done;
    t.busy <- false;
    Mutex.unlock t.mutex
  end

let map_local t ~local f total =
  if total < 0 then invalid_arg "Pool.map: negative task count";
  let results =
    Array.make total
      (Error (Failure "Pool.map: slot never written", Printexc.get_callstack 0))
  in
  (* One lazily-created local value per worker slot.  Slot [w] is only
     ever read or written by the domain acting as worker [w], so the
     array needs no synchronization. *)
  let locals = Array.make t.n_jobs None in
  let run ~worker i =
    let w =
      match locals.(worker) with
      | Some w -> w
      | None ->
        let w = local () in
        locals.(worker) <- Some w;
        w
    in
    (* Capture the backtrace at the raise site, on the worker domain:
       the submitting domain re-raises (or reports) with it, so a
       failing task says where it died, not where it was joined. *)
    results.(i) <- (try Ok (f w i) with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  run_batch t ~run ~total;
  results

let map t f total = map_local t ~local:(fun () -> ()) (fun () i -> f i) total

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    t.stopped <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () =
  match Sys.getenv_opt "ORACLE_SIZE_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> max 1 n
    | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
