(** The supervisor of a fleet of {!Worker} subprocesses.

    Dispatch spawns workers from a caller-supplied argv, handshakes them
    (announce {!Worker.Hello} in, config out), and schedules task-index
    batches over the survivors.  The failure model is crash-stop with
    reassignment:

    - every worker with an in-flight batch has a heartbeat deadline;
      workers beat before each task, so a worker silent for longer than
      the timeout — hung, wedged, or quietly dead — is declared crashed;
    - EOF, a failed write ([EPIPE]), a wrong wire version, or a single
      undecodable or unparseable frame likewise condemn the worker;
    - a condemned worker is SIGKILLed and reaped, and the not-yet-
      answered indices of its batch are requeued at the {e front} of the
      work queue with capped exponential backoff
      (≈ 50 ms · 2{^ attempt−1}, capped at 1 s);
    - workers are never respawned: the sweep finishes on the survivors,
      and when none survive the remaining tasks run in-process through
      [fallback] — a dispatch never deadlocks on dead workers.

    Determinism: task results are pure functions of their indices and
    the first result per index wins (a reassigned batch's duplicate
    results are byte-identical), so worker count, chaos schedule, and
    timing are invisible in what {!run} returns.  Feeding {!run} to
    {!Sweep.map_journaled_via} therefore yields byte-identical journals
    and JSONL at any [--workers] value — the CI chaos gate pins this. *)

type t

type stats = {
  mutable spawned : int;  (** workers successfully spawned *)
  mutable spawn_failures : int;  (** spawn attempts that failed outright *)
  mutable died : int;  (** workers condemned (crash, hang, bad frame, EOF) *)
  mutable reassigned : int;  (** batches requeued after a death *)
  mutable inline_tasks : int;  (** tasks executed in-process via [fallback] *)
}

val default_batch : int
(** [16] — task indices per {!Worker.Task_batch} frame. *)

val default_heartbeat_timeout : float
(** [10.] seconds.  The deadline bounds per-task compute time plus
    scheduling noise: a worker beats before each task, so the timeout
    must exceed the slowest single task, not the whole batch. *)

val create :
  workers:int ->
  ?batch:int ->
  ?heartbeat_timeout:float ->
  ?stderr_dir:string ->
  ?log:(string -> unit) ->
  command:(id:int -> string array) ->
  context:Journal.context ->
  fallback:(int -> (Journal.entry, string) result) ->
  unit ->
  t
(** [create ~workers ~command ~context ~fallback ()] spawns [workers]
    subprocesses, worker [id] with argv [command ~id] ([argv.(0)] is the
    executable), stdin/stdout piped to the supervisor and stderr either
    inherited or, with [stderr_dir], redirected to
    [<stderr_dir>/worker-<id>.log].  [context] is sent to each worker as
    its config — the same {!Journal.context} the sweep's journal uses,
    so worker and supervisor provably execute the same grid.  Spawn
    failures are counted, not fatal; check {!live_workers} to fall back
    to the in-process pool when nothing spawned.  Ignores [SIGPIPE]
    process-wide (worker death must surface as [EPIPE], not kill the
    supervisor).  [log] receives one line per lifecycle event.  Raises
    [Invalid_argument] on [workers < 0], [batch < 1], or a non-positive
    timeout. *)

val run : t -> int array -> (Journal.entry, string) result array
(** [run t indices] executes the tasks at [indices] across the live
    workers and returns index-aligned results — the shape
    {!Sweep.map_journaled_via} expects of its [run].  Handshakes
    lazily, survives any number of worker deaths (reassigning as
    described above), and degrades to [fallback] for whatever is left
    when the last worker dies.  Workers stay alive across calls; call
    once per chunk. *)

val shutdown : t -> unit
(** Send {!Worker.Shutdown} to every live worker, give the fleet a
    bounded grace period to exit, SIGKILL stragglers, reap everything,
    close all pipes.  Idempotent. *)

val live_workers : t -> int
(** Workers currently alive (spawned, not yet condemned). *)

val stats : t -> stats
(** A snapshot of the lifecycle counters. *)
