(** The supervisor of a fleet of {!Worker} processes.

    Dispatch spawns local workers from a caller-supplied argv and, when
    given a {!Transport.listener}, accepts remote workers over TCP
    alongside (or instead of) them; it handshakes every peer (announce
    {!Worker.Hello} in — wire version {e and} shared-secret token
    checked before anything is sent back — config out) and schedules
    task-index batches over the survivors.  The failure model is
    crash-stop with reassignment and, for remote peers, bounded rejoin:

    - every worker with an in-flight batch has a heartbeat deadline;
      workers beat before each task, so a worker silent for longer than
      the timeout — hung, wedged, quietly dead, or behind a network
      partition — is declared crashed;
    - EOF, a failed write ([EPIPE]), a wrong wire version, a wrong
      authentication token, or a single undecodable or unparseable
      frame likewise condemn the worker.  An authentication failure is
      detected on the announce hello, so the peer is condemned before
      any config or task frame reaches it;
    - a condemned local worker is SIGKILLed and reaped; a condemned
      remote worker has its connection closed.  Either way the not-yet-
      answered indices of its batch are requeued at the {e front} of
      the work queue with capped exponential backoff
      (≈ 50 ms · 2{^ streak−1}, capped at [backoff_cap], where the
      streak is the dead worker's count of consecutive condemnations —
      a worker that completed a batch since its last death restarts at
      the base delay, so one early crash never permanently taxes a
      recovered worker);
    - local workers are never respawned, but a condemned remote worker
      may reconnect, re-handshake, and resume pulling tasks as a
      brand-new peer — the accept budget ([expect_remote + max_rejoin]
      connections total) bounds how often, and a per-address token
      bucket ([accept_rate]/[accept_burst]) closes over-limit
      connections before a single byte is read and {e without}
      touching the accept budget;
    - when no workers survive, the dispatch waits at most one grace
      window for a rejoin (none if there is no listener), then degrades:
      the remaining tasks run in-process through [fallback] — a
      dispatch never deadlocks on dead workers or a severed network.

    Scheduling is governed by {!batching}.  [Fixed n] carves every
    batch at [n] indices — bit-compatible with the classic fixed-batch
    scheduler.  [Auto] sizes each worker's next batch from an EWMA of
    its observed task throughput (see {!Ewma}), clamped to
    [[min_batch, max_batch]], and adds a tail-end speculation phase:
    when the queue is dry but batches remain in flight, an idle worker
    re-executes the slowest busy worker's outstanding indices (at most
    one copy per batch).

    Determinism: task results are pure functions of their indices and
    the first result per index wins (a reassigned or speculated batch's
    duplicate results are byte-identical), so worker count, local/
    remote mix, batch sizing mode, chaos schedule, partitions, rejoins,
    and timing are invisible in what {!run} returns.  Feeding {!run} to
    {!Sweep.map_journaled_via} therefore yields byte-identical journals
    and JSONL at any [--workers]/[--listen]/[--batch] configuration —
    the CI chaos and straggler gates pin this. *)

(** Task-throughput estimation: an exponentially weighted moving
    average of an event rate observed at irregular intervals,

    {[ rate <- (1 - e^(-dt/tau)) * (k/dt) + e^(-dt/tau) * rate ]}

    where [k] events arrived [dt] seconds after the previous
    observation.  Pure bookkeeping over caller-supplied timestamps, so
    tests can drive it with synthetic clocks. *)
module Ewma : sig
  type t

  val default_tau : float
  (** [3.0] seconds — the averaging time constant. *)

  val create : ?tau:float -> unit -> t
  (** A fresh estimator with zero rate.  The first {!observe} only
      stamps the epoch.  Raises [Invalid_argument] on [tau <= 0]. *)

  val observe : t -> now:float -> tasks:int -> unit
  (** Fold [tasks] events at timestamp [now] into the estimate.
      Events observed with a non-advancing clock ([dt <= 0], including
      the epoch-stamping first call) are held and credited to the next
      real interval — counts are conserved, never dropped.  Raises
      [Invalid_argument] on negative [tasks]. *)

  val rate : t -> float
  (** Current estimate, events per second ([0.] until two observations
      at distinct timestamps have been folded). *)

  val total : t -> int
  (** Total events observed, including pending ones. *)
end

(** How batches are sized.  [Fixed n]: every batch holds [n] indices.
    [Auto]: per-worker adaptive sizing within [[min_batch, max_batch]]
    plus tail-end speculation. *)
type batching = Fixed of int | Auto of { min_batch : int; max_batch : int }

type t

type stats = {
  mutable spawned : int;  (** local workers successfully spawned *)
  mutable spawn_failures : int;  (** spawn attempts that failed outright *)
  mutable connected : int;  (** remote connections accepted (rejoins included) *)
  mutable auth_failures : int;  (** peers condemned for a wrong or missing token *)
  mutable rate_limited : int;
      (** connections closed by the per-address token bucket before any
          byte was read (the accept budget is untouched) *)
  mutable died : int;  (** workers condemned (crash, hang, bad frame, EOF, auth) *)
  mutable reassigned : int;  (** batches requeued after a death *)
  mutable inline_tasks : int;  (** tasks executed in-process via [fallback] *)
}

(** Per-worker-id scheduling account, persistent across remote rejoins
    (keyed by announced worker id, not connection). *)
type worker_stat = {
  worker : int;  (** worker id *)
  tasks : int;  (** Result frames received from this id *)
  wins : int;  (** results that were first for their index *)
  rate : float;  (** EWMA task throughput, tasks/second *)
  batches : int;  (** batches assigned *)
  speculative : int;  (** of which speculative copies *)
  spec_wins : int;  (** wins delivered by a speculative copy *)
  reported : int;  (** latest heartbeat completed-task counter *)
}

val default_batch : int
(** [16] — task indices per {!Worker.Task_batch} frame under the
    default [Fixed] batching. *)

val default_min_batch : int
(** [1] — default lower clamp for [Auto] batching ([--batch-min]). *)

val default_max_batch : int
(** [64] — default upper clamp for [Auto] batching ([--batch-max]). *)

val auto_horizon : float
(** [0.25] seconds — how much work, at the worker's estimated rate,
    one adaptive batch targets. *)

val batch_for : batching -> rate:float -> int
(** The batch size a worker with EWMA throughput [rate] is handed:
    [n] under [Fixed n]; [clamp min_batch max_batch (ceil (rate *
    auto_horizon))] under [Auto], with [min_batch] as the probe size
    while no estimate exists ([rate <= 0]). *)

val default_heartbeat_timeout : float
(** [10.] seconds.  The deadline bounds per-task compute time plus
    scheduling noise: a worker beats before each task, so the timeout
    must exceed the slowest single task, not the whole batch. *)

val default_backoff_cap : float
(** [1.] second — the ceiling on reassignment backoff
    ([--backoff-cap]). *)

val backoff_delay : base:float -> cap:float -> attempt:int -> float
(** [min cap (base * 2^(attempt-1))], and [0.] for [attempt < 1] — the
    reassignment release delay after a worker's [attempt]-th
    consecutive condemnation. *)

val default_max_rejoin : int
(** [16] — remote reconnections accepted beyond the first
    [expect_remote]. *)

val default_accept_rate : float
(** [4.0] — token-bucket refill, accepted connections per second per
    peer address. *)

val default_accept_burst : int
(** [32] — token-bucket capacity per peer address.  Generous enough
    that a full fleet plus its entire bounded-rejoin budget connecting
    from one address never trips the limiter; a tight reconnect loop
    does. *)

val create :
  workers:int ->
  ?batching:batching ->
  ?heartbeat_timeout:float ->
  ?backoff_cap:float ->
  ?token:string ->
  ?listener:Transport.listener ->
  ?expect_remote:int ->
  ?max_rejoin:int ->
  ?accept_rate:float ->
  ?accept_burst:int ->
  ?join_grace:float ->
  ?stderr_dir:string ->
  ?log:(string -> unit) ->
  command:(id:int -> string array) ->
  context:Journal.context ->
  fallback:(int -> (Journal.entry, string) result) ->
  unit ->
  t
(** [create ~workers ~command ~context ~fallback ()] spawns [workers]
    local subprocesses, worker [id] with argv [command ~id] ([argv.(0)]
    is the executable), stdin/stdout piped to the supervisor and stderr
    either inherited or, with [stderr_dir], redirected to
    [<stderr_dir>/worker-<id>.log].  With [listener] (see
    {!Transport.listen}) the dispatch also accepts remote workers:
    [expect_remote] of them are waited for at the handshake barrier
    (for at most [join_grace] seconds, default [3 ×
    heartbeat_timeout], so a missing machine delays but never wedges a
    sweep), and up to [max_rejoin] further connections beyond
    [expect_remote] are accepted over the dispatch's lifetime —
    the bounded-rejoin budget.  Accepts are rate-limited per peer
    address by a token bucket of capacity [accept_burst] refilling at
    [accept_rate] tokens/second; an over-limit connection is closed
    before any byte is read and does not consume accept budget.  Every
    peer must announce with [auth] equal to [token] (default [""]) or
    it is condemned before any frame is sent to it.

    [batching] (default [Fixed default_batch]) selects the scheduling
    mode described above.

    [context] is sent to each authenticated worker as its config — the
    same {!Journal.context} the sweep's journal uses, so worker and
    supervisor provably execute the same grid.  Spawn failures are
    counted, not fatal; check {!live_workers} to fall back to the
    in-process pool when nothing spawned and nothing will connect.
    Ignores [SIGPIPE] process-wide (worker death must surface as
    [EPIPE], not kill the supervisor).  [log] receives one line per
    lifecycle event.  Raises [Invalid_argument] on [workers < 0], a
    [Fixed] batch < 1, [Auto] with [min_batch < 1] or [max_batch <
    min_batch], non-positive timeouts, backoff cap, or accept rate, an
    accept burst < 1, a negative remote expectation or rejoin budget,
    [expect_remote > 0] without a listener, or an unencodable token. *)

val run : t -> int array -> (Journal.entry, string) result array
(** [run t indices] executes the tasks at [indices] across the live
    workers and returns index-aligned results — the shape
    {!Sweep.map_journaled_via} expects of its [run].  Handshakes
    lazily, accepts and re-accepts remote peers throughout, survives
    any number of worker deaths (reassigning as described above), and
    degrades to [fallback] for whatever is left when the last worker
    dies and the rejoin grace passes.  Workers stay alive across
    calls; call once per chunk. *)

val shutdown : t -> unit
(** Send {!Worker.Shutdown} to every live worker; local workers get a
    bounded grace period to exit, then SIGKILL and a reap; remote
    connections are half-closed so the frame flushes ahead of the FIN,
    then closed.  Closes the listener.  Idempotent. *)

val live_workers : t -> int
(** Workers currently alive (spawned or connected, not yet condemned). *)

val stats : t -> stats
(** A snapshot of the lifecycle counters. *)

val worker_stats : t -> worker_stat list
(** Per-worker scheduling accounts, sorted by worker id.  Accounts
    persist across remote rejoins and across {!run} calls. *)
