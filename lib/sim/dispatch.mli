(** The supervisor of a fleet of {!Worker} processes.

    Dispatch spawns local workers from a caller-supplied argv and, when
    given a {!Transport.listener}, accepts remote workers over TCP
    alongside (or instead of) them; it handshakes every peer (announce
    {!Worker.Hello} in — wire version {e and} shared-secret token
    checked before anything is sent back — config out) and schedules
    task-index batches over the survivors.  The failure model is
    crash-stop with reassignment and, for remote peers, bounded rejoin:

    - every worker with an in-flight batch has a heartbeat deadline;
      workers beat before each task, so a worker silent for longer than
      the timeout — hung, wedged, quietly dead, or behind a network
      partition — is declared crashed;
    - EOF, a failed write ([EPIPE]), a wrong wire version, a wrong
      authentication token, or a single undecodable or unparseable
      frame likewise condemn the worker.  An authentication failure is
      detected on the announce hello, so the peer is condemned before
      any config or task frame reaches it;
    - a condemned local worker is SIGKILLed and reaped; a condemned
      remote worker has its connection closed.  Either way the not-yet-
      answered indices of its batch are requeued at the {e front} of
      the work queue with capped exponential backoff
      (≈ 50 ms · 2{^ attempt−1}, capped at [backoff_cap]);
    - local workers are never respawned, but a condemned remote worker
      may reconnect, re-handshake, and resume pulling tasks as a
      brand-new peer — the accept budget ([expect_remote + max_rejoin]
      connections total) bounds how often;
    - when no workers survive, the dispatch waits at most one grace
      window for a rejoin (none if there is no listener), then degrades:
      the remaining tasks run in-process through [fallback] — a
      dispatch never deadlocks on dead workers or a severed network.

    Determinism: task results are pure functions of their indices and
    the first result per index wins (a reassigned batch's duplicate
    results are byte-identical), so worker count, local/remote mix,
    chaos schedule, partitions, rejoins, and timing are invisible in
    what {!run} returns.  Feeding {!run} to {!Sweep.map_journaled_via}
    therefore yields byte-identical journals and JSONL at any
    [--workers]/[--listen] topology — the CI chaos gates pin this. *)

type t

type stats = {
  mutable spawned : int;  (** local workers successfully spawned *)
  mutable spawn_failures : int;  (** spawn attempts that failed outright *)
  mutable connected : int;  (** remote connections accepted (rejoins included) *)
  mutable auth_failures : int;  (** peers condemned for a wrong or missing token *)
  mutable died : int;  (** workers condemned (crash, hang, bad frame, EOF, auth) *)
  mutable reassigned : int;  (** batches requeued after a death *)
  mutable inline_tasks : int;  (** tasks executed in-process via [fallback] *)
}

val default_batch : int
(** [16] — task indices per {!Worker.Task_batch} frame. *)

val default_heartbeat_timeout : float
(** [10.] seconds.  The deadline bounds per-task compute time plus
    scheduling noise: a worker beats before each task, so the timeout
    must exceed the slowest single task, not the whole batch. *)

val default_backoff_cap : float
(** [1.] second — the ceiling on reassignment backoff
    ([--backoff-cap]). *)

val default_max_rejoin : int
(** [16] — remote reconnections accepted beyond the first
    [expect_remote]. *)

val create :
  workers:int ->
  ?batch:int ->
  ?heartbeat_timeout:float ->
  ?backoff_cap:float ->
  ?token:string ->
  ?listener:Transport.listener ->
  ?expect_remote:int ->
  ?max_rejoin:int ->
  ?join_grace:float ->
  ?stderr_dir:string ->
  ?log:(string -> unit) ->
  command:(id:int -> string array) ->
  context:Journal.context ->
  fallback:(int -> (Journal.entry, string) result) ->
  unit ->
  t
(** [create ~workers ~command ~context ~fallback ()] spawns [workers]
    local subprocesses, worker [id] with argv [command ~id] ([argv.(0)]
    is the executable), stdin/stdout piped to the supervisor and stderr
    either inherited or, with [stderr_dir], redirected to
    [<stderr_dir>/worker-<id>.log].  With [listener] (see
    {!Transport.listen}) the dispatch also accepts remote workers:
    [expect_remote] of them are waited for at the handshake barrier
    (for at most [join_grace] seconds, default [3 ×
    heartbeat_timeout], so a missing machine delays but never wedges a
    sweep), and up to [max_rejoin] further connections beyond
    [expect_remote] are accepted over the dispatch's lifetime —
    the bounded-rejoin budget.  Every peer must announce with [auth]
    equal to [token] (default [""]) or it is condemned before any
    frame is sent to it.

    [context] is sent to each authenticated worker as its config — the
    same {!Journal.context} the sweep's journal uses, so worker and
    supervisor provably execute the same grid.  Spawn failures are
    counted, not fatal; check {!live_workers} to fall back to the
    in-process pool when nothing spawned and nothing will connect.
    Ignores [SIGPIPE] process-wide (worker death must surface as
    [EPIPE], not kill the supervisor).  [log] receives one line per
    lifecycle event.  Raises [Invalid_argument] on [workers < 0],
    [batch < 1], non-positive timeouts or backoff cap, a negative
    remote expectation or rejoin budget, [expect_remote > 0] without a
    listener, or an unencodable token. *)

val run : t -> int array -> (Journal.entry, string) result array
(** [run t indices] executes the tasks at [indices] across the live
    workers and returns index-aligned results — the shape
    {!Sweep.map_journaled_via} expects of its [run].  Handshakes
    lazily, accepts and re-accepts remote peers throughout, survives
    any number of worker deaths (reassigning as described above), and
    degrades to [fallback] for whatever is left when the last worker
    dies and the rejoin grace passes.  Workers stay alive across
    calls; call once per chunk. *)

val shutdown : t -> unit
(** Send {!Worker.Shutdown} to every live worker; local workers get a
    bounded grace period to exit, then SIGKILL and a reap; remote
    connections are half-closed so the frame flushes ahead of the FIN,
    then closed.  Closes the listener.  Idempotent. *)

val live_workers : t -> int
(** Workers currently alive (spawned or connected, not yet condemned). *)

val stats : t -> stats
(** A snapshot of the lifecycle counters. *)
