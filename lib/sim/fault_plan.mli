(** Declarative, seeded fault plans — the specification half of the
    fault-injection subsystem.

    A plan is pure data: it names the faults an adversarial execution will
    inject, and the seed all injection randomness derives from.  The runner
    ({!Runner.run}'s [?faults]) interprets the message- and node-level
    faults; the advice-level faults are interpreted {e before} the run by
    [Fault.Corrupt], as a pure transform of the oracle's advice assignment.
    Identical plan + seed + scheduler yields a bit-identical event stream
    (the determinism tests in [test/test_obs.ml] assert this).

    Node indices in a plan refer to runner node indices.  Plans are
    graph-independent specs (the stress bench applies one plan across a
    whole grid of networks), so out-of-range node faults are ignored, as
    are node faults naming the source where the fault would make the task
    vacuous (a dead source cannot start a broadcast). *)

type advice_fault =
  | Flip of int  (** flip this many advice bits, at seeded positions *)
  | Truncate of int  (** drop this many final bits from every nonempty advice *)
  | Swap of int * int  (** exchange the advice strings of two nodes *)
  | Garbage of int  (** replace every node's advice with this many seeded random bits *)

type t = {
  seed : int;  (** all injection randomness derives from this *)
  drop : float;  (** iid per-message drop probability, in [0,1) *)
  duplicate : float;  (** iid probability a message is enqueued twice *)
  reorder_every : int;  (** 0 = off; every k-th push flushes the burst reversed *)
  delay : (float * int) option;  (** [(p, max)]: with prob. [p] hold a message back 1..max steps *)
  crashes : (int * int) list;  (** [(node, step)]: crash-stop at the given scheduler step *)
  dead : int list;  (** initially-dead nodes (non-source; never start, never receive) *)
  advice : advice_fault list;  (** applied in order by [Fault.Corrupt.apply] *)
}

val none : t
(** The empty plan: a faultless run. *)

val is_none : t -> bool
(** No faults of any kind (the seed is not compared). *)

val has_network_faults : t -> bool
(** Any message- or node-level fault present (i.e. the runner has work to
    do; advice faults alone leave the network untouched). *)

val to_string : t -> string
(** Canonical spec string, e.g. ["drop=0.1,crash=3@17,seed=7"]; parses back
    with {!of_string}.  The empty plan prints as ["none"]. *)

val name : t -> string
(** Alias of {!to_string} — used in test names and telemetry. *)

val of_string : string -> (t, string) result
(** Parse a comma-separated spec: [drop=P], [dup=P], [reorder=K],
    [delay=P:MAX], [crash=NODE@STEP], [dead=NODE], [advice-flip=K],
    [advice-trunc=K], [advice-swap=U:V], [advice-garbage=K], [seed=N].
    [crash], [dead] and advice faults may repeat; probabilities must lie in
    [0,1). *)

val of_string_exn : string -> t
(** Raises [Invalid_argument] where {!of_string} returns [Error]. *)

val builtins : (string * t) list
(** The named plans the robustness tests and the stress bench sweep:
    one plan per fault dimension plus a composite, keyed by their spec
    strings. *)
