type t = {
  scheduler : Scheduler.t;
  plan : Fault_plan.t;
}

let make ?(plan = Fault_plan.none) scheduler = { scheduler; plan }

let name { scheduler; plan } =
  if Fault_plan.is_none plan then Scheduler.name scheduler
  else Printf.sprintf "%s+%s" (Scheduler.name scheduler) (Fault_plan.name plan)

let run ?max_messages ?record_trace ?sinks ?loss ~advice adv g ~source factory =
  Runner.run ~scheduler:adv.scheduler ?max_messages ?record_trace ?sinks ?loss ~faults:adv.plan
    ~advice g ~source factory

let suite ?(schedulers = Scheduler.default_suite) plans =
  List.concat_map (fun plan -> List.map (fun s -> make ~plan s) schedulers) plans

let map_suite ?jobs ~f advs =
  Sweep.map ?jobs ~local:(fun () -> ()) ~f:(fun () _i a -> f a) (Array.of_list advs)
