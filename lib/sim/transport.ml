(* Byte transports for the distributed sweep protocol.

   The wire protocol (Worker/Dispatch) is deliberately fd-agnostic: a
   worker speaks CRC-framed messages over "some stream of bytes", and
   Rx reassembles frames from arbitrary read boundaries.  This module
   supplies the streams: plain fd pairs (the PR-7 pipe mode), TCP
   sockets (one supervisor listener, many remote workers), and a
   chaos shim that degrades a stream's delivery — stalls, byte-by-byte
   trickle — without touching its content, so network-fault schedules
   reproduce exactly while the bytes that eventually arrive are the
   bytes that were sent.

   Nothing here knows about frames.  Transport moves bytes; framing,
   authentication, and the crash-stop failure model live one layer up
   in Worker and Dispatch. *)

(* {1 Low-level helpers} *)

let rec write_all fd b pos len =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len

let rec read_some fd b =
  match Unix.read fd b 0 (Bytes.length b) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd b

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* {1 The io record} *)

type io = {
  read : Bytes.t -> int;
  write : string -> unit;
  close : unit -> unit;
}

let fd_io ~input ~output =
  let closed = ref false in
  {
    read = (fun b -> read_some input b);
    write = (fun s -> write_all output (Bytes.unsafe_of_string s) 0 (String.length s));
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_quiet input;
          if output <> input then close_quiet output
        end);
  }

let socket_io fd = fd_io ~input:fd ~output:fd

(* {1 Network chaos shim}

   The shim sits between the codec and the socket on the *worker* side
   and degrades writes only: a one-shot pre-write stall (a slow link
   that recovers), a sticky per-write stall (a persistently degraded
   machine — the deterministic straggler the adaptive scheduler is
   measured against), and a sticky byte-by-byte trickle (a
   pathological link that never batches).  Reads are left alone — the
   interesting
   reassembly happens at the supervisor, which must cope with whatever
   boundaries the trickled writes produce.  Content is never altered:
   a shimmed stream delivers exactly the bytes written to it, which is
   why every network-chaos schedule is byte-identity-preserving by
   construction. *)

module Shim = struct
  type state = { mutable delay_s : float; mutable slow_s : float; mutable trickle : bool }

  let create () = { delay_s = 0.; slow_s = 0.; trickle = false }
end

let shimmed (s : Shim.state) io =
  let write data =
    if s.delay_s > 0. then begin
      let d = s.delay_s in
      (* One-shot: a delay directive models a single stall, after which
         the link is merely slow-by-trickle or healthy again. *)
      s.delay_s <- 0.;
      Unix.sleepf d
    end;
    (* Sticky: a slow directive taxes every write from then on. *)
    if s.slow_s > 0. then Unix.sleepf s.slow_s;
    if s.trickle then String.iter (fun c -> io.write (String.make 1 c)) data
    else io.write data
  in
  { io with write }

(* {1 Supervisor side: the TCP listener} *)

type listener = { lfd : Unix.file_descr; port : int }

let listen ?(backlog = 16) ~port () =
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_any, port));
       Unix.listen fd backlog;
       (* Nonblocking so Dispatch can fold accepts into its select loop:
          a readable listener means "connections pending", and accept
          drains them until EAGAIN. *)
       Unix.set_nonblock fd
     with e ->
       close_quiet fd;
       raise e);
    let port =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    { lfd = fd; port }
  with
  | l -> Ok l
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot listen on port %d: %s" port (Unix.error_message e))

let listener_fd l = l.lfd
let bound_port l = l.port

let sockaddr_string = function
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

let accept l =
  match Unix.accept ~cloexec:true l.lfd with
  | fd, addr ->
    (* Accepted fds must be blocking regardless of what they inherited:
       Dispatch reads them only when select says readable. *)
    (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    Some (fd, sockaddr_string addr)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> None

let close_listener l = close_quiet l.lfd

(* {1 Worker side: connect} *)

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port_s with
    | Some p when p >= 1 && p <= 0xffff && host <> "" -> Ok (host, p)
    | Some p when host = "" -> ignore p; Error (Printf.sprintf "%S: empty host" s)
    | Some p -> Error (Printf.sprintf "%S: port %d outside 1..65535" s p)
    | None -> Error (Printf.sprintf "%S: port is not an integer" s))

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> Ok addrs.(0)
    | _ | (exception Not_found) -> Error (Printf.sprintf "cannot resolve host %S" host))

let connect ?(read_timeout = 60.) ~host ~port ~attempts ~retry_delay () =
  match resolve host with
  | Error e -> Error e
  | Ok addr ->
    let target = Unix.ADDR_INET (addr, port) in
    let rec go n last_err =
      if n <= 0 then
        Error
          (Printf.sprintf "cannot connect to %s:%d after %d attempts: %s" host port attempts
             last_err)
      else
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        match Unix.connect fd target with
        | () ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
          (* A read timeout is the worker's half of partition detection:
             a supervisor silent for this long — severed link, frozen
             host — fails the pending read with EAGAIN instead of
             wedging the worker forever. *)
          (try
             if read_timeout > 0. then Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout
           with Unix.Unix_error _ -> ());
          Ok fd
        | exception Unix.Unix_error (e, _, _) ->
          close_quiet fd;
          (match e with
          | Unix.ECONNREFUSED | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.ETIMEDOUT
          | Unix.ECONNRESET | Unix.EINTR | Unix.EAGAIN ->
            if n > 1 then Unix.sleepf retry_delay;
            go (n - 1) (Unix.error_message e)
          | e -> Error (Unix.error_message e))
    in
    go attempts "never attempted"
