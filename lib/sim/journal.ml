(* The append-only, crash-safe store of completed sweep points.

   A journal file is a superblock frame (file identity: spec + extra
   context strings) followed by one record frame per completed point,
   all framed by Bitstring.Frame and specified bit-for-bit in
   docs/JOURNAL_FORMAT.md.  Appends go through an OS-level flush before
   [append] returns, so a SIGKILL between appends loses nothing and a
   SIGKILL mid-append loses only the torn tail, which [open_] detects
   (frame CRC/length) and truncates.  Nothing in a journal depends on
   wall clock, job count or submission order, so the file bytes are as
   deterministic as the sweep rows themselves. *)

module Frame = Bitstring.Frame
module Bitbuf = Bitstring.Bitbuf

type verdict_class = Completed | Degraded | Stalled | Violated

let class_name = function
  | Completed -> "completed"
  | Degraded -> "degraded"
  | Stalled -> "stalled"
  | Violated -> "violated"

let class_code = function Completed -> 0 | Degraded -> 1 | Stalled -> 2 | Violated -> 3

let class_of_code = function
  | 0 -> Completed
  | 1 -> Degraded
  | 2 -> Stalled
  | _ -> Violated

type entry = {
  n : int;
  m : int;
  messages : int;
  rounds : int;
  advice_bits : int;
  raw_advice_bits : int;
  faults : int;
  fallbacks : int;
  tampered : int;
  retransmits : int;
  corrected_bits : int;
  informed : int;
  verdict_class : verdict_class;
  verdict : string;
}

type context = { spec : string; extra : string }

(* {1 Record payload codec}

   Field widths are normative in JOURNAL_FORMAT.md ("Record payload").
   The fixed part is 434 bits; the verdict text follows as 8-bit bytes.
   Changing any width is a format break: bump Frame.current_version and
   update the spec and the golden test together. *)

let w_count = 32 (* n, m, faults, fallbacks, tampered, retransmits, corrected, informed *)
let w_volume = 40 (* messages, rounds, advice_bits, raw_advice_bits *)
let w_class = 2
let w_verdict_len = 16
let fixed_payload_bits = (8 * w_count) + (4 * w_volume) + w_class + w_verdict_len

let encode_payload e =
  if String.length e.verdict > 0xffff then
    invalid_arg "Journal.encode: verdict string longer than 65535 bytes";
  let b = Bitbuf.create ~capacity:(fixed_payload_bits + (8 * String.length e.verdict)) () in
  let count v = Bitbuf.add_int b ~width:w_count v in
  let volume v = Bitbuf.add_int b ~width:w_volume v in
  count e.n;
  count e.m;
  volume e.messages;
  volume e.rounds;
  volume e.advice_bits;
  volume e.raw_advice_bits;
  count e.faults;
  count e.fallbacks;
  count e.tampered;
  count e.retransmits;
  count e.corrected_bits;
  count e.informed;
  Bitbuf.add_int b ~width:w_class (class_code e.verdict_class);
  Bitbuf.add_int b ~width:w_verdict_len (String.length e.verdict);
  String.iter (fun c -> Bitbuf.add_int b ~width:8 (Char.code c)) e.verdict;
  b

let decode_payload payload =
  if Bitbuf.length payload < fixed_payload_bits then
    Error
      (Printf.sprintf "record payload too short: %d bits < %d fixed bits"
         (Bitbuf.length payload) fixed_payload_bits)
  else begin
    let r = Bitbuf.reader payload in
    let count () = Bitbuf.read_int r ~width:w_count in
    let volume () = Bitbuf.read_int r ~width:w_volume in
    let n = count () in
    let m = count () in
    let messages = volume () in
    let rounds = volume () in
    let advice_bits = volume () in
    let raw_advice_bits = volume () in
    let faults = count () in
    let fallbacks = count () in
    let tampered = count () in
    let retransmits = count () in
    let corrected_bits = count () in
    let informed = count () in
    let verdict_class = class_of_code (Bitbuf.read_int r ~width:w_class) in
    let vlen = Bitbuf.read_int r ~width:w_verdict_len in
    if Bitbuf.remaining r <> 8 * vlen then
      Error
        (Printf.sprintf "record payload length mismatch: %d bits left for a %d-byte verdict"
           (Bitbuf.remaining r) vlen)
    else begin
      let verdict = String.init vlen (fun _ -> Char.chr (Bitbuf.read_int r ~width:8)) in
      Ok
        {
          n;
          m;
          messages;
          rounds;
          advice_bits;
          raw_advice_bits;
          faults;
          fallbacks;
          tampered;
          retransmits;
          corrected_bits;
          informed;
          verdict_class;
          verdict;
        }
    end
  end

let encode_entry ~key e =
  Frame.encode
    { Frame.kind = Frame.Record; version = Frame.current_version; key; payload = encode_payload e }

(* {1 Superblock codec}

   Payload: two length-prefixed byte strings — the grid spec and the
   caller's extra context (protection/retry for CLI sweeps).  The key
   field of a superblock is 0; identity lives in the payload. *)

let w_ctx_len = 16

let encode_context ctx =
  if String.length ctx.spec > 0xffff || String.length ctx.extra > 0xffff then
    invalid_arg "Journal.encode: context string longer than 65535 bytes";
  let b =
    Bitbuf.create
      ~capacity:(2 * w_ctx_len + (8 * (String.length ctx.spec + String.length ctx.extra)))
      ()
  in
  let str s =
    Bitbuf.add_int b ~width:w_ctx_len (String.length s);
    String.iter (fun c -> Bitbuf.add_int b ~width:8 (Char.code c)) s
  in
  str ctx.spec;
  str ctx.extra;
  b

let decode_context payload =
  let r = Bitbuf.reader payload in
  let str () =
    let len = Bitbuf.read_int r ~width:w_ctx_len in
    if Bitbuf.remaining r < 8 * len then failwith "short"
    else String.init len (fun _ -> Char.chr (Bitbuf.read_int r ~width:8))
  in
  match
    let spec = str () in
    let extra = str () in
    if Bitbuf.at_end r then Some { spec; extra } else None
  with
  | Some ctx -> Ok ctx
  | None -> Error "superblock payload has trailing bits"
  | exception _ -> Error "superblock payload too short"

let encode_superblock ctx =
  Frame.encode
    {
      Frame.kind = Frame.Superblock;
      version = Frame.current_version;
      key = 0;
      payload = encode_context ctx;
    }

(* The bare payload codecs, exposed for the worker wire protocol: a
   Result frame carries exactly a record payload, and the supervisor's
   config Hello frame carries exactly a superblock payload. *)
let entry_payload = encode_payload

let context_payload = encode_context

(* {1 The store} *)

type stats = { replayed : int; torn_bytes : int; duplicates : int }

type t = {
  path : string;
  ctx : context;
  index : (int, entry) Hashtbl.t;
  mutable order : int list; (* file order of first occurrences, reversed *)
  mutable oc : out_channel option; (* None once closed *)
  mutable appended : int;
}

let context t = t.ctx

let path t = t.path

let count t = Hashtbl.length t.index

let appended t = t.appended

let mem t key = Hashtbl.mem t.index key

let find t key = Hashtbl.find_opt t.index key

let iter t f = List.iter (fun key -> f key (Hashtbl.find t.index key)) (List.rev t.order)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Scan the file: superblock, then records.  Returns the recovered
   state and the byte length of the valid prefix; everything after the
   first undecodable frame is torn tail (or bit rot — the recovery rule
   is the same: keep the valid prefix, drop the rest). *)
let scan data =
  match Frame.decode data ~pos:0 with
  | Error e -> Error (Printf.sprintf "superblock: %s" (Frame.error_to_string e))
  | Ok ({ Frame.kind = Record; _ }, _) -> Error "superblock: first frame is a record frame"
  | Ok ({ Frame.kind = Hello | Task | Result | Heartbeat | Shutdown; _ }, _) ->
      (* Wire-only kinds are never valid in a journal file. *)
      Error "superblock: first frame is a wire frame, not a superblock"
  | Ok ({ Frame.kind = Superblock; payload; _ }, first) -> (
      match decode_context payload with
      | Error e -> Error (Printf.sprintf "superblock: %s" e)
      | Ok ctx ->
          let index = Hashtbl.create 256 in
          let order = ref [] in
          let duplicates = ref 0 in
          let rec loop pos =
            if pos >= String.length data then pos
            else
              match Frame.decode data ~pos with
              | Error _ -> pos (* torn tail: valid prefix ends here *)
              | Ok ({ Frame.kind = Superblock | Hello | Task | Result | Heartbeat | Shutdown; _ }, _)
                ->
                  pos (* corruption: only record frames may follow the superblock *)
              | Ok ({ Frame.kind = Record; key; payload; _ }, next) -> (
                  match decode_payload payload with
                  | Error _ -> pos
                  | Ok entry ->
                      if Hashtbl.mem index key then incr duplicates
                      else begin
                        Hashtbl.add index key entry;
                        order := key :: !order
                      end;
                      loop next)
          in
          let good = loop first in
          Ok (ctx, index, !order, !duplicates, good))

let open_out_append path = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path

let fresh ~path ctx =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
  output_string oc (encode_superblock ctx);
  flush oc;
  ( {
      path;
      ctx;
      index = Hashtbl.create 256;
      order = [];
      oc = Some oc;
      appended = 0;
    },
    { replayed = 0; torn_bytes = 0; duplicates = 0 } )

let open_ ?expect ~path () =
  let exists = Sys.file_exists path in
  let size = if exists then (Unix.stat path).Unix.st_size else 0 in
  if (not exists) || size = 0 then
    match expect with
    | Some ctx -> Ok (fresh ~path ctx)
    | None -> Error (Printf.sprintf "journal %s does not exist" path)
  else
    let data = read_file path in
    match scan data with
    | Error e -> (
        (* The superblock is unreadable, so nothing in the file can be
           trusted or attributed.  With an expected context this is the
           crash-during-creation window: reinitialize.  Without one
           (ls/verify/compact) report the corruption instead. *)
        match expect with
        | Some ctx -> Ok (fresh ~path ctx)
        | None -> Error (Printf.sprintf "journal %s: %s" path e))
    | Ok (ctx, index, order, duplicates, good) -> (
        match expect with
        | Some want when want <> ctx ->
            Error
              (Printf.sprintf
                 "journal %s was written for a different run: it records spec %S (context %S), \
                  this run is spec %S (context %S)"
                 path ctx.spec ctx.extra want.spec want.extra)
        | _ ->
            let torn = String.length data - good in
            if torn > 0 then Unix.truncate path good;
            let oc = open_out_append path in
            Ok
              ( { path; ctx; index; order; oc = Some oc; appended = 0 },
                { replayed = Hashtbl.length index; torn_bytes = torn; duplicates } ))

let append t ~key entry =
  if key < 0 then invalid_arg "Journal.append: negative key";
  if Hashtbl.mem t.index key then
    invalid_arg (Printf.sprintf "Journal.append: key %d already journaled" key);
  match t.oc with
  | None -> invalid_arg "Journal.append: journal is closed"
  | Some oc ->
      output_string oc (encode_entry ~key entry);
      (* Flush to the OS before reporting success: after this returns
         the record survives SIGKILL (durability against power loss
         would need fsync — see DESIGN.md section 'Persistence model'). *)
      flush oc;
      Hashtbl.add t.index key entry;
      t.order <- key :: t.order;
      t.appended <- t.appended + 1

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      t.oc <- None;
      close_out oc

(* {1 Compaction}

   Rewrites the journal as superblock + the first occurrence of every
   key in file order, dropping duplicate frames and any torn tail, then
   atomically renames over the original.  Because the encoding is
   canonical, a journal with no duplicates and no tail compacts to
   byte-identical contents.

   Durability of the rename: the tmp file is fsynced before the rename
   (so the new contents are on disk before the directory entry can
   point at them), and the containing directory is fsynced after it —
   without the directory fsync, a crash right after compact could
   replay the rename away and resurrect the pre-compaction journal
   (docs/JOURNAL_FORMAT.md, 'Durability contract'). *)

let fsync_dir_of path =
  (* Directory fsync is advisory on filesystems that reject it (EINVAL
     on some); failing to harden the rename must not fail the compact. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let compact ~path () =
  match open_ ~path () with
  | Error e -> Error e
  | Ok (t, stats) ->
      close t;
      let tmp = path ^ ".compact.tmp" in
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
      (try
         output_string oc (encode_superblock t.ctx);
         iter t (fun key entry -> output_string oc (encode_entry ~key entry));
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc);
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path;
      fsync_dir_of path;
      Ok (count t, stats)
