(** An adversarial scheduler: any {!Scheduler.t} composed with a
    {!Fault_plan.t}.

    The pair is what the robustness experiments sweep — the scheduler
    chooses delivery order, the plan chooses which messages and nodes the
    adversary attacks — and {!run} is {!Runner.run} with both threaded
    through, so every injected fault lands in the same telemetry stream
    as the deliveries it perturbs. *)

type t = {
  scheduler : Scheduler.t;  (** delivery order *)
  plan : Fault_plan.t;  (** injected faults (may be {!Fault_plan.none}) *)
}

val make : ?plan:Fault_plan.t -> Scheduler.t -> t
(** [plan] defaults to {!Fault_plan.none}, i.e. the plain scheduler. *)

val name : t -> string
(** ["<scheduler>+<plan>"], or just the scheduler's name under the empty
    plan — used in test names and the stress bench's output. *)

val run :
  ?max_messages:int ->
  ?record_trace:bool ->
  ?sinks:Obs.Sink.t list ->
  ?loss:float * int ->
  advice:(int -> Bitstring.Bitbuf.t) ->
  t ->
  Netgraph.Graph.t ->
  source:int ->
  Scheme.factory ->
  Runner.result
(** {!Runner.run} under this adversary: the wrapped scheduler orders
    deliveries and the plan's message/node faults are injected, each
    recorded as an {!Obs.Event.Fault} event.  Advice-level faults are
    data the runner ignores; corrupt the advice before calling (see
    [Fault.Corrupt]). *)

val suite : ?schedulers:Scheduler.t list -> Fault_plan.t list -> t list
(** Cross product, plans major: every plan under every scheduler
    (default {!Scheduler.default_suite}) — the grid the stress bench and
    the robustness tests iterate. *)

val map_suite : ?jobs:int -> f:(t -> 'a) -> t list -> ('a, string) result array
(** Run [f] over every adversary in parallel on a {!Pool} of [jobs]
    workers (default {!Pool.default_jobs}), returning results in input
    order — the parallel form of iterating a {!suite}.  [f] must follow
    the {!Sweep} determinism rules: seeds from the adversary itself, no
    shared mutable state, no order dependence.  A raising call yields
    [Error] in its own slot. *)
