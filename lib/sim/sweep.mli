(** Declarative experiment grids with deterministic parallel execution.

    A sweep is the cross product of (protocol × fault plan × family × n ×
    scheduler × repetition), flattened into a canonically-ordered array of
    {!point}s and executed over a {!Pool}.  Three rules make the output
    independent of the job count:

    - every random stream a task uses is derived from the point's {e grid
      coordinates} via {!derive_seed} — never from submission order,
      worker identity, or wall clock;
    - each task writes only its own pre-sized result slot (enforced by
      {!Pool.map});
    - serialization (JSONL/CSV) is a single ordered pass over the result
      array {e after} the join, owned by the submitting domain.

    Per-worker caches ({!Cache}) amortize setup: repeated points that
    share a {!graph_seed} rebuild neither the graph nor (keyed further by
    scheme) its advice.  Caching is sound precisely because seeds come
    from coordinates: a cache hit returns a value structurally equal to
    what a fresh build would produce. *)

(** {1 Grid points} *)

type point = {
  index : int;  (** position in canonical order *)
  protocol : string;  (** caller-interpreted scheme name, e.g. ["wakeup"] *)
  family : Netgraph.Families.t;
  n : int;
  scheduler : Scheduler.t;
  plan : Fault_plan.t;
  rep : int;  (** repetition counter, [0 .. reps-1] *)
  seed : int;  (** derived from all coordinates; unique per point *)
}

type grid = {
  protocols : string list;
  families : Netgraph.Families.t list;
  ns : int list;
  schedulers : Scheduler.t list;
  plans : Fault_plan.t list;
  reps : int;
  base_seed : int;
}

val points : grid -> point array
(** The cross product in canonical order: protocols (outermost), then
    plans, families, sizes, schedulers, repetitions (innermost).  The
    order is part of the output contract — emission replays it. *)

val derive_seed : int -> string list -> int
(** [derive_seed base tokens] hashes [base] and the token list with a
    fixed FNV-1a-style mix into a non-negative int.  Stable across runs,
    platforms, and job counts; collisions are harmless (seeds only need
    to be deterministic, not unique). *)

val graph_seed : grid -> point -> int
(** Seed for building the point's graph: derived from (base seed, family,
    n, rep) {e only}, so points differing in protocol, scheduler, or plan
    share a graph — which is what lets the per-worker graph and advice
    caches hit across those axes. *)

val point_label : point -> string
(** ["protocol/family/n/scheduler/plan/rep"] — stable row id for logs. *)

(** {1 Grid spec strings} *)

val of_string : string -> (grid, string) result
(** Parse a spec such as
    ["protocols=wakeup,broadcast;families=sparse-random;ns=24,64;scheds=sync,async-fifo;plans=none|drop=0.1,seed=7;reps=2;seed=42"].
    Axes are separated by [;], values by [,] — except plans, whose specs
    contain commas, so plan alternatives are separated by [|].  Omitted
    axes default to: protocols [wakeup,broadcast], families
    [sparse-random], ns [64], scheds [async-fifo], plans [none], reps 1,
    seed 42. *)

val to_string : grid -> string
(** Canonical spec; round-trips through {!of_string}. *)

(** {1 Per-worker caches} *)

module Cache : sig
  type ('k, 'v) t
  (** A plain hash-table cache with hit/miss counters.  Not synchronized:
      one cache belongs to one worker (create it in {!Pool.map_local}'s
      [local] thunk). *)

  val create : unit -> ('k, 'v) t

  val find : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  (** [find c k build] returns the cached value for [k], building and
      remembering it on first use. *)

  val hits : ('k, 'v) t -> int

  val misses : ('k, 'v) t -> int
end

(** {1 Execution} *)

val map :
  ?jobs:int -> local:(unit -> 'w) -> f:('w -> int -> 't -> 'a) -> 't array -> ('a, string) result array
(** [map ~local ~f tasks] runs [f worker_state index task] for each task
    across a fresh pool of [jobs] workers (default {!Pool.default_jobs})
    and returns results in task order.  A raising task yields [Error]
    ([Printexc.to_string]) in its slot; the rest complete. *)

val run :
  ?jobs:int -> local:(unit -> 'w) -> f:('w -> point -> 'a) -> grid -> ('a, string) result array
(** {!map} over {!points}: results are index-aligned with the canonical
    point order, ready for a single ordered emission pass. *)
