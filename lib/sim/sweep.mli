(** Declarative experiment grids with deterministic parallel execution.

    A sweep is the cross product of (protocol × fault plan × family × n ×
    scheduler × repetition), flattened into a canonically-ordered array of
    {!point}s and executed over a {!Pool}.  Three rules make the output
    independent of the job count:

    - every random stream a task uses is derived from the point's {e grid
      coordinates} via {!derive_seed} — never from submission order,
      worker identity, or wall clock;
    - each task writes only its own pre-sized result slot (enforced by
      {!Pool.map});
    - serialization (JSONL/CSV) is a single ordered pass over the result
      array {e after} the join, owned by the submitting domain.

    Per-worker caches ({!Cache}) amortize setup: repeated points that
    share a {!graph_seed} rebuild neither the graph nor (keyed further by
    scheme) its advice.  Caching is sound precisely because seeds come
    from coordinates: a cache hit returns a value structurally equal to
    what a fresh build would produce. *)

(** {1 Grid points} *)

type point = {
  index : int;  (** position in canonical order *)
  protocol : string;  (** caller-interpreted scheme name, e.g. ["wakeup"] *)
  family : Netgraph.Families.t;
  n : int;
  scheduler : Scheduler.t;
  plan : Fault_plan.t;
  rep : int;  (** repetition counter, [0 .. reps-1] *)
  seed : int;  (** derived from all coordinates; unique per point *)
}

type grid = {
  protocols : string list;
  families : Netgraph.Families.t list;
  ns : int list;
  schedulers : Scheduler.t list;
  plans : Fault_plan.t list;
  reps : int;
  base_seed : int;
}

val points : grid -> point array
(** The cross product in canonical order: protocols (outermost), then
    plans, families, sizes, schedulers, repetitions (innermost).  The
    order is part of the output contract — emission replays it. *)

val derive_seed : int -> string list -> int
(** [derive_seed base tokens] hashes [base] and the token list with a
    fixed FNV-1a-style mix into a non-negative int.  Stable across runs,
    platforms, and job counts; collisions are harmless (seeds only need
    to be deterministic, not unique). *)

val graph_seed : grid -> point -> int
(** Seed for building the point's graph: derived from (base seed, family,
    n, rep) {e only}, so points differing in protocol, scheduler, or plan
    share a graph — which is what lets the per-worker graph and advice
    caches hit across those axes. *)

val point_label : point -> string
(** ["protocol/family/n/scheduler/plan/rep"] — stable row id for logs. *)

(** {1 Grid spec strings} *)

val of_string : string -> (grid, string) result
(** Parse a spec such as
    ["protocols=wakeup,broadcast;families=sparse-random;ns=24,64;scheds=sync,async-fifo;plans=none|drop=0.1,seed=7;reps=2;seed=42"].
    Axes are separated by [;], values by [,] — except plans, whose specs
    contain commas, so plan alternatives are separated by [|].  Omitted
    axes default to: protocols [wakeup,broadcast], families
    [sparse-random], ns [64], scheds [async-fifo], plans [none], reps 1,
    seed 42. *)

val to_string : grid -> string
(** Canonical spec; round-trips through {!of_string}. *)

(** {1 Per-worker caches} *)

module Cache : sig
  type ('k, 'v) t
  (** A plain hash-table cache with hit/miss counters.  Not synchronized:
      one cache belongs to one worker (create it in {!Pool.map_local}'s
      [local] thunk). *)

  val create : unit -> ('k, 'v) t

  val find : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  (** [find c k build] returns the cached value for [k], building and
      remembering it on first use. *)

  val hits : ('k, 'v) t -> int

  val misses : ('k, 'v) t -> int
end

(** {1 Execution} *)

val map :
  ?jobs:int -> local:(unit -> 'w) -> f:('w -> int -> 't -> 'a) -> 't array -> ('a, string) result array
(** [map ~local ~f tasks] runs [f worker_state index task] for each task
    across a fresh pool of [jobs] workers (default {!Pool.default_jobs})
    and returns results in task order.  A raising task yields [Error] in
    its slot — the exception text plus the raise-site backtrace when the
    runtime recorded one; the rest complete. *)

val run :
  ?jobs:int -> local:(unit -> 'w) -> f:('w -> point -> 'a) -> grid -> ('a, string) result array
(** {!map} over {!points}: results are index-aligned with the canonical
    point order, ready for a single ordered emission pass. *)

(** {1 Journaled execution}

    The crash-safe variant of {!map}/{!run}, layered over {!Journal}.
    Execution proceeds in fixed-size chunks of the canonical task order:
    each chunk runs over the pool, joins, and is appended to the journal
    in task order from the submitting domain — so the journal gains
    durability incrementally while its bytes stay deterministic at every
    job count.  Tasks whose key the journal already holds are never
    re-executed; their entries come from the replay index.  Emission is
    still one ordered pass at the end, over replayed and fresh entries
    alike, which is why a killed-and-resumed sweep produces output
    byte-identical to an uninterrupted one (the E24 experiment and the
    CI kill-resume gate pin this). *)

type journal_stats = {
  total : int;  (** tasks in the sweep *)
  executed : int;  (** tasks actually run (and journaled) this time *)
  skipped : int;  (** tasks satisfied from the journal's replay index *)
  failed : (int * string) list;
      (** tasks that raised, by index — not journaled, not emitted *)
  recovery : Journal.stats option;
      (** what {!Journal.open_} found on disk; [None] when unjournaled *)
}

val default_chunk : int
(** [64] — the append granularity (tasks per chunk), deliberately
    independent of the job count. *)

val map_journaled_via :
  ?journal:string * Journal.context ->
  ?chunk:int ->
  ?on_append:(int -> unit) ->
  key:('t -> int) ->
  run:(int array -> (Journal.entry, string) result array) ->
  emit:(int -> 't -> Journal.entry -> unit) ->
  't array ->
  (journal_stats, string) result
(** The executor-agnostic core behind {!map_journaled}.  [run idx] must
    evaluate the tasks at indices [idx] — a slice of the canonical
    to-do order, at most [chunk] long — and return an index-aligned
    array of entries or failure strings; how it does so (domain pool,
    subprocess workers via {!Dispatch}, inline) is its business, as long
    as each entry is a pure function of its task.  Everything that makes
    the journal and the emitted rows deterministic lives here: key
    validation, replay-index skipping, chunked canonical-order appends
    from the calling domain, and the single ordered emission pass.
    Raises [Invalid_argument] when [run] returns an array of the wrong
    length. *)

val map_journaled :
  ?jobs:int ->
  ?journal:string * Journal.context ->
  ?chunk:int ->
  ?on_append:(int -> unit) ->
  key:('t -> int) ->
  local:(unit -> 'w) ->
  f:('w -> int -> 't -> Journal.entry) ->
  emit:(int -> 't -> Journal.entry -> unit) ->
  't array ->
  (journal_stats, string) result
(** [map_journaled ~key ~local ~f ~emit tasks] is {!map} with journal
    persistence.  [key] must map each task to a distinct non-negative
    int that is stable across runs ({!derive_seed} over the task's
    coordinate tokens); duplicate or negative keys raise
    [Invalid_argument] before anything executes.  With [?journal:(path,
    ctx)] the journal at [path] is opened (created fresh, or replayed
    and torn-tail-truncated — see {!Journal.open_}; a context mismatch
    is an [Error] and nothing runs).  After the run, [emit index task
    entry] is called in task order for every completed task.
    [on_append] (testing hook) fires after each record is durable, with
    the cumulative count of records appended by this process — the
    [--crash-after] CLI flag uses it to die deterministically.  Raises
    [Invalid_argument] if [chunk < 1]. *)

val run_journaled :
  ?jobs:int ->
  ?journal:string ->
  ?context:string ->
  ?chunk:int ->
  ?on_append:(int -> unit) ->
  local:(unit -> 'w) ->
  f:('w -> point -> Journal.entry) ->
  emit:(point -> Journal.entry -> unit) ->
  grid ->
  (journal_stats, string) result
(** {!map_journaled} over {!points}, keyed by each point's coordinate
    seed.  The journal context is [{ spec = to_string grid; extra =
    context }] ([context] defaults to [""]); resuming the same path with
    a different grid or extra string is refused. *)
