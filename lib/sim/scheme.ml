type send = Message.t * int

type node = {
  on_start : unit -> send list;
  on_receive : Message.t -> port:int -> send list;
}

type factory = History.static -> node

let of_pure f static =
  let history = ref (History.initial static) in
  {
    on_start = (fun () -> f !history);
    on_receive =
      (fun msg ~port ->
        history := History.receive !history msg ~port;
        f !history);
  }

let silent _static =
  { on_start = (fun () -> []); on_receive = (fun _ ~port:_ -> []) }

let check_wakeup factory static =
  let node = factory static in
  let on_start () =
    let sends = node.on_start () in
    if sends <> [] && not static.History.is_source then
      failwith
        (Printf.sprintf "wakeup violation: non-source node %d transmits spontaneously"
           static.History.id);
    sends
  in
  { node with on_start }

let flooding static =
  let informed = ref false in
  let all_ports = List.init static.History.degree (fun p -> p) in
  let on_start () =
    if static.History.is_source then begin
      informed := true;
      List.map (fun p -> (Message.Source, p)) all_ports
    end
    else []
  in
  let on_receive msg ~port =
    match msg with
    | Message.Source when not !informed ->
      informed := true;
      List.filter_map
        (fun p -> if p = port then None else Some (Message.Source, p))
        all_ports
    | Message.Source | Message.Hello | Message.Control _ -> []
  in
  { on_start; on_receive }
