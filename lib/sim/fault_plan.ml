type advice_fault =
  | Flip of int
  | Truncate of int
  | Swap of int * int
  | Garbage of int

type t = {
  seed : int;
  drop : float;
  duplicate : float;
  reorder_every : int;
  delay : (float * int) option;
  crashes : (int * int) list;
  dead : int list;
  advice : advice_fault list;
}

let none =
  {
    seed = 0;
    drop = 0.0;
    duplicate = 0.0;
    reorder_every = 0;
    delay = None;
    crashes = [];
    dead = [];
    advice = [];
  }

let is_none t = { t with seed = 0 } = none

let has_network_faults t =
  t.drop > 0.0 || t.duplicate > 0.0 || t.reorder_every > 0 || t.delay <> None
  || t.crashes <> [] || t.dead <> []

let advice_fault_to_string = function
  | Flip k -> Printf.sprintf "advice-flip=%d" k
  | Truncate k -> Printf.sprintf "advice-trunc=%d" k
  | Swap (u, v) -> Printf.sprintf "advice-swap=%d:%d" u v
  | Garbage k -> Printf.sprintf "advice-garbage=%d" k

let to_string t =
  if is_none t && t.seed = 0 then "none"
  else begin
    let parts = ref [] in
    let add s = parts := s :: !parts in
    if t.drop > 0.0 then add (Printf.sprintf "drop=%g" t.drop);
    if t.duplicate > 0.0 then add (Printf.sprintf "dup=%g" t.duplicate);
    if t.reorder_every > 0 then add (Printf.sprintf "reorder=%d" t.reorder_every);
    (match t.delay with
    | Some (p, k) -> add (Printf.sprintf "delay=%g:%d" p k)
    | None -> ());
    List.iter (fun (v, s) -> add (Printf.sprintf "crash=%d@%d" v s)) t.crashes;
    List.iter (fun v -> add (Printf.sprintf "dead=%d" v)) t.dead;
    List.iter (fun f -> add (advice_fault_to_string f)) t.advice;
    if t.seed <> 0 then add (Printf.sprintf "seed=%d" t.seed);
    match !parts with [] -> "none" | parts -> String.concat "," (List.rev parts)
  end

let name = to_string

(* "drop=0.1,advice-flip=4,crash=3@17,seed=7" — comma-separated k=v tokens. *)
let of_string s =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let float_field tok v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f < 1.0 -> Ok f
    | Some _ -> fail "%s: probability must be in [0,1)" tok
    | None -> fail "%s: not a float" tok
  in
  let int_field tok v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | Some _ -> fail "%s: must be non-negative" tok
    | None -> fail "%s: not an integer" tok
  in
  let pair tok sep v =
    match String.split_on_char sep v with
    | [ a; b ] ->
      let* a = int_field tok a in
      let* b = int_field tok b in
      Ok (a, b)
    | _ -> fail "%s: expected two %C-separated integers" tok sep
  in
  let token plan tok =
    match String.index_opt tok '=' with
    | None -> (
      match tok with
      | "" | "none" -> Ok plan
      | _ -> fail "%S: expected KEY=VALUE" tok)
    | Some i -> (
      let key = String.sub tok 0 i in
      let v = String.sub tok (i + 1) (String.length tok - i - 1) in
      match key with
      | "seed" ->
        let* seed = int_field tok v in
        Ok { plan with seed }
      | "drop" ->
        let* drop = float_field tok v in
        Ok { plan with drop }
      | "dup" | "duplicate" ->
        let* duplicate = float_field tok v in
        Ok { plan with duplicate }
      | "reorder" ->
        let* reorder_every = int_field tok v in
        Ok { plan with reorder_every }
      | "delay" -> (
        match String.split_on_char ':' v with
        | [ p; k ] ->
          let* p = float_field tok p in
          let* k = int_field tok k in
          if k < 1 then fail "%s: max delay must be >= 1" tok
          else Ok { plan with delay = Some (p, k) }
        | _ -> fail "%s: expected PROB:MAXSTEPS" tok)
      | "crash" ->
        let* vs = pair tok '@' v in
        Ok { plan with crashes = plan.crashes @ [ vs ] }
      | "dead" ->
        let* d = int_field tok v in
        Ok { plan with dead = plan.dead @ [ d ] }
      | "advice-flip" ->
        let* k = int_field tok v in
        Ok { plan with advice = plan.advice @ [ Flip k ] }
      | "advice-trunc" ->
        let* k = int_field tok v in
        Ok { plan with advice = plan.advice @ [ Truncate k ] }
      | "advice-swap" ->
        let* uv = pair tok ':' v in
        Ok { plan with advice = plan.advice @ [ Swap (fst uv, snd uv) ] }
      | "advice-garbage" ->
        let* k = int_field tok v in
        Ok { plan with advice = plan.advice @ [ Garbage k ] }
      | _ -> fail "%S: unknown fault key" tok)
  in
  List.fold_left
    (fun acc tok -> Result.bind acc (fun plan -> token plan (String.trim tok)))
    (Ok none)
    (String.split_on_char ',' s)

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error m -> invalid_arg (Printf.sprintf "Fault_plan.of_string: %s" m)

let builtins =
  let p s = (s, of_string_exn s) in
  [
    ("none", none);
    p "drop=0.1,seed=7";
    p "dup=0.15,seed=11";
    p "reorder=4";
    p "delay=0.3:5,seed=13";
    p "crash=1@3";
    p "dead=1";
    p "advice-flip=8,seed=5";
    p "advice-trunc=1";
    p "advice-swap=1:2";
    p "advice-garbage=16,seed=3";
    p "drop=0.05,dup=0.05,delay=0.2:3,advice-flip=4,seed=23";
  ]
