type t = Synchronous | Async_fifo | Async_lifo | Async_random of int

let name = function
  | Synchronous -> "sync"
  | Async_fifo -> "async-fifo"
  | Async_lifo -> "async-lifo"
  | Async_random seed -> Printf.sprintf "async-random(%d)" seed

let default_suite = [ Synchronous; Async_fifo; Async_lifo; Async_random 42; Async_random 7 ]

let of_name s =
  match s with
  | "sync" -> Some Synchronous
  | "async-fifo" -> Some Async_fifo
  | "async-lifo" -> Some Async_lifo
  | _ ->
    let n = String.length s in
    let prefix = "async-random(" in
    let p = String.length prefix in
    if n > p + 1 && String.sub s 0 p = prefix && s.[n - 1] = ')' then
      match int_of_string_opt (String.sub s p (n - p - 1)) with
      | Some seed -> Some (Async_random seed)
      | None -> None
    else None
