type t = Synchronous | Async_fifo | Async_lifo | Async_random of int

let name = function
  | Synchronous -> "sync"
  | Async_fifo -> "async-fifo"
  | Async_lifo -> "async-lifo"
  | Async_random seed -> Printf.sprintf "async-random(%d)" seed

let default_suite = [ Synchronous; Async_fifo; Async_lifo; Async_random 42; Async_random 7 ]
