(** Fixed-size domain pool for deterministic fan-out.

    A pool owns [jobs - 1] worker domains (the submitting domain doubles
    as worker 0) and executes batches of indexed tasks over them.  The
    design premise — shared with {!Sweep} — is that parallelism must be
    invisible in the output: tasks are identified by their index, every
    task writes only its own pre-sized result slot, and nothing a task
    computes may depend on which worker ran it or in what order.  Under
    that discipline [map] at [jobs = 8] is bit-identical to [jobs = 1].

    Hand-rolled over [Domain] / [Mutex] / [Condition] from the stdlib; no
    external dependencies. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains that sleep until a
    batch is submitted.  [jobs] is clamped to at least 1; [jobs = 1]
    creates no domains and all maps run inline. *)

val jobs : t -> int
(** The worker count the pool was created with (after clamping). *)

val map : t -> (int -> 'a) -> int -> ('a, exn * Printexc.raw_backtrace) result array
(** [map pool f total] evaluates [f i] for every [i] in [0 .. total - 1]
    across the pool's workers and returns the results in index order.  A
    task that raises has its exception captured in its own slot together
    with the backtrace from the raise site (captured on the worker
    domain, so re-raising with [Printexc.raise_with_backtrace] on the
    submitting domain points at the task, not the join); the remaining
    tasks still run.  Tasks must not depend on execution order.  Raises
    [Invalid_argument] when called from inside a running task (nested
    batches would deadlock a fixed-size pool), or after {!shutdown}. *)

val map_local :
  t ->
  local:(unit -> 'w) ->
  ('w -> int -> 'a) ->
  int ->
  ('a, exn * Printexc.raw_backtrace) result array
(** [map_local pool ~local f total] is {!map} with per-worker mutable
    state: each worker slot lazily creates one ['w] value with [local ()]
    on its first task and passes it to every subsequent task it runs.
    This is the cache hook — the local value persists across batches for
    the lifetime of the pool, and is only ever touched by its own worker,
    so it needs no locking.  Determinism caveat: [f] must produce the
    same result whether or not the local state is warm (caches yes,
    accumulators no). *)

val shutdown : t -> unit
(** Joins all worker domains.  Idempotent.  Subsequent maps raise. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)

val default_jobs : unit -> int
(** The [ORACLE_SIZE_JOBS] environment variable (clamped to ≥ 1) when
    set and numeric; otherwise [Domain.recommended_domain_count ()]. *)
