(** Domain-sharded execution of a single run.

    [run] has the contract of {!Runner.run} plus a [?shards] knob: with
    [shards > 1] and the {!Scheduler.Synchronous} scheduler, the node
    array is partitioned into [shards] contiguous blocks and each round
    of one run executes as two barrier-separated phases (deliver, then
    emit) across that many OCaml domains.  The output — trace, stats,
    verdict inputs, every sink event and its order — is bit-identical
    to the sequential runner at any shard count; the shard-determinism
    grid test asserts byte equality of JSONL traces across
    [shards ∈ {1, 2, 7}], fault plans included.

    How much runs in parallel depends on what the caller asked to
    observe (DESIGN.md §14 spells out the model):

    - {b fast} (no sinks, no trace, no faults, no loss): both phases of
      every large round are fully parallel.  Deliveries commute because
      a node's scheme state is owner-exclusive and counters are
      per-domain {!Obs.Counting} states merged with [absorb]; sequence
      numbers are assigned by an exclusive prefix sum over the batch, so
      they match the sequential engine's exactly.
    - {b traced} (sinks or trace, still fault-free): scheme calls run on
      the owners; the coordinator then replays the batch in slot order
      to emit events and build the trace — a global order cannot be
      produced anywhere else.
    - {b faulted} (a plan or [?loss]): scheme calls still run on the
      owners, but every RNG draw, timer-wheel operation and reorder
      stage mutation happens on the coordinator in the sequential
      engine's order.

    Rounds smaller than [?min_parallel_batch] (default 256) are
    processed inline on the coordinator — same arithmetic, no barrier
    traffic — so tiny runs never pay for domains; worker domains are
    spawned lazily on the first large phase and joined before [run]
    returns.  [shards = 1], and any asynchronous scheduler (whose
    delivery order is a single global sequence with no round boundary to
    cut), delegate to {!Runner.run} unchanged.  [shards] is clamped to
    64; [invalid_arg] if it is not positive.

    Concurrency requirements on the caller: with no sinks attached,
    [advice] and [factory] are called in parallel from several domains
    (at most once per node) and must be safe to call concurrently — the
    built-in schemes only read shared immutable advice, which is safe.
    With sinks attached, instantiation stays sequential (factories may
    carry caller side effects, e.g. the fault harness's fallback
    callbacks).  Scheme callbacks are only ever invoked by the owner of
    their node, never two nodes of one owner concurrently. *)

val run :
  ?scheduler:Scheduler.t ->
  ?max_messages:int ->
  ?record_trace:bool ->
  ?sinks:Obs.Sink.t list ->
  ?loss:float * int ->
  ?faults:Fault_plan.t ->
  ?retry:int ->
  ?shards:int ->
  ?min_parallel_batch:int ->
  advice:(int -> Bitstring.Bitbuf.t) ->
  Netgraph.Graph.t ->
  source:int ->
  Scheme.factory ->
  Runner.result

val default_shards : unit -> int
(** The shard count used when the caller does not say: the
    [ORACLE_SIZE_SHARDS] environment variable if set to a positive
    integer, else 1 (sequential). *)
