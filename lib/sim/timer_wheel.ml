(* A round-indexed timer wheel.

   Entries are keyed by the absolute round at which they come due; the
   wheel is an array of buckets indexed by [due land mask].  As long as
   every live entry is within [size] rounds of the current clock — the
   wheel grows to maintain this — two live entries can share a bucket
   only when they share a due round, so ticking round [r] drains exactly
   bucket [r land mask], whole.  Enqueue is O(1); a tick costs O(due
   entries) plus an O(1) bucket probe, so a message delayed by k rounds
   costs nothing during the k-1 rounds in between (the list-based queue
   it replaces rescanned every entry every round). *)

type 'a t = {
  mutable buckets : (int * 'a) list array;
      (* bucket lists are newest-first; [drain] reverses, so release
         order is insertion order, matching the list queues of old. *)
  mutable mask : int;
  mutable count : int;
}

let create () = { buckets = Array.make 16 []; mask = 15; count = 0 }

let is_empty t = t.count = 0

let length t = t.count

let grow t ~span =
  let size = ref (2 * (t.mask + 1)) in
  while !size <= span do
    size := 2 * !size
  done;
  let buckets = Array.make !size [] in
  let mask = !size - 1 in
  (* Entries sharing an old bucket share a new one only when they share
     a due round (all live dues fit in a window smaller than either
     size), so rehashing bucket by bucket, oldest entry first, preserves
     per-bucket insertion order. *)
  Array.iter
    (fun l ->
      List.iter
        (fun ((due, _) as e) -> buckets.(due land mask) <- e :: buckets.(due land mask))
        (List.rev l))
    t.buckets;
  t.buckets <- buckets;
  t.mask <- mask

let add t ~now ~due x =
  if due < now then invalid_arg "Timer_wheel.add: due round in the past";
  if due - now > t.mask then grow t ~span:(due - now);
  let i = due land t.mask in
  t.buckets.(i) <- (due, x) :: t.buckets.(i);
  t.count <- t.count + 1

let drain t ~now f =
  if t.count > 0 then begin
    let i = now land t.mask in
    match t.buckets.(i) with
    | [] -> ()
    | l ->
      t.buckets.(i) <- [];
      (* [f] may re-arm the wheel (a retransmitted copy dropped again);
         the bucket is detached first, and new entries are strictly in
         the future, so they land in other buckets — or in this one only
         for a later lap, after a grow keeps the window invariant. *)
      List.iter
        (fun (_, x) ->
          t.count <- t.count - 1;
          f x)
        (List.rev l)
  end
