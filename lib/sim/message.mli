(** Messages exchanged by schemes.

    The paper's upper bounds use only bounded-size messages: the source
    message itself and small control messages ("hello" in Scheme B).  The
    lower bounds allow arbitrarily long messages, represented here by
    [Control] payloads.  [size_bits] gives the accounting used for
    bits-on-wire statistics (the source message proper is charged 1 bit —
    its content is irrelevant to every result). *)

type t =
  | Source  (** the source message [M], or any message carrying it *)
  | Hello  (** Scheme B's control message *)
  | Control of Bitstring.Bitbuf.t  (** arbitrary control payload *)

val size_bits : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val is_source : t -> bool

(** {1 Recovery-layer control messages}

    Distinguished [Control] payloads used by the self-healing machinery.
    They are ordinary 2-bit control messages as far as accounting goes;
    the constants only fix a vocabulary shared by {!Runner} (which emits
    timeouts) and the hardened schemes in [lib/core] (which react to
    them and emit refloods). *)

val timeout : t
(** The link-timeout signal: when [Runner.run ~retry] gives up on a
    message whose receiver crash-stopped or is dead, it delivers
    [timeout] back to the sender on the port the message left through —
    the simulation rendering of the sender's per-node ack timer firing.
    Schemes unaware of the recovery layer ignore [Control] messages, so
    the signal is opt-in by construction. *)

val is_timeout : t -> bool

val reflood : t
(** The recovery-flood marker: a hardened node that learns of a failed
    neighbour re-disseminates the source message by flooding [reflood]
    once; receivers treat it as carrying [M], forward it once on every
    other port, and so re-cover the entire surviving component. *)

val is_reflood : t -> bool
