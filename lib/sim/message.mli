(** Messages exchanged by schemes.

    The paper's upper bounds use only bounded-size messages: the source
    message itself and small control messages ("hello" in Scheme B).  The
    lower bounds allow arbitrarily long messages, represented here by
    [Control] payloads.  [size_bits] gives the accounting used for
    bits-on-wire statistics (the source message proper is charged 1 bit —
    its content is irrelevant to every result). *)

type t =
  | Source  (** the source message [M], or any message carrying it *)
  | Hello  (** Scheme B's control message *)
  | Control of Bitstring.Bitbuf.t  (** arbitrary control payload *)

val size_bits : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val is_source : t -> bool
