(** The worker half of the distributed sweep protocol.

    A worker subprocess speaks {!Bitstring.Frame} frames over two pipes
    — supervisor→worker on [input] (config, task batches, shutdown),
    worker→supervisor on [output] (announce, heartbeats, results) — and
    executes tasks handed to it by {!Dispatch}.  The failure model is
    crash-stop: a worker that dies, hangs, or emits one malformed frame
    is discarded wholesale and its in-flight batch reassigned; nothing
    here retransmits or rejoins.  Results are pure functions of task
    indices, so worker identity and timing are invisible in sweep
    output — the property the chaos determinism tests pin.

    Wire layout (field widths normative, see DESIGN.md §13): announce
    [Hello] carries the worker id in the frame key and an 8-bit wire
    version; config [Hello] carries a {!Journal.context_payload}; [Task]
    frames key the batch sequence number over a 16-bit count plus 32-bit
    indices; [Result] frames key the task index over one ok bit plus
    either a {!Journal.entry_payload} or a length-prefixed error string;
    [Heartbeat] carries a 32-bit completed-task count; [Shutdown] is
    empty. *)

val wire_version : int
(** The protocol version an announce [Hello] carries: [1].  A supervisor
    refuses workers announcing anything else. *)

type msg =
  | Hello of { worker : int; wire_version : int }
      (** worker→supervisor: first frame after spawn *)
  | Config of Journal.context
      (** supervisor→worker: the grid spec and extra context the worker
          must build its executor from *)
  | Task_batch of { seq : int; indices : int array }
      (** supervisor→worker: run these canonical task indices, in order *)
  | Result of { index : int; result : (Journal.entry, string) result }
      (** worker→supervisor: one task's outcome *)
  | Heartbeat of { worker : int; count : int }
      (** worker→supervisor: liveness beacon, sent before each task *)
  | Shutdown  (** supervisor→worker: finish up and exit 0 *)

val encode : msg -> string
(** The message's on-wire bytes — a single {!Bitstring.Frame}. *)

val parse : Bitstring.Frame.t -> (msg, string) result
(** Interpret a decoded frame as a protocol message.  Total: every
    malformed payload (and any journal-kind frame) maps to [Error],
    which a crash-stop peer treats as the sender being dead. *)

(** Incremental frame reassembly over a byte stream.  Pipes deliver
    bytes, not frames; [Rx] buffers fed bytes and peels complete frames
    off the front. *)
module Rx : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> unit
  (** [feed rx buf n] appends the first [n] bytes of [buf]. *)

  val next : t -> (Bitstring.Frame.t option, string) result
  (** The next complete frame, if any.  [Ok None] means the buffered
      bytes are a (possibly empty) prefix of a frame — feed more.  Any
      decode failure other than truncation is [Error]: the stream is
      unrecoverable and the peer should be written off. *)

  val pending : t -> int
  (** Buffered bytes not yet consumed by {!next}. *)
end

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** [write_all fd buf pos len] writes the whole range, restarting on
    partial writes and [EINTR].  Shared with {!Dispatch}; raises the
    underlying [Unix.Unix_error] (notably [EPIPE]) on failure. *)

val serve :
  id:int ->
  ?chaos:(completed:int -> [ `Continue | `Kill | `Hang | `Garbage of string ]) ->
  exec:(Journal.context -> (int -> (Journal.entry, string) result, string) result) ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  int
(** [serve ~id ~exec ~input ~output ()] runs the worker loop and returns
    the process exit code: announce, await config, build the task
    executor with [exec] (its failure is exit code 3, reported on
    stderr), then heartbeat-execute-respond through task batches until
    [Shutdown] or supervisor EOF (exit 0).  Malformed supervisor traffic
    is exit 2; a vanished supervisor (EPIPE) exit 1.

    [chaos] is the deterministic fault-injection hook, consulted before
    every task with the count of tasks this worker has completed:
    [`Kill] exits abruptly via [Unix._exit] (no flush — a simulated
    crash), [`Hang] sleeps forever so the supervisor's heartbeat
    deadline must fire, [`Garbage s] writes the raw bytes [s] mid-stream
    and exits.  {!Fault.Chaos} compiles [--chaos] specs into this
    hook. *)
