(** The worker half of the distributed sweep protocol.

    A worker process speaks {!Bitstring.Frame} frames over a byte
    stream ({!Transport.io}) — supervisor→worker traffic is config,
    task batches, and shutdown; worker→supervisor is announce,
    heartbeats, and results — and executes tasks handed to it by
    {!Dispatch}.  The stream is a pipe pair when {!Dispatch} forked the
    worker, or a TCP socket for a remote worker started with
    [--connect].  The failure model is crash-stop: a worker that dies,
    hangs, or emits one malformed frame is discarded wholesale and its
    in-flight batch reassigned; nothing retransmits.  A condemned
    {e remote} worker may reconnect and re-handshake as a new peer —
    {!serve_io} returns [`Lost] instead of exiting precisely so its
    caller can loop.  Results are pure functions of task indices, so
    worker identity, placement, and timing are invisible in sweep
    output — the property the chaos determinism tests pin.

    Wire layout (field widths normative, see DESIGN.md §13): both
    [Hello] shapes share a frame kind, so their payloads start with a
    1-bit discriminator.  Announce [Hello] (tag 0) carries the worker
    id in the frame key, then an 8-bit wire version, a 16-bit token
    byte length, and the authentication token bytes; config [Hello]
    (tag 1) carries a {!Journal.context_payload}.  [Task] frames key
    the batch sequence number over a 16-bit count plus 32-bit indices;
    [Result] frames key the task index over one ok bit plus either a
    {!Journal.entry_payload} or a length-prefixed error string;
    [Heartbeat] carries a 32-bit completed-task count; [Shutdown] is
    empty. *)

val wire_version : int
(** The protocol version an announce [Hello] carries: [2] (version 1
    was the unauthenticated pipe-only layout).  A supervisor refuses
    workers announcing anything else. *)

val max_auth_bytes : int
(** Longest encodable authentication token (65535 bytes — the width of
    the token length field). *)

type msg =
  | Hello of { worker : int; wire_version : int; auth : string }
      (** worker→supervisor: first frame after spawn or (re)connect.
          [auth] must equal the supervisor's shared-secret token (both
          default to [""]); a mismatch is condemnation before any task
          frame is sent. *)
  | Config of Journal.context
      (** supervisor→worker: the grid spec and extra context the worker
          must build its executor from *)
  | Task_batch of { seq : int; indices : int array }
      (** supervisor→worker: run these canonical task indices, in order *)
  | Result of { index : int; result : (Journal.entry, string) result }
      (** worker→supervisor: one task's outcome *)
  | Heartbeat of { worker : int; count : int }
      (** worker→supervisor: liveness beacon, sent before each task *)
  | Shutdown  (** supervisor→worker: finish up and exit 0 *)

val encode : msg -> string
(** The message's on-wire bytes — a single {!Bitstring.Frame}. *)

val parse : Bitstring.Frame.t -> (msg, string) result
(** Interpret a decoded frame as a protocol message.  Total: every
    malformed payload (and any journal-kind frame) maps to [Error],
    which a crash-stop peer treats as the sender being dead. *)

(** Incremental frame reassembly over a byte stream.  Streams deliver
    bytes, not frames — a trickled TCP link delivers one byte per read
    — so [Rx] buffers fed bytes and peels complete frames off the
    front. *)
module Rx : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> unit
  (** [feed rx buf n] appends the first [n] bytes of [buf]. *)

  val next : t -> (Bitstring.Frame.t option, string) result
  (** The next complete frame, if any.  [Ok None] means the buffered
      bytes are a (possibly empty) prefix of a frame — feed more.  Any
      decode failure other than truncation is [Error]: the stream is
      unrecoverable and the peer should be written off. *)

  val pending : t -> int
  (** Buffered bytes not yet consumed by {!next}. *)
end

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** [write_all fd buf pos len] writes the whole range, restarting on
    partial writes and [EINTR].  Shared with {!Dispatch}; raises the
    underlying [Unix.Unix_error] (notably [EPIPE]) on failure. *)

val logf : id:int -> ('a, unit, string, unit) format4 -> 'a
(** Worker-attributed stderr logging: each line is prefixed with
    [\[+SECONDS wID\]] — elapsed seconds since this process first
    logged, clamped monotonic within the process — so interleaved
    multi-host [--worker-logs] output stays attributable post-mortem.
    Stamps are not comparable across hosts. *)

type lost = [ `Eof | `Gone ]
(** Why a connection died under the worker: [`Eof] — the supervisor
    closed the stream (or was never there); [`Gone] — a write failed
    ([EPIPE]/[ECONNRESET], typically after condemnation) or the socket
    receive timeout expired behind a partition. *)

type outcome = [ `Exit of int | `Lost of lost ]

val serve_io :
  id:int ->
  ?auth:string ->
  ?chaos:
    (completed:int ->
    [ `Continue | `Kill | `Hang | `Garbage of string | `Partition of float ]) ->
  ?completed:int ref ->
  exec:(Journal.context -> (int -> (Journal.entry, string) result, string) result) ->
  Transport.io ->
  outcome
(** [serve_io ~id ~exec io] runs one protocol session over [io]:
    announce (carrying [auth], default [""]), await config, build the
    task executor with [exec] (failure is [`Exit 3], reported on
    stderr), then heartbeat-execute-respond through task batches until
    [Shutdown] ([`Exit 0]).  Malformed supervisor traffic is [`Exit 2].
    Connection loss is a value, not an exit: [`Lost] tells a TCP
    caller it may reconnect and call [serve_io] again — pass the same
    [completed] counter (tasks completed, fed to [chaos]) across
    sessions so one worker's chaos schedule spans its rejoins.

    [chaos] is the deterministic fault-injection hook, consulted before
    every task: [`Kill] exits abruptly via [Unix._exit] (no flush — a
    simulated crash), [`Hang] sleeps forever so the supervisor's
    heartbeat deadline must fire, [`Garbage s] writes the raw bytes [s]
    mid-stream and exits, [`Partition s] falls silent for [s] seconds
    with the connection open — condemned and rejoining if [s] outlasts
    the supervisor's heartbeat timeout, a mere slow link otherwise.
    {!Fault.Chaos} compiles [--chaos] specs into this hook. *)

val serve :
  id:int ->
  ?auth:string ->
  ?chaos:
    (completed:int ->
    [ `Continue | `Kill | `Hang | `Garbage of string | `Partition of float ]) ->
  exec:(Journal.context -> (int -> (Journal.entry, string) result, string) result) ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  int
(** {!serve_io} over an fd pair, mapped to a process exit code for the
    pipe mode (no rejoin there — the pipes die with the session):
    [`Lost `Eof] is 0, [`Lost `Gone] is 1, [`Exit n] is [n]. *)
