type t = Source | Hello | Control of Bitstring.Bitbuf.t

let size_bits = function
  | Source -> 1
  | Hello -> 1
  | Control payload -> max 1 (Bitstring.Bitbuf.length payload)

let equal a b =
  match a, b with
  | Source, Source | Hello, Hello -> true
  | Control x, Control y -> Bitstring.Bitbuf.equal x y
  | (Source | Hello | Control _), _ -> false

let pp fmt = function
  | Source -> Format.pp_print_string fmt "M"
  | Hello -> Format.pp_print_string fmt "hello"
  | Control payload -> Format.fprintf fmt "ctl:%a" Bitstring.Bitbuf.pp payload

let is_source = function Source -> true | Hello | Control _ -> false
