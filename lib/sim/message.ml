type t = Source | Hello | Control of Bitstring.Bitbuf.t

let size_bits = function
  | Source -> 1
  | Hello -> 1
  | Control payload -> max 1 (Bitstring.Bitbuf.length payload)

let equal a b =
  match a, b with
  | Source, Source | Hello, Hello -> true
  | Control x, Control y -> Bitstring.Bitbuf.equal x y
  | (Source | Hello | Control _), _ -> false

let pp fmt = function
  | Source -> Format.pp_print_string fmt "M"
  | Hello -> Format.pp_print_string fmt "hello"
  | Control payload -> Format.fprintf fmt "ctl:%a" Bitstring.Bitbuf.pp payload

let is_source = function Source -> true | Hello | Control _ -> false

(* Distinguished control payloads of the recovery layer.  "10" is the
   link-timeout signal the runner's retransmit channel hands a sender
   whose receiver is failed; "11" is the recovery-flood marker hardened
   schemes use to re-disseminate the source message around a failure.
   Two bits keeps them distinct from any empty/one-bit scheme payload. *)

let timeout_payload = Bitstring.Bitbuf.of_bits [ true; false ]

let timeout = Control timeout_payload

(* The predicates run once per delivered control message: comparing
   against the preallocated payload keeps them allocation-free (building
   a fresh two-bit buffer per check used to charge every hardened-scheme
   delivery a few words). *)
let is_timeout = function
  | Control p -> Bitstring.Bitbuf.equal p timeout_payload
  | Source | Hello -> false

let reflood_payload = Bitstring.Bitbuf.of_bits [ true; true ]

let reflood = Control reflood_payload

let is_reflood = function
  | Control p -> Bitstring.Bitbuf.equal p reflood_payload
  | Source | Hello -> false
