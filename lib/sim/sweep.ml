module Families = Netgraph.Families

type point = {
  index : int;
  protocol : string;
  family : Families.t;
  n : int;
  scheduler : Scheduler.t;
  plan : Fault_plan.t;
  rep : int;
  seed : int;
}

type grid = {
  protocols : string list;
  families : Families.t list;
  ns : int list;
  schedulers : Scheduler.t list;
  plans : Fault_plan.t list;
  reps : int;
  base_seed : int;
}

(* FNV-1a-style mix over the canonical token strings, kept in OCaml's
   native int (63-bit wraparound on 64-bit platforms; the offset basis is
   the FNV64 one truncated to fit an int literal).  Explicit rather than
   [Hashtbl.hash] because task seeds are part of the output contract:
   they must never change under us when the stdlib's hash does. *)
let fnv_prime = 0x100000001b3

let derive_seed base tokens =
  let h = ref 0x3bf29ce484222325 in
  let mix_byte b = h := (!h lxor b) * fnv_prime in
  let mix_string s =
    String.iter (fun c -> mix_byte (Char.code c)) s;
    mix_byte 0xff (* token separator: ["ab";"c"] must differ from ["a";"bc"] *)
  in
  mix_string (string_of_int base);
  List.iter mix_string tokens;
  !h land max_int

let point_seed ~base ~protocol ~family ~n ~scheduler ~plan ~rep =
  derive_seed base
    [
      "point";
      protocol;
      Families.name family;
      string_of_int n;
      Scheduler.name scheduler;
      Fault_plan.name plan;
      string_of_int rep;
    ]

let graph_seed grid point =
  derive_seed grid.base_seed
    [ "graph"; Families.name point.family; string_of_int point.n; string_of_int point.rep ]

let points grid =
  if grid.reps < 1 then invalid_arg "Sweep.points: reps < 1";
  let acc = ref [] in
  let count = ref 0 in
  List.iter
    (fun protocol ->
      List.iter
        (fun plan ->
          List.iter
            (fun family ->
              List.iter
                (fun n ->
                  List.iter
                    (fun scheduler ->
                      for rep = 0 to grid.reps - 1 do
                        let seed =
                          point_seed ~base:grid.base_seed ~protocol ~family ~n ~scheduler ~plan
                            ~rep
                        in
                        acc :=
                          { index = !count; protocol; family; n; scheduler; plan; rep; seed }
                          :: !acc;
                        incr count
                      done)
                    grid.schedulers)
                grid.ns)
            grid.families)
        grid.plans)
    grid.protocols;
  let arr = Array.of_list (List.rev !acc) in
  arr

let point_label p =
  Printf.sprintf "%s/%s/%d/%s/%s/%d" p.protocol (Families.name p.family) p.n
    (Scheduler.name p.scheduler) (Fault_plan.name p.plan) p.rep

(* Grid spec strings.  Axes separated by ';', values by ','; plan specs
   contain commas, so plan alternatives use '|'. *)

let default_grid =
  {
    protocols = [ "wakeup"; "broadcast" ];
    families = [ Families.Sparse_random ];
    ns = [ 64 ];
    schedulers = [ Scheduler.Async_fifo ];
    plans = [ Fault_plan.none ];
    reps = 1;
    base_seed = 42;
  }

let split_on sep s = String.split_on_char sep s |> List.map String.trim |> List.filter (( <> ) "")

let of_string spec =
  let ( let* ) = Result.bind in
  let parse_axis grid kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "sweep spec: missing '=' in %S" kv)
    | Some eq ->
      let key = String.trim (String.sub kv 0 eq) in
      let value = String.sub kv (eq + 1) (String.length kv - eq - 1) in
      let int_list () =
        let parts = split_on ',' value in
        if parts = [] then Error (Printf.sprintf "sweep spec: empty %s" key)
        else
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              match int_of_string_opt s with
              | Some i -> Ok (i :: acc)
              | None -> Error (Printf.sprintf "sweep spec: bad integer %S in %s" s key))
            (Ok []) parts
          |> Result.map List.rev
      in
      (match key with
      | "protocols" ->
        let ps = split_on ',' value in
        if ps = [] then Error "sweep spec: empty protocols" else Ok { grid with protocols = ps }
      | "families" ->
        let* fams =
          List.fold_left
            (fun acc name ->
              let* acc = acc in
              match Families.of_name name with
              | Some f -> Ok (f :: acc)
              | None -> Error (Printf.sprintf "sweep spec: unknown family %S" name))
            (Ok []) (split_on ',' value)
        in
        if fams = [] then Error "sweep spec: empty families"
        else Ok { grid with families = List.rev fams }
      | "ns" ->
        let* ns = int_list () in
        if List.exists (fun n -> n < 1) ns then Error "sweep spec: ns must be >= 1"
        else Ok { grid with ns }
      | "scheds" ->
        let* scheds =
          List.fold_left
            (fun acc name ->
              let* acc = acc in
              match Scheduler.of_name name with
              | Some s -> Ok (s :: acc)
              | None -> Error (Printf.sprintf "sweep spec: unknown scheduler %S" name))
            (Ok []) (split_on ',' value)
        in
        if scheds = [] then Error "sweep spec: empty scheds"
        else Ok { grid with schedulers = List.rev scheds }
      | "plans" ->
        let* plans =
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              match Fault_plan.of_string s with
              | Ok p -> Ok (p :: acc)
              | Error e -> Error (Printf.sprintf "sweep spec: plan %S: %s" s e))
            (Ok []) (split_on '|' value)
        in
        if plans = [] then Error "sweep spec: empty plans"
        else Ok { grid with plans = List.rev plans }
      | "reps" -> (
        match int_of_string_opt (String.trim value) with
        | Some r when r >= 1 -> Ok { grid with reps = r }
        | _ -> Error (Printf.sprintf "sweep spec: bad reps %S" value))
      | "seed" -> (
        match int_of_string_opt (String.trim value) with
        | Some s -> Ok { grid with base_seed = s }
        | None -> Error (Printf.sprintf "sweep spec: bad seed %S" value))
      | _ -> Error (Printf.sprintf "sweep spec: unknown axis %S" key))
  in
  List.fold_left
    (fun acc kv ->
      let* grid = acc in
      parse_axis grid kv)
    (Ok default_grid) (split_on ';' spec)

let to_string grid =
  String.concat ";"
    [
      "protocols=" ^ String.concat "," grid.protocols;
      "families=" ^ String.concat "," (List.map Families.name grid.families);
      "ns=" ^ String.concat "," (List.map string_of_int grid.ns);
      "scheds=" ^ String.concat "," (List.map Scheduler.name grid.schedulers);
      "plans=" ^ String.concat "|" (List.map Fault_plan.name grid.plans);
      "reps=" ^ string_of_int grid.reps;
      "seed=" ^ string_of_int grid.base_seed;
    ]

module Cache = struct
  type ('k, 'v) t = { tbl : ('k, 'v) Hashtbl.t; mutable hits : int; mutable misses : int }

  let create () = { tbl = Hashtbl.create 32; hits = 0; misses = 0 }

  let find c k build =
    match Hashtbl.find_opt c.tbl k with
    | Some v ->
      c.hits <- c.hits + 1;
      v
    | None ->
      c.misses <- c.misses + 1;
      let v = build () in
      Hashtbl.add c.tbl k v;
      v

  let hits c = c.hits

  let misses c = c.misses
end

(* A task failure as one printable string: the exception, plus the
   raise-site backtrace when the runtime recorded one (it is captured on
   the worker domain, so it points at the task body, not the join). *)
let error_string e bt =
  let msg = Printexc.to_string e in
  match String.trim (Printexc.raw_backtrace_to_string bt) with
  | "" -> msg
  | b -> msg ^ "\n" ^ b

let map ?jobs ~local ~f tasks =
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  Pool.with_pool ~jobs (fun pool ->
      Pool.map_local pool ~local (fun w i -> f w i tasks.(i)) (Array.length tasks))
  |> Array.map (function Ok v -> Ok v | Error (e, bt) -> Error (error_string e bt))

let run ?jobs ~local ~f grid =
  map ?jobs ~local ~f:(fun w _i p -> f w p) (points grid)

(* {1 Journaled execution}

   The crash-safe path: tasks whose key is already journaled are never
   re-executed, the rest run over the pool in fixed-size chunks, and
   each chunk's results are appended to the journal — in canonical task
   order, on the submitting domain, flushed per record — before the
   next chunk starts.  Emission stays a single ordered pass at the end,
   reading every row (replayed or fresh) from the in-memory index, so
   the output is byte-identical to an uninterrupted in-memory run at
   any job count, and the journal file itself is too: chunking is keyed
   to task order, never to worker identity. *)

type journal_stats = {
  total : int;
  executed : int;
  skipped : int;
  failed : (int * string) list;
  recovery : Journal.stats option;
}

let default_chunk = 64

(* The executor-agnostic core: [run idx] must evaluate the tasks at
   indices [idx] (a slice of the canonical to-do order) and return an
   index-aligned result array.  The pool path and the distributed
   dispatch path both plug in here; everything that makes the journal
   and the emitted rows deterministic — key validation, replay, chunked
   canonical-order appends from this domain, one ordered emission pass —
   lives below and is shared by both. *)
let map_journaled_via ?journal ?(chunk = default_chunk) ?on_append ~key ~run ~emit tasks =
  if chunk < 1 then invalid_arg "Sweep.map_journaled: chunk < 1";
  let total = Array.length tasks in
  let keys = Array.map key tasks in
  let seen = Hashtbl.create total in
  Array.iteri
    (fun i k ->
      if k < 0 then invalid_arg "Sweep.map_journaled: negative key";
      match Hashtbl.find_opt seen k with
      | Some j ->
        invalid_arg
          (Printf.sprintf "Sweep.map_journaled: tasks %d and %d share key %d (hash collision?)"
             j i k)
      | None -> Hashtbl.add seen k i)
    keys;
  match
    match journal with
    | None -> Ok None
    | Some (path, ctx) -> (
      match Journal.open_ ~expect:ctx ~path () with
      | Ok (j, recovery) -> Ok (Some (j, recovery))
      | Error e -> Error e)
  with
  | Error e -> Error e
  | Ok opened ->
    let results : Journal.entry option array = Array.make total None in
    let skipped = ref 0 in
    (match opened with
    | None -> ()
    | Some (j, _) ->
      Array.iteri
        (fun i k ->
          match Journal.find j k with
          | Some entry ->
            results.(i) <- Some entry;
            incr skipped
          | None -> ())
        keys);
    let todo = ref [] in
    for i = total - 1 downto 0 do
      if results.(i) = None then todo := i :: !todo
    done;
    let todo = Array.of_list !todo in
    let failed = ref [] in
    let executed = ref 0 in
    let remaining = Array.length todo in
    let start = ref 0 in
    while !start < remaining do
      let stop = min remaining (!start + chunk) in
      let idx = Array.sub todo !start (stop - !start) in
      let chunk_results = run idx in
      if Array.length chunk_results <> Array.length idx then
        invalid_arg "Sweep.map_journaled: run returned a misaligned result array";
      (* Post-join, canonical order, submitting domain: the only
         writer the journal ever sees. *)
      Array.iteri
        (fun ci result ->
          let i = idx.(ci) in
          match result with
          | Error msg -> failed := (i, msg) :: !failed
          | Ok entry ->
            results.(i) <- Some entry;
            incr executed;
            (match opened with
            | None -> ()
            | Some (j, _) ->
              Journal.append j ~key:keys.(i) entry;
              (match on_append with
              | Some hook -> hook (Journal.appended j)
              | None -> ())))
        chunk_results;
      start := stop
    done;
    (match opened with None -> () | Some (j, _) -> Journal.close j);
    Array.iteri
      (fun i result -> match result with Some entry -> emit i tasks.(i) entry | None -> ())
      results;
    Ok
      {
        total;
        executed = !executed;
        skipped = !skipped;
        failed = List.rev !failed;
        recovery = (match opened with Some (_, r) -> Some r | None -> None);
      }

let map_journaled ?jobs ?journal ?chunk ?on_append ~key ~local ~f ~emit tasks =
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  Pool.with_pool ~jobs (fun pool ->
      let run idx =
        Pool.map_local pool ~local
          (fun w ci ->
            let i = idx.(ci) in
            f w i tasks.(i))
          (Array.length idx)
        |> Array.map (function Ok v -> Ok v | Error (e, bt) -> Error (error_string e bt))
      in
      map_journaled_via ?journal ?chunk ?on_append ~key ~run ~emit tasks)

let run_journaled ?jobs ?journal ?(context = "") ?chunk ?on_append ~local ~f ~emit grid =
  let journal =
    Option.map (fun path -> (path, { Journal.spec = to_string grid; extra = context })) journal
  in
  map_journaled ?jobs ?journal ?chunk ?on_append
    ~key:(fun p -> p.seed)
    ~local
    ~f:(fun w _i p -> f w p)
    ~emit:(fun _i p entry -> emit p entry)
    (points grid)
