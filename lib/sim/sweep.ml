module Families = Netgraph.Families

type point = {
  index : int;
  protocol : string;
  family : Families.t;
  n : int;
  scheduler : Scheduler.t;
  plan : Fault_plan.t;
  rep : int;
  seed : int;
}

type grid = {
  protocols : string list;
  families : Families.t list;
  ns : int list;
  schedulers : Scheduler.t list;
  plans : Fault_plan.t list;
  reps : int;
  base_seed : int;
}

(* FNV-1a-style mix over the canonical token strings, kept in OCaml's
   native int (63-bit wraparound on 64-bit platforms; the offset basis is
   the FNV64 one truncated to fit an int literal).  Explicit rather than
   [Hashtbl.hash] because task seeds are part of the output contract:
   they must never change under us when the stdlib's hash does. *)
let fnv_prime = 0x100000001b3

let derive_seed base tokens =
  let h = ref 0x3bf29ce484222325 in
  let mix_byte b = h := (!h lxor b) * fnv_prime in
  let mix_string s =
    String.iter (fun c -> mix_byte (Char.code c)) s;
    mix_byte 0xff (* token separator: ["ab";"c"] must differ from ["a";"bc"] *)
  in
  mix_string (string_of_int base);
  List.iter mix_string tokens;
  !h land max_int

let point_seed ~base ~protocol ~family ~n ~scheduler ~plan ~rep =
  derive_seed base
    [
      "point";
      protocol;
      Families.name family;
      string_of_int n;
      Scheduler.name scheduler;
      Fault_plan.name plan;
      string_of_int rep;
    ]

let graph_seed grid point =
  derive_seed grid.base_seed
    [ "graph"; Families.name point.family; string_of_int point.n; string_of_int point.rep ]

let points grid =
  if grid.reps < 1 then invalid_arg "Sweep.points: reps < 1";
  let acc = ref [] in
  let count = ref 0 in
  List.iter
    (fun protocol ->
      List.iter
        (fun plan ->
          List.iter
            (fun family ->
              List.iter
                (fun n ->
                  List.iter
                    (fun scheduler ->
                      for rep = 0 to grid.reps - 1 do
                        let seed =
                          point_seed ~base:grid.base_seed ~protocol ~family ~n ~scheduler ~plan
                            ~rep
                        in
                        acc :=
                          { index = !count; protocol; family; n; scheduler; plan; rep; seed }
                          :: !acc;
                        incr count
                      done)
                    grid.schedulers)
                grid.ns)
            grid.families)
        grid.plans)
    grid.protocols;
  let arr = Array.of_list (List.rev !acc) in
  arr

let point_label p =
  Printf.sprintf "%s/%s/%d/%s/%s/%d" p.protocol (Families.name p.family) p.n
    (Scheduler.name p.scheduler) (Fault_plan.name p.plan) p.rep

(* Grid spec strings.  Axes separated by ';', values by ','; plan specs
   contain commas, so plan alternatives use '|'. *)

let default_grid =
  {
    protocols = [ "wakeup"; "broadcast" ];
    families = [ Families.Sparse_random ];
    ns = [ 64 ];
    schedulers = [ Scheduler.Async_fifo ];
    plans = [ Fault_plan.none ];
    reps = 1;
    base_seed = 42;
  }

let split_on sep s = String.split_on_char sep s |> List.map String.trim |> List.filter (( <> ) "")

let of_string spec =
  let ( let* ) = Result.bind in
  let parse_axis grid kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "sweep spec: missing '=' in %S" kv)
    | Some eq ->
      let key = String.trim (String.sub kv 0 eq) in
      let value = String.sub kv (eq + 1) (String.length kv - eq - 1) in
      let int_list () =
        let parts = split_on ',' value in
        if parts = [] then Error (Printf.sprintf "sweep spec: empty %s" key)
        else
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              match int_of_string_opt s with
              | Some i -> Ok (i :: acc)
              | None -> Error (Printf.sprintf "sweep spec: bad integer %S in %s" s key))
            (Ok []) parts
          |> Result.map List.rev
      in
      (match key with
      | "protocols" ->
        let ps = split_on ',' value in
        if ps = [] then Error "sweep spec: empty protocols" else Ok { grid with protocols = ps }
      | "families" ->
        let* fams =
          List.fold_left
            (fun acc name ->
              let* acc = acc in
              match Families.of_name name with
              | Some f -> Ok (f :: acc)
              | None -> Error (Printf.sprintf "sweep spec: unknown family %S" name))
            (Ok []) (split_on ',' value)
        in
        if fams = [] then Error "sweep spec: empty families"
        else Ok { grid with families = List.rev fams }
      | "ns" ->
        let* ns = int_list () in
        if List.exists (fun n -> n < 1) ns then Error "sweep spec: ns must be >= 1"
        else Ok { grid with ns }
      | "scheds" ->
        let* scheds =
          List.fold_left
            (fun acc name ->
              let* acc = acc in
              match Scheduler.of_name name with
              | Some s -> Ok (s :: acc)
              | None -> Error (Printf.sprintf "sweep spec: unknown scheduler %S" name))
            (Ok []) (split_on ',' value)
        in
        if scheds = [] then Error "sweep spec: empty scheds"
        else Ok { grid with schedulers = List.rev scheds }
      | "plans" ->
        let* plans =
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              match Fault_plan.of_string s with
              | Ok p -> Ok (p :: acc)
              | Error e -> Error (Printf.sprintf "sweep spec: plan %S: %s" s e))
            (Ok []) (split_on '|' value)
        in
        if plans = [] then Error "sweep spec: empty plans"
        else Ok { grid with plans = List.rev plans }
      | "reps" -> (
        match int_of_string_opt (String.trim value) with
        | Some r when r >= 1 -> Ok { grid with reps = r }
        | _ -> Error (Printf.sprintf "sweep spec: bad reps %S" value))
      | "seed" -> (
        match int_of_string_opt (String.trim value) with
        | Some s -> Ok { grid with base_seed = s }
        | None -> Error (Printf.sprintf "sweep spec: bad seed %S" value))
      | _ -> Error (Printf.sprintf "sweep spec: unknown axis %S" key))
  in
  List.fold_left
    (fun acc kv ->
      let* grid = acc in
      parse_axis grid kv)
    (Ok default_grid) (split_on ';' spec)

let to_string grid =
  String.concat ";"
    [
      "protocols=" ^ String.concat "," grid.protocols;
      "families=" ^ String.concat "," (List.map Families.name grid.families);
      "ns=" ^ String.concat "," (List.map string_of_int grid.ns);
      "scheds=" ^ String.concat "," (List.map Scheduler.name grid.schedulers);
      "plans=" ^ String.concat "|" (List.map Fault_plan.name grid.plans);
      "reps=" ^ string_of_int grid.reps;
      "seed=" ^ string_of_int grid.base_seed;
    ]

module Cache = struct
  type ('k, 'v) t = { tbl : ('k, 'v) Hashtbl.t; mutable hits : int; mutable misses : int }

  let create () = { tbl = Hashtbl.create 32; hits = 0; misses = 0 }

  let find c k build =
    match Hashtbl.find_opt c.tbl k with
    | Some v ->
      c.hits <- c.hits + 1;
      v
    | None ->
      c.misses <- c.misses + 1;
      let v = build () in
      Hashtbl.add c.tbl k v;
      v

  let hits c = c.hits

  let misses c = c.misses
end

let map ?jobs ~local ~f tasks =
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  Pool.with_pool ~jobs (fun pool ->
      Pool.map_local pool ~local (fun w i -> f w i tasks.(i)) (Array.length tasks))
  |> Array.map (function Ok v -> Ok v | Error e -> Error (Printexc.to_string e))

let run ?jobs ~local ~f grid =
  map ?jobs ~local ~f:(fun w _i p -> f w p) (points grid)
