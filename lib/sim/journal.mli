(** Append-only, crash-safe on-disk store of completed sweep points.

    A million-job grid must survive restarts: the journal records one
    bit-packed frame per completed grid point, keyed by the point's
    FNV-1a coordinate hash ({!Sweep.derive_seed}'s output, already
    carried by every {!Sweep.point} as its [seed]), so a resumed sweep
    skips exactly the points whose results are already durable.  The
    on-disk format — a superblock frame naming the grid, then record
    frames, each CRC-32-protected via {!Bitstring.Frame} — is specified
    bit-for-bit in [docs/JOURNAL_FORMAT.md]; that document is normative
    and this module implements it.

    Durability contract: {!append} flushes to the OS before returning,
    so a process killed between appends (SIGKILL included) loses
    nothing, and one killed mid-append loses only the torn tail frame,
    which {!open_} detects by CRC/length and truncates away.  The
    encoding is canonical (no timestamps, no randomness), so journal
    bytes are deterministic for a given grid — byte-identical at every
    job count, like the sweep rows themselves.

    Concurrency: a journal handle belongs to one domain, and at most one
    process may append to a file at a time (appends are not locked; the
    sweep engine appends only from the submitting domain, after each
    chunk joins). *)

(** {1 Entries} *)

(** The verdict classification, 2 bits on disk. *)
type verdict_class = Completed | Degraded | Stalled | Violated

val class_name : verdict_class -> string
(** ["completed"], ["degraded"], ["stalled"], ["violated"] — the class
    strings sweep rows print. *)

type entry = {
  n : int;  (** nodes of the built graph (may differ from the requested n) *)
  m : int;  (** edges of the built graph *)
  messages : int;  (** messages sent — the paper's complexity measure *)
  rounds : int;  (** rounds (synchronous) or scheduler steps (asynchronous) *)
  advice_bits : int;  (** oracle bits actually handed out (protection included) *)
  raw_advice_bits : int;  (** oracle bits before protection — the paper's measure *)
  faults : int;  (** adversarial events injected by the fault plan *)
  fallbacks : int;  (** nodes that rejected advice and fell back to flooding *)
  tampered : int;  (** tamper-log length (advice-corruption events) *)
  retransmits : int;  (** recovery-channel retransmissions *)
  corrected_bits : int;  (** advice bits the ECC layer corrected in place *)
  informed : int;  (** nodes informed/awake when the run ended *)
  verdict_class : verdict_class;
  verdict : string;  (** full verdict text, e.g. ["degraded: advice-fallback(3)"] *)
}
(** Everything a sweep needs to re-emit a point's JSONL row without
    re-executing it; field widths on disk are fixed by the spec. *)

type context = { spec : string; extra : string }
(** The journal's identity, stored in the superblock: the canonical grid
    spec ({!Sweep.to_string}) plus free-form extra context (the CLI puts
    [protect]/[retry] here).  Resuming under a different context is
    refused — a journal only ever answers for the run that wrote it. *)

type stats = {
  replayed : int;  (** records recovered from the existing file *)
  torn_bytes : int;  (** bytes truncated off the torn tail, 0 if clean *)
  duplicates : int;  (** duplicate-key frames ignored during replay *)
}

(** {1 The store} *)

type t

val open_ : ?expect:context -> path:string -> unit -> (t * stats, string) result
(** [open_ ~expect ~path ()] opens [path] for appending.  A missing or
    empty file is created with superblock [expect] (an error when
    [expect] is omitted).  An existing file is scanned: the superblock
    is validated (and compared against [expect] when given — mismatch is
    an error), every decodable record frame is replayed into the
    in-memory index, and the file is truncated after the last valid
    frame when a torn tail is found.  An unreadable superblock with
    [expect] present is the crash-during-creation window: the file is
    reinitialized fresh. *)

val context : t -> context

val path : t -> string

val count : t -> int
(** Distinct keys currently journaled (replayed + appended). *)

val appended : t -> int
(** Records appended through this handle (excludes replayed ones). *)

val mem : t -> int -> bool

val find : t -> int -> entry option

val append : t -> key:int -> entry -> unit
(** Append one record frame and flush it to the OS; on return the record
    survives process death.  Raises [Invalid_argument] on a negative or
    already-journaled key, or after {!close}. *)

val iter : t -> (int -> entry -> unit) -> unit
(** All journaled entries in file order (first occurrence per key). *)

val close : t -> unit
(** Close the append channel.  Idempotent; the in-memory index stays
    readable. *)

val compact : path:string -> unit -> (int * stats, string) result
(** Rewrite the journal as superblock + first occurrence of every key in
    file order — dropping duplicate frames and the torn tail, if any —
    then atomically rename over the original.  Returns the surviving
    record count and the recovery stats of the pre-compaction scan.
    Canonical encoding means an already-clean journal compacts to
    byte-identical contents.  The replacement is fsynced before the
    rename and the containing directory after it, so a crash straight
    after a successful compact cannot resurrect the old journal. *)

(** {1 Codec}

    The frame codecs behind the store, exposed for the byte-equality
    verifier and the format tests.  [encode_entry] is canonical: equal
    entries under equal keys produce equal bytes, which is what lets
    [journal verify] re-execute a point and compare recomputed bytes
    against stored ones. *)

val encode_entry : key:int -> entry -> string
(** The full record frame (header, payload, CRC) for [entry] under
    [key].  Raises [Invalid_argument] when a field exceeds its spec'd
    width (counts 32 bits, volumes 40 bits, verdict ≤ 65535 bytes). *)

val entry_payload : entry -> Bitstring.Bitbuf.t
(** The bare record payload bits of {!encode_entry} — what a worker's
    [Result] wire frame carries ({!Worker}); [decode_payload] inverts
    it. *)

val context_payload : context -> Bitstring.Bitbuf.t
(** The bare superblock payload bits of {!encode_superblock} — what the
    supervisor's config [Hello] wire frame carries; [decode_context]
    inverts it. *)

val decode_payload : Bitstring.Bitbuf.t -> (entry, string) result
(** Decode a record frame's payload bits; rejects payloads whose length
    disagrees with the spec's layout. *)

val encode_superblock : context -> string
(** The superblock frame for a fresh journal. *)

val decode_context : Bitstring.Bitbuf.t -> (context, string) result
(** Decode a superblock frame's payload bits. *)

val fixed_payload_bits : int
(** The spec'd size of a record payload before the verdict bytes: 434
    bits.  Pinned by the format tests. *)
