(** Node histories, exactly as in the paper.

    A history at node [v] is
    [(f(v), s(v), id(v), deg(v), (m₁,p₁), …, (m_k,p_k))]: the node's advice
    string, status bit, label and degree, followed by the messages received
    so far with their arrival ports. *)

type static = {
  advice : Bitstring.Bitbuf.t;  (** the oracle string [f(v)] *)
  is_source : bool;  (** the status bit [s(v)] *)
  id : int;  (** the node's label *)
  degree : int;
}

type t = {
  static : static;
  received : (Message.t * int) list;  (** oldest first *)
}

val initial : static -> t

val receive : t -> Message.t -> port:int -> t
(** Extend the history with one received message. *)

val received_count : t -> int

val pp : Format.formatter -> t -> unit
