(** Byte transports for the distributed sweep protocol.

    {!Worker} and {!Dispatch} speak CRC-framed messages over "some
    stream of bytes"; this module supplies the streams.  Three kinds:

    - {!fd_io}/{!socket_io} wrap raw file descriptors (the pipe mode
      and TCP sockets) in a uniform blocking {!io} record;
    - {!listen}/{!accept} give the supervisor a nonblocking TCP
      listener whose fd folds into {!Dispatch}'s select loop;
    - {!connect} gives a remote worker a bounded-retry client socket
      with a receive timeout — the worker's half of partition
      detection.

    The {!Shim} degrades a stream's {e delivery} (stalls, byte-by-byte
    trickle) without ever altering its content, which is how network
    chaos schedules stay byte-identity-preserving by construction.
    Transport knows nothing about frames: framing, authentication, and
    crash-stop condemnation live in {!Worker} and {!Dispatch}. *)

type io = {
  read : Bytes.t -> int;
      (** Blocking read into the whole buffer; returns bytes read, [0]
          at EOF.  Restarts on [EINTR]; raises [Unix.Unix_error]
          otherwise (notably [EAGAIN] when a socket receive timeout
          expires). *)
  write : string -> unit;
      (** Write the whole string, restarting on partial writes and
          [EINTR]; raises [Unix.Unix_error] (notably [EPIPE]). *)
  close : unit -> unit;  (** Close the underlying fd(s).  Idempotent. *)
}

val fd_io : input:Unix.file_descr -> output:Unix.file_descr -> io
(** A blocking stream over an fd pair (equal fds are closed once). *)

val socket_io : Unix.file_descr -> io
(** [fd_io] with both directions on one socket. *)

(** Deterministic network-fault state, mutated by
    {!Fault.Chaos.hook}'s [delay]/[slow]/[trickle] directives and
    consumed by {!shimmed}. *)
module Shim : sig
  type state = {
    mutable delay_s : float;
        (** One-shot pre-write stall in seconds; reset to [0.] once
            served.  Models a slow link that recovers. *)
    mutable slow_s : float;
        (** Sticky: every subsequent write stalls this long first.
            Models a persistently degraded machine or link — the
            deterministic straggler the adaptive scheduler is measured
            against. *)
    mutable trickle : bool;
        (** Sticky: every subsequent write goes out one byte at a
            time, exercising the receiver's frame reassembly. *)
  }

  val create : unit -> state
  (** No faults armed. *)
end

val shimmed : Shim.state -> io -> io
(** [shimmed s io] degrades [io]'s writes per [s] (reads untouched).
    Content is never altered — a shimmed stream delivers exactly the
    bytes written to it. *)

(** {1 Supervisor side} *)

type listener

val listen : ?backlog:int -> port:int -> unit -> (listener, string) result
(** Bind [INADDR_ANY:port] ([SO_REUSEADDR]), listen, and set the fd
    nonblocking.  [port = 0] binds an ephemeral port — read it back
    with {!bound_port}. *)

val listener_fd : listener -> Unix.file_descr
(** The nonblocking fd, for select: readable means connections are
    pending. *)

val bound_port : listener -> int

val accept : listener -> (Unix.file_descr * string) option
(** One pending connection, or [None] when the queue is empty.  The
    returned fd is blocking with [TCP_NODELAY] set; the string is the
    peer address, for logs. *)

val close_listener : listener -> unit

(** {1 Worker side} *)

val parse_hostport : string -> (string * int, string) result
(** Split ["HOST:PORT"]; the port must be in 1..65535. *)

val connect :
  ?read_timeout:float ->
  host:string ->
  port:int ->
  attempts:int ->
  retry_delay:float ->
  unit ->
  (Unix.file_descr, string) result
(** Resolve [host] and connect, retrying transient failures
    (connection refused, unreachable, timeout) up to [attempts] times
    [retry_delay] seconds apart — remote workers routinely start
    before their supervisor.  The socket gets [TCP_NODELAY] and a
    [read_timeout]-second receive timeout (default 60; a supervisor
    silent that long fails the worker's read with [EAGAIN] instead of
    wedging it behind a partition forever). *)

(** {1 Shared helpers} *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Write the whole range, restarting on partial writes and [EINTR]. *)

val read_some : Unix.file_descr -> Bytes.t -> int
(** One read into the whole buffer, restarting on [EINTR]. *)
