(** Executes a scheme assignment over a network and accounts for every
    message, reproducing the paper's cost model: message complexity is the
    total number of messages produced by the scheme.

    The runner is also the telemetry source of the whole stack: every
    observable fact of a run is emitted as a typed {!Obs.Event.t} into the
    sinks passed via [?sinks], and the statistics below are {e defined} as
    the {!Obs.Counting} fold of that stream (the runner folds its own copy,
    so attaching an external counting sink reproduces [stats] exactly).
    The field-by-field metrics contract lives in [DESIGN.md] §"Telemetry:
    the metrics contract". *)

type delivery = {
  src : int;  (** sending node index *)
  src_port : int;  (** port the message left through *)
  dst : int;  (** receiving node index *)
  dst_port : int;  (** port the message arrived on *)
  msg : Message.t;  (** the payload itself (telemetry only keeps its class/size) *)
  informed_sender : bool;  (** was the sender informed when it sent? *)
  round : int;  (** synchronous round, or async step index *)
  seq : int;  (** global send sequence number *)
}
(** One delivered message, payload included — the in-memory trace record
    behind [?record_trace].  The telemetry stream carries the same
    information (minus the payload bits themselves) as
    {!Obs.Event.Deliver} events with the same [seq]/[round] stamps. *)

type stats = {
  sent : int;  (** total messages produced (the paper's complexity) *)
  source_sent : int;  (** messages of class {!Message.Source} *)
  hello_sent : int;  (** messages of class {!Message.Hello} *)
  control_sent : int;  (** messages of class {!Message.Control} *)
  bits_on_wire : int;  (** sum of {!Message.size_bits} over sent messages *)
  rounds : int;  (** rounds under [Synchronous]; steps otherwise *)
  causal_depth : int;
      (** longest chain of causally dependent deliveries — the standard
          asynchronous time complexity (delays normalised to ≤ 1).  Equals
          [rounds] under the synchronous scheduler. *)
  faults : int;
      (** number of {!Obs.Event.Fault} events the adversary injected
          (0 unless [?faults] is given a non-empty plan) *)
}
(** Aggregate counters of one run; each equals the corresponding field of
    the {!Obs.Counting.summary} of the run's event stream. *)

type result = {
  stats : stats;
  informed : bool array;  (** per node: source, or reached by an informed sender *)
  all_informed : bool;  (** the broadcast/wakeup success criterion *)
  quiescent : bool;  (** no in-flight messages remained (no cutoff hit) *)
  deliveries : delivery list;  (** in delivery order; [] unless traced *)
  per_node_sent : int array;  (** transmissions per node (load profile) *)
}

val run :
  ?scheduler:Scheduler.t ->
  ?max_messages:int ->
  ?record_trace:bool ->
  ?sinks:Obs.Sink.t list ->
  ?loss:float * int ->
  ?faults:Fault_plan.t ->
  ?retry:int ->
  advice:(int -> Bitstring.Bitbuf.t) ->
  Netgraph.Graph.t ->
  source:int ->
  Scheme.factory ->
  result
(** [run ~advice g ~source factory] instantiates [factory] at every node
    with its advice/status/label/degree, lets the source (and, for
    broadcast schemes, everyone) transmit, and drives deliveries under the
    scheduler (default [Async_fifo]) until quiescence or [max_messages]
    (default [1_000_000]) sends.

    A node becomes {e informed} when it is the source or when it receives a
    message sent by an informed node (the source message can always ride
    along, as in the paper).  [all_informed] is the broadcast/wakeup
    success criterion.

    [record_trace] (default [false]) grows the in-memory [deliveries]
    trace.  Off, and with no [sinks], the runner takes its
    allocation-free path: messages ride a struct-of-arrays ring buffer,
    delays and retransmit timers a round-indexed timer wheel, and the
    counters advance through {!Obs.Counting}'s [note_*] mutators, so a
    steady-state round allocates nothing beyond the payloads the scheme
    itself builds.  Tracing is an observer choice, never a semantics
    choice: every field of [result] is bit-identical either way (the
    scale tests assert it across fault plans, schedulers and retry
    budgets).  [DESIGN.md] §"Performance model" has the inventory;
    [dune build @perf] tracks the numbers.

    [sinks] (default [[]]) receive the telemetry stream, in emission
    order: one [Advice_read] per node and the source's [Wake] (round 0),
    then a [Send] per message — lost messages included, when [loss] is
    set — and, per delivery, a [Deliver] followed by a [Wake] if the
    receiver becomes informed.  The runner never closes the given sinks;
    the caller does, after [run] returns.

    [loss] is [(p, seed)]: each copy placed on the wire is dropped with
    probability [p], deterministically in [seed].  Every loss is emitted
    as a typed [Fault Msg_dropped] event, exactly like a fault plan's
    drop channel, so verdicts and replay audits see it.

    [retry] (default [0]: recovery off) arms the ack/retransmit channel:
    when a copy of a message is destroyed in flight (plan drop or
    [loss]), the sender's per-message timer fires after an exponential
    backoff (1, 2, 4, … scheduler steps per attempt) and a fresh copy is
    re-enqueued — facing the loss and fault channels again — at most
    [retry] times per sequence number.  Each re-enqueue is a typed
    [Recover (Msg_retransmitted attempt)] event carrying the original
    [seq]; retransmissions are never [Send] events and never count
    against the paper's message complexity.  A receiver that
    crash-stopped (or started dead) is detectably failed, so the channel
    consumes a single retry to deliver {!Message.timeout} back to the
    sender on the port the message left through — the sender's timer
    firing for good — which hardened schemes answer by re-flooding
    around the failure ({!Message.reflood}) and plain schemes ignore.
    All of it derives from the same seeds, so runs replay
    bit-identically.  Raises [Invalid_argument] if [retry < 0].

    [faults] (default {!Fault_plan.none}) turns the run adversarial: the
    message- and node-level faults of the plan are injected between
    [Send] and delivery, each recorded as a typed {!Obs.Event.Fault}
    event in stream order.  Semantics, per channel:
    - {e drop}: the send is destroyed ([Fault Msg_dropped], no push);
    - {e duplicate}: a second copy is enqueued ([Fault Msg_duplicated])
      — the extra copy produces its own [Deliver] but no extra [Send],
      since the scheme did not produce it;
    - {e delay}: the message sits out 1..max scheduler steps
      ([Fault (Msg_delayed k)]) before rejoining the scheduler's order;
    - {e reorder}: pushes are staged and every k-th flushes the burst in
      reversed arrival order ([Fault (Msg_reordered k)]); a partial
      burst is released when the queue drains;
    - {e crash-stop}: at its step the node stops sending and receiving
      ([Fault (Crashed v)] once); deliveries to it become
      [Fault Msg_dropped];
    - {e initially dead}: like a crash at step 0, but skipping
      [on_start] too ([Fault (Dead v)]); the source cannot be dead.
    All injection randomness derives from the plan's seed via per-channel
    streams, so runs replay bit-identically; the advice-level faults of
    the plan are {e not} interpreted here (apply them to the advice
    before the run — see [Fault.Corrupt]).

    Raises [Invalid_argument] if a scheme emits an out-of-range port. *)

val telemetry :
  protocol:string ->
  scheduler:Scheduler.t ->
  ?completed:bool ->
  advice_bits:int ->
  result ->
  Obs.Registry.record
(** Summarise a result as a uniform per-protocol registry record.
    [completed] defaults to [all_informed]; protocols with a different
    success criterion (gossip completeness, unique leader) pass theirs. *)

val run_silent_network_check :
  advice:(int -> Bitstring.Bitbuf.t) -> Netgraph.Graph.t -> source:int -> Scheme.factory -> bool
(** [true] when no non-source node transmits on the empty history under the
    given advice — the executable form of the wakeup restriction, used by
    tests. *)
