(** Executes a scheme assignment over a network and accounts for every
    message, reproducing the paper's cost model: message complexity is the
    total number of messages produced by the scheme. *)

type delivery = {
  src : int;
  src_port : int;
  dst : int;
  dst_port : int;
  msg : Message.t;
  informed_sender : bool;  (** was the sender informed when it sent? *)
  round : int;  (** synchronous round, or async step index *)
  seq : int;  (** global send sequence number *)
}

type stats = {
  sent : int;  (** total messages produced (the paper's complexity) *)
  source_sent : int;
  hello_sent : int;
  control_sent : int;
  bits_on_wire : int;
  rounds : int;  (** rounds under [Synchronous]; steps otherwise *)
  causal_depth : int;
      (** longest chain of causally dependent deliveries — the standard
          asynchronous time complexity (delays normalised to ≤ 1).  Equals
          [rounds] under the synchronous scheduler. *)
}

type result = {
  stats : stats;
  informed : bool array;
  all_informed : bool;
  quiescent : bool;  (** no in-flight messages remained (no cutoff hit) *)
  deliveries : delivery list;  (** in delivery order; [] unless traced *)
  per_node_sent : int array;  (** transmissions per node (load profile) *)
}

val run :
  ?scheduler:Scheduler.t ->
  ?max_messages:int ->
  ?record_trace:bool ->
  ?loss:float * int ->
  advice:(int -> Bitstring.Bitbuf.t) ->
  Netgraph.Graph.t ->
  source:int ->
  Scheme.factory ->
  result
(** [run ~advice g ~source factory] instantiates [factory] at every node
    with its advice/status/label/degree, lets the source (and, for
    broadcast schemes, everyone) transmit, and drives deliveries under the
    scheduler (default [Async_fifo]) until quiescence or [max_messages]
    (default [1_000_000]) sends.

    A node becomes {e informed} when it is the source or when it receives a
    message sent by an informed node (the source message can always ride
    along, as in the paper).  [all_informed] is the broadcast/wakeup
    success criterion.

    Raises [Invalid_argument] if a scheme emits an out-of-range port. *)

val run_silent_network_check :
  advice:(int -> Bitstring.Bitbuf.t) -> Netgraph.Graph.t -> source:int -> Scheme.factory -> bool
(** [true] when no non-source node transmits on the empty history under the
    given advice — the executable form of the wakeup restriction, used by
    tests. *)
