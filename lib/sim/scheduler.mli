(** Delivery disciplines.

    The paper's upper bounds hold under total asynchrony (any delivery
    order), while its lower bounds already hold in the synchronous model.
    We execute schemes under several disciplines to exercise both regimes:

    - [Synchronous]: proceeds in rounds; every message sent in round [r] is
      delivered in round [r+1].
    - [Async_fifo]: one message at a time, oldest first (global FIFO).
    - [Async_lifo]: one at a time, newest first — an adversarially bursty
      order.
    - [Async_random seed]: one at a time, uniformly among in-flight
      messages; deterministic in the seed. *)

type t = Synchronous | Async_fifo | Async_lifo | Async_random of int

val name : t -> string
(** A short stable identifier ([sync], [async-fifo], [async-lifo],
    [async-random(SEED)]) — used in test names and telemetry records. *)

val default_suite : t list
(** The disciplines the robustness tests run under. *)

val of_name : string -> t option
(** Inverse of {!name}: parses [sync], [async-fifo], [async-lifo], and
    [async-random(SEED)].  Used by the sweep grid-spec parser. *)
