(* Domain-sharded execution of a single synchronous run.  See shard.mli
   for the contract; the short version of the determinism argument:

   - the node array is partitioned into [shards] contiguous blocks; a
     node's scheme state is only ever touched by its owner domain;
   - a synchronous round is two phases with a full barrier between them
     — deliver (each owner processes the batch slots addressed to its
     nodes, {e in batch order}) then emit (responses are placed into the
     next batch at offsets precomputed by an exclusive prefix sum over
     the per-slot response counts, which reproduces the sequential
     engine's sequence-number assignment exactly);
   - counters are per-domain {!Obs.Counting} instances merged with
     [absorb] (sums and maxima — order-insensitive), and anything that
     is inherently a global order (sink emission, the in-memory trace,
     every fault-channel RNG draw, timer wheels) runs on the
     coordinator domain only.

   The result is bit-identical to {!Runner.run} at every shard count;
   the shard-determinism grid test compares traces and stats byte for
   byte, faults included. *)

module Graph = Netgraph.Graph

type in_flight = {
  f_src : int;
  f_src_port : int;
  f_dst : int;
  f_dst_port : int;
  f_msg : Message.t;
  f_informed : bool;
  f_seq : int;
  f_depth : int;
}

let msg_class = function
  | Message.Source -> Obs.Event.Source
  | Message.Hello -> Obs.Event.Hello
  | Message.Control _ -> Obs.Event.Control

let default_shards () =
  match Sys.getenv_opt "ORACLE_SIZE_SHARDS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> max 1 n | None -> 1)
  | None -> 1

(* {1 The phase team}

   [shards - 1] spawned domains plus the coordinator (shard 0).  A phase
   is one closure executed once per shard; [phase] returns only after
   every shard has finished, and the mutex hand-off on both edges gives
   the happens-before that publishes all shared-array writes between
   phases.  Exceptions raised inside a phase are captured per shard and
   re-raised on the coordinator, lowest shard first. *)

type team = {
  t_shards : int;
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable gen : int;
  mutable job : (int -> unit) option;
  mutable remaining : int;
  mutable stop : bool;
  exns : exn option array;
  mutable domains : unit Domain.t array;
}

let rec team_worker t ~shard ~last_gen =
  Mutex.lock t.mutex;
  while (not t.stop) && t.gen = last_gen do
    Condition.wait t.work t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let gen = t.gen in
    let job = t.job in
    Mutex.unlock t.mutex;
    (match job with
    | Some f -> ( try f shard with e -> t.exns.(shard) <- Some e)
    | None -> ());
    Mutex.lock t.mutex;
    t.remaining <- t.remaining - 1;
    if t.remaining = 0 then Condition.broadcast t.finished;
    Mutex.unlock t.mutex;
    team_worker t ~shard ~last_gen:gen
  end

let team_create ~shards =
  let t =
    {
      t_shards = shards;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      gen = 0;
      job = None;
      remaining = 0;
      stop = false;
      exns = Array.make shards None;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (shards - 1) (fun w ->
        Domain.spawn (fun () -> team_worker t ~shard:(w + 1) ~last_gen:0));
  t

let team_phase t f =
  Mutex.lock t.mutex;
  t.job <- Some f;
  t.gen <- t.gen + 1;
  t.remaining <- t.t_shards - 1;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  (try f 0 with e -> t.exns.(0) <- Some e);
  Mutex.lock t.mutex;
  while t.remaining > 0 do
    Condition.wait t.finished t.mutex
  done;
  t.job <- None;
  Mutex.unlock t.mutex;
  Array.iteri
    (fun s exn ->
      match exn with
      | Some e ->
        t.exns.(s) <- None;
        raise e
      | None -> ())
    t.exns

let team_shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains
  end

(* {1 The sharded synchronous engine} *)

let run ?(scheduler = Scheduler.Async_fifo) ?(max_messages = 1_000_000) ?(record_trace = false)
    ?(sinks = []) ?loss ?(faults = Fault_plan.none) ?(retry = 0) ?(shards = 1)
    ?(min_parallel_batch = 256) ~advice g ~source factory =
  if shards < 1 then invalid_arg "Shard.run: shards must be >= 1";
  if min_parallel_batch < 1 then invalid_arg "Shard.run: min_parallel_batch must be >= 1";
  if shards = 1 || scheduler <> Scheduler.Synchronous then
    (* One shard is the sequential engine by definition, and the async
       schedulers deliver one message at a time in a single global total
       order — there is no round boundary to parallelise without
       changing the delivery order, so they stay on the sequential
       engine at any shard count (documented in DESIGN.md §14). *)
    Runner.run ~scheduler ~max_messages ~record_trace ~sinks ?loss ~faults ~retry ~advice g
      ~source factory
  else begin
    let n = Graph.n g in
    if source < 0 || source >= n then invalid_arg "Shard.run: source out of range";
    if retry < 0 then invalid_arg "Shard.run: negative retry budget";
    let k = min shards 64 in
    (* Contiguous block partition: node [v] belongs to shard [v / q];
       phases below test ownership as a range check on [v]. *)
    let q = (n + k - 1) / k in
    let g_off = Graph.csr_offsets g in
    let g_nbr = Graph.csr_neighbors g in
    let g_prt = Graph.csr_ports g in
    (* One counting state per shard; merged with [absorb] at the end.
       The coordinator's own slot is [counts.(0)], which also receives
       everything counted outside parallel phases. *)
    let counts = Array.init k (fun _ -> Obs.Counting.create ()) in
    let counts0 = counts.(0) in
    let total_sent () = Array.fold_left (fun acc c -> acc + Obs.Counting.sent c) 0 counts in
    let sinks_empty = sinks = [] in
    let observe ev =
      Obs.Counting.observe counts0 ev;
      List.iter (fun s -> Obs.Sink.emit s ev) sinks
    in
    let seq = ref 0 in
    let informed = Array.make n false in
    let per_node_sent = Array.make n 0 in
    let trace = ref [] in
    (* The scheduler ring: same struct-of-arrays layout as the
       sequential engine.  Growth happens only on the coordinator,
       between parallel phases. *)
    let cap = ref 256 in
    let mask = ref (!cap - 1) in
    let q_src = ref (Array.make !cap 0) in
    let q_sport = ref (Array.make !cap 0) in
    let q_dst = ref (Array.make !cap 0) in
    let q_dport = ref (Array.make !cap 0) in
    let q_seq = ref (Array.make !cap 0) in
    let q_depth = ref (Array.make !cap 0) in
    let q_msg = ref (Array.make !cap Message.Hello) in
    let q_inf = ref (Bytes.make !cap '\000') in
    let head = ref 0 in
    let tail = ref 0 in
    let ring_grow () =
      let len = !tail - !head in
      let ncap = 2 * !cap in
      let nsrc = Array.make ncap 0
      and nsport = Array.make ncap 0
      and ndst = Array.make ncap 0
      and ndport = Array.make ncap 0
      and nseq = Array.make ncap 0
      and ndepth = Array.make ncap 0
      and nmsg = Array.make ncap Message.Hello
      and ninf = Bytes.make ncap '\000' in
      for i = 0 to len - 1 do
        let j = (!head + i) land !mask in
        nsrc.(i) <- !q_src.(j);
        nsport.(i) <- !q_sport.(j);
        ndst.(i) <- !q_dst.(j);
        ndport.(i) <- !q_dport.(j);
        nseq.(i) <- !q_seq.(j);
        ndepth.(i) <- !q_depth.(j);
        nmsg.(i) <- !q_msg.(j);
        Bytes.set ninf i (Bytes.get !q_inf j)
      done;
      q_src := nsrc;
      q_sport := nsport;
      q_dst := ndst;
      q_dport := ndport;
      q_seq := nseq;
      q_depth := ndepth;
      q_msg := nmsg;
      q_inf := ninf;
      cap := ncap;
      mask := ncap - 1;
      head := 0;
      tail := len
    in
    let ring_push ~src ~src_port ~dst ~dst_port ~msg ~inf ~sq ~depth =
      if !tail - !head = !cap then ring_grow ();
      let i = !tail land !mask in
      Array.unsafe_set !q_src i src;
      Array.unsafe_set !q_sport i src_port;
      Array.unsafe_set !q_dst i dst;
      Array.unsafe_set !q_dport i dst_port;
      Array.unsafe_set !q_seq i sq;
      Array.unsafe_set !q_depth i depth;
      Array.unsafe_set !q_msg i msg;
      Bytes.unsafe_set !q_inf i (if inf then '\001' else '\000');
      incr tail
    in
    let push_fl fl =
      ring_push ~src:fl.f_src ~src_port:fl.f_src_port ~dst:fl.f_dst ~dst_port:fl.f_dst_port
        ~msg:fl.f_msg ~inf:fl.f_informed ~sq:fl.f_seq ~depth:fl.f_depth
    in
    (* Fault machinery: identical to the sequential engine, and
       coordinator-only — every RNG draw, wheel operation and stage
       mutation happens in the same global order as sequentially. *)
    let loss_state =
      match loss with
      | None -> None
      | Some (p, _) when p <= 0.0 -> None
      | Some (p, lseed) ->
        if p >= 1.0 then invalid_arg "Shard.run: loss probability must be < 1";
        Some (p, Random.State.make [| lseed; 0x1055 |])
    in
    let lost () =
      match loss_state with
      | None -> false
      | Some (p, st) -> Random.State.float st 1.0 < p
    in
    let plan = if Fault_plan.is_none faults then None else Some faults in
    let failed = Bytes.make n '\000' in
    let is_failed v = Bytes.unsafe_get failed v <> '\000' in
    let drop_st = Random.State.make [| faults.Fault_plan.seed; 0xd09 |] in
    let dup_st = Random.State.make [| faults.Fault_plan.seed; 0xd4b |] in
    let delay_st = Random.State.make [| faults.Fault_plan.seed; 0xde1 |] in
    let observe_fault ~sq round f =
      if sinks_empty then Obs.Counting.note_fault counts0 ~round f
      else observe { Obs.Event.seq = sq; round; kind = Obs.Event.Fault f }
    in
    let stage : in_flight list ref = ref [] in
    let stage_len = ref 0 in
    let flush_stage () =
      List.iter push_fl !stage;
      stage := [];
      stage_len := 0
    in
    let stage_push round ev =
      match plan with
      | Some p when p.Fault_plan.reorder_every > 1 ->
        stage := ev :: !stage;
        incr stage_len;
        if !stage_len >= p.Fault_plan.reorder_every then begin
          observe_fault ~sq:ev.f_seq round (Obs.Event.Msg_reordered p.Fault_plan.reorder_every);
          flush_stage ()
        end
      | _ -> push_fl ev
    in
    let delayed_w : in_flight Timer_wheel.t = Timer_wheel.create () in
    let tick_delayed round = Timer_wheel.drain delayed_w ~now:round push_fl in
    let recovery_w : (int * in_flight) Timer_wheel.t = Timer_wheel.create () in
    let attempts = ref [||] in
    let att_get s = if s < Array.length !attempts then !attempts.(s) else 0 in
    let att_set s v =
      if s >= Array.length !attempts then begin
        let ncap = ref (max 64 (2 * Array.length !attempts)) in
        while !ncap <= s do
          ncap := 2 * !ncap
        done;
        let a = Array.make !ncap 0 in
        Array.blit !attempts 0 a 0 (Array.length !attempts);
        attempts := a
      end;
      !attempts.(s) <- v
    in
    let t_signalled = ref Bytes.empty in
    let ts_get s = s < Bytes.length !t_signalled && Bytes.get !t_signalled s <> '\000' in
    let ts_set s =
      if s >= Bytes.length !t_signalled then begin
        let ncap = ref (max 64 (2 * Bytes.length !t_signalled)) in
        while !ncap <= s do
          ncap := 2 * !ncap
        done;
        let b = Bytes.make !ncap '\000' in
        Bytes.blit !t_signalled 0 b 0 (Bytes.length !t_signalled);
        t_signalled := b
      end;
      Bytes.set !t_signalled s '\001'
    in
    let schedule_retransmit round fl =
      if retry > 0 && not (Message.is_timeout fl.f_msg) then begin
        let used = att_get fl.f_seq in
        if used < retry then begin
          att_set fl.f_seq (used + 1);
          Timer_wheel.add recovery_w ~now:round ~due:(round + (1 lsl min used 16)) (used + 1, fl)
        end
      end
    in
    let schedule_timeout round ~src ~src_port ~dst ~dst_port ~msg ~sq ~depth =
      if retry > 0 && (not (Message.is_timeout msg)) && not (ts_get sq) then begin
        ts_set sq;
        let used = att_get sq in
        if used < retry then begin
          att_set sq (used + 1);
          Timer_wheel.add recovery_w ~now:round ~due:(round + 1)
            ( used + 1,
              {
                f_src = dst;
                f_src_port = dst_port;
                f_dst = src;
                f_dst_port = src_port;
                f_msg = Message.timeout;
                f_informed = false;
                f_seq = sq;
                f_depth = depth + 1;
              } )
        end
      end
    in
    let signal_failure v round =
      if retry > 0 then
        List.iter
          (fun (p, u, up) ->
            if not (is_failed u) then
              Timer_wheel.add recovery_w ~now:round ~due:(max 1 round)
                ( 1,
                  {
                    f_src = v;
                    f_src_port = p;
                    f_dst = u;
                    f_dst_port = up;
                    f_msg = Message.timeout;
                    f_informed = false;
                    f_seq = 0;
                    f_depth = 1;
                  } ))
          (Graph.neighbors g v)
    in
    let process_crashes step =
      match plan with
      | None -> ()
      | Some p ->
        List.iter
          (fun (v, s) ->
            if s = step && v >= 0 && v < n && not (is_failed v) then begin
              Bytes.set failed v '\002';
              observe_fault ~sq:!seq step (Obs.Event.Crashed v);
              signal_failure v step
            end)
          p.Fault_plan.crashes
    in
    let inject round fl =
      match plan with
      | None -> push_fl fl
      | Some p ->
        let dropped = p.Fault_plan.drop > 0.0 && Random.State.float drop_st 1.0 < p.Fault_plan.drop in
        let dup =
          p.Fault_plan.duplicate > 0.0 && Random.State.float dup_st 1.0 < p.Fault_plan.duplicate
        in
        let delay_by =
          match p.Fault_plan.delay with
          | Some (pr, mx) when Random.State.float delay_st 1.0 < pr ->
            1 + Random.State.int delay_st (max 1 mx)
          | Some _ | None -> 0
        in
        if dropped then begin
          observe_fault ~sq:fl.f_seq round Obs.Event.Msg_dropped;
          schedule_retransmit round fl
        end
        else begin
          if delay_by > 0 then begin
            observe_fault ~sq:fl.f_seq round (Obs.Event.Msg_delayed delay_by);
            Timer_wheel.add delayed_w ~now:round ~due:(round + delay_by) fl
          end
          else stage_push round fl;
          if dup then begin
            observe_fault ~sq:fl.f_seq round Obs.Event.Msg_duplicated;
            stage_push round fl
          end
        end
    in
    let transmit round fl =
      if lost () then begin
        observe_fault ~sq:fl.f_seq round Obs.Event.Msg_dropped;
        schedule_retransmit round fl
      end
      else inject round fl
    in
    let tick_recovery round =
      Timer_wheel.drain recovery_w ~now:round (fun (attempt, fl) ->
          let actor = if Message.is_timeout fl.f_msg then fl.f_dst else fl.f_src in
          if not (is_failed actor) then begin
            (if sinks_empty then Obs.Counting.note_retransmit counts0 ~round
             else
               observe
                 {
                   Obs.Event.seq = fl.f_seq;
                   round;
                   kind = Obs.Event.Recover (Obs.Event.Msg_retransmitted attempt);
                 });
            if Message.is_timeout fl.f_msg then push_fl fl else transmit round fl
          end)
    in
    let fast_wire = plan = None && loss_state = None in
    (* [fast]: no faults, no sinks, no trace — every per-slot effect is
       commutative across shards (per-domain counters, owner-exclusive
       node state), so both round phases run fully parallel.  Otherwise
       only the scheme calls are parallel; events, counters, trace and
       the fault machinery replay on the coordinator in slot order. *)
    let fast = fast_wire && sinks_empty && not record_trace in
    (* Sequential emission: the same walk as the sequential engine's
       [emit], used for the start-up/fault/traced paths and for rounds
       below the parallel threshold. *)
    let rec seq_emit v round ~depth sends =
      match sends with
      | [] -> ()
      | (msg, port) :: rest ->
        let base = g_off.(v) in
        if port < 0 || port >= g_off.(v + 1) - base then
          invalid_arg
            (Printf.sprintf "Runner: node %d (degree %d) sends on port %d" v
               (g_off.(v + 1) - base) port);
        let dst = g_nbr.(base + port) in
        let dst_port = g_prt.(base + port) in
        per_node_sent.(v) <- per_node_sent.(v) + 1;
        let inf = informed.(v) in
        (if sinks_empty then
           Obs.Counting.note_send counts0 ~round ~cls:(msg_class msg) ~bits:(Message.size_bits msg)
         else
           observe
             {
               Obs.Event.seq = !seq;
               round;
               kind =
                 Obs.Event.Send
                   {
                     Obs.Event.src = v;
                     src_port = port;
                     dst;
                     dst_port;
                     cls = msg_class msg;
                     bits = Message.size_bits msg;
                     informed = inf;
                     depth;
                   };
             });
        (if fast_wire then ring_push ~src:v ~src_port:port ~dst ~dst_port ~msg ~inf ~sq:!seq ~depth
         else
           transmit round
             {
               f_src = v;
               f_src_port = port;
               f_dst = dst;
               f_dst_port = dst_port;
               f_msg = msg;
               f_informed = inf;
               f_seq = !seq;
               f_depth = depth;
             });
        incr seq;
        seq_emit v round ~depth rest
    in
    let team = ref None in
    let the_team () =
      match !team with
      | Some t -> t
      | None ->
        let t = team_create ~shards:k in
        team := Some t;
        t
    in
    let phase f = team_phase (the_team ()) f in
    let finish () = match !team with Some t -> team_shutdown t | None -> () in
    Fun.protect ~finally:finish (fun () ->
        let silent = { Scheme.on_start = (fun () -> []); on_receive = (fun _ ~port:_ -> []) } in
        let nodes = Array.make n silent in
        (* Instantiation: parallel over blocks when only counters watch
           (advice-read accounting is a per-shard sum).  With sinks
           attached it stays sequential — the event stream is a global
           order, and factories may carry caller side effects (the fault
           harness's fallback/correction callbacks) that only the
           sequential path may invoke. *)
        (if sinks_empty then begin
           let inst_block s =
             let lo = s * q and hi = min n ((s * q) + q) in
             let c = counts.(s) in
             for v = lo to hi - 1 do
               let a = advice v in
               Obs.Counting.note_advice c ~round:0 ~bits:(Bitstring.Bitbuf.length a);
               nodes.(v) <-
                 factory
                   {
                     History.advice = a;
                     is_source = v = source;
                     id = Graph.label g v;
                     degree = Graph.degree g v;
                   }
             done
           in
           if n >= min_parallel_batch then phase inst_block
           else
             for s = 0 to k - 1 do
               inst_block s
             done
         end
         else
           for v = 0 to n - 1 do
             let a = advice v in
             observe
               {
                 Obs.Event.seq = 0;
                 round = 0;
                 kind = Obs.Event.Advice_read (v, Bitstring.Bitbuf.length a);
               };
             nodes.(v) <-
               factory
                 {
                   History.advice = a;
                   is_source = v = source;
                   id = Graph.label g v;
                   degree = Graph.degree g v;
                 }
           done);
        informed.(source) <- true;
        if sinks_empty then Obs.Counting.note_wake counts0 ~round:0
        else observe { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Wake source };
        (match plan with
        | None -> ()
        | Some p ->
          List.iter
            (fun v ->
              if v >= 0 && v < n && v <> source && not (is_failed v) then begin
                Bytes.set failed v '\001';
                observe_fault ~sq:0 0 (Obs.Event.Dead v);
                signal_failure v 0
              end)
            p.Fault_plan.dead);
        process_crashes 0;
        (* Start-up.  Scheme calls run on the owners; emission is either
           a parallel placement at prefix-sum offsets (fast mode) or the
           coordinator's sequential walk. *)
        let starts = Array.make n [] in
        let starts_block s =
          let lo = s * q and hi = min n ((s * q) + q) in
          for v = lo to hi - 1 do
            if not (is_failed v) then starts.(v) <- nodes.(v).Scheme.on_start ()
          done
        in
        if n >= min_parallel_batch then phase starts_block
        else
          for s = 0 to k - 1 do
            starts_block s
          done;
        if fast && n >= min_parallel_batch then begin
          let pfx = Array.make (n + 1) 0 in
          for v = 0 to n - 1 do
            pfx.(v + 1) <- pfx.(v) + List.length starts.(v)
          done;
          let total = pfx.(n) in
          while !cap < !tail - !head + total do
            ring_grow ()
          done;
          let tail0 = !tail and mask0 = !mask in
          let dsrc = !q_src
          and dsport = !q_sport
          and ddst = !q_dst
          and ddport = !q_dport
          and dseq = !q_seq
          and ddepth = !q_depth
          and dmsg = !q_msg
          and dinf = !q_inf in
          let seq0 = !seq in
          phase (fun s ->
              let lo = s * q and hi = min n ((s * q) + q) in
              let c = counts.(s) in
              for v = lo to hi - 1 do
                let inf = informed.(v) in
                let slot = ref (tail0 + pfx.(v)) in
                let sq = ref (seq0 + pfx.(v)) in
                List.iter
                  (fun (msg, port) ->
                    let base = g_off.(v) in
                    if port < 0 || port >= g_off.(v + 1) - base then
                      invalid_arg
                        (Printf.sprintf "Runner: node %d (degree %d) sends on port %d" v
                           (g_off.(v + 1) - base) port);
                    let dst = g_nbr.(base + port) in
                    let dst_port = g_prt.(base + port) in
                    per_node_sent.(v) <- per_node_sent.(v) + 1;
                    Obs.Counting.note_send c ~round:0 ~cls:(msg_class msg)
                      ~bits:(Message.size_bits msg);
                    let i = !slot land mask0 in
                    Array.unsafe_set dsrc i v;
                    Array.unsafe_set dsport i port;
                    Array.unsafe_set ddst i dst;
                    Array.unsafe_set ddport i dst_port;
                    Array.unsafe_set dseq i !sq;
                    Array.unsafe_set ddepth i 1;
                    Array.unsafe_set dmsg i msg;
                    Bytes.unsafe_set dinf i (if inf then '\001' else '\000');
                    incr slot;
                    incr sq)
                  starts.(v)
              done);
          tail := tail0 + total;
          seq := seq0 + total
        end
        else
          for v = 0 to n - 1 do
            if not (is_failed v) then seq_emit v 0 ~depth:1 starts.(v)
          done;
        (* Per-slot response stash, reused across rounds. *)
        let resp_cap = ref 0 in
        let resp_v = ref [||] in
        let resp_depth = ref [||] in
        let resp_cnt = ref [||] in
        let resp_sends : Scheme.send list array ref = ref [||] in
        let ensure_resp b =
          if b > !resp_cap then begin
            let ncap = ref (max 256 (2 * !resp_cap)) in
            while !ncap < b do
              ncap := 2 * !ncap
            done;
            resp_v := Array.make !ncap 0;
            resp_depth := Array.make !ncap 0;
            resp_cnt := Array.make !ncap 0;
            resp_sends := Array.make !ncap [];
            resp_cap := !ncap
          end
        in
        let wheels_empty () = Timer_wheel.is_empty delayed_w && Timer_wheel.is_empty recovery_w in
        let rounds = ref 0 in
        let cutoff = ref false in
        let rec round_loop () =
          let batch = !tail - !head in
          if batch = 0 then begin
            if !stage_len > 0 then begin
              flush_stage ();
              round_loop ()
            end
            else if not (wheels_empty ()) then begin
              incr rounds;
              process_crashes !rounds;
              tick_delayed !rounds;
              tick_recovery !rounds;
              round_loop ()
            end
          end
          else begin
            incr rounds;
            process_crashes !rounds;
            tick_delayed !rounds;
            tick_recovery !rounds;
            let round = !rounds in
            ensure_resp batch;
            let head0 = !head and mask0 = !mask in
            let dsrc = !q_src
            and dsport = !q_sport
            and ddst = !q_dst
            and ddport = !q_dport
            and dseq = !q_seq
            and ddepth = !q_depth
            and dmsg = !q_msg
            and dinf = !q_inf in
            let rv = !resp_v
            and rd = !resp_depth
            and rc = !resp_cnt
            and rs = !resp_sends in
            (* Deliver phase.  Owners scan the whole batch in slot order
               and process the slots addressed to their nodes; a node
               receiving twice in one round is handled by one owner in
               slot order, so wake decisions match the sequential
               engine's. *)
            let deliver_block s =
              let lo = s * q and hi_excl = min n ((s * q) + q) in
              let c = counts.(s) in
              for o = 0 to batch - 1 do
                let i = (head0 + o) land mask0 in
                let dst = Array.unsafe_get ddst i in
                if dst >= lo && dst < hi_excl then begin
                  let depth = Array.unsafe_get ddepth i in
                  rv.(o) <- dst;
                  rd.(o) <- depth;
                  if is_failed dst then begin
                    rs.(o) <- [];
                    rc.(o) <- 0
                  end
                  else begin
                    let msg = Array.unsafe_get dmsg i in
                    let dst_port = Array.unsafe_get ddport i in
                    (if fast then begin
                       let inf = Bytes.unsafe_get dinf i <> '\000' in
                       Obs.Counting.note_deliver c ~round ~depth;
                       if inf && not informed.(dst) then begin
                         informed.(dst) <- true;
                         Obs.Counting.note_wake c ~round
                       end
                     end);
                    let sends = nodes.(dst).Scheme.on_receive msg ~port:dst_port in
                    rs.(o) <- sends;
                    rc.(o) <- List.length sends
                  end
                end
              done
            in
            if batch >= min_parallel_batch then phase deliver_block
            else
              for s = 0 to k - 1 do
                deliver_block s
              done;
            (* Replay pass (traced/faulted only): events, counters,
               informed/wake transitions, trace records and failed-
               receiver handling, in exact slot order on the
               coordinator. *)
            if not fast then
              for o = 0 to batch - 1 do
                let i = (head0 + o) land mask0 in
                let src = Array.unsafe_get dsrc i
                and src_port = Array.unsafe_get dsport i
                and dst = Array.unsafe_get ddst i
                and dst_port = Array.unsafe_get ddport i
                and sq = Array.unsafe_get dseq i
                and depth = Array.unsafe_get ddepth i
                and msg = Array.unsafe_get dmsg i
                and inf = Bytes.unsafe_get dinf i <> '\000' in
                if is_failed dst then begin
                  observe_fault ~sq round Obs.Event.Msg_dropped;
                  schedule_timeout round ~src ~src_port ~dst ~dst_port ~msg ~sq ~depth
                end
                else begin
                  (if sinks_empty then Obs.Counting.note_deliver counts0 ~round ~depth
                   else
                     observe
                       {
                         Obs.Event.seq = sq;
                         round;
                         kind =
                           Obs.Event.Deliver
                             {
                               Obs.Event.src;
                               src_port;
                               dst;
                               dst_port;
                               cls = msg_class msg;
                               bits = Message.size_bits msg;
                               informed = inf;
                               depth;
                             };
                       });
                  if inf && not informed.(dst) then begin
                    informed.(dst) <- true;
                    if sinks_empty then Obs.Counting.note_wake counts0 ~round
                    else observe { Obs.Event.seq = sq; round; kind = Obs.Event.Wake dst }
                  end;
                  if record_trace then
                    trace :=
                      { Runner.src; src_port; dst; dst_port; msg; informed_sender = inf; round; seq = sq }
                      :: !trace
                end
              done;
            head := head0 + batch;
            (* Emit phase: responses join the ring in slot order, then
               send order — the sequence numbers a sequential run would
               assign.  Fast mode places them in parallel at prefix-sum
               offsets; otherwise the coordinator walks the slots
               through the full fault machinery. *)
            if fast && batch >= min_parallel_batch then begin
              let offs = Array.make (batch + 1) 0 in
              for o = 0 to batch - 1 do
                offs.(o + 1) <- offs.(o) + rc.(o)
              done;
              let total = offs.(batch) in
              while !cap < !tail - !head + total do
                ring_grow ()
              done;
              let tail0 = !tail and emask = !mask in
              let esrc = !q_src
              and esport = !q_sport
              and edst = !q_dst
              and edport = !q_dport
              and eseq = !q_seq
              and edepth = !q_depth
              and emsg = !q_msg
              and einf = !q_inf in
              let seq0 = !seq in
              phase (fun s ->
                  let lo = s * q and hi_excl = min n ((s * q) + q) in
                  let c = counts.(s) in
                  for o = 0 to batch - 1 do
                    let v = rv.(o) in
                    if v >= lo && v < hi_excl && rc.(o) > 0 then begin
                      let depth = rd.(o) + 1 in
                      let inf = informed.(v) in
                      let slot = ref (tail0 + offs.(o)) in
                      let sq = ref (seq0 + offs.(o)) in
                      List.iter
                        (fun (msg, port) ->
                          let base = g_off.(v) in
                          if port < 0 || port >= g_off.(v + 1) - base then
                            invalid_arg
                              (Printf.sprintf "Runner: node %d (degree %d) sends on port %d" v
                                 (g_off.(v + 1) - base) port);
                          let dst = g_nbr.(base + port) in
                          let dst_port = g_prt.(base + port) in
                          per_node_sent.(v) <- per_node_sent.(v) + 1;
                          Obs.Counting.note_send c ~round ~cls:(msg_class msg)
                            ~bits:(Message.size_bits msg);
                          let i = !slot land emask in
                          Array.unsafe_set esrc i v;
                          Array.unsafe_set esport i port;
                          Array.unsafe_set edst i dst;
                          Array.unsafe_set edport i dst_port;
                          Array.unsafe_set eseq i !sq;
                          Array.unsafe_set edepth i depth;
                          Array.unsafe_set emsg i msg;
                          Bytes.unsafe_set einf i (if inf then '\001' else '\000');
                          incr slot;
                          incr sq)
                        rs.(o);
                      rs.(o) <- []
                    end
                  done);
              tail := tail0 + total;
              seq := seq0 + total
            end
            else
              for o = 0 to batch - 1 do
                seq_emit rv.(o) round ~depth:(rd.(o) + 1) rs.(o);
                rs.(o) <- []
              done;
            if total_sent () > max_messages then cutoff := true else round_loop ()
          end
        in
        round_loop ();
        let merged = Obs.Counting.create () in
        Array.iter (fun c -> Obs.Counting.absorb merged c) counts;
        let c = Obs.Counting.summary merged in
        let stats =
          {
            Runner.sent = c.Obs.Counting.sent;
            source_sent = c.Obs.Counting.source_sent;
            hello_sent = c.Obs.Counting.hello_sent;
            control_sent = c.Obs.Counting.control_sent;
            bits_on_wire = c.Obs.Counting.bits_on_wire;
            rounds = c.Obs.Counting.rounds;
            causal_depth = c.Obs.Counting.causal_depth;
            faults = c.Obs.Counting.faults;
          }
        in
        {
          Runner.stats;
          informed;
          all_informed = Array.for_all (fun b -> b) informed;
          quiescent = not !cutoff;
          deliveries = List.rev !trace;
          per_node_sent;
        })
  end
