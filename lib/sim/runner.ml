module Graph = Netgraph.Graph

type delivery = {
  src : int;
  src_port : int;
  dst : int;
  dst_port : int;
  msg : Message.t;
  informed_sender : bool;
  round : int;
  seq : int;
}

type stats = {
  sent : int;
  source_sent : int;
  hello_sent : int;
  control_sent : int;
  bits_on_wire : int;
  rounds : int;
  causal_depth : int;
  faults : int;
}

type result = {
  stats : stats;
  informed : bool array;
  all_informed : bool;
  quiescent : bool;
  deliveries : delivery list;
  per_node_sent : int array;
}

(* A message taken off the fast path: the scheduler queue itself is a
   struct-of-arrays ring buffer (see [run]) and never materialises these;
   records exist only while a message sits in the fault machinery — the
   reorder stage, the delay wheel, or the retransmit wheel. *)
type in_flight = {
  f_src : int;
  f_src_port : int;
  f_dst : int;
  f_dst_port : int;
  f_msg : Message.t;
  f_informed : bool;
  f_seq : int;
  f_depth : int;
}

let msg_class = function
  | Message.Source -> Obs.Event.Source
  | Message.Hello -> Obs.Event.Hello
  | Message.Control _ -> Obs.Event.Control

let telemetry ~protocol ~scheduler ?completed ~advice_bits r =
  {
    Obs.Registry.protocol;
    scheduler = Scheduler.name scheduler;
    n = Array.length r.informed;
    messages = r.stats.sent;
    source_msgs = r.stats.source_sent;
    hello_msgs = r.stats.hello_sent;
    control_msgs = r.stats.control_sent;
    bits_on_wire = r.stats.bits_on_wire;
    rounds = r.stats.rounds;
    causal_depth = r.stats.causal_depth;
    advice_bits;
    completed = (match completed with Some c -> c | None -> r.all_informed);
  }

let run ?(scheduler = Scheduler.Async_fifo) ?(max_messages = 1_000_000) ?(record_trace = false)
    ?(sinks = []) ?loss ?(faults = Fault_plan.none) ?(retry = 0) ~advice g ~source factory =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Runner.run: source out of range";
  if retry < 0 then invalid_arg "Runner.run: negative retry budget";
  (* Raw CSR adjacency for the emit hot loop: one offset read plus two
     flat int reads per send, no tuple allocation, no bounds recheck
     inside [Graph.endpoint]. *)
  let g_off = Graph.csr_offsets g in
  let g_nbr = Graph.csr_neighbors g in
  let g_prt = Graph.csr_ports g in
  let informed = Array.make n false in
  (* All counters are derived from the telemetry event stream: the runner
     folds every event through its own counting sink and fans it out to the
     caller's sinks, so an external [Obs.Counting] attached via [sinks] is
     the same fold over the same stream as [result.stats].

     With no sinks attached, the fold runs through the allocation-free
     [Obs.Counting.note_*] mutators instead — each is by contract the
     [observe] arm of its event kind, so the counters land bit-identical
     without an [Obs.Event.t] ever being built (the scale tests assert
     the bit-identity across the fault/retry grid). *)
  let counts = Obs.Counting.create () in
  let sinks_empty = sinks = [] in
  let observe ev =
    Obs.Counting.observe counts ev;
    List.iter (fun s -> Obs.Sink.emit s ev) sinks
  in
  let seq = ref 0 in
  (* One pass instantiates every node and accounts its advice; the
     [History] record is handed to the factory and dies young unless the
     scheme itself retains it.  Stream order is unchanged: all the
     [Advice_read]s (factories emit nothing), then the source [Wake]. *)
  let nodes =
    Array.init n (fun v ->
        let a = advice v in
        let bits = Bitstring.Bitbuf.length a in
        (if sinks_empty then Obs.Counting.note_advice counts ~round:0 ~bits
         else observe { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Advice_read (v, bits) });
        factory
          {
            History.advice = a;
            is_source = v = source;
            id = Graph.label g v;
            degree = Graph.degree g v;
          })
  in
  informed.(source) <- true;
  if sinks_empty then Obs.Counting.note_wake counts ~round:0
  else observe { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Wake source };
  let per_node_sent = Array.make n 0 in
  let trace = ref [] in
  let rand =
    match scheduler with
    | Scheduler.Async_random seed -> Some (Random.State.make [| seed |])
    | Scheduler.Synchronous | Scheduler.Async_fifo | Scheduler.Async_lifo -> None
  in
  (* In-flight messages: one struct-of-arrays ring buffer serves all four
     scheduler modes — FIFO pops the head, LIFO pops the tail, random
     swap-removes against the tail (exactly the old bag: same index draw,
     same swap), synchronous pops the head a round-sized batch at a time.
     [head]/[tail] are virtual (monotone) indices; the storage slot is
     [index land mask].  Steady state costs eight scalar writes per push
     and eight reads per pop: no list cells, no records. *)
  let cap = ref 256 in
  let mask = ref (!cap - 1) in
  let q_src = ref (Array.make !cap 0) in
  let q_sport = ref (Array.make !cap 0) in
  let q_dst = ref (Array.make !cap 0) in
  let q_dport = ref (Array.make !cap 0) in
  let q_seq = ref (Array.make !cap 0) in
  let q_depth = ref (Array.make !cap 0) in
  let q_msg = ref (Array.make !cap Message.Hello) in
  let q_inf = ref (Bytes.make !cap '\000') in
  let head = ref 0 in
  let tail = ref 0 in
  let ring_grow () =
    let len = !tail - !head in
    let ncap = 2 * !cap in
    let nsrc = Array.make ncap 0
    and nsport = Array.make ncap 0
    and ndst = Array.make ncap 0
    and ndport = Array.make ncap 0
    and nseq = Array.make ncap 0
    and ndepth = Array.make ncap 0
    and nmsg = Array.make ncap Message.Hello
    and ninf = Bytes.make ncap '\000' in
    for i = 0 to len - 1 do
      let j = (!head + i) land !mask in
      nsrc.(i) <- !q_src.(j);
      nsport.(i) <- !q_sport.(j);
      ndst.(i) <- !q_dst.(j);
      ndport.(i) <- !q_dport.(j);
      nseq.(i) <- !q_seq.(j);
      ndepth.(i) <- !q_depth.(j);
      nmsg.(i) <- !q_msg.(j);
      Bytes.set ninf i (Bytes.get !q_inf j)
    done;
    q_src := nsrc;
    q_sport := nsport;
    q_dst := ndst;
    q_dport := ndport;
    q_seq := nseq;
    q_depth := ndepth;
    q_msg := nmsg;
    q_inf := ninf;
    cap := ncap;
    mask := ncap - 1;
    head := 0;
    tail := len
  in
  (* Slot indices are always [index land mask], so they are in range by
     construction; the unsafe accessors drop sixteen bounds checks from
     each push/pop pair on the hot path. *)
  let ring_push ~src ~src_port ~dst ~dst_port ~msg ~inf ~sq ~depth =
    if !tail - !head = !cap then ring_grow ();
    let i = !tail land !mask in
    Array.unsafe_set !q_src i src;
    Array.unsafe_set !q_sport i src_port;
    Array.unsafe_set !q_dst i dst;
    Array.unsafe_set !q_dport i dst_port;
    Array.unsafe_set !q_seq i sq;
    Array.unsafe_set !q_depth i depth;
    Array.unsafe_set !q_msg i msg;
    Bytes.unsafe_set !q_inf i (if inf then '\001' else '\000');
    incr tail
  in
  let push_fl fl =
    ring_push ~src:fl.f_src ~src_port:fl.f_src_port ~dst:fl.f_dst ~dst_port:fl.f_dst_port
      ~msg:fl.f_msg ~inf:fl.f_informed ~sq:fl.f_seq ~depth:fl.f_depth
  in
  let loss_state =
    match loss with
    | None -> None
    | Some (p, _) when p <= 0.0 -> None
    | Some (p, lseed) ->
      if p >= 1.0 then invalid_arg "Runner.run: loss probability must be < 1";
      Some (p, Random.State.make [| lseed; 0x1055 |])
  in
  let lost () =
    match loss_state with
    | None -> false
    | Some (p, st) -> Random.State.float st 1.0 < p
  in
  (* Adversarial execution.  Every fault channel draws from its own
     seeded stream, so enabling one channel never perturbs another and
     identical plan + seed + scheduler replays bit-identically. *)
  let plan = if Fault_plan.is_none faults then None else Some faults in
  (* One byte per node, not two bool arrays: the liveness check is on
     the delivery hot path, and a [Bytes.t] is an eighth of the major
     heap churn that two word-per-element arrays cost every run.
     '\000' live, '\001' dead at start-up, '\002' crash-stopped; no
     consumer distinguishes the failure modes, only zero vs not. *)
  let failed = Bytes.make n '\000' in
  let is_failed v = Bytes.unsafe_get failed v <> '\000' in
  let drop_st = Random.State.make [| faults.Fault_plan.seed; 0xd09 |] in
  let dup_st = Random.State.make [| faults.Fault_plan.seed; 0xd4b |] in
  let delay_st = Random.State.make [| faults.Fault_plan.seed; 0xde1 |] in
  let observe_fault ~sq round f =
    if sinks_empty then Obs.Counting.note_fault counts ~round f
    else observe { Obs.Event.seq = sq; round; kind = Obs.Event.Fault f }
  in
  let stage : in_flight list ref = ref [] in
  let stage_len = ref 0 in
  let flush_stage () =
    (* The staged burst is newest-first, so releasing it in list order
       reverses arrival order — that is the reordering. *)
    List.iter push_fl !stage;
    stage := [];
    stage_len := 0
  in
  let stage_push round ev =
    match plan with
    | Some p when p.Fault_plan.reorder_every > 1 ->
      stage := ev :: !stage;
      incr stage_len;
      if !stage_len >= p.Fault_plan.reorder_every then begin
        observe_fault ~sq:ev.f_seq round (Obs.Event.Msg_reordered p.Fault_plan.reorder_every);
        flush_stage ()
      end
    | _ -> push_fl ev
  in
  (* Delayed messages sit out their rounds on a timer wheel keyed by the
     absolute release round, then rejoin the scheduler's own order
     (oldest release first).  A delay of k rounds costs two O(1) wheel
     operations, not a queue rescan on each of the k rounds between. *)
  let delayed_w : in_flight Timer_wheel.t = Timer_wheel.create () in
  let tick_delayed round = Timer_wheel.drain delayed_w ~now:round push_fl in
  (* The ack/retransmit channel.  Each destroyed copy of a message (plan
     drop, [?loss], or a failed receiver) arms the sender's per-message
     timer; when it fires the channel re-enqueues a fresh copy, at most
     [retry] times per sequence number, with exponential backoff
     (1, 2, 4, … scheduler steps).  A receiver that crash-stopped is
     detectably gone, so instead of burning the whole budget on futile
     copies the channel consumes one retry and fires the sender's timer
     as a [Message.timeout] delivery.  Retransmissions are [Recover]
     events, never [Send]s: repair traffic is invisible to the paper's
     message complexity and budgeted separately by [Fault.Verdict].

     Timers live on their own wheel, keyed by the absolute firing round;
     per-message bookkeeping (attempts used, timeout already signalled)
     is flat arrays indexed by sequence number — no hashing on the
     failure path, and nothing allocated until the channel actually
     fires. *)
  let recovery_w : (int * in_flight) Timer_wheel.t = Timer_wheel.create () in
  let attempts = ref [||] in
  let att_get s = if s < Array.length !attempts then !attempts.(s) else 0 in
  let att_set s v =
    if s >= Array.length !attempts then begin
      let ncap = ref (max 64 (2 * Array.length !attempts)) in
      while !ncap <= s do
        ncap := 2 * !ncap
      done;
      let a = Array.make !ncap 0 in
      Array.blit !attempts 0 a 0 (Array.length !attempts);
      attempts := a
    end;
    !attempts.(s) <- v
  in
  let t_signalled = ref Bytes.empty in
  let ts_get s = s < Bytes.length !t_signalled && Bytes.get !t_signalled s <> '\000' in
  let ts_set s =
    if s >= Bytes.length !t_signalled then begin
      let ncap = ref (max 64 (2 * Bytes.length !t_signalled)) in
      while !ncap <= s do
        ncap := 2 * !ncap
      done;
      let b = Bytes.make !ncap '\000' in
      Bytes.blit !t_signalled 0 b 0 (Bytes.length !t_signalled);
      t_signalled := b
    end;
    Bytes.set !t_signalled s '\001'
  in
  let schedule_retransmit round fl =
    if retry > 0 && not (Message.is_timeout fl.f_msg) then begin
      let used = att_get fl.f_seq in
      if used < retry then begin
        att_set fl.f_seq (used + 1);
        Timer_wheel.add recovery_w ~now:round ~due:(round + (1 lsl min used 16)) (used + 1, fl)
      end
    end
  in
  let schedule_timeout round ~src ~src_port ~dst ~dst_port ~msg ~sq ~depth =
    if retry > 0 && (not (Message.is_timeout msg)) && not (ts_get sq) then begin
      ts_set sq;
      let used = att_get sq in
      if used < retry then begin
        att_set sq (used + 1);
        Timer_wheel.add recovery_w ~now:round ~due:(round + 1)
          ( used + 1,
            {
              f_src = dst;
              f_src_port = dst_port;
              f_dst = src;
              f_dst_port = src_port;
              f_msg = Message.timeout;
              f_informed = false;
              f_seq = sq;
              f_depth = depth + 1;
            } )
      end
    end
  in
  (* Keep-alive detection: with the channel armed, every node runs a
     timer per incident link; a neighbor that crash-stops goes silent and
     the timer fires as a [Message.timeout] delivery at each live
     neighbor.  This is what catches a node that failed {e after} its
     advised traffic completed — no further message would ever be
     addressed to it, so no per-message timer exists to notice.  The
     timers fire at the crash round's own wheel drain (which runs right
     after crash processing); for nodes dead at start-up, at round 1,
     the first round that ticks. *)
  let signal_failure v round =
    if retry > 0 then
      List.iter
        (fun (p, u, up) ->
          if not (is_failed u) then
            Timer_wheel.add recovery_w ~now:round ~due:(max 1 round)
              ( 1,
                {
                  f_src = v;
                  f_src_port = p;
                  f_dst = u;
                  f_dst_port = up;
                  f_msg = Message.timeout;
                  f_informed = false;
                  f_seq = 0;
                  f_depth = 1;
                } ))
        (Graph.neighbors g v)
  in
  let process_crashes step =
    match plan with
    | None -> ()
    | Some p ->
      List.iter
        (fun (v, s) ->
          if s = step && v >= 0 && v < n && not (is_failed v) then begin
            Bytes.set failed v '\002';
            observe_fault ~sq:!seq step (Obs.Event.Crashed v);
            signal_failure v step
          end)
        p.Fault_plan.crashes
  in
  let inject round fl =
    match plan with
    | None -> push_fl fl
    | Some p ->
      (* Each enabled channel draws exactly once per scheme-produced
         message, whatever the other channels decide, so the streams
         stay aligned across plans that differ in one channel. *)
      let dropped = p.Fault_plan.drop > 0.0 && Random.State.float drop_st 1.0 < p.Fault_plan.drop in
      let dup =
        p.Fault_plan.duplicate > 0.0 && Random.State.float dup_st 1.0 < p.Fault_plan.duplicate
      in
      let delay_by =
        match p.Fault_plan.delay with
        | Some (pr, mx) when Random.State.float delay_st 1.0 < pr ->
          1 + Random.State.int delay_st (max 1 mx)
        | Some _ | None -> 0
      in
      if dropped then begin
        observe_fault ~sq:fl.f_seq round Obs.Event.Msg_dropped;
        schedule_retransmit round fl
      end
      else begin
        if delay_by > 0 then begin
          observe_fault ~sq:fl.f_seq round (Obs.Event.Msg_delayed delay_by);
          Timer_wheel.add delayed_w ~now:round ~due:(round + delay_by) fl
        end
        else stage_push round fl;
        if dup then begin
          observe_fault ~sq:fl.f_seq round Obs.Event.Msg_duplicated;
          stage_push round fl
        end
      end
  in
  (* One copy onto the wire: the legacy [?loss] knob first (now a typed
     [Fault Msg_dropped], visible to verdicts and to the retransmit
     channel), then the plan's channels. *)
  let transmit round fl =
    if lost () then begin
      observe_fault ~sq:fl.f_seq round Obs.Event.Msg_dropped;
      schedule_retransmit round fl
    end
    else inject round fl
  in
  let tick_recovery round =
    Timer_wheel.drain recovery_w ~now:round (fun (attempt, fl) ->
        (* Crash-stop: a failed node retransmits nothing, and a failed
           sender no longer owns a timer to be notified by. *)
        let actor = if Message.is_timeout fl.f_msg then fl.f_dst else fl.f_src in
        if not (is_failed actor) then begin
          (if sinks_empty then Obs.Counting.note_retransmit counts ~round
           else
             observe
               {
                 Obs.Event.seq = fl.f_seq;
                 round;
                 kind = Obs.Event.Recover (Obs.Event.Msg_retransmitted attempt);
               });
          if Message.is_timeout fl.f_msg then push_fl fl else transmit round fl
        end)
  in
  (* With neither a fault plan nor a loss knob, nothing between a send
     and its delivery can touch a message: sends go straight onto the
     ring, no [in_flight] record exists, and a steady-state round
     allocates nothing beyond what the scheme itself returns. *)
  let fast_wire = plan = None && loss_state = None in
  (* A plain recursive walk, not [List.iter f]: building the closure for
     [f] on every call put seven words on the minor heap per delivery
     (and per [on_start]), for nothing. *)
  let rec emit v round ~depth sends =
    match sends with
    | [] -> ()
    | (msg, port) :: rest ->
      let base = g_off.(v) in
      if port < 0 || port >= g_off.(v + 1) - base then
        invalid_arg
          (Printf.sprintf "Runner: node %d (degree %d) sends on port %d" v (g_off.(v + 1) - base)
             port);
      let dst = g_nbr.(base + port) in
      let dst_port = g_prt.(base + port) in
      per_node_sent.(v) <- per_node_sent.(v) + 1;
      let inf = informed.(v) in
      (if sinks_empty then
         Obs.Counting.note_send counts ~round ~cls:(msg_class msg) ~bits:(Message.size_bits msg)
       else
         observe
           {
             Obs.Event.seq = !seq;
             round;
             kind =
               Obs.Event.Send
                 {
                   Obs.Event.src = v;
                   src_port = port;
                   dst;
                   dst_port;
                   cls = msg_class msg;
                   bits = Message.size_bits msg;
                   informed = inf;
                   depth;
                 };
           });
      (if fast_wire then ring_push ~src:v ~src_port:port ~dst ~dst_port ~msg ~inf ~sq:!seq ~depth
       else
         transmit round
           {
             f_src = v;
             f_src_port = port;
             f_dst = dst;
             f_dst_port = dst_port;
             f_msg = msg;
             f_informed = inf;
             f_seq = !seq;
             f_depth = depth;
           });
      incr seq;
      emit v round ~depth rest
  in
  (* Initially-dead nodes never start, never receive; a dead (or
     out-of-range) source is ignored — the plan is graph-independent
     data and a dead source would make the task vacuous. *)
  (match plan with
  | None -> ()
  | Some p ->
    List.iter
      (fun v ->
        if v >= 0 && v < n && v <> source && not (is_failed v) then begin
          Bytes.set failed v '\001';
          observe_fault ~sq:0 0 (Obs.Event.Dead v);
          signal_failure v 0
        end)
      p.Fault_plan.dead);
  process_crashes 0;
  (* Start-up: the paper's scheme on the empty history, at every node. *)
  for v = 0 to n - 1 do
    if not (is_failed v) then emit v 0 ~depth:1 (nodes.(v).Scheme.on_start ())
  done;
  let deliver ~src ~src_port ~dst ~dst_port ~msg ~inf ~sq ~depth round =
    if is_failed dst then begin
      (* Swallowed by a failed receiver: recorded as a drop so replay's
         in-flight balance still closes, but no [Deliver] is emitted.
         With the retransmit channel on, the failure is detectable — the
         sender's timer will fire instead of more futile copies. *)
      observe_fault ~sq round Obs.Event.Msg_dropped;
      schedule_timeout round ~src ~src_port ~dst ~dst_port ~msg ~sq ~depth;
      []
    end
    else begin
      (if sinks_empty then Obs.Counting.note_deliver counts ~round ~depth
       else
         observe
           {
             Obs.Event.seq = sq;
             round;
             kind =
               Obs.Event.Deliver
                 {
                   Obs.Event.src;
                   src_port;
                   dst;
                   dst_port;
                   cls = msg_class msg;
                   bits = Message.size_bits msg;
                   informed = inf;
                   depth;
                 };
           });
      if inf && not informed.(dst) then begin
        informed.(dst) <- true;
        if sinks_empty then Obs.Counting.note_wake counts ~round
        else observe { Obs.Event.seq = sq; round; kind = Obs.Event.Wake dst }
      end;
      if record_trace then
        trace :=
          { src; src_port; dst; dst_port; msg; informed_sender = inf; round; seq = sq } :: !trace;
      nodes.(dst).Scheme.on_receive msg ~port:dst_port
    end
  in
  let wheels_empty () = Timer_wheel.is_empty delayed_w && Timer_wheel.is_empty recovery_w in
  let rounds = ref 0 in
  let cutoff = ref false in
  (match scheduler with
  | Scheduler.Synchronous ->
    (* Round r+1 delivers exactly the messages sent during round r: the
       batch is the ring's population at the top of the round; wheel
       releases and response sends queue behind it, for round r+2. *)
    let rec round_loop () =
      let batch = !tail - !head in
      if batch = 0 then begin
        (* A drained round may still owe messages to the adversary:
           release a partial reorder burst, or advance time until a
           delayed message comes due. *)
        if !stage_len > 0 then begin
          flush_stage ();
          round_loop ()
        end
        else if not (wheels_empty ()) then begin
          incr rounds;
          process_crashes !rounds;
          tick_delayed !rounds;
          tick_recovery !rounds;
          round_loop ()
        end
      end
      else begin
        incr rounds;
        process_crashes !rounds;
        tick_delayed !rounds;
        tick_recovery !rounds;
        (* Two-phase: deliver the whole batch first (collecting each
           receiver's response), then hand the responses to the network,
           so no node reacts to a message from its own round. *)
        let responses = ref [] in
        for _ = 1 to batch do
          let i = !head land !mask in
          incr head;
          let src = Array.unsafe_get !q_src i
          and src_port = Array.unsafe_get !q_sport i
          and dst = Array.unsafe_get !q_dst i
          and dst_port = Array.unsafe_get !q_dport i
          and sq = Array.unsafe_get !q_seq i
          and depth = Array.unsafe_get !q_depth i
          and msg = Array.unsafe_get !q_msg i
          and inf = Bytes.unsafe_get !q_inf i <> '\000' in
          let sends = deliver ~src ~src_port ~dst ~dst_port ~msg ~inf ~sq ~depth !rounds in
          responses := (dst, depth, sends) :: !responses
        done;
        List.iter
          (fun (v, depth, sends) -> emit v !rounds ~depth:(depth + 1) sends)
          (List.rev !responses);
        if Obs.Counting.sent counts > max_messages then cutoff := true else round_loop ()
      end
    in
    round_loop ()
  | Scheduler.Async_fifo | Scheduler.Async_lifo | Scheduler.Async_random _ ->
    let rec loop () =
      if !tail = !head then begin
        if !stage_len > 0 then begin
          flush_stage ();
          loop ()
        end
        else if not (wheels_empty ()) then begin
          incr rounds;
          process_crashes !rounds;
          tick_delayed !rounds;
          tick_recovery !rounds;
          loop ()
        end
      end
      else begin
        (* Pop per scheduler mode, reading the slot before anything can
           reuse it (a wheel release pushes into the ring and, for LIFO,
           lands exactly on the slot just vacated). *)
        let i =
          match rand with
          | Some st -> (!head + Random.State.int st (!tail - !head)) land !mask
          | None -> (
            match scheduler with
            | Scheduler.Async_lifo ->
              decr tail;
              !tail land !mask
            | _ ->
              let i = !head land !mask in
              incr head;
              i)
        in
        let src = Array.unsafe_get !q_src i
        and src_port = Array.unsafe_get !q_sport i
        and dst = Array.unsafe_get !q_dst i
        and dst_port = Array.unsafe_get !q_dport i
        and sq = Array.unsafe_get !q_seq i
        and depth = Array.unsafe_get !q_depth i
        and msg = Array.unsafe_get !q_msg i
        and inf = Bytes.unsafe_get !q_inf i <> '\000' in
        (match rand with
        | Some _ ->
          (* Complete the bag's swap-remove: the tail element fills the
             hole (a no-op when the popped element was the tail). *)
          let last = (!tail - 1) land !mask in
          Array.unsafe_set !q_src i (Array.unsafe_get !q_src last);
          Array.unsafe_set !q_sport i (Array.unsafe_get !q_sport last);
          Array.unsafe_set !q_dst i (Array.unsafe_get !q_dst last);
          Array.unsafe_set !q_dport i (Array.unsafe_get !q_dport last);
          Array.unsafe_set !q_seq i (Array.unsafe_get !q_seq last);
          Array.unsafe_set !q_depth i (Array.unsafe_get !q_depth last);
          Array.unsafe_set !q_msg i (Array.unsafe_get !q_msg last);
          Bytes.unsafe_set !q_inf i (Bytes.unsafe_get !q_inf last);
          decr tail
        | None -> ());
        incr rounds;
        process_crashes !rounds;
        tick_delayed !rounds;
        tick_recovery !rounds;
        let sends = deliver ~src ~src_port ~dst ~dst_port ~msg ~inf ~sq ~depth !rounds in
        emit dst !rounds ~depth:(depth + 1) sends;
        if Obs.Counting.sent counts > max_messages then cutoff := true else loop ()
      end
    in
    loop ());
  let c = Obs.Counting.summary counts in
  let stats =
    {
      sent = c.Obs.Counting.sent;
      source_sent = c.Obs.Counting.source_sent;
      hello_sent = c.Obs.Counting.hello_sent;
      control_sent = c.Obs.Counting.control_sent;
      bits_on_wire = c.Obs.Counting.bits_on_wire;
      rounds = c.Obs.Counting.rounds;
      causal_depth = c.Obs.Counting.causal_depth;
      faults = c.Obs.Counting.faults;
    }
  in
  {
    stats;
    informed;
    all_informed = Array.for_all (fun b -> b) informed;
    quiescent = not !cutoff;
    deliveries = List.rev !trace;
    per_node_sent;
  }

let run_silent_network_check ~advice g ~source factory =
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if v <> source then begin
      let node =
        factory
          {
            History.advice = advice v;
            is_source = false;
            id = Graph.label g v;
            degree = Graph.degree g v;
          }
      in
      if node.Scheme.on_start () <> [] then ok := false
    end
  done;
  !ok
