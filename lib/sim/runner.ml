module Graph = Netgraph.Graph

type delivery = {
  src : int;
  src_port : int;
  dst : int;
  dst_port : int;
  msg : Message.t;
  informed_sender : bool;
  round : int;
  seq : int;
}

type stats = {
  sent : int;
  source_sent : int;
  hello_sent : int;
  control_sent : int;
  bits_on_wire : int;
  rounds : int;
  causal_depth : int;
  faults : int;
}

type result = {
  stats : stats;
  informed : bool array;
  all_informed : bool;
  quiescent : bool;
  deliveries : delivery list;
  per_node_sent : int array;
}

type in_flight = {
  f_src : int;
  f_src_port : int;
  f_dst : int;
  f_dst_port : int;
  f_msg : Message.t;
  f_informed : bool;
  f_seq : int;
  f_sent_round : int;
  f_depth : int;
}

let msg_class = function
  | Message.Source -> Obs.Event.Source
  | Message.Hello -> Obs.Event.Hello
  | Message.Control _ -> Obs.Event.Control

let telemetry ~protocol ~scheduler ?completed ~advice_bits r =
  {
    Obs.Registry.protocol;
    scheduler = Scheduler.name scheduler;
    n = Array.length r.informed;
    messages = r.stats.sent;
    source_msgs = r.stats.source_sent;
    hello_msgs = r.stats.hello_sent;
    control_msgs = r.stats.control_sent;
    bits_on_wire = r.stats.bits_on_wire;
    rounds = r.stats.rounds;
    causal_depth = r.stats.causal_depth;
    advice_bits;
    completed = (match completed with Some c -> c | None -> r.all_informed);
  }

let run ?(scheduler = Scheduler.Async_fifo) ?(max_messages = 1_000_000) ?(record_trace = false)
    ?(sinks = []) ?loss ?(faults = Fault_plan.none) ?(retry = 0) ~advice g ~source factory =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Runner.run: source out of range";
  if retry < 0 then invalid_arg "Runner.run: negative retry budget";
  let informed = Array.make n false in
  (* All counters are derived from the telemetry event stream: the runner
     folds every event through its own counting sink and fans it out to the
     caller's sinks, so an external [Obs.Counting] attached via [sinks] is
     the same fold over the same stream as [result.stats]. *)
  let counts = Obs.Counting.create () in
  let observe =
    match sinks with
    | [] -> fun ev -> Obs.Counting.observe counts ev
    | sinks ->
      fun ev ->
        Obs.Counting.observe counts ev;
        List.iter (fun s -> Obs.Sink.emit s ev) sinks
  in
  let seq = ref 0 in
  let advices = Array.init n advice in
  for v = 0 to n - 1 do
    observe
      {
        Obs.Event.seq = 0;
        round = 0;
        kind = Obs.Event.Advice_read (v, Bitstring.Bitbuf.length advices.(v));
      }
  done;
  informed.(source) <- true;
  observe { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Wake source };
  let nodes =
    Array.init n (fun v ->
        factory
          {
            History.advice = advices.(v);
            is_source = v = source;
            id = Graph.label g v;
            degree = Graph.degree g v;
          })
  in
  let per_node_sent = Array.make n 0 in
  let trace = ref [] in
  let rand =
    match scheduler with
    | Scheduler.Async_random seed -> Some (Random.State.make [| seed |])
    | Scheduler.Synchronous | Scheduler.Async_fifo | Scheduler.Async_lifo -> None
  in
  (* In-flight messages.  FIFO/synchronous use a queue-like pair of
     lists; LIFO a stack; random an array-backed bag with swap-remove so
     each pop is O(1). *)
  let pending : in_flight list ref = ref [] in
  let pending_rev : in_flight list ref = ref [] in
  let bag = ref [||] in
  let bag_len = ref 0 in
  let bag_push ev =
    if !bag_len = Array.length !bag then begin
      let grown = Array.make (max 16 (2 * Array.length !bag)) ev in
      Array.blit !bag 0 grown 0 !bag_len;
      bag := grown
    end;
    !bag.(!bag_len) <- ev;
    incr bag_len
  in
  let push ev =
    match scheduler with
    | Scheduler.Async_lifo -> pending := ev :: !pending
    | Scheduler.Async_random _ -> bag_push ev
    | Scheduler.Synchronous | Scheduler.Async_fifo -> pending_rev := ev :: !pending_rev
  in
  let pop_fifo () =
    (match !pending with
    | [] ->
      pending := List.rev !pending_rev;
      pending_rev := []
    | _ :: _ -> ());
    match !pending with
    | [] -> None
    | ev :: rest ->
      pending := rest;
      Some ev
  in
  let pop_random st =
    if !bag_len = 0 then None
    else begin
      let i = Random.State.int st !bag_len in
      let ev = !bag.(i) in
      decr bag_len;
      !bag.(i) <- !bag.(!bag_len);
      Some ev
    end
  in
  let loss_state =
    match loss with
    | None -> None
    | Some (p, _) when p <= 0.0 -> None
    | Some (p, lseed) ->
      if p >= 1.0 then invalid_arg "Runner.run: loss probability must be < 1";
      Some (p, Random.State.make [| lseed; 0x1055 |])
  in
  let lost () =
    match loss_state with
    | None -> false
    | Some (p, st) -> Random.State.float st 1.0 < p
  in
  (* Adversarial execution.  Every fault channel draws from its own
     seeded stream, so enabling one channel never perturbs another and
     identical plan + seed + scheduler replays bit-identically. *)
  let plan = if Fault_plan.is_none faults then None else Some faults in
  let crashed = Array.make n false in
  let dead = Array.make n false in
  let drop_st = Random.State.make [| faults.Fault_plan.seed; 0xd09 |] in
  let dup_st = Random.State.make [| faults.Fault_plan.seed; 0xd4b |] in
  let delay_st = Random.State.make [| faults.Fault_plan.seed; 0xde1 |] in
  let observe_fault ~sq round f =
    observe { Obs.Event.seq = sq; round; kind = Obs.Event.Fault f }
  in
  let stage : in_flight list ref = ref [] in
  let stage_len = ref 0 in
  let flush_stage () =
    (* The staged burst is newest-first, so releasing it in list order
       reverses arrival order — that is the reordering. *)
    List.iter push !stage;
    stage := [];
    stage_len := 0
  in
  let stage_push round ev =
    match plan with
    | Some p when p.Fault_plan.reorder_every > 1 ->
      stage := ev :: !stage;
      incr stage_len;
      if !stage_len >= p.Fault_plan.reorder_every then begin
        observe_fault ~sq:ev.f_seq round (Obs.Event.Msg_reordered p.Fault_plan.reorder_every);
        flush_stage ()
      end
    | _ -> push ev
  in
  (* Delayed messages sit out [k] scheduler steps, then rejoin the
     scheduler's own order (oldest release first). *)
  let delayed : (int * in_flight) list ref = ref [] in
  let tick_delayed () =
    match !delayed with
    | [] -> ()
    | _ ->
      let due, held = List.partition (fun (r, _) -> r <= 1) !delayed in
      delayed := List.map (fun (r, ev) -> (r - 1, ev)) held;
      List.iter (fun (_, ev) -> push ev) (List.rev due)
  in
  (* The ack/retransmit channel.  Each destroyed copy of a message (plan
     drop, [?loss], or a failed receiver) arms the sender's per-message
     timer; when it fires the channel re-enqueues a fresh copy, at most
     [retry] times per sequence number, with exponential backoff
     (1, 2, 4, … scheduler steps).  A receiver that crash-stopped is
     detectably gone, so instead of burning the whole budget on futile
     copies the channel consumes one retry and fires the sender's timer
     as a [Message.timeout] delivery.  Retransmissions are [Recover]
     events, never [Send]s: repair traffic is invisible to the paper's
     message complexity and budgeted separately by [Fault.Verdict]. *)
  let attempts_of_seq = Hashtbl.create 16 in
  let recovery : (int * int * in_flight) list ref = ref [] in
  let node_failed v = crashed.(v) || dead.(v) in
  let schedule_retransmit fl =
    if retry > 0 && not (Message.is_timeout fl.f_msg) then begin
      let used =
        match Hashtbl.find_opt attempts_of_seq fl.f_seq with Some u -> u | None -> 0
      in
      if used < retry then begin
        Hashtbl.replace attempts_of_seq fl.f_seq (used + 1);
        recovery := (1 lsl min used 16, used + 1, fl) :: !recovery
      end
    end
  in
  let timeout_signalled = Hashtbl.create 4 in
  let schedule_timeout fl =
    if
      retry > 0
      && (not (Message.is_timeout fl.f_msg))
      && not (Hashtbl.mem timeout_signalled fl.f_seq)
    then begin
      Hashtbl.add timeout_signalled fl.f_seq ();
      let used =
        match Hashtbl.find_opt attempts_of_seq fl.f_seq with Some u -> u | None -> 0
      in
      if used < retry then begin
        Hashtbl.replace attempts_of_seq fl.f_seq (used + 1);
        recovery :=
          ( 1,
            used + 1,
            {
              f_src = fl.f_dst;
              f_src_port = fl.f_dst_port;
              f_dst = fl.f_src;
              f_dst_port = fl.f_src_port;
              f_msg = Message.timeout;
              f_informed = false;
              f_seq = fl.f_seq;
              f_sent_round = fl.f_sent_round;
              f_depth = fl.f_depth + 1;
            } )
          :: !recovery
      end
    end
  in
  (* Keep-alive detection: with the channel armed, every node runs a
     timer per incident link; a neighbor that crash-stops goes silent and
     the timer fires as a [Message.timeout] delivery at each live
     neighbor.  This is what catches a node that failed {e after} its
     advised traffic completed — no further message would ever be
     addressed to it, so no per-message timer exists to notice. *)
  let signal_failure v round =
    if retry > 0 then
      List.iter
        (fun (p, u, up) ->
          if not (node_failed u) then
            recovery :=
              ( 1,
                1,
                {
                  f_src = v;
                  f_src_port = p;
                  f_dst = u;
                  f_dst_port = up;
                  f_msg = Message.timeout;
                  f_informed = false;
                  f_seq = 0;
                  f_sent_round = round;
                  f_depth = 1;
                } )
              :: !recovery)
        (Graph.neighbors g v)
  in
  let process_crashes step =
    match plan with
    | None -> ()
    | Some p ->
      List.iter
        (fun (v, s) ->
          if s = step && v >= 0 && v < n && (not crashed.(v)) && not dead.(v) then begin
            crashed.(v) <- true;
            observe_fault ~sq:!seq step (Obs.Event.Crashed v);
            signal_failure v step
          end)
        p.Fault_plan.crashes
  in
  let inject round fl =
    match plan with
    | None -> push fl
    | Some p ->
      (* Each enabled channel draws exactly once per scheme-produced
         message, whatever the other channels decide, so the streams
         stay aligned across plans that differ in one channel. *)
      let dropped = p.Fault_plan.drop > 0.0 && Random.State.float drop_st 1.0 < p.Fault_plan.drop in
      let dup =
        p.Fault_plan.duplicate > 0.0 && Random.State.float dup_st 1.0 < p.Fault_plan.duplicate
      in
      let delay_by =
        match p.Fault_plan.delay with
        | Some (pr, mx) when Random.State.float delay_st 1.0 < pr ->
          1 + Random.State.int delay_st (max 1 mx)
        | Some _ | None -> 0
      in
      if dropped then begin
        observe_fault ~sq:fl.f_seq round Obs.Event.Msg_dropped;
        schedule_retransmit fl
      end
      else begin
        if delay_by > 0 then begin
          observe_fault ~sq:fl.f_seq round (Obs.Event.Msg_delayed delay_by);
          delayed := (delay_by, fl) :: !delayed
        end
        else stage_push round fl;
        if dup then begin
          observe_fault ~sq:fl.f_seq round Obs.Event.Msg_duplicated;
          stage_push round fl
        end
      end
  in
  (* One copy onto the wire: the legacy [?loss] knob first (now a typed
     [Fault Msg_dropped], visible to verdicts and to the retransmit
     channel), then the plan's channels. *)
  let transmit round fl =
    if lost () then begin
      observe_fault ~sq:fl.f_seq round Obs.Event.Msg_dropped;
      schedule_retransmit fl
    end
    else inject round fl
  in
  let tick_recovery round =
    match !recovery with
    | [] -> ()
    | _ ->
      let due, held = List.partition (fun (c, _, _) -> c <= 1) !recovery in
      recovery := List.map (fun (c, a, fl) -> (c - 1, a, fl)) held;
      List.iter
        (fun (_, attempt, fl) ->
          (* Crash-stop: a failed node retransmits nothing, and a failed
             sender no longer owns a timer to be notified by. *)
          let actor = if Message.is_timeout fl.f_msg then fl.f_dst else fl.f_src in
          if not (node_failed actor) then begin
            observe
              {
                Obs.Event.seq = fl.f_seq;
                round;
                kind = Obs.Event.Recover (Obs.Event.Msg_retransmitted attempt);
              };
            if Message.is_timeout fl.f_msg then push fl else transmit round fl
          end)
        (List.rev due)
  in
  let emit v round ~depth sends =
    List.iter
      (fun (msg, port) ->
        if port < 0 || port >= Graph.degree g v then
          invalid_arg
            (Printf.sprintf "Runner: node %d (degree %d) sends on port %d" v (Graph.degree g v)
               port);
        let dst, dst_port = Graph.endpoint g v port in
        per_node_sent.(v) <- per_node_sent.(v) + 1;
        observe
          {
            Obs.Event.seq = !seq;
            round;
            kind =
              Obs.Event.Send
                {
                  Obs.Event.src = v;
                  src_port = port;
                  dst;
                  dst_port;
                  cls = msg_class msg;
                  bits = Message.size_bits msg;
                  informed = informed.(v);
                  depth;
                };
          };
        transmit round
          {
            f_src = v;
            f_src_port = port;
            f_dst = dst;
            f_dst_port = dst_port;
            f_msg = msg;
            f_informed = informed.(v);
            f_seq = !seq;
            f_sent_round = round;
            f_depth = depth;
          };
        incr seq)
      sends
  in
  (* Initially-dead nodes never start, never receive; a dead (or
     out-of-range) source is ignored — the plan is graph-independent
     data and a dead source would make the task vacuous. *)
  (match plan with
  | None -> ()
  | Some p ->
    List.iter
      (fun v ->
        if v >= 0 && v < n && v <> source && not dead.(v) then begin
          dead.(v) <- true;
          observe_fault ~sq:0 0 (Obs.Event.Dead v);
          signal_failure v 0
        end)
      p.Fault_plan.dead);
  process_crashes 0;
  (* Start-up: the paper's scheme on the empty history, at every node. *)
  for v = 0 to n - 1 do
    if not (dead.(v) || crashed.(v)) then emit v 0 ~depth:1 (nodes.(v).Scheme.on_start ())
  done;
  let deliver ev round =
    if dead.(ev.f_dst) || crashed.(ev.f_dst) then begin
      (* Swallowed by a failed receiver: recorded as a drop so replay's
         in-flight balance still closes, but no [Deliver] is emitted.
         With the retransmit channel on, the failure is detectable — the
         sender's timer will fire instead of more futile copies. *)
      observe_fault ~sq:ev.f_seq round Obs.Event.Msg_dropped;
      schedule_timeout ev;
      []
    end
    else begin
    observe
      {
        Obs.Event.seq = ev.f_seq;
        round;
        kind =
          Obs.Event.Deliver
            {
              Obs.Event.src = ev.f_src;
              src_port = ev.f_src_port;
              dst = ev.f_dst;
              dst_port = ev.f_dst_port;
              cls = msg_class ev.f_msg;
              bits = Message.size_bits ev.f_msg;
              informed = ev.f_informed;
              depth = ev.f_depth;
            };
      };
    if ev.f_informed && not informed.(ev.f_dst) then begin
      informed.(ev.f_dst) <- true;
      observe { Obs.Event.seq = ev.f_seq; round; kind = Obs.Event.Wake ev.f_dst }
    end;
    if record_trace then
      trace :=
        {
          src = ev.f_src;
          src_port = ev.f_src_port;
          dst = ev.f_dst;
          dst_port = ev.f_dst_port;
          msg = ev.f_msg;
          informed_sender = ev.f_informed;
          round;
          seq = ev.f_seq;
        }
        :: !trace;
      nodes.(ev.f_dst).Scheme.on_receive ev.f_msg ~port:ev.f_dst_port
    end
  in
  let rounds = ref 0 in
  let cutoff = ref false in
  (match scheduler with
  | Scheduler.Synchronous ->
    (* Round r+1 delivers exactly the messages sent during round r. *)
    let rec round_loop () =
      let batch = List.rev !pending_rev in
      pending_rev := [];
      match batch with
      | [] ->
        (* A drained round may still owe messages to the adversary:
           release a partial reorder burst, or advance time until a
           delayed message comes due. *)
        if !stage_len > 0 then begin
          flush_stage ();
          round_loop ()
        end
        else if !delayed <> [] || !recovery <> [] then begin
          incr rounds;
          process_crashes !rounds;
          tick_delayed ();
          tick_recovery !rounds;
          round_loop ()
        end
      | _ :: _ ->
        incr rounds;
        process_crashes !rounds;
        tick_delayed ();
        tick_recovery !rounds;
        let responses =
          List.map
            (fun ev ->
              let sends = deliver ev !rounds in
              (ev.f_dst, ev.f_depth, sends))
            batch
        in
        List.iter (fun (v, depth, sends) -> emit v !rounds ~depth:(depth + 1) sends) responses;
        if Obs.Counting.sent counts > max_messages then cutoff := true else round_loop ()
    in
    round_loop ()
  | Scheduler.Async_fifo | Scheduler.Async_lifo | Scheduler.Async_random _ ->
    let pop () =
      match rand with
      | Some st -> pop_random st
      | None -> pop_fifo ()
    in
    let rec loop () =
      match pop () with
      | None ->
        if !stage_len > 0 then begin
          flush_stage ();
          loop ()
        end
        else if !delayed <> [] || !recovery <> [] then begin
          incr rounds;
          process_crashes !rounds;
          tick_delayed ();
          tick_recovery !rounds;
          loop ()
        end
      | Some ev ->
        incr rounds;
        process_crashes !rounds;
        tick_delayed ();
        tick_recovery !rounds;
        let sends = deliver ev !rounds in
        emit ev.f_dst !rounds ~depth:(ev.f_depth + 1) sends;
        if Obs.Counting.sent counts > max_messages then cutoff := true else loop ()
    in
    loop ());
  let c = Obs.Counting.summary counts in
  let stats =
    {
      sent = c.Obs.Counting.sent;
      source_sent = c.Obs.Counting.source_sent;
      hello_sent = c.Obs.Counting.hello_sent;
      control_sent = c.Obs.Counting.control_sent;
      bits_on_wire = c.Obs.Counting.bits_on_wire;
      rounds = c.Obs.Counting.rounds;
      causal_depth = c.Obs.Counting.causal_depth;
      faults = c.Obs.Counting.faults;
    }
  in
  {
    stats;
    informed;
    all_informed = Array.for_all (fun b -> b) informed;
    quiescent = not !cutoff;
    deliveries = List.rev !trace;
    per_node_sent;
  }

let run_silent_network_check ~advice g ~source factory =
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if v <> source then begin
      let node =
        factory
          {
            History.advice = advice v;
            is_source = false;
            id = Graph.label g v;
            degree = Graph.degree g v;
          }
      in
      if node.Scheme.on_start () <> [] then ok := false
    end
  done;
  !ok
