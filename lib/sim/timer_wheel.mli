(** A round-indexed timer wheel: O(1) enqueue, O(due) dequeue.

    The runner uses one wheel for adversarially delayed messages and one
    for the ack/retransmit channel, replacing list queues that were
    rescanned (partition + decrement) on every round.  Entries are keyed
    by the {e absolute} round at which they come due; ticking a round
    releases exactly that round's entries, in insertion order, and costs
    nothing for entries still in the future. *)

type 'a t

val create : unit -> 'a t
(** An empty wheel (initial capacity 16 rounds; grows on demand). *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of armed entries. *)

val add : 'a t -> now:int -> due:int -> 'a -> unit
(** Arm [x] to be released by [drain ~now:due].  The wheel grows so that
    [due - now] always fits its window.  Raises [Invalid_argument] if
    [due < now].  [due = now] is allowed: the entry releases at the
    current round's drain, if that drain has not already run. *)

val drain : 'a t -> now:int -> ('a -> unit) -> unit
(** Release every entry due at round [now], in insertion order.  Must be
    called for every round in increasing order — skipping a round would
    strand its entries.  [f] may [add] further entries (they are due
    strictly later, so never released within the same drain). *)
