(** The hard-instance families of Theorems 2.2 and 3.2, and executable
    experiments demonstrating both lower bounds at finite sizes.

    Theorem 2.2 hides [n] subdivided edges inside [K*ₙ]: a (2n)-node graph
    [G_{n,S}] in which a wakeup scheme must effectively solve edge
    discovery.  Theorem 3.2 splices [n/k] nearly-complete [k]-cliques into
    [K*ₙ]: a (2n)-node graph [G_{n,S,C}] in which a broadcast scheme with
    too little advice must pay [Ω(nk)] messages inside the cliques.

    The quantifier "for every oracle of size [o(·)]" cannot be tested
    directly; what can be tested — and is what the proofs actually use —
    is (a) the counting pipeline ([P], [Q], Lemma 2.1, assembled in
    {!Bounds}), and (b) the behaviour of concrete schemes: schemes with
    the Theorem 2.1/3.1 advice stay linear, while oracle-starved schemes
    measurably pay the predicted superlinear price. *)

(** {1 Theorem 2.2 family} *)

val wakeup_hard_graph : n:int -> seed:int -> Netgraph.Graph.t * Netgraph.Graph.edge list
(** [G_{n,S}] for a uniformly chosen [S] of [n] distinct edges of [K*ₙ]:
    the (2n)-node graph and the chosen host edges.  Node 0 (label 1) is
    the source by convention. *)

type wakeup_point = {
  wp_n : int;  (** host size [n]; the graph has [2n] nodes *)
  informed_messages : int;  (** Theorem 2.1 scheme with full advice *)
  informed_bits : int;
  oblivious_messages : int;  (** flooding: correct but advice-free *)
  counting_bound : float;
      (** Theorem 2.2's bound on messages for {e any} scheme whose oracle
          is capped at [α·(2n)·log₂(2n)] bits, [α = 1/3] *)
  capped_bits : int;  (** that advice cap *)
  threshold_bits : int;
      (** smallest advice budget at which the counting bound stops forcing
          more than [3·2n] messages — the finite-n Θ(n log n) threshold *)
  threshold_ratio : float;
      (** [threshold_bits / (2n·log₂ 2n)]; approaches the paper's [α = ½]
          from below as [n] grows (slowly — the second-order term of the
          proof is [Θ(n log log n)]) *)
}

val wakeup_experiment : n:int -> seed:int -> wakeup_point
(** One row of experiment E2. *)

val min_advice_for_linear_wakeup : n:int -> budget_factor:float -> int
(** Smallest total advice (by bisection over the counting pipeline) at
    which Theorem 2.2's message bound drops to [budget_factor·2n] — the
    empirical Θ(n log n) threshold of the paper's headline. *)

val wakeup_hard_graph_c :
  n:int -> c:int -> seed:int -> Netgraph.Graph.t * Netgraph.Graph.edge list
(** The Remark's generalization: subdivide [c·n] edges of [K*ₙ] —
    a [(1+c)n]-node graph.  Requires [c·n ≤ C(n,2)]. *)

val min_advice_for_linear_wakeup_c : n:int -> c:int -> budget_factor:float -> int
(** The advice threshold on the [(1+c)n]-node family; its ratio to
    [N·log₂ N] (with [N = (1+c)n]) grows towards [c/(c+1)] — the Remark
    after Theorem 2.2, measured in E2c. *)

(** {1 Theorem 3.2 family} *)

val broadcast_hard_graph :
  n:int -> k:int -> seed:int -> Netgraph.Graph.t * Netgraph.Graph.edge list * (int * int) list
(** [G_{n,S,C}] with [|S| = n/k] random host edges and uniform missing
    pairs [C].  Requires [k ≥ 3] and [k] dividing [n].  The graph has
    [2n] nodes; node 0 (label 1) is the source. *)

type broadcast_point = {
  bp_n : int;
  bp_k : int;
  advised_messages : int;  (** Scheme B with the Theorem 3.1 oracle *)
  advised_bits : int;
  starved_messages : int;  (** flooding: zero advice in the cliques *)
  clique_bound : float;  (** Claim 3.3's [n(k-1)/8] *)
  starved_completes : bool;
}

val broadcast_experiment : n:int -> k:int -> seed:int -> broadcast_point
(** One row of experiment E5. *)

(** {1 Advice starvation} *)

type starvation_point = {
  sv_budget : int;  (** advice bits allowed *)
  sv_messages : int;
  sv_informed : int;  (** how many of the [2n] nodes got the message *)
  sv_completed : bool;
}

val starvation_sweep :
  Netgraph.Graph.t -> source:int -> budgets:int list -> starvation_point list
(** Run Scheme B with the Theorem 3.1 oracle truncated to each budget:
    correctness degrades once the budget falls below the [Θ(n)]
    requirement — the executable face of Theorem 3.2. *)
