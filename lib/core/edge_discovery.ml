module Binary = Bitstring.Binary

type edge = int * int

let fail fmt = Printf.ksprintf invalid_arg fmt

let edge u v =
  if u = v then fail "Edge_discovery.edge: %d = %d" u v;
  if u < 1 || v < 1 then fail "Edge_discovery.edge: labels must be positive";
  (min u v, max u v)

type instance = {
  n : int;
  specials : (edge * int) list;
  excluded : edge list;
}

let check_edge ~n (u, v) =
  if not (1 <= u && u < v && v <= n) then fail "Edge_discovery: edge (%d,%d) not in K*_%d" u v n

let make_instance ~n ~specials ~excluded =
  List.iter (fun (e, _) -> check_edge ~n e) specials;
  List.iter (check_edge ~n) excluded;
  let xs = List.map fst specials in
  let module ES = Set.Make (struct
    type t = edge

    let compare = compare
  end) in
  let xset = ES.of_list xs in
  if ES.cardinal xset <> List.length xs then fail "Edge_discovery: duplicate special edge";
  let yset = ES.of_list excluded in
  if not (ES.is_empty (ES.inter xset yset)) then fail "Edge_discovery: X and Y intersect";
  let labels = List.sort compare (List.map snd specials) in
  if labels <> List.init (List.length specials) (fun i -> i + 1) then
    fail "Edge_discovery: labels are not a permutation of 1..|X|";
  { n; specials; excluded }

let all_edges ~n =
  let acc = ref [] in
  for u = n downto 1 do
    for v = n downto u + 1 do
      acc := (u, v) :: !acc
    done
  done;
  !acc

let rec combinations k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
      List.map (fun c -> x :: c) (combinations (k - 1) rest) @ combinations k rest

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let enumerate_instances ~n ~x_size ~excluded =
  let allowed = List.filter (fun e -> not (List.mem e excluded)) (all_edges ~n) in
  let subsets = combinations x_size allowed in
  List.concat_map
    (fun subset ->
      List.map
        (fun perm -> make_instance ~n ~specials:(List.combine subset perm) ~excluded)
        (permutations (List.init x_size (fun i -> i + 1))))
    subsets

let sample_instances ~n ~x_size ~excluded ~count st =
  let allowed = Array.of_list (List.filter (fun e -> not (List.mem e excluded)) (all_edges ~n)) in
  if Array.length allowed < x_size then fail "Edge_discovery.sample_instances: not enough edges";
  List.init count (fun _ ->
      let pool = Array.copy allowed in
      for i = Array.length pool - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = pool.(i) in
        pool.(i) <- pool.(j);
        pool.(j) <- tmp
      done;
      let labels = Array.init x_size (fun i -> i + 1) in
      for i = x_size - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = labels.(i) in
        labels.(i) <- labels.(j);
        labels.(j) <- tmp
      done;
      let specials = List.init x_size (fun i -> (pool.(i), labels.(i))) in
      make_instance ~n ~specials ~excluded)

type answer = Regular | Special of int

type adversary = {
  mutable live : instance list;
  initial : int;
  x : int;
  adv_n : int;
  adv_excluded : edge list;
  decided : (edge, answer) Hashtbl.t;
  mutable t : int;
  mutable r : int;
  mutable found : (edge * int) list;
}

let adversary instances =
  match instances with
  | [] -> fail "Edge_discovery.adversary: empty family"
  | first :: rest ->
    List.iter
      (fun i ->
        if
          i.n <> first.n
          || List.length i.specials <> List.length first.specials
          || List.sort compare i.excluded <> List.sort compare first.excluded
        then fail "Edge_discovery.adversary: non-uniform family")
      rest;
    {
      live = instances;
      initial = List.length instances;
      x = List.length first.specials;
      adv_n = first.n;
      adv_excluded = first.excluded;
      decided = Hashtbl.create 64;
      t = 0;
      r = 0;
      found = [];
    }

let check_invariant adv =
  (* x_{t,r} ≥ |I|·(|X|-r)! / (2^t·|X|!), in log₂ space with slack for
     float rounding. *)
  let lhs = Float.log2 (float_of_int (List.length adv.live)) in
  let rhs =
    Float.log2 (float_of_int adv.initial)
    +. Binary.log2_factorial (adv.x - adv.r)
    -. float_of_int adv.t -. Binary.log2_factorial adv.x
  in
  if lhs < rhs -. 1e-6 then
    failwith
      (Printf.sprintf "Edge_discovery: counting invariant violated (t=%d r=%d live=%d)" adv.t
         adv.r (List.length adv.live))

let label_of e inst = List.assoc_opt e inst.specials

let probe adv e =
  check_edge ~n:adv.adv_n e;
  adv.t <- adv.t + 1;
  match Hashtbl.find_opt adv.decided e with
  | Some ans -> ans
  | None ->
    if List.mem e adv.adv_excluded then begin
      Hashtbl.replace adv.decided e Regular;
      Regular
    end
    else begin
      let jspecial, jregular = List.partition (fun i -> label_of e i <> None) adv.live in
      let ans =
        if List.length jspecial >= List.length jregular then begin
          (* Most popular label wins. *)
          let counts = Hashtbl.create 8 in
          List.iter
            (fun i ->
              match label_of e i with
              | Some l ->
                Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l))
              | None -> assert false)
            jspecial;
          let best_label, _ =
            Hashtbl.fold
              (fun l c (bl, bc) -> if c > bc || (c = bc && l < bl) then (l, c) else (bl, bc))
              counts (max_int, 0)
          in
          adv.live <- List.filter (fun i -> label_of e i = Some best_label) jspecial;
          adv.r <- adv.r + 1;
          adv.found <- (e, best_label) :: adv.found;
          Special best_label
        end
        else begin
          adv.live <- jregular;
          Regular
        end
      in
      Hashtbl.replace adv.decided e ans;
      check_invariant adv;
      ans
    end

let probes adv = adv.t

let discovered adv = List.rev adv.found

let active adv = List.length adv.live

let solved adv = adv.r = adv.x

let x_size adv = adv.x

let lower_bound adv =
  Float.log2 (float_of_int adv.initial) -. Binary.log2_factorial adv.x

type strategy = {
  strategy_name : string;
  next_probe : n:int -> x_size:int -> excluded:edge list -> history:(edge * answer) list -> edge;
}

let sequential =
  {
    strategy_name = "sequential";
    next_probe =
      (fun ~n ~x_size:_ ~excluded ~history ->
        let probed = List.map fst history in
        match
          List.find_opt
            (fun e -> (not (List.mem e excluded)) && not (List.mem e probed))
            (all_edges ~n)
        with
        | Some e -> e
        | None -> fail "sequential strategy: all edges probed");
  }

let random_strategy ~seed =
  let st = Random.State.make [| seed |] in
  {
    strategy_name = Printf.sprintf "random(%d)" seed;
    next_probe =
      (fun ~n ~x_size:_ ~excluded ~history ->
        let probed = List.map fst history in
        let candidates =
          List.filter
            (fun e -> (not (List.mem e excluded)) && not (List.mem e probed))
            (all_edges ~n)
        in
        match candidates with
        | [] -> fail "random strategy: all edges probed"
        | _ :: _ -> List.nth candidates (Random.State.int st (List.length candidates)));
  }

type outcome = {
  probes_used : int;
  found : (edge * int) list;
  bound : float;
}

let play adv strategy =
  let bound = lower_bound adv in
  let limit = (5 * adv.adv_n * adv.adv_n) + 10 in
  let rec loop history steps =
    if solved adv then { probes_used = probes adv; found = discovered adv; bound }
    else if steps > limit then failwith "Edge_discovery.play: strategy stalled"
    else begin
      let e =
        strategy.next_probe ~n:adv.adv_n ~x_size:adv.x ~excluded:adv.adv_excluded ~history
      in
      let ans = probe adv e in
      loop (history @ [ (e, ans) ]) (steps + 1)
    end
  in
  loop [] 0
