(** The auxiliary problem {e edge discovery} and the Lemma 2.1 adversary.

    An instance is a triple [(n, X, Y)]: [X] is a set of labeled special
    edges of [K*ₙ] and [Y] a disjoint set of excluded edges.  A scheme
    knows [n], [|X|] and [Y], probes edges one message at a time, and must
    discover [X] (every special edge together with its label).

    Lemma 2.1: on any uniform family [I] of instances (same [n], [|X|],
    [Y]), an adversary can always answer probes so that at least
    [log₂(|I| / |X|!)] messages are needed.  The adversary here is the
    proof's, implemented over an explicit instance family: on each probe it
    keeps the majority side (special vs regular), and when declaring an
    edge special it keeps the most popular label.  It self-checks the
    proof's invariant [x_{t,r} ≥ |I|·(|X|-r)! / (2^t·|X|!)] after every
    answer. *)

type edge = int * int
(** An edge of [K*ₙ] as an unordered pair of labels with [fst < snd]. *)

val edge : int -> int -> edge
(** Normalise a pair.  Raises [Invalid_argument] if the labels are
    equal or non-positive. *)

type instance = {
  n : int;
  specials : (edge * int) list;  (** [X]: special edges with labels [1…|X|] *)
  excluded : edge list;  (** [Y] *)
}

val make_instance : n:int -> specials:(edge * int) list -> excluded:edge list -> instance
(** Validates: edges within [K*ₙ], [X] and [Y] disjoint, labels a
    permutation of [1…|X|]. *)

val all_edges : n:int -> edge list
(** The [C(n,2)] edges of [K*ₙ]. *)

val enumerate_instances : n:int -> x_size:int -> excluded:edge list -> instance list
(** Every instance with the given parameters — all ordered choices of
    [x_size] special edges outside [excluded].  Intended for small [n]
    (the count is [C(C(n,2) - |Y|, x) · x!]). *)

val sample_instances :
  n:int -> x_size:int -> excluded:edge list -> count:int -> Random.State.t -> instance list
(** [count] instances sampled uniformly with replacement. *)

(** {1 The adversary} *)

type adversary

type answer = Regular | Special of int

val adversary : instance list -> adversary
(** Raises [Invalid_argument] on an empty or non-uniform family. *)

val probe : adversary -> edge -> answer
(** Answer a probe, discarding incompatible instances by the majority
    rule.  Probing an excluded edge answers [Regular] without any
    discarding (the scheme already knew).  Re-probing a decided edge
    repeats the recorded answer and still counts as a message.
    Raises [Failure] if the proof's counting invariant is violated
    (impossible if the implementation is correct). *)

val probes : adversary -> int
(** Messages sent so far ([t]). *)

val discovered : adversary -> (edge * int) list
(** Special edges revealed so far, with labels ([r] of them). *)

val active : adversary -> int
(** Number of still-active instances. *)

val solved : adversary -> bool
(** All [|X|] special edges have been revealed. *)

val x_size : adversary -> int

val lower_bound : adversary -> float
(** [log₂(|I| / |X|!)] for the family the adversary started from. *)

(** {1 Discovery strategies} *)

type strategy = {
  strategy_name : string;
  next_probe : n:int -> x_size:int -> excluded:edge list -> history:(edge * answer) list -> edge;
      (** Choose the next edge to probe given everything revealed so far.
          Must return an edge of [K*ₙ]. *)
}

val sequential : strategy
(** Probes edges in lexicographic order, skipping excluded and already
    probed ones. *)

val random_strategy : seed:int -> strategy
(** Probes a uniformly random unprobed, unexcluded edge. *)

type outcome = {
  probes_used : int;
  found : (edge * int) list;
  bound : float;  (** the Lemma 2.1 bound for the family played against *)
}

val play : adversary -> strategy -> outcome
(** Run the strategy against the adversary until all specials are
    discovered.  Raises [Failure] if the strategy stalls (returns an
    already-probed edge twice in a row more than [C(n,2)] times). *)
