(** Closed-form bounds from the paper, shared by tests and benches.

    Counting quantities that overflow machine integers are computed in
    log₂-space floats — the proofs themselves only ever compare logarithms
    of these quantities. *)

(** {1 Upper-bound budgets} *)

val wakeup_advice_upper : n:int -> int
(** The Theorem 2.1 budget [n·⌈log n⌉ + O(n log log n)]: the exact worst
    case of our encoding, [Σ_v (c(v)·⌈log n⌉ + 2#₂⌈log n⌉ + 2)] maximised
    over trees — i.e. [(n-1)·⌈log n⌉ + (n-1)·(2#₂(⌈log n⌉) + 2)]. *)

val broadcast_advice_upper : n:int -> int
(** Theorem 3.1: [8n]. *)

val light_tree_contribution_upper : n:int -> int
(** Claim 3.1: [4n]. *)

val wakeup_messages : n:int -> int
(** The Theorem 2.1 scheme sends exactly [n-1] messages. *)

val broadcast_messages_upper : n:int -> int
(** Scheme B: at most [2(n-1)] copies of [M] plus [n-1] hellos, [< 3n]. *)

(** {1 Lower-bound counting (Theorem 2.2)} *)

val log2_wakeup_instances : n:int -> float
(** [log₂ P] where [P = n!·C(C(n,2), n)] is the number of graphs
    [G_{n,S}] (Equation 2's left side, computed exactly in log space). *)

val log2_oracle_outputs : bits:int -> nodes:int -> float
(** [log₂ Q] where [Q] bounds the number of distinct advice functions an
    oracle of size [≤ bits] can produce on [nodes]-node graphs, using the
    paper's Equation 3 closed form [(q+1)·2^q·C(q+nodes, nodes)] —
    within [log₂(q+1)] bits of the exact count and O(1) to evaluate. *)

val log2_oracle_outputs_exact : bits:int -> nodes:int -> float
(** The exact count [log₂ Σ_{q'≤bits} 2^{q'}·C(q'+nodes-1, nodes-1)], by
    log-space summation — O(bits); used to validate the closed form. *)

val edge_discovery_lower_bound : log2_instances:float -> x_size:int -> float
(** Lemma 2.1: any scheme solving edge discovery on a uniform family of
    [2^{log2_instances}] instances with [|X| = x_size] special edges needs
    at least [log₂(|I|/|X|!)] messages. *)

val wakeup_message_lower_bound : n:int -> advice_bits:int -> float
(** The Theorem 2.2 pipeline assembled: on (2n)-node graphs [G_{n,S}],
    an oracle of [advice_bits] total bits leaves a uniform sub-family of
    [≥ P/Q] instances, so some instance needs
    [≥ log₂(P/Q) - log₂(n!)] messages.  Returns that bound (may be
    negative when the advice is generous — then the bound is vacuous). *)

(** {1 The Remark after Theorem 2.2}

    Subdividing [c·n] edges instead of [n] yields graphs with [(1+c)n]
    nodes and pushes the advice threshold towards the fraction [c/(c+1)]
    of [N log N] — hence the paper's upper bound [n log n + o(n log n)]
    is asymptotically optimal, constant included. *)

val log2_wakeup_instances_c : n:int -> c:int -> float
(** [log₂((cn)!·C(C(n,2), cn))] — the generalized Equation 2.  Requires
    [c·n ≤ C(n,2)]. *)

val wakeup_message_lower_bound_c : n:int -> c:int -> advice_bits:int -> float
(** The Theorem 2.2 pipeline on the [(1+c)n]-node family. *)

(** {1 Claim 2.1} *)

val log2_binomial_a_ab : a:int -> b:int -> float
(** [log₂ C(a(1+b), a)] — the left side of Claim 2.1. *)

val claim_2_1_holds : a:int -> b:int -> bool
(** Checks [C(a(1+b), a) ≤ (6b)^a] numerically in log space. *)

(** {1 Theorem 3.2 quantities} *)

val log2_broadcast_instances : n:int -> k:int -> float
(** [log₂(|X|!·P')] with [|X| = n/4k], [|Y| = 3n/4k]:
    the number of edge-discovery instances in the Claim 3.3 reduction
    ([P = |X|!·C(C(n,2) - |Y|, |X|)]). *)

val broadcast_message_lower_bound : n:int -> k:int -> float
(** Claim 3.3's target: [n(k-1)/8]. *)

(** {1 Helpers} *)

val ceil_log2 : int -> int
val bits2 : int -> int
(** Re-exports of {!Bitstring.Binary.ceil_log2} and
    {!Bitstring.Binary.bits} under the paper's names. *)
