module Bitbuf = Bitstring.Bitbuf
module Graph = Netgraph.Graph
module Spanning = Netgraph.Spanning

type node_output = {
  mutable parent_port : int option;
  mutable child_ports : int list;
  mutable has_output : bool;
}

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  tree : Netgraph.Spanning.t option;
  is_bfs : bool;
}

(* Claims ride as Hello (one bit); the construction token is Source. *)
let flood_scheme sink static =
  let out = { parent_port = None; child_ports = []; has_output = false } in
  sink static.Sim.History.id out;
  let all_ports = List.init static.Sim.History.degree (fun p -> p) in
  let adopted = ref static.Sim.History.is_source in
  let on_start () =
    if static.Sim.History.is_source then begin
      out.has_output <- true;
      List.map (fun p -> (Sim.Message.Source, p)) all_ports
    end
    else []
  in
  let on_receive msg ~port =
    match msg with
    | Sim.Message.Source ->
      if !adopted then []
      else begin
        adopted := true;
        out.parent_port <- Some port;
        out.has_output <- true;
        (* Claim the parent, then keep flooding. *)
        (Sim.Message.Hello, port)
        :: List.filter_map
             (fun p -> if p = port then None else Some (Sim.Message.Source, p))
             all_ports
      end
    | Sim.Message.Hello ->
      out.child_ports <- port :: out.child_ports;
      []
    | Sim.Message.Control _ -> []
  in
  { Sim.Scheme.on_start; on_receive }

let advised_scheme sink static =
  let parent_port, child_ports = Gossip.decode_advice static.Sim.History.advice in
  sink static.Sim.History.id { parent_port; child_ports; has_output = true };
  { Sim.Scheme.on_start = (fun () -> []); on_receive = (fun _ ~port:_ -> []) }

let assemble g ~source outputs =
  let n = Graph.n g in
  let parents = Array.make n None in
  try
    for v = 0 to n - 1 do
      let out = Hashtbl.find outputs (Graph.label g v) in
      if not out.has_output then raise Exit;
      match out.parent_port with
      | None -> if v <> source then raise Exit
      | Some p ->
        let parent, _ = Graph.endpoint g v p in
        parents.(v) <- Some parent;
        (* The parent must list the reverse port as a child. *)
        let parent_out = Hashtbl.find outputs (Graph.label g parent) in
        let _, q = Graph.endpoint g v p in
        if not (List.mem q parent_out.child_ports) then raise Exit
    done;
    Some (Spanning.of_parents g ~root:source parents)
  with Exit | Invalid_argument _ | Not_found -> None

let check_bfs g ~source tree =
  match tree with
  | None -> false
  | Some t ->
    let dist, _ = Netgraph.Traverse.bfs g ~root:source in
    Spanning.depth t = dist

let collect ?max_messages g scheduler ~advice ~advice_bits ~source make_scheme =
  let outputs : (int, node_output) Hashtbl.t = Hashtbl.create (Graph.n g) in
  let sink label out = Hashtbl.replace outputs label out in
  let result = Sim.Runner.run ?max_messages ~scheduler ~advice g ~source (make_scheme sink) in
  let tree = assemble g ~source outputs in
  { result; advice_bits; tree; is_bfs = check_bfs g ~source tree }

let flood_build ?(scheduler = Sim.Scheduler.Async_fifo) g ~source =
  let advice _ = Bitbuf.create () in
  let max_messages = (4 * Graph.m g) + (2 * Graph.n g) in
  collect ~max_messages g scheduler ~advice ~advice_bits:0 ~source flood_scheme

let advised_build ?(scheduler = Sim.Scheduler.Async_fifo) g ~source =
  let oracle = Gossip.oracle () in
  let advice = oracle.Oracles.Oracle.advise g ~source in
  collect g scheduler
    ~advice:(Oracles.Advice.get advice)
    ~advice_bits:(Oracles.Advice.size_bits advice)
    ~source advised_scheme
