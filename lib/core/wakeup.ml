module Bitbuf = Bitstring.Bitbuf
module Binary = Bitstring.Binary
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph
module Spanning = Netgraph.Spanning

type encoding = Paper | Paper_minimal | Gamma

let encoding_name = function
  | Paper -> "paper"
  | Paper_minimal -> "paper-minimal"
  | Gamma -> "gamma"

type tree_builder = Graph.t -> root:int -> Spanning.t

let encode_ports encoding ~n ports buf =
  match ports, encoding with
  | [], _ -> ()
  | _, Paper -> Codes.write_port_list buf ~width:(max 1 (Binary.ceil_log2 n)) ports
  | _, Paper_minimal ->
    let maxp = List.fold_left max 0 ports in
    Codes.write_port_list buf ~width:(Binary.bits maxp) ports
  | _, Gamma -> List.iter (Codes.write_gamma buf) ports

let decode_ports encoding buf =
  let r = Bitbuf.reader buf in
  match encoding with
  | Paper | Paper_minimal -> Codes.read_port_list r
  | Gamma ->
    let rec loop acc = if Bitbuf.at_end r then List.rev acc else loop (Codes.read_gamma r :: acc) in
    loop []

let decode_ports_result encoding buf =
  let r = Bitbuf.reader buf in
  match encoding with
  | Paper | Paper_minimal -> Codes.read_port_list_result r
  | Gamma -> Codes.read_gamma_list_result r

let oracle ?(tree = fun g ~root -> Spanning.bfs g ~root) ?(encoding = Paper) () =
  let name = Printf.sprintf "wakeup-thm2.1(%s)" (encoding_name encoding) in
  Oracles.Oracle.make ~name (fun g ~source ->
      let t = tree g ~root:source in
      let n = Graph.n g in
      Oracles.Advice.make
        (Array.init n (fun v ->
             let buf = Bitbuf.create () in
             encode_ports encoding ~n (Spanning.children_ports t v) buf;
             buf)))

(* [rev_map (fun p -> ...) ports] without the closure; advised order is
   not significant (the runner delivers each send independently), but we
   keep stream order anyway for trace stability. *)
let rec sends_of_ports = function
  | [] -> []
  | p :: rest -> (Sim.Message.Source, p) :: sends_of_ports rest

let nothing () = []

let scheme ?(encoding = Paper) () static =
  (* Capture the one field the node needs, not the whole [History]
     record: a million instantiations otherwise keep a million histories
     live for the length of the run, and the minor GC promotes them all.
     Same spirit for the closures themselves — the wake logic is inlined
     into [on_receive] rather than shared via a [wake] closure, and the
     non-source [on_start] is one closure for the whole run, so a
     non-source node's live footprint is one record, one closure and one
     ref.  Only the source (there is one) pays for an on-start
     closure. *)
  let advice = static.Sim.History.advice in
  let woken = ref false in
  let on_receive msg ~port:_ =
    match msg with
    | Sim.Message.Source when not !woken ->
      woken := true;
      sends_of_ports (decode_ports encoding advice)
    | Sim.Message.Source | Sim.Message.Hello | Sim.Message.Control _ -> []
  in
  let on_start =
    if static.Sim.History.is_source then (fun () ->
      woken := true;
      sends_of_ports (decode_ports encoding advice))
    else nothing
  in
  { Sim.Scheme.on_start; on_receive }

(* A decoded port list is only usable if the scheme could actually have
   been advised it: every port in range, none repeated.  Tampered advice
   that still parses but fails this check must also select the fallback,
   or the runner aborts on an out-of-range send. *)
let usable_ports ~degree ports =
  let seen = Array.make (max 1 degree) false in
  List.for_all
    (fun p ->
      p >= 0 && p < degree && not seen.(p)
      &&
      (seen.(p) <- true;
       true))
    ports

let hardened_scheme ?(encoding = Paper) ?(protect = Bitstring.Ecc.Raw) ?on_fallback ?on_corrected
    () static =
  let degree = static.Sim.History.degree in
  let fallback reason =
    (match on_fallback with Some f -> f static.Sim.History.id reason | None -> ());
    None
  in
  (* Detect-and-correct first: only when the ECC layer itself gives up,
     or the corrected payload still fails validation, pay for flooding. *)
  let advised =
    match Bitstring.Ecc.unprotect protect static.Sim.History.advice with
    | Error msg -> fallback ("ecc: " ^ msg)
    | Ok (payload, corrected) -> (
      match decode_ports_result encoding payload with
      | Ok ports when usable_ports ~degree ports ->
        if corrected > 0 then (
          match on_corrected with
          | Some f -> f static.Sim.History.id corrected
          | None -> ());
        Some ports
      | Ok _ -> fallback "unusable ports"
      | Error msg -> fallback msg)
  in
  let woken = ref false in
  let wake arrival =
    woken := true;
    match advised with
    | Some ports -> List.map (fun p -> (Sim.Message.Source, p)) ports
    | None ->
      (* Degraded mode: behave as one node of [Sim.Scheme.flooding] —
         correct on any connected graph, at the advice-free Θ(m) cost. *)
      List.filter_map
        (fun p -> if arrival = Some p then None else Some (Sim.Message.Source, p))
        (List.init degree (fun p -> p))
  in
  (* Recovery overlay: a link timeout means the neighbour crash-stopped,
     stranding whatever subtree the advised tree routed through it.  The
     detecting node re-disseminates the source message by flooding the
     [reflood] marker, which every hardened node forwards exactly once —
     ≤ 2m messages to re-cover the entire surviving component. *)
  let reflooded = ref false in
  let reflood_from arrival =
    if !reflooded then []
    else begin
      reflooded := true;
      List.filter_map
        (fun p -> if arrival = Some p then None else Some (Sim.Message.reflood, p))
        (List.init degree (fun p -> p))
    end
  in
  let on_start () = if static.Sim.History.is_source then wake None else [] in
  let on_receive msg ~port =
    match msg with
    | Sim.Message.Source when not !woken -> wake (Some port)
    | Sim.Message.Control _ when Sim.Message.is_timeout msg ->
      (* Only a woken node can have sent the message that timed out, so
         the wakeup restriction is preserved. *)
      if !woken then reflood_from (Some port) else []
    | Sim.Message.Control _ when Sim.Message.is_reflood msg ->
      let wake_sends = if !woken then [] else wake (Some port) in
      wake_sends @ reflood_from (Some port)
    | Sim.Message.Source | Sim.Message.Hello | Sim.Message.Control _ -> []
  in
  { Sim.Scheme.on_start; on_receive }

type outcome = { result : Sim.Runner.result; advice_bits : int; tree_ok : bool }

let run ?(tree = fun g ~root -> Spanning.bfs g ~root) ?(encoding = Paper)
    ?(scheduler = Sim.Scheduler.Async_fifo) ?(sinks = []) ?(shards = 1) ?registry g ~source =
  let t = tree g ~root:source in
  let tree_ok = Spanning.check g t = Ok () in
  let o = oracle ~tree:(fun _ ~root:_ -> t) ~encoding () in
  let advice = o.Oracles.Oracle.advise g ~source in
  let advice_bits = Oracles.Advice.size_bits advice in
  let factory = Sim.Scheme.check_wakeup (scheme ~encoding ()) in
  let result =
    Sim.Shard.run ~scheduler ~sinks ~shards ~advice:(Oracles.Advice.get advice) g ~source factory
  in
  Obs.Registry.note ?registry
    (Sim.Runner.telemetry ~protocol:"wakeup" ~scheduler ~advice_bits result);
  { result; advice_bits; tree_ok }
