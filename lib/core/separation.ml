type measurement = {
  family : string;
  n : int;
  m : int;
  wakeup_bits : int;
  broadcast_bits : int;
  bits_ratio : float;
  wakeup_messages : int;
  broadcast_messages : int;
  wakeup_ok : bool;
  broadcast_ok : bool;
}

let measure fam ~n ~seed =
  let g = Netgraph.Families.build fam ~n ~seed in
  let source = 0 in
  let w = Wakeup.run g ~source in
  let b = Broadcast.run g ~source in
  let actual_n = Netgraph.Graph.n g in
  {
    family = Netgraph.Families.name fam;
    n = actual_n;
    m = Netgraph.Graph.m g;
    wakeup_bits = w.Wakeup.advice_bits;
    broadcast_bits = b.Broadcast.advice_bits;
    bits_ratio = float_of_int w.Wakeup.advice_bits /. float_of_int (max 1 b.Broadcast.advice_bits);
    wakeup_messages = w.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
    broadcast_messages = b.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent;
    wakeup_ok =
      w.Wakeup.result.Sim.Runner.all_informed
      && w.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent = actual_n - 1;
    broadcast_ok =
      b.Broadcast.result.Sim.Runner.all_informed
      && b.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent < 3 * actual_n;
  }

let sweep fam ~ns ~seed = List.map (fun n -> measure fam ~n ~seed) ns

let ratio_growth measurements =
  let xs = List.map (fun m -> float_of_int m.n) measurements in
  let ys = List.map (fun m -> m.bits_ratio) measurements in
  Sim.Metrics.loglog_slope ~xs ~ys
