module Graph = Netgraph.Graph
module Gen = Netgraph.Gen
module Transform = Netgraph.Transform

let wakeup_hard_graph ~n ~seed =
  if n < 3 then invalid_arg "Lower_bound.wakeup_hard_graph: n < 3";
  let st = Random.State.make [| seed; n; 0x5eed |] in
  let host = Gen.complete n in
  let chosen = Transform.choose_edges host ~count:n st in
  (Transform.subdivide host ~chosen, chosen)

type wakeup_point = {
  wp_n : int;
  informed_messages : int;
  informed_bits : int;
  oblivious_messages : int;
  counting_bound : float;
  capped_bits : int;
  threshold_bits : int;
  threshold_ratio : float;
}

let min_advice_for_linear_wakeup ~n ~budget_factor =
  let target = budget_factor *. float_of_int (2 * n) in
  let vacuous bits = Bounds.wakeup_message_lower_bound ~n ~advice_bits:bits <= target in
  (* The bound is monotone decreasing in the advice budget; bisect. *)
  let hi =
    let rec grow hi = if vacuous hi then hi else grow (2 * hi) in
    grow 16
  in
  let rec bisect lo hi =
    (* Invariant: not (vacuous lo) && vacuous hi. *)
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if vacuous mid then bisect lo mid else bisect mid hi
  in
  if vacuous 0 then 0 else bisect 0 hi

let wakeup_experiment ~n ~seed =
  let g, _ = wakeup_hard_graph ~n ~seed in
  let source = 0 in
  let informed = Wakeup.run g ~source in
  if not informed.Wakeup.result.Sim.Runner.all_informed then
    failwith "Lower_bound.wakeup_experiment: informed wakeup failed";
  let advice_free v =
    ignore v;
    Bitstring.Bitbuf.create ()
  in
  let flood = Sim.Runner.run ~advice:advice_free g ~source Sim.Scheme.flooding in
  if not flood.Sim.Runner.all_informed then
    failwith "Lower_bound.wakeup_experiment: flooding failed";
  let two_n = 2 * n in
  let capped_bits =
    int_of_float (float_of_int two_n *. Float.log2 (float_of_int two_n) /. 3.0)
  in
  let threshold_bits = min_advice_for_linear_wakeup ~n ~budget_factor:3.0 in
  let threshold_ratio =
    float_of_int threshold_bits
    /. (float_of_int two_n *. Float.log2 (float_of_int two_n))
  in
  {
    wp_n = n;
    informed_messages = informed.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
    informed_bits = informed.Wakeup.advice_bits;
    oblivious_messages = flood.Sim.Runner.stats.Sim.Runner.sent;
    counting_bound = Bounds.wakeup_message_lower_bound ~n ~advice_bits:capped_bits;
    capped_bits;
    threshold_bits;
    threshold_ratio;
  }

let wakeup_hard_graph_c ~n ~c ~seed =
  if n < 3 then invalid_arg "Lower_bound.wakeup_hard_graph_c: n < 3";
  let st = Random.State.make [| seed; n; c; 0x5eed |] in
  let host = Gen.complete n in
  let chosen = Transform.choose_edges host ~count:(c * n) st in
  (Transform.subdivide host ~chosen, chosen)

let min_advice_for_linear_wakeup_c ~n ~c ~budget_factor =
  let nodes = (1 + c) * n in
  let target = budget_factor *. float_of_int nodes in
  let vacuous bits = Bounds.wakeup_message_lower_bound_c ~n ~c ~advice_bits:bits <= target in
  let hi =
    let rec grow hi = if vacuous hi then hi else grow (2 * hi) in
    grow 16
  in
  let rec bisect lo hi =
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if vacuous mid then bisect lo mid else bisect mid hi
  in
  if vacuous 0 then 0 else bisect 0 hi

let broadcast_hard_graph ~n ~k ~seed =
  if k < 3 then invalid_arg "Lower_bound.broadcast_hard_graph: k < 3";
  if n mod k <> 0 then invalid_arg "Lower_bound.broadcast_hard_graph: k must divide n";
  let st = Random.State.make [| seed; n; k; 0xc11c |] in
  let host = Gen.complete n in
  let count = n / k in
  let chosen = Transform.choose_edges host ~count st in
  let missing = Transform.clique_pairs ~k ~count st in
  (Transform.substitute_cliques host ~k ~chosen ~missing, chosen, missing)

type broadcast_point = {
  bp_n : int;
  bp_k : int;
  advised_messages : int;
  advised_bits : int;
  starved_messages : int;
  clique_bound : float;
  starved_completes : bool;
}

let broadcast_experiment ~n ~k ~seed =
  let g, _, _ = broadcast_hard_graph ~n ~k ~seed in
  let source = 0 in
  let advised = Broadcast.run g ~source in
  if not advised.Broadcast.result.Sim.Runner.all_informed then
    failwith "Lower_bound.broadcast_experiment: advised broadcast failed";
  let advice_free v =
    ignore v;
    Bitstring.Bitbuf.create ()
  in
  let flood = Sim.Runner.run ~advice:advice_free g ~source Sim.Scheme.flooding in
  {
    bp_n = n;
    bp_k = k;
    advised_messages = advised.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent;
    advised_bits = advised.Broadcast.advice_bits;
    starved_messages = flood.Sim.Runner.stats.Sim.Runner.sent;
    clique_bound = Bounds.broadcast_message_lower_bound ~n ~k;
    starved_completes = flood.Sim.Runner.all_informed;
  }

type starvation_point = {
  sv_budget : int;
  sv_messages : int;
  sv_informed : int;
  sv_completed : bool;
}

let starvation_sweep g ~source ~budgets =
  let oracle = Broadcast.oracle () in
  List.map
    (fun budget ->
      let truncated = Oracles.Oracle.truncate oracle ~budget in
      let advice = truncated.Oracles.Oracle.advise g ~source in
      (* A truncated string may no longer parse; a node that cannot parse
         its advice behaves as if it had none. *)
      let safe_advice v =
        let buf = Oracles.Advice.get advice v in
        match Broadcast.decode_known_ports Broadcast.Marked buf with
        | ports ->
          let degree = Graph.degree g v in
          if List.for_all (fun p -> p >= 0 && p < degree) ports then buf
          else Bitstring.Bitbuf.create ()
        | exception _ -> Bitstring.Bitbuf.create ()
      in
      let result = Sim.Runner.run ~advice:safe_advice g ~source (Broadcast.scheme ()) in
      let informed_count =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 result.Sim.Runner.informed
      in
      {
        sv_budget = budget;
        sv_messages = result.Sim.Runner.stats.Sim.Runner.sent;
        sv_informed = informed_count;
        sv_completed = result.Sim.Runner.all_informed;
      })
    budgets
