(** Leader election under the oracle-size measure.

    A contrast point for the paper's thesis that minimum oracle size
    measures task difficulty: on labeled networks, election is {e cheap}
    in knowledge even when it is expensive in messages, and the oracle
    collapses the message cost with a single bit.

    - {!max_finding}: advice-free election by maximum-label flooding —
      works on any labeled connected network, [O(n·m)] messages worst
      case.
    - {!with_marked_leader}: the 1-bit oracle marks the maximum-label
      node; election plus announcement then costs at most [2m] messages
      (exactly [n+1] on a ring).  Total oracle size: {e one bit} — the
      difficulty of election, in the paper's measure, is O(1), versus
      Θ(n) for efficient broadcast and Θ(n log n) for efficient wakeup.
    - {!anonymous_attempt}: the classic impossibility, executable: on an
      anonymous ring every deterministic scheme keeps all nodes in
      identical states, so either nobody or everybody claims leadership
      (Angluin; see the paper's [10] for the knowledge angle). *)

type role = Leader | Follower | Undecided

val role_name : role -> string

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  roles : role array;
  leader : int option;  (** the unique leader's node index, if unique *)
  ok : bool;  (** exactly one leader, and it has the maximum label *)
}

val max_finding :
  ?scheduler:Sim.Scheduler.t ->
  ?sinks:Obs.Sink.t list ->
  ?registry:Obs.Registry.t ->
  Netgraph.Graph.t ->
  outcome
(** Advice-free flooding election.  Telemetry streams into [sinks]; after
    quiescence one {!Obs.Event.Decide} per node reports its final role,
    and a protocol record named ["election-max-finding"] is noted into
    [registry] (default: {!Obs.Registry.default}). *)

val with_marked_leader :
  ?scheduler:Sim.Scheduler.t ->
  ?sinks:Obs.Sink.t list ->
  ?registry:Obs.Registry.t ->
  Netgraph.Graph.t ->
  outcome
(** Election from the 1-bit oracle.  Telemetry as in {!max_finding}, with
    the protocol record named ["election-marked"]. *)

val marked_leader_oracle : Oracles.Oracle.t
(** The oracle itself: the string ["1"] to the maximum-label node, empty
    strings elsewhere — total size 1 bit. *)

val anonymous_attempt : n:int -> role array
(** Run max-finding on an [n]-cycle with all identities hidden (every node
    sees id 0): returns the per-node roles, which are provably uniform —
    never exactly one leader for [n ≥ 2]. *)
