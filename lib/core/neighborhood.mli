(** Wakeup from radius-ρ neighborhood knowledge — the traditional
    "particular item of information" the paper's introduction contrasts
    with its quantitative oracle measure (the Awerbuch–Goldreich–Peleg–
    Vainish trade-off [1]: with topology known to radius ρ, wakeup costs
    Θ(min(m, n^{1+Θ(1)/ρ})) messages).

    The oracle hands every node its ball of radius ρ (ρ = 0: nothing;
    ρ = 1: the labels behind each port; ρ ≥ 2: additionally the adjacency
    lists of all nodes within distance ρ-1).  The wakeup algorithm is a
    token DFS: the token carries the set of visited labels, and a holder
    that knows its neighbors' labels never probes a visited one.

    Outcome at the two ends of the trade-off, measured in E13:
    ρ = 0 forces blind probing (Θ(m) messages); ρ = 1 already achieves
    [2(n-1)] messages — while the advice jumps from 0 to Θ(m log n) bits,
    and grows steeply with ρ for no further message gain.  Oracle size,
    not radius, is the right budget — the paper's point. *)

val oracle : rho:int -> Oracles.Oracle.t
(** The radius-ρ ball oracle.  [rho = 0] assigns empty strings. *)

val decode_port_labels : degree:int -> Bitstring.Bitbuf.t -> int * int list
(** [(rho, neighbor labels in port order)] — the layer-1 knowledge of a
    node with the given degree; empty advice decodes to [(0, [])].
    Exposed for tests. *)

val scheme : Sim.Scheme.factory
(** Token-DFS wakeup.  Works with the advice of any radius: with ρ ≥ 1 it
    skips visited neighbors, with ρ = 0 it probes blindly. *)

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  rho : int;
}

val run :
  ?scheduler:Sim.Scheduler.t -> rho:int -> Netgraph.Graph.t -> source:int -> outcome
