module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph

type role = Leader | Follower | Undecided

let role_name = function Leader -> "leader" | Follower -> "follower" | Undecided -> "undecided"

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  roles : role array;
  leader : int option;
  ok : bool;
}

let encode_label l =
  let buf = Bitbuf.create () in
  Codes.write_gamma buf l;
  buf

let decode_label buf = Codes.read_gamma (Bitbuf.reader buf)

(* Maximum-label flooding: every node floods its label; bigger labels
   overwrite and propagate; when the network quiesces, exactly the
   maximum-label node still believes in itself. *)
let max_finding_scheme sink static =
  let self = static.Sim.History.id in
  let best = ref self in
  sink self (fun () -> if !best = self then Leader else Follower);
  let all_ports = List.init static.Sim.History.degree (fun p -> p) in
  let flood_except port l =
    List.filter_map
      (fun p -> if Some p = port then None else Some (Sim.Message.Control (encode_label l), p))
      all_ports
  in
  let on_start () = flood_except None self in
  let on_receive msg ~port =
    match msg with
    | Sim.Message.Control payload ->
      let l = decode_label payload in
      if l > !best then begin
        best := l;
        flood_except (Some port) l
      end
      else []
    | Sim.Message.Source | Sim.Message.Hello -> []
  in
  { Sim.Scheme.on_start; on_receive }

let marked_leader_oracle =
  Oracles.Oracle.make ~name:"marked-leader(1 bit)" (fun g ~source:_ ->
      let best = ref 0 in
      for v = 1 to Graph.n g - 1 do
        if Graph.label g v > Graph.label g !best then best := v
      done;
      Oracles.Advice.make
        (Array.init (Graph.n g) (fun v ->
             let buf = Bitbuf.create () in
             if v = !best then Bitbuf.add_bit buf true;
             buf)))

(* The marked node announces; everyone else forwards the first
   announcement. *)
let marked_scheme sink static =
  let self = static.Sim.History.id in
  let marked = not (Bitbuf.is_empty static.Sim.History.advice) in
  let role = ref (if marked then Leader else Undecided) in
  sink self (fun () -> !role);
  let all_ports = List.init static.Sim.History.degree (fun p -> p) in
  let announce_except port l =
    List.filter_map
      (fun p -> if Some p = port then None else Some (Sim.Message.Control (encode_label l), p))
      all_ports
  in
  let on_start () = if marked then announce_except None self else [] in
  let on_receive msg ~port =
    match msg with
    | Sim.Message.Control payload ->
      if !role = Undecided then begin
        role := Follower;
        announce_except (Some port) (decode_label payload)
      end
      else []
    | Sim.Message.Source | Sim.Message.Hello -> []
  in
  { Sim.Scheme.on_start; on_receive }

let collect ?max_messages ?(sinks = []) ?registry ~protocol g scheduler ~advice ~advice_bits
    make_scheme =
  let n = Graph.n g in
  let cells : (int * (unit -> role)) list ref = ref [] in
  let sink label get = cells := (label, get) :: !cells in
  let result =
    Sim.Runner.run ?max_messages ~scheduler ~sinks ~advice g ~source:0 (make_scheme sink)
  in
  let roles =
    Array.init n (fun v ->
        match List.assoc_opt (Graph.label g v) !cells with
        | Some get -> get ()
        | None -> Undecided)
  in
  let leaders = ref [] in
  Array.iteri (fun v r -> if r = Leader then leaders := v :: !leaders) roles;
  let leader = match !leaders with [ v ] -> Some v | [] | _ :: _ :: _ -> None in
  let max_label_node =
    let best = ref 0 in
    for v = 1 to n - 1 do
      if Graph.label g v > Graph.label g !best then best := v
    done;
    !best
  in
  let ok = leader = Some max_label_node in
  (* Decisions are protocol-level facts the runner cannot see; stamp them
     with the final sequence number and round of the run they conclude. *)
  if sinks <> [] then
    Array.iteri
      (fun v r ->
        let ev =
          {
            Obs.Event.seq = result.Sim.Runner.stats.Sim.Runner.sent;
            round = result.Sim.Runner.stats.Sim.Runner.rounds;
            kind = Obs.Event.Decide (v, role_name r);
          }
        in
        List.iter (fun s -> Obs.Sink.emit s ev) sinks)
      roles;
  Obs.Registry.note ?registry
    (Sim.Runner.telemetry ~protocol ~scheduler ~completed:ok ~advice_bits result);
  { result; advice_bits; roles; leader; ok }

let max_finding ?(scheduler = Sim.Scheduler.Async_fifo) ?(sinks = []) ?registry g =
  let advice _ = Bitbuf.create () in
  (* Max-label flooding can legitimately need Theta(n*m) messages. *)
  let max_messages = 20 * Graph.n g * Graph.m g in
  collect ~max_messages ~sinks ?registry ~protocol:"election-max-finding" g scheduler ~advice
    ~advice_bits:0 max_finding_scheme

let with_marked_leader ?(scheduler = Sim.Scheduler.Async_fifo) ?(sinks = []) ?registry g =
  let advice = marked_leader_oracle.Oracles.Oracle.advise g ~source:0 in
  collect ~sinks ?registry ~protocol:"election-marked" g scheduler
    ~advice:(Oracles.Advice.get advice)
    ~advice_bits:(Oracles.Advice.size_bits advice)
    marked_scheme

let anonymous_attempt ~n =
  let g = Netgraph.Gen.cycle n in
  let roles = ref [] in
  let sink _label get = roles := get :: !roles in
  (* Hide identities: every node sees id 0. *)
  let anonymised static = max_finding_scheme sink { static with Sim.History.id = 0 } in
  let advice _ = Bitbuf.create () in
  ignore (Sim.Runner.run ~scheduler:Sim.Scheduler.Synchronous ~advice g ~source:0 anonymised);
  Array.of_list (List.map (fun get -> get ()) !roles)
