module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph
module Spanning = Netgraph.Spanning
module IS = Set.Make (Int)

let encode_advice buf ~parent ~children =
  (match parent with
  | None -> Bitbuf.add_bit buf false
  | Some p ->
    Bitbuf.add_bit buf true;
    Codes.write_gamma buf p);
  Codes.write_gamma buf (List.length children);
  List.iter (Codes.write_gamma buf) children

let decode_advice buf =
  if Bitbuf.is_empty buf then (None, [])
  else begin
    let r = Bitbuf.reader buf in
    let parent = if Bitbuf.read_bit r then Some (Codes.read_gamma r) else None in
    let count = Codes.read_gamma r in
    (parent, List.init count (fun _ -> Codes.read_gamma r))
  end

let oracle ?(tree = fun g ~root -> Spanning.bfs g ~root) () =
  Oracles.Oracle.make ~name:"gossip-tree" (fun g ~source ->
      let t = tree g ~root:source in
      Oracles.Advice.make
        (Array.init (Graph.n g) (fun v ->
             let buf = Bitbuf.create () in
             let parent = Option.map snd t.Spanning.parent.(v) in
             encode_advice buf ~parent ~children:(Spanning.children_ports t v);
             buf)))

let encode_rumors set =
  let buf = Bitbuf.create () in
  Codes.write_gamma buf (IS.cardinal set);
  IS.iter (fun l -> Codes.write_gamma buf l) set;
  buf

let decode_rumors buf =
  let r = Bitbuf.reader buf in
  let count = Codes.read_gamma r in
  let rec loop acc k = if k = 0 then acc else loop (IS.add (Codes.read_gamma r) acc) (k - 1) in
  loop IS.empty count

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  learned : int list array;
  complete : bool;
}

(* Convergecast-then-broadcast over the advised tree. *)
let tree_scheme sink static =
  let parent, children = decode_advice static.Sim.History.advice in
  let rumors = ref (IS.singleton static.Sim.History.id) in
  let pending = ref (List.length children) in
  sink static.Sim.History.id rumors;
  let send_up () =
    match parent with
    | Some p -> [ (Sim.Message.Control (encode_rumors !rumors), p) ]
    | None -> []
  in
  let send_down () =
    List.map (fun p -> (Sim.Message.Control (encode_rumors !rumors), p)) children
  in
  let on_start () = if !pending = 0 then if parent = None then send_down () else send_up () else [] in
  let on_receive msg ~port =
    match msg with
    | Sim.Message.Control payload ->
      rumors := IS.union !rumors (decode_rumors payload);
      if Some port = parent then send_down ()
      else begin
        (* a child reported *)
        pending := !pending - 1;
        if !pending = 0 then if parent = None then send_down () else send_up () else []
      end
    | Sim.Message.Source | Sim.Message.Hello -> []
  in
  { Sim.Scheme.on_start; on_receive }

let flooding_scheme sink static =
  let rumors = ref (IS.singleton static.Sim.History.id) in
  sink static.Sim.History.id rumors;
  let all_ports = List.init static.Sim.History.degree (fun p -> p) in
  let broadcast_except port =
    let payload = encode_rumors !rumors in
    List.filter_map
      (fun p -> if Some p = port then None else Some (Sim.Message.Control (Bitbuf.copy payload), p))
      all_ports
  in
  let on_start () = broadcast_except None in
  let on_receive msg ~port =
    match msg with
    | Sim.Message.Control payload ->
      let incoming = decode_rumors payload in
      if IS.subset incoming !rumors then []
      else begin
        rumors := IS.union !rumors incoming;
        broadcast_except (Some port)
      end
    | Sim.Message.Source | Sim.Message.Hello -> []
  in
  { Sim.Scheme.on_start; on_receive }

let collect ?max_messages ?(sinks = []) ?registry ~protocol g scheduler ~advice ~advice_bits
    ~source make_scheme =
  let n = Graph.n g in
  let cells : (int, IS.t ref) Hashtbl.t = Hashtbl.create n in
  let sink label rumors = Hashtbl.replace cells label rumors in
  let result =
    Sim.Runner.run ?max_messages ~scheduler ~sinks ~advice g ~source (make_scheme sink)
  in
  let learned =
    Array.init n (fun v ->
        match Hashtbl.find_opt cells (Graph.label g v) with
        | Some r -> IS.elements !r
        | None -> [])
  in
  let complete = Array.for_all (fun l -> List.length l = n) learned in
  Obs.Registry.note ?registry
    (Sim.Runner.telemetry ~protocol ~scheduler ~completed:complete ~advice_bits result);
  { result; advice_bits; learned; complete }

let run ?(tree = fun g ~root -> Spanning.bfs g ~root) ?(scheduler = Sim.Scheduler.Async_fifo)
    ?(sinks = []) ?registry g ~source =
  let o = oracle ~tree () in
  let advice = o.Oracles.Oracle.advise g ~source in
  collect ~sinks ?registry ~protocol:"gossip-tree" g scheduler
    ~advice:(Oracles.Advice.get advice)
    ~advice_bits:(Oracles.Advice.size_bits advice)
    ~source tree_scheme

let run_flooding ?(scheduler = Sim.Scheduler.Async_fifo) ?(sinks = []) ?registry g ~source =
  let advice _ = Bitbuf.create () in
  (* Flooding gossip legitimately needs Θ(n·m) messages. *)
  let max_messages = 40 * Netgraph.Graph.n g * Netgraph.Graph.m g in
  collect ~max_messages ~sinks ?registry ~protocol:"gossip-flooding" g scheduler ~advice
    ~advice_bits:0 ~source flooding_scheme
