module B = Numeric.Bignat

let wakeup_instances ~n =
  let pairs = n * (n - 1) / 2 in
  B.mul (B.factorial n) (B.binomial pairs n)

let oracle_outputs ~bits ~nodes =
  let rec loop q acc =
    if q > bits then acc
    else
      loop (q + 1)
        (B.add acc (B.mul (B.pow2 q) (B.binomial (q + nodes - 1) (nodes - 1))))
  in
  loop 0 B.zero

let edge_discovery_instances ~n ~x_size ~excluded =
  let pairs = n * (n - 1) / 2 in
  B.mul (B.factorial x_size) (B.binomial (pairs - excluded) x_size)

let log2_wakeup_instances ~n = B.log2 (wakeup_instances ~n)

let log2_oracle_outputs ~bits ~nodes = B.log2 (oracle_outputs ~bits ~nodes)
