module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph
module Spanning = Netgraph.Spanning

type tree_builder = Graph.t -> root:int -> Spanning.t

type encoding = Marked | Gamma

let encoding_name = function Marked -> "marked" | Gamma -> "gamma"

(* For every tree edge {u,v}, hand w(e) = min(pu, pv) to the endpoint whose
   port number equals w(e); a pu = pv tie goes to the smaller index. *)
let weight_assignment g tree =
  let out = Array.make (Graph.n g) [] in
  List.iter
    (fun e ->
      let w = Graph.edge_weight g e in
      let x = if e.Graph.pu = w then e.Graph.u else e.Graph.v in
      out.(x) <- w :: out.(x))
    (Spanning.edges tree);
  Array.map List.rev out

let encode_weights encoding ws buf =
  match encoding with
  | Marked -> Codes.write_marked_list buf ws
  | Gamma -> List.iter (Codes.write_gamma buf) ws

let decode_known_ports encoding buf =
  let r = Bitbuf.reader buf in
  match encoding with
  | Marked -> Codes.read_marked_list r
  | Gamma ->
    let rec loop acc = if Bitbuf.at_end r then List.rev acc else loop (Codes.read_gamma r :: acc) in
    loop []

let decode_known_ports_result encoding buf =
  let r = Bitbuf.reader buf in
  match encoding with
  | Marked -> Codes.read_marked_list_result r
  | Gamma -> Codes.read_gamma_list_result r

let oracle ?(tree = fun g ~root -> Spanning.light g ~root) ?(encoding = Marked) () =
  let name = Printf.sprintf "broadcast-thm3.1(%s)" (encoding_name encoding) in
  Oracles.Oracle.make ~name (fun g ~source ->
      let t = tree g ~root:source in
      let weights = weight_assignment g t in
      Oracles.Advice.make
        (Array.map
           (fun ws ->
             let buf = Bitbuf.create () in
             encode_weights encoding ws buf;
             buf)
           weights))

(* Scheme B.  kx = known incident ports; sx = ports through which M has
   transited (sent or received); informed = has M.

   The state lives as two small sorted port lists, not functional sets
   and not a per-port bitmap: [pending] holds kx \ sx in ascending port
   order (the order [Set.elements] used to give, so traces are
   unchanged), [retired] holds kx ∩ sx.  kx is tiny — the advised tree
   ports plus ports the message transited — so membership is an O(|kx|)
   scan.  The previous degree-sized membership bitmap allocated Θ(deg)
   bytes per node, which on a clique is Θ(n²) bytes across the run:
   measured ~190 minor words per message at n = 2000, all of it that
   bitmap.  A flush still hands off [pending] whole instead of paying a
   diff/union/elements round trip per delivery — the set churn, not the
   runner, dominated the broadcast profile at n = 10^5. *)
let rec sends_to msg = function
  | [] -> []
  | p :: rest -> (msg, p) :: sends_to msg rest

let rec insert_port p l =
  match l with
  | [] -> [ p ]
  | q :: rest -> if p < q then p :: l else if p = q then l else q :: insert_port p rest

let rec remove_port p = function
  | [] -> []
  | q :: rest -> if q = p then rest else q :: remove_port p rest

let rec mem_port p = function
  | [] -> false
  | q :: rest -> q = p || (q < p && mem_port p rest)

(* Merge two ascending lists (duplicates cannot arise: pending and
   retired are disjoint by construction). *)
let rec merge_ports a b =
  match a, b with
  | [], l | l, [] -> l
  | p :: ra, q :: _ when p < q -> p :: merge_ports ra b
  | _, q :: rb -> q :: merge_ports a rb

let scheme ?(encoding = Marked) () static =
  let advice = static.Sim.History.advice in
  let is_source = static.Sim.History.is_source in
  let pending = ref (List.sort_uniq compare (decode_known_ports encoding advice)) in
  (* Note an advised port beyond the degree stays in [pending]: sending
     on it aborts the run exactly as it did when kx was a set.  It can
     never collide with a queried port (arrival ports are < degree). *)
  let retired = ref [] in
  let informed = ref is_source in
  let is_known p = mem_port p !pending || mem_port p !retired in
  let flush () =
    if !informed then begin
      let fresh = !pending in
      pending := [];
      (* Flushed ports stay in kx (they are now also in sx). *)
      retired := merge_ports !retired fresh;
      sends_to Sim.Message.Source fresh
    end
    else []
  in
  let on_start () = if is_source then flush () else sends_to Sim.Message.Hello !pending in
  let on_receive msg ~port =
    match msg with
    | Sim.Message.Source ->
      (* The informer's port joins kx and sx at once: an advised port we
         have not yet used is retired unsent, a new port never becomes
         pending at all. *)
      if mem_port port !pending then begin
        pending := remove_port port !pending;
        retired := insert_port port !retired
      end
      else if not (mem_port port !retired) then retired := insert_port port !retired;
      informed := true;
      flush ()
    | Sim.Message.Hello ->
      if not (is_known port) then pending := insert_port port !pending;
      flush ()
    | Sim.Message.Control _ -> []
  in
  { Sim.Scheme.on_start; on_receive }

let usable_ports ~degree ports =
  let seen = Array.make (max 1 degree) false in
  List.for_all
    (fun p ->
      p >= 0 && p < degree && not seen.(p)
      &&
      (seen.(p) <- true;
       true))
    ports

let hardened_scheme ?(encoding = Marked) ?(protect = Bitstring.Ecc.Raw) ?on_fallback ?on_corrected
    () static =
  let module IS = Set.Make (Int) in
  let degree = static.Sim.History.degree in
  let fallback reason =
    (match on_fallback with Some f -> f static.Sim.History.id reason | None -> ());
    None
  in
  (* Detect-and-correct first: only when the ECC layer itself gives up,
     or the corrected payload still fails validation, pay for flooding. *)
  let advised =
    match Bitstring.Ecc.unprotect protect static.Sim.History.advice with
    | Error msg -> fallback ("ecc: " ^ msg)
    | Ok (payload, corrected) -> (
      match decode_known_ports_result encoding payload with
      | Ok ports when usable_ports ~degree ports ->
        if corrected > 0 then (
          match on_corrected with
          | Some f -> f static.Sim.History.id corrected
          | None -> ());
        Some ports
      | Ok _ -> fallback "unusable ports"
      | Error msg -> fallback msg)
  in
  (* Recovery overlay, shared by both modes: on a link timeout an
     informed node re-disseminates the source message by flooding the
     [reflood] marker; every hardened node forwards it exactly once
     (≤ 2m messages), which re-covers the surviving component whatever
     the failure stranded. *)
  let reflooded = ref false in
  let reflood_from arrival =
    if !reflooded then []
    else begin
      reflooded := true;
      List.filter_map
        (fun p -> if arrival = Some p then None else Some (Sim.Message.reflood, p))
        (List.init degree (fun p -> p))
    end
  in
  match advised with
  | Some ports ->
    (* Scheme B as written, on validated advice. *)
    let kx = ref (IS.of_list ports) in
    let sx = ref IS.empty in
    let informed = ref static.Sim.History.is_source in
    let flush () =
      if !informed then begin
        let fresh = IS.diff !kx !sx in
        sx := IS.union !sx fresh;
        List.map (fun p -> (Sim.Message.Source, p)) (IS.elements fresh)
      end
      else []
    in
    let on_start () =
      if static.Sim.History.is_source then flush ()
      else List.map (fun p -> (Sim.Message.Hello, p)) (IS.elements !kx)
    in
    let on_receive msg ~port =
      match msg with
      | Sim.Message.Source ->
        kx := IS.add port !kx;
        sx := IS.add port !sx;
        informed := true;
        flush ()
      | Sim.Message.Hello ->
        kx := IS.add port !kx;
        flush ()
      | Sim.Message.Control _ when Sim.Message.is_timeout msg ->
        if !informed then reflood_from (Some port) else []
      | Sim.Message.Control _ when Sim.Message.is_reflood msg ->
        let first = not !informed in
        informed := true;
        kx := IS.add port !kx;
        sx := IS.add port !sx;
        (if first then flush () else []) @ reflood_from (Some port)
      | Sim.Message.Control _ -> []
    in
    { Sim.Scheme.on_start; on_receive }
  | None ->
    (* Degraded mode.  Flooding when informed restores correctness at the
       advice-free Θ(m) cost; the Hello on {e every} port at start tells
       advised neighbours — whose legitimately-empty advice the adversary
       could not touch — how to reach us, exactly as Scheme B's Hellos on
       known ports do.  Without it an advised node whose tree edges are
       all known from the degraded side would never learn them. *)
    let all_ports = List.init degree (fun p -> p) in
    let informed = ref static.Sim.History.is_source in
    let flood arrival =
      List.filter_map
        (fun p -> if arrival = Some p then None else Some (Sim.Message.Source, p))
        all_ports
    in
    let on_start () =
      if static.Sim.History.is_source then flood None
      else List.map (fun p -> (Sim.Message.Hello, p)) all_ports
    in
    let on_receive msg ~port =
      match msg with
      | Sim.Message.Source when not !informed ->
        informed := true;
        flood (Some port)
      | Sim.Message.Control _ when Sim.Message.is_timeout msg ->
        if !informed then reflood_from (Some port) else []
      | Sim.Message.Control _ when Sim.Message.is_reflood msg ->
        let first = not !informed in
        informed := true;
        (if first then flood (Some port) else []) @ reflood_from (Some port)
      | Sim.Message.Source | Sim.Message.Hello | Sim.Message.Control _ -> []
    in
    { Sim.Scheme.on_start; on_receive }

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  tree_contribution : int;
}

let run ?(tree = fun g ~root -> Spanning.light g ~root) ?(encoding = Marked)
    ?(scheduler = Sim.Scheduler.Async_fifo) ?(sinks = []) ?(shards = 1) ?registry g ~source =
  let t = tree g ~root:source in
  let tree_contribution = Spanning.contribution g (Spanning.edges t) in
  let o = oracle ~tree:(fun _ ~root:_ -> t) ~encoding () in
  let advice = o.Oracles.Oracle.advise g ~source in
  let advice_bits = Oracles.Advice.size_bits advice in
  let result =
    Sim.Shard.run ~scheduler ~sinks ~shards
      ~advice:(Oracles.Advice.get advice)
      g ~source (scheme ~encoding ())
  in
  Obs.Registry.note ?registry
    (Sim.Runner.telemetry ~protocol:"broadcast" ~scheduler ~advice_bits result);
  { result; advice_bits; tree_contribution }
