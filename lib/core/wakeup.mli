(** Theorem 2.1: wakeup with [n-1] messages from an oracle of size
    [n log n + o(n log n)].

    The oracle fixes a spanning tree [T] of the network rooted at the
    source and gives every internal node the port numbers leading to its
    children, encoded self-delimitingly (leaves receive the empty string).
    The wakeup scheme is: upon being woken (or at start, for the source),
    send the source message on every advised port.  Exactly one message
    crosses each tree edge, hence exactly [n-1] messages.

    The scheme never consults node labels and never sends anything before
    being woken: the upper bound holds for anonymous networks, under full
    asynchrony, with 1-bit messages — as claimed in Section 1.3. *)

type encoding =
  | Paper  (** doubled-bit width header, ports in fixed width [⌈log n⌉] *)
  | Paper_minimal
      (** same code, but the width is the smallest fitting this node's own
          ports — strictly smaller advice, same decoder *)
  | Gamma  (** each port Elias-gamma coded (E7 ablation) *)

val encoding_name : encoding -> string

type tree_builder = Netgraph.Graph.t -> root:int -> Netgraph.Spanning.t

val oracle : ?tree:tree_builder -> ?encoding:encoding -> unit -> Oracles.Oracle.t
(** Default tree: BFS from the source (any spanning tree realises the
    bound); default encoding: [Paper]. *)

val scheme : ?encoding:encoding -> unit -> Sim.Scheme.factory
(** The wakeup scheme matching {!oracle}'s advice format.  The encodings
    must agree. *)

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  tree_ok : bool;  (** the advised tree passed {!Netgraph.Spanning.check} *)
}

val run :
  ?tree:tree_builder ->
  ?encoding:encoding ->
  ?scheduler:Sim.Scheduler.t ->
  ?sinks:Obs.Sink.t list ->
  ?shards:int ->
  ?registry:Obs.Registry.t ->
  Netgraph.Graph.t ->
  source:int ->
  outcome
(** Build the oracle, run the scheme, return the result together with the
    oracle size.  Telemetry events stream into [sinks] (see
    {!Sim.Runner.run}); one protocol record named ["wakeup"] is noted into
    [registry] (default: {!Obs.Registry.default}).  [shards] (default 1)
    executes the run across that many domains via {!Sim.Shard.run} —
    output is bit-identical at any shard count. *)

val decode_ports : encoding -> Bitstring.Bitbuf.t -> int list
(** The advice decoder (exposed for tests). *)

(** {1 Hardened variant}

    {!scheme} trusts its advice — the oracle wrote it, so it raises on
    malformed bits and the runner rejects out-of-range ports.  Under the
    fault-injection subsystem the advice may be adversarial, so the
    hardened variant validates before trusting. *)

val decode_ports_result : encoding -> Bitstring.Bitbuf.t -> (int list, string) result
(** Non-raising advice decoder (the {!Bitstring.Codes} [_result]
    family). *)

val hardened_scheme :
  ?encoding:encoding ->
  ?protect:Bitstring.Ecc.level ->
  ?on_fallback:(int -> string -> unit) ->
  ?on_corrected:(int -> int -> unit) ->
  unit ->
  Sim.Scheme.factory
(** Like {!scheme}, but each node validates its advice once at
    instantiation: the advice is first decoded through the [protect] ECC
    level (default [Raw]: pass-through), then it must decode
    ([decode_ports_result]) to distinct, in-range ports.  A node whose
    advice fails either stage falls back to the advice-free flooding
    behaviour of {!Sim.Scheme.flooding} — on first wake it sends the
    source message on every port except the arrival port — so the run
    stays correct on any connected graph at Θ(m) cost instead of the
    advised [n-1].  With a correcting level ([Hamming], odd
    [Repetition]), a corrupted-but-correctable codeword is repaired
    locally instead of falling back — the advice must of course have been
    written by the protected oracle ({!Oracles.Protect.oracle}).  The
    wakeup restriction (silence before being woken) is preserved in all
    modes.  [on_fallback] is called once per degraded node with its label
    and the ECC/decode/validation error; [on_corrected] once per node
    whose advice was repaired and accepted, with its label and the
    corrected-error count. *)
