module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph
module IS = Set.Make (Int)

(* Advice layout (empty for rho = 0):
   gamma rho;
   deg(v) entries: gamma (label behind port p), in port order;
   if rho >= 2: gamma count of inner nodes (distance <= rho-1, v included),
   then per inner node: gamma label, gamma degree, gamma each neighbor
   label.  Only the layer-1 part steers the scheme; the rest is the honest
   size of "knowing the topology within radius rho". *)

let oracle ~rho =
  if rho < 0 then invalid_arg "Neighborhood.oracle: negative radius";
  Oracles.Oracle.make ~name:(Printf.sprintf "radius-%d-ball" rho) (fun g ~source:_ ->
      Oracles.Advice.make
        (Array.init (Graph.n g) (fun v ->
             let buf = Bitbuf.create () in
             if rho > 0 then begin
               Codes.write_gamma buf rho;
               List.iter
                 (fun (_, nbr, _) -> Codes.write_gamma buf (Graph.label g nbr))
                 (Graph.neighbors g v);
               if rho >= 2 then begin
                 let dist, _ = Netgraph.Traverse.bfs g ~root:v in
                 let inner = ref [] in
                 Array.iteri (fun u d -> if d >= 0 && d <= rho - 1 then inner := u :: !inner) dist;
                 Codes.write_gamma buf (List.length !inner);
                 List.iter
                   (fun u ->
                     Codes.write_gamma buf (Graph.label g u);
                     Codes.write_gamma buf (Graph.degree g u);
                     List.iter
                       (fun (_, nbr, _) -> Codes.write_gamma buf (Graph.label g nbr))
                       (Graph.neighbors g u))
                   !inner
               end
             end;
             buf)))

let decode_port_labels ~degree buf =
  if Bitbuf.is_empty buf then (0, [])
  else begin
    let r = Bitbuf.reader buf in
    let rho = Codes.read_gamma r in
    (rho, List.init degree (fun _ -> Codes.read_gamma r))
  end

(* Token payload: 1 flag bit (0 = probe, 1 = return) then gamma count and
   gamma visited labels. *)
let encode_token ~is_return visited =
  let buf = Bitbuf.create () in
  Bitbuf.add_bit buf is_return;
  Codes.write_gamma buf (IS.cardinal visited);
  IS.iter (fun l -> Codes.write_gamma buf l) visited;
  buf

let decode_token buf =
  let r = Bitbuf.reader buf in
  let is_return = Bitbuf.read_bit r in
  let count = Codes.read_gamma r in
  let rec loop acc k = if k = 0 then acc else loop (IS.add (Codes.read_gamma r) acc) (k - 1) in
  (is_return, loop IS.empty count)

let scheme static =
  let deg = static.Sim.History.degree in
  let self = static.Sim.History.id in
  (* Layer-1 knowledge, if present: label behind each port. *)
  let port_labels =
    if Bitbuf.is_empty static.Sim.History.advice then [||]
    else begin
      let r = Bitbuf.reader static.Sim.History.advice in
      let _rho = Codes.read_gamma r in
      Array.init deg (fun _ -> Codes.read_gamma r)
    end
  in
  let visited_here = ref false in
  let entry_port = ref None in
  let next_port = ref 0 in
  let forward visited =
    (* Choose the next port to probe; skip known-visited neighbors. *)
    let rec pick () =
      if !next_port >= deg then None
      else begin
        let p = !next_port in
        incr next_port;
        if Array.length port_labels > 0 && IS.mem port_labels.(p) visited then pick ()
        else Some p
      end
    in
    match pick () with
    | Some p -> [ (Sim.Message.Control (encode_token ~is_return:false visited), p) ]
    | None -> (
      (* Exhausted: return the token whence we got it (the source halts). *)
      match !entry_port with
      | Some p -> [ (Sim.Message.Control (encode_token ~is_return:true visited), p) ]
      | None -> [])
  in
  let on_start () =
    if static.Sim.History.is_source then begin
      visited_here := true;
      forward (IS.singleton self)
    end
    else []
  in
  let on_receive msg ~port =
    match msg with
    | Sim.Message.Control payload ->
      let is_return, visited = decode_token payload in
      if is_return then forward visited
      else if !visited_here then
        (* Bounce a probe of an already-woken node. *)
        [ (Sim.Message.Control (encode_token ~is_return:true visited), port) ]
      else begin
        visited_here := true;
        entry_port := Some port;
        forward (IS.add self visited)
      end
    | Sim.Message.Source | Sim.Message.Hello -> []
  in
  { Sim.Scheme.on_start; on_receive }

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  rho : int;
}

let run ?(scheduler = Sim.Scheduler.Async_fifo) ~rho g ~source =
  let o = oracle ~rho in
  let advice = o.Oracles.Oracle.advise g ~source in
  let result =
    Sim.Runner.run ~scheduler
      ~advice:(Oracles.Advice.get advice)
      g ~source
      (Sim.Scheme.check_wakeup scheme)
  in
  { result; advice_bits = Oracles.Advice.size_bits advice; rho }
