(** Gossip (all-to-all information exchange), the third communication task
    named in the paper's Section 1.2.

    Every node starts with a private rumor (its label); the task completes
    when every node knows every rumor.  With tree advice — each node gets
    the port to its parent and the ports to its children — gossip runs as
    convergecast followed by broadcast: leaves report up, the root learns
    everything, the full set flows back down.  Exactly [2(n-1)] messages,
    which is optimal up to a constant (gossip subsumes broadcast, so Ω(n)
    messages are necessary, and the oracle is Θ(n log n) bits like
    Theorem 2.1's).

    The advice-free baseline floods rumor sets and pays Θ(n·m) messages on
    dense graphs — experiment E12 quantifies the gap. *)

val oracle : ?tree:(Netgraph.Graph.t -> root:int -> Netgraph.Spanning.t) -> unit -> Oracles.Oracle.t
(** Parent/children port advice over a spanning tree (default BFS) rooted
    at the source. *)

val decode_advice : Bitstring.Bitbuf.t -> int option * int list
(** [(parent_port, children_ports)] — exposed for tests. *)

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  learned : int list array;  (** rumors each node ended up knowing, sorted *)
  complete : bool;  (** everyone learned all [n] rumors *)
}

val run :
  ?tree:(Netgraph.Graph.t -> root:int -> Netgraph.Spanning.t) ->
  ?scheduler:Sim.Scheduler.t ->
  ?sinks:Obs.Sink.t list ->
  ?registry:Obs.Registry.t ->
  Netgraph.Graph.t ->
  source:int ->
  outcome
(** Tree gossip: [2(n-1)] messages.  Telemetry events stream into [sinks]
    (see {!Sim.Runner.run}); one protocol record named ["gossip-tree"],
    with [completed] meaning rumor completeness, is noted into [registry]
    (default: {!Obs.Registry.default}). *)

val run_flooding :
  ?scheduler:Sim.Scheduler.t ->
  ?sinks:Obs.Sink.t list ->
  ?registry:Obs.Registry.t ->
  Netgraph.Graph.t ->
  source:int ->
  outcome
(** The advice-free baseline: every node floods its growing rumor set.
    [advice_bits = 0]; message complexity up to Θ(n·m).  Telemetry as in
    {!run}, with the protocol record named ["gossip-flooding"]. *)
