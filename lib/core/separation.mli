(** The headline result as one measurement: on the same network, efficient
    wakeup needs Θ(n log n) advice bits while efficient broadcast needs
    only Θ(n) — the ratio grows as Θ(log n). *)

type measurement = {
  family : string;
  n : int;  (** actual node count of the built graph *)
  m : int;
  wakeup_bits : int;  (** Theorem 2.1 oracle size *)
  broadcast_bits : int;  (** Theorem 3.1 oracle size *)
  bits_ratio : float;  (** wakeup / broadcast *)
  wakeup_messages : int;  (** must be exactly [n-1] *)
  broadcast_messages : int;  (** must be [< 3n] *)
  wakeup_ok : bool;
  broadcast_ok : bool;
}

val measure : Netgraph.Families.t -> n:int -> seed:int -> measurement
(** Builds the family member, runs both schemes with their oracles from
    source 0, and reports sizes and message counts. *)

val sweep : Netgraph.Families.t -> ns:int list -> seed:int -> measurement list

val ratio_growth : measurement list -> float
(** Log-log slope of [bits_ratio] against [n] — for a Θ(log n) ratio this
    tends to [0] from above on doubling sweeps while the ratio itself
    keeps increasing; the benches report both. *)
