(** Exact (big-integer) evaluation of the counting quantities behind
    Theorems 2.2 and 3.2 — the ground truth the log-space float pipeline
    in {!Bounds} is validated against.

    These are exponentially large numbers, so exact evaluation is only
    practical for moderate parameters; the tests cross-check the float
    pipeline here and the experiments then trust the floats at scale. *)

val wakeup_instances : n:int -> Numeric.Bignat.t
(** [P = n! · C(C(n,2), n)]: the number of graphs [G_{n,S}]
    (Equation 2). *)

val oracle_outputs : bits:int -> nodes:int -> Numeric.Bignat.t
(** [Q = Σ_{q'≤bits} 2^{q'} · C(q'+nodes-1, nodes-1)]: the exact number of
    advice functions (the sum Equation 3 upper-bounds). *)

val edge_discovery_instances : n:int -> x_size:int -> excluded:int -> Numeric.Bignat.t
(** [|X|!·C(C(n,2)-|Y|, |X|)]: the number of edge-discovery instances with
    [excluded = |Y|]. *)

val log2_wakeup_instances : n:int -> float
val log2_oracle_outputs : bits:int -> nodes:int -> float
(** Exact values pushed through {!Numeric.Bignat.log2} — comparable
    directly with the {!Bounds} floats. *)
