(** Spanner construction under the oracle-size measure — the other
    extension the paper's conclusion proposes ("not only concerning
    information dissemination but also, e.g., spanner construction").

    The task: every node must select a subset of its incident ports such
    that the selected edges form a connected subgraph whose distances
    stretch the originals by at most [t].  The oracle computes the classic
    greedy [t]-spanner (Althöfer et al.: scan edges in increasing weight,
    keep an edge iff the current spanner's endpoint distance exceeds [t];
    for [t = 2k-1] the result has [O(n^{1+1/k})] edges) and hands every
    node its selected ports — advice [2·Σ#₂(port)] bits, zero messages.

    Advice-free, the natural move is keeping {e all} edges (stretch 1, m
    edges — no communication needed either, but every node must maintain
    degree-many links); the experiment (E20) reports the edge/advice
    trade-off across stretch factors. *)

type outcome = {
  stretch : int;  (** the stretch target [t] *)
  edges_kept : int;
  advice_bits : int;
  measured_stretch : float;  (** max over edges of spanner-dist / 1 *)
  valid : bool;  (** connected and measured stretch ≤ t *)
}

val greedy_spanner : Netgraph.Graph.t -> stretch:int -> Netgraph.Graph.edge list
(** The greedy [t]-spanner edge set (hop distances; all edge "lengths" are
    1 for the stretch criterion, so the guarantee is purely topological).
    Raises [Invalid_argument] if [stretch < 1]. *)

val spanner_oracle : stretch:int -> Oracles.Oracle.t
(** Per-node selected ports, marked-bit coded. *)

val measure : Netgraph.Graph.t -> stretch:int -> outcome
(** Build, verify (every graph edge's endpoints are within [t] hops in the
    spanner — which bounds all-pairs stretch by [t]), and account. *)
