(** Spanning-tree construction — one of the tasks Section 1.2 names as
    solvable "using at most a prescribed number of messages" with an
    oracle.

    The task: every node must output its parent port and children ports of
    one common spanning tree rooted at the source.

    - {!flood_build}: advice-free — the source floods a token; each node
      adopts its first-receipt port as parent, forwards, and sends a
      claim back so parents learn their children.  At most [2m + (n-1)]
      messages.  Under the synchronous scheduler the resulting tree is a
      BFS tree (first receipt = shortest path); under adversarial
      asynchrony it is some spanning tree.
    - {!advised_build}: the Θ(n log Δ)-bit tree oracle (the same advice
      format as {!Gossip}) — zero messages: the tree is already in the
      advice.  The full trade: m messages ↔ n log Δ bits. *)

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  tree : Netgraph.Spanning.t option;  (** [None] if the outputs were inconsistent *)
  is_bfs : bool;  (** the tree's depths equal the BFS distances *)
}

val flood_build : ?scheduler:Sim.Scheduler.t -> Netgraph.Graph.t -> source:int -> outcome

val advised_build : ?scheduler:Sim.Scheduler.t -> Netgraph.Graph.t -> source:int -> outcome
