(** Theorem 3.1: broadcast with fewer than [3n] messages from an oracle of
    size at most [8n].

    The oracle builds the Claim 3.1 spanning tree [T₀], whose total
    contribution [Σ_{e∈T₀} #₂(w(e))] is at most [4n] for the weight
    [w(e) = min(port_u(e), port_v(e))].  For every tree edge it hands the
    binary representation of [w(e)] to the endpoint at which the edge uses
    port number [w(e)]; a node's advice is the marked-bit encoding of all
    its assigned weights — at most [2·4n = 8n] bits in total.

    Scheme B (Figure 1): every node interprets its advice as a set of
    known incident ports.  Non-source nodes immediately send "hello" on
    all known ports (the spontaneous transmissions that wakeup forbids);
    each hello teaches the opposite endpoint one more incident tree edge.
    The source message [M] is flushed on every known-but-unserved port
    whenever the node is informed and learns a new port.  [M] crosses each
    tree edge at most once per direction and hellos cross each tree edge
    at most once: fewer than [3n] messages. *)

type tree_builder = Netgraph.Graph.t -> root:int -> Netgraph.Spanning.t

type encoding =
  | Marked  (** the paper's 2-bits-per-payload-bit code; [≤ 8n] total *)
  | Gamma  (** Elias-gamma weights (E7 ablation) *)

val encoding_name : encoding -> string

val oracle : ?tree:tree_builder -> ?encoding:encoding -> unit -> Oracles.Oracle.t
(** Default tree: {!Netgraph.Spanning.light} (the Claim 3.1 construction —
    the [≤ 8n] bound only holds for it); default encoding [Marked]. *)

val scheme : ?encoding:encoding -> unit -> Sim.Scheme.factory
(** Scheme B.  Does not consult node labels; works under full
    asynchrony. *)

type outcome = {
  result : Sim.Runner.result;
  advice_bits : int;
  tree_contribution : int;  (** [Σ #₂(w(e))] over the advised tree *)
}

val run :
  ?tree:tree_builder ->
  ?encoding:encoding ->
  ?scheduler:Sim.Scheduler.t ->
  ?sinks:Obs.Sink.t list ->
  ?shards:int ->
  ?registry:Obs.Registry.t ->
  Netgraph.Graph.t ->
  source:int ->
  outcome
(** Build the oracle, run Scheme B, return the result together with the
    oracle size.  Telemetry events stream into [sinks] (see
    {!Sim.Runner.run}); one protocol record named ["broadcast"] is noted
    into [registry] (default: {!Obs.Registry.default}).  [shards]
    (default 1) executes the run across that many domains via
    {!Sim.Shard.run} — output is bit-identical at any shard count. *)

val decode_known_ports : encoding -> Bitstring.Bitbuf.t -> int list
(** The advice decoder (exposed for tests): the ports Scheme B starts out
    knowing. *)

(** {1 Hardened variant} *)

val decode_known_ports_result : encoding -> Bitstring.Bitbuf.t -> (int list, string) result
(** Non-raising advice decoder (the {!Bitstring.Codes} [_result]
    family). *)

val hardened_scheme :
  ?encoding:encoding ->
  ?protect:Bitstring.Ecc.level ->
  ?on_fallback:(int -> string -> unit) ->
  ?on_corrected:(int -> int -> unit) ->
  unit ->
  Sim.Scheme.factory
(** Scheme B with advice validation: the advice is first decoded through
    the [protect] ECC level (default [Raw]: pass-through), then a node
    whose advice does not decode to distinct, in-range ports degrades to
    advice-free flooding — the source message goes out on every port
    (except the arrival port) on first informing, which is correct on any
    connected graph at Θ(m) cost.  With a correcting level, a
    corrupted-but-correctable codeword is repaired locally instead (the
    advice must have been written by {!Oracles.Protect.oracle} at the
    same level).  A degraded non-source node also sends its "hello" on
    {e every} port at start, so an advised neighbour whose (legitimately
    empty) advice omits the shared edge still learns it, exactly as
    Scheme B's hellos on known ports teach; without this, a node that
    knows none of its tree edges could never serve the subtree behind a
    degraded neighbour.  [on_fallback] is called once per degraded node
    with its label and the ECC/decode/validation error; [on_corrected]
    once per node whose advice was repaired and accepted, with its label
    and the corrected-error count.  On untampered advice this is
    message-for-message Scheme B. *)

val weight_assignment : Netgraph.Graph.t -> Netgraph.Spanning.t -> int list array
(** The per-node lists of assigned weights, before encoding (exposed for
    tests: each tree edge must appear at exactly one endpoint, at which it
    has the smaller port number). *)
