module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph

(* Bounded-depth BFS inside the current spanner. *)
let hop_distance_within adj ~limit u v =
  if u = v then Some 0
  else begin
    let dist = Hashtbl.create 32 in
    Hashtbl.replace dist u 0;
    let q = Queue.create () in
    Queue.add u q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let x = Queue.pop q in
      let dx = Hashtbl.find dist x in
      if dx < limit then
        List.iter
          (fun y ->
            if not (Hashtbl.mem dist y) then begin
              Hashtbl.replace dist y (dx + 1);
              if y = v then found := Some (dx + 1) else Queue.add y q
            end)
          adj.(x)
    done;
    !found
  end

let greedy_spanner g ~stretch =
  if stretch < 1 then invalid_arg "Spanner.greedy_spanner: stretch < 1";
  let n = Graph.n g in
  let adj = Array.make n [] in
  let kept = ref [] in
  (* Scan in the paper's edge order (weight, then labels) for determinism. *)
  List.iter
    (fun e ->
      match hop_distance_within adj ~limit:stretch e.Graph.u e.Graph.v with
      | Some _ -> ()  (* endpoints already within t hops: skip the edge *)
      | None ->
        kept := e :: !kept;
        adj.(e.Graph.u) <- e.Graph.v :: adj.(e.Graph.u);
        adj.(e.Graph.v) <- e.Graph.u :: adj.(e.Graph.v))
    (List.sort (Netgraph.Mst.edge_order g) (Graph.edges g));
  List.rev !kept

let spanner_oracle ~stretch =
  Oracles.Oracle.make ~name:(Printf.sprintf "greedy-%d-spanner" stretch) (fun g ~source:_ ->
      let ports = Array.make (Graph.n g) [] in
      List.iter
        (fun e ->
          ports.(e.Graph.u) <- e.Graph.pu :: ports.(e.Graph.u);
          ports.(e.Graph.v) <- e.Graph.pv :: ports.(e.Graph.v))
        (greedy_spanner g ~stretch);
      Oracles.Advice.make
        (Array.map
           (fun ps ->
             let buf = Bitbuf.create () in
             Codes.write_marked_list buf (List.sort compare ps);
             buf)
           ports))

type outcome = {
  stretch : int;
  edges_kept : int;
  advice_bits : int;
  measured_stretch : float;
  valid : bool;
}

let measure g ~stretch =
  let spanner = greedy_spanner g ~stretch in
  let n = Graph.n g in
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      adj.(e.Graph.u) <- e.Graph.v :: adj.(e.Graph.u);
      adj.(e.Graph.v) <- e.Graph.u :: adj.(e.Graph.v))
    spanner;
  (* Per-edge stretch bounds all-pairs stretch, so checking every graph
     edge suffices. *)
  let worst = ref 0 in
  List.iter
    (fun e ->
      match hop_distance_within adj ~limit:(stretch + n) e.Graph.u e.Graph.v with
      | Some d -> worst := max !worst d
      | None -> worst := max_int)
    (Graph.edges g);
  let advice = (spanner_oracle ~stretch).Oracles.Oracle.advise g ~source:0 in
  {
    stretch;
    edges_kept = List.length spanner;
    advice_bits = Oracles.Advice.size_bits advice;
    measured_stretch = float_of_int !worst;
    valid = !worst <= stretch;
  }
