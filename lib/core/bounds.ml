module Binary = Bitstring.Binary

let ceil_log2 = Binary.ceil_log2
let bits2 = Binary.bits

let wakeup_advice_upper ~n =
  if n < 2 then 0
  else begin
    let width = max 1 (ceil_log2 n) in
    let per_node_overhead = (2 * bits2 width) + 2 in
    ((n - 1) * width) + ((n - 1) * per_node_overhead)
  end

let broadcast_advice_upper ~n = 8 * n

let light_tree_contribution_upper ~n = 4 * n

let wakeup_messages ~n = n - 1

let broadcast_messages_upper ~n = 3 * n

(* log₂(x + y) given log₂ x and log₂ y. *)
let log2_add lx ly =
  if lx = neg_infinity then ly
  else if ly = neg_infinity then lx
  else
    let hi = Float.max lx ly and lo = Float.min lx ly in
    hi +. Float.log2 (1.0 +. Float.exp2 (lo -. hi))

let log2_wakeup_instances ~n =
  let pairs = n * (n - 1) / 2 in
  Binary.log2_factorial n +. Binary.log2_choose pairs n

let log2_oracle_outputs_exact ~bits ~nodes =
  let rec loop q acc =
    if q > bits then acc
    else
      let term = float_of_int q +. Binary.log2_choose (q + nodes - 1) (nodes - 1) in
      loop (q + 1) (log2_add acc term)
  in
  loop 0 neg_infinity

(* Equation 3 of the paper: Q ≤ (q+1)·2^q·C(q+2n, 2n).  Within log₂(q+1)
   bits of the exact sum and O(1) to evaluate. *)
let log2_oracle_outputs ~bits ~nodes =
  Float.log2 (float_of_int (bits + 1))
  +. float_of_int bits
  +. Binary.log2_choose (bits + nodes) nodes

let edge_discovery_lower_bound ~log2_instances ~x_size =
  log2_instances -. Binary.log2_factorial x_size

let wakeup_message_lower_bound ~n ~advice_bits =
  let log2_p = log2_wakeup_instances ~n in
  let log2_q = log2_oracle_outputs ~bits:advice_bits ~nodes:(2 * n) in
  edge_discovery_lower_bound ~log2_instances:(log2_p -. log2_q) ~x_size:n

let log2_wakeup_instances_c ~n ~c =
  let pairs = n * (n - 1) / 2 in
  if c * n > pairs then invalid_arg "Bounds.log2_wakeup_instances_c: cn > C(n,2)";
  Binary.log2_factorial (c * n) +. Binary.log2_choose pairs (c * n)

let wakeup_message_lower_bound_c ~n ~c ~advice_bits =
  let log2_p = log2_wakeup_instances_c ~n ~c in
  let log2_q = log2_oracle_outputs ~bits:advice_bits ~nodes:((1 + c) * n) in
  edge_discovery_lower_bound ~log2_instances:(log2_p -. log2_q) ~x_size:(c * n)

let log2_binomial_a_ab ~a ~b = Binary.log2_choose (a * (1 + b)) a

let claim_2_1_holds ~a ~b =
  log2_binomial_a_ab ~a ~b <= float_of_int a *. Float.log2 (6.0 *. float_of_int b)

let log2_broadcast_instances ~n ~k =
  let x = n / (4 * k) in
  let y = 3 * n / (4 * k) in
  let pairs = n * (n - 1) / 2 in
  Binary.log2_factorial x +. Binary.log2_choose (pairs - y) x

let broadcast_message_lower_bound ~n ~k = float_of_int (n * (k - 1)) /. 8.0
