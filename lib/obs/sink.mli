(** Pluggable telemetry consumers.

    A sink is where {!Event.t} values go: a counter ({!Counting}), a
    bounded in-memory trace ({!Ring}), a JSONL or CSV file ({!Jsonl},
    {!Csv}), or any user function.  Emitters (the simulation runner,
    protocol wrappers) call {!emit} per event; the party that created a
    sink is responsible for calling {!close} on it once no more events
    will arrive — emitters never close sinks they were handed. *)

type t
(** A telemetry consumer. *)

val make : ?close:(unit -> unit) -> (Event.t -> unit) -> t
(** [make f] is a sink calling [f] on every event.  [close] (default: a
    no-op) runs at most once, when {!close} is called. *)

val emit : t -> Event.t -> unit
(** Feed one event.  Emitting on a closed sink is a no-op. *)

val close : t -> unit
(** Flush and release the sink's resources.  Idempotent. *)

val null : t
(** Discards everything. *)

val tee : t list -> t
(** A sink duplicating every event to each sink in the list, in order.
    Closing the tee closes the underlying sinks. *)

val filter : (Event.t -> bool) -> t -> t
(** [filter p s] forwards to [s] only the events satisfying [p].  Closing
    the filter closes [s]. *)

val collect : unit -> t * (unit -> Event.t list)
(** An unbounded in-memory sink and a function returning everything
    collected so far, oldest first.  For tests and small runs; use
    {!Ring} when the trace must stay bounded. *)
