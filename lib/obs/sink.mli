(** Pluggable telemetry consumers.

    A sink is where {!Event.t} values go: a counter ({!Counting}), a
    bounded in-memory trace ({!Ring}), a JSONL or CSV file ({!Jsonl},
    {!Csv}), or any user function.  Emitters (the simulation runner,
    protocol wrappers) call {!emit} per event; the party that created a
    sink is responsible for calling {!close} on it once no more events
    will arrive — emitters never close sinks they were handed.

    Sinks are {e single-writer}: a sink belongs to the domain that
    created it, and {!emit} fails fast (raises [Failure]) from any other
    domain — the underlying consumers (file buffers, ring cursors,
    counters) are unsynchronized, and interleaved lines from parallel
    workers would corrupt output silently.  Parallel sweeps return rows
    and serialize them in one ordered pass on the owning domain after the
    join (see [Sim.Sweep]); worker-side runs use sinks the worker created
    itself.  {!null} is exempt. *)

type t
(** A telemetry consumer. *)

val make : ?close:(unit -> unit) -> (Event.t -> unit) -> t
(** [make f] is a sink calling [f] on every event.  [close] (default: a
    no-op) runs at most once, when {!close} is called.  The sink is owned
    by the calling domain. *)

val emit : t -> Event.t -> unit
(** Feed one event.  Emitting on a closed sink is a no-op.  Emitting from
    a domain other than the sink's creator raises [Failure] (single-writer
    contract; see the module preamble). *)

val close : t -> unit
(** Flush and release the sink's resources.  Idempotent. *)

val null : t
(** Discards everything. *)

val tee : t list -> t
(** A sink duplicating every event to each sink in the list, in order.
    Closing the tee closes the underlying sinks. *)

val filter : (Event.t -> bool) -> t -> t
(** [filter p s] forwards to [s] only the events satisfying [p].  Closing
    the filter closes [s]. *)

val collect : unit -> t * (unit -> Event.t list)
(** An unbounded in-memory sink and a function returning everything
    collected so far, oldest first.  For tests and small runs; use
    {!Ring} when the trace must stay bounded. *)
