(** JSON Lines export and import of telemetry events.

    One event per line, as a flat JSON object with the fields named in
    the metrics contract (DESIGN.md §Telemetry):

    {v
    {"seq":3,"round":1,"ev":"send","src":0,"src_port":2,"dst":5,
     "dst_port":0,"cls":"source","bits":1,"informed":true,"depth":1}
    {"seq":3,"round":2,"ev":"deliver", ... same link fields ... }
    {"seq":3,"round":2,"ev":"wake","node":5}
    {"seq":7,"round":9,"ev":"decide","node":5,"tag":"leader"}
    {"seq":0,"round":0,"ev":"advice","node":5,"bits":12}
    v}

    The encoder emits keys in a fixed order; the decoder accepts any key
    order and surplus whitespace, so traces survive [jq]-style rewriting.
    Both directions are dependency-free on purpose — the container ships
    no JSON library — and the decoder inverts the encoder exactly
    (round-trip is tested). *)

val encode : Event.t -> string
(** One JSON object, no trailing newline. *)

val decode : string -> (Event.t, string) result
(** Parse one line.  [Error msg] describes the first offending token. *)

val decode_exn : string -> Event.t
(** Like {!decode}.  Raises [Failure] on malformed input. *)

val channel_sink : out_channel -> Sink.t
(** Write one line per event.  Closing the sink flushes the channel but
    does not close it (the caller owns the channel). *)

val file_sink : string -> Sink.t
(** Open (truncate) [file] and write one line per event; closing the sink
    closes the file. *)

val read_file : string -> Event.t list
(** Load a recorded trace, skipping blank lines.
    Raises [Failure] on the first malformed line (with its line number). *)
