type t = { mutable closed : bool; on_event : Event.t -> unit; on_close : unit -> unit }

let make ?(close = fun () -> ()) on_event = { closed = false; on_event; on_close = close }

let emit t ev = if not t.closed then t.on_event ev

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.on_close ()
  end

let null = make (fun _ -> ())

let tee sinks =
  make
    ~close:(fun () -> List.iter close sinks)
    (fun ev -> List.iter (fun s -> emit s ev) sinks)

let filter p s = make ~close:(fun () -> close s) (fun ev -> if p ev then emit s ev)

let collect () =
  let events = ref [] in
  (make (fun ev -> events := ev :: !events), fun () -> List.rev !events)
