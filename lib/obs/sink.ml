(* [owner] is the id of the domain that created the sink.  Sinks are
   single-writer by contract: the on_event closures (file buffers, ring
   cursors, counters) are not synchronized, so a cross-domain emit would
   silently interleave corrupt output.  We fail fast instead — parallel
   sweeps must route rows through the ordered post-join emitter on the
   owning domain (see Sim.Sweep), never share a sink across workers. *)
type t = {
  mutable closed : bool;
  owner : int option;  (* None = unowned, exempt from the check (null) *)
  on_event : Event.t -> unit;
  on_close : unit -> unit;
}

let make ?(close = fun () -> ()) on_event =
  { closed = false; owner = Some (Domain.self () :> int); on_event; on_close = close }

let emit t ev =
  if not t.closed then begin
    (match t.owner with
    | Some owner when owner <> (Domain.self () :> int) ->
      failwith
        (Printf.sprintf
           "Obs.Sink.emit: sink owned by domain %d used from domain %d (sinks are \
            single-writer; emit rows after the join instead)"
           owner
           (Domain.self () :> int))
    | _ -> ());
    t.on_event ev
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.on_close ()
  end

let null = { closed = false; owner = None; on_event = (fun _ -> ()); on_close = (fun () -> ()) }

let tee sinks =
  make
    ~close:(fun () -> List.iter close sinks)
    (fun ev -> List.iter (fun s -> emit s ev) sinks)

let filter p s = make ~close:(fun () -> close s) (fun ev -> if p ev then emit s ev)

let collect () =
  let events = ref [] in
  (make (fun ev -> events := ev :: !events), fun () -> List.rev !events)
