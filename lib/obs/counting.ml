type summary = {
  sent : int;
  delivered : int;
  source_sent : int;
  hello_sent : int;
  control_sent : int;
  bits_on_wire : int;
  rounds : int;
  causal_depth : int;
  wakes : int;
  decides : int;
  advice_bits : int;
  faults : int;
  dropped : int;
  duplicated : int;
  retransmits : int;
  corrected_bits : int;
}

type t = {
  mutable c_sent : int;
  mutable c_delivered : int;
  mutable c_source : int;
  mutable c_hello : int;
  mutable c_control : int;
  mutable c_bits : int;
  mutable c_rounds : int;
  mutable c_depth : int;
  mutable c_wakes : int;
  mutable c_decides : int;
  mutable c_advice : int;
  mutable c_faults : int;
  mutable c_dropped : int;
  mutable c_duplicated : int;
  mutable c_retransmits : int;
  mutable c_corrected : int;
}

let create () =
  {
    c_sent = 0;
    c_delivered = 0;
    c_source = 0;
    c_hello = 0;
    c_control = 0;
    c_bits = 0;
    c_rounds = 0;
    c_depth = 0;
    c_wakes = 0;
    c_decides = 0;
    c_advice = 0;
    c_faults = 0;
    c_dropped = 0;
    c_duplicated = 0;
    c_retransmits = 0;
    c_corrected = 0;
  }

let observe t (ev : Event.t) =
  if ev.Event.round > t.c_rounds then t.c_rounds <- ev.Event.round;
  match ev.Event.kind with
  | Event.Send l ->
    t.c_sent <- t.c_sent + 1;
    (match l.Event.cls with
    | Event.Source -> t.c_source <- t.c_source + 1
    | Event.Hello -> t.c_hello <- t.c_hello + 1
    | Event.Control -> t.c_control <- t.c_control + 1);
    t.c_bits <- t.c_bits + l.Event.bits
  | Event.Deliver l ->
    t.c_delivered <- t.c_delivered + 1;
    if l.Event.depth > t.c_depth then t.c_depth <- l.Event.depth
  | Event.Wake _ -> t.c_wakes <- t.c_wakes + 1
  | Event.Decide _ -> t.c_decides <- t.c_decides + 1
  | Event.Advice_read (_, bits) -> t.c_advice <- t.c_advice + bits
  | Event.Fault f -> (
    t.c_faults <- t.c_faults + 1;
    match f with
    | Event.Msg_dropped -> t.c_dropped <- t.c_dropped + 1
    | Event.Msg_duplicated -> t.c_duplicated <- t.c_duplicated + 1
    | Event.Msg_delayed _ | Event.Msg_reordered _ | Event.Crashed _ | Event.Dead _
    | Event.Advice_tampered _ ->
      ())
  | Event.Recover r -> (
    match r with
    | Event.Msg_retransmitted _ -> t.c_retransmits <- t.c_retransmits + 1
    | Event.Advice_corrected (_, bits) -> t.c_corrected <- t.c_corrected + bits)

(* Allocation-free entry points: each mirrors the [observe] arm for the
   corresponding event kind, field for field, so a caller that counts
   through these without ever materialising an [Event.t] (the runner's
   sink-less hot path) lands on bit-identical counters.  Any change to an
   [observe] arm must be mirrored here and vice versa. *)

let note_round t round = if round > t.c_rounds then t.c_rounds <- round

let note_send t ~round ~cls ~bits =
  note_round t round;
  t.c_sent <- t.c_sent + 1;
  (match cls with
  | Event.Source -> t.c_source <- t.c_source + 1
  | Event.Hello -> t.c_hello <- t.c_hello + 1
  | Event.Control -> t.c_control <- t.c_control + 1);
  t.c_bits <- t.c_bits + bits

let note_deliver t ~round ~depth =
  note_round t round;
  t.c_delivered <- t.c_delivered + 1;
  if depth > t.c_depth then t.c_depth <- depth

let note_wake t ~round =
  note_round t round;
  t.c_wakes <- t.c_wakes + 1

let note_advice t ~round ~bits =
  note_round t round;
  t.c_advice <- t.c_advice + bits

let note_fault t ~round f =
  note_round t round;
  t.c_faults <- t.c_faults + 1;
  match f with
  | Event.Msg_dropped -> t.c_dropped <- t.c_dropped + 1
  | Event.Msg_duplicated -> t.c_duplicated <- t.c_duplicated + 1
  | Event.Msg_delayed _ | Event.Msg_reordered _ | Event.Crashed _ | Event.Dead _
  | Event.Advice_tampered _ ->
    ()

let note_retransmit t ~round =
  note_round t round;
  t.c_retransmits <- t.c_retransmits + 1

(* Merging is exact, not approximate: every counter is a sum except
   [c_rounds] and [c_depth], which are maxima — both commutative and
   associative folds of the per-event contributions, so counters split
   across domains and absorbed in any order equal the sequential fold
   over the same events.  This is what lets the sharded runner keep one
   [t] per domain with no synchronization and still report stats
   bit-identical to the sequential runner. *)
let absorb t other =
  t.c_sent <- t.c_sent + other.c_sent;
  t.c_delivered <- t.c_delivered + other.c_delivered;
  t.c_source <- t.c_source + other.c_source;
  t.c_hello <- t.c_hello + other.c_hello;
  t.c_control <- t.c_control + other.c_control;
  t.c_bits <- t.c_bits + other.c_bits;
  if other.c_rounds > t.c_rounds then t.c_rounds <- other.c_rounds;
  if other.c_depth > t.c_depth then t.c_depth <- other.c_depth;
  t.c_wakes <- t.c_wakes + other.c_wakes;
  t.c_decides <- t.c_decides + other.c_decides;
  t.c_advice <- t.c_advice + other.c_advice;
  t.c_faults <- t.c_faults + other.c_faults;
  t.c_dropped <- t.c_dropped + other.c_dropped;
  t.c_duplicated <- t.c_duplicated + other.c_duplicated;
  t.c_retransmits <- t.c_retransmits + other.c_retransmits;
  t.c_corrected <- t.c_corrected + other.c_corrected

let sink t = Sink.make (observe t)

let summary t =
  {
    sent = t.c_sent;
    delivered = t.c_delivered;
    source_sent = t.c_source;
    hello_sent = t.c_hello;
    control_sent = t.c_control;
    bits_on_wire = t.c_bits;
    rounds = t.c_rounds;
    causal_depth = t.c_depth;
    wakes = t.c_wakes;
    decides = t.c_decides;
    advice_bits = t.c_advice;
    faults = t.c_faults;
    dropped = t.c_dropped;
    duplicated = t.c_duplicated;
    retransmits = t.c_retransmits;
    corrected_bits = t.c_corrected;
  }

let sent t = t.c_sent

let of_events events =
  let t = create () in
  List.iter (observe t) events;
  summary t

let pp fmt s =
  Format.fprintf fmt
    "@[<h>sent=%d (source=%d hello=%d control=%d) delivered=%d bits=%d rounds=%d depth=%d \
     wakes=%d decides=%d advice=%db faults=%d retransmits=%d corrected=%db@]"
    s.sent s.source_sent s.hello_sent s.control_sent s.delivered s.bits_on_wire s.rounds
    s.causal_depth s.wakes s.decides s.advice_bits s.faults s.retransmits s.corrected_bits
