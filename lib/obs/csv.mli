(** CSV export of telemetry events (import is {!Jsonl}'s job).

    One row per event over a fixed header; fields that do not apply to an
    event kind are left empty.  Numbers are plain decimal, booleans are
    [true]/[false], and the [tag] column is double-quoted with embedded
    quotes doubled, per RFC 4180. *)

val header : string
(** [seq,round,ev,src,src_port,dst,dst_port,cls,bits,informed,depth,node,tag] *)

val columns : int
(** Number of columns in {!header} (and in every data row). *)

val encode : Event.t -> string
(** One data row, no trailing newline. *)

val channel_sink : out_channel -> Sink.t
(** Write the header, then one row per event.  Closing flushes but does
    not close the channel. *)

val file_sink : string -> Sink.t
(** Open (truncate) [file], write the header and one row per event;
    closing the sink closes the file. *)
