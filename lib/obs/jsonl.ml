(* Hand-rolled on purpose: the environment ships no JSON library, and the
   emitted objects are flat with int/bool/string values only. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let encode (ev : Event.t) =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"seq\":%d,\"round\":%d,\"ev\":%S" ev.Event.seq ev.Event.round
    (Event.kind_name ev.Event.kind);
  (match ev.Event.kind with
  | Event.Send l | Event.Deliver l ->
    Printf.bprintf b
      ",\"src\":%d,\"src_port\":%d,\"dst\":%d,\"dst_port\":%d,\"cls\":%S,\"bits\":%d,\"informed\":%b,\"depth\":%d"
      l.Event.src l.Event.src_port l.Event.dst l.Event.dst_port
      (Event.msg_class_name l.Event.cls)
      l.Event.bits l.Event.informed l.Event.depth
  | Event.Wake node -> Printf.bprintf b ",\"node\":%d" node
  | Event.Decide (node, tag) -> Printf.bprintf b ",\"node\":%d,\"tag\":\"%s\"" node (escape tag)
  | Event.Advice_read (node, bits) -> Printf.bprintf b ",\"node\":%d,\"bits\":%d" node bits
  | Event.Fault f -> (
    Printf.bprintf b ",\"fault\":%S" (Event.fault_name f);
    match f with
    | Event.Msg_dropped | Event.Msg_duplicated -> ()
    | Event.Msg_delayed k | Event.Msg_reordered k -> Printf.bprintf b ",\"k\":%d" k
    | Event.Crashed node | Event.Dead node -> Printf.bprintf b ",\"node\":%d" node
    | Event.Advice_tampered (node, how) ->
      Printf.bprintf b ",\"node\":%d,\"tag\":\"%s\"" node (escape how))
  | Event.Recover r -> (
    Printf.bprintf b ",\"recover\":%S" (Event.recovery_name r);
    match r with
    | Event.Msg_retransmitted attempt -> Printf.bprintf b ",\"k\":%d" attempt
    | Event.Advice_corrected (node, bits) ->
      Printf.bprintf b ",\"node\":%d,\"k\":%d" node bits));
  Buffer.add_char b '}';
  Buffer.contents b

(* {1 Decoding} *)

type value = Int of int | Bool of bool | Str of string

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* A cursor over the line being parsed. *)
type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && (c.s.[c.i] = ' ' || c.s.[c.i] = '\t' || c.s.[c.i] = '\n' || c.s.[c.i] = '\r')
  do
    c.i <- c.i + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> bad "expected %C at position %d, found %C" ch c.i x
  | None -> bad "expected %C, found end of line" ch

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if c.i >= String.length c.s then bad "unterminated string";
    let ch = c.s.[c.i] in
    c.i <- c.i + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if c.i >= String.length c.s then bad "unterminated escape";
       let e = c.s.[c.i] in
       c.i <- c.i + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'u' ->
         if c.i + 4 > String.length c.s then bad "truncated \\u escape";
         let hex = String.sub c.s c.i 4 in
         c.i <- c.i + 4;
         let code =
           match int_of_string_opt ("0x" ^ hex) with
           | Some v -> v
           | None -> bad "bad \\u escape %S" hex
         in
         if code > 0xff then bad "\\u escape %S outside the latin-1 range" hex
         else Buffer.add_char b (Char.chr code)
       | e -> bad "unknown escape \\%C" e);
      loop ()
    | ch -> Buffer.add_char b ch; loop ()
  in
  loop ()

let parse_value c =
  skip_ws c;
  match peek c with
  | Some '"' -> Str (parse_string c)
  | Some 't' when c.i + 4 <= String.length c.s && String.sub c.s c.i 4 = "true" ->
    c.i <- c.i + 4;
    Bool true
  | Some 'f' when c.i + 5 <= String.length c.s && String.sub c.s c.i 5 = "false" ->
    c.i <- c.i + 5;
    Bool false
  | Some ('-' | '0' .. '9') ->
    let start = c.i in
    if peek c = Some '-' then c.i <- c.i + 1;
    while (match peek c with Some '0' .. '9' -> true | _ -> false) do
      c.i <- c.i + 1
    done;
    let digits = String.sub c.s start (c.i - start) in
    (match int_of_string_opt digits with
    | Some v -> Int v
    | None -> bad "bad integer %S" digits)
  | Some ch -> bad "unexpected %C at position %d" ch c.i
  | None -> bad "unexpected end of line"

let parse_object line =
  let c = { s = line; i = 0 } in
  expect c '{';
  skip_ws c;
  let fields = ref [] in
  (if peek c = Some '}' then c.i <- c.i + 1
   else
     let rec members () =
       skip_ws c;
       let key = parse_string c in
       expect c ':';
       let v = parse_value c in
       fields := (key, v) :: !fields;
       skip_ws c;
       match peek c with
       | Some ',' ->
         c.i <- c.i + 1;
         members ()
       | Some '}' -> c.i <- c.i + 1
       | Some ch -> bad "expected ',' or '}', found %C" ch
       | None -> bad "unterminated object"
     in
     members ());
  skip_ws c;
  if c.i <> String.length c.s then bad "trailing garbage after object";
  List.rev !fields

let find_int fields key =
  match List.assoc_opt key fields with
  | Some (Int v) -> v
  | Some _ -> bad "field %S is not an integer" key
  | None -> bad "missing field %S" key

let find_bool fields key =
  match List.assoc_opt key fields with
  | Some (Bool v) -> v
  | Some _ -> bad "field %S is not a boolean" key
  | None -> bad "missing field %S" key

let find_str fields key =
  match List.assoc_opt key fields with
  | Some (Str v) -> v
  | Some _ -> bad "field %S is not a string" key
  | None -> bad "missing field %S" key

let link_of_fields fields =
  {
    Event.src = find_int fields "src";
    src_port = find_int fields "src_port";
    dst = find_int fields "dst";
    dst_port = find_int fields "dst_port";
    cls =
      (let name = find_str fields "cls" in
       match Event.msg_class_of_name name with
       | Some c -> c
       | None -> bad "unknown message class %S" name);
    bits = find_int fields "bits";
    informed = find_bool fields "informed";
    depth = find_int fields "depth";
  }

let decode line =
  match
    let fields = parse_object line in
    let kind =
      match find_str fields "ev" with
      | "send" -> Event.Send (link_of_fields fields)
      | "deliver" -> Event.Deliver (link_of_fields fields)
      | "wake" -> Event.Wake (find_int fields "node")
      | "decide" -> Event.Decide (find_int fields "node", find_str fields "tag")
      | "advice" -> Event.Advice_read (find_int fields "node", find_int fields "bits")
      | "fault" ->
        Event.Fault
          (match find_str fields "fault" with
          | "drop" -> Event.Msg_dropped
          | "duplicate" -> Event.Msg_duplicated
          | "delay" -> Event.Msg_delayed (find_int fields "k")
          | "reorder" -> Event.Msg_reordered (find_int fields "k")
          | "crash" -> Event.Crashed (find_int fields "node")
          | "dead" -> Event.Dead (find_int fields "node")
          | "advice" -> Event.Advice_tampered (find_int fields "node", find_str fields "tag")
          | f -> bad "unknown fault kind %S" f)
      | "recover" ->
        Event.Recover
          (match find_str fields "recover" with
          | "retransmit" -> Event.Msg_retransmitted (find_int fields "k")
          | "corrected" ->
            Event.Advice_corrected (find_int fields "node", find_int fields "k")
          | r -> bad "unknown recovery kind %S" r)
      | ev -> bad "unknown event kind %S" ev
    in
    { Event.seq = find_int fields "seq"; round = find_int fields "round"; kind }
  with
  | ev -> Ok ev
  | exception Bad msg -> Error msg

let decode_exn line =
  match decode line with
  | Ok ev -> ev
  | Error msg -> failwith (Printf.sprintf "Obs.Jsonl.decode: %s in %S" msg line)

let channel_sink oc =
  Sink.make
    ~close:(fun () -> flush oc)
    (fun ev ->
      output_string oc (encode ev);
      output_char oc '\n')

let file_sink path =
  let oc = open_out path in
  Sink.make
    ~close:(fun () -> close_out oc)
    (fun ev ->
      output_string oc (encode ev);
      output_char oc '\n')

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc lineno =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> loop acc (lineno + 1)
        | line -> (
          match decode line with
          | Ok ev -> loop (ev :: acc) (lineno + 1)
          | Error msg ->
            failwith (Printf.sprintf "Obs.Jsonl.read_file: %s:%d: %s" path lineno msg))
      in
      loop [] 1)
