(** Offline replay of a recorded trace.

    A JSONL trace (re-read with {!Jsonl.read_file}) contains enough to
    recompute, without re-running the simulation: every counter of the
    metrics contract ({!Counting.summary}), the informed set, and whether
    the run drained its message queue.  This is the audit path: a claimed
    result (say, Theorem 2.1's exactly [n-1] messages, all nodes awake)
    can be checked from the trace artifact alone. *)

type outcome = {
  summary : Counting.summary;  (** the recomputed counters *)
  informed : bool array;
      (** per node: was it woken during the trace?  Reconstructed from
          [Wake] events (length [n]) *)
  all_informed : bool;  (** every node woke up *)
  in_flight : int;
      (** messages handed to the network and never delivered:
          [sent + duplicated + retransmits - dropped - delivered] — 0 for
          a quiescent run, faulty or not, since injected drops and
          duplicates, retransmitted copies, and losses from the [?loss]
          knob (routed through the same typed [Fault Msg_dropped] events)
          are all recorded in the stream *)
  decisions : (int * string) list;  (** [Decide] events, in trace order *)
}

val replay : n:int -> Event.t list -> outcome
(** [replay ~n events] folds a trace over a network of [n] nodes.
    Raises [Invalid_argument] if an event names a node outside
    [0..n-1]. *)
