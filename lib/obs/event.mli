(** The typed telemetry event model.

    Every observable fact produced by a simulation run is one value of
    {!t}: a message being sent or delivered, a node waking up (becoming
    informed), a node committing to a protocol-level decision, or a node's
    advice string being read at start-up.  The simulation runner
    ({!Sim.Runner.run}) emits these events into {!Sink.t} values; the
    counting sink ({!Counting}) folds them back into the exact legacy
    statistics, and the exporters ({!Jsonl}, {!Csv}) serialise them.

    The precise meaning of every derived counter is written down in
    [DESIGN.md], section "Telemetry: the metrics contract"; this module is
    its machine-readable half. *)

type msg_class = Source | Hello | Control
(** The three wire-message classes of {!Sim.Message.t}, with payloads
    abstracted away: telemetry carries the class and the accounted bit
    size, never the payload itself. *)

val msg_class_name : msg_class -> string
(** ["source"], ["hello"] or ["control"] — the names used by the JSONL and
    CSV exporters. *)

val msg_class_of_name : string -> msg_class option
(** Inverse of {!msg_class_name}. *)

type link = {
  src : int;  (** sending node index *)
  src_port : int;  (** port the message leaves through at [src] *)
  dst : int;  (** receiving node index *)
  dst_port : int;  (** port the message arrives on at [dst] *)
  cls : msg_class;  (** message class *)
  bits : int;  (** accounted size, as by {!Sim.Message.size_bits} *)
  informed : bool;  (** was the sender informed when it sent? *)
  depth : int;
      (** causal depth of the message: 1 for start-up sends, one more than
          the triggering delivery otherwise.  The maximum over delivered
          messages is the run's [causal_depth]. *)
}
(** One message crossing one port-labeled edge.  A [Send] and the
    [Deliver] it triggers (if the message is not lost) carry identical
    [link] payloads and the same {!t.seq} stamp. *)

type fault =
  | Msg_dropped
      (** the message with this event's [seq] was destroyed in flight (by a
          fault plan's [drop], or by delivery to a crashed or dead node);
          its [Send] exists, its [Deliver] never will *)
  | Msg_duplicated
      (** an extra copy of the message with this [seq] was enqueued: two
          [Deliver]s will carry the one [Send]'s stamp *)
  | Msg_delayed of int
      (** delivery of the message with this [seq] was held back by this
          many scheduler steps *)
  | Msg_reordered of int  (** a burst of this many in-flight messages was flushed reversed *)
  | Crashed of int  (** the node crash-stopped at this event's [round] *)
  | Dead of int  (** the node began the run dead (stamped at round 0) *)
  | Advice_tampered of int * string
      (** the node's advice string was corrupted before the run; the string
          says how (e.g. ["flip@3"], ["trunc=1"]) — emitted by the fault
          harness, before the runner's stream *)

type recovery =
  | Msg_retransmitted of int
      (** the message with this event's [seq] was destroyed in flight and
          the network layer re-enqueued a fresh copy; the payload is the
          attempt number (1 for the first retry).  The copy faces the
          adversary again: it may be dropped once more (another
          [Fault Msg_dropped]) or finally arrive (a [Deliver] with the
          original [seq]).  Retransmissions are {e not} [Send] events —
          they never count against the paper's message complexity, only
          against the recovery budget ({!Fault.Verdict}). *)
  | Advice_corrected of int * int
      (** [(node, bits)]: the node's error-protected advice string decoded
          with [bits] corrected errors ([bits ≥ 1]; clean decodes emit
          nothing).  Emitted by protection-aware hardened schemes, which
          fall back to flooding only when correction itself fails. *)
(** An active recovery action: the self-healing counterpart of {!fault}. *)

type kind =
  | Send of link  (** a node handed a message to the network *)
  | Deliver of link  (** the network handed a message to its destination *)
  | Wake of int
      (** node became informed: it is the source (stamped at round 0) or
          it received a message from an informed sender for the first
          time *)
  | Decide of int * string
      (** protocol-level commitment by a node, tagged with a
          protocol-chosen label (e.g. ["leader"]); emitted by protocol
          wrappers after quiescence, never by the runner itself *)
  | Advice_read of int * int
      (** [(node, bits)]: the node's advice string of [bits] bits was
          handed to its scheme at start-up.  Summing [bits] recovers the
          oracle size on this network.  Advice is read {e as corrupted}:
          under advice faults the bits counted here are the tampered
          string's. *)
  | Fault of fault
      (** an adversarial injection, recorded so faulty traces stay
          auditable: every fault the plan realises appears in the stream *)
  | Recover of recovery
      (** a recovery action (retransmission, advice correction), recorded
          so self-healing runs stay auditable: repair work is accounted
          separately from the paper's clean-run complexity *)

type t = {
  seq : int;
      (** message sequence number: strictly increasing across [Send]
          events (0, 1, 2, …), equal on a [Deliver] to the [seq] of its
          [Send].  A [Wake] carries the [seq] of the delivery that woke
          the node (0 for the source's initial wake); [Advice_read] events
          are stamped 0, and [Decide] events carry the final sequence
          number of the run they conclude.  A [Recover Msg_retransmitted]
          carries the [seq] of the destroyed message's [Send], except for
          keep-alive timeouts signalling a crashed neighbour, which have no
          originating [Send] and are stamped 0;
          [Recover (Advice_corrected _)] events are stamped 0. *)
  round : int;
      (** synchronous round, or asynchronous step index, at emission;
          non-decreasing along the event stream.  Start-up events are
          stamped with round 0. *)
  kind : kind;
}
(** A stamped telemetry event. *)

val kind_name : kind -> string
(** ["send"], ["deliver"], ["wake"], ["decide"], ["advice"], ["fault"] or
    ["recover"]. *)

val fault_name : fault -> string
(** ["drop"], ["duplicate"], ["delay"], ["reorder"], ["crash"], ["dead"] or
    ["advice"] — the names used by the JSONL and CSV exporters. *)

val recovery_name : recovery -> string
(** ["retransmit"] or ["corrected"] — the names used by the JSONL and CSV
    exporters. *)

val equal : t -> t -> bool
(** Structural equality (used by the exporter round-trip tests). *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering, e.g. [#12 r3 send 0:1->4:0 source 1b informed d2]. *)
