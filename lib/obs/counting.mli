(** The counting sink: folds an event stream into the run statistics.

    This is the telemetry-side definition of every counter in
    {!Sim.Runner.stats}; the runner derives its statistics from exactly
    this fold, so an external counting sink attached to the same run is
    guaranteed to reproduce the legacy numbers (the tests assert it).
    The contract for each field is spelled out in [DESIGN.md]
    §"Telemetry: the metrics contract". *)

type summary = {
  sent : int;  (** number of [Send] events — the paper's message complexity *)
  delivered : int;
      (** number of [Deliver] events; [sent - delivered] messages were
          still in flight (or lost) when the stream ended *)
  source_sent : int;  (** [Send] events of class [Source] *)
  hello_sent : int;  (** [Send] events of class [Hello] *)
  control_sent : int;  (** [Send] events of class [Control] *)
  bits_on_wire : int;  (** sum of [bits] over [Send] events *)
  rounds : int;  (** largest [round] stamp seen (0 on an empty stream) *)
  causal_depth : int;
      (** largest [depth] over [Deliver] events (0 if none) — the longest
          chain of causally dependent deliveries *)
  wakes : int;  (** number of [Wake] events, source included *)
  decides : int;  (** number of [Decide] events *)
  advice_bits : int;
      (** sum of [bits] over [Advice_read] events — the oracle size
          actually handed out on this run *)
  faults : int;  (** number of [Fault] events — adversarial injections of any kind *)
  dropped : int;
      (** [Fault Msg_dropped] events: sends destroyed in flight (fault
          plans, crashed or dead receivers) *)
  duplicated : int;  (** [Fault Msg_duplicated] events: extra enqueued copies *)
  retransmits : int;
      (** [Recover Msg_retransmitted] events: copies re-enqueued by the
          runner's ack/retransmit channel.  Never part of [sent] — repair
          traffic is accounted against the recovery budget, not the
          paper's message complexity *)
  corrected_bits : int;
      (** sum of [bits] over [Recover Advice_corrected] events: advice
          errors repaired by the ECC layer instead of forcing a flooding
          fallback *)
}
(** An immutable snapshot of the counters. *)

type t
(** Mutable counting state. *)

val create : unit -> t

val observe : t -> Event.t -> unit
(** Fold one event into the counters. *)

(** {2 Allocation-free counting}

    Each [note_*] function applies exactly the [observe] arm of the
    corresponding event kind without requiring the caller to build an
    {!Event.t}.  They exist for the runner's sink-less hot path: with no
    sinks attached, a million-message run counts through these and
    allocates no event records at all, yet lands on counters bit-identical
    to a traced run (the scale tests assert it).  [round] is the event's
    round stamp — every note folds it into [rounds] exactly like
    [observe] does. *)

val note_send : t -> round:int -> cls:Event.msg_class -> bits:int -> unit
(** The [Send] arm of [observe]: bumps [sent], the class counter and
    [bits_on_wire]. *)

val note_deliver : t -> round:int -> depth:int -> unit
(** The [Deliver] arm: bumps [delivered], folds [depth] into
    [causal_depth]. *)

val note_wake : t -> round:int -> unit
(** The [Wake] arm: bumps [wakes]. *)

val note_advice : t -> round:int -> bits:int -> unit
(** The [Advice_read] arm: adds [bits] to [advice_bits]. *)

val note_fault : t -> round:int -> Event.fault -> unit
(** The [Fault] arm: bumps [faults] and, for drops/duplicates, the
    matching sub-counter. *)

val note_retransmit : t -> round:int -> unit
(** The [Recover Msg_retransmitted] arm: bumps [retransmits]. *)

val absorb : t -> t -> unit
(** [absorb t other] folds [other]'s counters into [t], leaving [other]
    untouched.  Exact, not approximate: every counter is a sum except
    [rounds] and [causal_depth], which are maxima — both commutative,
    associative folds, so counters accumulated independently per domain
    and absorbed in any order are bit-identical to the sequential fold
    over the same events.  The sharded runner's per-domain counting
    relies on this. *)

val sink : t -> Sink.t
(** [observe] packaged as a {!Sink.t} (closing it is a no-op). *)

val summary : t -> summary
(** Snapshot the current counters. *)

val sent : t -> int
(** The live [Send]-event count (the runner's cutoff check reads this on
    the hot path). *)

val of_events : Event.t list -> summary
(** Fold a recorded stream, e.g. one read back by {!Jsonl.read_file}. *)

val pp : Format.formatter -> summary -> unit
