(** The counting sink: folds an event stream into the run statistics.

    This is the telemetry-side definition of every counter in
    {!Sim.Runner.stats}; the runner derives its statistics from exactly
    this fold, so an external counting sink attached to the same run is
    guaranteed to reproduce the legacy numbers (the tests assert it).
    The contract for each field is spelled out in [DESIGN.md]
    §"Telemetry: the metrics contract". *)

type summary = {
  sent : int;  (** number of [Send] events — the paper's message complexity *)
  delivered : int;
      (** number of [Deliver] events; [sent - delivered] messages were
          still in flight (or lost) when the stream ended *)
  source_sent : int;  (** [Send] events of class [Source] *)
  hello_sent : int;  (** [Send] events of class [Hello] *)
  control_sent : int;  (** [Send] events of class [Control] *)
  bits_on_wire : int;  (** sum of [bits] over [Send] events *)
  rounds : int;  (** largest [round] stamp seen (0 on an empty stream) *)
  causal_depth : int;
      (** largest [depth] over [Deliver] events (0 if none) — the longest
          chain of causally dependent deliveries *)
  wakes : int;  (** number of [Wake] events, source included *)
  decides : int;  (** number of [Decide] events *)
  advice_bits : int;
      (** sum of [bits] over [Advice_read] events — the oracle size
          actually handed out on this run *)
  faults : int;  (** number of [Fault] events — adversarial injections of any kind *)
  dropped : int;
      (** [Fault Msg_dropped] events: sends destroyed in flight (fault
          plans, crashed or dead receivers) *)
  duplicated : int;  (** [Fault Msg_duplicated] events: extra enqueued copies *)
  retransmits : int;
      (** [Recover Msg_retransmitted] events: copies re-enqueued by the
          runner's ack/retransmit channel.  Never part of [sent] — repair
          traffic is accounted against the recovery budget, not the
          paper's message complexity *)
  corrected_bits : int;
      (** sum of [bits] over [Recover Advice_corrected] events: advice
          errors repaired by the ECC layer instead of forcing a flooding
          fallback *)
}
(** An immutable snapshot of the counters. *)

type t
(** Mutable counting state. *)

val create : unit -> t

val observe : t -> Event.t -> unit
(** Fold one event into the counters. *)

val sink : t -> Sink.t
(** [observe] packaged as a {!Sink.t} (closing it is a no-op). *)

val summary : t -> summary
(** Snapshot the current counters. *)

val sent : t -> int
(** The live [Send]-event count (the runner's cutoff check reads this on
    the hot path). *)

val of_events : Event.t list -> summary
(** Fold a recorded stream, e.g. one read back by {!Jsonl.read_file}. *)

val pp : Format.formatter -> summary -> unit
