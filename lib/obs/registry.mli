(** Per-protocol counter registry.

    Each instrumented protocol run (wakeup, broadcast, election, gossip,
    …) deposits one {!record} here, so heterogeneous schemes report
    message class, bits on wire and advice-bit usage through one uniform
    shape.  The default registry is process-global — protocol wrappers in
    [lib/core] note into it automatically — and harnesses can snapshot or
    clear it between experiments, or keep private registries. *)

type record = {
  protocol : string;  (** e.g. ["wakeup"], ["broadcast"], ["gossip-tree"] *)
  scheduler : string;  (** {!Sim.Scheduler.name} of the discipline used *)
  n : int;  (** number of nodes in the network *)
  messages : int;  (** total messages sent *)
  source_msgs : int;  (** messages of class [Source] *)
  hello_msgs : int;  (** messages of class [Hello] *)
  control_msgs : int;  (** messages of class [Control] *)
  bits_on_wire : int;  (** total accounted message bits *)
  rounds : int;  (** rounds (synchronous) or steps (asynchronous) *)
  causal_depth : int;  (** longest causal delivery chain *)
  advice_bits : int;  (** oracle size used by the run *)
  completed : bool;
      (** the protocol's own success criterion: [all_informed] for
          wakeup/broadcast, rumor completeness for gossip, unique correct
          leader for election *)
}
(** One protocol run, summarised uniformly. *)

type t
(** A registry: an ordered log of {!record}s. *)

val create : unit -> t

val default : t
(** The process-global registry the [lib/core] wrappers note into. *)

val note : ?registry:t -> record -> unit
(** Append a record (to {!default} unless [registry] is given). *)

val records : t -> record list
(** All records, oldest first. *)

val by_protocol : t -> string -> record list
(** The records whose [protocol] field matches, oldest first. *)

val length : t -> int

val clear : t -> unit

val pp_record : Format.formatter -> record -> unit
(** One-line rendering, suitable for logs. *)
