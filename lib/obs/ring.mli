(** Bounded in-memory trace: keeps the last [capacity] events.

    Full traces of large runs are long — a broadcast on [n] nodes emits
    several events per message — so an unbounded list ({!Sink.collect})
    does not scale.  The ring keeps memory bounded: once full, each new
    event overwrites the oldest retained one, and {!dropped} reports how
    many were discarded. *)

type t

val create : capacity:int -> t
(** A ring retaining at most [capacity] events.
    Raises [Invalid_argument] if [capacity <= 0]. *)

val sink : t -> Sink.t
(** Feed the ring (closing it is a no-op; the contents stay readable). *)

val push : t -> Event.t -> unit

val contents : t -> Event.t list
(** The retained events, oldest first. *)

val length : t -> int
(** Number of retained events ([<= capacity]). *)

val seen : t -> int
(** Total number of events ever pushed. *)

val dropped : t -> int
(** [seen t - length t]: how many events were overwritten. *)

val clear : t -> unit
(** Empty the ring and reset the counters. *)
