type t = {
  capacity : int;
  mutable slots : Event.t array;  (* empty until the first push *)
  mutable start : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable seen : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Obs.Ring.create: capacity must be positive";
  { capacity; slots = [||]; start = 0; len = 0; seen = 0 }

let push t ev =
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity ev;
  if t.len < t.capacity then begin
    t.slots.((t.start + t.len) mod t.capacity) <- ev;
    t.len <- t.len + 1
  end
  else begin
    t.slots.(t.start) <- ev;
    t.start <- (t.start + 1) mod t.capacity
  end;
  t.seen <- t.seen + 1

let sink t = Sink.make (push t)

let contents t = List.init t.len (fun i -> t.slots.((t.start + i) mod t.capacity))

let length t = t.len

let seen t = t.seen

let dropped t = t.seen - t.len

let clear t =
  t.slots <- [||];
  t.start <- 0;
  t.len <- 0;
  t.seen <- 0
