type outcome = {
  summary : Counting.summary;
  informed : bool array;
  all_informed : bool;
  in_flight : int;
  decisions : (int * string) list;
}

let replay ~n events =
  let informed = Array.make n false in
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Obs.Replay.replay: node %d outside 0..%d" v (n - 1))
  in
  let counts = Counting.create () in
  let decisions = ref [] in
  List.iter
    (fun ev ->
      Counting.observe counts ev;
      match ev.Event.kind with
      | Event.Wake v ->
        check v;
        informed.(v) <- true
      | Event.Decide (v, tag) ->
        check v;
        decisions := (v, tag) :: !decisions
      | Event.Send l | Event.Deliver l ->
        check l.Event.src;
        check l.Event.dst
      | Event.Advice_read (v, _) -> check v
      | Event.Fault (Event.Crashed v | Event.Dead v | Event.Advice_tampered (v, _)) -> check v
      | Event.Fault
          (Event.Msg_dropped | Event.Msg_duplicated | Event.Msg_delayed _ | Event.Msg_reordered _)
        ->
        ()
      | Event.Recover (Event.Advice_corrected (v, _)) -> check v
      | Event.Recover (Event.Msg_retransmitted _) -> ())
    events;
  let summary = Counting.summary counts in
  {
    summary;
    informed;
    all_informed = Array.for_all (fun b -> b) informed;
    (* Duplicated copies deliver without their own Send; dropped sends
       never deliver; retransmitted copies re-enter flight without a new
       Send.  All three are recorded as fault/recover events, so the
       balance still reaches zero on a drained faulty run. *)
    in_flight =
      summary.Counting.sent + summary.Counting.duplicated + summary.Counting.retransmits
      - summary.Counting.dropped - summary.Counting.delivered;
    decisions = List.rev !decisions;
  }
