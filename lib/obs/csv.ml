let header = "seq,round,ev,src,src_port,dst,dst_port,cls,bits,informed,depth,node,tag"

let columns = 13

let quote tag =
  let b = Buffer.create (String.length tag + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
    tag;
  Buffer.add_char b '"';
  Buffer.contents b

let encode (ev : Event.t) =
  let common = Printf.sprintf "%d,%d,%s" ev.Event.seq ev.Event.round (Event.kind_name ev.Event.kind) in
  match ev.Event.kind with
  | Event.Send l | Event.Deliver l ->
    Printf.sprintf "%s,%d,%d,%d,%d,%s,%d,%b,%d,," common l.Event.src l.Event.src_port l.Event.dst
      l.Event.dst_port
      (Event.msg_class_name l.Event.cls)
      l.Event.bits l.Event.informed l.Event.depth
  | Event.Wake node -> Printf.sprintf "%s,,,,,,,,,%d," common node
  | Event.Decide (node, tag) -> Printf.sprintf "%s,,,,,,,,,%d,%s" common node (quote tag)
  | Event.Advice_read (node, bits) -> Printf.sprintf "%s,,,,,,%d,,,%d," common bits node
  (* Faults reuse the cls column for the fault name, bits for a count
     operand, and node/tag for node-level faults — keeping the 13-column
     shape stable across event kinds. *)
  | Event.Fault f -> (
    let fault = Event.fault_name f in
    match f with
    | Event.Msg_dropped | Event.Msg_duplicated -> Printf.sprintf "%s,,,,,%s,,,,," common fault
    | Event.Msg_delayed k | Event.Msg_reordered k ->
      Printf.sprintf "%s,,,,,%s,%d,,,," common fault k
    | Event.Crashed node | Event.Dead node ->
      Printf.sprintf "%s,,,,,%s,,,,%d," common fault node
    | Event.Advice_tampered (node, how) ->
      Printf.sprintf "%s,,,,,%s,,,,%d,%s" common fault node (quote how))
  (* Recoveries follow the fault layout: recovery name in cls, operand in
     bits, node when node-level. *)
  | Event.Recover r -> (
    let rec_name = Event.recovery_name r in
    match r with
    | Event.Msg_retransmitted attempt -> Printf.sprintf "%s,,,,,%s,%d,,,," common rec_name attempt
    | Event.Advice_corrected (node, bits) ->
      Printf.sprintf "%s,,,,,%s,%d,,,%d," common rec_name bits node)

let write oc ev =
  output_string oc (encode ev);
  output_char oc '\n'

let channel_sink oc =
  output_string oc header;
  output_char oc '\n';
  Sink.make ~close:(fun () -> flush oc) (write oc)

let file_sink path =
  let oc = open_out path in
  output_string oc header;
  output_char oc '\n';
  Sink.make ~close:(fun () -> close_out oc) (write oc)
