type msg_class = Source | Hello | Control

let msg_class_name = function Source -> "source" | Hello -> "hello" | Control -> "control"

let msg_class_of_name = function
  | "source" -> Some Source
  | "hello" -> Some Hello
  | "control" -> Some Control
  | _ -> None

type link = {
  src : int;
  src_port : int;
  dst : int;
  dst_port : int;
  cls : msg_class;
  bits : int;
  informed : bool;
  depth : int;
}

type kind =
  | Send of link
  | Deliver of link
  | Wake of int
  | Decide of int * string
  | Advice_read of int * int

type t = { seq : int; round : int; kind : kind }

let kind_name = function
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Wake _ -> "wake"
  | Decide _ -> "decide"
  | Advice_read _ -> "advice"

let equal a b = a = b

let pp_link fmt l =
  Format.fprintf fmt "%d:%d->%d:%d %s %db%s d%d" l.src l.src_port l.dst l.dst_port
    (msg_class_name l.cls) l.bits
    (if l.informed then " informed" else "")
    l.depth

let pp fmt t =
  Format.fprintf fmt "#%d r%d %s " t.seq t.round (kind_name t.kind);
  match t.kind with
  | Send l | Deliver l -> pp_link fmt l
  | Wake v -> Format.fprintf fmt "node %d" v
  | Decide (v, tag) -> Format.fprintf fmt "node %d %S" v tag
  | Advice_read (v, bits) -> Format.fprintf fmt "node %d %db" v bits
