type msg_class = Source | Hello | Control

let msg_class_name = function Source -> "source" | Hello -> "hello" | Control -> "control"

let msg_class_of_name = function
  | "source" -> Some Source
  | "hello" -> Some Hello
  | "control" -> Some Control
  | _ -> None

type link = {
  src : int;
  src_port : int;
  dst : int;
  dst_port : int;
  cls : msg_class;
  bits : int;
  informed : bool;
  depth : int;
}

type fault =
  | Msg_dropped
  | Msg_duplicated
  | Msg_delayed of int
  | Msg_reordered of int
  | Crashed of int
  | Dead of int
  | Advice_tampered of int * string

type recovery =
  | Msg_retransmitted of int
  | Advice_corrected of int * int

type kind =
  | Send of link
  | Deliver of link
  | Wake of int
  | Decide of int * string
  | Advice_read of int * int
  | Fault of fault
  | Recover of recovery

type t = { seq : int; round : int; kind : kind }

let kind_name = function
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Wake _ -> "wake"
  | Decide _ -> "decide"
  | Advice_read _ -> "advice"
  | Fault _ -> "fault"
  | Recover _ -> "recover"

let fault_name = function
  | Msg_dropped -> "drop"
  | Msg_duplicated -> "duplicate"
  | Msg_delayed _ -> "delay"
  | Msg_reordered _ -> "reorder"
  | Crashed _ -> "crash"
  | Dead _ -> "dead"
  | Advice_tampered _ -> "advice"

let recovery_name = function
  | Msg_retransmitted _ -> "retransmit"
  | Advice_corrected _ -> "corrected"

let equal a b = a = b

let pp_link fmt l =
  Format.fprintf fmt "%d:%d->%d:%d %s %db%s d%d" l.src l.src_port l.dst l.dst_port
    (msg_class_name l.cls) l.bits
    (if l.informed then " informed" else "")
    l.depth

let pp_fault fmt = function
  | Msg_dropped -> Format.pp_print_string fmt "message dropped"
  | Msg_duplicated -> Format.pp_print_string fmt "message duplicated"
  | Msg_delayed k -> Format.fprintf fmt "message delayed %d steps" k
  | Msg_reordered k -> Format.fprintf fmt "burst of %d reordered" k
  | Crashed v -> Format.fprintf fmt "node %d crashed" v
  | Dead v -> Format.fprintf fmt "node %d initially dead" v
  | Advice_tampered (v, how) -> Format.fprintf fmt "node %d advice %s" v how

let pp_recovery fmt = function
  | Msg_retransmitted attempt -> Format.fprintf fmt "retransmission attempt %d" attempt
  | Advice_corrected (v, bits) -> Format.fprintf fmt "node %d advice: %d bit(s) corrected" v bits

let pp fmt t =
  Format.fprintf fmt "#%d r%d %s " t.seq t.round (kind_name t.kind);
  match t.kind with
  | Send l | Deliver l -> pp_link fmt l
  | Wake v -> Format.fprintf fmt "node %d" v
  | Decide (v, tag) -> Format.fprintf fmt "node %d %S" v tag
  | Advice_read (v, bits) -> Format.fprintf fmt "node %d %db" v bits
  | Fault f -> pp_fault fmt f
  | Recover r -> pp_recovery fmt r
