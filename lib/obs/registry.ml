type record = {
  protocol : string;
  scheduler : string;
  n : int;
  messages : int;
  source_msgs : int;
  hello_msgs : int;
  control_msgs : int;
  bits_on_wire : int;
  rounds : int;
  causal_depth : int;
  advice_bits : int;
  completed : bool;
}

type t = { mutable entries : record list (* newest first *) }

let create () = { entries = [] }

let default = create ()

let note ?(registry = default) r = registry.entries <- r :: registry.entries

let records t = List.rev t.entries

let by_protocol t name = List.rev (List.filter (fun r -> r.protocol = name) t.entries)

let length t = List.length t.entries

let clear t = t.entries <- []

let pp_record fmt r =
  Format.fprintf fmt
    "@[<h>%s[%s] n=%d msgs=%d (src=%d hello=%d ctl=%d) bits=%d rounds=%d depth=%d advice=%db \
     completed=%b@]"
    r.protocol r.scheduler r.n r.messages r.source_msgs r.hello_msgs r.control_msgs
    r.bits_on_wire r.rounds r.causal_depth r.advice_bits r.completed
