(** Oracles, as defined in Section 1.2.

    An oracle is a function whose arguments are networks and whose value
    [O(G)] assigns a binary string to every node.  The source is part of
    the network instance (the status bit distinguishes it), so the advising
    function receives it explicitly. *)

type t = {
  name : string;
  advise : Netgraph.Graph.t -> source:int -> Advice.t;
}

val make : name:string -> (Netgraph.Graph.t -> source:int -> Advice.t) -> t

val empty : t
(** Assigns the empty string to everyone — size [0]. *)

val size_on : t -> Netgraph.Graph.t -> source:int -> int
(** [size_on o g ~source] is the oracle's size on [G]. *)

val advice_fun : t -> Netgraph.Graph.t -> source:int -> int -> Bitstring.Bitbuf.t
(** The per-node advice lookup in the form {!Sim.Runner.run} expects. *)

val union : name:string -> t -> t -> t
(** [union ~name a b] concatenates the two oracles' advice per node
    ([a]'s bits first).  Size is the sum of sizes — the natural way to
    provision one network for several tasks at once.  Decoders must know
    where the split is; pair it with self-delimiting codes (every code in
    {!Bitstring.Codes} is). *)

val truncate : t -> budget:int -> t
(** [truncate o ~budget] clips the total advice to at most [budget] bits:
    nodes are served in index order and a node whose string would overflow
    the remaining budget gets only the prefix that fits.  Used to probe
    how schemes degrade when the oracle is too small (Theorems 2.2 and
    3.2 say: badly). *)
