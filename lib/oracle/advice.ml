type t = Bitstring.Bitbuf.t array

let make a = a

let empty ~n = Array.init n (fun _ -> Bitstring.Bitbuf.create ())

let get t v = t.(v)

let n t = Array.length t

let size_bits t = Array.fold_left (fun acc b -> acc + Bitstring.Bitbuf.length b) 0 t

let nonempty_nodes t =
  Array.fold_left (fun acc b -> if Bitstring.Bitbuf.is_empty b then acc else acc + 1) 0 t

let max_node_bits t = Array.fold_left (fun acc b -> max acc (Bitstring.Bitbuf.length b)) 0 t

let mapi f t = Array.mapi f t

let pp fmt t =
  Format.fprintf fmt "@[<v>advice (%d bits total)" (size_bits t);
  Array.iteri
    (fun v b ->
      if not (Bitstring.Bitbuf.is_empty b) then
        Format.fprintf fmt "@,%d: %a" v Bitstring.Bitbuf.pp b)
    t;
  Format.fprintf fmt "@]"
