(** Error-protected oracles.

    [Protect] lifts the ECC layer ({!Bitstring.Ecc}) from single bit
    strings to whole oracles: every node's advice string is encoded
    independently, so corruption of one node's advice never contaminates
    another's, and a node can decode (and correct) on its own at wake-up
    — exactly the locality the paper's model demands.

    Protection is paid for in the oracle-size measure: the protected
    oracle's size on [G] is [Σ_v protected_length level |f(v)|], which
    {!Bitstring.Ecc.protected_length} makes exact.  [Hamming] keeps the
    total within 3× of the raw size on every network (tested); that is
    the price of turning single-bit advice attacks from a Θ(m) flooding
    fallback into a local correction. *)

val advice : Bitstring.Ecc.level -> Advice.t -> Advice.t
(** Encode every node's string; empty strings stay empty. *)

val oracle : Bitstring.Ecc.level -> Oracle.t -> Oracle.t
(** The protected oracle: advises [advice level (o.advise g ~source)].
    Its name is [<name>|ecc:<level>] ([Raw] returns the oracle
    unchanged). *)

val size_bits : Bitstring.Ecc.level -> Advice.t -> int
(** Protected total size of a raw assignment, without encoding it:
    [Σ_v protected_length level |f(v)|]. *)
