(** Advice assignments: the value [f = O(G)] of an oracle on a network —
    one binary string per node.  The size of the assignment (total bits) is
    the paper's oracle-size measure. *)

type t

val make : Bitstring.Bitbuf.t array -> t
(** One buffer per node index.  The array is not copied. *)

val empty : n:int -> t
(** Every node gets the empty string. *)

val get : t -> int -> Bitstring.Bitbuf.t

val n : t -> int

val size_bits : t -> int
(** Total length of all strings — the oracle size on this network. *)

val nonempty_nodes : t -> int
(** How many nodes received at least one bit. *)

val max_node_bits : t -> int

val mapi : (int -> Bitstring.Bitbuf.t -> Bitstring.Bitbuf.t) -> t -> t
(** [mapi f t] is a new assignment with [f v (get t v)] at every node; the
    original is untouched (but [f] must return fresh buffers, not mutate
    its argument).  This is the hook the fault-injection subsystem uses to
    corrupt advice as a pure transform. *)

val pp : Format.formatter -> t -> unit
