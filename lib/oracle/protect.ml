module Ecc = Bitstring.Ecc

let advice level adv = Advice.mapi (fun _ b -> Ecc.protect level b) adv

let oracle level (o : Oracle.t) =
  match level with
  | Ecc.Raw -> o
  | _ ->
    Oracle.make
      ~name:(Printf.sprintf "%s|ecc:%s" o.Oracle.name (Ecc.name level))
      (fun g ~source -> advice level (o.Oracle.advise g ~source))

let size_bits level adv =
  let total = ref 0 in
  for v = 0 to Advice.n adv - 1 do
    total := !total + Ecc.protected_length level (Bitstring.Bitbuf.length (Advice.get adv v))
  done;
  !total
