type t = {
  name : string;
  advise : Netgraph.Graph.t -> source:int -> Advice.t;
}

let make ~name advise = { name; advise }

let empty = make ~name:"empty" (fun g ~source:_ -> Advice.empty ~n:(Netgraph.Graph.n g))

let size_on t g ~source = Advice.size_bits (t.advise g ~source)

let advice_fun t g ~source =
  let advice = t.advise g ~source in
  fun v -> Advice.get advice v

let union ~name a b =
  let advise g ~source =
    let adv_a = a.advise g ~source and adv_b = b.advise g ~source in
    Advice.make
      (Array.init (Advice.n adv_a) (fun v ->
           let buf = Bitstring.Bitbuf.copy (Advice.get adv_a v) in
           Bitstring.Bitbuf.append buf (Advice.get adv_b v);
           buf))
  in
  { name; advise }

let truncate t ~budget =
  if budget < 0 then invalid_arg "Oracle.truncate: negative budget";
  let advise g ~source =
    let full = t.advise g ~source in
    let remaining = ref budget in
    let clipped =
      Array.init (Advice.n full) (fun v ->
          let b = Advice.get full v in
          let len = Bitstring.Bitbuf.length b in
          let keep = min len !remaining in
          remaining := !remaining - keep;
          if keep = len then Bitstring.Bitbuf.copy b
          else begin
            let out = Bitstring.Bitbuf.create ~capacity:keep () in
            for i = 0 to keep - 1 do
              Bitstring.Bitbuf.add_bit out (Bitstring.Bitbuf.get b i)
            done;
            out
          end)
    in
    Advice.make clipped
  in
  { name = Printf.sprintf "%s|truncated(%d)" t.name budget; advise }
