module Bitbuf = Bitstring.Bitbuf
module Binary = Bitstring.Binary
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph

let full_map =
  Oracle.make ~name:"full-map" (fun g ~source:_ ->
      let encoded = Netgraph.Codec.encode g in
      Advice.make (Array.init (Graph.n g) (fun _ -> Bitbuf.copy encoded)))

let source_map =
  Oracle.make ~name:"source-map" (fun g ~source ->
      Advice.make
        (Array.init (Graph.n g) (fun v ->
             if v = source then Netgraph.Codec.encode g else Bitbuf.create ())))

let neighbor_labels =
  Oracle.make ~name:"neighbor-labels" (fun g ~source:_ ->
      Advice.make
        (Array.init (Graph.n g) (fun v ->
             let buf = Bitbuf.create () in
             List.iter
               (fun (_, nbr, _) -> Codes.write_gamma buf (Graph.label g nbr))
               (Graph.neighbors g v);
             buf)))

let bfs_children_fixed =
  Oracle.make ~name:"bfs-children-fixed" (fun g ~source ->
      let tree = Netgraph.Spanning.bfs g ~root:source in
      let width = max 1 (Binary.ceil_log2 (Graph.n g)) in
      Advice.make
        (Array.init (Graph.n g) (fun v ->
             let buf = Bitbuf.create () in
             let ports = Netgraph.Spanning.children_ports tree v in
             Codes.write_gamma buf (List.length ports);
             if ports <> [] then begin
               Codes.write_gamma buf width;
               List.iter (fun p -> Bitbuf.add_int buf ~width p) ports
             end;
             buf)))

let parent_port =
  Oracle.make ~name:"parent-port" (fun g ~source ->
      let tree = Netgraph.Spanning.bfs g ~root:source in
      Advice.make
        (Array.init (Graph.n g) (fun v ->
             let buf = Bitbuf.create () in
             (match tree.Netgraph.Spanning.parent.(v) with
             | None -> ()
             | Some (_, port_to_parent) -> Codes.write_gamma buf port_to_parent);
             buf)))

let all = [ full_map; source_map; neighbor_labels; bfs_children_fixed; parent_port ]

let decode_map buf = Netgraph.Codec.decode (Bitbuf.reader buf)

let decode_children_fixed buf =
  if Bitbuf.is_empty buf then []
  else begin
    let r = Bitbuf.reader buf in
    let count = Codes.read_gamma r in
    if count = 0 then []
    else begin
      let width = Codes.read_gamma r in
      List.init count (fun _ -> Bitbuf.read_int r ~width)
    end
  end
