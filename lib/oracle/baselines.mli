(** Baseline oracles, representing the traditional "particular items of
    information" the paper contrasts its quantitative approach with.

    Sizes on an n-node, m-edge network:
    - {!full_map}: [Θ(n·m log n)] — everyone knows the whole network.
    - {!source_map}: [Θ(m log n)] — only the source knows the network.
    - {!neighbor_labels}: [Θ(m log n)] — everyone knows its neighbors'
      labels in port order (knowledge-of-neighborhood assumption).
    - {!bfs_children_fixed}: [Θ(n log n)] — BFS-tree children ports, each
      in fixed width [⌈log n⌉] with a count prefix: the naive form of the
      Theorem 2.1 oracle.
    - {!parent_port}: each non-root node learns the port towards its BFS
      parent (enough for convergecast, not dissemination). *)

val full_map : Oracle.t

val source_map : Oracle.t

val neighbor_labels : Oracle.t

val bfs_children_fixed : Oracle.t

val parent_port : Oracle.t

val all : Oracle.t list

(** {1 Decoders} *)

val decode_map : Bitstring.Bitbuf.t -> Netgraph.Graph.t
(** Recover the network from a {!full_map} or {!source_map} advice
    string. *)

val decode_children_fixed : Bitstring.Bitbuf.t -> int list
(** Recover the port list from a {!bfs_children_fixed} advice string. *)
