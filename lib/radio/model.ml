module Graph = Netgraph.Graph

type protocol = {
  protocol_name : string;
  make_node :
    n_hint:int -> advice:Bitstring.Bitbuf.t -> id:int -> round:int -> informed:bool -> bool;
}

type result = {
  rounds : int;
  transmissions : int;
  collisions : int;
  informed : bool array;
  all_informed : bool;
}

let run ?max_rounds ~advice g ~source protocol =
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with
    | Some v -> v
    | None -> 64 * n * (Netgraph.Traverse.diameter g + 1)
  in
  let informed = Array.make n false in
  informed.(source) <- true;
  let nodes =
    Array.init n (fun v ->
        protocol.make_node ~n_hint:n ~advice:(advice v) ~id:(Graph.label g v))
  in
  let transmissions = ref 0 in
  let collisions = ref 0 in
  let informed_count = ref 1 in
  let round = ref 0 in
  while !informed_count < n && !round < max_rounds do
    incr round;
    let transmitting = Array.make n false in
    for v = 0 to n - 1 do
      if nodes.(v) ~round:!round ~informed:informed.(v) && informed.(v) then begin
        transmitting.(v) <- true;
        incr transmissions
      end
    done;
    (* Reception: exactly one transmitting neighbor. *)
    let newly = ref [] in
    for v = 0 to n - 1 do
      if not informed.(v) then begin
        let senders =
          List.fold_left
            (fun acc (_, nbr, _) -> if transmitting.(nbr) then acc + 1 else acc)
            0 (Graph.neighbors g v)
        in
        if senders = 1 then newly := v :: !newly
        else if senders > 1 then incr collisions
      end
    done;
    List.iter
      (fun v ->
        informed.(v) <- true;
        incr informed_count)
      !newly
  done;
  {
    rounds = !round;
    transmissions = !transmissions;
    collisions = !collisions;
    informed;
    all_informed = !informed_count = n;
  }
