(** Synchronous radio networks.

    The paper's introduction (§1.1) uses broadcasting in radio networks as
    prime evidence that knowledge drives efficiency: with complete
    topology knowledge deterministic broadcast takes [O(D + log² n)]
    rounds, while with only label knowledge [Ω(n log D)] rounds are
    needed.  This substrate reproduces the regime difference with three
    classic protocols (see {!Protocols}) under the standard model:

    rounds are synchronous; in each round every {e informed} node either
    transmits or stays silent; an uninformed node receives a message in a
    round iff {e exactly one} of its neighbors transmits (simultaneous
    transmissions collide and are indistinguishable from silence — no
    collision detection). *)

type protocol = {
  protocol_name : string;
  make_node : n_hint:int -> advice:Bitstring.Bitbuf.t -> id:int -> round:int -> informed:bool -> bool;
      (** [make_node ~n_hint ~advice ~id] instantiates a node's transmit
          predicate: called once per round with the global round number
          (1-based) and whether the node is informed; returns whether it
          transmits.  Uninformed transmissions are ignored by the runner
          (only informed nodes hold the message). *)
}

type result = {
  rounds : int;  (** rounds until everyone was informed (or the cutoff) *)
  transmissions : int;  (** total (informed) transmissions *)
  collisions : int;  (** receiver-side collision events *)
  informed : bool array;
  all_informed : bool;
}

val run :
  ?max_rounds:int ->
  advice:(int -> Bitstring.Bitbuf.t) ->
  Netgraph.Graph.t ->
  source:int ->
  protocol ->
  result
(** Default [max_rounds]: [64 * n * (D+1)] — past every protocol here. *)
