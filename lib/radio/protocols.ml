module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph

let round_robin =
  {
    Model.protocol_name = "round-robin";
    make_node =
      (fun ~n_hint ~advice:_ ~id ~round ~informed ->
        informed && ((round - 1) mod n_hint) + 1 = id);
  }

let decay ~seed =
  {
    Model.protocol_name = Printf.sprintf "decay(%d)" seed;
    make_node =
      (fun ~n_hint ~advice:_ ~id ->
        let st = Random.State.make [| seed; id |] in
        let phase_len = Bitstring.Binary.ceil_log2 (max 2 n_hint) + 1 in
        fun ~round ~informed ->
          informed
          &&
          let i = (round - 1) mod phase_len in
          Random.State.float st 1.0 < Float.exp2 (float_of_int (-i)));
  }

let schedule_rounds g ~source =
  let n = Graph.n g in
  let dist, _ = Netgraph.Traverse.bfs g ~root:source in
  let max_layer = Array.fold_left max 0 dist in
  let rounds_of = Array.make n [] in
  let informed = Array.make n false in
  informed.(source) <- true;
  let round = ref 0 in
  for layer = 0 to max_layer - 1 do
    let frontier = ref [] in
    Array.iteri (fun v d -> if d = layer then frontier := v :: !frontier) dist;
    let uncovered = Hashtbl.create 16 in
    Array.iteri
      (fun v d -> if d = layer + 1 && not informed.(v) then Hashtbl.replace uncovered v ())
      dist;
    while Hashtbl.length uncovered > 0 do
      (* Greedy: the frontier node covering the most uncovered targets. *)
      let best = ref None in
      List.iter
        (fun u ->
          let gain =
            List.fold_left
              (fun acc (_, nbr, _) -> if Hashtbl.mem uncovered nbr then acc + 1 else acc)
              0 (Graph.neighbors g u)
          in
          match !best with
          | Some (_, bg) when bg >= gain -> ()
          | _ -> if gain > 0 then best := Some (u, gain))
        !frontier;
      match !best with
      | None ->
        (* Unreachable on a connected graph: every uncovered layer-(l+1)
           node has a layer-l neighbor. *)
        Hashtbl.reset uncovered
      | Some (u, _) ->
        incr round;
        rounds_of.(u) <- !round :: rounds_of.(u);
        List.iter
          (fun (_, nbr, _) ->
            if Hashtbl.mem uncovered nbr then begin
              Hashtbl.remove uncovered nbr;
              informed.(nbr) <- true
            end)
          (Graph.neighbors g u)
    done
  done;
  (Array.map List.rev rounds_of, !round)

let schedule_oracle g ~source =
  let rounds_of, _ = schedule_rounds g ~source in
  Oracles.Advice.make
    (Array.map
       (fun rounds ->
         let buf = Bitbuf.create () in
         Codes.write_gamma buf (List.length rounds);
         List.iter (Codes.write_gamma buf) rounds;
         buf)
       rounds_of)

let schedule_length g ~source = snd (schedule_rounds g ~source)

let scheduled =
  {
    Model.protocol_name = "scheduled";
    make_node =
      (fun ~n_hint:_ ~advice ~id:_ ->
        let rounds =
          if Bitbuf.is_empty advice then []
          else begin
            let r = Bitbuf.reader advice in
            let count = Codes.read_gamma r in
            List.init count (fun _ -> Codes.read_gamma r)
          end
        in
        fun ~round ~informed -> informed && List.mem round rounds);
  }
