(** Radio broadcast protocols at three knowledge levels.

    - {!round_robin}: labels only, deterministic — node with label
      [((t-1) mod n) + 1] transmits in round [t].  Collision-free by
      construction; completes within [n·D] rounds.
    - {!decay}: labels only, randomized (Bar-Yehuda–Goldreich–Itai) — in
      round [t], an informed node transmits with probability
      [2^-(t mod (⌈log n⌉+1))].  Expected [O((D + log n)·log n)] rounds.
    - {!scheduled}: full topology knowledge, compiled into per-node advice
      by {!schedule_oracle} — one designated transmitter per round,
      sweeping the BFS layers with a greedy cover, so broadcast is
      deterministic and collision-free.  The advice size is the price of
      that knowledge, measured in E15. *)

val round_robin : Model.protocol

val decay : seed:int -> Model.protocol

val scheduled : Model.protocol
(** Transmits in exactly the rounds gamma-listed in its advice. *)

val schedule_oracle : Netgraph.Graph.t -> source:int -> Oracles.Advice.t
(** Greedy per-layer single-transmitter schedule.  Guarantees that
    {!scheduled} informs everyone, in at most [n-1] rounds (often far
    fewer: one round per greedy cover element). *)

val schedule_length : Netgraph.Graph.t -> source:int -> int
(** Rounds the schedule uses. *)
