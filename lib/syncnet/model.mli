(** Synchronous point-to-point message passing.

    The paper's lower bounds already hold for synchronous communication;
    this model is the synchronous sibling of {!Sim} used for protocols
    that genuinely need a common round structure (the distributed MST of
    {!Boruvka}).  Every node is activated every round with the messages
    sent to it in the previous round, and can therefore keep a local round
    counter — the capability that separates this model from the
    event-driven asynchronous one. *)

type payload = Bitstring.Bitbuf.t

type node = {
  on_round : inbox:(int * payload) list -> (payload * int) list;
      (** Called once per round with [(port, payload)] deliveries from the
          previous round; returns this round's sends as [(payload, port)]. *)
  finished : unit -> bool;
      (** Local termination flag; the run stops when everyone is finished
          and nothing is in flight. *)
}

type factory = n_hint:int -> advice:payload -> id:int -> degree:int -> node

type result = {
  rounds : int;
  messages : int;
  bits_on_wire : int;
  all_finished : bool;  (** false when the round budget ran out *)
}

val run :
  ?max_rounds:int ->
  advice:(int -> payload) ->
  Netgraph.Graph.t ->
  factory ->
  result
(** Default [max_rounds]: [64 * (n + 2)²] — far past the protocols here.
    Raises [Invalid_argument] if a node emits an out-of-range port. *)
