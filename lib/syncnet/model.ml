module Graph = Netgraph.Graph

type payload = Bitstring.Bitbuf.t

type node = {
  on_round : inbox:(int * payload) list -> (payload * int) list;
  finished : unit -> bool;
}

type factory = n_hint:int -> advice:payload -> id:int -> degree:int -> node

type result = {
  rounds : int;
  messages : int;
  bits_on_wire : int;
  all_finished : bool;
}

let run ?max_rounds ~advice g factory =
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with Some v -> v | None -> 64 * (n + 2) * (n + 2)
  in
  let nodes =
    Array.init n (fun v ->
        factory ~n_hint:n ~advice:(advice v) ~id:(Graph.label g v) ~degree:(Graph.degree g v))
  in
  let messages = ref 0 in
  let bits = ref 0 in
  let rounds = ref 0 in
  let inboxes = Array.make n [] in
  let next_inboxes = Array.make n [] in
  let continue = ref true in
  while !continue && !rounds < max_rounds do
    incr rounds;
    Array.fill next_inboxes 0 n [];
    let sent_this_round = ref 0 in
    for v = 0 to n - 1 do
      let sends = nodes.(v).on_round ~inbox:(List.rev inboxes.(v)) in
      List.iter
        (fun (payload, port) ->
          if port < 0 || port >= Graph.degree g v then
            invalid_arg
              (Printf.sprintf "Syncnet: node %d (degree %d) sends on port %d" v
                 (Graph.degree g v) port);
          let dst, dst_port = Graph.endpoint g v port in
          next_inboxes.(dst) <- (dst_port, payload) :: next_inboxes.(dst);
          incr messages;
          incr sent_this_round;
          bits := !bits + max 1 (Bitstring.Bitbuf.length payload))
        sends
    done;
    Array.blit next_inboxes 0 inboxes 0 n;
    let everyone_finished =
      Array.for_all (fun node -> node.finished ()) nodes
    in
    if everyone_finished && !sent_this_round = 0 then continue := false
  done;
  {
    rounds = !rounds;
    messages = !messages;
    bits_on_wire = !bits;
    all_finished = Array.for_all (fun node -> node.finished ()) nodes;
  }
