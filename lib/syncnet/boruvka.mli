(** Distributed minimum-spanning-tree construction (synchronous Borůvka),
    the second construction task named in the paper's Section 1.2.

    Weights are the paper's [w(e) = min port], tie-broken by endpoint
    labels ({!Netgraph.Mst.edge_order}), so the MST is unique and the
    distributed output can be compared edge-for-edge with the centralized
    Kruskal reference.

    The protocol is phase-synchronous Borůvka: phases of [3n+10] rounds in
    which every fragment (a) tests all non-tree ports to learn which are
    outgoing, (b) convergecasts its minimum outgoing edge to the fragment
    leader, (c) routes a connect token to that edge and crosses it, and
    (d) floods the merged fragment with its new identity from the core
    (the unique mutually-chosen edge; the larger-label endpoint leads).
    Fragments at least halve in number per phase: [O(log n)] phases,
    [O(m log n)] messages — versus {e zero} messages when a
    [Θ(n log Δ)]-bit oracle hands every node its MST ports
    ({!advised_build}, {!mst_ports_oracle}). *)

type outcome = {
  result : Model.result;
  advice_bits : int;
  edges : Netgraph.Graph.edge list option;
      (** the constructed tree ([None] if node outputs were inconsistent) *)
  matches_reference : bool;  (** equals the Kruskal MST, edge for edge *)
}

val distributed_build : ?max_rounds:int -> Netgraph.Graph.t -> outcome
(** Run the synchronous Borůvka protocol with zero advice. *)

val protocol_node : (int -> (unit -> int list) -> unit) -> Model.factory
(** The raw protocol node (exposed for instrumented runs and tests).  The
    first argument is a sink receiving, per node label, a thunk that
    reads the node's current MST ports. *)

val mst_ports_oracle : Oracles.Oracle.t
(** Advice: each node's MST-incident ports, marked-bit coded. *)

val advised_build : Netgraph.Graph.t -> outcome
(** Read the tree straight out of the oracle: zero messages. *)
