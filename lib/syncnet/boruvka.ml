module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes
module Graph = Netgraph.Graph

(* Wire format, tag in 3 bits. *)
type message =
  | Test of { frag : int; label : int; out_port : int }
  | Report of (int * int * int) option  (* the subtree's best key, if any *)
  | Pursue
  | Connect
  | New_frag of { frag : int; finished : bool }

let encode msg =
  let buf = Bitbuf.create () in
  (match msg with
  | Test { frag; label; out_port } ->
    Bitbuf.add_int buf ~width:3 0;
    Codes.write_gamma buf frag;
    Codes.write_gamma buf label;
    Codes.write_gamma buf out_port
  | Report best ->
    Bitbuf.add_int buf ~width:3 1;
    (match best with
    | None -> Bitbuf.add_bit buf false
    | Some (w, a, b) ->
      Bitbuf.add_bit buf true;
      Codes.write_gamma buf w;
      Codes.write_gamma buf a;
      Codes.write_gamma buf b)
  | Pursue -> Bitbuf.add_int buf ~width:3 2
  | Connect -> Bitbuf.add_int buf ~width:3 3
  | New_frag { frag; finished } ->
    Bitbuf.add_int buf ~width:3 4;
    Codes.write_gamma buf frag;
    Bitbuf.add_bit buf finished);
  buf

let decode buf =
  let r = Bitbuf.reader buf in
  match Bitbuf.read_int r ~width:3 with
  | 0 ->
    let frag = Codes.read_gamma r in
    let label = Codes.read_gamma r in
    let out_port = Codes.read_gamma r in
    Test { frag; label; out_port }
  | 1 ->
    if Bitbuf.read_bit r then begin
      let w = Codes.read_gamma r in
      let a = Codes.read_gamma r in
      let b = Codes.read_gamma r in
      Report (Some (w, a, b))
    end
    else Report None
  | 2 -> Pursue
  | 3 -> Connect
  | 4 ->
    let frag = Codes.read_gamma r in
    let finished = Bitbuf.read_bit r in
    New_frag { frag; finished }
  | tag -> invalid_arg (Printf.sprintf "Boruvka.decode: bad tag %d" tag)

type via = Self of int | Child of int

let better a b =
  match a, b with
  | None, x | x, None -> x
  | Some (ka, _), Some (kb, _) -> if ka <= kb then a else b

(* The protocol node.  [sink] receives a thunk exposing the node's final
   MST ports. *)
let protocol_node sink ~n_hint ~advice:_ ~id ~degree =
  let t_phase = (3 * n_hint) + 10 in
  let round = ref 0 in
  let frag = ref id in
  let parent : int option ref = ref None in
  let tree = Array.make (max degree 1) false in
  let finished_flag = ref false in
  (* Per-phase state. *)
  let port_frag = Array.make (max degree 1) None in
  let port_label = Array.make (max degree 1) 0 in
  let port_outport = Array.make (max degree 1) 0 in
  let pending = ref 0 in
  let reported = ref false in
  let best : ((int * int * int) * via) option ref = ref None in
  let sent_connect : int option ref = ref None in
  let got_connect = Array.make (max degree 1) false in
  (* The fragment identity adopted this phase, once the merge resolves. *)
  let announced : (int * bool) option ref = ref None in
  sink id (fun () ->
      List.filter (fun p -> tree.(p)) (List.init degree (fun p -> p)));
  let children () =
    List.filter
      (fun p -> tree.(p) && Some p <> !parent)
      (List.init degree (fun p -> p))
  in
  let on_round ~inbox =
    let offset = !round mod t_phase in
    incr round;
    if !finished_flag then []
    else begin
      let out = ref [] in
      let send msg port = out := (encode msg, port) :: !out in
      (* Phase start: reset and test. *)
      if offset = 0 then begin
        Array.fill port_frag 0 (Array.length port_frag) None;
        Array.fill got_connect 0 (Array.length got_connect) false;
        pending := List.length (children ());
        reported := false;
        best := None;
        sent_connect := None;
        announced := None;
        for p = 0 to degree - 1 do
          if not tree.(p) then send (Test { frag = !frag; label = id; out_port = p }) p
        done
      end;
      (* Deliveries. *)
      List.iter
        (fun (port, payload) ->
          match decode payload with
          | Test { frag = f; label; out_port } ->
            port_frag.(port) <- Some f;
            port_label.(port) <- label;
            port_outport.(port) <- out_port
          | Report sub_best ->
            decr pending;
            (match sub_best with
            | Some key -> best := better !best (Some (key, Child port))
            | None -> ())
          | Pursue -> (
            match !best with
            | Some (_, Self p) ->
              tree.(p) <- true;
              sent_connect := Some p;
              send Connect p
            | Some (_, Child c) -> send Pursue c
            | None -> ())
          | Connect ->
            tree.(port) <- true;
            got_connect.(port) <- true;
            (* A new tree edge appeared after the identity flood may
               already have passed here: re-forward across it. *)
            (match !announced with
            | Some (f, fin) -> send (New_frag { frag = f; finished = fin }) port
            | None -> ())
          | New_frag { frag = f; finished } -> (
            match !announced with
            | Some (f', _) when f' = f -> ()  (* duplicate along a fresh edge *)
            | Some _ | None ->
              announced := Some (f, finished);
              frag := f;
              parent := Some port;
              finished_flag := finished;
              for p = 0 to degree - 1 do
                if tree.(p) && p <> port then send (New_frag { frag = f; finished }) p
              done))
        inbox;
      (* Leadership: the core edge is the one over which both endpoints
         sent Connect; the larger label leads the merged fragment.
         Evaluated after the whole inbox so every tree mark of this round
         is visible. *)
      (match !sent_connect with
      | Some p when got_connect.(p) && id > port_label.(p) && !announced = None ->
        announced := Some (id, false);
        frag := id;
        parent := None;
        for q = 0 to degree - 1 do
          if tree.(q) then send (New_frag { frag = id; finished = false }) q
        done
      | Some _ | None -> ());
      (* Convergecast trigger: tests have all arrived by offset 1. *)
      if offset >= 1 && (not !reported) && !pending = 0 then begin
        reported := true;
        (* Fold the local candidate — the minimum-key outgoing port — into
           the subtree best.  The key is the global edge order:
           (min of the two ports, smaller label, larger label). *)
        for p = 0 to degree - 1 do
          match port_frag.(p) with
          | Some f when f <> !frag ->
            let nl = port_label.(p) in
            let key = (min p port_outport.(p), min id nl, max id nl) in
            best := better !best (Some (key, Self p))
          | Some _ | None -> ()
        done;
        match !parent with
        | Some pp -> send (Report (Option.map fst !best)) pp
        | None -> (
          match !best with
          | None ->
            (* No outgoing edge anywhere: the fragment spans the graph. *)
            finished_flag := true;
            announced := Some (!frag, true);
            List.iter
              (fun p -> send (New_frag { frag = !frag; finished = true }) p)
              (children ())
          | Some (_, Self p) ->
            tree.(p) <- true;
            sent_connect := Some p;
            send Connect p
          | Some (_, Child c) -> send Pursue c)
      end;
      List.rev !out
    end
  in
  { Model.on_round; finished = (fun () -> !finished_flag) }

type outcome = {
  result : Model.result;
  advice_bits : int;
  edges : Graph.edge list option;
  matches_reference : bool;
}

let assemble g ports_of =
  (* Every node reports its MST-incident ports; cross-check symmetry and
     materialise the edge list once. *)
  try
    let pairs = Hashtbl.create 64 in
    for v = 0 to Graph.n g - 1 do
      List.iter
        (fun p ->
          let nbr, q = Graph.endpoint g v p in
          let key = (min v nbr, max v nbr) in
          let eh = if v < nbr then { Graph.u = v; pu = p; v = nbr; pv = q } else { Graph.u = nbr; pu = q; v; pv = p } in
          match Hashtbl.find_opt pairs key with
          | None -> Hashtbl.replace pairs key (eh, 1)
          | Some (e, c) -> Hashtbl.replace pairs key (e, c + 1))
        (ports_of v)
    done;
    let edges = ref [] in
    Hashtbl.iter
      (fun _ (e, count) -> if count = 2 then edges := e :: !edges else raise Exit)
      pairs;
    Some !edges
  with Exit -> None

let same_edge_set a b =
  let norm es = List.sort compare (List.map (fun e -> (e.Graph.u, e.Graph.v)) es) in
  norm a = norm b

let finish g ~advice_bits result ports_of =
  let edges = assemble g ports_of in
  let matches_reference =
    match edges with
    | Some es -> result.Model.all_finished && same_edge_set es (Netgraph.Mst.kruskal g)
    | None -> false
  in
  { result; advice_bits; edges; matches_reference }

let distributed_build ?max_rounds g =
  let cells : (int, unit -> int list) Hashtbl.t = Hashtbl.create (Graph.n g) in
  let sink label get = Hashtbl.replace cells label get in
  let advice _ = Bitbuf.create () in
  let result = Model.run ?max_rounds ~advice g (protocol_node sink) in
  let ports_of v =
    match Hashtbl.find_opt cells (Graph.label g v) with Some get -> get () | None -> []
  in
  finish g ~advice_bits:0 result ports_of

let mst_ports_oracle =
  Oracles.Oracle.make ~name:"mst-ports" (fun g ~source:_ ->
      let mst = Netgraph.Mst.kruskal g in
      let ports = Array.make (Graph.n g) [] in
      List.iter
        (fun e ->
          ports.(e.Graph.u) <- e.Graph.pu :: ports.(e.Graph.u);
          ports.(e.Graph.v) <- e.Graph.pv :: ports.(e.Graph.v))
        mst;
      Oracles.Advice.make
        (Array.map
           (fun ps ->
             let buf = Bitbuf.create () in
             Codes.write_marked_list buf (List.sort compare ps);
             buf)
           ports))

let advised_build g =
  let advice = mst_ports_oracle.Oracles.Oracle.advise g ~source:0 in
  let cells : (int, int list) Hashtbl.t = Hashtbl.create (Graph.n g) in
  let node ~n_hint:_ ~advice ~id ~degree:_ =
    Hashtbl.replace cells id (Codes.read_marked_list (Bitbuf.reader advice));
    { Model.on_round = (fun ~inbox:_ -> []); finished = (fun () -> true) }
  in
  let result = Model.run ~advice:(Oracles.Advice.get advice) g node in
  let ports_of v =
    match Hashtbl.find_opt cells (Graph.label g v) with Some ps -> ps | None -> []
  in
  finish g ~advice_bits:(Oracles.Advice.size_bits advice) result ports_of
