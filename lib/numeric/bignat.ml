(* Little-endian limbs in base 2^26; no trailing zero limbs (zero = [||]).
   26-bit limbs keep limb products within 52 bits, so schoolbook
   multiplication with int accumulators never overflows on 63-bit ints. *)

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

type t = int array

let zero = [||]
let is_zero t = Array.length t = 0

let normalise a =
  let len = ref (Array.length a) in
  while !len > 0 && a.(!len - 1) = 0 do
    decr len
  done;
  if !len = Array.length a then a else Array.sub a 0 !len

let of_int v =
  if v < 0 then invalid_arg "Bignat.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land mask) :: limbs (v lsr base_bits) in
  Array.of_list (limbs v)

let one = of_int 1

let to_int_opt t =
  let rec loop i acc =
    if i < 0 then Some acc
    else if acc > (max_int - t.(i)) / base then None
    else loop (i - 1) ((acc * base) + t.(i))
  in
  loop (Array.length t - 1) 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalise r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalise r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry > 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalise r
  end

let mul_int a v =
  if v < 0 then invalid_arg "Bignat.mul_int: negative"
  else mul a (of_int v)

let divmod_int a v =
  if v <= 0 then invalid_arg "Bignat.divmod_int: non-positive divisor";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / v;
    rem := cur mod v
  done;
  (normalise q, !rem)

let div_exact_int a v =
  let q, r = divmod_int a v in
  if r <> 0 then invalid_arg "Bignat.div_exact_int: remainder";
  q

let pow2 k =
  if k < 0 then invalid_arg "Bignat.pow2: negative";
  let r = Array.make ((k / base_bits) + 1) 0 in
  r.(k / base_bits) <- 1 lsl (k mod base_bits);
  r

let pow x k =
  if k < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else go (if k land 1 = 1 then mul acc base else acc) (mul base base) (k lsr 1)
  in
  go one x k

let factorial n =
  if n < 0 then invalid_arg "Bignat.factorial: negative";
  let rec loop acc i = if i > n then acc else loop (mul_int acc i) (i + 1) in
  loop one 2

let binomial n k =
  if k < 0 || k > n then zero
  else begin
    let k = min k (n - k) in
    (* Multiply by (n-k+i) and divide by i at each step: the running value
       is always C(n-k+i, i), so division is exact. *)
    let rec loop acc i =
      if i > k then acc else loop (div_exact_int (mul_int acc (n - k + i)) i) (i + 1)
    in
    loop one 1
  end

let log2 t =
  let l = Array.length t in
  if l = 0 then neg_infinity
  else begin
    (* Up to three top limbs give 78 significant bits — beyond double
       precision. *)
    let top = float_of_int t.(l - 1) in
    let top2 = if l >= 2 then float_of_int t.(l - 2) /. float_of_int base else 0.0 in
    let top3 = if l >= 3 then float_of_int t.(l - 3) /. float_of_int (base * base) else 0.0 in
    Float.log2 (top +. top2 +. top3) +. float_of_int ((l - 1) * base_bits)
  end

let to_string t =
  if is_zero t then "0"
  else begin
    let digits = Buffer.create 32 in
    let rec loop v =
      if not (is_zero v) then begin
        let q, r = divmod_int v 10 in
        Buffer.add_char digits (Char.chr (Char.code '0' + r));
        loop q
      end
    in
    loop t;
    let s = Buffer.contents digits in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let of_string s =
  if s = "" then invalid_arg "Bignat.of_string: empty";
  String.fold_left
    (fun acc c ->
      if c < '0' || c > '9' then invalid_arg "Bignat.of_string: bad digit"
      else add (mul_int acc 10) (of_int (Char.code c - Char.code '0')))
    zero s

let pp fmt t = Format.pp_print_string fmt (to_string t)
