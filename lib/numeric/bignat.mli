(** Arbitrary-precision natural numbers, dependency-free.

    The counting arguments of Theorems 2.2 and 3.2 multiply factorials and
    binomials far past 2^63.  The production pipeline ({!Oracle_core.Bounds})
    works in log₂-space floats; this module provides the exact values so
    the float pipeline can be cross-validated (and tests can pin small
    cases exactly).  Base-2²⁶ limbs, schoolbook arithmetic — fine for the
    sizes the experiments reach. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val to_int_opt : t -> int option
(** [None] when the value exceeds [max_int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** Raises [Invalid_argument] when the result would be negative. *)

val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod_int : t -> int -> t * int
(** Long division by a positive machine integer. *)

val div_exact_int : t -> int -> t
(** Raises [Invalid_argument] if the division leaves a remainder. *)

val pow2 : int -> t

val pow : t -> int -> t
(** [pow x k] for [k ≥ 0], by repeated squaring. *)

val factorial : int -> t

val binomial : int -> int -> t
(** [binomial n k]; [zero] when [k < 0] or [k > n].  Exact multiplicative
    evaluation. *)

val log2 : t -> float
(** [log₂] of the value; [neg_infinity] for zero. *)

val to_string : t -> string
(** Decimal. *)

val of_string : string -> t
(** Decimal.  Raises [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> t -> unit
