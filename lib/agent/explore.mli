(** Exploration programs and their oracles.

    Four points on the knowledge-vs-moves trade-off for visiting every node
    of an n-node, m-edge network of diameter D (experiment E14):

    {ul
    {- {!dfs}: label-aware depth-first search, no advice — [2(n-1)] tree
       moves plus a two-move bounce per probe of an already-visited node
       (each non-tree edge is probed from both ends): at most
       [2(n-1) + 4(m-n+1) ≤ 4m] moves; halts at the start node.}
    {- {!rotor_router}: anonymous and advice-free; the classic
       Yanovski–Wagner–Bruckstein rotor walk covers every node within
       [O(mD)] moves but never halts.}
    {- {!random_walk}: anonymous, advice-free, randomized; expected cover
       time [O(mn)] in general.}
    {- {!guided}: replays a port route precomputed by {!route_advice} —
       an oracle of [O(n log Δ)] bits buys cover in exactly [2(n-1)]
       moves with certainty and a halt.}} *)

val dfs : Walker.program
(** Needs distinct labels (uses them as its visited-set keys). *)

val rotor_router : Walker.program
(** On each visit to a node, leaves through the next port after the one
    used on the previous visit (starting at port 0).  Never halts; run it
    under a move budget and read [moves_to_cover]. *)

val random_walk : seed:int -> Walker.program

val guided : Walker.program
(** Replays the route in its advice (gamma-coded port sequence) and
    halts. *)

val route_advice : Netgraph.Graph.t -> start:int -> Bitstring.Bitbuf.t
(** The exploration oracle: a DFS tour of a BFS spanning tree from
    [start], encoded as the gamma-coded sequence of out-ports.  Length
    [2(n-1)] ports. *)

val route_moves : Netgraph.Graph.t -> start:int -> int
(** Number of moves {!guided} will make: [2(n-1)]. *)
