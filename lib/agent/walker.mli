(** A mobile agent walking a port-labeled network.

    The paper's conclusion proposes oracle size as a difficulty measure for
    "exploration by mobile agents"; this module is the execution substrate
    for that extension (experiment E14).  The agent model is the standard
    one from the exploration literature the paper cites ([2], [7]): at a
    node the agent sees the node's degree and the port through which it
    arrived, and may carry internal state and an advice string given to it
    before the walk starts.  It cannot read node labels (anonymous
    exploration) unless the program chooses to use them. *)

type view = {
  degree : int;
  in_port : int option;  (** [None] at the start node *)
  label : int;  (** node label, for label-aware programs *)
}

type decision =
  | Move of int  (** leave through this port *)
  | Halt

type program = {
  program_name : string;
  start : advice:Bitstring.Bitbuf.t -> unit -> view -> decision;
      (** [start ~advice ()] instantiates fresh walk state and returns the
          per-arrival decision function. *)
}

type outcome = {
  moves : int;
  visited : bool array;
  covered : bool;  (** every node visited *)
  halted : bool;  (** the program halted (vs. hitting the move budget) *)
  moves_to_cover : int option;
      (** move count at which the last unvisited node was first reached *)
}

val run :
  ?max_moves:int ->
  advice:Bitstring.Bitbuf.t ->
  Netgraph.Graph.t ->
  start:int ->
  program ->
  outcome
(** Walk the agent from [start] until it halts or spends [max_moves]
    (default [64 * m * (diameter+1)], enough for every program here).
    Raises [Invalid_argument] if the program emits an out-of-range
    port. *)
