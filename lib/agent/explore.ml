module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes

(* Label-aware DFS.  The agent is one entity with global memory, so it can
   remember, per label: the next port to try and the entry port; and what
   its own last move was (probe, bounce-return, or backtrack), which is
   what lets it tell a bounced probe from a child's return. *)
let dfs =
  let start ~advice:_ () =
    let pointers : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
    let entries : (int, int option) Hashtbl.t = Hashtbl.create 64 in
    (* What the move that produced the current arrival was. *)
    let last = ref `Probe in
    let rec try_next (view : Walker.view) =
      let pointer = Hashtbl.find pointers view.Walker.label in
      let entry = Hashtbl.find entries view.Walker.label in
      if !pointer >= view.Walker.degree then (
        match entry with
        | None -> Walker.Halt
        | Some p ->
          last := `Backtrack;
          Walker.Move p)
      else begin
        let p = !pointer in
        incr pointer;
        if Some p = entry then try_next view
        else begin
          last := `Probe;
          Walker.Move p
        end
      end
    in
    fun view ->
      match !last with
      | `Backtrack | `Bounce_return -> try_next view
      | `Probe ->
        if Hashtbl.mem pointers view.Walker.label then begin
          (* Probed an already-visited node: bounce straight back. *)
          match view.Walker.in_port with
          | Some p ->
            last := `Bounce_return;
            Walker.Move p
          | None -> Walker.Halt
        end
        else begin
          Hashtbl.replace pointers view.Walker.label (ref 0);
          Hashtbl.replace entries view.Walker.label view.Walker.in_port;
          try_next view
        end
  in
  { Walker.program_name = "dfs"; start }

let rotor_router =
  let start ~advice:_ () =
    let rotors : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
    fun (view : Walker.view) ->
      let rotor =
        match Hashtbl.find_opt rotors view.Walker.label with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.replace rotors view.Walker.label r;
          r
      in
      let p = !rotor in
      rotor := (!rotor + 1) mod view.Walker.degree;
      Walker.Move p
  in
  { Walker.program_name = "rotor-router"; start }

let random_walk ~seed =
  let start ~advice:_ () =
    let st = Random.State.make [| seed |] in
    fun (view : Walker.view) -> Walker.Move (Random.State.int st view.Walker.degree)
  in
  { Walker.program_name = Printf.sprintf "random-walk(%d)" seed; start }

let route_ports g ~start =
  let tree = Netgraph.Spanning.bfs g ~root:start in
  (* DFS tour of the tree: down through each child port, up through the
     child's parent port. *)
  let rec tour v =
    List.concat_map
      (fun (child, port_down) ->
        let port_up =
          match tree.Netgraph.Spanning.parent.(child) with
          | Some (_, p) -> p
          | None -> assert false
        in
        (port_down :: tour child) @ [ port_up ])
      tree.Netgraph.Spanning.children.(v)
  in
  tour start

let route_advice g ~start =
  let buf = Bitbuf.create () in
  List.iter (Codes.write_gamma buf) (route_ports g ~start);
  buf

let route_moves g ~start = List.length (route_ports g ~start)

let guided =
  let start ~advice () =
    let r = Bitbuf.reader advice in
    fun (_ : Walker.view) ->
      if Bitbuf.at_end r then Walker.Halt else Walker.Move (Codes.read_gamma r)
  in
  { Walker.program_name = "guided"; start }
