type view = {
  degree : int;
  in_port : int option;
  label : int;
}

type decision = Move of int | Halt

type program = {
  program_name : string;
  start : advice:Bitstring.Bitbuf.t -> unit -> view -> decision;
}

type outcome = {
  moves : int;
  visited : bool array;
  covered : bool;
  halted : bool;
  moves_to_cover : int option;
}

let run ?max_moves ~advice g ~start program =
  let n = Netgraph.Graph.n g in
  let m = Netgraph.Graph.m g in
  let max_moves =
    match max_moves with
    | Some v -> v
    | None -> 64 * (m + 1) * (Netgraph.Traverse.diameter g + 1)
  in
  let visited = Array.make n false in
  let unvisited = ref n in
  let cover_at = ref None in
  let step = program.start ~advice () in
  let rec loop node in_port moves =
    if not visited.(node) then begin
      visited.(node) <- true;
      decr unvisited;
      if !unvisited = 0 then cover_at := Some moves
    end;
    if moves >= max_moves then (moves, false)
    else
      match step { degree = Netgraph.Graph.degree g node; in_port; label = Netgraph.Graph.label g node } with
      | Halt -> (moves, true)
      | Move p ->
        if p < 0 || p >= Netgraph.Graph.degree g node then
          invalid_arg
            (Printf.sprintf "Walker: program %s moves through port %d at degree-%d node"
               program.program_name p (Netgraph.Graph.degree g node));
        let next, q = Netgraph.Graph.endpoint g node p in
        loop next (Some q) (moves + 1)
  in
  let moves, halted = loop start None 0 in
  {
    moves;
    visited;
    covered = Array.for_all (fun b -> b) visited;
    halted;
    moves_to_cover = !cover_at;
  }
