(* Deterministic chaos schedules for distributed sweep workers.

   A chaos spec names which worker misbehaves, how, and when — counted
   in tasks that worker has completed, not wall-clock — so a given spec
   reproduces the same fault at the same point of the same worker's
   task stream on every run.  That is what lets the CI gate assert
   byte-identical sweep output across chaos schedules: the faults are
   real (processes die, pipes carry garbage) but their placement is a
   pure function of the spec.

   The spec grammar mirrors Fault_plan's comma-token style, lifted one
   level: directives are ';'-separated, each "ACTION:worker=N,after=M",
   plus an optional standalone "seed=N" token for the garbage bytes.
   Example: "kill:worker=2,after=5;hang:worker=0,after=9". *)

type action = Kill | Hang | Garbage

type directive = { action : action; worker : int; after : int }

type t = { directives : directive list; seed : int }

let none = { directives = []; seed = 0 }

let is_none t = t.directives = []

let action_name = function Kill -> "kill" | Hang -> "hang" | Garbage -> "garbage"

let to_string t =
  if is_none t && t.seed = 0 then "none"
  else
    let parts =
      List.map
        (fun d -> Printf.sprintf "%s:worker=%d,after=%d" (action_name d.action) d.worker d.after)
        t.directives
    in
    let parts = if t.seed <> 0 then parts @ [ Printf.sprintf "seed=%d" t.seed ] else parts in
    String.concat ";" parts

let of_string s =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_field tok v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | Some _ -> fail "%s: must be non-negative" tok
    | None -> fail "%s: not an integer" tok
  in
  let directive t tok =
    match String.index_opt tok ':' with
    | None -> (
      match String.index_opt tok '=' with
      | Some i when String.sub tok 0 i = "seed" ->
        let* seed = int_field tok (String.sub tok (i + 1) (String.length tok - i - 1)) in
        Ok { t with seed }
      | _ -> fail "chaos %S: expected ACTION:worker=N,after=M or seed=N" tok)
    | Some colon -> (
      let name = String.sub tok 0 colon in
      let args = String.sub tok (colon + 1) (String.length tok - colon - 1) in
      let* action =
        match name with
        | "kill" -> Ok Kill
        | "hang" -> Ok Hang
        | "garbage" -> Ok Garbage
        | _ -> fail "chaos %S: unknown action %S (kill|hang|garbage)" tok name
      in
      let* worker, after =
        List.fold_left
          (fun acc kv ->
            let* worker, after = acc in
            match String.index_opt kv '=' with
            | None -> fail "chaos %S: expected KEY=VALUE, got %S" tok kv
            | Some i -> (
              let key = String.sub kv 0 i in
              let v = String.sub kv (i + 1) (String.length kv - i - 1) in
              match key with
              | "worker" ->
                let* w = int_field tok v in
                Ok (Some w, after)
              | "after" ->
                let* a = int_field tok v in
                Ok (worker, Some a)
              | _ -> fail "chaos %S: unknown key %S" tok key))
          (Ok (None, None))
          (List.filter (( <> ) "") (List.map String.trim (String.split_on_char ',' args)))
      in
      match (worker, after) with
      | Some worker, Some after -> Ok { t with directives = t.directives @ [ { action; worker; after } ] }
      | None, _ -> fail "chaos %S: missing worker=N" tok
      | _, None -> fail "chaos %S: missing after=N" tok)
  in
  List.fold_left
    (fun acc tok ->
      let* t = acc in
      match String.trim tok with "" | "none" -> Ok t | tok -> directive t tok)
    (Ok none)
    (String.split_on_char ';' s)

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error m -> invalid_arg (Printf.sprintf "Chaos.of_string: %s" m)

(* 64 seeded junk bytes for the garbage action.  The first byte is
   forced away from 0x4F (the frame magic's first byte) so the
   receiver's very next decode attempt is a Bad_magic, never an
   ambiguous "wait for more bytes" — detection is deterministic. *)
let garbage_bytes t ~worker =
  let state = ref (Sim.Sweep.derive_seed t.seed [ "chaos-garbage"; string_of_int worker ]) in
  let next_byte () =
    state := ((!state * 25214903917) + 11) land max_int;
    (!state lsr 24) land 0xff
  in
  String.init 64 (fun i ->
      let b = next_byte () in
      Char.chr (if i = 0 && b = 0x4f then 0x50 else b))

let hook t ~worker =
  let mine = List.filter (fun d -> d.worker = worker) t.directives in
  fun ~completed ->
    match List.find_opt (fun d -> completed >= d.after) mine with
    | None -> `Continue
    | Some d -> (
      match d.action with
      | Kill -> `Kill
      | Hang -> `Hang
      | Garbage -> `Garbage (garbage_bytes t ~worker))
