(* Deterministic chaos schedules for distributed sweep workers.

   A chaos spec names which worker misbehaves, how, and when — counted
   in tasks that worker has completed, not wall-clock — so a given spec
   reproduces the same fault at the same point of the same worker's
   task stream on every run.  That is what lets the CI gate assert
   byte-identical sweep output across chaos schedules: the faults are
   real (processes die, pipes carry garbage, sockets fall silent or
   dribble bytes) but their placement is a pure function of the spec.

   Two fault families share the grammar.  Process faults (kill, hang,
   garbage) terminate the worker and are handled inside Worker.serve.
   Network faults degrade the worker's *transport*: partition falls
   silent with the connection open (the supervisor must tell a dead
   peer from a slow link by its heartbeat deadline), delay stalls the
   next write once, trickle makes every later write go out one byte at
   a time.  Delay and trickle act through a Sim.Transport.Shim.state
   threaded into [hook] — on a pipe worker, where there is no shim,
   they are consumed without effect.  None of the network faults alters
   stream *content*, so every schedule is byte-identity-preserving by
   construction.

   The spec grammar mirrors Fault_plan's comma-token style, lifted one
   level: directives are ';'-separated, each "ACTION:worker=N,after=M"
   with per-action optional arguments, plus an optional standalone
   "seed=N" token for the garbage bytes.  Example:
   "partition:worker=0,after=2,for=1500;trickle:worker=1,after=0". *)

type action = Kill | Hang | Garbage | Partition | Delay | Slow | Trickle

type directive = { action : action; worker : int; after : int; arg : int }

type t = { directives : directive list; seed : int }

let none = { directives = []; seed = 0 }

let is_none t = t.directives = []

(* Default fault arguments, in milliseconds.  A partition must outlast
   the CI gates' 1-second --heartbeat-timeout to demonstrate
   condemnation-and-rejoin; a delay must not, so it reads as a slow
   link. *)
let default_partition_ms = 3000
let default_delay_ms = 25
let default_slow_ms = 25

let action_name = function
  | Kill -> "kill"
  | Hang -> "hang"
  | Garbage -> "garbage"
  | Partition -> "partition"
  | Delay -> "delay"
  | Slow -> "slow"
  | Trickle -> "trickle"

let to_string t =
  if is_none t && t.seed = 0 then "none"
  else
    let parts =
      List.map
        (fun d ->
          let base =
            Printf.sprintf "%s:worker=%d,after=%d" (action_name d.action) d.worker d.after
          in
          match d.action with
          | Kill | Hang | Garbage | Trickle -> base
          | Partition -> Printf.sprintf "%s,for=%d" base d.arg
          | Delay | Slow -> Printf.sprintf "%s,ms=%d" base d.arg)
        t.directives
    in
    let parts = if t.seed <> 0 then parts @ [ Printf.sprintf "seed=%d" t.seed ] else parts in
    String.concat ";" parts

let of_string s =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_field tok v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | Some _ -> fail "%s: must be non-negative" tok
    | None -> fail "%s: not an integer" tok
  in
  let directive t tok =
    match String.index_opt tok ':' with
    | None -> (
      match String.index_opt tok '=' with
      | Some i when String.sub tok 0 i = "seed" ->
        let* seed = int_field tok (String.sub tok (i + 1) (String.length tok - i - 1)) in
        Ok { t with seed }
      | _ -> fail "chaos %S: expected ACTION:worker=N,after=M or seed=N" tok)
    | Some colon -> (
      let name = String.sub tok 0 colon in
      let args = String.sub tok (colon + 1) (String.length tok - colon - 1) in
      let* action =
        match name with
        | "kill" -> Ok Kill
        | "hang" -> Ok Hang
        | "garbage" -> Ok Garbage
        | "partition" -> Ok Partition
        | "delay" -> Ok Delay
        | "slow" -> Ok Slow
        | "trickle" -> Ok Trickle
        | _ ->
          fail "chaos %S: unknown action %S (kill|hang|garbage|partition|delay|slow|trickle)"
            tok name
      in
      let* worker, after, arg =
        List.fold_left
          (fun acc kv ->
            let* worker, after, arg = acc in
            match String.index_opt kv '=' with
            | None -> fail "chaos %S: expected KEY=VALUE, got %S" tok kv
            | Some i -> (
              let key = String.sub kv 0 i in
              let v = String.sub kv (i + 1) (String.length kv - i - 1) in
              match key with
              | "worker" ->
                let* w = int_field tok v in
                Ok (Some w, after, arg)
              | "after" ->
                let* a = int_field tok v in
                Ok (worker, Some a, arg)
              | "for" when action = Partition ->
                let* ms = int_field tok v in
                Ok (worker, after, Some ms)
              | "ms" when action = Delay || action = Slow ->
                let* ms = int_field tok v in
                Ok (worker, after, Some ms)
              | _ -> fail "chaos %S: unknown key %S" tok key))
          (Ok (None, None, None))
          (List.filter (( <> ) "") (List.map String.trim (String.split_on_char ',' args)))
      in
      match (worker, after) with
      | Some worker, Some after ->
        let arg =
          match (action, arg) with
          | Partition, None -> default_partition_ms
          | Delay, None -> default_delay_ms
          | Slow, None -> default_slow_ms
          | _, None -> 0
          | _, Some ms -> ms
        in
        Ok { t with directives = t.directives @ [ { action; worker; after; arg } ] }
      | None, _ -> fail "chaos %S: missing worker=N" tok
      | _, None -> fail "chaos %S: missing after=N" tok)
  in
  List.fold_left
    (fun acc tok ->
      let* t = acc in
      match String.trim tok with "" | "none" -> Ok t | tok -> directive t tok)
    (Ok none)
    (String.split_on_char ';' s)

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error m -> invalid_arg (Printf.sprintf "Chaos.of_string: %s" m)

(* 64 seeded junk bytes for the garbage action.  The first byte is
   forced away from 0x4F (the frame magic's first byte) so the
   receiver's very next decode attempt is a Bad_magic, never an
   ambiguous "wait for more bytes" — detection is deterministic. *)
let garbage_bytes t ~worker =
  let state = ref (Sim.Sweep.derive_seed t.seed [ "chaos-garbage"; string_of_int worker ]) in
  let next_byte () =
    state := ((!state * 25214903917) + 11) land max_int;
    (!state lsr 24) land 0xff
  in
  String.init 64 (fun i ->
      let b = next_byte () in
      Char.chr (if i = 0 && b = 0x4f then 0x50 else b))

(* The hook is stateful: network directives fire once and are consumed
   (a partition that re-fired on every task after its threshold would
   never let the worker rejoin), while process directives stay armed —
   they terminate the worker, so "at most once" is enforced by death
   itself, and an unconsumed kill must survive a remote worker's
   rejoin with its persistent completed counter.  Scanning is in spec
   order, so a due delay/trickle still arms the shim even when a due
   kill on the same consult ends the worker. *)
let hook ?net t ~worker =
  let mine = ref (List.filter (fun d -> d.worker = worker) t.directives) in
  fun ~completed ->
    let rec scan acc = function
      | [] ->
        mine := List.rev acc;
        `Continue
      | d :: rest when completed < d.after -> scan (d :: acc) rest
      | d :: rest -> (
        match d.action with
        | Kill ->
          mine := List.rev_append acc (d :: rest);
          `Kill
        | Hang ->
          mine := List.rev_append acc (d :: rest);
          `Hang
        | Garbage ->
          mine := List.rev_append acc (d :: rest);
          `Garbage (garbage_bytes t ~worker)
        | Partition ->
          mine := List.rev_append acc rest;
          `Partition (float_of_int d.arg /. 1000.)
        | Delay ->
          (match net with
          | Some (s : Sim.Transport.Shim.state) -> s.delay_s <- float_of_int d.arg /. 1000.
          | None -> ());
          scan acc rest
        | Slow ->
          (* Sticky in the shim; the directive itself fires once. *)
          (match net with
          | Some (s : Sim.Transport.Shim.state) -> s.slow_s <- float_of_int d.arg /. 1000.
          | None -> ());
          scan acc rest
        | Trickle ->
          (match net with
          | Some (s : Sim.Transport.Shim.state) -> s.trickle <- true
          | None -> ());
          scan acc rest)
    in
    scan [] !mine
