(** Fault plans, re-exported.

    The plan type itself lives in {!Sim.Fault_plan} so the runner can
    interpret the message- and node-level faults without depending on
    this library; [Fault.Plan] is the same module (type equalities
    included) under the subsystem's own namespace, and the rest of
    [Fault] interprets the parts the runner treats as opaque data — the
    advice faults ({!Corrupt}) — and judges the outcome ({!Verdict},
    {!Harness}). *)

include module type of struct
  include Sim.Fault_plan
end
