module Graph = Netgraph.Graph
module Advice = Oracles.Advice

type protocol =
  | Wakeup
  | Broadcast

let protocol_name = function Wakeup -> "wakeup" | Broadcast -> "broadcast"

let budgets ?(retry = 0) protocol g =
  let n = Graph.n g in
  let m = Graph.m g in
  let base =
    match protocol with
    | Wakeup -> { Verdict.clean = n - 1; degraded = (2 * m) + (3 * n); recovery = 0 }
    | Broadcast -> { Verdict.clean = 3 * n; degraded = (4 * m) + (3 * n); recovery = 0 }
  in
  (* Every sequence number can consume at most [retry] recovery slots, and
     there are at most [degraded] of them in a non-violating run — the
     recovery budget is the machine-checked form of that invariant. *)
  { base with Verdict.recovery = retry * base.Verdict.degraded }

(* Which nodes did the failure pattern physically strand?  BFS over the
   graph minus failed nodes: a survivor no path reaches can never be
   informed, retransmissions or not, so the verdict excludes it the same
   way it excludes the failed nodes themselves. *)
let unreachable_after ~failed g ~source =
  let n = Graph.n g in
  let visited = Array.make n false in
  if not failed.(source) then begin
    visited.(source) <- true;
    let q = Queue.create () in
    Queue.add source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (_, v, _) ->
          if (not visited.(v)) && not failed.(v) then begin
            visited.(v) <- true;
            Queue.add v q
          end)
        (Graph.neighbors g u)
    done
  end;
  Array.init n (fun v -> (not failed.(v)) && not visited.(v))

type outcome = {
  verdict : Verdict.t;
  result : Sim.Runner.result;
  advice_bits : int;
  raw_advice_bits : int;
  tampered : (int * string) list;
  fallbacks : (int * string) list;
  corrected : (int * int) list;
  events : Obs.Event.t list;
}

let advise protocol g ~source =
  let oracle =
    match protocol with
    | Wakeup -> Oracle_core.Wakeup.oracle ()
    | Broadcast -> Oracle_core.Broadcast.oracle ()
  in
  oracle.Oracles.Oracle.advise g ~source

let run ?(scheduler = Sim.Scheduler.Async_fifo) ?(plan = Plan.none) ?(sinks = []) ?max_messages
    ?(protect = Bitstring.Ecc.Raw) ?(retry = 0) ?(shards = 1) ?raw_advice protocol g ~source =
  let n = Graph.n g in
  (* [raw_advice] is the sweep cache hook: advice is a pure function of
     (protocol, graph, source), so a caller sweeping many plans or
     schedulers over one graph computes it once via [advise] and passes
     it in.  Protection and corruption below always build fresh buffers,
     so a cached value is never mutated. *)
  let raw_advice =
    match raw_advice with Some a -> a | None -> advise protocol g ~source
  in
  let protected_advice = Oracles.Protect.advice protect raw_advice in
  let corrupted, tampered = Corrupt.apply plan protected_advice in
  let collector, collected = Obs.Sink.collect () in
  let all_sinks = collector :: sinks in
  let emit_all ev = List.iter (fun s -> Obs.Sink.emit s ev) all_sinks in
  List.iter emit_all (Corrupt.events tampered);
  (* Hardened nodes report fallbacks with their label; telemetry speaks
     node indices (labels default to 1..n, not 0..n-1). *)
  let index_of_label = Hashtbl.create n in
  for v = 0 to n - 1 do
    Hashtbl.replace index_of_label (Graph.label g v) v
  done;
  let node_of_label label =
    match Hashtbl.find_opt index_of_label label with Some v -> v | None -> 0
  in
  let fallbacks = ref [] in
  let on_fallback label reason =
    let v = node_of_label label in
    fallbacks := (v, reason) :: !fallbacks;
    emit_all { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Decide (v, Verdict.fallback_tag) }
  in
  let corrected = ref [] in
  let on_corrected label bits =
    let v = node_of_label label in
    corrected := (v, bits) :: !corrected;
    emit_all
      { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Recover (Obs.Event.Advice_corrected (v, bits)) }
  in
  let factory =
    match protocol with
    | Wakeup -> Oracle_core.Wakeup.hardened_scheme ~protect ~on_fallback ~on_corrected ()
    | Broadcast -> Oracle_core.Broadcast.hardened_scheme ~protect ~on_fallback ~on_corrected ()
  in
  let result =
    Sim.Shard.run ~scheduler ?max_messages ~sinks:all_sinks ~faults:plan ~retry ~shards
      ~advice:(Advice.get corrupted) g ~source factory
  in
  let events = collected () in
  (* With the recovery layer armed, "stalled" should mean "recoverably
     stalled": survivors the failure pattern physically cut off are
     excluded like the failed nodes themselves.  With [retry = 0] the
     classification stays the paper-pure one. *)
  let unreachable =
    if retry = 0 then None
    else begin
      let failed = Array.make n false in
      List.iter
        (fun ev ->
          match ev.Obs.Event.kind with
          | Obs.Event.Fault (Obs.Event.Crashed v | Obs.Event.Dead v) -> failed.(v) <- true
          | _ -> ())
        events;
      Some (unreachable_after ~failed g ~source)
    end
  in
  let verdict =
    Verdict.classify ~check_silence:(protocol = Wakeup) ~quiescent:result.Sim.Runner.quiescent
      ?unreachable ~n
      ~budgets:(budgets ~retry protocol g)
      events
  in
  {
    verdict;
    result;
    advice_bits = Advice.size_bits corrupted;
    raw_advice_bits = Advice.size_bits raw_advice;
    tampered;
    fallbacks = List.rev !fallbacks;
    corrected = List.rev !corrected;
    events;
  }

let journal_entry g (o : outcome) =
  let r = o.result in
  let stats = r.Sim.Runner.stats in
  let informed =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r.Sim.Runner.informed
  in
  let recov = Obs.Counting.of_events o.events in
  let verdict_class =
    match o.verdict with
    | Verdict.Completed -> Sim.Journal.Completed
    | Verdict.Degraded _ -> Sim.Journal.Degraded
    | Verdict.Stalled _ -> Sim.Journal.Stalled
    | Verdict.Violated _ -> Sim.Journal.Violated
  in
  {
    Sim.Journal.n = Graph.n g;
    m = Graph.m g;
    messages = stats.Sim.Runner.sent;
    rounds = stats.Sim.Runner.rounds;
    advice_bits = o.advice_bits;
    raw_advice_bits = o.raw_advice_bits;
    faults = stats.Sim.Runner.faults;
    fallbacks = List.length o.fallbacks;
    tampered = List.length o.tampered;
    retransmits = recov.Obs.Counting.retransmits;
    corrected_bits = recov.Obs.Counting.corrected_bits;
    informed;
    verdict_class;
    verdict = Verdict.to_string o.verdict;
  }
