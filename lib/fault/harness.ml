module Graph = Netgraph.Graph
module Advice = Oracles.Advice

type protocol =
  | Wakeup
  | Broadcast

let protocol_name = function Wakeup -> "wakeup" | Broadcast -> "broadcast"

let budgets protocol g =
  let n = Graph.n g in
  let m = Graph.m g in
  match protocol with
  | Wakeup -> { Verdict.clean = n - 1; degraded = (2 * m) + (3 * n) }
  | Broadcast -> { Verdict.clean = 3 * n; degraded = (4 * m) + (3 * n) }

type outcome = {
  verdict : Verdict.t;
  result : Sim.Runner.result;
  advice_bits : int;
  tampered : (int * string) list;
  fallbacks : (int * string) list;
  events : Obs.Event.t list;
}

let run ?(scheduler = Sim.Scheduler.Async_fifo) ?(plan = Plan.none) ?(sinks = []) ?max_messages
    protocol g ~source =
  let n = Graph.n g in
  let oracle =
    match protocol with
    | Wakeup -> Oracle_core.Wakeup.oracle ()
    | Broadcast -> Oracle_core.Broadcast.oracle ()
  in
  let advice = oracle.Oracles.Oracle.advise g ~source in
  let corrupted, tampered = Corrupt.apply plan advice in
  let collector, collected = Obs.Sink.collect () in
  let all_sinks = collector :: sinks in
  let emit_all ev = List.iter (fun s -> Obs.Sink.emit s ev) all_sinks in
  List.iter emit_all (Corrupt.events tampered);
  (* Hardened nodes report fallbacks with their label; telemetry speaks
     node indices (labels default to 1..n, not 0..n-1). *)
  let index_of_label = Hashtbl.create n in
  for v = 0 to n - 1 do
    Hashtbl.replace index_of_label (Graph.label g v) v
  done;
  let fallbacks = ref [] in
  let on_fallback label reason =
    let v = match Hashtbl.find_opt index_of_label label with Some v -> v | None -> 0 in
    fallbacks := (v, reason) :: !fallbacks;
    emit_all { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Decide (v, Verdict.fallback_tag) }
  in
  let factory =
    match protocol with
    | Wakeup -> Oracle_core.Wakeup.hardened_scheme ~on_fallback ()
    | Broadcast -> Oracle_core.Broadcast.hardened_scheme ~on_fallback ()
  in
  let result =
    Sim.Runner.run ~scheduler ?max_messages ~sinks:all_sinks ~faults:plan
      ~advice:(Advice.get corrupted) g ~source factory
  in
  let events = collected () in
  let verdict =
    Verdict.classify ~check_silence:(protocol = Wakeup) ~n ~budgets:(budgets protocol g) events
  in
  {
    verdict;
    result;
    advice_bits = Advice.size_bits corrupted;
    tampered;
    fallbacks = List.rev !fallbacks;
    events;
  }
