type budgets = {
  clean : int;
  degraded : int;
  recovery : int;
}

type t =
  | Completed
  | Degraded of string
  | Stalled of {
      informed : int;
      survivors : int;
      n : int;
    }
  | Violated of string

let fallback_tag = "fallback-flood"

let classify ?(check_silence = false) ?(quiescent = true) ?unreachable ~n ~budgets events =
  let out = Obs.Replay.replay ~n events in
  let excluded = Array.make n false in
  let failed = ref 0 in
  let fallbacks = ref 0 in
  let silent = ref true in
  List.iter
    (fun ev ->
      match ev.Obs.Event.kind with
      | Obs.Event.Fault (Obs.Event.Crashed v | Obs.Event.Dead v) ->
        if not excluded.(v) then incr failed;
        excluded.(v) <- true
      | Obs.Event.Decide (_, tag) when tag = fallback_tag -> incr fallbacks
      | Obs.Event.Send l -> if not l.Obs.Event.informed then silent := false
      | Obs.Event.Deliver _ | Obs.Event.Wake _ | Obs.Event.Decide _ | Obs.Event.Advice_read _
      | Obs.Event.Fault _ | Obs.Event.Recover _ ->
        ())
    events;
  (* Nodes the caller proved physically unreachable (every path from the
     source crosses a failed node) join the excluded set: no amount of
     retransmission can inform them, so the scheme owes them nothing —
     but unlike failures they are reported under their own label. *)
  let stranded = ref 0 in
  (match unreachable with
  | None -> ()
  | Some reach ->
    if Array.length reach <> n then
      invalid_arg "Fault.Verdict.classify: unreachable array length <> n";
    for v = 0 to n - 1 do
      if reach.(v) && not excluded.(v) then begin
        incr stranded;
        excluded.(v) <- true
      end
    done);
  let sent = out.Obs.Replay.summary.Obs.Counting.sent in
  let retransmits = out.Obs.Replay.summary.Obs.Counting.retransmits in
  let survivors = ref 0 in
  let informed = ref 0 in
  for v = 0 to n - 1 do
    if not excluded.(v) then begin
      incr survivors;
      if out.Obs.Replay.informed.(v) then incr informed
    end
  done;
  let excluded_count = n - !survivors in
  if check_silence && not !silent then
    Violated "wakeup-silence: a non-woken node transmitted"
  else if not quiescent then
    Violated
      (Printf.sprintf "message-cutoff: stopped by max_messages after %d sends, queue not drained"
         sent)
  else if sent > budgets.degraded then
    Violated (Printf.sprintf "message-budget: %d sent, %d allowed even degraded" sent budgets.degraded)
  else if retransmits > budgets.recovery then
    Violated
      (Printf.sprintf "recovery-budget: %d retransmissions, %d allowed" retransmits budgets.recovery)
  else if out.Obs.Replay.in_flight > 0 then
    Violated (Printf.sprintf "runaway: %d messages still in flight" out.Obs.Replay.in_flight)
  else if !informed < !survivors then Stalled { informed = !informed; survivors = !survivors; n }
  else if !fallbacks = 0 && excluded_count = 0 && retransmits = 0 && sent <= budgets.clean then
    Completed
  else begin
    let parts = ref [] in
    if sent > budgets.clean then
      parts := Printf.sprintf "over-clean-budget(%d>%d)" sent budgets.clean :: !parts;
    if !failed > 0 then parts := Printf.sprintf "node-failures(%d)" !failed :: !parts;
    if !stranded > 0 then parts := Printf.sprintf "unreachable(%d)" !stranded :: !parts;
    if !fallbacks > 0 then parts := Printf.sprintf "advice-fallback(%d)" !fallbacks :: !parts;
    if retransmits > 0 then parts := Printf.sprintf "retransmissions(%d)" retransmits :: !parts;
    Degraded (String.concat "," !parts)
  end

let to_string = function
  | Completed -> "completed"
  | Degraded reason -> Printf.sprintf "degraded: %s" reason
  | Stalled { informed; survivors; n } ->
    Printf.sprintf "stalled: %d/%d survivors informed (n=%d)" informed survivors n
  | Violated invariant -> Printf.sprintf "violated: %s" invariant

let pp fmt v = Format.pp_print_string fmt (to_string v)

let acceptable = function
  | Completed | Degraded _ -> true
  | Stalled _ | Violated _ -> false
