include Sim.Fault_plan
