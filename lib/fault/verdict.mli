(** Verdicts: classifying an adversarial run against the paper's
    invariants, from its telemetry stream alone.

    The classifier is a replay consumer ({!Obs.Replay}): everything it
    needs — who woke, who crashed, how many messages the scheme produced,
    which nodes abandoned their advice, how much repair traffic the
    network layer injected — is in the typed event stream, so a verdict
    can equally be computed offline from a recorded JSONL trace.  The two
    facts a stream cannot carry — was the run cut off by [max_messages],
    and which nodes the failure pattern physically stranded — arrive as
    the [?quiescent] and [?unreachable] parameters. *)

type budgets = {
  clean : int;
      (** the advised bound: [n-1] for Theorem 2.1 wakeup, [3n] for
          Scheme B broadcast *)
  degraded : int;
      (** the advice-free bound the fallback may cost, Θ(m):
          what {!Harness.budgets} computes from the graph *)
  recovery : int;
      (** retransmission allowance: how many [Recover Msg_retransmitted]
          events the run may contain before self-healing itself counts as
          a violation.  Repair traffic is budgeted separately from [sent]
          because retransmissions never count against the paper's message
          complexity. *)
}

type t =
  | Completed
      (** every node informed, within the clean budget, no node failed,
          no node abandoned its advice, no retransmissions — the paper's
          claim held even if harmless faults were injected.  Corrected
          advice bits ([Recover Advice_corrected]) do {e not} downgrade:
          the protected code absorbed the attack, which is the point. *)
  | Degraded of string
      (** every surviving node informed and the degraded budget held,
          but at a cost: advice fallbacks, failed nodes, stranded nodes,
          retransmissions, or more messages than the advised bound (the
          reason string lists which) *)
  | Stalled of {
      informed : int;  (** surviving nodes that woke *)
      survivors : int;  (** nodes neither crashed, dead, nor unreachable *)
      n : int;
    }
      (** the run drained with surviving nodes still uninformed —
          e.g. drops severed the only path and the retry budget was off
          or exhausted, or tampered advice parsed but pointed the wrong
          way *)
  | Violated of string
      (** an invariant the scheme must keep even under attack was broken:
          wakeup silence, the degraded message budget, the recovery
          budget, or the run was stopped by the [max_messages] cutoff *)

val fallback_tag : string
(** ["fallback-flood"] — the [Decide] tag a hardened node emits when it
    rejects its advice; {!classify} counts these. *)

val classify :
  ?check_silence:bool ->
  ?quiescent:bool ->
  ?unreachable:bool array ->
  n:int ->
  budgets:budgets ->
  Obs.Event.t list ->
  t
(** Fold a complete run's events into a verdict.  Precedence: a
    violation dominates — [check_silence] (default false) enables the
    wakeup silence invariant (any [Send] by a non-woken node);
    [quiescent:false] (default [true]) marks a run stopped by the
    runner's [max_messages] cutoff, which classifies as
    [Violated "message-cutoff..."] rather than [Stalled] since the
    budget, not the network, ended it; the message-budget,
    recovery-budget and drained-queue checks are always on.  Then
    uninformed survivors mean [Stalled]; then a clean run — no fallback,
    no failed node, no retransmission, within [budgets.clean] — is
    [Completed]; anything else is [Degraded].

    Nodes named by [Crashed]/[Dead] fault events are excluded from the
    informedness requirement: the adversary silenced them, the scheme
    owes them nothing.  [?unreachable] (length [n]) extends the same
    exclusion to nodes the caller proved physically stranded — every
    source path crosses a failed node, so no retransmission can help;
    {!Harness.run} computes this from the surviving graph.  Raises
    [Invalid_argument] if the array's length is not [n]. *)

val acceptable : t -> bool
(** The CLI's exit criterion: [Completed] or [Degraded] (graceful), not
    [Stalled] or [Violated]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
