(** Verdicts: classifying an adversarial run against the paper's
    invariants, from its telemetry stream alone.

    The classifier is a replay consumer ({!Obs.Replay}): everything it
    needs — who woke, who crashed, how many messages the scheme produced,
    which nodes abandoned their advice — is in the typed event stream, so
    a verdict can equally be computed offline from a recorded JSONL
    trace. *)

type budgets = {
  clean : int;
      (** the advised bound: [n-1] for Theorem 2.1 wakeup, [3n] for
          Scheme B broadcast *)
  degraded : int;
      (** the advice-free bound the fallback may cost, Θ(m):
          what {!Harness.budgets} computes from the graph *)
}

type t =
  | Completed
      (** every node informed, within the clean budget, no node failed,
          no node abandoned its advice — the paper's claim held even if
          harmless faults were injected *)
  | Degraded of string
      (** every surviving node informed and the degraded budget held,
          but at a cost: advice fallbacks, failed nodes, or more
          messages than the advised bound (the reason string lists
          which) *)
  | Stalled of {
      informed : int;  (** surviving nodes that woke *)
      survivors : int;  (** nodes neither crashed nor dead *)
      n : int;
    }
      (** the run drained with surviving nodes still uninformed —
          e.g. drops severed the only path, or tampered advice parsed
          but pointed the wrong way *)
  | Violated of string
      (** an invariant the scheme must keep even under attack was
          broken: wakeup silence, or the degraded message budget *)

val fallback_tag : string
(** ["fallback-flood"] — the [Decide] tag a hardened node emits when it
    rejects its advice; {!classify} counts these. *)

val classify : ?check_silence:bool -> n:int -> budgets:budgets -> Obs.Event.t list -> t
(** Fold a complete run's events into a verdict.  Precedence: a
    violation ([check_silence] (default false) enables the wakeup
    silence invariant — any [Send] by a non-woken node; the budget and
    drained-queue checks are always on) dominates; then uninformed
    survivors mean [Stalled]; then a clean run — no fallback, no failed
    node, within [budgets.clean] — is [Completed]; anything else is
    [Degraded].  Nodes named by [Crashed]/[Dead] fault events are
    excluded from the informedness requirement: the adversary silenced
    them, the scheme owes them nothing. *)

val acceptable : t -> bool
(** The CLI's exit criterion: [Completed] or [Degraded] (graceful), not
    [Stalled] or [Violated]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
