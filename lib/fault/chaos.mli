(** Deterministic chaos schedules for distributed sweep workers.

    A chaos spec injects real faults — killed processes, hung loops,
    garbage bytes on the result pipe — at points determined solely by
    each worker's completed-task count, never by wall-clock.  The same
    spec therefore reproduces the same fault at the same place every
    run, which is what lets the chaos CI gate demand byte-identical
    sweep output under any schedule.

    Grammar: ';'-separated directives, each ["ACTION:worker=N,after=M"]
    with ACTION one of [kill] (abrupt [_exit], a simulated crash),
    [hang] (sleep forever, so the supervisor's heartbeat deadline must
    fire), or [garbage] (write 64 seeded junk bytes mid-stream, then
    exit); plus an optional standalone ["seed=N"] token feeding the
    garbage generator.  ["none"] or the empty string is the empty
    schedule.  Example:
    ["kill:worker=2,after=5;hang:worker=0,after=9"]. *)

type action = Kill | Hang | Garbage

type directive = {
  action : action;
  worker : int;  (** the worker id the fault targets *)
  after : int;  (** fire once that worker has completed this many tasks *)
}

type t = { directives : directive list; seed : int }

val none : t

val is_none : t -> bool

val of_string : string -> (t, string) result
(** Parse the grammar above; every malformed token is a descriptive
    [Error]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse failure. *)

val to_string : t -> string
(** Canonical spec; round-trips through {!of_string}. *)

val garbage_bytes : t -> worker:int -> string
(** The 64 junk bytes the [garbage] action writes for [worker]: a pure
    function of [(t.seed, worker)], first byte guaranteed not to be the
    frame magic's first byte so the supervisor detects the corruption on
    its very next decode. *)

val hook :
  t -> worker:int -> completed:int -> [ `Continue | `Kill | `Hang | `Garbage of string ]
(** [hook t ~worker] specialized to one worker is exactly the [?chaos]
    callback {!Sim.Worker.serve} consumes: consulted before each task
    with the tasks-completed count, it returns the first due directive's
    action (every action terminates the worker, so at most one ever
    fires). *)
