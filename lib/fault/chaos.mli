(** Deterministic chaos schedules for distributed sweep workers.

    A chaos spec injects real faults — killed processes, hung loops,
    garbage bytes, silent or dribbling sockets — at points determined
    solely by each worker's completed-task count, never by wall-clock.
    The same spec therefore reproduces the same fault at the same place
    every run, which is what lets the chaos CI gates demand
    byte-identical sweep output under any schedule.

    Two fault families share the grammar.  {e Process} faults terminate
    the worker: [kill] (abrupt [_exit], a simulated crash), [hang]
    (sleep forever, so the supervisor's heartbeat deadline must fire),
    [garbage] (write 64 seeded junk bytes mid-stream, then exit).
    {e Network} faults degrade the worker's transport without altering
    its content: [partition] falls silent for [for=MS] milliseconds
    (default 3000) with the connection open — the supervisor must tell
    this dead-looking peer from a slow link by its heartbeat deadline,
    and over TCP a condemned worker rejoins afterwards; [delay] stalls
    the worker's next write once by [ms=MS] (default 25); [slow] makes
    {e every} subsequent write stall by [ms=MS] (default 25) — the
    deterministic straggler the adaptive batch scheduler is measured
    against; [trickle] makes every subsequent write go out one byte at
    a time, exercising the supervisor's frame reassembly.
    [delay]/[slow]/[trickle] act through the
    {!Sim.Transport.Shim.state} passed to {!hook} as [?net]; without a
    shim they are consumed without effect (both pipe and TCP workers
    thread one in).

    Grammar: ';'-separated directives, each
    ["ACTION:worker=N,after=M[,for=MS|,ms=MS]"], plus an optional
    standalone ["seed=N"] token feeding the garbage generator.
    ["none"] or the empty string is the empty schedule.  Example:
    ["partition:worker=0,after=2,for=1500;trickle:worker=1,after=0"]. *)

type action = Kill | Hang | Garbage | Partition | Delay | Slow | Trickle

type directive = {
  action : action;
  worker : int;  (** the worker id the fault targets *)
  after : int;  (** fire once that worker has completed this many tasks *)
  arg : int;
      (** action argument in milliseconds: partition duration ([for=]),
          delay or slow stall ([ms=]); [0] for actions without one *)
}

type t = { directives : directive list; seed : int }

val none : t

val is_none : t -> bool

val of_string : string -> (t, string) result
(** Parse the grammar above; every malformed token is a descriptive
    [Error]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse failure. *)

val to_string : t -> string
(** Canonical spec; round-trips through {!of_string} (defaulted
    [for=]/[ms=] arguments are printed explicitly). *)

val garbage_bytes : t -> worker:int -> string
(** The 64 junk bytes the [garbage] action writes for [worker]: a pure
    function of [(t.seed, worker)], first byte guaranteed not to be the
    frame magic's first byte so the supervisor detects the corruption on
    its very next decode. *)

val hook :
  ?net:Sim.Transport.Shim.state ->
  t ->
  worker:int ->
  completed:int ->
  [ `Continue | `Kill | `Hang | `Garbage of string | `Partition of float ]
(** [hook ?net t ~worker] specialized to one worker is exactly the
    [?chaos] callback {!Sim.Worker.serve_io} consumes: consulted before
    each task with the tasks-completed count, it returns the first due
    process directive's action, returns [`Partition seconds] for a due
    partition, and silently arms [?net] for due [delay]/[trickle]
    directives.  The hook is stateful: network directives fire once and
    are consumed, process directives stay armed (death enforces their
    at-most-once; an unconsumed one survives a remote worker's rejoin,
    whose chaos schedule continues across sessions via the persistent
    [completed] counter). *)
