module Bitbuf = Bitstring.Bitbuf
module Advice = Oracles.Advice

let apply plan advice =
  match plan.Plan.advice with
  | [] -> (advice, [])
  | faults ->
    let st = Random.State.make [| plan.Plan.seed; 0xadc |] in
    let n = Advice.n advice in
    let bits = Array.init n (fun v -> Array.of_list (Bitbuf.to_bits (Advice.get advice v))) in
    let tampers = ref [] in
    let note node tag = tampers := (node, tag) :: !tampers in
    List.iter
      (fun fault ->
        match fault with
        | Plan.Flip k ->
          (* k independent draws over the concatenated advice; flipping
             the same position twice is allowed (and undoes itself). *)
          let total = Array.fold_left (fun acc b -> acc + Array.length b) 0 bits in
          if total > 0 then
            for _ = 1 to k do
              let pos = Random.State.int st total in
              let v = ref 0 in
              let off = ref pos in
              while !off >= Array.length bits.(!v) do
                off := !off - Array.length bits.(!v);
                incr v
              done;
              bits.(!v).(!off) <- not bits.(!v).(!off);
              note !v (Printf.sprintf "flip@%d" !off)
            done
        | Plan.Truncate k ->
          if k > 0 then
            Array.iteri
              (fun v b ->
                let len = Array.length b in
                if len > 0 then begin
                  bits.(v) <- Array.sub b 0 (max 0 (len - k));
                  note v (Printf.sprintf "trunc:%d" (min k len))
                end)
              bits
        | Plan.Swap (u, v) ->
          if u >= 0 && u < n && v >= 0 && v < n && u <> v then begin
            let tmp = bits.(u) in
            bits.(u) <- bits.(v);
            bits.(v) <- tmp;
            note u (Printf.sprintf "swap:%d" v);
            note v (Printf.sprintf "swap:%d" u)
          end
        | Plan.Garbage k ->
          Array.iteri
            (fun v _ ->
              bits.(v) <- Array.init k (fun _ -> Random.State.bool st);
              note v (Printf.sprintf "garbage:%d" k))
            bits)
      faults;
    let corrupted = Advice.make (Array.map (fun b -> Bitbuf.of_bits (Array.to_list b)) bits) in
    (corrupted, List.rev !tampers)

let events tampers =
  List.map
    (fun (node, tag) ->
      { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Fault (Obs.Event.Advice_tampered (node, tag)) })
    tampers
