(** The adversarial end-to-end harness: oracle → corrupted advice →
    hardened scheme under an adversarial schedule → verdict.

    One call runs the full robustness pipeline for a paper protocol:
    build the protocol's oracle, apply the plan's advice faults
    ({!Corrupt}), execute the hardened scheme with the plan's message-
    and node-level faults injected by the runner, and classify the
    recorded stream ({!Verdict.classify}).  The harness never raises on
    any plan: every outcome is a structured verdict. *)

type protocol =
  | Wakeup  (** Theorem 2.1 wakeup, hardened ({!Wakeup.hardened_scheme}) *)
  | Broadcast  (** Scheme B broadcast, hardened ({!Broadcast.hardened_scheme}) *)

val protocol_name : protocol -> string

val budgets : protocol -> Netgraph.Graph.t -> Verdict.budgets
(** Clean budget from the paper ([n-1], resp. [3n]); degraded budget
    Θ(m) with room for the fallback's hellos and floods ([2m + 3n],
    resp. [4m + 3n]). *)

type outcome = {
  verdict : Verdict.t;
  result : Sim.Runner.result;
  advice_bits : int;  (** size of the advice actually handed out, corruption included *)
  tampered : (int * string) list;  (** {!Corrupt.apply}'s tamper log *)
  fallbacks : (int * string) list;
      (** nodes (by index) that rejected their advice, with the decode or
          validation error *)
  events : Obs.Event.t list;  (** the complete recorded stream, verdict input *)
}

val run :
  ?scheduler:Sim.Scheduler.t ->
  ?plan:Plan.t ->
  ?sinks:Obs.Sink.t list ->
  ?max_messages:int ->
  protocol ->
  Netgraph.Graph.t ->
  source:int ->
  outcome
(** [run protocol g ~source] under [plan] (default {!Plan.none}) and
    [scheduler] (default [Async_fifo]).

    The stream fed to [sinks] (and recorded in [events]) is, in order:
    one [Fault (Advice_tampered _)] per tamper-log entry, then the
    runner's stream with one [Decide (v, {!Verdict.fallback_tag})]
    interleaved at instantiation time per node that rejected its advice.
    Identical graph + plan + scheduler yields a bit-identical stream
    (the determinism tests assert this).

    The wakeup silence invariant is checked for [Wakeup] runs;
    crashed/dead nodes are exempt from informedness — see
    {!Verdict.classify}. *)
