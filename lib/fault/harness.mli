(** The adversarial end-to-end harness: oracle → (error-protected)
    advice → corruption → hardened scheme under an adversarial schedule,
    with the runner's ack/retransmit channel → verdict.

    One call runs the full robustness pipeline for a paper protocol:
    build the protocol's oracle, optionally protect every node's advice
    with an ECC level ({!Oracles.Protect}), apply the plan's advice
    faults to the {e protected} strings ({!Corrupt} — the adversary
    attacks the codewords, which is the point of coding them), execute
    the hardened scheme with the plan's message- and node-level faults
    injected by the runner (and, with [retry > 0], its self-healing
    retransmit channel armed), and classify the recorded stream
    ({!Verdict.classify}).  The harness never raises on any plan: every
    outcome is a structured verdict. *)

type protocol =
  | Wakeup  (** Theorem 2.1 wakeup, hardened ({!Wakeup.hardened_scheme}) *)
  | Broadcast  (** Scheme B broadcast, hardened ({!Broadcast.hardened_scheme}) *)

val protocol_name : protocol -> string

val budgets : ?retry:int -> protocol -> Netgraph.Graph.t -> Verdict.budgets
(** Clean budget from the paper ([n-1], resp. [3n]); degraded budget
    Θ(m) with room for the fallback's hellos, floods and refloods
    ([2m + 3n], resp. [4m + 3n]); recovery budget
    [retry × degraded] (default [retry = 0]: any retransmission is a
    violation) — each sequence number may consume at most [retry]
    recovery slots, so this is the machine-checked form of the channel's
    own invariant. *)

type outcome = {
  verdict : Verdict.t;
  result : Sim.Runner.result;
  advice_bits : int;
      (** size of the advice actually handed out: protection and
          corruption included *)
  raw_advice_bits : int;
      (** size of the oracle's raw advice, before protection — the
          paper's measure; [advice_bits / raw_advice_bits] is the
          protection overhead actually paid *)
  tampered : (int * string) list;  (** {!Corrupt.apply}'s tamper log *)
  fallbacks : (int * string) list;
      (** nodes (by index) that rejected their advice, with the decode or
          validation error *)
  corrected : (int * int) list;
      (** nodes (by index) whose protected advice decoded with that many
          corrected errors — attacks the ECC layer absorbed without any
          fallback *)
  events : Obs.Event.t list;  (** the complete recorded stream, verdict input *)
}

val advise : protocol -> Netgraph.Graph.t -> source:int -> Oracles.Advice.t
(** The protocol's raw oracle advice for [(g, source)] — a pure function
    of its arguments.  Exposed so grid sweeps can compute it once per
    graph and pass it to many {!run}s via [?raw_advice]. *)

val run :
  ?scheduler:Sim.Scheduler.t ->
  ?plan:Plan.t ->
  ?sinks:Obs.Sink.t list ->
  ?max_messages:int ->
  ?protect:Bitstring.Ecc.level ->
  ?retry:int ->
  ?shards:int ->
  ?raw_advice:Oracles.Advice.t ->
  protocol ->
  Netgraph.Graph.t ->
  source:int ->
  outcome
(** [run protocol g ~source] under [plan] (default {!Plan.none}) and
    [scheduler] (default [Async_fifo]), with advice protection [protect]
    (default [Raw]: none) and retransmission budget [retry] (default
    [0]: recovery off — bit-for-bit the PR 2 behaviour).

    [shards] (default 1) executes the run across that many domains via
    {!Sim.Shard.run}; the stream, verdict and outcome are bit-identical
    at any shard count.

    [raw_advice] (default: computed with {!advise}) lets sweeps reuse one
    advice assignment across the plan × scheduler × protection axes; the
    harness never mutates it (protection and corruption copy), so a
    cached value stays valid for any number of runs.

    The stream fed to [sinks] (and recorded in [events]) is, in order:
    one [Fault (Advice_tampered _)] per tamper-log entry, then the
    runner's stream with one [Decide (v, {!Verdict.fallback_tag})] or
    [Recover (Advice_corrected _)] interleaved at instantiation time per
    node that rejected, resp. repaired, its advice.  Identical graph +
    plan + scheduler + protection + retry yields a bit-identical stream
    (the determinism tests assert this).

    The wakeup silence invariant is checked for [Wakeup] runs; a
    non-quiescent result (stopped by [max_messages]) classifies as
    [Violated]; crashed/dead nodes are exempt from informedness, and
    with [retry > 0] so are survivors the failure pattern physically
    disconnected from the source — see {!Verdict.classify}. *)

val journal_entry : Netgraph.Graph.t -> outcome -> Sim.Journal.entry
(** Flatten an outcome into the persistent sweep journal's entry record
    — the exact numbers a sweep row reports, in the fixed-width fields
    [docs/JOURNAL_FORMAT.md] assigns them.  Journaled sweeps call this
    once per completed point and re-emit rows from the entry alone, so
    anything a row needs must come through here. *)
