(** Advice corruption: the pure half of fault injection.

    The adversary of the robustness experiments attacks the oracle's
    output {e before} the run, as a pure
    [Oracles.Advice.t -> Oracles.Advice.t] transform — the original
    assignment is never mutated, and identical plan + seed yields the
    identical corrupted assignment.  What it did is returned as a tamper
    log, one entry per affected node, which the harness turns into
    {!Obs.Event.Advice_tampered} telemetry. *)

val apply : Plan.t -> Oracles.Advice.t -> Oracles.Advice.t * (int * string) list
(** [apply plan advice] interprets [plan]'s advice faults, in plan
    order, against a copy of [advice]:
    - [Flip k]: flip [k] seeded positions of the concatenated advice
      (no-op on an all-empty assignment);
    - [Truncate k]: drop the last [k] bits of {e every} nonempty
      string — the canonical "forces decode failure everywhere"
      corruption the Θ(m)-fallback acceptance test uses;
    - [Swap (u, v)]: exchange the strings of nodes [u] and [v]
      (ignored if out of range or [u = v]);
    - [Garbage k]: replace every string with [k] seeded random bits
      (which may, by chance, still parse — verdicts must not assume
      garbage is detected).
    Returns the corrupted assignment and the tamper log
    [(node, tag) list], e.g. [(3, "trunc:1")].  A plan with no advice
    faults returns [advice] itself and an empty log. *)

val events : (int * string) list -> Obs.Event.t list
(** The tamper log as pre-run telemetry: one
    [Fault (Advice_tampered (node, tag))] event per entry, stamped
    [seq = 0, round = 0] (corruption happens before the first send). *)
