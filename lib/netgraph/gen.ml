let fail fmt = Printf.ksprintf invalid_arg fmt

(* Build a graph from an unordered edge list (pairs of node indices),
   assigning ports at each node in edge-list order. *)
let of_pairs ?labels ~n pairs =
  let next = Array.make n 0 in
  let edges =
    List.map
      (fun (u, v) ->
        let pu = next.(u) in
        next.(u) <- pu + 1;
        let pv = next.(v) in
        next.(v) <- pv + 1;
        { Graph.u; pu; v; pv })
      pairs
  in
  Graph.make ?labels ~n edges

let path n =
  if n < 1 then fail "Gen.path: n = %d" n;
  (* CSR built directly — same port assignment the edge-list path
     produced (edge (i, i+1) in order, ports claimed first-come): node 0
     reaches 1 on port 0; interior node i reaches i-1 on port 0 and i+1
     on port 1; the last node reaches its predecessor on port 0.  The
     edge-list construction allocated Θ(n) list cells and records just
     for [Graph.make] to tear apart; at n = 10⁷ the three int arrays are
     the whole build. *)
  if n = 1 then Graph.of_csr ~n ~off:[| 0; 0 |] ~nbr:[||] ~prt:[||] ()
  else begin
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      let deg = if i = 0 || i = n - 1 then 1 else 2 in
      off.(i + 1) <- off.(i) + deg
    done;
    let total = off.(n) in
    let nbr = Array.make total 0 in
    let prt = Array.make total 0 in
    (* Port of edge {i, i+1} at i is (i = 0 ? 0 : 1); at i+1 it is 0. *)
    nbr.(off.(0)) <- 1;
    prt.(off.(0)) <- 0;
    for i = 1 to n - 1 do
      let base = off.(i) in
      nbr.(base) <- i - 1;
      prt.(base) <- (if i - 1 = 0 then 0 else 1);
      if i < n - 1 then begin
        nbr.(base + 1) <- i + 1;
        prt.(base + 1) <- 0
      end
    done;
    Graph.of_csr ~n ~off ~nbr ~prt ()
  end

let cycle n =
  if n < 3 then fail "Gen.cycle: n = %d < 3" n;
  of_pairs ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let star n =
  if n < 2 then fail "Gen.star: n = %d < 2" n;
  of_pairs ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  if n < 2 then fail "Gen.complete: n = %d < 2" n;
  (* Adjacency built directly into the CSR arrays: port p at i leads to
     (i + p + 1) mod n, and the port at j back to i is the q solving
     (j + q + 1) mod n = i.  The edge-list path would allocate an
     n²-record list just to have [Graph.make] tear it apart again; at
     n = 10³ that list alone dominates grid setup. *)
  let off = Array.init (n + 1) (fun i -> i * (n - 1)) in
  let total = n * (n - 1) in
  let nbr = Array.make total 0 in
  let prt = Array.make total 0 in
  for i = 0 to n - 1 do
    let base = off.(i) in
    for p = 0 to n - 2 do
      let j = (i + p + 1) mod n in
      nbr.(base + p) <- j;
      prt.(base + p) <- ((i - j - 1) mod n + n) mod n
    done
  done;
  Graph.of_csr ~n ~off ~nbr ~prt ()

let balanced_tree ~arity ~depth =
  if arity < 1 then fail "Gen.balanced_tree: arity = %d" arity;
  if depth < 0 then fail "Gen.balanced_tree: depth = %d" depth;
  (* Count nodes; build pairs level by level. *)
  let pairs = ref [] in
  let next_id = ref 1 in
  let rec expand node level =
    if level < depth then
      for _ = 1 to arity do
        let child = !next_id in
        incr next_id;
        pairs := (node, child) :: !pairs;
        expand child (level + 1)
      done
  in
  expand 0 0;
  of_pairs ~n:!next_id (List.rev !pairs)

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then fail "Gen.grid: %dx%d" rows cols;
  if rows * cols < 1 then fail "Gen.grid: empty";
  let id r c = (r * cols) + c in
  let pairs = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then pairs := (id r c, id r (c + 1)) :: !pairs;
      if r + 1 < rows then pairs := (id r c, id (r + 1) c) :: !pairs
    done
  done;
  of_pairs ~n:(rows * cols) (List.rev !pairs)

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then fail "Gen.torus: %dx%d (need ≥3x3)" rows cols;
  let id r c = (r * cols) + c in
  let pairs = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      pairs := (id r c, id r ((c + 1) mod cols)) :: !pairs;
      pairs := (id r c, id ((r + 1) mod rows) c) :: !pairs
    done
  done;
  of_pairs ~n:(rows * cols) (List.rev !pairs)

let hypercube ~dim =
  if dim < 1 then fail "Gen.hypercube: dim = %d" dim;
  if dim > 24 then fail "Gen.hypercube: dim = %d too large" dim;
  let n = 1 lsl dim in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for k = 0 to dim - 1 do
      let v = u lxor (1 lsl k) in
      if u < v then edges := { Graph.u; pu = k; v; pv = k } :: !edges
    done
  done;
  Graph.make ~n !edges

let shuffle st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Build with per-node shuffled port order so port numbers are not
   correlated with construction order. *)
let of_pairs_shuffled ~n st pairs =
  let incident = Array.make n [] in
  List.iter
    (fun (u, v) ->
      incident.(u) <- v :: incident.(u);
      incident.(v) <- u :: incident.(v))
    pairs;
  let lists =
    Array.map
      (fun ns ->
        let a = Array.of_list ns in
        shuffle st a;
        Array.to_list a)
      incident
  in
  Graph.of_adjacency lists

let prufer_tree_pairs ~n st =
  if n = 1 then []
  else if n = 2 then [ (0, 1) ]
  else begin
    let seq = Array.init (n - 2) (fun _ -> Random.State.int st n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    let pairs = ref [] in
    (* Standard Prüfer decoding with a simple scan pointer + leaf var. *)
    let ptr = ref 0 in
    while deg.(!ptr) <> 1 do
      incr ptr
    done;
    let leaf = ref !ptr in
    Array.iter
      (fun v ->
        pairs := (!leaf, v) :: !pairs;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 && v < !ptr then leaf := v
        else begin
          incr ptr;
          while deg.(!ptr) <> 1 do
            incr ptr
          done;
          leaf := !ptr
        end)
      seq;
    pairs := (!leaf, n - 1) :: !pairs;
    !pairs
  end

let random_tree ~n st =
  if n < 1 then fail "Gen.random_tree: n = %d" n;
  of_pairs_shuffled ~n st (prufer_tree_pairs ~n st)

let random_connected ~n ~p st =
  if n < 1 then fail "Gen.random_connected: n = %d" n;
  if p < 0.0 || p > 1.0 then fail "Gen.random_connected: p = %f" p;
  let tree = prufer_tree_pairs ~n st in
  let present = Hashtbl.create (4 * n) in
  List.iter (fun (u, v) -> Hashtbl.replace present (min u v, max u v) ()) tree;
  let extra = ref [] in
  let add u v = if not (Hashtbl.mem present (u, v)) then extra := (u, v) :: !extra in
  (* G(n,p) overlay without the Θ(n²) per-pair Bernoulli loop: walk the
     lexicographic pair order (u < v) with geometric skips of mean 1/p
     (Batagelj–Brandes), so sampling costs O(m + n) — the fix that makes
     sparse families feasible at n = 10⁶.  Every pair is still included
     independently with probability p (tree pairs are filtered through
     the [present] hash set, which leaves the non-tree pairs iid); only
     p = 1 keeps a dense loop, since its skip length degenerates to 1. *)
  if p >= 1.0 then
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        add u v
      done
    done
  else if p > 0.0 then begin
    let total = n * (n - 1) / 2 in
    let log1mp = log (1.0 -. p) in
    let idx = ref (-1) in
    let u = ref 0 in
    let row_start = ref 0 in
    (* [row_start] is the linear index of pair (u, u+1). *)
    let continue_ = ref true in
    while !continue_ do
      let r = Random.State.float st 1.0 in
      let skip = 1 + int_of_float (log (1.0 -. r) /. log1mp) in
      idx := !idx + skip;
      if !idx >= total then continue_ := false
      else begin
        while !idx - !row_start >= n - 1 - !u do
          row_start := !row_start + (n - 1 - !u);
          incr u
        done;
        add !u (!u + 1 + (!idx - !row_start))
      end
    done
  end;
  of_pairs_shuffled ~n st (tree @ List.rev !extra)

let lollipop ~clique ~tail =
  if clique < 3 then fail "Gen.lollipop: clique = %d < 3" clique;
  if tail < 0 then fail "Gen.lollipop: tail = %d" tail;
  let n = clique + tail in
  let pairs = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      pairs := (u, v) :: !pairs
    done
  done;
  for i = 0 to tail - 1 do
    let prev = if i = 0 then clique - 1 else clique + i - 1 in
    pairs := (prev, clique + i) :: !pairs
  done;
  of_pairs ~n (List.rev !pairs)

let complete_bipartite a b =
  if a < 1 || b < 1 then fail "Gen.complete_bipartite: %d,%d" a b;
  let pairs = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      pairs := (u, v) :: !pairs
    done
  done;
  of_pairs ~n:(a + b) (List.rev !pairs)

let wheel n =
  if n < 4 then fail "Gen.wheel: n = %d < 4" n;
  let rim = n - 1 in
  let pairs = ref [] in
  for i = 1 to rim do
    pairs := (0, i) :: !pairs;
    pairs := (i, if i = rim then 1 else i + 1) :: !pairs
  done;
  of_pairs ~n (List.rev !pairs)

let cube_connected_cycles ~dim =
  if dim < 3 then fail "Gen.cube_connected_cycles: dim = %d < 3" dim;
  if dim > 20 then fail "Gen.cube_connected_cycles: dim = %d too large" dim;
  let corners = 1 lsl dim in
  let id corner pos = (corner * dim) + pos in
  let edges = ref [] in
  for corner = 0 to corners - 1 do
    for pos = 0 to dim - 1 do
      let u = id corner pos in
      (* Port 0: next around the cycle; port 1: previous; port 2: across
         the hypercube dimension [pos].  Every cycle edge is exactly one
         node's "next" edge, so each is listed once. *)
      let next = id corner ((pos + 1) mod dim) in
      edges := { Graph.u; pu = 0; v = next; pv = 1 } :: !edges;
      let across = id (corner lxor (1 lsl pos)) pos in
      if u < across then edges := { Graph.u; pu = 2; v = across; pv = 2 } :: !edges
    done
  done;
  Graph.make ~n:(corners * dim) !edges

let random_regular ~n ~d st =
  if d < 3 || d >= n then fail "Gen.random_regular: d = %d, n = %d" d n;
  if n * d mod 2 <> 0 then fail "Gen.random_regular: n*d must be even";
  (* Configuration model with rejection: pair up stubs, retry on
     self-loops, parallel edges, or disconnection. *)
  let max_attempts = 1000 in
  let rec attempt k =
    if k > max_attempts then fail "Gen.random_regular: too many rejections";
    let stubs = Array.init (n * d) (fun i -> i / d) in
    shuffle st stubs;
    let pairs = ref [] in
    let ok = ref true in
    let seen = Hashtbl.create (n * d) in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      if u = v || Hashtbl.mem seen (min u v, max u v) then ok := false
      else begin
        Hashtbl.add seen (min u v, max u v) ();
        pairs := (u, v) :: !pairs
      end;
      i := !i + 2
    done;
    if not !ok then attempt (k + 1)
    else begin
      let g = of_pairs_shuffled ~n st !pairs in
      if Graph.is_connected g then g else attempt (k + 1)
    end
  in
  attempt 0
