module Bitbuf = Bitstring.Bitbuf
module Binary = Bitstring.Binary
module Codes = Bitstring.Codes

(* Layout: gamma n; gamma (max degree); gamma label per node; then per node:
   gamma degree, then per port a neighbor index (fixed width over n) and the
   reverse port (fixed width over max degree).  Each edge is described twice;
   decoding cross-checks symmetry via Graph.make. *)

let encode g =
  let n = Graph.n g in
  let buf = Bitbuf.create ~capacity:(64 * n) () in
  let maxdeg = ref 1 in
  for v = 0 to n - 1 do
    maxdeg := max !maxdeg (Graph.degree g v)
  done;
  Codes.write_gamma buf n;
  Codes.write_gamma buf !maxdeg;
  let wn = max 1 (Binary.ceil_log2 n) in
  let wd = max 1 (Binary.ceil_log2 !maxdeg) in
  for v = 0 to n - 1 do
    let l = Graph.label g v in
    if l < 0 then invalid_arg "Codec.encode: negative label";
    Codes.write_gamma buf l
  done;
  for v = 0 to n - 1 do
    Codes.write_gamma buf (Graph.degree g v);
    List.iter
      (fun (_, nbr, nbr_port) ->
        Bitbuf.add_int buf ~width:wn nbr;
        Bitbuf.add_int buf ~width:wd nbr_port)
      (Graph.neighbors g v)
  done;
  buf

let decode r =
  let n = Codes.read_gamma r in
  if n < 1 then invalid_arg "Codec.decode: bad node count";
  let maxdeg = Codes.read_gamma r in
  let wn = max 1 (Binary.ceil_log2 n) in
  let wd = max 1 (Binary.ceil_log2 maxdeg) in
  let labels = Array.init n (fun _ -> Codes.read_gamma r) in
  let edges = ref [] in
  for v = 0 to n - 1 do
    let deg = Codes.read_gamma r in
    for p = 0 to deg - 1 do
      let nbr = Bitbuf.read_int r ~width:wn in
      let q = Bitbuf.read_int r ~width:wd in
      if v < nbr then edges := { Graph.u = v; pu = p; v = nbr; pv = q } :: !edges
    done
  done;
  Graph.make ~labels ~n !edges

let encoded_bits g = Bitbuf.length (encode g)
