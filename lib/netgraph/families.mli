(** Named graph families used by the experiment sweeps.

    Each family maps a requested size to a concrete connected graph with at
    least that flavor of structure; the achieved size may be rounded to the
    family's natural grid (e.g. powers of two for hypercubes). *)

type t =
  | Path
  | Cycle
  | Complete
  | Grid  (** near-square 2-D grid *)
  | Torus
  | Hypercube
  | Balanced_binary_tree
  | Random_tree
  | Sparse_random  (** random connected, expected average degree ≈ 4 *)
  | Dense_random  (** random connected, p = 0.5 *)
  | Lollipop
  | Complete_bipartite
  | Wheel
  | Cube_connected_cycles  (** CCC(d), 3-regular *)
  | Random_regular  (** connected 3-regular, configuration model *)

val name : t -> string

val build : t -> n:int -> seed:int -> Graph.t
(** Build a graph of (approximately) [n] nodes.  Deterministic in
    [(t, n, seed)]. *)

val all : t list

val default_sweep : t list
(** The families used by the standard experiment tables. *)

val of_name : string -> t option
