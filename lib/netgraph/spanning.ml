type t = {
  root : int;
  parent : (int * int) option array;
  children : (int * int) list array;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let of_parents g ~root parents =
  let n = Graph.n g in
  if Array.length parents <> n then fail "Spanning.of_parents: wrong array size";
  if parents.(root) <> None then fail "Spanning.of_parents: root has a parent";
  let parent = Array.make n None in
  let children = Array.make n [] in
  Array.iteri
    (fun v p ->
      match p with
      | None -> if v <> root then fail "Spanning.of_parents: node %d has no parent" v
      | Some u ->
        (match Graph.port_to g v u with
        | None -> fail "Spanning.of_parents: edge %d-%d not in graph" v u
        | Some pv ->
          parent.(v) <- Some (u, pv);
          let pu =
            match Graph.port_to g u v with
            | Some p -> p
            | None -> assert false
          in
          children.(u) <- (v, pu) :: children.(u)))
    parents;
  (* Acyclicity + reachability in O(n) total: walk up from each node,
     stopping at the first node already certified as rooted; nodes on the
     current chain are marked in-progress, so meeting one again is a
     cycle.  Each node is walked over at most twice across all starts
     (once in-progress, once certifying), so a million-node path costs a
     linear pass, not the quadratic per-node climb it used to. *)
  let state = Array.make n 0 in
  (* 0 = unknown, 1 = on the current chain, 2 = certified rooted. *)
  state.(root) <- 2;
  for v = 0 to n - 1 do
    if state.(v) = 0 then begin
      let u = ref v in
      while state.(!u) = 0 do
        state.(!u) <- 1;
        match parent.(!u) with
        | Some (w, _) -> u := w
        | None -> fail "Spanning.of_parents: node %d not rooted" v
      done;
      if state.(!u) = 1 then fail "Spanning.of_parents: cycle through node %d" v;
      let u = ref v in
      while state.(!u) = 1 do
        state.(!u) <- 2;
        match parent.(!u) with Some (w, _) -> u := w | None -> ()
      done
    end
  done;
  let children = Array.map (fun l -> List.sort (fun (_, a) (_, b) -> compare a b) l) children in
  { root; parent; children }

let bfs g ~root =
  let _, parents = Traverse.bfs g ~root in
  of_parents g ~root parents

let dfs g ~root =
  let parents = Traverse.dfs_parents g ~root in
  of_parents g ~root parents

let parents_from_edges g ~root pairs =
  (* Orient an (acyclic, spanning) edge set towards [root]. *)
  let n = Graph.n g in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    pairs;
  let parents = Array.make n None in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(root) <- true;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parents.(v) <- Some u;
          Queue.add v q
        end)
      adj.(u)
  done;
  if not (Array.for_all (fun b -> b) seen) then fail "Spanning: edge set does not span";
  parents

let random g ~root st =
  let edges = Array.of_list (Graph.edges g) in
  for i = Array.length edges - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = edges.(i) in
    edges.(i) <- edges.(j);
    edges.(j) <- tmp
  done;
  let dsu = Dsu.create (Graph.n g) in
  let pairs = ref [] in
  Array.iter
    (fun e -> if Dsu.union dsu e.Graph.u e.Graph.v then pairs := (e.Graph.u, e.Graph.v) :: !pairs)
    edges;
  of_parents g ~root (parents_from_edges g ~root !pairs)

(* Claim 3.1.  Phases k = 1, 2, …: every component of size < 2^k selects a
   minimum-weight outgoing edge (w(e) = min of the two ports); selected
   edges are merged, a cycle-closing selection being skipped (the paper
   erases one edge per cycle, which is the same tree up to the arbitrary
   choice). *)
let light g ~root =
  let n = Graph.n g in
  let dsu = Dsu.create n in
  let pairs = ref [] in
  let k = ref 1 in
  while Dsu.components dsu > 1 do
    let threshold = 1 lsl !k in
    let small_roots = List.filter (fun r -> Dsu.size dsu r < threshold) (Dsu.roots dsu) in
    (* Minimum-weight outgoing edge per small component. *)
    let best = Hashtbl.create 16 in
    Graph.fold_edges
      (fun e () ->
        let ru = Dsu.find dsu e.Graph.u and rv = Dsu.find dsu e.Graph.v in
        if ru <> rv then begin
          let w = Graph.edge_weight g e in
          let consider r =
            match Hashtbl.find_opt best r with
            | Some (w', _) when w' <= w -> ()
            | _ -> Hashtbl.replace best r (w, e)
          in
          consider ru;
          consider rv
        end)
      g ();
    let selected =
      List.filter_map
        (fun r ->
          match Hashtbl.find_opt best r with
          | Some (_, e) -> Some e
          | None -> None)
        small_roots
    in
    (* A phase in which no component is small simply advances k; but a
       small component with no outgoing edge means the graph is
       disconnected. *)
    if small_roots <> [] && selected = [] then
      fail "Spanning.light: disconnected graph";
    List.iter
      (fun e ->
        if Dsu.union dsu e.Graph.u e.Graph.v then pairs := (e.Graph.u, e.Graph.v) :: !pairs)
      selected;
    incr k
  done;
  of_parents g ~root (parents_from_edges g ~root !pairs)

let size t = Array.length t.parent

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun v p ->
      match p with
      | None -> ()
      | Some (u, pv) ->
        let pu =
          match t.children.(u) |> List.assoc_opt v with
          | Some p -> p
          | None -> -1
        in
        let e =
          if u < v then { Graph.u; pu; v; pv } else { Graph.u = v; pu = pv; v = u; pv = pu }
        in
        acc := e :: !acc)
    t.parent;
  List.rev !acc

let check g t =
  try
    let n = Graph.n g in
    if Array.length t.parent <> n then failwith "size mismatch";
    if t.parent.(t.root) <> None then failwith "root has a parent";
    let count = ref 0 in
    Array.iteri
      (fun v p ->
        match p with
        | None -> if v <> t.root then failwith "non-root without parent"
        | Some (u, pv) ->
          incr count;
          (match Graph.port_to g v u with
          | Some p' when p' = pv -> ()
          | _ -> failwith "parent port does not match graph");
          (match List.assoc_opt v t.children.(u) with
          | Some pu ->
            (match Graph.port_to g u v with
            | Some p' when p' = pu -> ()
            | _ -> failwith "child port does not match graph")
          | None -> failwith "child missing from parent's list"))
      t.parent;
    if !count <> n - 1 then failwith "wrong edge count";
    let listed = Array.fold_left (fun acc l -> acc + List.length l) 0 t.children in
    if listed <> n - 1 then failwith "children lists inconsistent";
    (* Reachability from root via children links — explicit stack, so
       deep (path-like) trees cannot overflow the call stack. *)
    let seen = Array.make n false in
    let stack = ref [ t.root ] in
    seen.(t.root) <- true;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        List.iter
          (fun (v, _) ->
            if seen.(v) then failwith "cycle"
            else begin
              seen.(v) <- true;
              stack := v :: !stack
            end)
          t.children.(u)
    done;
    if not (Array.for_all (fun b -> b) seen) then failwith "not spanning";
    Ok ()
  with Failure msg -> Error msg

let depth t =
  let n = size t in
  let d = Array.make n (-1) in
  let stack = ref [ (t.root, 0) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (u, depth_u) :: rest ->
      stack := rest;
      d.(u) <- depth_u;
      List.iter (fun (v, _) -> stack := (v, depth_u + 1) :: !stack) t.children.(u)
  done;
  d

let contribution g es =
  List.fold_left (fun acc e -> acc + Bitstring.Binary.bits (Graph.edge_weight g e)) 0 es

let children_ports t u = List.map snd t.children.(u)
