(** The paper's hard-instance graph surgeries.

    Both lower bounds hide information inside a host graph in a way that
    is invisible from the port labelings the nodes can see:

    - Theorem 2.2 subdivides [n] chosen edges of [K*ₙ], inserting a degree-2
      node in the middle of each ({!subdivide} builds the general form,
      [G_{n,S}]).
    - Theorem 3.2 replaces chosen edges with [k]-cliques missing one edge,
      splicing the clique into the host edge ({!substitute_cliques},
      [G_{n,S,C}]).

    Both operations preserve the port numbers of the host graph at the
    original endpoints, which is precisely why local advice cannot reveal
    where the surgery happened. *)

val subdivide : Graph.t -> chosen:Graph.edge list -> Graph.t
(** [subdivide g ~chosen] inserts one new node in the middle of each chosen
    edge.  The i-th new node (0-based) receives label [L + i + 1] where [L]
    is the largest host label (for the paper's [K*ₙ] with labels [1…n] this
    gives [n+1 … n+|S|]), index [n g + i], port [0] towards the endpoint
    with the smaller label and port [1] towards the other.  Host ports are
    unchanged.  Raises [Invalid_argument] if a chosen edge is not in the
    graph or appears twice. *)

val substitute_cliques :
  Graph.t -> k:int -> chosen:Graph.edge list -> missing:(int * int) list -> Graph.t
(** [substitute_cliques g ~k ~chosen ~missing] replaces the i-th chosen
    edge [{u,v}] (with [label u < label v]) by a clique [Hᵢ] of size
    [k ≥ 3] minus its internal edge [{aᵢ,bᵢ}] given by
    [missing = [(a₁,b₁); …]] with [1 ≤ aᵢ < bᵢ ≤ k]; [aᵢ] is attached to
    [u] re-using the freed clique port and the host port of the former
    edge at [u], and [bᵢ] to [v] likewise.  Clique node labels follow the
    paper: [L + (i-1)k + a] for local index [a ∈ 1…k] over the host
    maximum [L].  Internal clique ports follow the cyclic rule (port [p]
    at local node [x] leads to local node [(x+p+1) mod k]; the paper's
    formula [(a-b) mod (k-1)] has collisions and is repaired the same way
    as in {!Gen.complete}).  Raises [Invalid_argument] on malformed
    input. *)

val clique_pairs : k:int -> count:int -> Random.State.t -> (int * int) list
(** [count] uniform pairs [(a, b)] with [1 ≤ a < b ≤ k] — a random element
    of the paper's set [C]. *)

val choose_edges : Graph.t -> count:int -> Random.State.t -> Graph.edge list
(** [count] distinct edges sampled uniformly — a random tuple [S]. *)

val permute_labels : Graph.t -> Random.State.t -> Graph.t
(** Uniformly relabel nodes (adjacency and ports untouched). *)

val permute_ports : Graph.t -> Random.State.t -> Graph.t
(** Apply an independent uniform permutation to the port numbers of every
    node (adjacency and labels untouched).  Oracle sizes in the paper
    depend on the port labeling — the weight [w(e) = min port] is a
    property of ports, not topology — so this surgery probes that
    sensitivity (experiment E3b). *)
