(** Disjoint-set union with union by size and path compression, tracking
    component sizes — the bookkeeping needed by the Claim 3.1 spanning-tree
    construction, which merges "small" components phase by phase. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union t a b] merges the two components; returns [false] when they were
    already the same. *)

val size : t -> int -> int
(** Size of the component containing the node. *)

val components : t -> int
(** Number of components. *)

val roots : t -> int list
(** Current representative of each component. *)
