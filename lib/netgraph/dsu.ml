type t = { parent : int array; csize : int array; mutable count : int }

let create n = { parent = Array.init n (fun i -> i); csize = Array.make n 1; count = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let big, small = if t.csize.(ra) >= t.csize.(rb) then (ra, rb) else (rb, ra) in
    t.parent.(small) <- big;
    t.csize.(big) <- t.csize.(big) + t.csize.(small);
    t.count <- t.count - 1;
    true
  end

let size t x = t.csize.(find t x)

let components t = t.count

let roots t =
  let acc = ref [] in
  for i = Array.length t.parent - 1 downto 0 do
    if find t i = i then acc := i :: !acc
  done;
  !acc
