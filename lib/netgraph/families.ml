type t =
  | Path
  | Cycle
  | Complete
  | Grid
  | Torus
  | Hypercube
  | Balanced_binary_tree
  | Random_tree
  | Sparse_random
  | Dense_random
  | Lollipop
  | Complete_bipartite
  | Wheel
  | Cube_connected_cycles
  | Random_regular

let name = function
  | Path -> "path"
  | Cycle -> "cycle"
  | Complete -> "complete"
  | Grid -> "grid"
  | Torus -> "torus"
  | Hypercube -> "hypercube"
  | Balanced_binary_tree -> "binary-tree"
  | Random_tree -> "random-tree"
  | Sparse_random -> "sparse-random"
  | Dense_random -> "dense-random"
  | Lollipop -> "lollipop"
  | Complete_bipartite -> "complete-bipartite"
  | Wheel -> "wheel"
  | Cube_connected_cycles -> "ccc"
  | Random_regular -> "random-regular"

let all =
  [
    Path;
    Cycle;
    Complete;
    Grid;
    Torus;
    Hypercube;
    Balanced_binary_tree;
    Random_tree;
    Sparse_random;
    Dense_random;
    Lollipop;
    Complete_bipartite;
    Wheel;
    Cube_connected_cycles;
    Random_regular;
  ]

let default_sweep = [ Random_tree; Grid; Hypercube; Sparse_random; Dense_random; Complete ]

let near_square n =
  let r = int_of_float (sqrt (float_of_int n)) in
  let r = max 2 r in
  (r, (n + r - 1) / r)

let build t ~n ~seed =
  let n = max 4 n in
  let st = Random.State.make [| seed; n; Hashtbl.hash (name t) |] in
  match t with
  | Path -> Gen.path n
  | Cycle -> Gen.cycle n
  | Complete -> Gen.complete n
  | Grid ->
    let r, c = near_square n in
    Gen.grid ~rows:r ~cols:c
  | Torus ->
    let r, c = near_square n in
    Gen.torus ~rows:(max 3 r) ~cols:(max 3 c)
  | Hypercube ->
    let dim = max 2 (Bitstring.Binary.ceil_log2 n) in
    Gen.hypercube ~dim
  | Balanced_binary_tree ->
    (* Smallest depth reaching ≥ n nodes. *)
    let rec depth_for d size = if size >= n then d else depth_for (d + 1) ((2 * size) + 1) in
    Gen.balanced_tree ~arity:2 ~depth:(depth_for 0 1)
  | Random_tree -> Gen.random_tree ~n st
  | Sparse_random ->
    let p = min 1.0 (4.0 /. float_of_int n) in
    Gen.random_connected ~n ~p st
  | Dense_random -> Gen.random_connected ~n ~p:0.5 st
  | Lollipop ->
    let clique = max 3 (n / 2) in
    Gen.lollipop ~clique ~tail:(n - clique)
  | Complete_bipartite ->
    let a = max 1 (n / 2) in
    Gen.complete_bipartite a (max 1 (n - a))
  | Wheel -> Gen.wheel (max 4 n)
  | Cube_connected_cycles ->
    (* Smallest d >= 3 with d*2^d >= n. *)
    let rec fit d = if d * (1 lsl d) >= n || d > 16 then d else fit (d + 1) in
    Gen.cube_connected_cycles ~dim:(fit 3)
  | Random_regular ->
    let n = if n mod 2 = 1 then n + 1 else n in
    Gen.random_regular ~n ~d:3 st

let of_name s = List.find_opt (fun t -> name t = s) all
