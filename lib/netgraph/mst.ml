let key g e =
  let lu = Graph.label g e.Graph.u and lv = Graph.label g e.Graph.v in
  (Graph.edge_weight g e, min lu lv, max lu lv)

let edge_order g a b = compare (key g a) (key g b)

let kruskal g =
  let edges = List.sort (edge_order g) (Graph.edges g) in
  let dsu = Dsu.create (Graph.n g) in
  List.filter (fun e -> Dsu.union dsu e.Graph.u e.Graph.v) edges

let weight g es = List.fold_left (fun acc e -> acc + Graph.edge_weight g e) 0 es

let is_spanning_tree g es =
  List.length es = Graph.n g - 1
  &&
  let dsu = Dsu.create (Graph.n g) in
  List.iter (fun e -> ignore (Dsu.union dsu e.Graph.u e.Graph.v)) es;
  Dsu.components dsu = 1
