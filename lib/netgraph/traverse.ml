let bfs g ~root =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n None in
  let q = Queue.create () in
  dist.(root) <- 0;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (_, v, _) ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- Some u;
          Queue.add v q
        end)
      (Graph.neighbors g u)
  done;
  (dist, parent)

let dfs_parents g ~root =
  let n = Graph.n g in
  let parent = Array.make n None in
  let seen = Array.make n false in
  let rec go u =
    seen.(u) <- true;
    List.iter
      (fun (_, v, _) ->
        if not seen.(v) then begin
          parent.(v) <- Some u;
          go v
        end)
      (Graph.neighbors g u)
  in
  go root;
  (* Mark unreachable nodes with no parent (already None). *)
  parent

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let k = ref 0 in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      let q = Queue.create () in
      comp.(s) <- !k;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun (_, v, _) ->
            if comp.(v) < 0 then begin
              comp.(v) <- !k;
              Queue.add v q
            end)
          (Graph.neighbors g u)
      done;
      incr k
    end
  done;
  (comp, !k)

let eccentricity g u =
  let dist, _ = bfs g ~root:u in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Traverse.eccentricity: disconnected graph" else max acc d)
    0 dist

let diameter g =
  let n = Graph.n g in
  let rec loop u acc = if u >= n then acc else loop (u + 1) (max acc (eccentricity g u)) in
  loop 0 0

let distance g u v =
  let dist, _ = bfs g ~root:u in
  if dist.(v) < 0 then None else Some dist.(v)
