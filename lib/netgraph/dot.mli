(** Graphviz export of networks and spanning trees, for inspecting the
    constructions (subdivided edges, spliced cliques, advised trees). *)

val graph : ?highlight:Graph.edge list -> Graph.t -> string
(** DOT source for the network: nodes labeled ["idx:label"], edges
    annotated with their two port numbers; edges in [highlight] are drawn
    bold red. *)

val spanning : Graph.t -> Spanning.t -> string
(** DOT source with the tree edges highlighted and the root marked. *)
