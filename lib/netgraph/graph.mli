(** Port-labeled networks.

    The paper's model: an undirected connected graph whose nodes carry
    distinct labels, and where the edges incident to a node [v] of degree
    [deg(v)] occupy ports numbered [0 … deg(v)-1] at [v].  Each endpoint of
    an edge has its own port number; [port_u(e)] and [port_v(e)] are
    unrelated.

    Nodes are manipulated through dense indices [0 … n-1]; labels are
    arbitrary distinct integers carried alongside (algorithms in the model
    see labels, experiment plumbing sees indices). *)

type t

type edge = {
  u : int;  (** first endpoint, node index *)
  pu : int;  (** port of the edge at [u] *)
  v : int;  (** second endpoint, node index *)
  pv : int;  (** port of the edge at [v] *)
}

val make : ?labels:int array -> n:int -> edge list -> t
(** [make ~n edges] builds a graph on node indices [0 … n-1].  Port
    assignments must be explicit, within [0 … deg-1] at each endpoint once
    all edges are placed, and pairwise distinct per node.  Default labels
    are [1 … n] (the paper labels nodes from 1).  Raises
    [Invalid_argument] on malformed input: duplicate ports, self-loops,
    duplicate edges, port numbers with gaps, or duplicate labels. *)

val of_adjacency : ?labels:int array -> int list array -> t
(** Build from neighbor lists, assigning ports at each node in list order.
    The neighbor lists must be symmetric. *)

val of_port_map : ?labels:int array -> (int * int) array array -> t
(** [of_port_map adj] builds from the explicit port map [adj.(u).(p) =
    (v, q)], flattened into the internal CSR arrays in one O(n + m)
    pass.  All of {!make}'s invariants are checked with no per-edge
    allocation — the fast path for dense generators (a clique builds
    straight from pre-sized rows instead of an [n²]-record edge list).
    Raises [Invalid_argument] on a malformed map (asymmetry, self-loop,
    parallel edge, out-of-range neighbor or port, duplicate label). *)

val of_csr :
  ?labels:int array -> n:int -> off:int array -> nbr:int array -> prt:int array -> unit -> t
(** [of_csr ~n ~off ~nbr ~prt ()] adopts adjacency already in the
    internal CSR form: [off] has length [n+1] with [off.(0) = 0] and
    monotone offsets, and port [p] at node [u] reaches node
    [nbr.(off.(u) + p)] arriving on its port [prt.(off.(u) + p)].  The
    arrays are adopted {e without copying} — the caller hands over
    ownership and must not mutate them afterwards.  Structural
    invariants (mirror symmetry, no self-loops or parallel edges, ranges)
    are checked in O(n + m); [Invalid_argument] on violation.  The
    zero-intermediate path for generators that can emit CSR directly
    (a 10⁷-node path allocates three int arrays and nothing else). *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int

val label : t -> int -> int

val labels : t -> int array
(** A fresh copy of the label array. *)

val node_of_label : t -> int -> int
(** Raises [Not_found] for an unknown label. *)

val endpoint : t -> int -> int -> int * int
(** [endpoint g u p] is [(v, q)]: following port [p] out of [u] reaches
    node [v], arriving on [v]'s port [q].  Raises [Invalid_argument] on a
    bad port. *)

val endpoint_node : t -> int -> int -> int
(** [endpoint_node g u p] is [fst (endpoint g u p)] without allocating
    the pair — the per-send hot path in the runner. *)

val endpoint_port : t -> int -> int -> int
(** [endpoint_port g u p] is [snd (endpoint g u p)] without allocating
    the pair. *)

val csr_offsets : t -> int array
(** The physical CSR offset array (length [n+1]); see {!of_csr} for the
    layout.  Shared with the graph, {b not} a copy — callers must treat
    it as read-only.  Exposed so per-message inner loops can index
    adjacency with zero function-call or bounds-recheck overhead. *)

val csr_neighbors : t -> int array
(** The physical CSR neighbor array (length [2m]); read-only, see
    {!csr_offsets}. *)

val csr_ports : t -> int array
(** The physical CSR arrival-port array (length [2m]); read-only, see
    {!csr_offsets}. *)

val neighbors : t -> int -> (int * int * int) list
(** [neighbors g u] lists [(port, neighbor, neighbor_port)] in port
    order. *)

val port_to : t -> int -> int -> int option
(** [port_to g u v] is the port at [u] of the edge [{u,v}], if present. *)

val has_edge : t -> int -> int -> bool

val edges : t -> edge list
(** All edges, each listed once with [u < v]. *)

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a

val edge_weight : t -> edge -> int
(** The paper's weight [w(e) = min(port_u(e), port_v(e))] (Theorem 3.1). *)

val is_connected : t -> bool

val validate : t -> (unit, string) result
(** Re-checks all structural invariants; [make] establishes them, so this
    is primarily for tests of graph transformations. *)

val equal : t -> t -> bool
(** Same size, labels, and port-labeled adjacency. *)

val pp : Format.formatter -> t -> unit

val to_edge_list_string : t -> string
(** Compact textual dump, stable across runs, for golden tests. *)
