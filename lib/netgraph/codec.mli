(** Serializing whole port-labeled networks to bit strings.

    Used by the "full map" baseline oracle — the traditional notion of
    giving nodes complete knowledge of the network, against which the
    paper's O(n)/Θ(n log n) oracles are compared.  The encoding is
    self-delimiting and exactly invertible. *)

val encode : Graph.t -> Bitstring.Bitbuf.t
(** Requires all labels to be non-negative. *)

val decode : Bitstring.Bitbuf.reader -> Graph.t
(** Raises [Invalid_argument] on malformed input. *)

val encoded_bits : Graph.t -> int
(** Size of {!encode}'s output. *)
