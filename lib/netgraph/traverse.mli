(** Classical traversals over port-labeled graphs. *)

val bfs : Graph.t -> root:int -> int array * int option array
(** [bfs g ~root] is [(dist, parent)]: [dist.(v)] is the hop distance from
    [root] ([-1] if unreachable), [parent.(v)] the BFS parent ([None] for
    the root and unreachable nodes).  Neighbors are explored in port
    order. *)

val dfs_parents : Graph.t -> root:int -> int option array
(** DFS spanning forest parents from [root], ports explored in order. *)

val components : Graph.t -> int array * int
(** [(comp, k)]: component index per node and the number of components. *)

val eccentricity : Graph.t -> int -> int
(** Largest hop distance from the node.  Raises [Invalid_argument] on a
    disconnected graph. *)

val diameter : Graph.t -> int
(** Largest eccentricity.  Raises [Invalid_argument] on a disconnected
    graph. *)

val distance : Graph.t -> int -> int -> int option
(** Hop distance, [None] if disconnected. *)
