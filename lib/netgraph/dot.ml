let edge_key e = (min e.Graph.u e.Graph.v, max e.Graph.u e.Graph.v)

let render ?(highlight = []) ?(root = None) g =
  let buf = Buffer.create 1024 in
  let marked = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace marked (edge_key e) ()) highlight;
  Buffer.add_string buf "graph network {\n  node [shape=circle fontsize=10];\n";
  for v = 0 to Graph.n g - 1 do
    let attrs =
      if root = Some v then " style=filled fillcolor=gold" else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%d:%d\"%s];\n" v v (Graph.label g v) attrs)
  done;
  List.iter
    (fun e ->
      let style =
        if Hashtbl.mem marked (edge_key e) then " color=red penwidth=2.0" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -- n%d [taillabel=\"%d\" headlabel=\"%d\" fontsize=8%s];\n"
           e.Graph.u e.Graph.v e.Graph.pu e.Graph.pv style))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let graph ?highlight g = render ?highlight ~root:None g

let spanning g tree =
  render ~highlight:(Spanning.edges tree) ~root:(Some tree.Spanning.root) g
