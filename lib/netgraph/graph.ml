type edge = { u : int; pu : int; v : int; pv : int }

(* Label lookup: the default labeling 1..n needs no table at all —
   [node_of_label] is arithmetic — and skipping the Hashtbl keeps
   million-node graph construction allocation-light.  Arbitrary labelings
   pay for the table they need. *)
type label_index = Identity | Table of (int, int) Hashtbl.t

(* Adjacency in CSR (compressed sparse row) form: three flat int arrays
   instead of an array of (neighbor, port) tuple rows.  Port [p] at node
   [u] lives at index [off.(u) + p]; [nbr] holds the neighbor and [prt]
   the arrival port there.  The tuple-row layout cost two pointer chases
   plus a boxed-tuple read per hop — at n = 10⁶ with a shuffled node
   order that is a cache miss per message and was the measured wakeup
   throughput cliff (3.1M → 0.47M msgs/s).  Flat int arrays make a hop
   two reads from (usually) one cache line, and let the runner's emit
   loop avoid allocating a tuple per send via {!endpoint_node} /
   {!endpoint_port}. *)
type t = {
  size : int;
  node_labels : int array;
  off : int array;  (* length size + 1; off.(size) = 2m *)
  nbr : int array;  (* nbr.(off.(u) + p) = v *)
  prt : int array;  (* prt.(off.(u) + p) = q, the port of the edge at v *)
  label_index : label_index;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let is_default_labels a =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) = i + 1 && go (i + 1)) in
  go 0

let build_labels ~ctx ~size labels =
  let node_labels =
    match labels with
    | None -> Array.init size (fun i -> i + 1)
    | Some a ->
      if Array.length a <> size then fail "%s: %d labels for %d nodes" ctx (Array.length a) size;
      Array.copy a
  in
  let label_index =
    if labels = None || is_default_labels node_labels then Identity
    else begin
      let tbl = Hashtbl.create size in
      Array.iteri
        (fun i l ->
          if Hashtbl.mem tbl l then fail "%s: duplicate label %d" ctx l;
          Hashtbl.add tbl l i)
        node_labels;
      Table tbl
    end
  in
  (node_labels, label_index)

(* Shared structural check over finished CSR arrays: mirror symmetry,
   no self-loops, no parallel edges (one shared mark array with a
   per-node epoch — a fresh Hashtbl per node would dominate million-node
   builds). *)
let check_csr ~ctx ~size ~off ~nbr ~prt =
  let mark = Array.make size (-1) in
  for u = 0 to size - 1 do
    let base = off.(u) in
    let deg = off.(u + 1) - base in
    for p = 0 to deg - 1 do
      let v = nbr.(base + p) in
      let q = prt.(base + p) in
      if v < 0 || v >= size then fail "%s: node %d port %d: neighbor %d out of range" ctx u p v;
      if v = u then fail "%s: self-loop at node %d" ctx u;
      if q < 0 || q >= off.(v + 1) - off.(v) then
        fail "%s: node %d port %d: reverse port %d out of range" ctx u p q;
      if nbr.(off.(v) + q) <> u || prt.(off.(v) + q) <> p then
        fail "%s: asymmetric port map between %d and %d" ctx u v;
      if mark.(v) = u then fail "%s: parallel edge between %d and %d" ctx u v;
      mark.(v) <- u
    done
  done

let of_csr ?labels ~n:size ~off ~nbr ~prt () =
  if size < 1 then fail "Graph.of_csr: n = %d < 1" size;
  if Array.length off <> size + 1 then
    fail "Graph.of_csr: offset array has length %d, want %d" (Array.length off) (size + 1);
  if off.(0) <> 0 then fail "Graph.of_csr: off.(0) = %d, want 0" off.(0);
  for u = 0 to size - 1 do
    if off.(u + 1) < off.(u) then fail "Graph.of_csr: offsets not monotone at node %d" u
  done;
  let total = off.(size) in
  if Array.length nbr <> total || Array.length prt <> total then
    fail "Graph.of_csr: slot arrays have lengths %d/%d, want %d" (Array.length nbr)
      (Array.length prt) total;
  let node_labels, label_index = build_labels ~ctx:"Graph.of_csr" ~size labels in
  check_csr ~ctx:"Graph.of_csr" ~size ~off ~nbr ~prt;
  { size; node_labels; off; nbr; prt; label_index }

let make ?labels ~n:size edge_list =
  if size < 1 then fail "Graph.make: n = %d < 1" size;
  let node_labels, label_index = build_labels ~ctx:"Graph.make" ~size labels in
  let deg = Array.make size 0 in
  List.iter
    (fun e ->
      if e.u < 0 || e.u >= size then fail "Graph.make: node out of range in edge";
      if e.v < 0 || e.v >= size then fail "Graph.make: node out of range in edge";
      if e.u = e.v then fail "Graph.make: self-loop at node %d" e.u;
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edge_list;
  let off = Array.make (size + 1) 0 in
  for u = 0 to size - 1 do
    off.(u + 1) <- off.(u) + deg.(u)
  done;
  let total = off.(size) in
  let nbr = Array.make total (-1) in
  let prt = Array.make total (-1) in
  let place u p v q =
    if p < 0 || p >= deg.(u) then fail "Graph.make: port %d out of range 0..%d at node %d" p (deg.(u) - 1) u;
    if nbr.(off.(u) + p) <> -1 then fail "Graph.make: duplicate port %d at node %d" p u;
    nbr.(off.(u) + p) <- v;
    prt.(off.(u) + p) <- q
  in
  List.iter
    (fun e ->
      place e.u e.pu e.v e.pv;
      place e.v e.pv e.u e.pu)
    edge_list;
  (* Every port slot must be filled: no gaps in 0..deg-1. *)
  for u = 0 to size - 1 do
    for p = 0 to deg.(u) - 1 do
      if nbr.(off.(u) + p) = -1 then fail "Graph.make: port %d at node %d unassigned" p u
    done
  done;
  (* Symmetry holds by construction (both directions placed together);
     the shared check also catches parallel edges. *)
  check_csr ~ctx:"Graph.make" ~size ~off ~nbr ~prt;
  { size; node_labels; off; nbr; prt; label_index }

let of_port_map ?labels adj =
  let size = Array.length adj in
  if size < 1 then fail "Graph.of_port_map: n = %d < 1" size;
  let node_labels, label_index = build_labels ~ctx:"Graph.of_port_map" ~size labels in
  let off = Array.make (size + 1) 0 in
  for u = 0 to size - 1 do
    off.(u + 1) <- off.(u) + Array.length adj.(u)
  done;
  let total = off.(size) in
  let nbr = Array.make total (-1) in
  let prt = Array.make total (-1) in
  Array.iteri
    (fun u row ->
      let base = off.(u) in
      Array.iteri
        (fun p (v, q) ->
          nbr.(base + p) <- v;
          prt.(base + p) <- q)
        row)
    adj;
  check_csr ~ctx:"Graph.of_port_map" ~size ~off ~nbr ~prt;
  { size; node_labels; off; nbr; prt; label_index }

let of_adjacency ?labels lists =
  let size = Array.length lists in
  if size < 1 then fail "Graph.of_adjacency: n = %d < 1" size;
  let node_labels, label_index = build_labels ~ctx:"Graph.of_adjacency" ~size labels in
  let off = Array.make (size + 1) 0 in
  for u = 0 to size - 1 do
    off.(u + 1) <- off.(u) + List.length lists.(u)
  done;
  let total = off.(size) in
  let nbr = Array.make total (-1) in
  let prt = Array.make total (-1) in
  Array.iteri
    (fun u ns ->
      let base = off.(u) in
      List.iteri (fun p v -> nbr.(base + p) <- v) ns)
    lists;
  (* Reverse ports: the port of v in u's list is its position, so scan
     each row once and look the mirror position up by neighbor value.
     Rows are short relative to n on every family we generate, and the
     quadratic-in-degree scan avoids the (u, v) → p Hashtbl that used to
     dominate sparse million-node builds. *)
  for u = 0 to size - 1 do
    let base = off.(u) in
    let deg = off.(u + 1) - base in
    for p = 0 to deg - 1 do
      let v = nbr.(base + p) in
      if v < 0 || v >= size then fail "Graph.of_adjacency: node %d port %d: neighbor %d out of range" u p v;
      let vb = off.(v) in
      let vdeg = off.(v + 1) - vb in
      let q = ref (-1) in
      for j = 0 to vdeg - 1 do
        if !q = -1 && nbr.(vb + j) = u then q := j
      done;
      if !q = -1 then fail "Graph.of_adjacency: missing symmetric entry %d -> %d" v u;
      prt.(base + p) <- !q
    done
  done;
  check_csr ~ctx:"Graph.of_adjacency" ~size ~off ~nbr ~prt;
  { size; node_labels; off; nbr; prt; label_index }

let n t = t.size

let m t = Array.length t.nbr / 2

let degree t u = t.off.(u + 1) - t.off.(u)

let label t u = t.node_labels.(u)

let labels t = Array.copy t.node_labels

let node_of_label t l =
  match t.label_index with
  | Identity -> if l >= 1 && l <= t.size then l - 1 else raise Not_found
  | Table tbl -> (
    match Hashtbl.find_opt tbl l with Some i -> i | None -> raise Not_found)

let check_port t u p =
  if u < 0 || u >= t.size then fail "Graph.endpoint: node %d out of range" u;
  if p < 0 || p >= t.off.(u + 1) - t.off.(u) then
    fail "Graph.endpoint: port %d out of range at node %d" p u

let endpoint t u p =
  check_port t u p;
  let i = t.off.(u) + p in
  (t.nbr.(i), t.prt.(i))

let endpoint_node t u p =
  check_port t u p;
  t.nbr.(t.off.(u) + p)

let endpoint_port t u p =
  check_port t u p;
  t.prt.(t.off.(u) + p)

let csr_offsets t = t.off

let csr_neighbors t = t.nbr

let csr_ports t = t.prt

let neighbors t u =
  let base = t.off.(u) in
  List.init (degree t u) (fun p -> (p, t.nbr.(base + p), t.prt.(base + p)))

let port_to t u v =
  let base = t.off.(u) in
  let deg = degree t u in
  let rec loop p = if p >= deg then None else if t.nbr.(base + p) = v then Some p else loop (p + 1) in
  loop 0

let has_edge t u v = port_to t u v <> None

let fold_edges f t acc =
  let acc = ref acc in
  for u = 0 to t.size - 1 do
    let base = t.off.(u) in
    for pu = 0 to t.off.(u + 1) - base - 1 do
      let v = t.nbr.(base + pu) in
      if u < v then acc := f { u; pu; v; pv = t.prt.(base + pu) } !acc
    done
  done;
  !acc

let edges t = List.rev (fold_edges (fun e acc -> e :: acc) t [])

let edge_weight _t e = min e.pu e.pv

let is_connected t =
  (* Explicit stack: recursion depth would be Θ(n) on path-like graphs. *)
  let seen = Array.make t.size false in
  let stack = ref [ 0 ] in
  seen.(0) <- true;
  let count = ref 0 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
      stack := rest;
      incr count;
      for i = t.off.(u) to t.off.(u + 1) - 1 do
        let v = t.nbr.(i) in
        if not seen.(v) then begin
          seen.(v) <- true;
          stack := v :: !stack
        end
      done
  done;
  !count = t.size

let validate t =
  try
    if Array.length t.node_labels <> t.size then failwith "label array size mismatch";
    if Array.length t.off <> t.size + 1 || t.off.(0) <> 0 then failwith "offset array malformed";
    for u = 0 to t.size - 1 do
      if t.off.(u + 1) < t.off.(u) then failwith (Printf.sprintf "offsets not monotone at %d" u)
    done;
    if Array.length t.nbr <> t.off.(t.size) || Array.length t.prt <> t.off.(t.size) then
      failwith "slot array size mismatch";
    let seen_labels = Hashtbl.create t.size in
    Array.iter
      (fun l ->
        if Hashtbl.mem seen_labels l then failwith (Printf.sprintf "duplicate label %d" l);
        Hashtbl.add seen_labels l ())
      t.node_labels;
    (try check_csr ~ctx:"validate" ~size:t.size ~off:t.off ~nbr:t.nbr ~prt:t.prt
     with Invalid_argument msg -> failwith msg);
    Ok ()
  with Failure msg -> Error msg

let equal a b =
  a.size = b.size && a.node_labels = b.node_labels && a.off = b.off && a.nbr = b.nbr
  && a.prt = b.prt

let to_edge_list_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "n=%d m=%d\n" t.size (m t));
  List.iter
    (fun e -> Buffer.add_string b (Printf.sprintf "%d[%d]--%d[%d]\n" e.u e.pu e.v e.pv))
    (edges t);
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "@[<v>graph n=%d m=%d" t.size (m t);
  for u = 0 to t.size - 1 do
    Format.fprintf fmt "@,%d(lbl %d):" u t.node_labels.(u);
    let base = t.off.(u) in
    for p = 0 to t.off.(u + 1) - base - 1 do
      Format.fprintf fmt " %d->%d[%d]" p t.nbr.(base + p) t.prt.(base + p)
    done
  done;
  Format.fprintf fmt "@]"
