type edge = { u : int; pu : int; v : int; pv : int }

(* Label lookup: the default labeling 1..n needs no table at all —
   [node_of_label] is arithmetic — and skipping the Hashtbl keeps
   million-node graph construction allocation-light.  Arbitrary labelings
   pay for the table they need. *)
type label_index = Identity | Table of (int, int) Hashtbl.t

type t = {
  size : int;
  node_labels : int array;
  (* adj.(u).(p) = (v, q): port p at u leads to v, arriving on v's port q. *)
  adj : (int * int) array array;
  label_index : label_index;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let is_default_labels a =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) = i + 1 && go (i + 1)) in
  go 0

let make ?labels ~n:size edge_list =
  if size < 1 then fail "Graph.make: n = %d < 1" size;
  let node_labels =
    match labels with
    | None -> Array.init size (fun i -> i + 1)
    | Some a ->
      if Array.length a <> size then fail "Graph.make: %d labels for %d nodes" (Array.length a) size;
      Array.copy a
  in
  let label_index =
    if labels = None || is_default_labels node_labels then Identity
    else begin
      let tbl = Hashtbl.create size in
      Array.iteri
        (fun i l ->
          if Hashtbl.mem tbl l then fail "Graph.make: duplicate label %d" l;
          Hashtbl.add tbl l i)
        node_labels;
      Table tbl
    end
  in
  let deg = Array.make size 0 in
  List.iter
    (fun e ->
      if e.u < 0 || e.u >= size || e.v < 0 || e.v >= size then fail "Graph.make: node out of range in edge";
      if e.u = e.v then fail "Graph.make: self-loop at node %d" e.u;
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edge_list;
  let adj = Array.init size (fun u -> Array.make deg.(u) (-1, -1)) in
  let place u p v q =
    if p < 0 || p >= deg.(u) then fail "Graph.make: port %d out of range 0..%d at node %d" p (deg.(u) - 1) u;
    if adj.(u).(p) <> (-1, -1) then fail "Graph.make: duplicate port %d at node %d" p u;
    adj.(u).(p) <- (v, q)
  in
  List.iter
    (fun e ->
      place e.u e.pu e.v e.pv;
      place e.v e.pv e.u e.pu)
    edge_list;
  (* Every port slot must be filled: no gaps in 0..deg-1. *)
  Array.iteri
    (fun u row ->
      Array.iteri (fun p (v, _) -> if v = -1 then fail "Graph.make: port %d at node %d unassigned" p u) row)
    adj;
  (* No parallel edges.  One shared mark array with a per-node epoch
     instead of a fresh Hashtbl per node: million-node builds would
     otherwise allocate a table per node just for this check. *)
  let mark = Array.make size (-1) in
  Array.iteri
    (fun u row ->
      Array.iter
        (fun (v, _) ->
          if mark.(v) = u then fail "Graph.make: parallel edge between %d and %d" u v;
          mark.(v) <- u)
        row)
    adj;
  { size; node_labels; adj; label_index }

let of_port_map ?labels adj =
  let size = Array.length adj in
  if size < 1 then fail "Graph.of_port_map: n = %d < 1" size;
  let node_labels =
    match labels with
    | None -> Array.init size (fun i -> i + 1)
    | Some a ->
      if Array.length a <> size then
        fail "Graph.of_port_map: %d labels for %d nodes" (Array.length a) size;
      Array.copy a
  in
  let label_index =
    if labels = None || is_default_labels node_labels then Identity
    else begin
      let tbl = Hashtbl.create size in
      Array.iteri
        (fun i l ->
          if Hashtbl.mem tbl l then fail "Graph.of_port_map: duplicate label %d" l;
          Hashtbl.add tbl l i)
        node_labels;
      Table tbl
    end
  in
  (* Same invariants as [make], checked in O(n + m) straight off the port
     map: every (u, p) -> (v, q) entry must be mirrored exactly, with no
     self-loops and no parallel edges (shared epoch array, as in [make]). *)
  let mark = Array.make size (-1) in
  Array.iteri
    (fun u row ->
      Array.iteri
        (fun p (v, q) ->
          if v < 0 || v >= size then
            fail "Graph.of_port_map: node %d port %d: neighbor %d out of range" u p v;
          if v = u then fail "Graph.of_port_map: self-loop at node %d" u;
          if q < 0 || q >= Array.length adj.(v) then
            fail "Graph.of_port_map: node %d port %d: reverse port %d out of range" u p q;
          if adj.(v).(q) <> (u, p) then
            fail "Graph.of_port_map: asymmetric port map between %d and %d" u v;
          if mark.(v) = u then fail "Graph.of_port_map: parallel edge between %d and %d" u v;
          mark.(v) <- u)
        row)
    adj;
  { size; node_labels; adj; label_index }

let of_adjacency ?labels lists =
  let size = Array.length lists in
  (* Port of v in u's list = position; build edges once per unordered pair. *)
  let pos = Hashtbl.create 16 in
  Array.iteri (fun u ns -> List.iteri (fun p v -> Hashtbl.replace pos (u, v) p) ns) lists;
  let edges = ref [] in
  Array.iteri
    (fun u ns ->
      List.iteri
        (fun p v ->
          if u < v then
            match Hashtbl.find_opt pos (v, u) with
            | None -> fail "Graph.of_adjacency: missing symmetric entry %d -> %d" v u
            | Some q -> edges := { u; pu = p; v; pv = q } :: !edges)
        ns)
    lists;
  make ?labels ~n:size !edges

let n t = t.size

let m t = Array.fold_left (fun acc row -> acc + Array.length row) 0 t.adj / 2

let degree t u = Array.length t.adj.(u)

let label t u = t.node_labels.(u)

let labels t = Array.copy t.node_labels

let node_of_label t l =
  match t.label_index with
  | Identity -> if l >= 1 && l <= t.size then l - 1 else raise Not_found
  | Table tbl -> (
    match Hashtbl.find_opt tbl l with Some i -> i | None -> raise Not_found)

let endpoint t u p =
  if u < 0 || u >= t.size then fail "Graph.endpoint: node %d out of range" u;
  if p < 0 || p >= Array.length t.adj.(u) then fail "Graph.endpoint: port %d out of range at node %d" p u;
  t.adj.(u).(p)

let neighbors t u =
  Array.to_list (Array.mapi (fun p (v, q) -> (p, v, q)) t.adj.(u))

let port_to t u v =
  let row = t.adj.(u) in
  let rec loop p = if p >= Array.length row then None else if fst row.(p) = v then Some p else loop (p + 1) in
  loop 0

let has_edge t u v = port_to t u v <> None

let fold_edges f t acc =
  let acc = ref acc in
  Array.iteri
    (fun u row ->
      Array.iteri (fun pu (v, pv) -> if u < v then acc := f { u; pu; v; pv } !acc) row)
    t.adj;
  !acc

let edges t = List.rev (fold_edges (fun e acc -> e :: acc) t [])

let edge_weight _t e = min e.pu e.pv

let is_connected t =
  (* Explicit stack: recursion depth would be Θ(n) on path-like graphs. *)
  let seen = Array.make t.size false in
  let stack = ref [ 0 ] in
  seen.(0) <- true;
  let count = ref 0 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
      stack := rest;
      incr count;
      Array.iter
        (fun (v, _) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            stack := v :: !stack
          end)
        t.adj.(u)
  done;
  !count = t.size

let validate t =
  try
    if Array.length t.node_labels <> t.size then failwith "label array size mismatch";
    let seen_labels = Hashtbl.create t.size in
    Array.iter
      (fun l ->
        if Hashtbl.mem seen_labels l then failwith (Printf.sprintf "duplicate label %d" l);
        Hashtbl.add seen_labels l ())
      t.node_labels;
    Array.iteri
      (fun u row ->
        let seen_nbr = Hashtbl.create (Array.length row) in
        Array.iteri
          (fun p (v, q) ->
            if v < 0 || v >= t.size then failwith (Printf.sprintf "node %d port %d: bad neighbor" u p);
            if v = u then failwith (Printf.sprintf "self-loop at %d" u);
            if Hashtbl.mem seen_nbr v then failwith (Printf.sprintf "parallel edge %d-%d" u v);
            Hashtbl.add seen_nbr v ();
            if q < 0 || q >= Array.length t.adj.(v) then
              failwith (Printf.sprintf "node %d port %d: bad reverse port %d" u p q);
            if t.adj.(v).(q) <> (u, p) then failwith (Printf.sprintf "asymmetric port map at %d-%d" u v))
          row)
      t.adj;
    Ok ()
  with Failure msg -> Error msg

let equal a b =
  a.size = b.size && a.node_labels = b.node_labels
  && Array.for_all2 (fun ra rb -> ra = rb) a.adj b.adj

let to_edge_list_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "n=%d m=%d\n" t.size (m t));
  List.iter
    (fun e -> Buffer.add_string b (Printf.sprintf "%d[%d]--%d[%d]\n" e.u e.pu e.v e.pv))
    (edges t);
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "@[<v>graph n=%d m=%d" t.size (m t);
  Array.iteri
    (fun u row ->
      Format.fprintf fmt "@,%d(lbl %d):" u t.node_labels.(u);
      Array.iteri (fun p (v, q) -> Format.fprintf fmt " %d->%d[%d]" p v q) row)
    t.adj;
  Format.fprintf fmt "@]"
