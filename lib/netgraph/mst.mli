(** Minimum spanning trees under the paper's edge weights.

    Section 1.2 lists "construction of a minimum spanning tree using at
    most a prescribed number of messages" among the tasks an oracle can be
    measured on.  The natural weight in the port-labeled model is the
    paper's [w(e) = min(port_u(e), port_v(e))]; ties are broken by the
    endpoint label pair, making the minimum spanning tree {e unique} — so
    a distributed construction can be checked edge-for-edge against this
    centralized reference. *)

val edge_order : Graph.t -> Graph.edge -> Graph.edge -> int
(** The strict total order: by weight, then by smaller endpoint label,
    then larger. *)

val kruskal : Graph.t -> Graph.edge list
(** The unique MST under {!edge_order}, as [n-1] edges (Kruskal + DSU). *)

val weight : Graph.t -> Graph.edge list -> int
(** Total weight of an edge set. *)

val is_spanning_tree : Graph.t -> Graph.edge list -> bool
(** The edge set has [n-1] edges and connects all nodes. *)
