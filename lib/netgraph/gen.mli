(** Network generators.

    Every generator returns a connected, validated port-labeled graph.
    Ports are assigned deterministically so that experiments are
    reproducible; generators taking randomness use an explicit
    [Random.State.t]. *)

val path : int -> Graph.t
(** Path on [n ≥ 1] nodes, [0 - 1 - … - n-1]. *)

val cycle : int -> Graph.t
(** Cycle on [n ≥ 3] nodes. *)

val star : int -> Graph.t
(** Star with center node [0] and [n-1] leaves ([n ≥ 2]). *)

val complete : int -> Graph.t
(** The paper's [K*ₙ]: complete graph on labels [1 … n] with the cyclic
    port labeling — port [p] at node index [i] leads to node index
    [(i + p + 1) mod n].

    The paper defines the port at [i] of edge [{i,j}] as
    [(i - j) mod (n-1)], which collides for the label pair [{1, n}] when
    [n ≥ 3]; the cyclic rule above is the standard repair, preserves the
    role of [K*ₙ] in every construction, and is a valid port labeling for
    all [n ≥ 2]. *)

val balanced_tree : arity:int -> depth:int -> Graph.t
(** Complete [arity]-ary rooted tree of the given depth (depth 0 is a
    single node). *)

val grid : rows:int -> cols:int -> Graph.t
(** 2-D grid, row-major node indices. *)

val torus : rows:int -> cols:int -> Graph.t
(** 2-D torus; [rows, cols ≥ 3] so no parallel edges arise. *)

val hypercube : dim:int -> Graph.t
(** [dim]-dimensional hypercube on [2^dim] nodes; port [k] flips bit
    [k]. *)

val random_connected : n:int -> p:float -> Random.State.t -> Graph.t
(** Erdős–Rényi [G(n,p)] patched to connectivity: a uniform random
    spanning tree's edges are added first, then each remaining pair
    independently with probability [p].  Ports are assigned in insertion
    order, shuffled per node. *)

val random_tree : n:int -> Random.State.t -> Graph.t
(** Uniform random labeled tree (random Prüfer sequence). *)

val lollipop : clique:int -> tail:int -> Graph.t
(** A clique of size [clique ≥ 3] with a path of [tail] extra nodes
    attached — a classic worst case for flooding-style baselines. *)

val complete_bipartite : int -> int -> Graph.t
(** [K_{a,b}] with [a, b ≥ 1] (and [a + b ≥ 2] nodes). *)

val wheel : int -> Graph.t
(** Hub node [0] plus a cycle of [n-1 ≥ 3] rim nodes. *)

val cube_connected_cycles : dim:int -> Graph.t
(** CCC(d): each hypercube corner replaced by a [d]-cycle; 3-regular for
    [d ≥ 3], [d·2^d] nodes.  Port 0/1 go around the local cycle, port 2
    along the hypercube dimension. *)

val random_regular : n:int -> d:int -> Random.State.t -> Graph.t
(** A connected [d]-regular graph via the configuration model with
    rejection (retries until simple and connected).  Requires [n·d] even,
    [3 ≤ d < n]. *)
