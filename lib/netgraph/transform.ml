let fail fmt = Printf.ksprintf invalid_arg fmt

let edge_key e = (min e.Graph.u e.Graph.v, max e.Graph.u e.Graph.v)

let max_label g =
  let best = ref min_int in
  for i = 0 to Graph.n g - 1 do
    best := max !best (Graph.label g i)
  done;
  !best

let check_chosen g chosen =
  let seen = Hashtbl.create (List.length chosen) in
  List.iter
    (fun e ->
      let key = edge_key e in
      if Hashtbl.mem seen key then fail "Transform: edge %d-%d chosen twice" (fst key) (snd key);
      Hashtbl.add seen key ();
      match Graph.port_to g e.Graph.u e.Graph.v with
      | Some p when p = e.Graph.pu ->
        (match Graph.port_to g e.Graph.v e.Graph.u with
        | Some q when q = e.Graph.pv -> ()
        | _ -> fail "Transform: edge %d-%d has wrong ports" e.Graph.u e.Graph.v)
      | _ -> fail "Transform: edge %d-%d not in graph" e.Graph.u e.Graph.v)
    chosen;
  seen

let subdivide g ~chosen =
  let n = Graph.n g in
  let (_ : (int * int, unit) Hashtbl.t) = check_chosen g chosen in
  let base = max_label g in
  let s = List.length chosen in
  (* Host nodes keep their port numbering, so the subdivided graph is the
     host's port map with the two slots of each chosen edge redirected to
     a fresh degree-2 middle node.  Building that map in place and handing
     it to [Graph.of_port_map] skips the three m-length edge lists the
     edge-list path would allocate — for G_{n,S} the host is a clique, so
     those lists are the dominant setup cost. *)
  let adj =
    Array.init (n + s) (fun u ->
        if u < n then Array.init (Graph.degree g u) (fun p -> Graph.endpoint g u p)
        else Array.make 2 (-1, -1))
  in
  List.iteri
    (fun i e ->
      let w = n + i in
      let u, pu, v, pv = (e.Graph.u, e.Graph.pu, e.Graph.v, e.Graph.pv) in
      let lu = Graph.label g u and lv = Graph.label g v in
      (* Port 0 at the middle node towards the smaller-labeled endpoint. *)
      let port_u_side, port_v_side = if lu < lv then (0, 1) else (1, 0) in
      adj.(u).(pu) <- (w, port_u_side);
      adj.(w).(port_u_side) <- (u, pu);
      adj.(v).(pv) <- (w, port_v_side);
      adj.(w).(port_v_side) <- (v, pv))
    chosen;
  let labels = Array.init (n + s) (fun i -> if i < n then Graph.label g i else base + (i - n) + 1) in
  Graph.of_port_map ~labels adj

(* Internal clique port rule: port p at local node x (0-based) leads to
   local node (x + p + 1) mod k; hence the port at x towards y is
   (y - x - 1) mod k, always in 0..k-2. *)
let clique_port ~k x y = (((y - x - 1) mod k) + k) mod k

let substitute_cliques g ~k ~chosen ~missing =
  if k < 3 then fail "Transform.substitute_cliques: k = %d < 3" k;
  if List.length chosen <> List.length missing then
    fail "Transform.substitute_cliques: %d edges but %d missing pairs" (List.length chosen)
      (List.length missing);
  let n = Graph.n g in
  let chosen_set = check_chosen g chosen in
  let base = max_label g in
  let host_edges =
    List.filter (fun e -> not (Hashtbl.mem chosen_set (edge_key e))) (Graph.edges g)
  in
  let q = List.length chosen in
  let labels =
    Array.init
      (n + (q * k))
      (fun i -> if i < n then Graph.label g i else base + (i - n) + 1)
  in
  let new_edges = ref [] in
  List.iteri
    (fun i (e, (a, b)) ->
      if a < 1 || b > k || a >= b then fail "Transform.substitute_cliques: bad pair (%d,%d)" a b;
      (* Orient the host edge so that label u < label v, as in the paper. *)
      let u, pu, v, pv =
        if Graph.label g e.Graph.u < Graph.label g e.Graph.v then
          (e.Graph.u, e.Graph.pu, e.Graph.v, e.Graph.pv)
        else (e.Graph.v, e.Graph.pv, e.Graph.u, e.Graph.pu)
      in
      let node_of_local a = n + (i * k) + (a - 1) in
      (* Internal edges: all pairs except {a, b}. *)
      for x = 1 to k do
        for y = x + 1 to k do
          if not (x = a && y = b) then
            new_edges :=
              {
                Graph.u = node_of_local x;
                pu = clique_port ~k (x - 1) (y - 1);
                v = node_of_local y;
                pv = clique_port ~k (y - 1) (x - 1);
              }
              :: !new_edges
        done
      done;
      (* External edges re-use the freed ports. *)
      new_edges :=
        { Graph.u; pu; v = node_of_local a; pv = clique_port ~k (a - 1) (b - 1) } :: !new_edges;
      new_edges :=
        { Graph.u = v; pu = pv; v = node_of_local b; pv = clique_port ~k (b - 1) (a - 1) }
        :: !new_edges)
    (List.combine chosen missing);
  Graph.make ~labels ~n:(n + (q * k)) (host_edges @ !new_edges)

let clique_pairs ~k ~count st =
  if k < 2 then fail "Transform.clique_pairs: k = %d < 2" k;
  List.init count (fun _ ->
      let a = 1 + Random.State.int st k in
      let rec pick () =
        let b = 1 + Random.State.int st k in
        if b = a then pick () else b
      in
      let b = pick () in
      (min a b, max a b))

let choose_edges g ~count st =
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  if count > m then fail "Transform.choose_edges: %d > %d edges" count m;
  for i = m - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = edges.(i) in
    edges.(i) <- edges.(j);
    edges.(j) <- tmp
  done;
  Array.to_list (Array.sub edges 0 count)

let permute_labels g st =
  let n = Graph.n g in
  let labels = Graph.labels g in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = labels.(i) in
    labels.(i) <- labels.(j);
    labels.(j) <- tmp
  done;
  Graph.make ~labels ~n (Graph.edges g)

let permute_ports g st =
  let n = Graph.n g in
  let perms =
    Array.init n (fun v ->
        let d = Graph.degree g v in
        let p = Array.init d (fun i -> i) in
        for i = d - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let tmp = p.(i) in
          p.(i) <- p.(j);
          p.(j) <- tmp
        done;
        p)
  in
  let edges =
    List.map
      (fun e ->
        { Graph.u = e.Graph.u; pu = perms.(e.Graph.u).(e.Graph.pu); v = e.Graph.v;
          pv = perms.(e.Graph.v).(e.Graph.pv) })
      (Graph.edges g)
  in
  Graph.make ~labels:(Graph.labels g) ~n edges
