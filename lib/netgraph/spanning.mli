(** Rooted spanning trees of port-labeled graphs.

    Both oracles in the paper are advice about a spanning tree: Theorem 2.1
    ships each node the ports towards its children, and Theorem 3.1 ships
    each tree edge's weight [w(e) = min port] to one endpoint.  The choice
    of tree drives the oracle size, which is why this module provides BFS,
    DFS and random trees alongside the Claim 3.1 construction whose total
    contribution [Σ #₂(w(e))] is at most [4n]. *)

type t = {
  root : int;
  parent : (int * int) option array;
      (** [parent.(v) = Some (u, p)]: [u] is [v]'s parent and [p] is the
          port {e at [v]} leading to [u]. *)
  children : (int * int) list array;
      (** [children.(u)]: list of [(child, port at u towards child)] in
          increasing port order. *)
}

val of_parents : Graph.t -> root:int -> int option array -> t
(** Build from a parent map (as produced by {!Traverse.bfs}).  Raises
    [Invalid_argument] if the map is not a spanning tree of the graph
    rooted at [root]. *)

val bfs : Graph.t -> root:int -> t
val dfs : Graph.t -> root:int -> t

val random : Graph.t -> root:int -> Random.State.t -> t
(** Spanning tree from a uniformly shuffled edge order (random Kruskal). *)

val light : Graph.t -> root:int -> t
(** The Claim 3.1 construction: Borůvka-style phases in which every
    component of size [< 2^k] selects its minimum-weight outgoing edge
    (weight = [min port]), cycles being broken arbitrarily.  Guarantees
    [contribution g (edges t) ≤ 4n]. *)

val size : t -> int
(** Number of nodes. *)

val edges : t -> Graph.edge list
(** The [n-1] tree edges, with ports as in the underlying graph. *)

val check : Graph.t -> t -> (unit, string) result
(** Verify: spans all nodes, is acyclic, parent/children agree, every tree
    edge exists in the graph with those ports. *)

val depth : t -> int array
(** Hop distance from the root along tree edges. *)

val contribution : Graph.t -> Graph.edge list -> int
(** [Σ #₂(w(e))] over the given edges — the quantity Claim 3.1 bounds by
    [4n] for the {!light} tree. *)

val children_ports : t -> int -> int list
(** Ports at a node leading to its children (the Theorem 2.1 advice). *)
