open Oracle_core
module Graph = Netgraph.Graph
module Families = Netgraph.Families

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_flood_build_all_families () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:149 in
      let o = Tree_construction.flood_build g ~source:0 in
      check_bool (Families.name fam ^ " built a tree") true (o.Tree_construction.tree <> None);
      check_int (Families.name fam ^ " zero advice") 0 o.Tree_construction.advice_bits;
      let bound = (2 * Graph.m g) + Graph.n g in
      check_bool (Families.name fam ^ " message bound") true
        (o.Tree_construction.result.Sim.Runner.stats.Sim.Runner.sent <= bound))
    Families.all

let test_flood_build_sync_is_bfs () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:36 ~seed:151 in
      let o =
        Tree_construction.flood_build ~scheduler:Sim.Scheduler.Synchronous g ~source:0
      in
      check_bool (Families.name fam ^ " BFS under sync") true o.Tree_construction.is_bfs)
    [ Families.Grid; Families.Hypercube; Families.Sparse_random; Families.Complete ]

let test_flood_build_async_still_spans () =
  let g = Families.build Families.Dense_random ~n:40 ~seed:157 in
  List.iter
    (fun sched ->
      let o = Tree_construction.flood_build ~scheduler:sched g ~source:0 in
      match o.Tree_construction.tree with
      | Some t ->
        check_bool (Sim.Scheduler.name sched ^ " valid spanning tree") true
          (Netgraph.Spanning.check g t = Ok ())
      | None -> Alcotest.fail (Sim.Scheduler.name sched ^ ": no tree"))
    Sim.Scheduler.default_suite

let test_advised_build_is_free () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:163 in
      let o = Tree_construction.advised_build g ~source:0 in
      check_bool (Families.name fam ^ " tree from advice") true (o.Tree_construction.tree <> None);
      check_int (Families.name fam ^ " zero messages") 0
        o.Tree_construction.result.Sim.Runner.stats.Sim.Runner.sent;
      check_bool (Families.name fam ^ " BFS (oracle used BFS)") true o.Tree_construction.is_bfs;
      check_bool (Families.name fam ^ " advice nonzero") true (o.Tree_construction.advice_bits > 0))
    Families.all

let test_nonzero_source () =
  let g = Families.build Families.Torus ~n:25 ~seed:167 in
  let o = Tree_construction.flood_build g ~source:12 in
  match o.Tree_construction.tree with
  | Some t -> check_int "rooted at source" 12 t.Netgraph.Spanning.root
  | None -> Alcotest.fail "no tree"

let qcheck_flood_build =
  QCheck.Test.make ~name:"flooding always builds a spanning tree" ~count:40
    QCheck.(triple (int_range 2 40) (int_range 0 999) (int_range 0 4))
    (fun (n, seed, sched_idx) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.25 st in
      let scheduler = List.nth Sim.Scheduler.default_suite sched_idx in
      let o = Tree_construction.flood_build ~scheduler g ~source:(seed mod n) in
      match o.Tree_construction.tree with
      | Some t -> Netgraph.Spanning.check g t = Ok ()
      | None -> false)

let suite =
  [
    Alcotest.test_case "flooding builds a tree everywhere" `Quick test_flood_build_all_families;
    Alcotest.test_case "synchronous flooding builds BFS" `Quick test_flood_build_sync_is_bfs;
    Alcotest.test_case "async flooding still spans" `Quick test_flood_build_async_still_spans;
    Alcotest.test_case "advised build costs zero messages" `Quick test_advised_build_is_free;
    Alcotest.test_case "non-zero source" `Quick test_nonzero_source;
    QCheck_alcotest.to_alcotest qcheck_flood_build;
  ]
