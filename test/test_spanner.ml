open Oracle_core
module Graph = Netgraph.Graph
module Families = Netgraph.Families

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_stretch_1_keeps_everything () =
  let g = Netgraph.Gen.complete 8 in
  check_int "all edges" (Graph.m g) (List.length (Spanner.greedy_spanner g ~stretch:1))

let test_spanner_on_tree_is_tree () =
  let g = Netgraph.Gen.balanced_tree ~arity:2 ~depth:4 in
  check_int "tree unchanged" (Graph.m g) (List.length (Spanner.greedy_spanner g ~stretch:3))

let test_valid_on_all_families () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:199 in
      List.iter
        (fun stretch ->
          let o = Spanner.measure g ~stretch in
          check_bool (Printf.sprintf "%s t=%d" (Families.name fam) stretch) true
            o.Spanner.valid)
        [ 1; 2; 3; 5 ])
    Families.all

let test_edges_decrease_with_stretch () =
  let g = Netgraph.Gen.complete 24 in
  let edges stretch = (Spanner.measure g ~stretch).Spanner.edges_kept in
  check_bool "monotone" true (edges 1 >= edges 3 && edges 3 >= edges 5);
  (* A 3-spanner of K_n is far sparser than K_n. *)
  check_bool "sparse" true (edges 3 < Graph.m g / 2);
  (* Any connected spanner keeps at least a spanning tree. *)
  check_bool "at least n-1" true (edges 5 >= Graph.n g - 1)

let test_spanner_size_bound () =
  (* Greedy (2k-1)-spanner has < n^(1+1/k) + n edges; check k = 2 (t = 3)
     loosely on dense graphs. *)
  let g = Families.build Families.Dense_random ~n:64 ~seed:211 in
  let o = Spanner.measure g ~stretch:3 in
  let bound = int_of_float (64.0 ** 1.5) + 64 in
  check_bool (Printf.sprintf "%d <= %d" o.Spanner.edges_kept bound) true
    (o.Spanner.edges_kept <= bound)

let test_oracle_decodes () =
  let g = Netgraph.Gen.grid ~rows:4 ~cols:4 in
  let advice = (Spanner.spanner_oracle ~stretch:3).Oracles.Oracle.advise g ~source:0 in
  let spanner = Spanner.greedy_spanner g ~stretch:3 in
  let expected = Array.make 16 [] in
  List.iter
    (fun e ->
      expected.(e.Graph.u) <- e.Graph.pu :: expected.(e.Graph.u);
      expected.(e.Graph.v) <- e.Graph.pv :: expected.(e.Graph.v))
    spanner;
  for v = 0 to 15 do
    Alcotest.(check (list int))
      (Printf.sprintf "node %d" v)
      (List.sort compare expected.(v))
      (Bitstring.Codes.read_marked_list (Bitstring.Bitbuf.reader (Oracles.Advice.get advice v)))
  done

let test_invalid_stretch () =
  match Spanner.greedy_spanner (Netgraph.Gen.path 3) ~stretch:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stretch 0 rejected"

let qcheck_spanner_valid =
  QCheck.Test.make ~name:"greedy spanner meets its stretch on random graphs" ~count:30
    QCheck.(triple (int_range 2 32) (int_range 0 999) (int_range 1 5))
    (fun (n, seed, stretch) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.3 st in
      (Spanner.measure g ~stretch).Spanner.valid)

let suite =
  [
    Alcotest.test_case "stretch 1 keeps all edges" `Quick test_stretch_1_keeps_everything;
    Alcotest.test_case "tree is its own spanner" `Quick test_spanner_on_tree_is_tree;
    Alcotest.test_case "valid on all families" `Quick test_valid_on_all_families;
    Alcotest.test_case "edges decrease with stretch" `Quick test_edges_decrease_with_stretch;
    Alcotest.test_case "size bound for t=3" `Quick test_spanner_size_bound;
    Alcotest.test_case "oracle decodes to the spanner" `Quick test_oracle_decodes;
    Alcotest.test_case "invalid stretch" `Quick test_invalid_stretch;
    QCheck_alcotest.to_alcotest qcheck_spanner_valid;
  ]
