(* The telemetry layer: event codecs, sinks, the counting contract
   against the live runner, the registry, and offline replay. *)

open Oracle_core
module Graph = Netgraph.Graph
module Families = Netgraph.Families
module Event = Obs.Event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let link =
  {
    Event.src = 3;
    src_port = 1;
    dst = 7;
    dst_port = 0;
    cls = Event.Source;
    bits = 12;
    informed = true;
    depth = 4;
  }

let sample_events =
  [
    { Event.seq = 0; round = 0; kind = Event.Advice_read (0, 33) };
    { Event.seq = 0; round = 0; kind = Event.Wake 0 };
    { Event.seq = 1; round = 0; kind = Event.Send link };
    { Event.seq = 1; round = 1; kind = Event.Deliver link };
    { Event.seq = 1; round = 1; kind = Event.Wake 7 };
    {
      Event.seq = 2;
      round = 1;
      kind = Event.Send { link with Event.cls = Event.Hello; informed = false };
    };
    { Event.seq = 3; round = 2; kind = Event.Send { link with Event.cls = Event.Control; bits = 1 } };
    { Event.seq = 3; round = 2; kind = Event.Decide (7, "leader") };
  ]

(* {1 JSONL codec} *)

let test_jsonl_roundtrip () =
  List.iter
    (fun ev ->
      let line = Obs.Jsonl.encode ev in
      let back = Obs.Jsonl.decode_exn line in
      check_bool (Event.kind_name ev.Event.kind ^ " roundtrips") true (Event.equal ev back))
    sample_events

let test_jsonl_tolerates_key_order_and_spaces () =
  let line =
    "{ \"ev\" : \"send\", \"round\": 2, \"seq\": 9, \"dst\": 1, \"src\": 0, \"src_port\": 2,\n\
    \  \"dst_port\": 3, \"cls\": \"hello\", \"bits\": 5, \"informed\": false, \"depth\": 0 }"
  in
  let ev = Obs.Jsonl.decode_exn line in
  check_int "seq" 9 ev.Event.seq;
  check_int "round" 2 ev.Event.round;
  (match ev.Event.kind with
  | Event.Send l ->
    check_int "src" 0 l.Event.src;
    check_int "dst" 1 l.Event.dst;
    check_int "bits" 5 l.Event.bits;
    check_bool "informed" false l.Event.informed
  | _ -> Alcotest.fail "expected a send event")

let test_jsonl_rejects_malformed () =
  List.iter
    (fun line ->
      match Obs.Jsonl.decode line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed line %S" line)
    [
      "";
      "not json";
      "{\"seq\":1}";
      "{\"seq\":1,\"round\":0,\"ev\":\"warp\"}";
      "{\"seq\":1,\"round\":0,\"ev\":\"send\",\"src\":0}";
    ]

let test_jsonl_file_roundtrip () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Jsonl.file_sink path in
      List.iter (Obs.Sink.emit sink) sample_events;
      Obs.Sink.close sink;
      let back = Obs.Jsonl.read_file path in
      check_int "count" (List.length sample_events) (List.length back);
      List.iter2
        (fun a b -> check_bool "event" true (Event.equal a b))
        sample_events back)

(* {1 The counting contract against live runs} *)

let stats_match name (stats : Sim.Runner.stats) (s : Obs.Counting.summary) =
  check_int (name ^ " sent") stats.Sim.Runner.sent s.Obs.Counting.sent;
  check_int (name ^ " source_sent") stats.Sim.Runner.source_sent s.Obs.Counting.source_sent;
  check_int (name ^ " hello_sent") stats.Sim.Runner.hello_sent s.Obs.Counting.hello_sent;
  check_int (name ^ " control_sent") stats.Sim.Runner.control_sent s.Obs.Counting.control_sent;
  check_int (name ^ " bits_on_wire") stats.Sim.Runner.bits_on_wire s.Obs.Counting.bits_on_wire;
  check_int (name ^ " rounds") stats.Sim.Runner.rounds s.Obs.Counting.rounds;
  check_int (name ^ " causal_depth") stats.Sim.Runner.causal_depth s.Obs.Counting.causal_depth

let test_counting_matches_wakeup_tree_family () =
  (* the Theorem 2.1 family: wakeup on random trees, every scheduler *)
  List.iter
    (fun sched ->
      let g = Families.build Families.Random_tree ~n:48 ~seed:7 in
      let counts = Obs.Counting.create () in
      let o = Wakeup.run ~scheduler:sched ~sinks:[ Obs.Counting.sink counts ] g ~source:0 in
      let s = Obs.Counting.summary counts in
      stats_match (Sim.Scheduler.name sched) o.Wakeup.result.Sim.Runner.stats s;
      check_int "n-1 messages" (Graph.n g - 1) s.Obs.Counting.sent;
      check_int "advice bits" o.Wakeup.advice_bits s.Obs.Counting.advice_bits;
      check_int "all woken" (Graph.n g) s.Obs.Counting.wakes)
    Sim.Scheduler.default_suite

let test_counting_matches_wakeup_hard_graph () =
  (* the Theorem 2.2 family: the subdivided-edge graph G_{n,S} *)
  let g, _ = Lower_bound.wakeup_hard_graph ~n:24 ~seed:11 in
  let counts = Obs.Counting.create () in
  let o = Wakeup.run ~sinks:[ Obs.Counting.sink counts ] g ~source:0 in
  let s = Obs.Counting.summary counts in
  stats_match "G_{n,S}" o.Wakeup.result.Sim.Runner.stats s;
  check_bool "all informed" true o.Wakeup.result.Sim.Runner.all_informed;
  check_int "n-1 messages" (Graph.n g - 1) s.Obs.Counting.sent

let test_counting_matches_broadcast_with_hellos () =
  (* Scheme B mixes source, hello and control traffic; the per-class
     split must agree with the legacy stats *)
  let g = Families.build Families.Dense_random ~n:40 ~seed:13 in
  let counts = Obs.Counting.create () in
  let o = Broadcast.run ~sinks:[ Obs.Counting.sink counts ] g ~source:0 in
  let s = Obs.Counting.summary counts in
  stats_match "scheme B" o.Broadcast.result.Sim.Runner.stats s;
  check_bool "hellos present" true (s.Obs.Counting.hello_sent > 0);
  check_int "classes partition sent"
    s.Obs.Counting.sent
    (s.Obs.Counting.source_sent + s.Obs.Counting.hello_sent + s.Obs.Counting.control_sent)

let test_of_events_equals_live_fold () =
  let g = Families.build Families.Grid ~n:36 ~seed:3 in
  let collect, collected = Obs.Sink.collect () in
  let counts = Obs.Counting.create () in
  let _ = Wakeup.run ~sinks:[ collect; Obs.Counting.sink counts ] g ~source:0 in
  let from_stream = Obs.Counting.of_events (collected ()) in
  check_bool "of_events = live fold" true (from_stream = Obs.Counting.summary counts)

(* {1 Ring buffer} *)

let test_ring_bounds_memory () =
  let ring = Obs.Ring.create ~capacity:8 in
  let g = Families.build Families.Sparse_random ~n:32 ~seed:5 in
  let _ = Wakeup.run ~sinks:[ Obs.Ring.sink ring ] g ~source:0 in
  check_int "length capped" 8 (Obs.Ring.length ring);
  check_bool "saw more than capacity" true (Obs.Ring.seen ring > 8);
  check_int "dropped" (Obs.Ring.seen ring - 8) (Obs.Ring.dropped ring);
  (* retained events are the newest, oldest first *)
  let seqs = List.map (fun e -> e.Event.seq) (Obs.Ring.contents ring) in
  check_bool "non-decreasing seqs" true (List.sort compare seqs = seqs);
  Obs.Ring.clear ring;
  check_int "cleared" 0 (Obs.Ring.length ring);
  check_int "seen reset" 0 (Obs.Ring.seen ring)

let test_ring_under_capacity () =
  let ring = Obs.Ring.create ~capacity:1000 in
  List.iter (Obs.Ring.push ring) sample_events;
  check_int "kept all" (List.length sample_events) (Obs.Ring.length ring);
  check_int "dropped none" 0 (Obs.Ring.dropped ring);
  List.iter2
    (fun a b -> check_bool "order preserved" true (Event.equal a b))
    sample_events (Obs.Ring.contents ring);
  Alcotest.check_raises "capacity 0 rejected" (Invalid_argument "Obs.Ring.create: capacity must be positive")
    (fun () -> ignore (Obs.Ring.create ~capacity:0))

(* {1 CSV shape} *)

let test_csv_rows_have_thirteen_columns () =
  let path = Filename.temp_file "obs_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Csv.file_sink path in
      List.iter (Obs.Sink.emit sink) sample_events;
      Obs.Sink.close sink;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "header + one row per event" (1 + List.length sample_events) (List.length lines);
      check_string "header" Obs.Csv.header (List.hd lines);
      List.iter
        (fun line ->
          let cols = List.length (String.split_on_char ',' line) in
          check_int ("columns in " ^ line) Obs.Csv.columns cols)
        lines)

(* {1 Registry} *)

let test_registry_private () =
  let r = Obs.Registry.create () in
  let g = Families.build Families.Cycle ~n:16 ~seed:2 in
  let _ = Wakeup.run ~registry:r g ~source:0 in
  let _ = Broadcast.run ~registry:r g ~source:0 in
  let _ = Election.with_marked_leader ~registry:r g in
  let _ = Gossip.run ~registry:r g ~source:0 in
  check_int "four records" 4 (Obs.Registry.length r);
  let protocols = List.map (fun rec_ -> rec_.Obs.Registry.protocol) (Obs.Registry.records r) in
  Alcotest.(check (list string))
    "protocol names"
    [ "wakeup"; "broadcast"; "election-marked"; "gossip-tree" ]
    protocols;
  List.iter
    (fun rec_ ->
      check_bool (rec_.Obs.Registry.protocol ^ " completed") true rec_.Obs.Registry.completed;
      check_int (rec_.Obs.Registry.protocol ^ " n") 16 rec_.Obs.Registry.n)
    (Obs.Registry.records r);
  (match Obs.Registry.by_protocol r "wakeup" with
  | [ w ] ->
    check_int "wakeup messages" 15 w.Obs.Registry.messages;
    check_bool "wakeup advice accounted" true (w.Obs.Registry.advice_bits > 0)
  | l -> Alcotest.failf "expected one wakeup record, got %d" (List.length l));
  (match Obs.Registry.by_protocol r "election-marked" with
  | [ e ] -> check_int "election advice is one bit" 1 e.Obs.Registry.advice_bits
  | _ -> Alcotest.fail "expected one election record");
  Obs.Registry.clear r;
  check_int "cleared" 0 (Obs.Registry.length r)

let test_registry_default_autonotes () =
  Obs.Registry.clear Obs.Registry.default;
  let g = Families.build Families.Random_tree ~n:12 ~seed:9 in
  let _ = Wakeup.run g ~source:0 in
  check_int "default registry noted" 1 (Obs.Registry.length Obs.Registry.default);
  Obs.Registry.clear Obs.Registry.default

(* {1 Offline replay} *)

let test_replay_matches_live_run () =
  let g = Families.build Families.Sparse_random ~n:40 ~seed:17 in
  let collect, collected = Obs.Sink.collect () in
  let o = Broadcast.run ~sinks:[ collect ] g ~source:0 in
  let r = Obs.Replay.replay ~n:(Graph.n g) (collected ()) in
  let live = o.Broadcast.result in
  check_bool "informed sets agree" true (r.Obs.Replay.informed = live.Sim.Runner.informed);
  check_bool "all_informed" live.Sim.Runner.all_informed r.Obs.Replay.all_informed;
  check_int "quiescent: nothing in flight" 0 r.Obs.Replay.in_flight;
  stats_match "replayed" live.Sim.Runner.stats r.Obs.Replay.summary

let test_replay_through_jsonl_artifact () =
  (* the full audit path: run -> JSONL file -> read back -> replay *)
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let g = Families.build Families.Random_tree ~n:32 ~seed:21 in
      let sink = Obs.Jsonl.file_sink path in
      let o = Wakeup.run ~sinks:[ sink ] g ~source:0 in
      Obs.Sink.close sink;
      let r = Obs.Replay.replay ~n:(Graph.n g) (Obs.Jsonl.read_file path) in
      check_bool "all informed offline" true r.Obs.Replay.all_informed;
      check_int "n-1 messages offline" (Graph.n g - 1) r.Obs.Replay.summary.Obs.Counting.sent;
      check_int "advice bits offline" o.Wakeup.advice_bits
        r.Obs.Replay.summary.Obs.Counting.advice_bits;
      check_int "nothing in flight" 0 r.Obs.Replay.in_flight)

let test_replay_decisions () =
  let g = Families.build Families.Cycle ~n:8 ~seed:1 in
  let collect, collected = Obs.Sink.collect () in
  let o = Election.with_marked_leader ~sinks:[ collect ] g in
  let r = Obs.Replay.replay ~n:8 (collected ()) in
  check_int "one decision per node" 8 (List.length r.Obs.Replay.decisions);
  let leaders = List.filter (fun (_, role) -> role = "leader") r.Obs.Replay.decisions in
  (match (leaders, o.Election.leader) with
  | [ (v, _) ], Some l -> check_int "leader agrees with live run" l v
  | _ -> Alcotest.fail "expected exactly one leader decision")

let test_replay_rejects_out_of_range () =
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Obs.Replay.replay: node 7 outside 0..3") (fun () ->
      ignore (Obs.Replay.replay ~n:4 [ { Event.seq = 0; round = 0; kind = Event.Wake 7 } ]))

(* {1 Sink combinators} *)

let test_tee_and_filter () =
  let counts = Obs.Counting.create () in
  let collect, collected = Obs.Sink.collect () in
  let sends_only = Obs.Sink.filter (fun e -> match e.Event.kind with Event.Send _ -> true | _ -> false) collect in
  let tee = Obs.Sink.tee [ Obs.Counting.sink counts; sends_only ] in
  List.iter (Obs.Sink.emit tee) sample_events;
  Obs.Sink.close tee;
  let s = Obs.Counting.summary counts in
  check_int "tee fed the counter" (List.length sample_events)
    (s.Obs.Counting.sent + s.Obs.Counting.delivered + s.Obs.Counting.wakes
    + s.Obs.Counting.decides + 1 (* one advice event *));
  check_int "filter kept the sends" s.Obs.Counting.sent (List.length (collected ()));
  Obs.Sink.emit tee (List.hd sample_events);
  check_int "closed tee drops events" s.Obs.Counting.sent (List.length (collected ()))

(* {1 Fault telemetry}

   Kept out of [sample_events]: the counting checks above sum per-kind
   counters over that list and must not silently absorb fault events. *)

let fault_events =
  List.mapi
    (fun i f -> { Event.seq = i; round = i; kind = Event.Fault f })
    [
      Event.Msg_dropped;
      Event.Msg_duplicated;
      Event.Msg_delayed 3;
      Event.Msg_reordered 4;
      Event.Crashed 2;
      Event.Dead 5;
      Event.Advice_tampered (1, "trunc:1");
    ]

let test_fault_jsonl_roundtrip () =
  List.iter
    (fun ev ->
      let line = Obs.Jsonl.encode ev in
      let back = Obs.Jsonl.decode_exn line in
      check_bool (line ^ " roundtrips") true (Event.equal ev back))
    fault_events;
  let s = Obs.Counting.of_events fault_events in
  check_int "all counted as faults" (List.length fault_events) s.Obs.Counting.faults;
  check_int "one drop" 1 s.Obs.Counting.dropped;
  check_int "one duplicate" 1 s.Obs.Counting.duplicated

let test_fault_stream_determinism () =
  (* Identical plan + seed + scheduler must yield a bit-identical event
     stream, fault injections included. *)
  let g = Families.build Families.Sparse_random ~n:24 ~seed:19 in
  let plan = Fault.Plan.of_string_exn "drop=0.1,dup=0.1,delay=0.3:3,advice-flip=4,seed=29" in
  let stream scheduler =
    let o = Fault.Harness.run ~scheduler ~plan Fault.Harness.Broadcast g ~source:0 in
    o.Fault.Harness.events
  in
  List.iter
    (fun sched ->
      let a = stream sched and b = stream sched in
      check_int (Sim.Scheduler.name sched ^ " same length") (List.length a) (List.length b);
      List.iter2
        (fun x y ->
          check_bool (Sim.Scheduler.name sched ^ " bit-identical") true (Event.equal x y))
        a b)
    Sim.Scheduler.default_suite

let test_replay_matches_live_under_faults () =
  (* The audit path survives the adversary: replaying a faulty run's
     stream reproduces its counters and shows a drained network. *)
  let g = Families.build Families.Random_tree ~n:32 ~seed:23 in
  let plan = Fault.Plan.of_string_exn "drop=0.1,dup=0.15,advice-trunc=1,seed=31" in
  let o = Fault.Harness.run ~plan Fault.Harness.Broadcast g ~source:0 in
  let r = Obs.Replay.replay ~n:(Graph.n g) o.Fault.Harness.events in
  let live = o.Fault.Harness.result in
  check_int "sent agrees" live.Sim.Runner.stats.Sim.Runner.sent r.Obs.Replay.summary.Obs.Counting.sent;
  (* the stream also carries the pre-run tampering the runner never saw *)
  check_int "faults agree"
    (live.Sim.Runner.stats.Sim.Runner.faults + List.length o.Fault.Harness.tampered)
    r.Obs.Replay.summary.Obs.Counting.faults;
  check_bool "informed sets agree" true (r.Obs.Replay.informed = live.Sim.Runner.informed);
  check_int "faulty network still drains" 0 r.Obs.Replay.in_flight;
  check_bool "tampering visible offline" true (r.Obs.Replay.summary.Obs.Counting.faults > 0)

let suite =
  [
    Alcotest.test_case "jsonl roundtrip, every kind" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl tolerant decode" `Quick test_jsonl_tolerates_key_order_and_spaces;
    Alcotest.test_case "jsonl rejects malformed" `Quick test_jsonl_rejects_malformed;
    Alcotest.test_case "jsonl file roundtrip" `Quick test_jsonl_file_roundtrip;
    Alcotest.test_case "counting = stats on Thm 2.1 trees" `Quick
      test_counting_matches_wakeup_tree_family;
    Alcotest.test_case "counting = stats on G_{n,S}" `Quick test_counting_matches_wakeup_hard_graph;
    Alcotest.test_case "counting = stats on Scheme B" `Quick
      test_counting_matches_broadcast_with_hellos;
    Alcotest.test_case "of_events = live fold" `Quick test_of_events_equals_live_fold;
    Alcotest.test_case "ring bounds memory" `Quick test_ring_bounds_memory;
    Alcotest.test_case "ring under capacity" `Quick test_ring_under_capacity;
    Alcotest.test_case "csv has 13 columns" `Quick test_csv_rows_have_thirteen_columns;
    Alcotest.test_case "private registry" `Quick test_registry_private;
    Alcotest.test_case "default registry auto-notes" `Quick test_registry_default_autonotes;
    Alcotest.test_case "replay = live run" `Quick test_replay_matches_live_run;
    Alcotest.test_case "replay through jsonl artifact" `Quick test_replay_through_jsonl_artifact;
    Alcotest.test_case "replay decisions" `Quick test_replay_decisions;
    Alcotest.test_case "replay rejects bad node" `Quick test_replay_rejects_out_of_range;
    Alcotest.test_case "tee and filter" `Quick test_tee_and_filter;
    Alcotest.test_case "fault events roundtrip jsonl" `Quick test_fault_jsonl_roundtrip;
    Alcotest.test_case "fault streams are deterministic" `Quick test_fault_stream_determinism;
    Alcotest.test_case "replay = live under faults" `Quick test_replay_matches_live_under_faults;
  ]
