open Netgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let triangle () =
  (* 0 -[0|0]- 1, 1 -[1|1]- 2, 2 -[0|1]- 0 *)
  Graph.make ~n:3
    [
      { Graph.u = 0; pu = 0; v = 1; pv = 0 };
      { Graph.u = 1; pu = 1; v = 2; pv = 1 };
      { Graph.u = 2; pu = 0; v = 0; pv = 1 };
    ]

let test_basic_accessors () =
  let g = triangle () in
  check_int "n" 3 (Graph.n g);
  check_int "m" 3 (Graph.m g);
  check_int "deg 0" 2 (Graph.degree g 0);
  check_int "label default" 1 (Graph.label g 0)

let test_labels_default_and_custom () =
  let g = triangle () in
  Alcotest.(check (array int)) "default 1..n" [| 1; 2; 3 |] (Graph.labels g);
  check_int "node_of_label" 2 (Graph.node_of_label g 3);
  let g2 =
    Graph.make ~labels:[| 10; 20; 30 |] ~n:3
      [
        { Graph.u = 0; pu = 0; v = 1; pv = 0 };
        { Graph.u = 1; pu = 1; v = 2; pv = 1 };
        { Graph.u = 2; pu = 0; v = 0; pv = 1 };
      ]
  in
  check_int "custom label" 20 (Graph.label g2 1);
  Alcotest.check_raises "unknown label" Not_found (fun () ->
      ignore (Graph.node_of_label g2 99))

let test_endpoint_and_ports () =
  let g = triangle () in
  Alcotest.(check (pair int int)) "0 port 0 -> 1" (1, 0) (Graph.endpoint g 0 0);
  Alcotest.(check (pair int int)) "0 port 1 -> 2" (2, 0) (Graph.endpoint g 0 1);
  Alcotest.(check (pair int int)) "2 port 1 -> 1" (1, 1) (Graph.endpoint g 2 1);
  Alcotest.(check (option int)) "port_to 1->2" (Some 1) (Graph.port_to g 1 2);
  Alcotest.(check (option int)) "port_to none" None (Graph.port_to g 0 0);
  check_bool "has_edge" true (Graph.has_edge g 0 2)

let test_endpoint_bad_port () =
  let g = triangle () in
  Alcotest.check_raises "bad port" (Invalid_argument "Graph.endpoint: port 5 out of range at node 0")
    (fun () -> ignore (Graph.endpoint g 0 5))

let test_neighbors_in_port_order () =
  let g = triangle () in
  Alcotest.(check (list (triple int int int)))
    "node 0" [ (0, 1, 0); (1, 2, 0) ] (Graph.neighbors g 0)

let test_edges_listed_once () =
  let g = triangle () in
  let es = Graph.edges g in
  check_int "3 edges" 3 (List.length es);
  List.iter (fun e -> check_bool "u<v" true (e.Graph.u < e.Graph.v)) es

let test_edge_weight_is_min_port () =
  let g = triangle () in
  let e = List.find (fun e -> e.Graph.u = 1 && e.Graph.v = 2) (Graph.edges g) in
  check_int "w({1,2}) = min(1,1)" 1 (Graph.edge_weight g e);
  let e02 = List.find (fun e -> e.Graph.u = 0 && e.Graph.v = 2) (Graph.edges g) in
  check_int "w({0,2}) = min(1,0)" 0 (Graph.edge_weight g e02)

let test_connectivity () =
  check_bool "triangle connected" true (Graph.is_connected (triangle ()));
  let disconnected =
    Graph.make ~n:4
      [ { Graph.u = 0; pu = 0; v = 1; pv = 0 }; { Graph.u = 2; pu = 0; v = 3; pv = 0 } ]
  in
  check_bool "two components" false (Graph.is_connected disconnected)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_make_rejects_malformed () =
  expect_invalid "self-loop" (fun () ->
      Graph.make ~n:2 [ { Graph.u = 0; pu = 0; v = 0; pv = 1 } ]);
  expect_invalid "duplicate port" (fun () ->
      Graph.make ~n:3
        [
          { Graph.u = 0; pu = 0; v = 1; pv = 0 };
          { Graph.u = 0; pu = 0; v = 2; pv = 0 };
        ]);
  expect_invalid "port out of range" (fun () ->
      Graph.make ~n:2 [ { Graph.u = 0; pu = 1; v = 1; pv = 0 } ]);
  expect_invalid "parallel edges" (fun () ->
      Graph.make ~n:2
        [
          { Graph.u = 0; pu = 0; v = 1; pv = 0 };
          { Graph.u = 0; pu = 1; v = 1; pv = 1 };
        ]);
  expect_invalid "node out of range" (fun () ->
      Graph.make ~n:2 [ { Graph.u = 0; pu = 0; v = 5; pv = 0 } ]);
  expect_invalid "duplicate labels" (fun () ->
      Graph.make ~labels:[| 1; 1 |] ~n:2 [ { Graph.u = 0; pu = 0; v = 1; pv = 0 } ]);
  expect_invalid "label count mismatch" (fun () ->
      Graph.make ~labels:[| 1 |] ~n:2 [ { Graph.u = 0; pu = 0; v = 1; pv = 0 } ])

let test_of_adjacency () =
  let g = Graph.of_adjacency [| [ 1; 2 ]; [ 0 ]; [ 0 ] |] in
  check_int "n" 3 (Graph.n g);
  check_int "m" 2 (Graph.m g);
  Alcotest.(check (pair int int)) "ports by list order" (1, 0) (Graph.endpoint g 0 0);
  Alcotest.(check (pair int int)) "second port" (2, 0) (Graph.endpoint g 0 1)

let test_of_adjacency_asymmetric () =
  expect_invalid "asymmetric" (fun () -> Graph.of_adjacency [| [ 1 ]; [] |])

let test_validate_ok () =
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Graph.validate (triangle ()))

let test_equal () =
  check_bool "same" true (Graph.equal (triangle ()) (triangle ()));
  let other =
    Graph.make ~n:3
      [
        { Graph.u = 0; pu = 1; v = 1; pv = 0 };
        { Graph.u = 1; pu = 1; v = 2; pv = 1 };
        { Graph.u = 2; pu = 0; v = 0; pv = 0 };
      ]
  in
  check_bool "different ports" false (Graph.equal (triangle ()) other)

let test_edge_list_string_stable () =
  Alcotest.(check string)
    "golden" "n=3 m=3\n0[0]--1[0]\n0[1]--2[0]\n1[1]--2[1]\n"
    (Graph.to_edge_list_string (triangle ()))

let test_fold_edges () =
  let total = Graph.fold_edges (fun e acc -> acc + e.Graph.pu + e.Graph.pv) (triangle ()) 0 in
  check_int "port sum" 3 total

let suite =
  [
    Alcotest.test_case "basic accessors" `Quick test_basic_accessors;
    Alcotest.test_case "labels" `Quick test_labels_default_and_custom;
    Alcotest.test_case "endpoint/port_to/has_edge" `Quick test_endpoint_and_ports;
    Alcotest.test_case "endpoint bad port" `Quick test_endpoint_bad_port;
    Alcotest.test_case "neighbors in port order" `Quick test_neighbors_in_port_order;
    Alcotest.test_case "edges listed once" `Quick test_edges_listed_once;
    Alcotest.test_case "edge weight = min port" `Quick test_edge_weight_is_min_port;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "make rejects malformed input" `Quick test_make_rejects_malformed;
    Alcotest.test_case "of_adjacency" `Quick test_of_adjacency;
    Alcotest.test_case "of_adjacency asymmetric" `Quick test_of_adjacency_asymmetric;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "edge list dump is stable" `Quick test_edge_list_string_stable;
    Alcotest.test_case "fold_edges" `Quick test_fold_edges;
  ]
