open Oracle_core

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let test_upper_bound_budgets () =
  Alcotest.(check int) "8n" 80 (Bounds.broadcast_advice_upper ~n:10);
  Alcotest.(check int) "4n" 40 (Bounds.light_tree_contribution_upper ~n:10);
  Alcotest.(check int) "n-1" 9 (Bounds.wakeup_messages ~n:10);
  Alcotest.(check int) "3n" 30 (Bounds.broadcast_messages_upper ~n:10);
  Alcotest.(check int) "degenerate" 0 (Bounds.wakeup_advice_upper ~n:1)

let test_wakeup_advice_upper_shape () =
  (* The budget is (n-1)(⌈log n⌉ + overhead): slightly superlinear. *)
  let b n = Bounds.wakeup_advice_upper ~n in
  check_bool "monotone" true (b 64 < b 128 && b 128 < b 256);
  check_bool "superlinear" true (float_of_int (b 1024) /. 1024.0 > float_of_int (b 64) /. 64.0);
  check_bool "within 2 n log n for large n" true
    (float_of_int (b 4096) <= 2.0 *. 4096.0 *. Float.log2 4096.0)

let test_oracle_outputs_closed_form_vs_exact () =
  (* Equation 3 dominates the exact sum and stays within log2(bits+1)+1. *)
  List.iter
    (fun (bits, nodes) ->
      let exact = Bounds.log2_oracle_outputs_exact ~bits ~nodes in
      let closed = Bounds.log2_oracle_outputs ~bits ~nodes in
      check_bool
        (Printf.sprintf "bits=%d nodes=%d dominates" bits nodes)
        true (closed >= exact -. 1e-9);
      let slack =
        Float.log2 (float_of_int (bits + 1))
        +. Float.log2 (float_of_int (bits + nodes) /. float_of_int nodes)
        +. 1.0
      in
      check_bool (Printf.sprintf "bits=%d nodes=%d tight" bits nodes) true
        (closed -. exact <= slack))
    [ (0, 4); (10, 8); (100, 16); (500, 64); (2000, 128) ]

let test_wakeup_instances_value () =
  (* P = n!·C(C(n,2), n); for n = 4: 4!·C(6,4) = 24·15 = 360. *)
  check_float "n=4" (Float.log2 360.0) (Bounds.log2_wakeup_instances ~n:4)

let test_edge_discovery_bound () =
  check_float "formula" (10.0 -. Float.log2 6.0)
    (Bounds.edge_discovery_lower_bound ~log2_instances:10.0 ~x_size:3)

let test_wakeup_lower_bound_monotone_in_bits () =
  let b bits = Bounds.wakeup_message_lower_bound ~n:256 ~advice_bits:bits in
  check_bool "decreasing" true (b 0 > b 100 && b 100 > b 1000 && b 1000 > b 5000)

let test_wakeup_lower_bound_zero_advice_is_large () =
  (* With no advice the bound is essentially log2 C(C(n,2), n) ≈ n log n. *)
  let n = 256 in
  let b = Bounds.wakeup_message_lower_bound ~n ~advice_bits:0 in
  check_bool "superlinear" true (b > float_of_int (4 * 2 * n))

let test_claim_2_1 () =
  (* The paper: for a > A, b > B, C(a(1+b), a) ≤ (6b)^a.  Verify across a
     grid (B turns out to be tiny). *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_bool (Printf.sprintf "a=%d b=%d" a b) true (Bounds.claim_2_1_holds ~a ~b))
        [ 3; 4; 8; 16; 50 ])
    [ 10; 20; 50; 100; 500 ]

let test_log2_binomial_a_ab () =
  check_float "C(6,2)" (Float.log2 15.0) (Bounds.log2_binomial_a_ab ~a:2 ~b:2)

let test_broadcast_instances () =
  (* n=8, k=... need 4k | n; use n=8? x = n/4k must be ≥ 1.  n=16, k=4:
     x = 1, y = 3, pairs = C(16,2) = 120: P = 1!·C(117,1) = 117. *)
  check_float "n=16 k=4" (Float.log2 117.0) (Bounds.log2_broadcast_instances ~n:16 ~k:4)

let test_broadcast_message_lower_bound () =
  check_float "n(k-1)/8" 37.5 (Bounds.broadcast_message_lower_bound ~n:100 ~k:4)

let test_helpers_reexported () =
  Alcotest.(check int) "ceil_log2" 7 (Bounds.ceil_log2 100);
  Alcotest.(check int) "bits2" 7 (Bounds.bits2 100)

let suite =
  [
    Alcotest.test_case "budget constants" `Quick test_upper_bound_budgets;
    Alcotest.test_case "wakeup advice budget shape" `Quick test_wakeup_advice_upper_shape;
    Alcotest.test_case "Equation 3 vs exact count" `Quick test_oracle_outputs_closed_form_vs_exact;
    Alcotest.test_case "P for n=4" `Quick test_wakeup_instances_value;
    Alcotest.test_case "Lemma 2.1 formula" `Quick test_edge_discovery_bound;
    Alcotest.test_case "bound decreases with advice" `Quick test_wakeup_lower_bound_monotone_in_bits;
    Alcotest.test_case "zero advice forces superlinear" `Quick
      test_wakeup_lower_bound_zero_advice_is_large;
    Alcotest.test_case "Claim 2.1 numerically" `Quick test_claim_2_1;
    Alcotest.test_case "binomial helper" `Quick test_log2_binomial_a_ab;
    Alcotest.test_case "Theorem 3.2 instance count" `Quick test_broadcast_instances;
    Alcotest.test_case "n(k-1)/8" `Quick test_broadcast_message_lower_bound;
    Alcotest.test_case "helper re-exports" `Quick test_helpers_reexported;
  ]

let test_remark_counting_validation () =
  (* cn may not exceed the number of host edges. *)
  match Oracle_core.Bounds.log2_wakeup_instances_c ~n:4 ~c:2 with
  | exception Invalid_argument _ -> ()
  | v ->
    (* C(4,2) = 6 >= 8? no: 2*4 = 8 > 6, must have raised. *)
    Alcotest.failf "expected rejection, got %f" v

let test_remark_c1_matches_base () =
  Alcotest.(check (float 1e-9))
    "c=1 is the original P"
    (Oracle_core.Bounds.log2_wakeup_instances ~n:32)
    (Oracle_core.Bounds.log2_wakeup_instances_c ~n:32 ~c:1)

let suite =
  suite
  @ [
      Alcotest.test_case "Remark counting validation" `Quick test_remark_counting_validation;
      Alcotest.test_case "Remark c=1 base case" `Quick test_remark_c1_matches_base;
    ]
