module Graph = Netgraph.Graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_advice _ = Bitstring.Bitbuf.create ()

let sample_graphs =
  [
    ("path", Netgraph.Gen.path 16);
    ("grid", Netgraph.Gen.grid ~rows:4 ~cols:5);
    ("star", Netgraph.Gen.star 12);
    ("complete", Netgraph.Gen.complete 10);
    ("random", Netgraph.Gen.random_connected ~n:24 ~p:0.2 (Random.State.make [| 31 |]));
  ]

let test_round_robin_completes () =
  List.iter
    (fun (name, g) ->
      let r = Radio.Model.run ~advice:no_advice g ~source:0 Radio.Protocols.round_robin in
      check_bool (name ^ " informed") true r.Radio.Model.all_informed;
      let bound = Graph.n g * (Netgraph.Traverse.diameter g + 1) in
      check_bool
        (Printf.sprintf "%s: %d <= nD bound %d" name r.Radio.Model.rounds bound)
        true
        (r.Radio.Model.rounds <= bound))
    sample_graphs

let test_round_robin_collision_free () =
  (* One label per round: collisions are impossible. *)
  List.iter
    (fun (name, g) ->
      let r = Radio.Model.run ~advice:no_advice g ~source:0 Radio.Protocols.round_robin in
      check_int (name ^ " collisions") 0 r.Radio.Model.collisions)
    sample_graphs

let test_decay_completes () =
  List.iter
    (fun (name, g) ->
      let r = Radio.Model.run ~advice:no_advice g ~source:0 (Radio.Protocols.decay ~seed:5) in
      check_bool (name ^ " informed") true r.Radio.Model.all_informed)
    sample_graphs

let test_decay_deterministic_in_seed () =
  let g = Netgraph.Gen.grid ~rows:5 ~cols:5 in
  let run seed =
    (Radio.Model.run ~advice:no_advice g ~source:0 (Radio.Protocols.decay ~seed)).Radio.Model.rounds
  in
  check_int "same seed" (run 7) (run 7);
  check_bool "seeds differ (usually)" true (run 1 <> run 2 || run 1 <> run 3)

let test_scheduled_completes_fast () =
  List.iter
    (fun (name, g) ->
      let advice = Radio.Protocols.schedule_oracle g ~source:0 in
      let r =
        Radio.Model.run ~advice:(Oracles.Advice.get advice) g ~source:0 Radio.Protocols.scheduled
      in
      check_bool (name ^ " informed") true r.Radio.Model.all_informed;
      check_int (name ^ " collisions") 0 r.Radio.Model.collisions;
      check_int
        (name ^ " rounds = schedule length")
        (Radio.Protocols.schedule_length g ~source:0)
        r.Radio.Model.rounds;
      check_bool (name ^ " within n-1") true (r.Radio.Model.rounds <= Graph.n g - 1))
    sample_graphs

let test_schedule_beats_round_robin_when_wide () =
  let g = Netgraph.Gen.grid ~rows:6 ~cols:6 in
  let rr = Radio.Model.run ~advice:no_advice g ~source:0 Radio.Protocols.round_robin in
  let advice = Radio.Protocols.schedule_oracle g ~source:0 in
  let sc =
    Radio.Model.run ~advice:(Oracles.Advice.get advice) g ~source:0 Radio.Protocols.scheduled
  in
  check_bool "knowledge buys time" true (sc.Radio.Model.rounds <= rr.Radio.Model.rounds)

let test_diameter_floor () =
  (* No protocol can beat D rounds. *)
  let g = Netgraph.Gen.path 12 in
  let d = Netgraph.Traverse.diameter g in
  let advice = Radio.Protocols.schedule_oracle g ~source:0 in
  let sc =
    Radio.Model.run ~advice:(Oracles.Advice.get advice) g ~source:0 Radio.Protocols.scheduled
  in
  check_bool "at least D" true (sc.Radio.Model.rounds >= d)

let test_collisions_happen () =
  (* An everyone-always-transmits protocol deadlocks the star: both
     informed nodes hit the others simultaneously once two are informed.
     On K_{1,n} from a leaf: leaf informs hub (round 1), then hub+leaf
     both transmit — every other leaf sees exactly... the hub and the
     informed leaf are not adjacent to the same leaves except hub; use a
     triangle plus pendant to force a collision instead. *)
  let chatty =
    {
      Radio.Model.protocol_name = "always";
      make_node = (fun ~n_hint:_ ~advice:_ ~id:_ ~round:_ ~informed -> informed);
    }
  in
  (* Square 0-1-2-3-0, source 0: round 1: node 0 informs 1 and 3; round 2:
     nodes 1 and 3 both transmit; node 2 hears both -> collision, forever. *)
  let g = Netgraph.Gen.cycle 4 in
  let r = Radio.Model.run ~max_rounds:50 ~advice:no_advice g ~source:0 chatty in
  check_bool "stuck" false r.Radio.Model.all_informed;
  check_bool "collisions observed" true (r.Radio.Model.collisions > 0)

let test_uninformed_cannot_transmit () =
  (* A protocol that claims to transmit always: the runner must ignore
     uninformed nodes, so only the source transmits in round 1. *)
  let chatty =
    {
      Radio.Model.protocol_name = "always";
      make_node = (fun ~n_hint:_ ~advice:_ ~id:_ ~round:_ ~informed:_ -> true);
    }
  in
  let g = Netgraph.Gen.path 3 in
  let r = Radio.Model.run ~max_rounds:1 ~advice:no_advice g ~source:0 chatty in
  check_int "one transmission" 1 r.Radio.Model.transmissions

let test_schedule_advice_size_reasonable () =
  let g = Netgraph.Gen.random_connected ~n:64 ~p:0.1 (Random.State.make [| 37 |]) in
  let advice = Radio.Protocols.schedule_oracle g ~source:0 in
  check_bool "nonzero" true (Oracles.Advice.size_bits advice > 0);
  (* Every node gets at least the gamma-coded zero count: size O(n log n). *)
  check_bool "not absurd" true
    (Oracles.Advice.size_bits advice
    <= 4 * Graph.n g * Bitstring.Binary.ceil_log2 (Graph.n g))

let qcheck_protocols =
  QCheck.Test.make ~name:"all radio protocols inform everyone" ~count:30
    QCheck.(pair (int_range 2 32) (int_range 0 999))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.2 st in
      let source = seed mod n in
      let rr = Radio.Model.run ~advice:no_advice g ~source Radio.Protocols.round_robin in
      let dc = Radio.Model.run ~advice:no_advice g ~source (Radio.Protocols.decay ~seed) in
      let advice = Radio.Protocols.schedule_oracle g ~source in
      let sc =
        Radio.Model.run ~advice:(Oracles.Advice.get advice) g ~source Radio.Protocols.scheduled
      in
      rr.Radio.Model.all_informed && dc.Radio.Model.all_informed
      && sc.Radio.Model.all_informed
      && sc.Radio.Model.collisions = 0)

let suite =
  [
    Alcotest.test_case "round-robin completes within nD" `Quick test_round_robin_completes;
    Alcotest.test_case "round-robin is collision-free" `Quick test_round_robin_collision_free;
    Alcotest.test_case "decay completes" `Quick test_decay_completes;
    Alcotest.test_case "decay deterministic in seed" `Quick test_decay_deterministic_in_seed;
    Alcotest.test_case "scheduled completes fast" `Quick test_scheduled_completes_fast;
    Alcotest.test_case "knowledge buys time" `Quick test_schedule_beats_round_robin_when_wide;
    Alcotest.test_case "diameter floor" `Quick test_diameter_floor;
    Alcotest.test_case "collisions happen" `Quick test_collisions_happen;
    Alcotest.test_case "uninformed cannot transmit" `Quick test_uninformed_cannot_transmit;
    Alcotest.test_case "schedule advice size" `Quick test_schedule_advice_size_reasonable;
    QCheck_alcotest.to_alcotest qcheck_protocols;
  ]

let test_scheduled_nonzero_source () =
  let g = Netgraph.Gen.grid ~rows:5 ~cols:5 in
  let advice = Radio.Protocols.schedule_oracle g ~source:12 in
  let r =
    Radio.Model.run ~advice:(Oracles.Advice.get advice) g ~source:12 Radio.Protocols.scheduled
  in
  check_bool "informed from the center" true r.Radio.Model.all_informed;
  check_int "no collisions" 0 r.Radio.Model.collisions

let test_single_node_radio () =
  let g = Netgraph.Gen.path 1 in
  let r =
    Radio.Model.run ~advice:(fun _ -> Bitstring.Bitbuf.create ()) g ~source:0
      Radio.Protocols.round_robin
  in
  check_bool "trivially informed" true r.Radio.Model.all_informed;
  check_int "zero rounds" 0 r.Radio.Model.rounds

let suite =
  suite
  @ [
      Alcotest.test_case "schedule from non-zero source" `Quick test_scheduled_nonzero_source;
      Alcotest.test_case "single node" `Quick test_single_node_radio;
    ]
