open Netgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let assert_valid name g =
  match Graph.validate g with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid: %s" name msg

(* {1 Subdivision (Theorem 2.2's G_{n,S})} *)

let test_subdivide_counts () =
  let host = Gen.complete 6 in
  let st = Random.State.make [| 1 |] in
  let chosen = Transform.choose_edges host ~count:4 st in
  let g = Transform.subdivide host ~chosen in
  assert_valid "subdivided" g;
  check_int "nodes" 10 (Graph.n g);
  check_int "edges" (Graph.m host + 4) (Graph.m g);
  check_bool "connected" true (Graph.is_connected g)

let test_subdivide_middle_nodes () =
  let host = Gen.complete 5 in
  let chosen = [ List.hd (Graph.edges host) ] in
  let g = Transform.subdivide host ~chosen in
  let w = Graph.n host in
  check_int "degree 2" 2 (Graph.degree g w);
  check_int "fresh label" 6 (Graph.label g w);
  (* Port 0 at the middle node goes to the smaller-labeled endpoint. *)
  let e = List.hd chosen in
  let smaller = if Graph.label host e.Graph.u < Graph.label host e.Graph.v then e.Graph.u else e.Graph.v in
  let to0, _ = Graph.endpoint g w 0 in
  check_int "port 0 to smaller label" smaller to0

let test_subdivide_preserves_host_ports () =
  let host = Gen.complete 5 in
  let e = List.hd (Graph.edges host) in
  let g = Transform.subdivide host ~chosen:[ e ] in
  let w = Graph.n host in
  (* The endpoints still use their original port numbers, now towards w. *)
  let via_u, _ = Graph.endpoint g e.Graph.u e.Graph.pu in
  let via_v, _ = Graph.endpoint g e.Graph.v e.Graph.pv in
  check_int "u port now to middle" w via_u;
  check_int "v port now to middle" w via_v;
  (* Degrees of host nodes unchanged. *)
  for v = 0 to Graph.n host - 1 do
    check_int (Printf.sprintf "degree %d" v) (Graph.degree host v) (Graph.degree g v)
  done

let test_subdivide_rejects_bad_edges () =
  let host = Gen.path 4 in
  let fake = { Graph.u = 0; pu = 0; v = 3; pv = 0 } in
  (match Transform.subdivide host ~chosen:[ fake ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection: non-edge");
  let e = List.hd (Graph.edges host) in
  match Transform.subdivide host ~chosen:[ e; e ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection: duplicate"

(* {1 Clique substitution (Theorem 3.2's G_{n,S,C})} *)

let make_gnsc n k seed =
  let st = Random.State.make [| seed |] in
  let host = Gen.complete n in
  let count = n / k in
  let chosen = Transform.choose_edges host ~count st in
  let missing = Transform.clique_pairs ~k ~count st in
  (host, chosen, missing, Transform.substitute_cliques host ~k ~chosen ~missing)

let test_substitute_counts () =
  let n, k = (12, 4) in
  let host, chosen, _, g = make_gnsc n k 3 in
  assert_valid "G_{n,S,C}" g;
  check_int "2n nodes" (2 * n) (Graph.n g);
  check_bool "connected" true (Graph.is_connected g);
  let expected_m =
    Graph.m host - List.length chosen
    + (List.length chosen * ((k * (k - 1) / 2) - 1))
    + (2 * List.length chosen)
  in
  check_int "edges" expected_m (Graph.m g)

let test_substitute_clique_degrees () =
  (* Every clique node has degree exactly k-1 (paper's observation). *)
  let n, k = (12, 4) in
  let _, _, _, g = make_gnsc n k 4 in
  for v = n to (2 * n) - 1 do
    check_int (Printf.sprintf "clique node %d" v) (k - 1) (Graph.degree g v)
  done

let test_substitute_labels () =
  let n, k = (8, 4) in
  let _, _, _, g = make_gnsc n k 5 in
  for v = 0 to (2 * n) - 1 do
    check_int (Printf.sprintf "label %d" v) (v + 1) (Graph.label g v)
  done

let test_substitute_host_ports_preserved () =
  let n, k = (8, 4) in
  let host, chosen, _, g = make_gnsc n k 6 in
  (* Host degrees unchanged; the port that carried the replaced edge now
     leads into the attached clique. *)
  for v = 0 to n - 1 do
    check_int (Printf.sprintf "degree %d" v) (Graph.degree host v) (Graph.degree g v)
  done;
  List.iter
    (fun e ->
      let via_u, _ = Graph.endpoint g e.Graph.u e.Graph.pu in
      let via_v, _ = Graph.endpoint g e.Graph.v e.Graph.pv in
      check_bool "u leads into clique" true (via_u >= n);
      check_bool "v leads into clique" true (via_v >= n))
    chosen

let test_substitute_missing_edge_absent () =
  let n, k = (8, 4) in
  let _, chosen, missing, g = make_gnsc n k 7 in
  List.iteri
    (fun i (a, b) ->
      let na = n + (i * k) + (a - 1) and nb = n + (i * k) + (b - 1) in
      check_bool
        (Printf.sprintf "clique %d misses (%d,%d)" i a b)
        false (Graph.has_edge g na nb))
    missing;
  ignore chosen

let test_substitute_rejects_bad_input () =
  let host = Gen.complete 8 in
  let st = Random.State.make [| 1 |] in
  let chosen = Transform.choose_edges host ~count:2 st in
  (match Transform.substitute_cliques host ~k:2 ~chosen ~missing:[ (1, 2); (1, 2) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k < 3 must be rejected");
  (match Transform.substitute_cliques host ~k:4 ~chosen ~missing:[ (1, 2) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch must be rejected");
  match Transform.substitute_cliques host ~k:4 ~chosen ~missing:[ (2, 2); (1, 3) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a = b must be rejected"

(* {1 Helpers} *)

let test_clique_pairs () =
  let st = Random.State.make [| 2 |] in
  let pairs = Transform.clique_pairs ~k:5 ~count:100 st in
  check_int "count" 100 (List.length pairs);
  List.iter
    (fun (a, b) -> check_bool "valid pair" true (1 <= a && a < b && b <= 5))
    pairs

let test_choose_edges () =
  let g = Gen.complete 7 in
  let st = Random.State.make [| 3 |] in
  let chosen = Transform.choose_edges g ~count:10 st in
  check_int "count" 10 (List.length chosen);
  let keys = List.map (fun e -> (e.Graph.u, e.Graph.v)) chosen in
  check_int "distinct" 10 (List.length (List.sort_uniq compare keys));
  match Transform.choose_edges g ~count:1000 st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too many edges must be rejected"

let test_permute_labels () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let st = Random.State.make [| 4 |] in
  let g2 = Transform.permute_labels g st in
  assert_valid "permuted" g2;
  check_int "same n" (Graph.n g) (Graph.n g2);
  check_int "same m" (Graph.m g) (Graph.m g2);
  Alcotest.(check (list int))
    "labels are a permutation"
    (List.sort compare (Array.to_list (Graph.labels g)))
    (List.sort compare (Array.to_list (Graph.labels g2)));
  (* adjacency structure untouched *)
  check_bool "same structure" true
    (Graph.to_edge_list_string g = Graph.to_edge_list_string g2)

let qcheck_subdivide =
  QCheck.Test.make ~name:"subdivision always yields a valid connected graph" ~count:40
    QCheck.(pair (int_range 4 20) (int_range 0 999))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let host = Gen.complete n in
      let count = min n (Graph.m host) in
      let chosen = Transform.choose_edges host ~count st in
      let g = Transform.subdivide host ~chosen in
      Graph.validate g = Ok () && Graph.is_connected g && Graph.n g = n + count)

let suite =
  [
    Alcotest.test_case "subdivide: counts" `Quick test_subdivide_counts;
    Alcotest.test_case "subdivide: middle nodes" `Quick test_subdivide_middle_nodes;
    Alcotest.test_case "subdivide: host ports preserved" `Quick
      test_subdivide_preserves_host_ports;
    Alcotest.test_case "subdivide: rejects bad edges" `Quick test_subdivide_rejects_bad_edges;
    Alcotest.test_case "cliques: counts" `Quick test_substitute_counts;
    Alcotest.test_case "cliques: degree k-1" `Quick test_substitute_clique_degrees;
    Alcotest.test_case "cliques: labels" `Quick test_substitute_labels;
    Alcotest.test_case "cliques: host ports preserved" `Quick
      test_substitute_host_ports_preserved;
    Alcotest.test_case "cliques: missing edge absent" `Quick test_substitute_missing_edge_absent;
    Alcotest.test_case "cliques: rejects bad input" `Quick test_substitute_rejects_bad_input;
    Alcotest.test_case "clique_pairs" `Quick test_clique_pairs;
    Alcotest.test_case "choose_edges" `Quick test_choose_edges;
    Alcotest.test_case "permute_labels" `Quick test_permute_labels;
    QCheck_alcotest.to_alcotest qcheck_subdivide;
  ]

let test_permute_ports () =
  let g = Gen.complete 8 in
  let st = Random.State.make [| 43 |] in
  let g2 = Transform.permute_ports g st in
  assert_valid "permuted ports" g2;
  check_int "same n" (Graph.n g) (Graph.n g2);
  check_int "same m" (Graph.m g) (Graph.m g2);
  (* Same adjacency relation, generally different ports. *)
  List.iter
    (fun e -> check_bool "edge kept" true (Graph.has_edge g2 e.Graph.u e.Graph.v))
    (Graph.edges g);
  check_bool "ports actually changed" false (Graph.equal g g2);
  (* Degrees unchanged. *)
  for v = 0 to Graph.n g - 1 do
    check_int (Printf.sprintf "degree %d" v) (Graph.degree g v) (Graph.degree g2 v)
  done

let qcheck_permute_ports =
  QCheck.Test.make ~name:"port permutation preserves structure" ~count:40
    QCheck.(pair (int_range 2 30) (int_range 0 999))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = Gen.random_connected ~n ~p:0.3 st in
      let g2 = Transform.permute_ports g st in
      Graph.validate g2 = Ok ()
      && Graph.is_connected g2
      && List.for_all
           (fun e -> Graph.has_edge g2 e.Graph.u e.Graph.v)
           (Graph.edges g))

let suite =
  suite
  @ [
      Alcotest.test_case "permute_ports" `Quick test_permute_ports;
      QCheck_alcotest.to_alcotest qcheck_permute_ports;
    ]
