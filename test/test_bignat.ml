module B = Numeric.Bignat

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let i v = B.of_int v

let test_of_to_int () =
  List.iter
    (fun v -> Alcotest.(check (option int)) (string_of_int v) (Some v) (B.to_int_opt (i v)))
    [ 0; 1; 67108863; 67108864; 123456789012345; max_int ];
  check_bool "zero" true (B.is_zero B.zero);
  check_bool "one not zero" false (B.is_zero B.one);
  match B.of_int (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rejected"

let test_compare () =
  check_int "eq" 0 (B.compare (i 42) (i 42));
  check_bool "lt" true (B.compare (i 41) (i 42) < 0);
  check_bool "gt across limbs" true (B.compare (i (1 lsl 40)) (i 5) > 0);
  check_bool "equal" true (B.equal (i 9) (i 9))

let test_add_sub () =
  let a = i 123456789 and b = i 987654321 in
  check_bool "add" true (B.equal (B.add a b) (i 1111111110));
  check_bool "sub" true (B.equal (B.sub b a) (i 864197532));
  check_bool "sub to zero" true (B.is_zero (B.sub a a));
  (* carries across limb boundaries *)
  let big = B.pow2 100 in
  check_bool "x + 0" true (B.equal (B.add big B.zero) big);
  check_bool "(x+1)-1 = x" true (B.equal (B.sub (B.add big B.one) B.one) big);
  match B.sub a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative result rejected"

let test_mul () =
  check_bool "small" true (B.equal (B.mul (i 12345) (i 6789)) (i (12345 * 6789)));
  check_bool "by zero" true (B.is_zero (B.mul (i 5) B.zero));
  (* (2^100)^2 = 2^200 *)
  check_bool "powers" true (B.equal (B.mul (B.pow2 100) (B.pow2 100)) (B.pow2 200));
  check_bool "mul_int" true (B.equal (B.mul_int (i 1000000007) 97) (i 97000000679))

let test_divmod () =
  let q, r = B.divmod_int (i 1000000007) 97 in
  check_bool "q" true (B.equal q (i (1000000007 / 97)));
  check_int "r" (1000000007 mod 97) r;
  check_bool "exact" true (B.equal (B.div_exact_int (B.mul_int (i 123456) 789) 789) (i 123456));
  (match B.div_exact_int (i 10) 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inexact division rejected");
  match B.divmod_int (i 10) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "division by zero rejected"

let test_factorial () =
  check_bool "0!" true (B.equal (B.factorial 0) B.one);
  check_bool "5!" true (B.equal (B.factorial 5) (i 120));
  check_bool "20!" true (B.equal (B.factorial 20) (i 2432902008176640000));
  check_string "30!" "265252859812191058636308480000000" (B.to_string (B.factorial 30))

let test_binomial () =
  check_bool "C(5,2)" true (B.equal (B.binomial 5 2) (i 10));
  check_bool "C(n,0)" true (B.equal (B.binomial 7 0) B.one);
  check_bool "C(n,n)" true (B.equal (B.binomial 7 7) B.one);
  check_bool "out of range" true (B.is_zero (B.binomial 5 6));
  check_bool "negative k" true (B.is_zero (B.binomial 5 (-1)));
  check_string "C(100,50)" "100891344545564193334812497256"
    (B.to_string (B.binomial 100 50));
  (* Pascal identity on a big case. *)
  check_bool "pascal" true
    (B.equal (B.binomial 64 20) (B.add (B.binomial 63 19) (B.binomial 63 20)))

let test_strings () =
  check_string "zero" "0" (B.to_string B.zero);
  check_string "roundtrip" "123456789012345678901234567890"
    (B.to_string (B.of_string "123456789012345678901234567890"));
  match B.of_string "12a3" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad digit rejected"

let test_log2 () =
  Alcotest.(check (float 1e-9)) "log2 1" 0.0 (B.log2 B.one);
  Alcotest.(check (float 1e-9)) "log2 2^100" 100.0 (B.log2 (B.pow2 100));
  Alcotest.(check (float 1e-6)) "log2 1000" (Float.log2 1000.0) (B.log2 (i 1000));
  check_bool "log2 0" true (B.log2 B.zero = neg_infinity);
  (* Against the float pipeline. *)
  Alcotest.(check (float 1e-6))
    "log2 50!" (Bitstring.Binary.log2_factorial 50) (B.log2 (B.factorial 50))

(* {1 Exact counts vs the Bounds float pipeline} *)

let test_exact_wakeup_instances () =
  (* n = 4: 4!·C(6,4) = 360 (pinned in test_bounds via floats too). *)
  check_bool "n=4" true (B.equal (Oracle_core.Exact_counts.wakeup_instances ~n:4) (i 360));
  List.iter
    (fun n ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "log2 P at n=%d" n)
        (Oracle_core.Exact_counts.log2_wakeup_instances ~n)
        (Oracle_core.Bounds.log2_wakeup_instances ~n))
    [ 4; 8; 16; 32; 64 ]

let test_exact_oracle_outputs () =
  (* bits=0: Q = C(nodes-1, nodes-1) = 1. *)
  check_bool "bits=0" true
    (B.equal (Oracle_core.Exact_counts.oracle_outputs ~bits:0 ~nodes:6) B.one);
  (* bits=1, nodes=2: q'=0 gives 1, q'=1 gives 2·C(2,1)=4 -> 5. *)
  check_bool "bits=1 nodes=2" true
    (B.equal (Oracle_core.Exact_counts.oracle_outputs ~bits:1 ~nodes:2) (i 5));
  List.iter
    (fun (bits, nodes) ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "log2 Q at bits=%d nodes=%d" bits nodes)
        (Oracle_core.Exact_counts.log2_oracle_outputs ~bits ~nodes)
        (Oracle_core.Bounds.log2_oracle_outputs_exact ~bits ~nodes))
    [ (5, 4); (20, 8); (64, 16); (100, 32) ]

let test_exact_edge_discovery_instances () =
  (* Matches the enumeration in Edge_discovery. *)
  List.iter
    (fun (n, x, y_count) ->
      let excluded =
        List.filteri (fun i _ -> i < y_count) (Oracle_core.Edge_discovery.all_edges ~n)
      in
      let enumerated =
        List.length (Oracle_core.Edge_discovery.enumerate_instances ~n ~x_size:x ~excluded)
      in
      check_bool
        (Printf.sprintf "n=%d x=%d y=%d" n x y_count)
        true
        (B.equal
           (Oracle_core.Exact_counts.edge_discovery_instances ~n ~x_size:x ~excluded:y_count)
           (i enumerated)))
    [ (4, 1, 0); (4, 2, 1); (5, 2, 2); (5, 3, 0) ]

let qcheck_add_mul_commute =
  QCheck.Test.make ~name:"bignat ring laws on random ints" ~count:200
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) ->
      B.equal (B.add (i a) (i b)) (B.add (i b) (i a))
      && B.equal (B.mul (i a) (i b)) (B.mul (i b) (i a))
      && B.to_int_opt (B.add (i a) (i b)) = Some (a + b))

let qcheck_divmod =
  QCheck.Test.make ~name:"divmod reconstructs" ~count:200
    QCheck.(pair (int_bound 1_000_000_000_000) (int_range 1 100000))
    (fun (a, d) ->
      let q, r = B.divmod_int (i a) d in
      r >= 0 && r < d && B.equal (B.add (B.mul_int q d) (i r)) (i a))

let suite =
  [
    Alcotest.test_case "of_int/to_int" `Quick test_of_to_int;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "add/sub" `Quick test_add_sub;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "divmod" `Quick test_divmod;
    Alcotest.test_case "factorial" `Quick test_factorial;
    Alcotest.test_case "binomial" `Quick test_binomial;
    Alcotest.test_case "decimal strings" `Quick test_strings;
    Alcotest.test_case "log2" `Quick test_log2;
    Alcotest.test_case "exact P vs float pipeline" `Quick test_exact_wakeup_instances;
    Alcotest.test_case "exact Q vs float pipeline" `Quick test_exact_oracle_outputs;
    Alcotest.test_case "exact instance counts vs enumeration" `Quick
      test_exact_edge_discovery_instances;
    QCheck_alcotest.to_alcotest qcheck_add_mul_commute;
    QCheck_alcotest.to_alcotest qcheck_divmod;
  ]

let test_pow () =
  check_bool "2^10" true (B.equal (B.pow (i 2) 10) (i 1024));
  check_bool "x^0" true (B.equal (B.pow (i 12345) 0) B.one);
  check_bool "0^5" true (B.is_zero (B.pow B.zero 5));
  check_bool "pow matches pow2" true (B.equal (B.pow (i 2) 77) (B.pow2 77));
  check_string "3^40" "12157665459056928801" (B.to_string (B.pow (i 3) 40))

let test_claim_2_1_exact () =
  (* Claim 2.1 verified with exact integers: C(a(1+b), a) <= (6b)^a. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let lhs = B.binomial (a * (1 + b)) a in
          let rhs = B.pow (i (6 * b)) a in
          check_bool (Printf.sprintf "a=%d b=%d" a b) true (B.compare lhs rhs <= 0))
        [ 3; 5; 10; 24 ])
    [ 10; 25; 60 ]

let suite =
  suite
  @ [
      Alcotest.test_case "pow" `Quick test_pow;
      Alcotest.test_case "Claim 2.1, exactly" `Quick test_claim_2_1_exact;
    ]
