open Netgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let assert_tree name g t =
  match Spanning.check g t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: bad tree: %s" name msg

let sample_graphs =
  [
    ("path", Gen.path 10);
    ("cycle", Gen.cycle 9);
    ("complete", Gen.complete 8);
    ("grid", Gen.grid ~rows:4 ~cols:5);
    ("hypercube", Gen.hypercube ~dim:4);
    ("lollipop", Gen.lollipop ~clique:5 ~tail:5);
    ("random", Gen.random_connected ~n:25 ~p:0.2 (Random.State.make [| 5 |]));
  ]

let test_bfs_trees () =
  List.iter (fun (name, g) -> assert_tree name g (Spanning.bfs g ~root:0)) sample_graphs

let test_dfs_trees () =
  List.iter (fun (name, g) -> assert_tree name g (Spanning.dfs g ~root:0)) sample_graphs

let test_random_trees () =
  let st = Random.State.make [| 9 |] in
  List.iter (fun (name, g) -> assert_tree name g (Spanning.random g ~root:0 st)) sample_graphs

let test_light_trees () =
  List.iter (fun (name, g) -> assert_tree name g (Spanning.light g ~root:0)) sample_graphs

let test_edges_count () =
  List.iter
    (fun (name, g) ->
      let t = Spanning.bfs g ~root:0 in
      check_int (name ^ " edge count") (Graph.n g - 1) (List.length (Spanning.edges t)))
    sample_graphs

let test_nontrivial_root () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let t = Spanning.light g ~root:4 in
  assert_tree "root 4" g t;
  check_int "root" 4 t.Spanning.root;
  Alcotest.(check bool) "root has no parent" true (t.Spanning.parent.(4) = None)

let test_depth () =
  let g = Gen.path 5 in
  let t = Spanning.bfs g ~root:0 in
  Alcotest.(check (array int)) "depths" [| 0; 1; 2; 3; 4 |] (Spanning.depth t)

let test_children_ports_sorted () =
  let g = Gen.complete 6 in
  let t = Spanning.bfs g ~root:0 in
  let ports = Spanning.children_ports t 0 in
  check_bool "sorted" true (List.sort compare ports = ports);
  check_int "root has all children" 5 (List.length ports)

let test_of_parents_rejects_cycle () =
  let g = Gen.cycle 4 in
  (* 0→1→2→3→0 is a cycle, not a tree. *)
  let parents = [| Some 3; Some 0; Some 1; Some 2 |] in
  (match Spanning.of_parents g ~root:0 parents with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection");
  (* root can't have a parent *)
  match Spanning.of_parents g ~root:1 [| None; Some 0; Some 1; Some 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection: non-rooted"

let test_of_parents_rejects_non_edge () =
  let g = Gen.path 4 in
  (* 0-2 is not an edge of the path. *)
  match Spanning.of_parents g ~root:0 [| None; Some 0; Some 0; Some 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_contribution_small () =
  (* Path ports: interior nodes have ports 0 (to the left) and 1 (to the
     right); each edge has weight min = 0 except none... check directly. *)
  let g = Gen.path 4 in
  let t = Spanning.bfs g ~root:0 in
  let contribution = Spanning.contribution g (Spanning.edges t) in
  (* Every edge weight is 0 (each edge is port 0 at its right endpoint or
     left endpoint): #2(0) = 1 per edge. *)
  check_int "three edges, weight-0" 3 contribution

let test_light_contribution_bound () =
  (* Claim 3.1: the light tree's contribution is at most 4n, on every
     family. *)
  List.iter
    (fun (name, g) ->
      let t = Spanning.light g ~root:0 in
      let c = Spanning.contribution g (Spanning.edges t) in
      check_bool
        (Printf.sprintf "%s: %d <= 4*%d" name c (Graph.n g))
        true
        (c <= 4 * Graph.n g))
    sample_graphs

let test_light_beats_naive_on_complete () =
  (* On K*_n a BFS tree's contribution grows like n log n while the light
     tree stays linear; at n = 64 the gap must already be visible. *)
  let g = Gen.complete 64 in
  let light = Spanning.contribution g (Spanning.edges (Spanning.light g ~root:0)) in
  let bfs = Spanning.contribution g (Spanning.edges (Spanning.bfs g ~root:0)) in
  check_bool "light within 4n" true (light <= 4 * 64);
  check_bool "light strictly better" true (light < bfs)

let qcheck_light_tree =
  QCheck.Test.make ~name:"light tree: valid and within 4n (random graphs)" ~count:50
    QCheck.(pair (int_range 2 50) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = Gen.random_connected ~n ~p:0.3 st in
      let t = Spanning.light g ~root:0 in
      Spanning.check g t = Ok ()
      && Spanning.contribution g (Spanning.edges t) <= 4 * n)

let qcheck_random_spanning =
  QCheck.Test.make ~name:"random spanning tree is valid" ~count:50
    QCheck.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = Gen.random_connected ~n ~p:0.25 st in
      Spanning.check g (Spanning.random g ~root:(n / 2) st) = Ok ())

let suite =
  [
    Alcotest.test_case "bfs trees valid" `Quick test_bfs_trees;
    Alcotest.test_case "dfs trees valid" `Quick test_dfs_trees;
    Alcotest.test_case "random trees valid" `Quick test_random_trees;
    Alcotest.test_case "light trees valid" `Quick test_light_trees;
    Alcotest.test_case "n-1 edges" `Quick test_edges_count;
    Alcotest.test_case "non-zero root" `Quick test_nontrivial_root;
    Alcotest.test_case "depth" `Quick test_depth;
    Alcotest.test_case "children ports sorted" `Quick test_children_ports_sorted;
    Alcotest.test_case "of_parents rejects cycles" `Quick test_of_parents_rejects_cycle;
    Alcotest.test_case "of_parents rejects non-edges" `Quick test_of_parents_rejects_non_edge;
    Alcotest.test_case "contribution on a path" `Quick test_contribution_small;
    Alcotest.test_case "Claim 3.1: light tree within 4n" `Quick test_light_contribution_bound;
    Alcotest.test_case "light beats BFS on K*_n" `Quick test_light_beats_naive_on_complete;
    QCheck_alcotest.to_alcotest qcheck_light_tree;
    QCheck_alcotest.to_alcotest qcheck_random_spanning;
  ]
