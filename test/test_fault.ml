(* The fault-injection subsystem: plans, advice corruption, runner-level
   injection, the adversarial scheduler wrapper, hardened schemes with
   graceful degradation, and the verdict classifier. *)

module Graph = Netgraph.Graph
module Families = Netgraph.Families
module Gen = Netgraph.Gen
module Bitbuf = Bitstring.Bitbuf
module Advice = Oracles.Advice
module Event = Obs.Event
module Plan = Fault.Plan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let no_advice _v = Bitbuf.create ()

(* {1 Fault plans} *)

let test_plan_none () =
  check_bool "none is none" true (Plan.is_none Plan.none);
  check_string "prints as none" "none" (Plan.to_string Plan.none);
  (match Plan.of_string "none" with
  | Ok p -> check_bool "parses back" true (Plan.is_none p)
  | Error e -> Alcotest.failf "none rejected: %s" e);
  (* the seed alone does not make a plan adversarial *)
  check_bool "seeded empty plan still none" true
    (Plan.is_none (Plan.of_string_exn "seed=9"));
  check_bool "none has no network faults" false (Plan.has_network_faults Plan.none)

let test_plan_builtins_roundtrip () =
  check_int "twelve builtin plans" 12 (List.length Plan.builtins);
  List.iter
    (fun (spec, plan) ->
      check_string (spec ^ " canonical") spec (Plan.to_string plan);
      match Plan.of_string (Plan.to_string plan) with
      | Ok back -> check_bool (spec ^ " roundtrips") true (back = plan)
      | Error e -> Alcotest.failf "%s does not parse back: %s" spec e)
    Plan.builtins;
  let names = List.map fst Plan.builtins in
  check_int "builtin names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_plan_parse_fields () =
  let p =
    Plan.of_string_exn
      "drop=0.25,dup=0.1,reorder=3,delay=0.5:4,crash=2@7,dead=5,advice-flip=2,advice-swap=1:3,seed=42"
  in
  Alcotest.(check (float 1e-9)) "drop" 0.25 p.Plan.drop;
  Alcotest.(check (float 1e-9)) "dup" 0.1 p.Plan.duplicate;
  check_int "reorder" 3 p.Plan.reorder_every;
  (match p.Plan.delay with
  | Some (prob, k) ->
    Alcotest.(check (float 1e-9)) "delay prob" 0.5 prob;
    check_int "delay max" 4 k
  | None -> Alcotest.fail "delay missing");
  check_bool "crash" true (p.Plan.crashes = [ (2, 7) ]);
  check_bool "dead" true (p.Plan.dead = [ 5 ]);
  check_bool "advice faults in order" true
    (p.Plan.advice = [ Plan.Flip 2; Plan.Swap (1, 3) ]);
  check_int "seed" 42 p.Plan.seed;
  check_bool "network faults present" true (Plan.has_network_faults p)

let test_plan_rejects_malformed () =
  List.iter
    (fun spec ->
      match Plan.of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" spec)
    [
      "drop=1.0" (* probabilities live in [0,1) *);
      "drop=-0.1";
      "dup=x";
      "frob=1";
      "what is this";
      "crash=3" (* missing @STEP *);
      "delay=0.5" (* missing :MAXSTEPS *);
      "delay=0.5:0" (* max delay must be >= 1 *);
      "advice-swap=1";
      "reorder=-2";
      "drop=0.1,drop=2.0" (* a bad token poisons the whole spec *);
    ];
  match Plan.of_string_exn "drop=2.0" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_string_exn must raise"

let test_plan_advice_only_is_not_network () =
  let p = Plan.of_string_exn "advice-trunc=1,seed=3" in
  check_bool "advice faults are not network faults" false (Plan.has_network_faults p);
  check_bool "but the plan is not none" false (Plan.is_none p);
  check_bool "dead alone is a network fault" true
    (Plan.has_network_faults (Plan.of_string_exn "dead=1"))

(* {1 Advice corruption} *)

let tree_advice () =
  let g = Families.build Families.Random_tree ~n:16 ~seed:7 in
  let oracle = Oracle_core.Wakeup.oracle () in
  (g, oracle.Oracles.Oracle.advise g ~source:0)

let diff_bits a b =
  let d = ref 0 in
  for v = 0 to Advice.n a - 1 do
    let x = Bitbuf.to_bits (Advice.get a v) and y = Bitbuf.to_bits (Advice.get b v) in
    if List.length x <> List.length y then d := !d + 1_000_000
    else List.iter2 (fun p q -> if p <> q then incr d) x y
  done;
  !d

let test_corrupt_empty_plan_is_identity () =
  let _, advice = tree_advice () in
  let corrupted, log = Fault.Corrupt.apply Plan.none advice in
  check_bool "same assignment" true (corrupted == advice);
  check_int "empty tamper log" 0 (List.length log)

let test_corrupt_pure_and_deterministic () =
  let _, advice = tree_advice () in
  let before = Advice.size_bits advice in
  let plan = Plan.of_string_exn "advice-flip=5,seed=17" in
  let a, la = Fault.Corrupt.apply plan advice in
  let b, lb = Fault.Corrupt.apply plan advice in
  check_int "original untouched" before (Advice.size_bits advice);
  check_bool "identical corruption" true (diff_bits a b = 0);
  check_bool "identical tamper logs" true (la = lb);
  let other, _ = Fault.Corrupt.apply (Plan.of_string_exn "advice-flip=5,seed=18") advice in
  check_bool "a different seed corrupts differently" true (diff_bits a other > 0)

let test_corrupt_flip () =
  let _, advice = tree_advice () in
  let corrupted, log = Fault.Corrupt.apply (Plan.of_string_exn "advice-flip=1,seed=5") advice in
  check_int "total size preserved" (Advice.size_bits advice) (Advice.size_bits corrupted);
  check_int "exactly one bit flipped" 1 (diff_bits advice corrupted);
  check_int "one tamper entry" 1 (List.length log);
  (* flipping on an all-empty assignment is a no-op *)
  let empty = Advice.empty ~n:4 in
  let c, l = Fault.Corrupt.apply (Plan.of_string_exn "advice-flip=3") empty in
  check_int "empty advice unflippable" 0 (Advice.size_bits c);
  check_int "no tampering recorded" 0 (List.length l)

let test_corrupt_truncate () =
  let _, advice = tree_advice () in
  let corrupted, log = Fault.Corrupt.apply (Plan.of_string_exn "advice-trunc=1") advice in
  let nonempty = ref 0 in
  for v = 0 to Advice.n advice - 1 do
    let len = Bitbuf.length (Advice.get advice v) in
    if len > 0 then incr nonempty;
    check_int
      (Printf.sprintf "node %d loses one bit" v)
      (max 0 (len - 1))
      (Bitbuf.length (Advice.get corrupted v))
  done;
  check_int "one tamper entry per nonempty node" !nonempty (List.length log);
  List.iter (fun (_, tag) -> check_string "tag" "trunc:1" tag) log

let test_corrupt_swap () =
  let _, advice = tree_advice () in
  let corrupted, log = Fault.Corrupt.apply (Plan.of_string_exn "advice-swap=1:2") advice in
  check_bool "node 1 now holds node 2's advice" true
    (Bitbuf.equal (Advice.get corrupted 1) (Advice.get advice 2));
  check_bool "node 2 now holds node 1's advice" true
    (Bitbuf.equal (Advice.get corrupted 2) (Advice.get advice 1));
  check_int "two tamper entries" 2 (List.length log);
  (* out-of-range and self swaps are ignored *)
  List.iter
    (fun spec ->
      let c, l = Fault.Corrupt.apply (Plan.of_string_exn spec) advice in
      check_int (spec ^ " is a no-op") 0 (diff_bits advice c);
      check_int (spec ^ " logs nothing") 0 (List.length l))
    [ "advice-swap=1:99"; "advice-swap=3:3" ]

let test_corrupt_garbage () =
  let _, advice = tree_advice () in
  let n = Advice.n advice in
  let corrupted, log = Fault.Corrupt.apply (Plan.of_string_exn "advice-garbage=9,seed=3") advice in
  for v = 0 to n - 1 do
    check_int (Printf.sprintf "node %d resized" v) 9 (Bitbuf.length (Advice.get corrupted v))
  done;
  check_int "every node tampered" n (List.length log)

let test_corrupt_events () =
  let evs = Fault.Corrupt.events [ (3, "trunc:1"); (5, "garbage:9") ] in
  check_int "one event per entry" 2 (List.length evs);
  List.iter2
    (fun ev (node, tag) ->
      check_int "pre-run seq" 0 ev.Event.seq;
      check_int "pre-run round" 0 ev.Event.round;
      match ev.Event.kind with
      | Event.Fault (Event.Advice_tampered (v, t)) ->
        check_int "node" node v;
        check_string "tag" tag t
      | _ -> Alcotest.fail "expected an advice-tampered fault")
    evs
    [ (3, "trunc:1"); (5, "garbage:9") ]

(* {1 Fault injection in the runner} *)

let test_runner_empty_plan_identical_stream () =
  let g = Families.build Families.Random_tree ~n:20 ~seed:3 in
  let c1, got1 = Obs.Sink.collect () in
  let _ = Sim.Runner.run ~sinks:[ c1 ] ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  let c2, got2 = Obs.Sink.collect () in
  let _ =
    Sim.Runner.run ~sinks:[ c2 ] ~faults:Plan.none ~advice:no_advice g ~source:0
      Sim.Scheme.flooding
  in
  let a = got1 () and b = got2 () in
  check_int "same length" (List.length a) (List.length b);
  List.iter2 (fun x y -> check_bool "same event" true (Event.equal x y)) a b

let test_runner_accounting_balance () =
  (* drop destroys sends, duplicate adds deliveries but no sends; the
     stream must still balance: delivered = sent + duplicated - dropped. *)
  let g = Gen.complete 12 in
  let collect, collected = Obs.Sink.collect () in
  let r =
    Sim.Runner.run ~sinks:[ collect ]
      ~faults:(Plan.of_string_exn "drop=0.2,dup=0.2,seed=41")
      ~advice:no_advice g ~source:0 Sim.Scheme.flooding
  in
  let s = Obs.Counting.of_events (collected ()) in
  check_bool "some drops" true (s.Obs.Counting.dropped > 0);
  check_bool "some duplicates" true (s.Obs.Counting.duplicated > 0);
  check_int "delivered = sent + dup - dropped"
    (s.Obs.Counting.sent + s.Obs.Counting.duplicated - s.Obs.Counting.dropped)
    s.Obs.Counting.delivered;
  check_int "stats mirror the stream" s.Obs.Counting.faults r.Sim.Runner.stats.Sim.Runner.faults;
  check_bool "quiescent" true r.Sim.Runner.quiescent

let test_runner_dead_node () =
  (* 0 - 1 - 2: node 1 starts dead, so flooding cannot cross it. *)
  let g = Gen.path 3 in
  let collect, collected = Obs.Sink.collect () in
  let r =
    Sim.Runner.run ~sinks:[ collect ] ~faults:(Plan.of_string_exn "dead=1") ~advice:no_advice g
      ~source:0 Sim.Scheme.flooding
  in
  check_bool "far end stranded" false r.Sim.Runner.informed.(2);
  check_bool "dead node not informed" false r.Sim.Runner.informed.(1);
  let deads =
    List.filter
      (fun e -> match e.Event.kind with Event.Fault (Event.Dead 1) -> true | _ -> false)
      (collected ())
  in
  check_int "one dead fault" 1 (List.length deads);
  (* the delivery into the dead node became a drop *)
  let s = Obs.Counting.of_events (collected ()) in
  check_bool "delivery to the dead node dropped" true (s.Obs.Counting.dropped > 0);
  (* a dead source would make the task vacuous: the plan entry is ignored *)
  let r2 =
    Sim.Runner.run ~faults:(Plan.of_string_exn "dead=0") ~advice:no_advice g ~source:0
      Sim.Scheme.flooding
  in
  check_bool "dead source ignored" true r2.Sim.Runner.all_informed

let test_runner_crash_stop () =
  let g = Gen.path 3 in
  let collect, collected = Obs.Sink.collect () in
  let r =
    Sim.Runner.run ~sinks:[ collect ] ~faults:(Plan.of_string_exn "crash=1@1") ~advice:no_advice
      g ~source:0 Sim.Scheme.flooding
  in
  check_bool "relay crashed before forwarding" false r.Sim.Runner.informed.(2);
  check_bool "run still drains" true r.Sim.Runner.quiescent;
  let crashes =
    List.filter
      (fun e -> match e.Event.kind with Event.Fault (Event.Crashed 1) -> true | _ -> false)
      (collected ())
  in
  check_int "crash recorded once" 1 (List.length crashes)

let test_runner_reorder_and_delay_complete () =
  let g = Gen.grid ~rows:4 ~cols:4 in
  List.iter
    (fun spec ->
      let collect, collected = Obs.Sink.collect () in
      let r =
        Sim.Runner.run ~sinks:[ collect ] ~faults:(Plan.of_string_exn spec) ~advice:no_advice g
          ~source:0 Sim.Scheme.flooding
      in
      check_bool (spec ^ " still informs everyone") true r.Sim.Runner.all_informed;
      check_bool (spec ^ " drains") true r.Sim.Runner.quiescent;
      check_bool (spec ^ " injected something") true
        ((Obs.Counting.of_events (collected ())).Obs.Counting.faults > 0))
    [ "reorder=3"; "delay=0.5:4,seed=19" ]

let test_runner_fault_determinism () =
  let g = Families.build Families.Sparse_random ~n:24 ~seed:9 in
  let plan = Plan.of_string_exn "drop=0.1,dup=0.1,delay=0.3:3,reorder=4,seed=77" in
  let run () =
    let collect, collected = Obs.Sink.collect () in
    let _ =
      Sim.Runner.run ~sinks:[ collect ] ~faults:plan ~advice:no_advice g ~source:0
        Sim.Scheme.flooding
    in
    collected ()
  in
  let a = run () and b = run () in
  check_int "same stream length" (List.length a) (List.length b);
  List.iter2 (fun x y -> check_bool "bit-identical streams" true (Event.equal x y)) a b

(* {1 The adversarial scheduler wrapper} *)

let test_adversary_names_and_suite () =
  let plain = Sim.Adversary.make Sim.Scheduler.Async_fifo in
  check_string "plain adversary keeps the scheduler name" "async-fifo" (Sim.Adversary.name plain);
  let adv =
    Sim.Adversary.make ~plan:(Plan.of_string_exn "drop=0.1,seed=7") Sim.Scheduler.Synchronous
  in
  check_string "composed name" "sync+drop=0.1,seed=7" (Sim.Adversary.name adv);
  let plans = [ Plan.none; Plan.of_string_exn "dead=1" ] in
  let suite = Sim.Adversary.suite plans in
  check_int "cross product, plans major" (2 * List.length Sim.Scheduler.default_suite)
    (List.length suite);
  let names = List.map Sim.Adversary.name suite in
  check_int "all distinct" (List.length names) (List.length (List.sort_uniq compare names))

let test_adversary_run_injects () =
  let g = Gen.complete 10 in
  let adv = Sim.Adversary.make ~plan:(Plan.of_string_exn "drop=0.3,seed=5") Sim.Scheduler.Async_lifo in
  let r = Sim.Adversary.run ~advice:no_advice adv g ~source:0 Sim.Scheme.flooding in
  check_bool "faults recorded" true (r.Sim.Runner.stats.Sim.Runner.faults > 0);
  let plain = Sim.Adversary.make Sim.Scheduler.Async_lifo in
  let r2 = Sim.Adversary.run ~advice:no_advice plain g ~source:0 Sim.Scheme.flooding in
  check_int "empty plan injects nothing" 0 r2.Sim.Runner.stats.Sim.Runner.faults

(* {1 Hardened schemes and the harness} *)

let tree24 () = Families.build Families.Random_tree ~n:24 ~seed:7
let hard12 () = fst (Oracle_core.Lower_bound.wakeup_hard_graph ~n:12 ~seed:11)

let test_harness_budgets () =
  let g = Gen.path 4 in
  (* n = 4, m = 3 *)
  let w = Fault.Harness.budgets Fault.Harness.Wakeup g in
  check_int "wakeup clean = n-1" 3 w.Fault.Verdict.clean;
  check_int "wakeup degraded = 2m+3n" 18 w.Fault.Verdict.degraded;
  let b = Fault.Harness.budgets Fault.Harness.Broadcast g in
  check_int "broadcast clean = 3n" 12 b.Fault.Verdict.clean;
  check_int "broadcast degraded = 4m+3n" 24 b.Fault.Verdict.degraded;
  check_string "wakeup name" "wakeup" (Fault.Harness.protocol_name Fault.Harness.Wakeup);
  check_string "broadcast name" "broadcast" (Fault.Harness.protocol_name Fault.Harness.Broadcast)

let test_hardened_wakeup_clean_advice () =
  (* With untampered advice the hardened scheme must behave exactly like
     the plain Theorem 2.1 scheme: n-1 messages, no fallbacks. *)
  let g = tree24 () in
  let o = Fault.Harness.run Fault.Harness.Wakeup g ~source:0 in
  check_bool "completed" true (o.Fault.Harness.verdict = Fault.Verdict.Completed);
  check_int "n-1 messages" (Graph.n g - 1) o.Fault.Harness.result.Sim.Runner.stats.Sim.Runner.sent;
  check_int "no fallbacks" 0 (List.length o.Fault.Harness.fallbacks);
  check_int "no tampering" 0 (List.length o.Fault.Harness.tampered);
  check_bool "all informed" true o.Fault.Harness.result.Sim.Runner.all_informed

let test_hardened_broadcast_clean_advice () =
  let g = tree24 () in
  let o = Fault.Harness.run Fault.Harness.Broadcast g ~source:0 in
  check_bool "completed" true (o.Fault.Harness.verdict = Fault.Verdict.Completed);
  check_bool "within the 3n Scheme B budget" true
    (o.Fault.Harness.result.Sim.Runner.stats.Sim.Runner.sent <= 3 * Graph.n g);
  check_bool "all informed" true o.Fault.Harness.result.Sim.Runner.all_informed

let test_truncated_advice_degrades_to_flooding () =
  (* The acceptance property: one truncated bit makes every nonempty
     advice undecodable, every advised node falls back to flooding, and
     the task still completes within the Θ(m) degraded budget. *)
  let plan = Plan.of_string_exn "advice-trunc=1" in
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun protocol ->
          let o = Fault.Harness.run ~plan protocol g ~source:0 in
          let label = Fault.Harness.protocol_name protocol ^ " on " ^ gname in
          (match o.Fault.Harness.verdict with
          | Fault.Verdict.Degraded _ -> ()
          | v -> Alcotest.failf "%s: expected degraded, got %s" label (Fault.Verdict.to_string v));
          check_bool (label ^ ": all informed despite corruption") true
            o.Fault.Harness.result.Sim.Runner.all_informed;
          check_bool (label ^ ": fell back somewhere") true
            (List.length o.Fault.Harness.fallbacks > 0);
          let budgets = Fault.Harness.budgets protocol g in
          check_bool (label ^ ": within the degraded budget") true
            (o.Fault.Harness.result.Sim.Runner.stats.Sim.Runner.sent
            <= budgets.Fault.Verdict.degraded))
        [ Fault.Harness.Wakeup; Fault.Harness.Broadcast ])
    [ ("tree", tree24 ()); ("G_{n,S}", hard12 ()) ]

let test_garbage_advice_still_acceptable () =
  let plan = Plan.of_string_exn "advice-garbage=16,seed=3" in
  List.iter
    (fun protocol ->
      let o = Fault.Harness.run ~plan protocol (tree24 ()) ~source:0 in
      check_bool
        (Fault.Harness.protocol_name protocol ^ " graceful under garbage")
        true
        (Fault.Verdict.acceptable o.Fault.Harness.verdict);
      check_bool "all informed" true o.Fault.Harness.result.Sim.Runner.all_informed)
    [ Fault.Harness.Wakeup; Fault.Harness.Broadcast ]

let test_hardened_wakeup_keeps_silence () =
  (* Even with undecodable advice, a hardened non-source node must stay
     silent until woken — degradation cannot buy back the wakeup
     restriction. *)
  let g = tree24 () in
  let oracle = Oracle_core.Wakeup.oracle () in
  let advice = oracle.Oracles.Oracle.advise g ~source:0 in
  let corrupted, _ = Fault.Corrupt.apply (Plan.of_string_exn "advice-trunc=1") advice in
  check_bool "silent network check holds" true
    (Sim.Runner.run_silent_network_check ~advice:(Advice.get corrupted) g ~source:0
       (Oracle_core.Wakeup.hardened_scheme ()))

let test_acceptance_grid_never_raises () =
  (* Every builtin plan x every scheduler x both graph families, for both
     protocols: the hardened schemes always terminate with a structured
     verdict and never break an invariant. *)
  let graphs = [ ("tree", tree24 ()); ("G_{n,S}", hard12 ()) ] in
  List.iter
    (fun (_, plan) ->
      List.iter
        (fun scheduler ->
          List.iter
            (fun (gname, g) ->
              List.iter
                (fun protocol ->
                  let label =
                    Printf.sprintf "%s %s %s %s"
                      (Fault.Harness.protocol_name protocol)
                      gname
                      (Sim.Scheduler.name scheduler)
                      (Plan.name plan)
                  in
                  match Fault.Harness.run ~scheduler ~plan protocol g ~source:0 with
                  | o -> (
                    match o.Fault.Harness.verdict with
                    | Fault.Verdict.Violated reason ->
                      Alcotest.failf "%s: violated (%s)" label reason
                    | Fault.Verdict.Completed | Fault.Verdict.Degraded _
                    | Fault.Verdict.Stalled _ ->
                      ())
                  | exception e ->
                    Alcotest.failf "%s: raised %s" label (Printexc.to_string e))
                [ Fault.Harness.Wakeup; Fault.Harness.Broadcast ])
            graphs)
        Sim.Scheduler.default_suite)
    Plan.builtins

(* {1 The verdict classifier, in isolation} *)

let send_link ~src ~dst ~informed =
  {
    Event.src;
    src_port = 0;
    dst;
    dst_port = 0;
    cls = Event.Source;
    bits = 1;
    informed;
    depth = 1;
  }

let clean_stream =
  [
    { Event.seq = 0; round = 0; kind = Event.Wake 0 };
    { Event.seq = 1; round = 0; kind = Event.Send (send_link ~src:0 ~dst:1 ~informed:true) };
    { Event.seq = 1; round = 1; kind = Event.Deliver (send_link ~src:0 ~dst:1 ~informed:true) };
    { Event.seq = 1; round = 1; kind = Event.Wake 1 };
  ]

let budgets ?(recovery = 0) ~clean ~degraded () = { Fault.Verdict.clean; degraded; recovery }

let test_verdict_completed_and_degraded () =
  (match Fault.Verdict.classify ~n:2 ~budgets:(budgets ~clean:1 ~degraded:4 ()) clean_stream with
  | Fault.Verdict.Completed -> ()
  | v -> Alcotest.failf "expected completed, got %s" (Fault.Verdict.to_string v));
  (* a fallback decision downgrades an otherwise clean run *)
  let with_fallback =
    { Event.seq = 0; round = 0; kind = Event.Decide (1, Fault.Verdict.fallback_tag) }
    :: clean_stream
  in
  (match Fault.Verdict.classify ~n:2 ~budgets:(budgets ~clean:1 ~degraded:4 ()) with_fallback with
  | Fault.Verdict.Degraded reason ->
    check_bool "reason names the fallback" true
      (String.length reason >= 15 && String.sub reason 0 15 = "advice-fallback")
  | v -> Alcotest.failf "expected degraded, got %s" (Fault.Verdict.to_string v));
  (* blowing the clean budget alone also degrades *)
  match Fault.Verdict.classify ~n:2 ~budgets:(budgets ~clean:0 ~degraded:4 ()) clean_stream with
  | Fault.Verdict.Degraded reason ->
    check_bool "reason names the budget" true
      (String.length reason >= 17 && String.sub reason 0 17 = "over-clean-budget")
  | v -> Alcotest.failf "expected degraded, got %s" (Fault.Verdict.to_string v)

let test_verdict_stalled_and_exclusion () =
  (* with n = 3 the same stream leaves node 2 uninformed *)
  (match Fault.Verdict.classify ~n:3 ~budgets:(budgets ~clean:5 ~degraded:9 ()) clean_stream with
  | Fault.Verdict.Stalled { informed; survivors; n } ->
    check_int "informed" 2 informed;
    check_int "survivors" 3 survivors;
    check_int "n" 3 n
  | v -> Alcotest.failf "expected stalled, got %s" (Fault.Verdict.to_string v));
  (* ... unless the adversary killed node 2: the scheme owes it nothing *)
  let with_dead =
    { Event.seq = 0; round = 0; kind = Event.Fault (Event.Dead 2) } :: clean_stream
  in
  match Fault.Verdict.classify ~n:3 ~budgets:(budgets ~clean:5 ~degraded:9 ()) with_dead with
  | Fault.Verdict.Degraded reason ->
    check_bool "reason names the failure" true
      (String.length reason >= 13 && String.sub reason 0 13 = "node-failures")
  | v -> Alcotest.failf "expected degraded, got %s" (Fault.Verdict.to_string v)

let test_verdict_violations () =
  (* degraded budget blown *)
  (match Fault.Verdict.classify ~n:2 ~budgets:(budgets ~clean:0 ~degraded:0 ()) clean_stream with
  | Fault.Verdict.Violated _ -> ()
  | v -> Alcotest.failf "expected violated, got %s" (Fault.Verdict.to_string v));
  (* a send by a non-woken node breaks wakeup silence — but only when the
     protocol claims that invariant *)
  let silent_break =
    [
      { Event.seq = 0; round = 0; kind = Event.Wake 0 };
      { Event.seq = 1; round = 0; kind = Event.Send (send_link ~src:1 ~dst:0 ~informed:false) };
      { Event.seq = 1; round = 1; kind = Event.Deliver (send_link ~src:1 ~dst:0 ~informed:false) };
      { Event.seq = 2; round = 1; kind = Event.Wake 1 };
    ]
  in
  (match
     Fault.Verdict.classify ~check_silence:true ~n:2 ~budgets:(budgets ~clean:5 ~degraded:9 ())
       silent_break
   with
  | Fault.Verdict.Violated _ -> ()
  | v -> Alcotest.failf "expected silence violation, got %s" (Fault.Verdict.to_string v));
  (* a run that ends with messages still in flight never really drained *)
  let runaway =
    [
      { Event.seq = 0; round = 0; kind = Event.Wake 0 };
      { Event.seq = 1; round = 0; kind = Event.Send (send_link ~src:0 ~dst:1 ~informed:true) };
    ]
  in
  match Fault.Verdict.classify ~n:2 ~budgets:(budgets ~clean:5 ~degraded:9 ()) runaway with
  | Fault.Verdict.Violated _ -> ()
  | v -> Alcotest.failf "expected runaway violation, got %s" (Fault.Verdict.to_string v)

let test_verdict_strings_and_acceptability () =
  check_bool "completed acceptable" true (Fault.Verdict.acceptable Fault.Verdict.Completed);
  check_bool "degraded acceptable" true
    (Fault.Verdict.acceptable (Fault.Verdict.Degraded "advice-fallback(3)"));
  check_bool "stalled not acceptable" false
    (Fault.Verdict.acceptable (Fault.Verdict.Stalled { informed = 1; survivors = 2; n = 2 }));
  check_bool "violated not acceptable" false
    (Fault.Verdict.acceptable (Fault.Verdict.Violated "x"));
  check_string "completed" "completed" (Fault.Verdict.to_string Fault.Verdict.Completed);
  check_string "stalled" "stalled: 1/2 survivors informed (n=3)"
    (Fault.Verdict.to_string (Fault.Verdict.Stalled { informed = 1; survivors = 2; n = 3 }))

(* {1 Recovery: the ack/retransmit channel and error-protected advice} *)

let sparse24 () = Families.build Families.Sparse_random ~n:24 ~seed:43

let test_verdict_cutoff_violates () =
  (* A run stopped by the message cutoff never drained: it must classify
     as a violation, not as a stalled-but-graceful run. *)
  (match
     Fault.Verdict.classify ~quiescent:false ~n:3 ~budgets:(budgets ~clean:5 ~degraded:9 ())
       clean_stream
   with
  | Fault.Verdict.Violated reason ->
    check_bool "reason names the cutoff" true
      (String.length reason >= 14 && String.sub reason 0 14 = "message-cutoff")
  | v -> Alcotest.failf "expected cutoff violation, got %s" (Fault.Verdict.to_string v));
  (* end to end: a tiny max_messages forces the cutoff *)
  let o = Fault.Harness.run ~max_messages:3 Fault.Harness.Broadcast (tree24 ()) ~source:0 in
  match o.Fault.Harness.verdict with
  | Fault.Verdict.Violated _ -> ()
  | v -> Alcotest.failf "harness cutoff: expected violated, got %s" (Fault.Verdict.to_string v)

let recovery_stream =
  (* send, dropped in flight, retransmitted once, finally delivered *)
  [
    { Event.seq = 0; round = 0; kind = Event.Wake 0 };
    { Event.seq = 1; round = 0; kind = Event.Send (send_link ~src:0 ~dst:1 ~informed:true) };
    { Event.seq = 1; round = 0; kind = Event.Fault Event.Msg_dropped };
    { Event.seq = 1; round = 1; kind = Event.Recover (Event.Msg_retransmitted 1) };
    { Event.seq = 1; round = 2; kind = Event.Deliver (send_link ~src:0 ~dst:1 ~informed:true) };
    { Event.seq = 1; round = 2; kind = Event.Wake 1 };
  ]

let test_verdict_recovery_budget () =
  (* within the recovery budget a retransmission only degrades *)
  (match
     Fault.Verdict.classify ~n:2
       ~budgets:(budgets ~clean:1 ~degraded:4 ~recovery:2 ())
       recovery_stream
   with
  | Fault.Verdict.Degraded reason ->
    check_bool "reason mentions retransmissions" true
      (String.length reason > 0
      && Option.is_some (String.index_opt reason 'r'))
  | v -> Alcotest.failf "expected degraded, got %s" (Fault.Verdict.to_string v));
  (* a zero recovery budget makes the same stream a violation *)
  (match
     Fault.Verdict.classify ~n:2 ~budgets:(budgets ~clean:1 ~degraded:4 ()) recovery_stream
   with
  | Fault.Verdict.Violated reason ->
    check_bool "reason names the recovery budget" true
      (String.length reason >= 15 && String.sub reason 0 15 = "recovery-budget")
  | v -> Alcotest.failf "expected violated, got %s" (Fault.Verdict.to_string v));
  (* corrected advice bits never downgrade a completed run *)
  let corrected_stream =
    { Event.seq = 0; round = 0; kind = Event.Recover (Event.Advice_corrected (1, 2)) }
    :: clean_stream
  in
  match
    Fault.Verdict.classify ~n:2 ~budgets:(budgets ~clean:1 ~degraded:4 ()) corrected_stream
  with
  | Fault.Verdict.Completed -> ()
  | v -> Alcotest.failf "corrections must stay completed, got %s" (Fault.Verdict.to_string v)

let test_loss_emits_typed_drops () =
  (* the runner's loss knob must flow through the typed fault channel:
     every loss is a [Fault Msg_dropped] event in the stream *)
  let g = Gen.complete 12 in
  let collect, collected = Obs.Sink.collect () in
  let r =
    Sim.Runner.run ~sinks:[ collect ] ~loss:(0.3, 5) ~advice:no_advice g ~source:0
      Sim.Scheme.flooding
  in
  let s = Obs.Counting.of_events (collected ()) in
  check_bool "losses recorded as typed drops" true (s.Obs.Counting.dropped > 0);
  check_bool "losses count as faults in the stats" true
    (r.Sim.Runner.stats.Sim.Runner.faults >= s.Obs.Counting.dropped);
  check_int "loss balance" (s.Obs.Counting.sent - s.Obs.Counting.dropped)
    s.Obs.Counting.delivered

let test_retry_reenqueues_lost_copies () =
  (* with retries armed, flooding on a path survives heavy loss *)
  let g = Gen.path 6 in
  let collect, collected = Obs.Sink.collect () in
  let r =
    Sim.Runner.run ~sinks:[ collect ] ~loss:(0.4, 9) ~retry:8 ~advice:no_advice g ~source:0
      Sim.Scheme.flooding
  in
  let s = Obs.Counting.of_events (collected ()) in
  check_bool "retransmissions happened" true (s.Obs.Counting.retransmits > 0);
  check_bool "the path is fully informed despite 40% loss" true r.Sim.Runner.all_informed;
  check_int "recovery balance"
    (s.Obs.Counting.sent + s.Obs.Counting.duplicated + s.Obs.Counting.retransmits
    - s.Obs.Counting.dropped)
    s.Obs.Counting.delivered;
  (match Sim.Runner.run ~retry:(-1) ~advice:no_advice g ~source:0 Sim.Scheme.flooding with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative retry must be rejected")

let test_retry_heals_drop_and_crash_grid () =
  (* The acceptance property: with the retransmit channel armed, the
     builtin drop and crash plans no longer stall a single run across the
     full plan x scheduler x family grid, for both protocols. *)
  let graphs = [ ("tree", tree24 ()); ("sparse", sparse24 ()); ("G_{n,S}", hard12 ()) ] in
  let plans =
    List.filter
      (fun (name, _) ->
        String.starts_with ~prefix:"drop" name || String.starts_with ~prefix:"crash" name)
      Plan.builtins
  in
  check_int "three plans under test" 3 (List.length plans);
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (plan_name, plan) ->
      (* Plans that also tamper with advice need the ECC half of the
         recovery stack; retransmission alone cannot undo a flipped bit. *)
      let protect =
        if contains_sub plan_name "advice-flip" then Bitstring.Ecc.Hamming
        else Bitstring.Ecc.Raw
      in
      List.iter
        (fun scheduler ->
          List.iter
            (fun (gname, g) ->
              List.iter
                (fun protocol ->
                  let o =
                    Fault.Harness.run ~scheduler ~plan ~protect ~retry:3 protocol g ~source:0
                  in
                  let label =
                    Printf.sprintf "%s %s %s %s"
                      (Fault.Harness.protocol_name protocol)
                      gname
                      (Sim.Scheduler.name scheduler)
                      plan_name
                  in
                  match o.Fault.Harness.verdict with
                  | Fault.Verdict.Completed | Fault.Verdict.Degraded _ -> ()
                  | v -> Alcotest.failf "%s: %s" label (Fault.Verdict.to_string v))
                [ Fault.Harness.Wakeup; Fault.Harness.Broadcast ])
            graphs)
        Sim.Scheduler.default_suite)
    plans

let test_protection_absorbs_single_flips () =
  (* The other acceptance property: under a single-bit flip plan, Hamming
     protection classifies Completed — the ECC layer absorbs the attack
     without any flooding fallback — at no more than 3x the raw advice. *)
  let plan = Plan.of_string_exn "advice-flip=1,seed=5" in
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun protocol ->
          let o =
            Fault.Harness.run ~plan ~protect:Bitstring.Ecc.Hamming protocol g ~source:0
          in
          let label = Fault.Harness.protocol_name protocol ^ " on " ^ gname in
          (match o.Fault.Harness.verdict with
          | Fault.Verdict.Completed -> ()
          | v -> Alcotest.failf "%s: expected completed, got %s" label (Fault.Verdict.to_string v));
          check_bool (label ^ ": protected advice <= 3x raw") true
            (o.Fault.Harness.advice_bits <= 3 * o.Fault.Harness.raw_advice_bits);
          check_int (label ^ ": no fallbacks") 0 (List.length o.Fault.Harness.fallbacks);
          check_bool (label ^ ": the correction is recorded") true
            (List.length o.Fault.Harness.corrected = List.length o.Fault.Harness.tampered);
          check_bool (label ^ ": all informed") true
            o.Fault.Harness.result.Sim.Runner.all_informed)
        [ Fault.Harness.Wakeup; Fault.Harness.Broadcast ])
    [ ("tree", tree24 ()); ("sparse", sparse24 ()) ]

let test_unprotected_flip_falls_back () =
  (* the contrast: the same plan without protection must pay the fallback *)
  let plan = Plan.of_string_exn "advice-flip=1,seed=5" in
  let o = Fault.Harness.run ~plan Fault.Harness.Wakeup (tree24 ()) ~source:0 in
  check_bool "raw advice cannot absorb a flip silently" true
    (o.Fault.Harness.verdict <> Fault.Verdict.Completed
    || List.length o.Fault.Harness.fallbacks > 0
    || o.Fault.Harness.result.Sim.Runner.stats.Sim.Runner.sent > Graph.n (tree24 ()) - 1
    || not o.Fault.Harness.result.Sim.Runner.all_informed)

let test_recovery_determinism_and_replay () =
  (* identical plan + protection + retry + scheduler: bit-identical
     streams, and the replayer's balance holds with retransmissions *)
  let g = sparse24 () in
  let plan = Plan.of_string_exn "drop=0.1,crash=1@3,advice-flip=1,seed=7" in
  let run () =
    Fault.Harness.run ~scheduler:(Sim.Scheduler.Async_random 3) ~plan
      ~protect:Bitstring.Ecc.Hamming ~retry:3 Fault.Harness.Wakeup g ~source:0
  in
  let a = run () and b = run () in
  check_int "same stream length" (List.length a.Fault.Harness.events)
    (List.length b.Fault.Harness.events);
  List.iter2
    (fun x y -> check_bool "bit-identical recovery streams" true (Event.equal x y))
    a.Fault.Harness.events b.Fault.Harness.events;
  check_bool "verdicts agree" true (a.Fault.Harness.verdict = b.Fault.Harness.verdict);
  check_bool "the run recovered" true (Fault.Verdict.acceptable a.Fault.Harness.verdict);
  let replayed = Obs.Replay.replay ~n:(Graph.n g) a.Fault.Harness.events in
  check_int "replay agrees on sends" a.Fault.Harness.result.Sim.Runner.stats.Sim.Runner.sent
    replayed.Obs.Replay.summary.Obs.Counting.sent;
  check_int "replay balance closes with retransmissions" 0 replayed.Obs.Replay.in_flight

let test_recovery_budget_end_to_end () =
  (* the harness recovery budget scales with retry; retry=0 keeps the
     PR 2 classification bit for bit *)
  let g = Gen.path 4 in
  let b0 = Fault.Harness.budgets Fault.Harness.Wakeup g in
  check_int "no retry, no recovery budget" 0 b0.Fault.Verdict.recovery;
  let b3 = Fault.Harness.budgets ~retry:3 Fault.Harness.Wakeup g in
  check_int "recovery = retry x degraded" (3 * b3.Fault.Verdict.degraded)
    b3.Fault.Verdict.recovery;
  let plan = Plan.of_string_exn "drop=0.1,seed=7" in
  let o0 = Fault.Harness.run ~plan Fault.Harness.Wakeup (tree24 ()) ~source:0 in
  let o0' = Fault.Harness.run ~plan ~retry:0 Fault.Harness.Wakeup (tree24 ()) ~source:0 in
  check_int "retry=0 is the default stream" (List.length o0.Fault.Harness.events)
    (List.length o0'.Fault.Harness.events);
  List.iter2
    (fun x y -> check_bool "identical" true (Event.equal x y))
    o0.Fault.Harness.events o0'.Fault.Harness.events

let suite =
  [
    Alcotest.test_case "plan: none" `Quick test_plan_none;
    Alcotest.test_case "plan: builtins roundtrip" `Quick test_plan_builtins_roundtrip;
    Alcotest.test_case "plan: spec fields" `Quick test_plan_parse_fields;
    Alcotest.test_case "plan: rejects malformed" `Quick test_plan_rejects_malformed;
    Alcotest.test_case "plan: advice-only vs network" `Quick test_plan_advice_only_is_not_network;
    Alcotest.test_case "corrupt: empty plan is identity" `Quick test_corrupt_empty_plan_is_identity;
    Alcotest.test_case "corrupt: pure and deterministic" `Quick test_corrupt_pure_and_deterministic;
    Alcotest.test_case "corrupt: flip" `Quick test_corrupt_flip;
    Alcotest.test_case "corrupt: truncate" `Quick test_corrupt_truncate;
    Alcotest.test_case "corrupt: swap" `Quick test_corrupt_swap;
    Alcotest.test_case "corrupt: garbage" `Quick test_corrupt_garbage;
    Alcotest.test_case "corrupt: tamper log as telemetry" `Quick test_corrupt_events;
    Alcotest.test_case "runner: empty plan leaves the stream alone" `Quick
      test_runner_empty_plan_identical_stream;
    Alcotest.test_case "runner: drop/dup accounting balances" `Quick test_runner_accounting_balance;
    Alcotest.test_case "runner: dead node" `Quick test_runner_dead_node;
    Alcotest.test_case "runner: crash-stop" `Quick test_runner_crash_stop;
    Alcotest.test_case "runner: reorder and delay complete" `Quick
      test_runner_reorder_and_delay_complete;
    Alcotest.test_case "runner: injection is deterministic" `Quick test_runner_fault_determinism;
    Alcotest.test_case "adversary: names and suite" `Quick test_adversary_names_and_suite;
    Alcotest.test_case "adversary: run injects" `Quick test_adversary_run_injects;
    Alcotest.test_case "harness: budgets" `Quick test_harness_budgets;
    Alcotest.test_case "hardened wakeup = plain on clean advice" `Quick
      test_hardened_wakeup_clean_advice;
    Alcotest.test_case "hardened broadcast on clean advice" `Quick
      test_hardened_broadcast_clean_advice;
    Alcotest.test_case "truncated advice degrades to flooding" `Quick
      test_truncated_advice_degrades_to_flooding;
    Alcotest.test_case "garbage advice stays graceful" `Quick test_garbage_advice_still_acceptable;
    Alcotest.test_case "hardened wakeup keeps silence" `Quick test_hardened_wakeup_keeps_silence;
    Alcotest.test_case "acceptance grid never raises" `Quick test_acceptance_grid_never_raises;
    Alcotest.test_case "verdict: completed and degraded" `Quick test_verdict_completed_and_degraded;
    Alcotest.test_case "verdict: stalled and exclusion" `Quick test_verdict_stalled_and_exclusion;
    Alcotest.test_case "verdict: violations" `Quick test_verdict_violations;
    Alcotest.test_case "verdict: strings and acceptability" `Quick
      test_verdict_strings_and_acceptability;
    Alcotest.test_case "verdict: cutoff violates" `Quick test_verdict_cutoff_violates;
    Alcotest.test_case "verdict: recovery budget" `Quick test_verdict_recovery_budget;
    Alcotest.test_case "runner: loss emits typed drops" `Quick test_loss_emits_typed_drops;
    Alcotest.test_case "runner: retry re-enqueues lost copies" `Quick
      test_retry_reenqueues_lost_copies;
    Alcotest.test_case "recovery: retry heals drop and crash grid" `Quick
      test_retry_heals_drop_and_crash_grid;
    Alcotest.test_case "recovery: hamming absorbs single flips" `Quick
      test_protection_absorbs_single_flips;
    Alcotest.test_case "recovery: unprotected flip falls back" `Quick
      test_unprotected_flip_falls_back;
    Alcotest.test_case "recovery: deterministic and replayable" `Quick
      test_recovery_determinism_and_replay;
    Alcotest.test_case "recovery: budgets end to end" `Quick test_recovery_budget_end_to_end;
  ]
