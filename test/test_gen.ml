open Netgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let assert_valid name g =
  (match Graph.validate g with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid graph: %s" name msg);
  check_bool (name ^ " connected") true (Graph.is_connected g)

let test_path () =
  let g = Gen.path 5 in
  assert_valid "path" g;
  check_int "m" 4 (Graph.m g);
  check_int "deg end" 1 (Graph.degree g 0);
  check_int "deg middle" 2 (Graph.degree g 2)

let test_path_single_node () =
  let g = Gen.path 1 in
  check_int "n" 1 (Graph.n g);
  check_int "m" 0 (Graph.m g)

let test_cycle () =
  let g = Gen.cycle 6 in
  assert_valid "cycle" g;
  check_int "m" 6 (Graph.m g);
  for v = 0 to 5 do
    check_int (Printf.sprintf "deg %d" v) 2 (Graph.degree g v)
  done

let test_star () =
  let g = Gen.star 7 in
  assert_valid "star" g;
  check_int "center degree" 6 (Graph.degree g 0);
  for v = 1 to 6 do
    check_int (Printf.sprintf "leaf %d" v) 1 (Graph.degree g v)
  done

let test_complete_structure () =
  let n = 8 in
  let g = Gen.complete n in
  assert_valid "complete" g;
  check_int "m" (n * (n - 1) / 2) (Graph.m g);
  for v = 0 to n - 1 do
    check_int (Printf.sprintf "deg %d" v) (n - 1) (Graph.degree g v)
  done

let test_complete_port_rule () =
  (* Port p at node i leads to node (i + p + 1) mod n. *)
  let n = 9 in
  let g = Gen.complete n in
  for i = 0 to n - 1 do
    for p = 0 to n - 2 do
      let j, _ = Graph.endpoint g i p in
      check_int (Printf.sprintf "i=%d p=%d" i p) ((i + p + 1) mod n) j
    done
  done

let test_complete_port_symmetry () =
  (* Following the reverse port comes back. *)
  let g = Gen.complete 7 in
  for i = 0 to 6 do
    for p = 0 to 5 do
      let j, q = Graph.endpoint g i p in
      let i', p' = Graph.endpoint g j q in
      check_int "returns" i i';
      check_int "same port" p p'
    done
  done

let test_balanced_tree () =
  let g = Gen.balanced_tree ~arity:2 ~depth:3 in
  assert_valid "binary tree" g;
  check_int "nodes" 15 (Graph.n g);
  check_int "edges" 14 (Graph.m g);
  check_int "root degree" 2 (Graph.degree g 0);
  let g3 = Gen.balanced_tree ~arity:3 ~depth:2 in
  check_int "ternary nodes" 13 (Graph.n g3);
  let g0 = Gen.balanced_tree ~arity:2 ~depth:0 in
  check_int "single node" 1 (Graph.n g0)

let test_grid () =
  let g = Gen.grid ~rows:3 ~cols:4 in
  assert_valid "grid" g;
  check_int "n" 12 (Graph.n g);
  check_int "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  check_int "corner degree" 2 (Graph.degree g 0);
  check_int "interior degree" 4 (Graph.degree g 5)

let test_torus () =
  let g = Gen.torus ~rows:3 ~cols:5 in
  assert_valid "torus" g;
  check_int "n" 15 (Graph.n g);
  check_int "m" 30 (Graph.m g);
  for v = 0 to 14 do
    check_int (Printf.sprintf "deg %d" v) 4 (Graph.degree g v)
  done

let test_hypercube () =
  let g = Gen.hypercube ~dim:4 in
  assert_valid "hypercube" g;
  check_int "n" 16 (Graph.n g);
  check_int "m" 32 (Graph.m g);
  (* Port k at node u leads to u lxor (1 lsl k). *)
  for u = 0 to 15 do
    for k = 0 to 3 do
      let v, q = Graph.endpoint g u k in
      check_int "flip" (u lxor (1 lsl k)) v;
      check_int "same dimension port" k q
    done
  done

let test_random_tree () =
  let st = Random.State.make [| 11 |] in
  List.iter
    (fun n ->
      let g = Gen.random_tree ~n st in
      assert_valid (Printf.sprintf "random tree %d" n) g;
      check_int "tree edges" (n - 1) (Graph.m g))
    [ 1; 2; 3; 10; 64 ]

let test_random_connected_p0 () =
  let st = Random.State.make [| 12 |] in
  let g = Gen.random_connected ~n:30 ~p:0.0 st in
  assert_valid "p=0" g;
  check_int "spanning tree only" 29 (Graph.m g)

let test_random_connected_p1 () =
  let st = Random.State.make [| 13 |] in
  let g = Gen.random_connected ~n:12 ~p:1.0 st in
  assert_valid "p=1" g;
  check_int "complete" (12 * 11 / 2) (Graph.m g)

let test_lollipop () =
  let g = Gen.lollipop ~clique:5 ~tail:4 in
  assert_valid "lollipop" g;
  check_int "n" 9 (Graph.n g);
  check_int "m" (10 + 4) (Graph.m g);
  check_int "tail end degree" 1 (Graph.degree g 8)

let test_invalid_parameters () =
  let expect name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect "path 0" (fun () -> Gen.path 0);
  expect "cycle 2" (fun () -> Gen.cycle 2);
  expect "star 1" (fun () -> Gen.star 1);
  expect "complete 1" (fun () -> Gen.complete 1);
  expect "torus 2x3" (fun () -> Gen.torus ~rows:2 ~cols:3);
  expect "hypercube 0" (fun () -> Gen.hypercube ~dim:0);
  expect "negative tail" (fun () -> Gen.lollipop ~clique:4 ~tail:(-1));
  expect "bad p" (fun () ->
      Gen.random_connected ~n:5 ~p:1.5 (Random.State.make [| 0 |]))

let qcheck_random_connected =
  QCheck.Test.make ~name:"random_connected is valid and connected" ~count:60
    QCheck.(pair (int_range 2 40) (float_bound_inclusive 1.0))
    (fun (n, p) ->
      let st = Random.State.make [| n; int_of_float (p *. 1000.0) |] in
      let g = Gen.random_connected ~n ~p st in
      Graph.validate g = Ok () && Graph.is_connected g && Graph.n g = n)

let qcheck_random_tree_shape =
  QCheck.Test.make ~name:"random_tree is a spanning tree" ~count:60
    QCheck.(int_range 1 60)
    (fun n ->
      let st = Random.State.make [| n; 77 |] in
      let g = Gen.random_tree ~n st in
      Graph.validate g = Ok () && Graph.is_connected g && Graph.m g = n - 1)

let suite =
  [
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "path of one node" `Quick test_path_single_node;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "complete: structure" `Quick test_complete_structure;
    Alcotest.test_case "complete: port rule" `Quick test_complete_port_rule;
    Alcotest.test_case "complete: port symmetry" `Quick test_complete_port_symmetry;
    Alcotest.test_case "balanced tree" `Quick test_balanced_tree;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "torus" `Quick test_torus;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "random tree" `Quick test_random_tree;
    Alcotest.test_case "random connected p=0" `Quick test_random_connected_p0;
    Alcotest.test_case "random connected p=1" `Quick test_random_connected_p1;
    Alcotest.test_case "lollipop" `Quick test_lollipop;
    Alcotest.test_case "invalid parameters rejected" `Quick test_invalid_parameters;
    QCheck_alcotest.to_alcotest qcheck_random_connected;
    QCheck_alcotest.to_alcotest qcheck_random_tree_shape;
  ]

(* New generators *)

let test_complete_bipartite () =
  let g = Gen.complete_bipartite 3 4 in
  assert_valid "K_{3,4}" g;
  check_int "n" 7 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  for v = 0 to 2 do
    check_int (Printf.sprintf "left %d" v) 4 (Graph.degree g v)
  done;
  for v = 3 to 6 do
    check_int (Printf.sprintf "right %d" v) 3 (Graph.degree g v)
  done;
  check_bool "no edge within sides" false (Graph.has_edge g 0 1)

let test_wheel () =
  let g = Gen.wheel 8 in
  assert_valid "wheel" g;
  check_int "hub degree" 7 (Graph.degree g 0);
  for v = 1 to 7 do
    check_int (Printf.sprintf "rim %d" v) 3 (Graph.degree g v)
  done;
  check_int "m" 14 (Graph.m g)

let test_cube_connected_cycles () =
  let g = Gen.cube_connected_cycles ~dim:3 in
  assert_valid "CCC(3)" g;
  check_int "n = d*2^d" 24 (Graph.n g);
  for v = 0 to 23 do
    check_int (Printf.sprintf "3-regular %d" v) 3 (Graph.degree g v)
  done;
  (* Port 2 goes across a hypercube dimension and returns. *)
  let v, q = Graph.endpoint g 0 2 in
  check_int "across port" 2 q;
  let back, _ = Graph.endpoint g v 2 in
  check_int "involution" 0 back

let test_random_regular () =
  let st = Random.State.make [| 41 |] in
  let g = Gen.random_regular ~n:20 ~d:3 st in
  assert_valid "3-regular" g;
  for v = 0 to 19 do
    check_int (Printf.sprintf "degree %d" v) 3 (Graph.degree g v)
  done;
  let g4 = Gen.random_regular ~n:15 ~d:4 st in
  assert_valid "4-regular odd n" g4;
  (match Gen.random_regular ~n:15 ~d:3 st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "odd n*d rejected");
  match Gen.random_regular ~n:4 ~d:2 st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "d < 3 rejected"

let extra_suite =
  [
    Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
    Alcotest.test_case "wheel" `Quick test_wheel;
    Alcotest.test_case "cube-connected cycles" `Quick test_cube_connected_cycles;
    Alcotest.test_case "random regular" `Quick test_random_regular;
  ]

let suite = suite @ extra_suite
