(* The error-protection layer: CRC detection, Hamming single-error
   correction, repetition majority, exact size accounting, and totality
   of [unprotect] and the result decoders on arbitrary bit strings. *)

module Bitbuf = Bitstring.Bitbuf
module Codes = Bitstring.Codes
module Ecc = Bitstring.Ecc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let buf_of_bits bits = Bitbuf.of_bits bits

let random_buf st len = Bitbuf.of_bits (List.init len (fun _ -> Random.State.bool st))

let flip buf i =
  let bits = Bitbuf.to_bits buf in
  Bitbuf.of_bits (List.mapi (fun j b -> if j = i then not b else b) bits)

(* {1 Names} *)

let test_names () =
  List.iter
    (fun level ->
      let n = Ecc.name level in
      match Ecc.of_name n with
      | Ok back -> check_bool (n ^ " roundtrips") true (back = level)
      | Error e -> Alcotest.failf "%s does not parse back: %s" n e)
    Ecc.all;
  check_bool "rep5 parses" true (Ecc.of_name "rep5" = Ok (Ecc.Repetition 5));
  check_bool "none is an alias for raw" true (Ecc.of_name "none" = Ok Ecc.Raw);
  check_bool "sec is an alias for hamming" true (Ecc.of_name "sec" = Ok Ecc.Hamming);
  List.iter
    (fun s ->
      match Ecc.of_name s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bogus level %S" s)
    [ "rep1"; "rep0"; "repx"; "turbo"; "" ];
  check_string "hamming name" "hamming" (Ecc.name Ecc.Hamming)

(* {1 Roundtrip and exact size accounting} *)

let test_roundtrip_all_levels () =
  let st = Random.State.make [| 11 |] in
  List.iter
    (fun level ->
      for len = 0 to 48 do
        let payload = random_buf st len in
        let coded = Ecc.protect level payload in
        check_int
          (Printf.sprintf "%s length formula at %d" (Ecc.name level) len)
          (Ecc.protected_length level len) (Bitbuf.length coded);
        match Ecc.unprotect level coded with
        | Ok (back, corrected) ->
          check_bool
            (Printf.sprintf "%s roundtrip at %d" (Ecc.name level) len)
            true (Bitbuf.equal back payload);
          check_int (Printf.sprintf "%s clean decode corrects nothing" (Ecc.name level)) 0 corrected
        | Error e -> Alcotest.failf "%s clean codeword rejected at %d: %s" (Ecc.name level) len e
      done)
    Ecc.all

let test_empty_is_fixed_point () =
  List.iter
    (fun level ->
      let coded = Ecc.protect level (Bitbuf.create ()) in
      check_int (Ecc.name level ^ " empty stays empty") 0 (Bitbuf.length coded);
      check_int (Ecc.name level ^ " zero length formula") 0 (Ecc.protected_length level 0);
      match Ecc.unprotect level (Bitbuf.create ()) with
      | Ok (back, 0) -> check_bool "decodes to empty" true (Bitbuf.is_empty back)
      | Ok (_, _) -> Alcotest.fail "empty decode corrected something"
      | Error e -> Alcotest.failf "%s rejects the empty string: %s" (Ecc.name level) e)
    Ecc.all

let test_overhead_bounds () =
  let st = Random.State.make [| 13 |] in
  List.iter
    (fun level ->
      let bound = Ecc.overhead_bound level in
      for len = 1 to 64 do
        ignore (random_buf st len);
        let ratio = float_of_int (Ecc.protected_length level len) /. float_of_int len in
        if level <> Ecc.Crc then
          check_bool
            (Printf.sprintf "%s overhead at %d within %.1f" (Ecc.name level) len bound)
            true
            (ratio <= bound +. 1e-9)
      done)
    Ecc.all;
  (* the acceptance bound: Hamming-protected advice is at most 3x raw,
     with the 1-bit payload as the extremal case *)
  check_int "hamming worst case: 1 bit -> 3 bits" 3 (Ecc.protected_length Ecc.Hamming 1);
  check_bool "crc bound quoted for 1-bit payloads" true (Ecc.overhead_bound Ecc.Crc = 9.0)

let test_rep_k_validation () =
  (match Ecc.protect (Ecc.Repetition 1) (buf_of_bits [ true ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rep1 must be rejected");
  let coded = Ecc.protect (Ecc.Repetition 4) (buf_of_bits [ true; false ]) in
  check_int "rep4 size" 8 (Bitbuf.length coded)

(* {1 Error behaviour: correct, detect, reject} *)

let test_hamming_corrects_any_single_flip () =
  let st = Random.State.make [| 17 |] in
  for len = 1 to 40 do
    let payload = random_buf st len in
    let coded = Ecc.protect Ecc.Hamming payload in
    for i = 0 to Bitbuf.length coded - 1 do
      match Ecc.unprotect Ecc.Hamming (flip coded i) with
      | Ok (back, corrected) ->
        check_bool
          (Printf.sprintf "len %d flip %d corrected" len i)
          true (Bitbuf.equal back payload);
        check_int "one correction reported" 1 corrected
      | Error e -> Alcotest.failf "len %d flip %d rejected: %s" len i e
    done
  done

let test_crc_detects_single_flips () =
  let st = Random.State.make [| 19 |] in
  for len = 1 to 32 do
    let payload = random_buf st len in
    let coded = Ecc.protect Ecc.Crc payload in
    for i = 0 to Bitbuf.length coded - 1 do
      match Ecc.unprotect Ecc.Crc (flip coded i) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "crc missed a flip at %d (len %d)" i len
    done
  done

let test_rep3_corrects_one_flip_per_bit () =
  let payload = buf_of_bits [ true; false; true; true; false ] in
  let coded = Ecc.protect (Ecc.Repetition 3) payload in
  for i = 0 to Bitbuf.length coded - 1 do
    match Ecc.unprotect (Ecc.Repetition 3) (flip coded i) with
    | Ok (back, corrected) ->
      check_bool (Printf.sprintf "flip %d out-voted" i) true (Bitbuf.equal back payload);
      check_int "one correction" 1 corrected
    | Error e -> Alcotest.failf "rep3 rejected flip %d: %s" i e
  done;
  (* even k detects a tie instead of guessing *)
  let coded2 = Ecc.protect (Ecc.Repetition 2) (buf_of_bits [ true ]) in
  match Ecc.unprotect (Ecc.Repetition 2) (flip coded2 0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rep2 tie must be an error"

let test_framing_errors_rejected () =
  (* strings that cannot be codewords: wrong length classes *)
  List.iter
    (fun (level, bad_lens) ->
      List.iter
        (fun len ->
          let junk = Bitbuf.of_bits (List.init len (fun i -> i mod 2 = 0)) in
          match Ecc.unprotect level junk with
          | Error _ -> ()
          | Ok _ ->
            Alcotest.failf "%s accepted an unframeable %d-bit string" (Ecc.name level) len)
        bad_lens)
    [
      (Ecc.Crc, [ 1; 2; 7; 8 ]) (* shorter than the 8 check bits + 1 *);
      (Ecc.Hamming, [ 1; 2 ]) (* no r with 2^r >= m+r+1 fits *);
      (Ecc.Repetition 3, [ 1; 2; 4; 5 ]) (* not a multiple of 3 *);
    ]

(* {1 Totality fuzz: unprotect and the result decoders never raise} *)

let qcheck_unprotect_total =
  QCheck.Test.make ~name:"unprotect total on arbitrary strings" ~count:2000
    QCheck.(pair (int_bound 3) (small_list bool))
    (fun (which, bits) ->
      let level = List.nth Ecc.all which in
      let buf = Bitbuf.of_bits bits in
      match Ecc.unprotect level buf with Ok _ | Error _ -> true)

(* Arbitrary and ECC-mangled strings fed to the advice decoders: the
   schemes' fallback path relies on these never raising. *)
let qcheck_decoders_total =
  QCheck.Test.make ~name:"result decoders total on arbitrary strings" ~count:2000
    QCheck.(small_list bool)
    (fun bits ->
      let try_decode () =
        let buf = Bitbuf.of_bits bits in
        let _ = Codes.read_port_list_result (Bitbuf.reader buf) in
        let _ = Codes.read_marked_list_result (Bitbuf.reader buf) in
        let _ = Codes.read_gamma_list_result (Bitbuf.reader buf) in
        true
      in
      try_decode ())

let qcheck_decoders_total_on_mangled_codewords =
  QCheck.Test.make ~name:"result decoders total on ECC-mangled codewords" ~count:1000
    QCheck.(triple (int_bound 3) (small_list bool) (pair small_nat small_nat))
    (fun (which, bits, (at, flips)) ->
      let level = List.nth Ecc.all which in
      let coded = Ecc.protect level (Bitbuf.of_bits bits) in
      let len = Bitbuf.length coded in
      let mangled =
        if len = 0 then coded
        else
          let b = ref coded in
          for k = 0 to min flips 4 do
            b := flip !b ((at + k) mod len)
          done;
          !b
      in
      (* whatever the decode yields — possibly a wrong payload — the
         downstream decoders must stay total on it *)
      match Ecc.unprotect level mangled with
      | Error _ -> true
      | Ok (payload, _) ->
        let _ = Codes.read_port_list_result (Bitbuf.reader payload) in
        let _ = Codes.read_marked_list_result (Bitbuf.reader payload) in
        let _ = Codes.read_gamma_list_result (Bitbuf.reader payload) in
        true)

let qcheck_hamming_beyond_power_is_detected_or_wrong_but_silent =
  QCheck.Test.make ~name:"hamming double flips never raise" ~count:1000
    QCheck.(triple (small_list bool) small_nat small_nat)
    (fun (bits, i, j) ->
      let coded = Ecc.protect Ecc.Hamming (Bitbuf.of_bits bits) in
      let len = Bitbuf.length coded in
      if len < 2 then true
      else
        let a = i mod len and b = j mod len in
        let mangled = if a = b then flip coded a else flip (flip coded a) b in
        match Ecc.unprotect Ecc.Hamming mangled with Ok _ | Error _ -> true)

(* {1 Protect wrapper} *)

let test_protect_advice_sizes () =
  let g = Netgraph.Families.build Netgraph.Families.Random_tree ~n:24 ~seed:7 in
  let oracle = Oracle_core.Wakeup.oracle () in
  let raw = oracle.Oracles.Oracle.advise g ~source:0 in
  List.iter
    (fun level ->
      let protected_advice = Oracles.Protect.advice level raw in
      let expected = Oracles.Protect.size_bits level raw in
      check_int
        (Ecc.name level ^ " size accounting")
        expected
        (Oracles.Advice.size_bits protected_advice);
      if level = Ecc.Raw then
        check_int "raw adds nothing" (Oracles.Advice.size_bits raw) expected
      else
        check_bool (Ecc.name level ^ " costs more") true
          (expected >= Oracles.Advice.size_bits raw))
    Ecc.all;
  (* the acceptance bound again, end to end: hamming-protected advice
     stays within 3x the raw oracle size *)
  let hamming = Oracles.Protect.size_bits Ecc.Hamming raw in
  check_bool "hamming advice <= 3x raw" true
    (hamming <= 3 * Oracles.Advice.size_bits raw)

let test_protect_oracle_wrapper () =
  let o = Oracle_core.Wakeup.oracle () in
  let wrapped = Oracles.Protect.oracle Ecc.Hamming o in
  check_bool "name records the level" true
    (String.length wrapped.Oracles.Oracle.name > String.length o.Oracles.Oracle.name);
  let same = Oracles.Protect.oracle Ecc.Raw o in
  check_string "raw leaves the oracle alone" o.Oracles.Oracle.name same.Oracles.Oracle.name

let suite =
  [
    Alcotest.test_case "level names" `Quick test_names;
    Alcotest.test_case "roundtrip + exact sizes" `Quick test_roundtrip_all_levels;
    Alcotest.test_case "empty fixed point" `Quick test_empty_is_fixed_point;
    Alcotest.test_case "overhead bounds" `Quick test_overhead_bounds;
    Alcotest.test_case "repetition validation" `Quick test_rep_k_validation;
    Alcotest.test_case "hamming corrects single flips" `Quick test_hamming_corrects_any_single_flip;
    Alcotest.test_case "crc detects single flips" `Quick test_crc_detects_single_flips;
    Alcotest.test_case "rep3 majority" `Quick test_rep3_corrects_one_flip_per_bit;
    Alcotest.test_case "framing errors rejected" `Quick test_framing_errors_rejected;
    QCheck_alcotest.to_alcotest qcheck_unprotect_total;
    QCheck_alcotest.to_alcotest qcheck_decoders_total;
    QCheck_alcotest.to_alcotest qcheck_decoders_total_on_mangled_codewords;
    QCheck_alcotest.to_alcotest qcheck_hamming_beyond_power_is_detected_or_wrong_but_silent;
    Alcotest.test_case "protected advice accounting" `Quick test_protect_advice_sizes;
    Alcotest.test_case "protect oracle wrapper" `Quick test_protect_oracle_wrapper;
  ]
