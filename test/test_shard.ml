(* The sharded engine's contract is bit-identity: at any shard count,
   one run produces byte-for-byte the JSONL trace, the stats, and the
   verdict inputs of the sequential runner.  The grids below pin that
   across protocols, graph families, schedulers, shard counts and fault
   plans — with [min_parallel_batch:1] where the engine is driven
   directly, so the parallel phases really execute even on test-sized
   graphs instead of falling back to the coordinator's inline path. *)

open Oracle_core
module Graph = Netgraph.Graph

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let jsonl events = String.concat "\n" (List.map Obs.Jsonl.encode events)

let families =
  [
    ("path", fun () -> Netgraph.Gen.path 500);
    ("complete", fun () -> Netgraph.Gen.complete 240);
    ( "sparse",
      fun () ->
        Netgraph.Gen.random_connected ~n:1500 ~p:(4.0 /. 1500.0) (Random.State.make [| 1500 |]) );
  ]

let shard_counts = [ 1; 2; 7 ]

(* Protocol runs through the public [Oracle_core] entry points: the
   sequential trace and stats are the reference, every shard count must
   reproduce them byte for byte. *)
let test_protocol_grid () =
  List.iter
    (fun (fam, build) ->
      let g = build () in
      List.iter
        (fun sched ->
          List.iter
            (fun (proto, run) ->
              let reference = ref None in
              List.iter
                (fun shards ->
                  let collect, collected = Obs.Sink.collect () in
                  let stats, informed, load = run ~sinks:[ collect ] ~sched ~shards g in
                  let trace = jsonl (collected ()) in
                  match !reference with
                  | None -> reference := Some (trace, stats, informed, load)
                  | Some (t0, s0, i0, l0) ->
                    let name =
                      Printf.sprintf "%s/%s/%s/shards=%d" proto fam (Sim.Scheduler.name sched)
                        shards
                    in
                    check_string (name ^ ": trace bytes") t0 trace;
                    check_bool (name ^ ": stats") true (s0 = stats);
                    check_bool (name ^ ": informed") true (i0 = informed);
                    check_bool (name ^ ": per-node load") true (l0 = load))
                shard_counts)
            [
              ( "wakeup",
                fun ~sinks ~sched ~shards g ->
                  let o = Wakeup.run ~scheduler:sched ~sinks ~shards g ~source:0 in
                  let r = o.Wakeup.result in
                  (r.Sim.Runner.stats, r.Sim.Runner.informed, r.Sim.Runner.per_node_sent) );
              ( "broadcast",
                fun ~sinks ~sched ~shards g ->
                  let o = Broadcast.run ~scheduler:sched ~sinks ~shards g ~source:0 in
                  let r = o.Broadcast.result in
                  (r.Sim.Runner.stats, r.Sim.Runner.informed, r.Sim.Runner.per_node_sent) );
            ])
        [ Sim.Scheduler.Synchronous; Sim.Scheduler.Async_fifo ])
    families

(* The engine driven directly with [min_parallel_batch:1], so every
   round of every run crosses the domain barriers, however small the
   batch.  Covers the fully-parallel fast path (no sinks), the traced
   path, and their agreement with each other and with [Runner.run]. *)
let test_forced_parallel_phases () =
  List.iter
    (fun (fam, build) ->
      let g = build () in
      let advice _ = Bitstring.Bitbuf.create () in
      let seq =
        Sim.Runner.run ~scheduler:Sim.Scheduler.Synchronous ~record_trace:true ~advice g
          ~source:0 Sim.Scheme.flooding
      in
      List.iter
        (fun shards ->
          let name = Printf.sprintf "%s/shards=%d" fam shards in
          (* Fast path: no sinks, no trace. *)
          let fast =
            Sim.Shard.run ~scheduler:Sim.Scheduler.Synchronous ~shards ~min_parallel_batch:1
              ~advice g ~source:0 Sim.Scheme.flooding
          in
          check_bool (name ^ " fast: stats") true (fast.Sim.Runner.stats = seq.Sim.Runner.stats);
          check_bool (name ^ " fast: informed") true
            (fast.Sim.Runner.informed = seq.Sim.Runner.informed);
          check_bool (name ^ " fast: load") true
            (fast.Sim.Runner.per_node_sent = seq.Sim.Runner.per_node_sent);
          check_bool (name ^ " fast: quiescent") true
            (fast.Sim.Runner.quiescent = seq.Sim.Runner.quiescent);
          (* Traced path: the in-memory delivery trace must match the
             sequential one record for record, sequence numbers
             included. *)
          let traced =
            Sim.Shard.run ~scheduler:Sim.Scheduler.Synchronous ~shards ~min_parallel_batch:1
              ~record_trace:true ~advice g ~source:0 Sim.Scheme.flooding
          in
          check_bool (name ^ " traced: deliveries") true
            (traced.Sim.Runner.deliveries = seq.Sim.Runner.deliveries);
          check_bool (name ^ " traced: stats") true
            (traced.Sim.Runner.stats = seq.Sim.Runner.stats))
        shard_counts)
    families

(* Shards composed with fault plans: the coordinator owns every RNG
   draw, wheel tick and reorder-stage mutation, so the event stream —
   faults, recoveries, deliveries — is byte-identical at any shard
   count, across plans that exercise each fault channel and the
   retransmit machinery. *)
let test_fault_grid () =
  let g =
    Netgraph.Gen.random_connected ~n:900 ~p:(4.0 /. 900.0) (Random.State.make [| 900 |])
  in
  let advice _ = Bitstring.Bitbuf.create () in
  List.iter
    (fun (spec, retry) ->
      let faults = Sim.Fault_plan.of_string_exn spec in
      let reference = ref None in
      List.iter
        (fun shards ->
          let collect, collected = Obs.Sink.collect () in
          let r =
            Sim.Shard.run ~scheduler:Sim.Scheduler.Synchronous ~shards ~min_parallel_batch:1
              ~record_trace:true ~sinks:[ collect ] ~faults ~retry ~advice g ~source:0
              Sim.Scheme.flooding
          in
          let trace = jsonl (collected ()) in
          match !reference with
          | None -> reference := Some (trace, r)
          | Some (t0, r0) ->
            let name = Printf.sprintf "%s/retry=%d/shards=%d" spec retry shards in
            check_string (name ^ ": event bytes") t0 trace;
            check_bool (name ^ ": stats") true (r0.Sim.Runner.stats = r.Sim.Runner.stats);
            check_bool (name ^ ": deliveries") true
              (r0.Sim.Runner.deliveries = r.Sim.Runner.deliveries);
            check_bool (name ^ ": informed") true (r0.Sim.Runner.informed = r.Sim.Runner.informed))
        shard_counts)
    [
      ("drop=0.1,seed=5", 3);
      ("delay=0.3:7,seed=9", 0);
      ("dup=0.05,reorder=3,seed=11", 0);
      ("drop=0.15,delay=0.2:5,crash=7@40,seed=13", 2);
      ("dead=3,dead=5,dead=11,seed=17", 1);
    ]

(* The fault harness end to end (tamper, hardened schemes, verdict):
   [?shards] must not move the verdict or the recorded stream. *)
let test_harness_shards () =
  let g =
    Netgraph.Gen.random_connected ~n:600 ~p:(4.0 /. 600.0) (Random.State.make [| 600 |])
  in
  let plan = Fault.Plan.of_string_exn "drop=0.1,advice-flip=4,seed=21" in
  let reference = ref None in
  List.iter
    (fun shards ->
      let o =
        Fault.Harness.run ~scheduler:Sim.Scheduler.Synchronous ~plan ~retry:2 ~shards
          Fault.Harness.Broadcast g ~source:0
      in
      let trace = jsonl o.Fault.Harness.events in
      match !reference with
      | None -> reference := Some (trace, o.Fault.Harness.verdict)
      | Some (t0, v0) ->
        let name = Printf.sprintf "harness/shards=%d" shards in
        check_string (name ^ ": event bytes") t0 trace;
        check_bool (name ^ ": verdict") true (v0 = o.Fault.Harness.verdict))
    shard_counts

(* Input validation and the environment fallback. *)
let test_validation () =
  let g = Netgraph.Gen.path 8 in
  let advice _ = Bitstring.Bitbuf.create () in
  Alcotest.check_raises "shards=0 rejected" (Invalid_argument "Shard.run: shards must be >= 1")
    (fun () ->
      ignore (Sim.Shard.run ~shards:0 ~advice g ~source:0 Sim.Scheme.flooding));
  Alcotest.check_raises "min_parallel_batch=0 rejected"
    (Invalid_argument "Shard.run: min_parallel_batch must be >= 1") (fun () ->
      ignore
        (Sim.Shard.run ~shards:2 ~min_parallel_batch:0 ~advice g ~source:0 Sim.Scheme.flooding))

let suite =
  [
    Alcotest.test_case "protocol grid: shards 1/2/7 byte-identical" `Slow test_protocol_grid;
    Alcotest.test_case "forced parallel phases bit-identical" `Slow test_forced_parallel_phases;
    Alcotest.test_case "fault plans x shards byte-identical" `Slow test_fault_grid;
    Alcotest.test_case "fault harness under shards" `Slow test_harness_shards;
    Alcotest.test_case "shard count validation" `Quick test_validation;
  ]
