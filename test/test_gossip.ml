open Oracle_core
module Graph = Netgraph.Graph
module Families = Netgraph.Families

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_tree_gossip_all_families () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:83 in
      let n = Graph.n g in
      let o = Gossip.run g ~source:0 in
      check_bool (Families.name fam ^ " complete") true o.Gossip.complete;
      check_int
        (Families.name fam ^ " messages")
        (2 * (n - 1))
        o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent)
    Families.all

let test_learned_sets () =
  let g = Netgraph.Gen.path 6 in
  let o = Gossip.run g ~source:2 in
  check_bool "complete" true o.Gossip.complete;
  Array.iter
    (fun learned -> Alcotest.(check (list int)) "all rumors" [ 1; 2; 3; 4; 5; 6 ] learned)
    o.Gossip.learned

let test_all_schedulers () =
  let g = Families.build Families.Sparse_random ~n:40 ~seed:89 in
  List.iter
    (fun sched ->
      let o = Gossip.run ~scheduler:sched g ~source:0 in
      check_bool (Sim.Scheduler.name sched) true o.Gossip.complete;
      check_int (Sim.Scheduler.name sched)
        (2 * (Graph.n g - 1))
        o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent)
    Sim.Scheduler.default_suite

let test_single_node () =
  let g = Netgraph.Gen.path 1 in
  let o = Gossip.run g ~source:0 in
  check_bool "complete" true o.Gossip.complete;
  check_int "no messages" 0 o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent

let test_advice_roundtrip () =
  let g = Netgraph.Gen.grid ~rows:4 ~cols:4 in
  let o = Gossip.oracle () in
  let advice = o.Oracles.Oracle.advise g ~source:0 in
  let tree = Netgraph.Spanning.bfs g ~root:0 in
  for v = 0 to 15 do
    let parent, children = Gossip.decode_advice (Oracles.Advice.get advice v) in
    Alcotest.(check (option int))
      (Printf.sprintf "parent %d" v)
      (Option.map snd tree.Netgraph.Spanning.parent.(v))
      parent;
    Alcotest.(check (list int))
      (Printf.sprintf "children %d" v)
      (Netgraph.Spanning.children_ports tree v)
      children
  done

let test_flooding_gossip () =
  let g = Families.build Families.Dense_random ~n:24 ~seed:97 in
  let o = Gossip.run_flooding g ~source:0 in
  check_bool "complete" true o.Gossip.complete;
  check_int "no advice" 0 o.Gossip.advice_bits;
  let tree = Gossip.run g ~source:0 in
  check_bool "flooding costs more" true
    (o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent
    > 3 * tree.Gossip.result.Sim.Runner.stats.Sim.Runner.sent)

let test_bits_on_wire_accounted () =
  (* Rumor payloads are real control messages, so the wire carries far
     more bits than the message count. *)
  let g = Netgraph.Gen.path 8 in
  let o = Gossip.run g ~source:0 in
  check_bool "payload bits counted" true
    (o.Gossip.result.Sim.Runner.stats.Sim.Runner.bits_on_wire
    > o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent)

let test_causal_depth_tracks_tree_height () =
  (* Convergecast + broadcast over a path from one end: depth ≈ 2(n-1). *)
  let g = Netgraph.Gen.path 10 in
  let o = Gossip.run g ~source:0 in
  let depth = o.Gossip.result.Sim.Runner.stats.Sim.Runner.causal_depth in
  check_bool (Printf.sprintf "depth %d ~ 18" depth) true (depth >= 17 && depth <= 19)

let qcheck_tree_gossip =
  QCheck.Test.make ~name:"tree gossip: complete with 2(n-1) messages" ~count:40
    QCheck.(pair (int_range 2 40) (int_range 0 999))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.2 st in
      let o = Gossip.run g ~source:(seed mod n) in
      o.Gossip.complete && o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent = 2 * (n - 1))

let suite =
  [
    Alcotest.test_case "2(n-1) messages on every family" `Quick test_tree_gossip_all_families;
    Alcotest.test_case "learned sets" `Quick test_learned_sets;
    Alcotest.test_case "all schedulers" `Quick test_all_schedulers;
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "advice roundtrip" `Quick test_advice_roundtrip;
    Alcotest.test_case "flooding baseline" `Quick test_flooding_gossip;
    Alcotest.test_case "payload bits accounted" `Quick test_bits_on_wire_accounted;
    Alcotest.test_case "causal depth" `Quick test_causal_depth_tracks_tree_height;
    QCheck_alcotest.to_alcotest qcheck_tree_gossip;
  ]

let test_gossip_alternate_trees () =
  let g = Netgraph.Gen.complete 16 in
  List.iter
    (fun (name, tree) ->
      let o = Gossip.run ~tree g ~source:3 in
      check_bool (name ^ " complete") true o.Gossip.complete;
      check_int (name ^ " messages") (2 * 15) o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent)
    [
      ("light", fun g ~root -> Netgraph.Spanning.light g ~root);
      ("dfs", fun g ~root -> Netgraph.Spanning.dfs g ~root);
    ]

let suite = suite @ [ Alcotest.test_case "alternate trees" `Quick test_gossip_alternate_trees ]
