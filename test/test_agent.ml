module Graph = Netgraph.Graph
module Walker = Agent.Walker
module Explore = Agent.Explore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_advice = Bitstring.Bitbuf.create ()

let sample_graphs =
  [
    ("path", Netgraph.Gen.path 12);
    ("cycle", Netgraph.Gen.cycle 9);
    ("grid", Netgraph.Gen.grid ~rows:4 ~cols:4);
    ("complete", Netgraph.Gen.complete 8);
    ("lollipop", Netgraph.Gen.lollipop ~clique:5 ~tail:4);
    ("random", Netgraph.Gen.random_connected ~n:30 ~p:0.15 (Random.State.make [| 11 |]));
  ]

(* {1 DFS} *)

let test_dfs_covers_and_halts () =
  List.iter
    (fun (name, g) ->
      let o = Walker.run ~advice:no_advice g ~start:0 Explore.dfs in
      check_bool (name ^ " covered") true o.Walker.covered;
      check_bool (name ^ " halted") true o.Walker.halted;
      let n = Graph.n g and m = Graph.m g in
      let bound = (2 * (n - 1)) + (4 * (m - n + 1)) in
      check_bool
        (Printf.sprintf "%s: %d <= %d" name o.Walker.moves bound)
        true (o.Walker.moves <= bound))
    sample_graphs

let test_dfs_on_tree_is_2n () =
  let g = Netgraph.Gen.balanced_tree ~arity:2 ~depth:3 in
  let o = Walker.run ~advice:no_advice g ~start:0 Explore.dfs in
  check_bool "covered" true o.Walker.covered;
  check_int "2(n-1) moves on a tree" (2 * (Graph.n g - 1)) o.Walker.moves

let test_dfs_single_node () =
  let g = Netgraph.Gen.path 1 in
  let o = Walker.run ~advice:no_advice g ~start:0 Explore.dfs in
  check_bool "covered" true o.Walker.covered;
  check_bool "halted" true o.Walker.halted;
  check_int "no moves" 0 o.Walker.moves

(* {1 Rotor router} *)

let test_rotor_covers_within_bound () =
  List.iter
    (fun (name, g) ->
      let m = Graph.m g in
      let d = Netgraph.Traverse.diameter g in
      let budget = (4 * m * (d + 1)) + (2 * m) in
      let o = Walker.run ~max_moves:budget ~advice:no_advice g ~start:0 Explore.rotor_router in
      check_bool (name ^ " covered") true o.Walker.covered;
      match o.Walker.moves_to_cover with
      | Some c -> check_bool (Printf.sprintf "%s: cover %d within budget" name c) true (c <= budget)
      | None -> Alcotest.fail (name ^ ": no cover point recorded"))
    sample_graphs

let test_rotor_never_halts () =
  let g = Netgraph.Gen.cycle 5 in
  let o = Walker.run ~max_moves:100 ~advice:no_advice g ~start:0 Explore.rotor_router in
  check_bool "still walking" false o.Walker.halted;
  check_int "all budget used" 100 o.Walker.moves

(* {1 Random walk} *)

let test_random_walk_covers () =
  let g = Netgraph.Gen.grid ~rows:4 ~cols:4 in
  let o =
    Walker.run
      ~max_moves:(100 * Graph.m g * Graph.n g)
      ~advice:no_advice g ~start:0 (Explore.random_walk ~seed:3)
  in
  check_bool "covered" true o.Walker.covered

let test_random_walk_deterministic_in_seed () =
  let g = Netgraph.Gen.cycle 7 in
  let run seed =
    (Walker.run ~max_moves:500 ~advice:no_advice g ~start:0 (Explore.random_walk ~seed))
      .Walker.moves_to_cover
  in
  Alcotest.(check (option int)) "same seed same walk" (run 9) (run 9)

(* {1 Guided} *)

let test_guided_is_optimal () =
  List.iter
    (fun (name, g) ->
      let route = Explore.route_advice g ~start:0 in
      let o = Walker.run ~advice:route g ~start:0 Explore.guided in
      check_bool (name ^ " covered") true o.Walker.covered;
      check_bool (name ^ " halted") true o.Walker.halted;
      check_int (name ^ " moves") (2 * (Graph.n g - 1)) o.Walker.moves;
      check_int (name ^ " route length") (Explore.route_moves g ~start:0) o.Walker.moves)
    sample_graphs

let test_guided_beats_dfs_on_dense () =
  let g = Netgraph.Gen.complete 16 in
  let dfs = Walker.run ~advice:no_advice g ~start:0 Explore.dfs in
  let route = Explore.route_advice g ~start:0 in
  let guided = Walker.run ~advice:route g ~start:0 Explore.guided in
  check_bool "oracle pays off" true (guided.Walker.moves * 2 < dfs.Walker.moves)

let test_guided_route_ends_at_start () =
  (* The tour is closed: replaying it twice is legal and returns home. *)
  let g = Netgraph.Gen.grid ~rows:3 ~cols:3 in
  let route = Explore.route_advice g ~start:4 in
  let o = Walker.run ~advice:route g ~start:4 Explore.guided in
  check_bool "covered from inner start" true o.Walker.covered

(* {1 Walker mechanics} *)

let test_walker_rejects_bad_port () =
  let bad =
    {
      Walker.program_name = "bad";
      start = (fun ~advice:_ () _ -> Walker.Move 99);
    }
  in
  let g = Netgraph.Gen.path 3 in
  match Walker.run ~advice:no_advice g ~start:0 bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected port range error"

let test_walker_budget () =
  let spin =
    {
      Walker.program_name = "spin";
      start = (fun ~advice:_ () (_ : Walker.view) -> Walker.Move 0);
    }
  in
  let g = Netgraph.Gen.path 2 in
  let o = Walker.run ~max_moves:10 ~advice:no_advice g ~start:0 spin in
  check_bool "not halted" false o.Walker.halted;
  check_int "hit budget" 10 o.Walker.moves

let qcheck_programs_cover =
  QCheck.Test.make ~name:"dfs and guided cover random graphs" ~count:40
    QCheck.(pair (int_range 2 40) (int_range 0 999))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.2 st in
      let start = seed mod n in
      let dfs = Walker.run ~advice:no_advice g ~start Explore.dfs in
      let route = Explore.route_advice g ~start in
      let guided = Walker.run ~advice:route g ~start Explore.guided in
      dfs.Walker.covered && dfs.Walker.halted && guided.Walker.covered
      && guided.Walker.moves = 2 * (n - 1))

let suite =
  [
    Alcotest.test_case "dfs covers and halts" `Quick test_dfs_covers_and_halts;
    Alcotest.test_case "dfs on a tree" `Quick test_dfs_on_tree_is_2n;
    Alcotest.test_case "dfs on a single node" `Quick test_dfs_single_node;
    Alcotest.test_case "rotor covers within O(mD)" `Quick test_rotor_covers_within_bound;
    Alcotest.test_case "rotor never halts" `Quick test_rotor_never_halts;
    Alcotest.test_case "random walk covers" `Quick test_random_walk_covers;
    Alcotest.test_case "random walk deterministic in seed" `Quick
      test_random_walk_deterministic_in_seed;
    Alcotest.test_case "guided tour is 2(n-1)" `Quick test_guided_is_optimal;
    Alcotest.test_case "oracle pays off on dense graphs" `Quick test_guided_beats_dfs_on_dense;
    Alcotest.test_case "guided from inner start" `Quick test_guided_route_ends_at_start;
    Alcotest.test_case "bad port rejected" `Quick test_walker_rejects_bad_port;
    Alcotest.test_case "move budget" `Quick test_walker_budget;
    QCheck_alcotest.to_alcotest qcheck_programs_cover;
  ]
