open Netgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_initial () =
  let d = Dsu.create 5 in
  check_int "components" 5 (Dsu.components d);
  for i = 0 to 4 do
    check_int (Printf.sprintf "find %d" i) i (Dsu.find d i);
    check_int (Printf.sprintf "size %d" i) 1 (Dsu.size d i)
  done;
  check_int "roots" 5 (List.length (Dsu.roots d))

let test_union () =
  let d = Dsu.create 6 in
  check_bool "fresh union" true (Dsu.union d 0 1);
  check_bool "already joined" false (Dsu.union d 1 0);
  check_bool "chain" true (Dsu.union d 1 2);
  check_int "component size" 3 (Dsu.size d 0);
  check_int "components" 4 (Dsu.components d);
  check_int "same root" (Dsu.find d 0) (Dsu.find d 2)

let test_union_all () =
  let d = Dsu.create 100 in
  for i = 1 to 99 do
    ignore (Dsu.union d 0 i)
  done;
  check_int "one component" 1 (Dsu.components d);
  check_int "full size" 100 (Dsu.size d 57);
  check_int "single root" 1 (List.length (Dsu.roots d))

let test_roots_are_representatives () =
  let d = Dsu.create 8 in
  ignore (Dsu.union d 0 1);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 0 3);
  let roots = Dsu.roots d in
  check_int "5 components" 5 (List.length roots);
  List.iter (fun r -> check_int "root is its own find" r (Dsu.find d r)) roots

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial;
    Alcotest.test_case "union/find" `Quick test_union;
    Alcotest.test_case "union everything" `Quick test_union_all;
    Alcotest.test_case "roots are representatives" `Quick test_roots_are_representatives;
  ]
