open Netgraph

let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub haystack i ln = needle || loop (i + 1)) in
  loop 0

let test_graph_export () =
  let g = Gen.path 3 in
  let dot = Dot.graph g in
  check_bool "header" true (contains dot "graph network {");
  check_bool "node 0" true (contains dot "n0 [label=\"0:1\"]");
  check_bool "edge" true (contains dot "n0 -- n1");
  check_bool "ports shown" true (contains dot "taillabel=\"0\"");
  check_bool "closed" true (contains dot "}")

let test_highlight () =
  let g = Gen.cycle 4 in
  let e = List.hd (Graph.edges g) in
  let dot = Dot.graph ~highlight:[ e ] g in
  check_bool "red edge" true (contains dot "color=red")

let test_spanning_export () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let tree = Spanning.bfs g ~root:4 in
  let dot = Dot.spanning g tree in
  check_bool "root marked" true (contains dot "n4 [label=\"4:5\" style=filled fillcolor=gold]");
  (* n-1 tree edges are highlighted *)
  let count_red =
    List.length
      (List.filter (fun line -> contains line "color=red") (String.split_on_char '\n' dot))
  in
  Alcotest.(check int) "8 tree edges red" 8 count_red

let suite =
  [
    Alcotest.test_case "graph export" `Quick test_graph_export;
    Alcotest.test_case "highlighted edges" `Quick test_highlight;
    Alcotest.test_case "spanning tree export" `Quick test_spanning_export;
  ]
