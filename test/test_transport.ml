(* The TCP transport under the distributed sweep protocol: host:port
   parsing, the listener/connect pair over real loopback sockets, frame
   reassembly under 1-byte reads and mid-CRC splits, the network-chaos
   shim (delay one-shot, trickle sticky, content never altered), the
   chaos hook's network-directive semantics, and the authentication
   guarantee — a peer announcing the wrong token is condemned before a
   single frame is sent to it.  The end-to-end tests drive the real
   oraclesize binary with --listen/--connect and assert the headline
   invariant: sweep bytes are identical at any local/remote worker mix,
   under partitions, trickles, and kills. *)

module Transport = Sim.Transport
module Worker = Sim.Worker
module Journal = Sim.Journal
module Chaos = Fault.Chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* {1 Helpers} *)

let listen_or_fail () =
  match Transport.listen ~port:0 () with
  | Ok l -> l
  | Error e -> Alcotest.failf "listen: %s" e

let connect_or_fail port =
  match
    Transport.connect ~read_timeout:10. ~host:"127.0.0.1" ~port ~attempts:20 ~retry_delay:0.1 ()
  with
  | Ok fd -> fd
  | Error e -> Alcotest.failf "connect: %s" e

(* The listener fd is nonblocking; poll it briefly — the connect above
   has already completed the TCP handshake, so the queue is non-empty
   or about to be. *)
let accept_or_fail l =
  let deadline = Unix.gettimeofday () +. 5. in
  let rec go () =
    match Transport.accept l with
    | Some (fd, _) -> fd
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "accept timed out";
      ignore (Unix.select [ Transport.listener_fd l ] [] [] 0.2);
      go ()
  in
  go ()

let sample_entry =
  {
    Journal.n = 24;
    m = 31;
    messages = 120;
    rounds = 17;
    advice_bits = 96;
    raw_advice_bits = 48;
    faults = 2;
    fallbacks = 1;
    tampered = 0;
    retransmits = 3;
    corrected_bits = 0;
    informed = 24;
    verdict_class = Journal.Degraded;
    verdict = "degraded: advice-fallback(1)";
  }

let context = { Journal.spec = "ns=16"; extra = "protect=raw;retry=0" }

(* {1 parse_hostport} *)

let test_parse_hostport () =
  (match Transport.parse_hostport "127.0.0.1:9000" with
  | Ok ("127.0.0.1", 9000) -> ()
  | Ok (h, p) -> Alcotest.failf "parsed as %s:%d" h p
  | Error e -> Alcotest.fail e);
  (match Transport.parse_hostport "sweep-host.example:1" with
  | Ok ("sweep-host.example", 1) -> ()
  | _ -> Alcotest.fail "hostname:1 should parse");
  (match Transport.parse_hostport "h:65535" with
  | Ok (_, 65535) -> ()
  | _ -> Alcotest.fail "port 65535 should parse");
  List.iter
    (fun s ->
      match Transport.parse_hostport s with
      | Error _ -> ()
      | Ok (h, p) -> Alcotest.failf "%S should not parse (got %s:%d)" s h p)
    [ "nohost"; ":80"; "h:"; "h:0"; "h:65536"; "h:-1"; "h:banana"; "" ]

(* {1 The shim} *)

(* A delayed write stalls once, then the shim disarms itself; content
   arrives bit-for-bit regardless. *)
let test_shim_delay_one_shot () =
  let s = Transport.Shim.create () in
  let r, w = Unix.pipe () in
  let io = Transport.shimmed s (Transport.fd_io ~input:r ~output:w) in
  s.Transport.Shim.delay_s <- 0.05;
  let t0 = Unix.gettimeofday () in
  io.Transport.write "hello";
  let dt = Unix.gettimeofday () -. t0 in
  check_bool "delayed write stalled" true (dt >= 0.04);
  check_bool "delay disarmed after one write" true (s.Transport.Shim.delay_s = 0.);
  io.Transport.write " world";
  check_bool "delay stayed disarmed" true (s.Transport.Shim.delay_s = 0.);
  let buf = Bytes.create 64 in
  let rec read_exactly acc want =
    if String.length acc >= want then acc
    else
      let n = io.Transport.read buf in
      read_exactly (acc ^ Bytes.sub_string buf 0 n) want
  in
  check_string "content unaltered" "hello world" (read_exactly "" 11);
  io.Transport.close ();
  io.Transport.close () (* idempotent *)

(* {1 Loopback sockets and frame reassembly} *)

(* A trickled client writes every frame one byte at a time over real
   TCP; a 1-byte-buffer reader reassembles them via Rx.  Every message
   must survive byte-for-byte (re-encoding the parse equals the
   original encoding). *)
let test_rx_trickled_loopback_one_byte_reads () =
  let l = listen_or_fail () in
  let cfd = connect_or_fail (Transport.bound_port l) in
  let sfd = accept_or_fail l in
  Transport.close_listener l;
  let shim = Transport.Shim.create () in
  shim.Transport.Shim.trickle <- true;
  let cio = Transport.shimmed shim (Transport.socket_io cfd) in
  let sio = Transport.socket_io sfd in
  let msgs =
    [
      Worker.Hello { worker = 1; wire_version = Worker.wire_version; auth = "tok" };
      Worker.Heartbeat { worker = 1; count = 3 };
      Worker.Result { index = 5; result = Ok sample_entry };
      Worker.Result { index = 6; result = Error "task blew up" };
      Worker.Shutdown;
    ]
  in
  List.iter (fun m -> cio.Transport.write (Worker.encode m)) msgs;
  let rx = Worker.Rx.create () in
  let buf = Bytes.create 1 in
  let rec collect acc remaining =
    if remaining = 0 then List.rev acc
    else
      match Worker.Rx.next rx with
      | Error e -> Alcotest.failf "rx: %s" e
      | Ok (Some f) -> (
        match Worker.parse f with
        | Ok m -> collect (m :: acc) (remaining - 1)
        | Error e -> Alcotest.failf "parse: %s" e)
      | Ok None ->
        let n = sio.Transport.read buf in
        check_int "one byte per read" 1 n;
        Worker.Rx.feed rx buf n;
        collect acc remaining
  in
  let got = collect [] (List.length msgs) in
  List.iter2
    (fun sent received ->
      check_string "message survives the trickle byte-for-byte" (Worker.encode sent)
        (Worker.encode received))
    msgs got;
  cio.Transport.close ();
  sio.Transport.close ()

(* A frame cut two bytes into its 4-byte CRC trailer must read as "feed
   me more", never as an error — and complete cleanly once the rest
   arrives. *)
let test_rx_split_mid_crc_trailer () =
  let l = listen_or_fail () in
  let cfd = connect_or_fail (Transport.bound_port l) in
  let sfd = accept_or_fail l in
  Transport.close_listener l;
  let cio = Transport.socket_io cfd in
  let sio = Transport.socket_io sfd in
  let wire = Worker.encode (Worker.Result { index = 9; result = Ok sample_entry }) in
  let cut = String.length wire - 2 in
  cio.Transport.write (String.sub wire 0 cut);
  let rx = Worker.Rx.create () in
  let buf = Bytes.create 4096 in
  let rec pump want =
    if want > 0 then begin
      let n = sio.Transport.read buf in
      Worker.Rx.feed rx buf n;
      pump (want - n)
    end
  in
  pump cut;
  (match Worker.Rx.next rx with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "truncated frame decoded"
  | Error e -> Alcotest.failf "mid-CRC split is an error: %s" e);
  check_int "all fed bytes still pending" cut (Worker.Rx.pending rx);
  cio.Transport.write (String.sub wire cut 2);
  pump 2;
  (match Worker.Rx.next rx with
  | Ok (Some f) -> (
    match Worker.parse f with
    | Ok (Worker.Result { index = 9; result = Ok e }) ->
      check_bool "entry intact" true (e = sample_entry)
    | _ -> Alcotest.fail "completed frame did not parse")
  | Ok None -> Alcotest.fail "frame still incomplete after final bytes"
  | Error e -> Alcotest.failf "rx: %s" e);
  check_int "nothing left over" 0 (Worker.Rx.pending rx);
  cio.Transport.close ();
  sio.Transport.close ()

(* {1 Chaos hook network semantics} *)

let test_hook_network_directives () =
  let shim = Transport.Shim.create () in
  let c =
    Chaos.of_string_exn
      "delay:worker=0,after=1,ms=50;trickle:worker=0,after=2;partition:worker=0,after=3,for=250;kill:worker=0,after=5"
  in
  let h = Chaos.hook ~net:shim c ~worker:0 in
  check_bool "nothing due yet" true (h ~completed:0 = `Continue);
  check_bool "shim untouched" true
    (shim.Transport.Shim.delay_s = 0. && not shim.Transport.Shim.trickle);
  check_bool "due delay continues" true (h ~completed:1 = `Continue);
  check_bool "delay armed" true (shim.Transport.Shim.delay_s = 0.05);
  shim.Transport.Shim.delay_s <- 0.;
  check_bool "second consult continues" true (h ~completed:1 = `Continue);
  check_bool "delay consumed, not re-armed" true (shim.Transport.Shim.delay_s = 0.);
  check_bool "due trickle continues" true (h ~completed:2 = `Continue);
  check_bool "trickle armed" true shim.Transport.Shim.trickle;
  (match h ~completed:3 with
  | `Partition s -> check_bool "partition duration in seconds" true (abs_float (s -. 0.25) < 1e-9)
  | _ -> Alcotest.fail "due partition should fire");
  check_bool "partition consumed" true (h ~completed:4 = `Continue);
  check_bool "kill fires" true (h ~completed:5 = `Kill);
  check_bool "kill stays armed" true (h ~completed:9 = `Kill);
  (* Without a shim, network directives are consumed silently. *)
  let h2 = Chaos.hook c ~worker:0 in
  check_bool "no shim: delay/trickle are no-ops" true (h2 ~completed:2 = `Continue)

(* {1 Authentication at the dispatch} *)

(* A raw TCP client announcing the wrong token must be condemned before
   the supervisor sends it anything at all — zero bytes received, not
   even the config frame — and the sweep must still complete through
   the in-process fallback. *)
let test_auth_failure_condemned_before_any_frame () =
  let l = listen_or_fail () in
  let port = Transport.bound_port l in
  let logs = Buffer.create 256 in
  let d =
    Sim.Dispatch.create ~workers:0 ~heartbeat_timeout:0.5 ~join_grace:2.0 ~token:"sekrit"
      ~listener:l ~expect_remote:1
      ~log:(fun m -> Buffer.add_string logs (m ^ "\n"))
      ~command:(fun ~id:_ -> [| "/nonexistent" |])
      ~context
      ~fallback:(fun i -> Ok { sample_entry with Journal.n = i })
      ()
  in
  let client =
    Domain.spawn (fun () ->
        match
          Transport.connect ~read_timeout:10. ~host:"127.0.0.1" ~port ~attempts:20
            ~retry_delay:0.1 ()
        with
        | Error e -> Error e
        | Ok fd ->
          let io = Transport.socket_io fd in
          io.Transport.write
            (Worker.encode
               (Worker.Hello { worker = 9; wire_version = Worker.wire_version; auth = "wrong" }));
          let buf = Bytes.create 4096 in
          let rec drain n =
            match io.Transport.read buf with
            | 0 -> n
            | k -> drain (n + k)
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> n
          in
          let n = drain 0 in
          io.Transport.close ();
          Ok n)
  in
  Fun.protect
    ~finally:(fun () -> Sim.Dispatch.shutdown d)
    (fun () ->
      let results = Sim.Dispatch.run d [| 0; 1; 2; 3 |] in
      check_int "all indices answered" 4 (Array.length results);
      Array.iteri
        (fun i r ->
          match r with
          | Ok e -> check_int "fallback entry" i e.Journal.n
          | Error m -> Alcotest.failf "slot %d errored: %s" i m)
        results;
      (match Domain.join client with
      | Ok 0 -> ()
      | Ok n -> Alcotest.failf "unauthenticated peer received %d bytes" n
      | Error e -> Alcotest.failf "client: %s" e);
      let s = Sim.Dispatch.stats d in
      check_bool "auth failure counted" true (s.Sim.Dispatch.auth_failures >= 1);
      check_bool "connection counted" true (s.Sim.Dispatch.connected >= 1);
      check_int "sweep completed inline" 4 s.Sim.Dispatch.inline_tasks;
      let mentions needle hay =
        let n = String.length hay and m = String.length needle in
        let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
        scan 0
      in
      check_bool "condemnation logged" true
        (mentions "authentication failed" (Buffer.contents logs)))

(* The mirror image: the right token is answered with the config frame
   before anything else. *)
let test_auth_success_receives_config_first () =
  let l = listen_or_fail () in
  let port = Transport.bound_port l in
  let d =
    Sim.Dispatch.create ~workers:0 ~heartbeat_timeout:0.5 ~join_grace:2.0 ~token:"sekrit"
      ~listener:l ~expect_remote:1
      ~log:(fun _ -> ())
      ~command:(fun ~id:_ -> [| "/nonexistent" |])
      ~context
      ~fallback:(fun i -> Ok { sample_entry with Journal.n = i })
      ()
  in
  let client =
    Domain.spawn (fun () ->
        match
          Transport.connect ~read_timeout:10. ~host:"127.0.0.1" ~port ~attempts:20
            ~retry_delay:0.1 ()
        with
        | Error e -> Error e
        | Ok fd ->
          let io = Transport.socket_io fd in
          io.Transport.write
            (Worker.encode
               (Worker.Hello { worker = 9; wire_version = Worker.wire_version; auth = "sekrit" }));
          let rx = Worker.Rx.create () in
          let buf = Bytes.create 4096 in
          let rec first_frame () =
            match Worker.Rx.next rx with
            | Ok (Some f) -> Worker.parse f
            | Ok None ->
              let n = io.Transport.read buf in
              if n = 0 then Error "eof before any frame"
              else begin
                Worker.Rx.feed rx buf n;
                first_frame ()
              end
            | Error e -> Error e
          in
          let r = first_frame () in
          (* Hang up without serving: the supervisor must condemn us and
             finish through the fallback. *)
          io.Transport.close ();
          r)
  in
  Fun.protect
    ~finally:(fun () -> Sim.Dispatch.shutdown d)
    (fun () ->
      let results = Sim.Dispatch.run d [| 0; 1; 2 |] in
      check_int "all indices answered despite the defector" 3 (Array.length results);
      Array.iter
        (function Ok _ -> () | Error m -> Alcotest.failf "errored: %s" m)
        results;
      match Domain.join client with
      | Ok (Worker.Config ctx) ->
        check_string "config spec matches" context.Journal.spec ctx.Journal.spec;
        check_string "config extra matches" context.Journal.extra ctx.Journal.extra
      | Ok _ -> Alcotest.fail "first frame after auth was not the config"
      | Error e -> Alcotest.failf "client: %s" e)

(* {1 End-to-end: the real binary over loopback TCP} *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sh cmd =
  match Unix.system cmd with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n

let temp_out name = Filename.temp_file ("oracle-transport-" ^ name) ".out"

let exe = "../bin/oraclesize.exe"
let e2e_grid = "protocols=wakeup,broadcast;ns=16,24;reps=2;seed=7"

(* An ephemeral port, released immediately for the supervisor to bind.
   Workers racing ahead of the bind just retry ECONNREFUSED. *)
let free_port () =
  let l = listen_or_fail () in
  let p = Transport.bound_port l in
  Transport.close_listener l;
  p

let mentions needle hay =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

(* The headline invariant, over real sockets: sweep bytes are identical
   at any local/remote worker mix, under partitions, trickles, and
   kills — and the supervisor's log proves each death-bearing schedule
   actually condemned someone. *)
let test_tcp_determinism_grid () =
  let base = temp_out "base" in
  check_int "baseline sweep" 0
    (sh (Printf.sprintf "%s sweep %S --out %s 2>/dev/null" exe e2e_grid base));
  let baseline = read_file base in
  check_bool "baseline is non-empty" true (String.length baseline > 0);
  (* (local workers, [(remote id, remote chaos)], supervisor chaos,
     expect a condemnation in the log) *)
  let scenarios =
    [
      (0, [ (10, "") ], "", false);
      (0, [ (10, "trickle:worker=10,after=0"); (11, "") ], "", false);
      (1, [ (10, "trickle:worker=10,after=0") ], "", false);
      ( 2,
        [ (10, "partition:worker=10,after=0,for=1500"); (11, "trickle:worker=11,after=0") ],
        "kill:worker=1,after=0",
        true );
      (7, [ (10, "trickle:worker=10,after=0") ], "", false);
    ]
  in
  List.iter
    (fun (locals, remotes, sup_chaos, expect_death) ->
      let name =
        Printf.sprintf "locals=%d remotes=%d chaos=%s" locals (List.length remotes) sup_chaos
      in
      let port = free_port () in
      let out = temp_out "tcp" in
      let errf = temp_out "tcp-err" in
      List.iter
        (fun (id, chaos) ->
          let chaos_flag = if chaos = "" then "" else Printf.sprintf "--chaos '%s'" chaos in
          check_int (name ^ ": worker launches") 0
            (sh
               (Printf.sprintf "%s worker --connect 127.0.0.1:%d --id %d --token tcptest %s 2>>%s &"
                  exe port id chaos_flag errf)))
        remotes;
      let chaos_flag = if sup_chaos = "" then "" else Printf.sprintf "--chaos '%s'" sup_chaos in
      let cmd =
        Printf.sprintf
          "%s sweep %S --out %s --workers %d --listen %d --expect-remote %d --token tcptest \
           --batch 1 --heartbeat-timeout 1 %s 2>>%s"
          exe e2e_grid out locals port (List.length remotes) chaos_flag errf
      in
      check_int (name ^ " exits 0") 0 (sh cmd);
      check_bool (name ^ " bytes match the in-process baseline") true
        (read_file out = baseline);
      let err = read_file errf in
      check_bool (name ^ " handshook every remote") true (mentions "joined from" err);
      if expect_death then
        check_bool (name ^ " condemned at least one worker") true (mentions "dead:" err);
      Sys.remove out;
      Sys.remove errf)
    scenarios;
  Sys.remove base

(* A worker with the wrong token never taints the sweep: the supervisor
   condemns every announce, eventually degrades, and still produces the
   baseline bytes in-process. *)
let test_tcp_auth_rejection_e2e () =
  let base = temp_out "auth-base" in
  check_int "baseline sweep" 0
    (sh (Printf.sprintf "%s sweep %S --out %s 2>/dev/null" exe e2e_grid base));
  let baseline = read_file base in
  let port = free_port () in
  let out = temp_out "auth" in
  let errf = temp_out "auth-err" in
  check_int "impostor worker launches" 0
    (sh
       (Printf.sprintf "%s worker --connect 127.0.0.1:%d --id 10 --token wrongpass 2>>%s &" exe
          port errf));
  check_int "sweep still exits 0" 0
    (sh
       (Printf.sprintf
          "%s sweep %S --out %s --workers 0 --listen %d --expect-remote 1 --token sekrit \
           --heartbeat-timeout 1 2>>%s"
          exe e2e_grid out port errf));
  check_bool "bytes match the in-process baseline" true (read_file out = baseline);
  let err = read_file errf in
  check_bool "authentication failure logged" true (mentions "authentication failed" err);
  Sys.remove base;
  Sys.remove out;
  Sys.remove errf

(* {1 CLI validation of the transport flags} *)

let test_cli_validation () =
  let cli_error name cmd =
    check_int (name ^ " is a CLI error (124)") 124 (sh (cmd ^ " >/dev/null 2>/dev/null"))
  in
  let usage_error name cmd =
    check_int (name ^ " is a usage error (2)") 2 (sh (cmd ^ " >/dev/null 2>/dev/null"))
  in
  let sweep flags = Printf.sprintf "%s sweep %s %S" exe flags e2e_grid in
  cli_error "--listen 0" (sweep "--listen 0");
  cli_error "--listen 70000" (sweep "--listen 70000");
  cli_error "--listen banana" (sweep "--listen banana");
  cli_error "--batch 0" (sweep "--workers 1 --batch 0");
  cli_error "--heartbeat-timeout 0" (sweep "--workers 1 --heartbeat-timeout 0");
  cli_error "--heartbeat-timeout -1" (sweep "--workers 1 --heartbeat-timeout=-1");
  cli_error "--backoff-cap 0" (sweep "--workers 1 --backoff-cap 0");
  cli_error "--expect-remote -1" (sweep "--listen 29999 --expect-remote=-1");
  cli_error "empty --token" (sweep "--listen 29999 --token ''");
  usage_error "--token without --listen" (sweep "--token sekrit");
  usage_error "--expect-remote without --listen" (sweep "--expect-remote 1");
  cli_error "worker --id -1" (Printf.sprintf "%s worker --id=-1" exe);
  cli_error "worker --connect without port" (Printf.sprintf "%s worker --connect 127.0.0.1" exe);
  cli_error "worker --connect port 0" (Printf.sprintf "%s worker --connect 127.0.0.1:0" exe);
  cli_error "worker empty --token" (Printf.sprintf "%s worker --token ''" exe)

let suite =
  [
    Alcotest.test_case "parse_hostport accepts and rejects" `Quick test_parse_hostport;
    Alcotest.test_case "shim delay is one-shot and content-preserving" `Quick
      test_shim_delay_one_shot;
    Alcotest.test_case "Rx reassembles trickled frames from 1-byte socket reads" `Quick
      test_rx_trickled_loopback_one_byte_reads;
    Alcotest.test_case "Rx survives a split mid-CRC-trailer" `Quick test_rx_split_mid_crc_trailer;
    Alcotest.test_case "chaos hook arms and consumes network directives" `Quick
      test_hook_network_directives;
    Alcotest.test_case "wrong token is condemned before any frame is sent" `Quick
      test_auth_failure_condemned_before_any_frame;
    Alcotest.test_case "right token receives the config frame first" `Quick
      test_auth_success_receives_config_first;
    Alcotest.test_case "bytes identical at any local/remote mix under network chaos" `Slow
      test_tcp_determinism_grid;
    Alcotest.test_case "wrong-token worker cannot taint an end-to-end sweep" `Slow
      test_tcp_auth_rejection_e2e;
    Alcotest.test_case "CLI validates transport flags" `Slow test_cli_validation;
  ]
