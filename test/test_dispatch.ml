(* The adaptive batch scheduler: EWMA throughput accounting driven by
   synthetic clocks, batch-size clamping, the pure backoff schedule,
   per-address accept rate limiting at a live listener, and the
   headline end-to-end guarantee — `--batch auto` produces bytes
   identical to fixed batching at every worker count under every chaos
   schedule, while a deterministic straggler (the sticky `slow` shim
   fault) triggers tail-end speculation.  The end-to-end tests drive
   the real oraclesize binary, so real subprocesses straggle and die. *)

module Journal = Sim.Journal
module Worker = Sim.Worker
module Transport = Sim.Transport
module Dispatch = Sim.Dispatch
module Chaos = Fault.Chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_entry =
  {
    Journal.n = 24;
    m = 31;
    messages = 120;
    rounds = 17;
    advice_bits = 96;
    raw_advice_bits = 48;
    faults = 2;
    fallbacks = 1;
    tampered = 0;
    retransmits = 3;
    corrected_bits = 0;
    informed = 24;
    verdict_class = Journal.Degraded;
    verdict = "degraded: advice-fallback(1)";
  }

let context = { Journal.spec = "ns=16"; extra = "protect=raw;retry=0" }

(* {1 EWMA accounting} *)

(* Steady arrivals at rate r converge to r: with equal steps dt the
   recursion gives rate_n = r·(1 − e^(−n·dt/τ)), so enough steps pin
   the estimate to the true rate within any tolerance. *)
let test_ewma_converges_to_steady_rate () =
  let e = Dispatch.Ewma.create ~tau:0.5 () in
  Dispatch.Ewma.observe e ~now:0. ~tasks:0;
  for i = 1 to 40 do
    Dispatch.Ewma.observe e ~now:(0.1 *. float_of_int i) ~tasks:1
  done;
  let r = Dispatch.Ewma.rate e in
  check_bool (Printf.sprintf "steady 10/s converges (got %.3f)" r) true (abs_float (r -. 10.) < 0.2);
  check_int "total counts every task" 40 (Dispatch.Ewma.total e);
  (* Silence decays the estimate exponentially: observing zero tasks
     over a long interval must pull the rate toward zero. *)
  Dispatch.Ewma.observe e ~now:7. ~tasks:0;
  let r' = Dispatch.Ewma.rate e in
  check_bool (Printf.sprintf "idle interval decays the rate (got %.3f)" r') true (r' < 0.1)

let test_ewma_slowdown_tracks_new_rate () =
  let e = Dispatch.Ewma.create ~tau:0.5 () in
  Dispatch.Ewma.observe e ~now:0. ~tasks:0;
  for i = 1 to 30 do
    Dispatch.Ewma.observe e ~now:(0.1 *. float_of_int i) ~tasks:1
  done;
  let fast = Dispatch.Ewma.rate e in
  (* The worker degrades to one task per second. *)
  for i = 1 to 10 do
    Dispatch.Ewma.observe e ~now:(3. +. float_of_int i) ~tasks:1
  done;
  let slow = Dispatch.Ewma.rate e in
  check_bool (Printf.sprintf "slowdown tracked (%.2f -> %.2f)" fast slow) true (slow < fast /. 4.);
  check_bool (Printf.sprintf "new steady rate ~1/s (got %.3f)" slow) true
    (abs_float (slow -. 1.) < 0.2)

(* Events carried by a non-advancing clock are held, not dropped: the
   counts fold into the next real interval. *)
let test_ewma_conserves_same_instant_events () =
  let e = Dispatch.Ewma.create ~tau:1.0 () in
  Dispatch.Ewma.observe e ~now:1.0 ~tasks:3;
  Dispatch.Ewma.observe e ~now:1.0 ~tasks:2;
  check_int "pending events counted in total" 5 (Dispatch.Ewma.total e);
  check_bool "no rate before a real interval" true (Dispatch.Ewma.rate e = 0.);
  Dispatch.Ewma.observe e ~now:2.0 ~tasks:0;
  (* 5 events over 1s with tau=1: rate = (1 − e^(−1))·5 ≈ 3.16. *)
  let r = Dispatch.Ewma.rate e in
  check_bool (Printf.sprintf "pending credited to the interval (got %.3f)" r) true
    (abs_float (r -. (5. *. (1. -. exp (-1.)))) < 1e-6);
  (match Dispatch.Ewma.observe e ~now:3.0 ~tasks:(-1) with
  | () -> Alcotest.fail "negative tasks should raise"
  | exception Invalid_argument _ -> ());
  match Dispatch.Ewma.create ~tau:0. () with
  | _ -> Alcotest.fail "tau=0 should raise"
  | exception Invalid_argument _ -> ()

(* {1 Batch sizing and backoff} *)

let test_batch_for_clamps () =
  check_int "fixed ignores rate" 16 (Dispatch.batch_for (Dispatch.Fixed 16) ~rate:1000.);
  let auto = Dispatch.Auto { min_batch = 2; max_batch = 24 } in
  check_int "no estimate probes at min" 2 (Dispatch.batch_for auto ~rate:0.);
  check_int "slow worker clamps to min" 2 (Dispatch.batch_for auto ~rate:1.);
  check_int "fast worker clamps to max" 24 (Dispatch.batch_for auto ~rate:1_000_000.);
  (* rate·horizon in range: 40/s × 0.25s = 10 indices. *)
  check_int "mid-range sizes to the horizon" 10 (Dispatch.batch_for auto ~rate:40.);
  check_bool "horizon is a quarter second" true (abs_float (Dispatch.auto_horizon -. 0.25) < 1e-9)

let test_backoff_delay_schedule () =
  let d = Dispatch.backoff_delay ~base:0.05 ~cap:1.0 in
  check_bool "attempt 0 is immediate" true (d ~attempt:0 = 0.);
  check_bool "attempt 1 is the base" true (abs_float (d ~attempt:1 -. 0.05) < 1e-9);
  check_bool "attempt 2 doubles" true (abs_float (d ~attempt:2 -. 0.1) < 1e-9);
  check_bool "attempt 3 doubles again" true (abs_float (d ~attempt:3 -. 0.2) < 1e-9);
  check_bool "capped" true (d ~attempt:30 = 1.0)

(* {1 Accept rate limiting} *)

let listen_or_fail () =
  match Transport.listen ~port:0 () with
  | Ok l -> l
  | Error e -> Alcotest.failf "listen: %s" e

(* Six rapid connections from one address against a bucket of burst 2:
   exactly two are accepted, four are closed before any byte is read —
   and the accept budget (expect_remote + max_rejoin = 3 here) is NOT
   burned by the over-limit closes, which a seventh, post-refill
   connection proves by still being accepted. *)
let test_accept_rate_limit_spares_budget () =
  let l = listen_or_fail () in
  let port = Transport.bound_port l in
  let d =
    Dispatch.create ~workers:0 ~heartbeat_timeout:1.0 ~join_grace:3.0 ~listener:l
      ~expect_remote:1 ~max_rejoin:2 ~accept_rate:1.0 ~accept_burst:2
      ~log:(fun _ -> ())
      ~command:(fun ~id:_ -> [| "/nonexistent" |])
      ~context
      ~fallback:(fun i -> Ok { sample_entry with Journal.n = i })
      ()
  in
  let client =
    Domain.spawn (fun () ->
        let connect () =
          match
            Transport.connect ~read_timeout:10. ~host:"127.0.0.1" ~port ~attempts:20
              ~retry_delay:0.1 ()
          with
          | Ok fd -> Some fd
          | Error _ -> None
        in
        (* The listener's backlog holds these even before the dispatch
           polls, so the burst genuinely lands inside one refill
           window. *)
        let flood = List.filter_map (fun _ -> connect ()) [ 1; 2; 3; 4; 5; 6 ] in
        Unix.sleepf 1.5;
        (* One token has refilled (1/s); the budget must still have
           room because over-limit closes did not consume it. *)
        let late = connect () in
        Unix.sleepf 0.5;
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) flood;
        (match late with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        List.length flood + Option.fold ~none:0 ~some:(fun _ -> 1) late)
  in
  Fun.protect
    ~finally:(fun () -> Dispatch.shutdown d)
    (fun () ->
      let results = Dispatch.run d [| 0; 1; 2; 3 |] in
      check_int "all indices answered" 4 (Array.length results);
      let attempted = Domain.join client in
      check_int "client made all its connections" 7 attempted;
      let s = Dispatch.stats d in
      check_int "burst of 2, then one refilled token accepted" 3 s.Dispatch.connected;
      check_int "the four over-limit connections were closed unaccepted" 4
        s.Dispatch.rate_limited;
      check_int "everything ran inline in the end" 4 s.Dispatch.inline_tasks)

(* {1 The slow (sticky stall) network fault} *)

let test_slow_shim_is_sticky () =
  let c = Chaos.of_string_exn "slow:worker=0,after=1,ms=30" in
  let s = Transport.Shim.create () in
  let h = Chaos.hook ~net:s c ~worker:0 in
  check_bool "not armed before threshold" true (h ~completed:0 = `Continue && s.slow_s = 0.);
  check_bool "continues at threshold" true (h ~completed:1 = `Continue);
  check_bool "armed at threshold" true (abs_float (s.slow_s -. 0.03) < 1e-9);
  check_bool "directive consumed" true (h ~completed:5 = `Continue);
  check_bool "shim stays armed (sticky)" true (abs_float (s.slow_s -. 0.03) < 1e-9);
  (* Unlike delay, the stall taxes every write. *)
  let sink = Buffer.create 64 in
  let io =
    Transport.
      {
        read = (fun _ -> 0);
        write = (fun data -> Buffer.add_string sink data);
        close = (fun () -> ());
      }
  in
  let shimmed = Transport.shimmed s io in
  let t0 = Unix.gettimeofday () in
  shimmed.Transport.write "one";
  shimmed.Transport.write "two";
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool (Printf.sprintf "both writes stalled (%.3fs)" elapsed) true (elapsed >= 0.055);
  check_bool "content untouched" true (Buffer.contents sink = "onetwo")

(* {1 End-to-end: the real binary} *)

let exe = "../bin/oraclesize.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sh cmd =
  match Unix.system cmd with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n

let temp_out name = Filename.temp_file ("oracle-dispatch-" ^ name) ".out"
let e2e_grid = "protocols=wakeup,broadcast;ns=16,24;reps=2;seed=7"

let mentions needle hay =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

(* Pull "key":<int> out of a --stats-out report without a JSON parser. *)
let stats_field report key =
  let tag = Printf.sprintf "\"%s\":" key in
  let n = String.length report and m = String.length tag in
  let rec find i = if i + m > n then None else if String.sub report i m = tag then Some (i + m) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while !stop < n && (match report.[!stop] with '0' .. '9' | '-' -> true | _ -> false) do
      incr stop
    done;
    int_of_string_opt (String.sub report start (!stop - start))

let test_cli_validates_batch_flags () =
  List.iter
    (fun (name, args, expect) ->
      check_int name expect
        (sh (Printf.sprintf "%s sweep %s %S >/dev/null 2>/dev/null" exe args e2e_grid)))
    [
      ("--batch banana is a CLI error", "--workers 2 --batch banana", 124);
      ("--batch 0 is a CLI error", "--workers 2 --batch 0", 124);
      ("--batch-min 0 is a CLI error", "--workers 2 --batch auto --batch-min 0", 124);
      ( "--batch-min above --batch-max is a CLI error",
        "--workers 2 --batch auto --batch-min 8 --batch-max 2",
        124 );
      ("--batch auto is accepted", "--workers 2 --batch auto", 0);
      ("--batch auto with explicit clamps", "--workers 2 --batch auto --batch-min 2 --batch-max 6", 0);
    ]

(* The headline invariant, adaptive edition: `--batch auto` output is
   byte-identical to the in-process baseline (and hence to every fixed
   batch size, which test_worker pins against the same baseline) at
   workers 1/2/7 under process, network, and straggler chaos.  The
   slow+kill schedule crosses both fault families: worker 1 straggles
   from task 0 while the healthy worker 0 — which deterministically
   reaches its third task — is killed mid-batch, forcing reassignment
   onto the straggler while first-result-wins keeps the bytes fixed.
   (Killing the straggler itself would be flaky: adaptive batching
   starves it, so it may never see the task that trips the kill.) *)
let test_adaptive_determinism_grid () =
  let base = temp_out "base" in
  check_int "baseline sweep" 0
    (sh (Printf.sprintf "%s sweep %S --out %s 2>/dev/null" exe e2e_grid base));
  let baseline = read_file base in
  check_bool "baseline is non-empty" true (String.length baseline > 0);
  let fixed = temp_out "fixed" in
  check_int "fixed --batch 5 sweep" 0
    (sh
       (Printf.sprintf "%s sweep %S --out %s --workers 2 --batch 5 2>/dev/null" exe e2e_grid
          fixed));
  check_bool "fixed bytes match baseline" true (read_file fixed = baseline);
  Sys.remove fixed;
  let scenarios =
    [
      (1, "none", false);
      (2, "none", false);
      (7, "none", false);
      (2, "kill:worker=1,after=0", true);
      (7, "kill:worker=2,after=0;kill:worker=5,after=0", true);
      (2, "garbage:worker=0,after=0;seed=9", true);
      (2, "slow:worker=1,after=0,ms=60;kill:worker=0,after=2", true);
    ]
  in
  List.iter
    (fun (workers, chaos, expect_death) ->
      let name = Printf.sprintf "auto workers=%d chaos=%s" workers chaos in
      let out = temp_out "auto" in
      let errf = temp_out "auto-err" in
      let chaos_flag = if chaos = "none" then "" else Printf.sprintf "--chaos '%s'" chaos in
      let cmd =
        Printf.sprintf
          "%s sweep %S --out %s --workers %d --batch auto --batch-min 1 --batch-max 4 \
           --heartbeat-timeout 1 %s 2>%s"
          exe e2e_grid out workers chaos_flag errf
      in
      check_int (name ^ " exits 0") 0 (sh cmd);
      check_bool (name ^ " bytes match baseline") true (read_file out = baseline);
      let err = read_file errf in
      if expect_death then check_bool (name ^ " killed at least one worker") true (mentions "dead:" err);
      Sys.remove out;
      Sys.remove errf)
    scenarios;
  Sys.remove base

(* A deterministic one-straggler fleet: worker 1 stalls 80 ms on every
   write from its first task, worker 0 is healthy.  Under `--batch
   auto` the fast worker must drain the grid and speculate the
   straggler's in-flight tail — visible in the --stats-out report —
   while the rows stay byte-identical to the in-process baseline. *)
let test_straggler_triggers_speculation () =
  let base = temp_out "spec-base" in
  check_int "baseline sweep" 0
    (sh (Printf.sprintf "%s sweep %S --out %s 2>/dev/null" exe e2e_grid base));
  let out = temp_out "spec-out" in
  let stats = temp_out "spec-stats" in
  check_int "straggler sweep exits 0" 0
    (sh
       (Printf.sprintf
          "%s sweep %S --out %s --workers 2 --batch auto --batch-min 1 --batch-max 4 \
           --chaos 'slow:worker=1,after=0,ms=80' --stats-out %s 2>/dev/null"
          exe e2e_grid out stats));
  check_bool "straggler bytes match baseline" true (read_file out = read_file base);
  let report = read_file stats in
  check_bool "report has a worker_stats block" true (mentions "\"worker_stats\":[" report);
  check_bool "report has EWMA throughput fields" true (mentions "\"ewma_tput\":" report);
  (match stats_field report "speculative_batches" with
  | Some n ->
    check_bool (Printf.sprintf "tail was speculated (%d batches)" n) true (n >= 1)
  | None -> Alcotest.fail "no speculative_batches field in the report");
  (match stats_field report "workers" with
  | Some n -> check_int "report names the worker count" 2 n
  | None -> Alcotest.fail "no workers field in the report");
  Sys.remove base;
  Sys.remove out;
  Sys.remove stats

let suite =
  [
    Alcotest.test_case "EWMA converges to a steady rate and decays when idle" `Quick
      test_ewma_converges_to_steady_rate;
    Alcotest.test_case "EWMA tracks a slowdown" `Quick test_ewma_slowdown_tracks_new_rate;
    Alcotest.test_case "EWMA conserves same-instant events and validates input" `Quick
      test_ewma_conserves_same_instant_events;
    Alcotest.test_case "batch_for clamps to [min,max] around rate x horizon" `Quick
      test_batch_for_clamps;
    Alcotest.test_case "backoff delay doubles from the base and caps" `Quick
      test_backoff_delay_schedule;
    Alcotest.test_case "accept rate limit closes over-limit peers without burning budget" `Slow
      test_accept_rate_limit_spares_budget;
    Alcotest.test_case "slow chaos directive arms a sticky per-write stall" `Quick
      test_slow_shim_is_sticky;
    Alcotest.test_case "CLI validates --batch auto and the min/max clamps" `Slow
      test_cli_validates_batch_flags;
    Alcotest.test_case "auto batching is byte-identical under chaos at 1/2/7 workers" `Slow
      test_adaptive_determinism_grid;
    Alcotest.test_case "a straggler triggers speculation and identical bytes" `Slow
      test_straggler_triggers_speculation;
  ]
