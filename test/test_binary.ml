open Bitstring

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let test_bits_values () =
  List.iter
    (fun (w, expected) -> check_int (Printf.sprintf "#2(%d)" w) expected (Binary.bits w))
    [ (0, 1); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (255, 8); (256, 9); (1023, 10) ]

let test_bits_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Binary.bits: negative") (fun () ->
      ignore (Binary.bits (-1)))

let test_ceil_log2 () =
  List.iter
    (fun (n, expected) -> check_int (Printf.sprintf "ceil_log2 %d" n) expected (Binary.ceil_log2 n))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4); (1024, 10); (1025, 11) ]

let test_floor_log2 () =
  List.iter
    (fun (n, expected) ->
      check_int (Printf.sprintf "floor_log2 %d" n) expected (Binary.floor_log2 n))
    [ (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9); (1024, 10) ]

let test_log_invalid () =
  Alcotest.check_raises "ceil 0" (Invalid_argument "Binary.ceil_log2") (fun () ->
      ignore (Binary.ceil_log2 0));
  Alcotest.check_raises "floor 0" (Invalid_argument "Binary.floor_log2") (fun () ->
      ignore (Binary.floor_log2 0))

let test_write_read_roundtrip () =
  List.iter
    (fun w ->
      let b = Bitbuf.create () in
      Binary.write b w;
      check_int (Printf.sprintf "length %d" w) (Binary.bits w) (Bitbuf.length b);
      let r = Bitbuf.reader b in
      check_int (Printf.sprintf "value %d" w) w (Binary.read r ~width:(Binary.bits w)))
    [ 0; 1; 2; 3; 5; 17; 100; 255; 4096 ]

let test_to_bools () =
  Alcotest.(check (list bool)) "5" [ true; false; true ] (Binary.to_bools 5);
  Alcotest.(check (list bool)) "0" [ false ] (Binary.to_bools 0);
  Alcotest.(check (list bool)) "1" [ true ] (Binary.to_bools 1);
  Alcotest.(check (list bool)) "8" [ true; false; false; false ] (Binary.to_bools 8)

let test_log2_factorial_small () =
  check_float "0!" 0.0 (Binary.log2_factorial 0);
  check_float "1!" 0.0 (Binary.log2_factorial 1);
  check_float "5!" (Float.log2 120.0) (Binary.log2_factorial 5);
  check_float "10!" (Float.log2 3628800.0) (Binary.log2_factorial 10)

let test_log2_factorial_stirling_continuity () =
  (* The exact/Stirling switchover must be seamless. *)
  let a = Binary.log2_factorial 4096 in
  let b = Binary.log2_factorial 4097 in
  let step = b -. a in
  Alcotest.(check bool)
    "step equals log2 4097"
    (Float.abs (step -. Float.log2 4097.0) < 1e-6)
    true

let test_log2_factorial_monotone () =
  let prev = ref neg_infinity in
  List.iter
    (fun n ->
      let v = Binary.log2_factorial n in
      Alcotest.(check bool) (Printf.sprintf "monotone at %d" n) true (v > !prev);
      prev := v)
    [ 2; 10; 100; 1000; 4095; 4096; 4097; 10000; 100000 ]

let test_log2_choose () =
  check_float "C(5,2)" (Float.log2 10.0) (Binary.log2_choose 5 2);
  check_float "C(10,0)" 0.0 (Binary.log2_choose 10 0);
  check_float "C(10,10)" 0.0 (Binary.log2_choose 10 10);
  Alcotest.(check bool) "k<0" true (Binary.log2_choose 5 (-1) = neg_infinity);
  Alcotest.(check bool) "k>n" true (Binary.log2_choose 5 6 = neg_infinity)

let test_log2_choose_symmetry () =
  check_float "C(20,7)=C(20,13)" (Binary.log2_choose 20 7) (Binary.log2_choose 20 13)

let test_log2_choose_pascal () =
  (* C(12,5) = C(11,4) + C(11,5), checked in linear space. *)
  let c a b = Float.exp2 (Binary.log2_choose a b) in
  Alcotest.(check (float 1e-6)) "pascal" (c 12 5) (c 11 4 +. c 11 5)

let suite =
  [
    Alcotest.test_case "#2 values" `Quick test_bits_values;
    Alcotest.test_case "#2 rejects negatives" `Quick test_bits_negative;
    Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
    Alcotest.test_case "floor_log2" `Quick test_floor_log2;
    Alcotest.test_case "log2 of 0 rejected" `Quick test_log_invalid;
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "to_bools" `Quick test_to_bools;
    Alcotest.test_case "log2_factorial small values" `Quick test_log2_factorial_small;
    Alcotest.test_case "log2_factorial Stirling continuity" `Quick
      test_log2_factorial_stirling_continuity;
    Alcotest.test_case "log2_factorial monotone" `Quick test_log2_factorial_monotone;
    Alcotest.test_case "log2_choose values" `Quick test_log2_choose;
    Alcotest.test_case "log2_choose symmetry" `Quick test_log2_choose_symmetry;
    Alcotest.test_case "log2_choose Pascal identity" `Quick test_log2_choose_pascal;
  ]
