(* Larger-scale runs: the same theorem claims at n in the thousands, to
   catch anything that only breaks past toy sizes (overflow, quadratic
   blowups, stack depth). *)

open Oracle_core
module Graph = Netgraph.Graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let big_sparse n = Netgraph.Gen.random_connected ~n ~p:(4.0 /. float_of_int n) (Random.State.make [| n |])

let test_wakeup_4096 () =
  let n = 4096 in
  let g = big_sparse n in
  let o = Wakeup.run g ~source:0 in
  check_bool "informed" true o.Wakeup.result.Sim.Runner.all_informed;
  check_int "n-1 messages" (n - 1) o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
  check_bool "advice within budget" true (o.Wakeup.advice_bits <= Bounds.wakeup_advice_upper ~n)

let test_broadcast_4096 () =
  let n = 4096 in
  let g = big_sparse n in
  let o = Broadcast.run g ~source:0 in
  check_bool "informed" true o.Broadcast.result.Sim.Runner.all_informed;
  check_bool "< 3n messages" true (o.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent < 3 * n);
  check_bool "<= 8n bits" true (o.Broadcast.advice_bits <= 8 * n);
  check_bool "contribution <= 4n" true (o.Broadcast.tree_contribution <= 4 * n)

let test_light_tree_deep_path () =
  (* A 20 000-node path: recursion depths and tree plumbing at scale. *)
  let n = 20_000 in
  let g = Netgraph.Gen.path n in
  let t = Netgraph.Spanning.light g ~root:0 in
  check_bool "valid" true (Netgraph.Spanning.check g t = Ok ());
  check_bool "within 4n" true
    (Netgraph.Spanning.contribution g (Netgraph.Spanning.edges t) <= 4 * n)

let test_gossip_2048 () =
  let n = 2048 in
  let g = big_sparse n in
  let o = Gossip.run g ~source:0 in
  check_bool "complete" true o.Gossip.complete;
  check_int "2(n-1)" (2 * (n - 1)) o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent

let test_counting_pipeline_large () =
  (* The threshold keeps its shape out to n = 2^18 without numeric
     trouble. *)
  let q n = Lower_bound.min_advice_for_linear_wakeup ~n ~budget_factor:3.0 in
  let q17 = q 131072 and q18 = q 262144 in
  check_bool "superlinear at scale" true (q18 > 2 * q17)

let test_wakeup_100k () =
  (* Theorem 2.1's exact count at n = 10^5: the ring-buffer/timer-wheel
     hot path must land on exactly n-1 messages, everyone informed,
     queue drained. *)
  let n = 100_000 in
  let g = Netgraph.Gen.path n in
  let o = Wakeup.run g ~source:0 in
  let r = o.Wakeup.result in
  check_bool "informed" true r.Sim.Runner.all_informed;
  check_bool "quiescent" true r.Sim.Runner.quiescent;
  check_int "n-1 messages" (n - 1) r.Sim.Runner.stats.Sim.Runner.sent

let test_broadcast_100k () =
  let n = 100_000 in
  let g = Netgraph.Gen.path n in
  let o = Broadcast.run g ~source:0 in
  let r = o.Broadcast.result in
  check_bool "informed" true r.Sim.Runner.all_informed;
  check_bool "quiescent" true r.Sim.Runner.quiescent;
  check_int "n-1 source messages" (n - 1) r.Sim.Runner.stats.Sim.Runner.source_sent;
  check_bool "< 3n messages" true (r.Sim.Runner.stats.Sim.Runner.sent < 3 * n)

let test_untraced_bit_identical () =
  (* The allocation-free path is an observer choice, not a semantics
     choice: with [record_trace:false] and no sinks the runner takes its
     no-allocation counting path, and every statistic must come out
     bit-identical to a fully traced run with a live counting sink —
     across fault plans (exercising the delay and retransmit timer
     wheels), schedulers and retry budgets. *)
  let g = big_sparse 512 in
  let no_advice _ = Bitstring.Bitbuf.create () in
  let configs =
    [
      ("none", 0);
      ("drop=0.1,seed=5", 3);
      ("delay=0.3:7,seed=9", 0);
      ("dup=0.05,reorder=3,seed=11", 0);
      ("drop=0.15,delay=0.2:5,crash=7@40,seed=13", 2);
    ]
  in
  List.iter
    (fun (spec, retry) ->
      let faults = Sim.Fault_plan.of_string_exn spec in
      List.iter
        (fun sched ->
          let name =
            Printf.sprintf "%s/%s/retry=%d" spec (Sim.Scheduler.name sched) retry
          in
          let collect, collected = Obs.Sink.collect () in
          let counts = Obs.Counting.create () in
          let traced =
            Sim.Runner.run ~scheduler:sched ~record_trace:true
              ~sinks:[ collect; Obs.Counting.sink counts ]
              ~faults ~retry ~advice:no_advice g ~source:0 Sim.Scheme.flooding
          in
          let bare =
            Sim.Runner.run ~scheduler:sched ~faults ~retry ~advice:no_advice g ~source:0
              Sim.Scheme.flooding
          in
          check_bool (name ^ ": stats identical") true
            (bare.Sim.Runner.stats = traced.Sim.Runner.stats);
          check_bool (name ^ ": informed identical") true
            (bare.Sim.Runner.informed = traced.Sim.Runner.informed);
          check_bool (name ^ ": quiescent identical") true
            (bare.Sim.Runner.quiescent = traced.Sim.Runner.quiescent);
          check_bool (name ^ ": load identical") true
            (bare.Sim.Runner.per_node_sent = traced.Sim.Runner.per_node_sent);
          check_bool (name ^ ": untraced run records no deliveries") true
            (bare.Sim.Runner.deliveries = []);
          check_int (name ^ ": trace length = deliveries")
            (List.length traced.Sim.Runner.deliveries)
            (Obs.Counting.summary counts).Obs.Counting.delivered;
          (* The replay audit closes the loop: the event stream alone
             reproduces the counters and balances the in-flight ledger. *)
          let r = Obs.Replay.replay ~n:(Graph.n g) (collected ()) in
          check_bool (name ^ ": replay counters") true
            (r.Obs.Replay.summary = Obs.Counting.summary counts);
          if traced.Sim.Runner.quiescent then
            check_int (name ^ ": replay in-flight balance") 0 r.Obs.Replay.in_flight)
        Sim.Scheduler.default_suite)
    configs

let test_separation_2048 () =
  let m = Separation.measure Netgraph.Families.Sparse_random ~n:2048 ~seed:227 in
  check_bool "wakeup ok" true m.Separation.wakeup_ok;
  check_bool "broadcast ok" true m.Separation.broadcast_ok;
  check_bool "ratio grown past 7" true (m.Separation.bits_ratio > 7.0)

let suite =
  [
    Alcotest.test_case "wakeup at n=4096" `Slow test_wakeup_4096;
    Alcotest.test_case "broadcast at n=4096" `Slow test_broadcast_4096;
    Alcotest.test_case "light tree on a 20k path" `Slow test_light_tree_deep_path;
    Alcotest.test_case "gossip at n=2048" `Slow test_gossip_2048;
    Alcotest.test_case "counting pipeline at n=2^18" `Slow test_counting_pipeline_large;
    Alcotest.test_case "separation at n=2048" `Slow test_separation_2048;
    Alcotest.test_case "wakeup at n=10^5" `Slow test_wakeup_100k;
    Alcotest.test_case "broadcast at n=10^5" `Slow test_broadcast_100k;
    Alcotest.test_case "untraced = traced, bit-identical" `Slow test_untraced_bit_identical;
  ]
