(* Larger-scale runs: the same theorem claims at n in the thousands, to
   catch anything that only breaks past toy sizes (overflow, quadratic
   blowups, stack depth). *)

open Oracle_core
module Graph = Netgraph.Graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let big_sparse n = Netgraph.Gen.random_connected ~n ~p:(4.0 /. float_of_int n) (Random.State.make [| n |])

let test_wakeup_4096 () =
  let n = 4096 in
  let g = big_sparse n in
  let o = Wakeup.run g ~source:0 in
  check_bool "informed" true o.Wakeup.result.Sim.Runner.all_informed;
  check_int "n-1 messages" (n - 1) o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
  check_bool "advice within budget" true (o.Wakeup.advice_bits <= Bounds.wakeup_advice_upper ~n)

let test_broadcast_4096 () =
  let n = 4096 in
  let g = big_sparse n in
  let o = Broadcast.run g ~source:0 in
  check_bool "informed" true o.Broadcast.result.Sim.Runner.all_informed;
  check_bool "< 3n messages" true (o.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent < 3 * n);
  check_bool "<= 8n bits" true (o.Broadcast.advice_bits <= 8 * n);
  check_bool "contribution <= 4n" true (o.Broadcast.tree_contribution <= 4 * n)

let test_light_tree_deep_path () =
  (* A 20 000-node path: recursion depths and tree plumbing at scale. *)
  let n = 20_000 in
  let g = Netgraph.Gen.path n in
  let t = Netgraph.Spanning.light g ~root:0 in
  check_bool "valid" true (Netgraph.Spanning.check g t = Ok ());
  check_bool "within 4n" true
    (Netgraph.Spanning.contribution g (Netgraph.Spanning.edges t) <= 4 * n)

let test_gossip_2048 () =
  let n = 2048 in
  let g = big_sparse n in
  let o = Gossip.run g ~source:0 in
  check_bool "complete" true o.Gossip.complete;
  check_int "2(n-1)" (2 * (n - 1)) o.Gossip.result.Sim.Runner.stats.Sim.Runner.sent

let test_counting_pipeline_large () =
  (* The threshold keeps its shape out to n = 2^18 without numeric
     trouble. *)
  let q n = Lower_bound.min_advice_for_linear_wakeup ~n ~budget_factor:3.0 in
  let q17 = q 131072 and q18 = q 262144 in
  check_bool "superlinear at scale" true (q18 > 2 * q17)

let test_separation_2048 () =
  let m = Separation.measure Netgraph.Families.Sparse_random ~n:2048 ~seed:227 in
  check_bool "wakeup ok" true m.Separation.wakeup_ok;
  check_bool "broadcast ok" true m.Separation.broadcast_ok;
  check_bool "ratio grown past 7" true (m.Separation.bits_ratio > 7.0)

let suite =
  [
    Alcotest.test_case "wakeup at n=4096" `Slow test_wakeup_4096;
    Alcotest.test_case "broadcast at n=4096" `Slow test_broadcast_4096;
    Alcotest.test_case "light tree on a 20k path" `Slow test_light_tree_deep_path;
    Alcotest.test_case "gossip at n=2048" `Slow test_gossip_2048;
    Alcotest.test_case "counting pipeline at n=2^18" `Slow test_counting_pipeline_large;
    Alcotest.test_case "separation at n=2048" `Slow test_separation_2048;
  ]
