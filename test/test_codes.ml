open Bitstring

let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))
let check_string = Alcotest.(check string)

(* {1 Theorem 2.1 port-list code} *)

let test_port_list_empty () =
  let b = Bitbuf.create () in
  Codes.write_port_list b ~width:5 [];
  check_int "leaf advice is empty" 0 (Bitbuf.length b);
  check_ints "decodes to []" [] (Codes.read_port_list (Bitbuf.reader b))

let test_port_list_known_encoding () =
  (* width 3 = binary 11 → doubled 1111, terminator 10; ports 5, 1 in 3
     bits each. *)
  let b = Bitbuf.create () in
  Codes.write_port_list b ~width:3 [ 5; 1 ];
  check_string "bit-exact" "111110101001" (Bitbuf.to_string b)

let test_port_list_roundtrip () =
  List.iter
    (fun (width, ports) ->
      let b = Bitbuf.create () in
      Codes.write_port_list b ~width ports;
      check_ints
        (Printf.sprintf "w=%d" width)
        ports
        (Codes.read_port_list (Bitbuf.reader b)))
    [ (1, [ 0; 1; 1; 0 ]); (3, [ 7 ]); (10, [ 0; 1023; 512 ]); (4, [ 15; 0; 8; 3; 3 ]) ]

let test_port_list_length_formula () =
  List.iter
    (fun (width, count) ->
      let ports = List.init count (fun i -> i mod (1 lsl width)) in
      let b = Bitbuf.create () in
      Codes.write_port_list b ~width ports;
      check_int
        (Printf.sprintf "w=%d c=%d" width count)
        (Codes.port_list_length ~width ~count)
        (Bitbuf.length b))
    [ (1, 0); (1, 3); (3, 1); (7, 4); (16, 2) ]

let test_port_list_bad_width () =
  let b = Bitbuf.create () in
  Alcotest.check_raises "width 0" (Invalid_argument "Codes.write_port_list: width < 1")
    (fun () -> Codes.write_port_list b ~width:0 [ 1 ])

let test_port_list_malformed_header () =
  (* "01" as the very first pair is an invalid header pair. *)
  Alcotest.check_raises "malformed"
    (Invalid_argument "Codes.read_port_list: malformed width header") (fun () ->
      ignore (Codes.read_port_list (Bitbuf.reader (Bitbuf.of_string "0110"))))

let test_port_list_bad_payload () =
  (* Valid header for width 2 ("1111" doubled "11"=3? no: width 3 is "11".
     Use width 2: binary "10" → doubled "1100", terminator "10"; then a
     3-bit payload is not a multiple of 2. *)
  Alcotest.check_raises "payload"
    (Invalid_argument "Codes.read_port_list: payload not a multiple of width") (fun () ->
      ignore (Codes.read_port_list (Bitbuf.reader (Bitbuf.of_string "110010101"))))

(* {1 Marked-bit code} *)

let test_marked_known_encodings () =
  let enc w =
    let b = Bitbuf.create () in
    Codes.write_marked b w;
    Bitbuf.to_string b
  in
  check_string "0" "01" (enc 0);
  check_string "1" "11" (enc 1);
  check_string "5" "100011" (enc 5)

let test_marked_roundtrip () =
  List.iter
    (fun w ->
      let b = Bitbuf.create () in
      Codes.write_marked b w;
      check_int (string_of_int w) w (Codes.read_marked (Bitbuf.reader b)))
    [ 0; 1; 2; 3; 4; 17; 255; 256; 99999 ]

let test_marked_list_roundtrip () =
  let ws = [ 0; 5; 0; 1; 1023; 2 ] in
  let b = Bitbuf.create () in
  Codes.write_marked_list b ws;
  check_ints "list" ws (Codes.read_marked_list (Bitbuf.reader b))

let test_marked_length () =
  let ws = [ 0; 5; 1023 ] in
  let b = Bitbuf.create () in
  Codes.write_marked_list b ws;
  check_int "2 * sum #2" (Codes.marked_length ws) (Bitbuf.length b);
  check_int "value" (2 * (1 + 3 + 10)) (Codes.marked_length ws)

(* {1 Unary} *)

let test_unary () =
  let b = Bitbuf.create () in
  Codes.write_unary b 0;
  Codes.write_unary b 3;
  check_string "encodings" "10001" (Bitbuf.to_string b);
  let r = Bitbuf.reader b in
  check_int "0" 0 (Codes.read_unary r);
  check_int "3" 3 (Codes.read_unary r)

(* {1 Elias gamma/delta} *)

let test_gamma_known () =
  let enc n =
    let b = Bitbuf.create () in
    Codes.write_gamma b n;
    Bitbuf.to_string b
  in
  (* gamma encodes n+1: 1→"1", 2→"010", 3→"011", 4→"00100". *)
  check_string "0" "1" (enc 0);
  check_string "1" "010" (enc 1);
  check_string "2" "011" (enc 2);
  check_string "3" "00100" (enc 3)

let test_gamma_length () =
  List.iter
    (fun n ->
      let b = Bitbuf.create () in
      Codes.write_gamma b n;
      check_int (string_of_int n) (Codes.gamma_length n) (Bitbuf.length b))
    [ 0; 1; 2; 3; 7; 8; 100; 1023 ]

let test_gamma_roundtrip () =
  List.iter
    (fun n ->
      let b = Bitbuf.create () in
      Codes.write_gamma b n;
      check_int (string_of_int n) n (Codes.read_gamma (Bitbuf.reader b)))
    [ 0; 1; 2; 3; 4; 100; 1 lsl 20 ]

let test_delta_roundtrip_and_length () =
  List.iter
    (fun n ->
      let b = Bitbuf.create () in
      Codes.write_delta b n;
      check_int (Printf.sprintf "len %d" n) (Codes.delta_length n) (Bitbuf.length b);
      check_int (string_of_int n) n (Codes.read_delta (Bitbuf.reader b)))
    [ 0; 1; 2; 3; 4; 255; 256; 1 lsl 20 ]

let test_delta_shorter_for_large () =
  Alcotest.(check bool)
    "delta beats gamma eventually" true
    (Codes.delta_length 100000 < Codes.gamma_length 100000)

(* {1 Codecs} *)

let qcheck_codec_roundtrip codec max_value =
  QCheck.Test.make
    ~name:(Printf.sprintf "codec %s roundtrip" codec.Codes.codec_name)
    ~count:200
    QCheck.(small_list (int_bound max_value))
    (fun values ->
      let b = Bitbuf.create () in
      codec.Codes.write_list b values;
      codec.Codes.read_list (Bitbuf.reader b) = values)

let qcheck_port_list =
  QCheck.Test.make ~name:"port list roundtrip (random widths)" ~count:200
    QCheck.(pair (int_range 1 16) (small_list (int_bound 1000)))
    (fun (width, raw) ->
      let ports = List.map (fun p -> p land ((1 lsl width) - 1)) raw in
      let b = Bitbuf.create () in
      Codes.write_port_list b ~width ports;
      Codes.read_port_list (Bitbuf.reader b) = ports)

let qcheck_marked =
  QCheck.Test.make ~name:"marked list roundtrip" ~count:200
    QCheck.(small_list (int_bound 1_000_000))
    (fun ws ->
      let b = Bitbuf.create () in
      Codes.write_marked_list b ws;
      Codes.read_marked_list (Bitbuf.reader b) = ws
      && Bitbuf.length b = Codes.marked_length ws)

let suite =
  [
    Alcotest.test_case "port list: empty" `Quick test_port_list_empty;
    Alcotest.test_case "port list: known encoding" `Quick test_port_list_known_encoding;
    Alcotest.test_case "port list: roundtrips" `Quick test_port_list_roundtrip;
    Alcotest.test_case "port list: length formula" `Quick test_port_list_length_formula;
    Alcotest.test_case "port list: bad width" `Quick test_port_list_bad_width;
    Alcotest.test_case "port list: malformed header" `Quick test_port_list_malformed_header;
    Alcotest.test_case "port list: bad payload" `Quick test_port_list_bad_payload;
    Alcotest.test_case "marked: known encodings" `Quick test_marked_known_encodings;
    Alcotest.test_case "marked: roundtrip" `Quick test_marked_roundtrip;
    Alcotest.test_case "marked: list roundtrip" `Quick test_marked_list_roundtrip;
    Alcotest.test_case "marked: 2-sum length" `Quick test_marked_length;
    Alcotest.test_case "unary" `Quick test_unary;
    Alcotest.test_case "gamma: known codewords" `Quick test_gamma_known;
    Alcotest.test_case "gamma: length formula" `Quick test_gamma_length;
    Alcotest.test_case "gamma: roundtrip" `Quick test_gamma_roundtrip;
    Alcotest.test_case "delta: roundtrip and length" `Quick test_delta_roundtrip_and_length;
    Alcotest.test_case "delta shorter for large values" `Quick test_delta_shorter_for_large;
    QCheck_alcotest.to_alcotest (qcheck_codec_roundtrip (Codes.paper_doubled ~max_value:1000) 1000);
    QCheck_alcotest.to_alcotest (qcheck_codec_roundtrip Codes.gamma_codec 100000);
    QCheck_alcotest.to_alcotest (qcheck_codec_roundtrip Codes.delta_codec 100000);
    QCheck_alcotest.to_alcotest (qcheck_codec_roundtrip Codes.unary_codec 50);
    QCheck_alcotest.to_alcotest qcheck_port_list;
    QCheck_alcotest.to_alcotest qcheck_marked;
  ]

(* Decoder robustness: random bit strings must decode or raise cleanly —
   never crash, hang, or return out-of-domain values. *)
let qcheck_decoder_fuzz =
  QCheck.Test.make ~name:"decoders never crash on garbage" ~count:300
    QCheck.(small_list bool)
    (fun bits ->
      let buf = Bitbuf.of_bits bits in
      let try_decode f =
        match f (Bitbuf.reader buf) with
        | _ -> true
        | exception (Invalid_argument _ | Bitbuf.End_of_bits) -> true
      in
      try_decode Codes.read_port_list
      && try_decode Codes.read_marked_list
      && try_decode (fun r ->
             let rec loop acc =
               if Bitbuf.at_end r then acc else loop (Codes.read_gamma r :: acc)
             in
             loop [])
      && try_decode Codes.read_unary)

let qcheck_gamma_values_nonnegative =
  QCheck.Test.make ~name:"gamma decodes stay non-negative" ~count:300
    QCheck.(small_list bool)
    (fun bits ->
      let r = Bitbuf.reader (Bitbuf.of_bits bits) in
      match Codes.read_gamma r with
      | v -> v >= 0
      | exception (Invalid_argument _ | Bitbuf.End_of_bits) -> true)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest qcheck_decoder_fuzz;
      QCheck_alcotest.to_alcotest qcheck_gamma_values_nonnegative;
    ]
