module Bitbuf = Bitstring.Bitbuf
module Graph = Netgraph.Graph
module Advice = Oracles.Advice
module Oracle = Oracles.Oracle
module Baselines = Oracles.Baselines

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Advice} *)

let test_advice_accounting () =
  let a = Advice.make [| Bitbuf.of_string "101"; Bitbuf.create (); Bitbuf.of_string "1" |] in
  check_int "n" 3 (Advice.n a);
  check_int "size" 4 (Advice.size_bits a);
  check_int "nonempty" 2 (Advice.nonempty_nodes a);
  check_int "max" 3 (Advice.max_node_bits a);
  check_bool "get" true (Bitbuf.equal (Advice.get a 0) (Bitbuf.of_string "101"))

let test_advice_empty () =
  let a = Advice.empty ~n:5 in
  check_int "size" 0 (Advice.size_bits a);
  check_int "nonempty" 0 (Advice.nonempty_nodes a);
  check_int "max" 0 (Advice.max_node_bits a)

(* {1 Oracle} *)

let test_empty_oracle () =
  let g = Netgraph.Gen.grid ~rows:3 ~cols:3 in
  check_int "size 0" 0 (Oracle.size_on Oracle.empty g ~source:0)

let test_advice_fun () =
  let g = Netgraph.Gen.path 4 in
  let f = Oracle.advice_fun Baselines.parent_port g ~source:0 in
  check_int "root empty" 0 (Bitbuf.length (f 0));
  check_bool "non-root nonempty" true (Bitbuf.length (f 3) > 0)

let test_truncate_zero () =
  let g = Netgraph.Gen.complete 6 in
  let t = Oracle.truncate Baselines.full_map ~budget:0 in
  check_int "all clipped" 0 (Oracle.size_on t g ~source:0)

let test_truncate_generous () =
  let g = Netgraph.Gen.complete 6 in
  let full = Oracle.size_on Baselines.full_map g ~source:0 in
  let t = Oracle.truncate Baselines.full_map ~budget:(full * 2) in
  check_int "unchanged" full (Oracle.size_on t g ~source:0)

let test_truncate_prefix () =
  let g = Netgraph.Gen.path 5 in
  let budget = 7 in
  let t = Oracle.truncate Baselines.full_map ~budget in
  let full_advice = Baselines.full_map.Oracle.advise g ~source:0 in
  let cut_advice = t.Oracle.advise g ~source:0 in
  check_int "budget respected" budget (Advice.size_bits cut_advice);
  (* The first node's string is a prefix of the original. *)
  let orig = Advice.get full_advice 0 in
  let cut = Advice.get cut_advice 0 in
  check_int "first node got everything available" (min budget (Bitbuf.length orig))
    (Bitbuf.length cut);
  for i = 0 to Bitbuf.length cut - 1 do
    check_bool "prefix bit" (Bitbuf.get orig i) (Bitbuf.get cut i)
  done

let test_truncate_negative () =
  match Oracle.truncate Oracle.empty ~budget:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative budget must be rejected"

(* {1 Baselines} *)

let test_full_map_decodes () =
  let g = Netgraph.Gen.grid ~rows:3 ~cols:4 in
  let advice = Baselines.full_map.Oracle.advise g ~source:0 in
  for v = 0 to Graph.n g - 1 do
    check_bool
      (Printf.sprintf "node %d can reconstruct G" v)
      true
      (Graph.equal g (Baselines.decode_map (Advice.get advice v)))
  done

let test_source_map_only_source () =
  let g = Netgraph.Gen.cycle 6 in
  let advice = Baselines.source_map.Oracle.advise g ~source:2 in
  check_int "one node advised" 1 (Advice.nonempty_nodes advice);
  check_bool "it is the source" true (Bitbuf.length (Advice.get advice 2) > 0);
  check_bool "decodes" true (Graph.equal g (Baselines.decode_map (Advice.get advice 2)))

let test_neighbor_labels () =
  let g = Netgraph.Gen.star 5 in
  let advice = Baselines.neighbor_labels.Oracle.advise g ~source:0 in
  (* Center (index 0) has all leaves as neighbors: labels 2,3,4,5. *)
  let r = Bitbuf.reader (Advice.get advice 0) in
  let decoded = List.init 4 (fun _ -> Bitstring.Codes.read_gamma r) in
  Alcotest.(check (list int)) "center sees leaves" [ 2; 3; 4; 5 ] decoded

let test_bfs_children_fixed_decodes () =
  let g = Netgraph.Gen.complete 7 in
  let advice = Baselines.bfs_children_fixed.Oracle.advise g ~source:0 in
  let tree = Netgraph.Spanning.bfs g ~root:0 in
  for v = 0 to 6 do
    Alcotest.(check (list int))
      (Printf.sprintf "node %d ports" v)
      (Netgraph.Spanning.children_ports tree v)
      (Baselines.decode_children_fixed (Advice.get advice v))
  done

let test_parent_port () =
  let g = Netgraph.Gen.path 4 in
  let advice = Baselines.parent_port.Oracle.advise g ~source:0 in
  check_int "root gets nothing" 0 (Bitbuf.length (Advice.get advice 0));
  (* Node 3's parent is node 2, reached via its port 0. *)
  let r = Bitbuf.reader (Advice.get advice 3) in
  check_int "port to parent" 0 (Bitstring.Codes.read_gamma r)

let test_baseline_size_ordering () =
  let g = Netgraph.Gen.random_connected ~n:30 ~p:0.3 (Random.State.make [| 21 |]) in
  let size o = Oracle.size_on o g ~source:0 in
  check_bool "full >= source" true (size Baselines.full_map >= size Baselines.source_map);
  check_bool "full = n * source" true
    (size Baselines.full_map = Graph.n g * size Baselines.source_map);
  check_bool "children <= neighbor-labels" true
    (size Baselines.bfs_children_fixed <= size Baselines.neighbor_labels)

let test_all_baselines_have_distinct_names () =
  let names = List.map (fun o -> o.Oracle.name) Baselines.all in
  check_int "distinct" (List.length names) (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "advice accounting" `Quick test_advice_accounting;
    Alcotest.test_case "empty advice" `Quick test_advice_empty;
    Alcotest.test_case "empty oracle" `Quick test_empty_oracle;
    Alcotest.test_case "advice_fun" `Quick test_advice_fun;
    Alcotest.test_case "truncate to zero" `Quick test_truncate_zero;
    Alcotest.test_case "truncate with slack" `Quick test_truncate_generous;
    Alcotest.test_case "truncate keeps prefixes" `Quick test_truncate_prefix;
    Alcotest.test_case "truncate rejects negatives" `Quick test_truncate_negative;
    Alcotest.test_case "full map decodes at every node" `Quick test_full_map_decodes;
    Alcotest.test_case "source map advises only the source" `Quick test_source_map_only_source;
    Alcotest.test_case "neighbor labels" `Quick test_neighbor_labels;
    Alcotest.test_case "bfs children decode" `Quick test_bfs_children_fixed_decodes;
    Alcotest.test_case "parent port" `Quick test_parent_port;
    Alcotest.test_case "baseline size ordering" `Quick test_baseline_size_ordering;
    Alcotest.test_case "distinct baseline names" `Quick test_all_baselines_have_distinct_names;
  ]

let test_union_oracle () =
  let g = Netgraph.Gen.grid ~rows:3 ~cols:3 in
  let u = Oracle.union ~name:"both" Baselines.parent_port Baselines.bfs_children_fixed in
  check_int "size adds" 
    (Oracle.size_on Baselines.parent_port g ~source:0
    + Oracle.size_on Baselines.bfs_children_fixed g ~source:0)
    (Oracle.size_on u g ~source:0);
  (* The first component decodes off the front (gamma is self-delimiting). *)
  let advice = u.Oracle.advise g ~source:0 in
  let r = Bitbuf.reader (Advice.get advice 8) in
  let tree = Netgraph.Spanning.bfs g ~root:0 in
  let expected_parent =
    match tree.Netgraph.Spanning.parent.(8) with Some (_, p) -> p | None -> -1
  in
  check_int "first component readable" expected_parent (Bitstring.Codes.read_gamma r)

let suite =
  suite @ [ Alcotest.test_case "union oracle" `Quick test_union_oracle ]
