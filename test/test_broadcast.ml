open Oracle_core
module Graph = Netgraph.Graph
module Spanning = Netgraph.Spanning
module Families = Netgraph.Families

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let family_graphs n =
  List.map (fun fam -> (Families.name fam, Families.build fam ~n ~seed:29)) Families.all

(* Theorem 3.1's claims: completes, < 3n messages, ≤ 8n advice bits. *)
let test_theorem_claims_all_families () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let o = Broadcast.run g ~source:0 in
      check_bool (name ^ " informed") true o.Broadcast.result.Sim.Runner.all_informed;
      let sent = o.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent in
      check_bool (Printf.sprintf "%s: %d < 3*%d" name sent n) true (sent < 3 * n);
      check_bool
        (Printf.sprintf "%s: advice %d <= 8*%d" name o.Broadcast.advice_bits n)
        true
        (o.Broadcast.advice_bits <= Bounds.broadcast_advice_upper ~n);
      check_bool
        (Printf.sprintf "%s: contribution %d <= 4*%d" name o.Broadcast.tree_contribution n)
        true
        (o.Broadcast.tree_contribution <= Bounds.light_tree_contribution_upper ~n))
    (family_graphs 48)

let test_all_schedulers () =
  let g = Families.build Families.Dense_random ~n:40 ~seed:31 in
  let n = Graph.n g in
  List.iter
    (fun sched ->
      let o = Broadcast.run ~scheduler:sched g ~source:0 in
      check_bool (Sim.Scheduler.name sched ^ " informed") true
        o.Broadcast.result.Sim.Runner.all_informed;
      check_bool (Sim.Scheduler.name sched ^ " linear") true
        (o.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent < 3 * n))
    Sim.Scheduler.default_suite

let test_message_breakdown () =
  let g = Families.build Families.Grid ~n:49 ~seed:37 in
  let n = Graph.n g in
  let o = Broadcast.run g ~source:0 in
  let stats = o.Broadcast.result.Sim.Runner.stats in
  check_bool "hellos at most n-1" true (stats.Sim.Runner.hello_sent <= n - 1);
  check_bool "source messages at most 2(n-1)" true
    (stats.Sim.Runner.source_sent <= 2 * (n - 1));
  check_int "no control messages" 0 stats.Sim.Runner.control_sent;
  check_int "sum" stats.Sim.Runner.sent
    (stats.Sim.Runner.hello_sent + stats.Sim.Runner.source_sent)

let test_trace_invariants () =
  (* M crosses each directed tree edge at most once; hellos cross each
     tree edge at most once overall. *)
  let g = Families.build Families.Sparse_random ~n:40 ~seed:41 in
  let tree = Spanning.light g ~root:0 in
  let tree_pairs =
    List.concat_map
      (fun e -> [ (e.Graph.u, e.Graph.v); (e.Graph.v, e.Graph.u) ])
      (Spanning.edges tree)
  in
  let o = Broadcast.oracle ~tree:(fun _ ~root:_ -> tree) () in
  let advice = Oracles.Oracle.advice_fun o g ~source:0 in
  let r = Sim.Runner.run ~record_trace:true ~advice g ~source:0 (Broadcast.scheme ()) in
  check_bool "informed" true r.Sim.Runner.all_informed;
  let seen_m = Hashtbl.create 64 in
  let seen_hello = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let dir = (d.Sim.Runner.src, d.Sim.Runner.dst) in
      check_bool "only tree edges carry traffic" true (List.mem dir tree_pairs);
      match d.Sim.Runner.msg with
      | Sim.Message.Source ->
        check_bool "M once per direction" false (Hashtbl.mem seen_m dir);
        Hashtbl.add seen_m dir ()
      | Sim.Message.Hello ->
        let undirected = (min (fst dir) (snd dir), max (fst dir) (snd dir)) in
        check_bool "hello once per edge" false (Hashtbl.mem seen_hello undirected);
        Hashtbl.add seen_hello undirected ()
      | Sim.Message.Control _ -> Alcotest.fail "unexpected control message")
    r.Sim.Runner.deliveries

let test_weight_assignment_unique_endpoint () =
  let g = Families.build Families.Complete ~n:32 ~seed:0 in
  let tree = Spanning.light g ~root:0 in
  let weights = Broadcast.weight_assignment g tree in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 weights in
  check_int "each tree edge at exactly one endpoint" (Graph.n g - 1) total;
  (* Each assigned weight is a real port at that node towards a tree
     neighbor, with the minimum of the two ports. *)
  let tree_edges = Spanning.edges tree in
  Array.iteri
    (fun v ws ->
      List.iter
        (fun w ->
          let touches =
            List.exists
              (fun e ->
                (e.Graph.u = v && e.Graph.pu = w && w <= e.Graph.pv)
                || (e.Graph.v = v && e.Graph.pv = w && w <= e.Graph.pu))
              tree_edges
          in
          check_bool (Printf.sprintf "node %d weight %d" v w) true touches)
        ws)
    weights

let test_decode_roundtrip () =
  List.iter
    (fun enc ->
      let g = Families.build Families.Torus ~n:25 ~seed:43 in
      let o = Broadcast.oracle ~encoding:enc () in
      let advice = o.Oracles.Oracle.advise g ~source:0 in
      let tree = Spanning.light g ~root:0 in
      let weights = Broadcast.weight_assignment g tree in
      for v = 0 to Graph.n g - 1 do
        Alcotest.(check (list int))
          (Printf.sprintf "%s node %d" (Broadcast.encoding_name enc) v)
          weights.(v)
          (Broadcast.decode_known_ports enc (Oracles.Advice.get advice v))
      done)
    [ Broadcast.Marked; Broadcast.Gamma ]

let test_gamma_encoding_works () =
  let g = Families.build Families.Sparse_random ~n:36 ~seed:47 in
  let o = Broadcast.run ~encoding:Broadcast.Gamma g ~source:0 in
  check_bool "informed" true o.Broadcast.result.Sim.Runner.all_informed;
  check_bool "linear" true
    (o.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent < 3 * Graph.n g)

let test_other_trees_complete () =
  (* Scheme B is correct with any spanning tree; only the 8n size bound
     needs the light tree. *)
  let g = Families.build Families.Complete ~n:24 ~seed:0 in
  List.iter
    (fun (name, tree) ->
      let o = Broadcast.run ~tree g ~source:0 in
      check_bool (name ^ " informed") true o.Broadcast.result.Sim.Runner.all_informed;
      check_bool (name ^ " linear") true
        (o.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent < 3 * Graph.n g))
    [
      ("bfs", fun g ~root -> Spanning.bfs g ~root);
      ("dfs", fun g ~root -> Spanning.dfs g ~root);
    ]

let test_nonzero_source () =
  let g = Families.build Families.Hypercube ~n:64 ~seed:0 in
  let o = Broadcast.run g ~source:17 in
  check_bool "informed" true o.Broadcast.result.Sim.Runner.all_informed

let test_single_node () =
  let g = Netgraph.Gen.path 1 in
  let o = Broadcast.run g ~source:0 in
  check_bool "informed" true o.Broadcast.result.Sim.Runner.all_informed;
  check_int "no messages" 0 o.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent;
  check_int "no advice" 0 o.Broadcast.advice_bits

let test_zero_advice_fails () =
  (* Without advice nobody knows any port: no messages at all, broadcast
     fails on any nontrivial graph — the degenerate end of Theorem 3.2. *)
  let g = Netgraph.Gen.cycle 8 in
  let advice _ = Bitstring.Bitbuf.create () in
  let r = Sim.Runner.run ~advice g ~source:0 (Broadcast.scheme ()) in
  check_bool "not informed" false r.Sim.Runner.all_informed;
  check_int "silent network" 0 r.Sim.Runner.stats.Sim.Runner.sent

let test_label_independence () =
  let g = Families.build Families.Grid ~n:36 ~seed:53 in
  let permuted = Netgraph.Transform.permute_labels g (Random.State.make [| 59 |]) in
  let a = Broadcast.run g ~source:0 in
  let b = Broadcast.run permuted ~source:0 in
  check_int "same messages" a.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent
    b.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent

let qcheck_broadcast_random_graphs =
  QCheck.Test.make ~name:"broadcast: Theorem 3.1 on random graphs" ~count:50
    QCheck.(triple (int_range 2 48) (int_range 0 999) (int_range 0 4))
    (fun (n, seed, sched_idx) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.25 st in
      let scheduler = List.nth Sim.Scheduler.default_suite sched_idx in
      let o = Broadcast.run ~scheduler g ~source:(seed mod n) in
      o.Broadcast.result.Sim.Runner.all_informed
      && o.Broadcast.result.Sim.Runner.stats.Sim.Runner.sent < 3 * n
      && o.Broadcast.advice_bits <= 8 * n
      && o.Broadcast.tree_contribution <= 4 * n)

let suite =
  [
    Alcotest.test_case "Theorem 3.1 on every family" `Quick test_theorem_claims_all_families;
    Alcotest.test_case "all schedulers" `Quick test_all_schedulers;
    Alcotest.test_case "message breakdown" `Quick test_message_breakdown;
    Alcotest.test_case "trace invariants" `Quick test_trace_invariants;
    Alcotest.test_case "weight assignment" `Quick test_weight_assignment_unique_endpoint;
    Alcotest.test_case "advice decode roundtrip" `Quick test_decode_roundtrip;
    Alcotest.test_case "gamma encoding works" `Quick test_gamma_encoding_works;
    Alcotest.test_case "other trees still complete" `Quick test_other_trees_complete;
    Alcotest.test_case "non-zero source" `Quick test_nonzero_source;
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "zero advice fails" `Quick test_zero_advice_fails;
    Alcotest.test_case "label independence (anonymity)" `Quick test_label_independence;
    QCheck_alcotest.to_alcotest qcheck_broadcast_random_graphs;
  ]

let test_pure_paper_scheme_matches_stateful () =
  (* The paper's schemes are pure functions of the history (§1.4); wrap
     the stateful Scheme B as one via Scheme.of_pure (replaying the
     history each call) and check the executions coincide exactly. *)
  let pure_factory static =
    let replay history =
      let node = Broadcast.scheme () static in
      match List.rev history.Sim.History.received with
      | [] -> node.Sim.Scheme.on_start ()
      | (last_msg, last_port) :: older_rev ->
        ignore (node.Sim.Scheme.on_start ());
        List.iter
          (fun (msg, port) -> ignore (node.Sim.Scheme.on_receive msg ~port))
          (List.rev older_rev);
        node.Sim.Scheme.on_receive last_msg ~port:last_port
    in
    Sim.Scheme.of_pure replay static
  in
  List.iter
    (fun sched ->
      let g = Families.build Families.Sparse_random ~n:32 ~seed:223 in
      let o = Broadcast.oracle () in
      let advice = Oracles.Oracle.advice_fun o g ~source:0 in
      let pure_run = Sim.Runner.run ~scheduler:sched ~advice g ~source:0 pure_factory in
      let stateful_run = Sim.Runner.run ~scheduler:sched ~advice g ~source:0 (Broadcast.scheme ()) in
      check_bool (Sim.Scheduler.name sched ^ " informed") true pure_run.Sim.Runner.all_informed;
      check_int (Sim.Scheduler.name sched ^ " same sends")
        stateful_run.Sim.Runner.stats.Sim.Runner.sent pure_run.Sim.Runner.stats.Sim.Runner.sent;
      check_int (Sim.Scheduler.name sched ^ " same hellos")
        stateful_run.Sim.Runner.stats.Sim.Runner.hello_sent
        pure_run.Sim.Runner.stats.Sim.Runner.hello_sent)
    Sim.Scheduler.default_suite

let suite =
  suite
  @ [
      Alcotest.test_case "pure paper-style scheme matches stateful" `Quick
        test_pure_paper_scheme_matches_stateful;
    ]
